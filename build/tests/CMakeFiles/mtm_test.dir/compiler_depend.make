# Empty compiler generated dependencies file for mtm_test.
# This may be replaced when dependencies are built.
