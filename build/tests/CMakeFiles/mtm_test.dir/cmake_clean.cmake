file(REMOVE_RECURSE
  "CMakeFiles/mtm_test.dir/mtm_test.cc.o"
  "CMakeFiles/mtm_test.dir/mtm_test.cc.o.d"
  "mtm_test"
  "mtm_test.pdb"
  "mtm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
