file(REMOVE_RECURSE
  "CMakeFiles/pcmdisk_test.dir/pcmdisk_test.cc.o"
  "CMakeFiles/pcmdisk_test.dir/pcmdisk_test.cc.o.d"
  "pcmdisk_test"
  "pcmdisk_test.pdb"
  "pcmdisk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcmdisk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
