# Empty dependencies file for pcmdisk_test.
# This may be replaced when dependencies are built.
