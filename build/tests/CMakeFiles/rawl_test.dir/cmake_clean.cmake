file(REMOVE_RECURSE
  "CMakeFiles/rawl_test.dir/rawl_test.cc.o"
  "CMakeFiles/rawl_test.dir/rawl_test.cc.o.d"
  "rawl_test"
  "rawl_test.pdb"
  "rawl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rawl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
