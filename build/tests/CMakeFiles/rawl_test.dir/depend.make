# Empty dependencies file for rawl_test.
# This may be replaced when dependencies are built.
