# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/scm_test[1]_include.cmake")
include("/root/repo/build/tests/rawl_test[1]_include.cmake")
include("/root/repo/build/tests/region_test[1]_include.cmake")
include("/root/repo/build/tests/heap_test[1]_include.cmake")
include("/root/repo/build/tests/mtm_test[1]_include.cmake")
include("/root/repo/build/tests/pcmdisk_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/serialize_test[1]_include.cmake")
include("/root/repo/build/tests/ds_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/crash_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
