# Empty compiler generated dependencies file for bench_table4_tokyocabinet.
# This may be replaced when dependencies are built.
