file(REMOVE_RECURSE
  "../bench/bench_table4_tokyocabinet"
  "../bench/bench_table4_tokyocabinet.pdb"
  "CMakeFiles/bench_table4_tokyocabinet.dir/bench_table4_tokyocabinet.cc.o"
  "CMakeFiles/bench_table4_tokyocabinet.dir/bench_table4_tokyocabinet.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_tokyocabinet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
