file(REMOVE_RECURSE
  "../bench/bench_txn_costs"
  "../bench/bench_txn_costs.pdb"
  "CMakeFiles/bench_txn_costs.dir/bench_txn_costs.cc.o"
  "CMakeFiles/bench_txn_costs.dir/bench_txn_costs.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_txn_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
