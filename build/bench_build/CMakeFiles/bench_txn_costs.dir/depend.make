# Empty dependencies file for bench_txn_costs.
# This may be replaced when dependencies are built.
