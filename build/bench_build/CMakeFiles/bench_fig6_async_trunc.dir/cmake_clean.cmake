file(REMOVE_RECURSE
  "../bench/bench_fig6_async_trunc"
  "../bench/bench_fig6_async_trunc.pdb"
  "CMakeFiles/bench_fig6_async_trunc.dir/bench_fig6_async_trunc.cc.o"
  "CMakeFiles/bench_fig6_async_trunc.dir/bench_fig6_async_trunc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_async_trunc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
