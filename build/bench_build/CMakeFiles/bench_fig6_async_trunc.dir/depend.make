# Empty dependencies file for bench_fig6_async_trunc.
# This may be replaced when dependencies are built.
