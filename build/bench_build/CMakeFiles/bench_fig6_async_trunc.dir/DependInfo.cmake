
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_async_trunc.cc" "bench_build/CMakeFiles/bench_fig6_async_trunc.dir/bench_fig6_async_trunc.cc.o" "gcc" "bench_build/CMakeFiles/bench_fig6_async_trunc.dir/bench_fig6_async_trunc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mn_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_mtm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_region.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_pcmdisk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_scm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
