file(REMOVE_RECURSE
  "../bench/bench_table6_rawl"
  "../bench/bench_table6_rawl.pdb"
  "CMakeFiles/bench_table6_rawl.dir/bench_table6_rawl.cc.o"
  "CMakeFiles/bench_table6_rawl.dir/bench_table6_rawl.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_rawl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
