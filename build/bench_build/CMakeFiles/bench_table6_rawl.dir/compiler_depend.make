# Empty compiler generated dependencies file for bench_table6_rawl.
# This may be replaced when dependencies are built.
