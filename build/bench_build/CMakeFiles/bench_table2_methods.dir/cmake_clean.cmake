file(REMOVE_RECURSE
  "../bench/bench_table2_methods"
  "../bench/bench_table2_methods.pdb"
  "CMakeFiles/bench_table2_methods.dir/bench_table2_methods.cc.o"
  "CMakeFiles/bench_table2_methods.dir/bench_table2_methods.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
