file(REMOVE_RECURSE
  "../bench/bench_reincarnation"
  "../bench/bench_reincarnation.pdb"
  "CMakeFiles/bench_reincarnation.dir/bench_reincarnation.cc.o"
  "CMakeFiles/bench_reincarnation.dir/bench_reincarnation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reincarnation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
