# Empty dependencies file for bench_reincarnation.
# This may be replaced when dependencies are built.
