# Empty dependencies file for bench_table4_openldap.
# This may be replaced when dependencies are built.
