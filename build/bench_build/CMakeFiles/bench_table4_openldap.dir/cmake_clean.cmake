file(REMOVE_RECURSE
  "../bench/bench_table4_openldap"
  "../bench/bench_table4_openldap.pdb"
  "CMakeFiles/bench_table4_openldap.dir/bench_table4_openldap.cc.o"
  "CMakeFiles/bench_table4_openldap.dir/bench_table4_openldap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_openldap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
