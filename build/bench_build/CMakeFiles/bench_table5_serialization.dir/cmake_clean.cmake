file(REMOVE_RECURSE
  "../bench/bench_table5_serialization"
  "../bench/bench_table5_serialization.pdb"
  "CMakeFiles/bench_table5_serialization.dir/bench_table5_serialization.cc.o"
  "CMakeFiles/bench_table5_serialization.dir/bench_table5_serialization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_serialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
