# Empty dependencies file for bench_table5_serialization.
# This may be replaced when dependencies are built.
