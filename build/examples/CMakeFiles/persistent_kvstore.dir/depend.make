# Empty dependencies file for persistent_kvstore.
# This may be replaced when dependencies are built.
