file(REMOVE_RECURSE
  "CMakeFiles/directory_server.dir/directory_server.cpp.o"
  "CMakeFiles/directory_server.dir/directory_server.cpp.o.d"
  "directory_server"
  "directory_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
