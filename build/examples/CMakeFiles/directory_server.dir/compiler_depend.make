# Empty compiler generated dependencies file for directory_server.
# This may be replaced when dependencies are built.
