file(REMOVE_RECURSE
  "CMakeFiles/mn_runtime.dir/runtime/runtime.cc.o"
  "CMakeFiles/mn_runtime.dir/runtime/runtime.cc.o.d"
  "libmn_runtime.a"
  "libmn_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
