file(REMOVE_RECURSE
  "libmn_runtime.a"
)
