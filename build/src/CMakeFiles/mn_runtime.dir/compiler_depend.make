# Empty compiler generated dependencies file for mn_runtime.
# This may be replaced when dependencies are built.
