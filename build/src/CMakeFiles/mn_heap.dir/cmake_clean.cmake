file(REMOVE_RECURSE
  "CMakeFiles/mn_heap.dir/heap/big_alloc.cc.o"
  "CMakeFiles/mn_heap.dir/heap/big_alloc.cc.o.d"
  "CMakeFiles/mn_heap.dir/heap/pheap.cc.o"
  "CMakeFiles/mn_heap.dir/heap/pheap.cc.o.d"
  "CMakeFiles/mn_heap.dir/heap/superblock_heap.cc.o"
  "CMakeFiles/mn_heap.dir/heap/superblock_heap.cc.o.d"
  "libmn_heap.a"
  "libmn_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
