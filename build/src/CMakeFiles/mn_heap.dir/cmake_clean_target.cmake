file(REMOVE_RECURSE
  "libmn_heap.a"
)
