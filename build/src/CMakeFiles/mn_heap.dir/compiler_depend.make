# Empty compiler generated dependencies file for mn_heap.
# This may be replaced when dependencies are built.
