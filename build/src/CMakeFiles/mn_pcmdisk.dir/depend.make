# Empty dependencies file for mn_pcmdisk.
# This may be replaced when dependencies are built.
