file(REMOVE_RECURSE
  "CMakeFiles/mn_pcmdisk.dir/pcmdisk/minifs.cc.o"
  "CMakeFiles/mn_pcmdisk.dir/pcmdisk/minifs.cc.o.d"
  "CMakeFiles/mn_pcmdisk.dir/pcmdisk/pcmdisk.cc.o"
  "CMakeFiles/mn_pcmdisk.dir/pcmdisk/pcmdisk.cc.o.d"
  "libmn_pcmdisk.a"
  "libmn_pcmdisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_pcmdisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
