file(REMOVE_RECURSE
  "libmn_pcmdisk.a"
)
