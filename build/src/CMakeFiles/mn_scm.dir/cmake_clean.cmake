file(REMOVE_RECURSE
  "CMakeFiles/mn_scm.dir/scm/latency.cc.o"
  "CMakeFiles/mn_scm.dir/scm/latency.cc.o.d"
  "CMakeFiles/mn_scm.dir/scm/scm.cc.o"
  "CMakeFiles/mn_scm.dir/scm/scm.cc.o.d"
  "libmn_scm.a"
  "libmn_scm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_scm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
