# Empty dependencies file for mn_scm.
# This may be replaced when dependencies are built.
