file(REMOVE_RECURSE
  "libmn_scm.a"
)
