
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/hash_am.cc" "src/CMakeFiles/mn_storage.dir/storage/hash_am.cc.o" "gcc" "src/CMakeFiles/mn_storage.dir/storage/hash_am.cc.o.d"
  "/root/repo/src/storage/minibdb.cc" "src/CMakeFiles/mn_storage.dir/storage/minibdb.cc.o" "gcc" "src/CMakeFiles/mn_storage.dir/storage/minibdb.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/CMakeFiles/mn_storage.dir/storage/pager.cc.o" "gcc" "src/CMakeFiles/mn_storage.dir/storage/pager.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/CMakeFiles/mn_storage.dir/storage/wal.cc.o" "gcc" "src/CMakeFiles/mn_storage.dir/storage/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mn_pcmdisk.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_scm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
