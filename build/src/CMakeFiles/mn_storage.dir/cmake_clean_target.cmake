file(REMOVE_RECURSE
  "libmn_storage.a"
)
