file(REMOVE_RECURSE
  "CMakeFiles/mn_storage.dir/storage/hash_am.cc.o"
  "CMakeFiles/mn_storage.dir/storage/hash_am.cc.o.d"
  "CMakeFiles/mn_storage.dir/storage/minibdb.cc.o"
  "CMakeFiles/mn_storage.dir/storage/minibdb.cc.o.d"
  "CMakeFiles/mn_storage.dir/storage/pager.cc.o"
  "CMakeFiles/mn_storage.dir/storage/pager.cc.o.d"
  "CMakeFiles/mn_storage.dir/storage/wal.cc.o"
  "CMakeFiles/mn_storage.dir/storage/wal.cc.o.d"
  "libmn_storage.a"
  "libmn_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
