# Empty dependencies file for mn_storage.
# This may be replaced when dependencies are built.
