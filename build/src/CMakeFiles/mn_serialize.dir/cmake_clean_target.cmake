file(REMOVE_RECURSE
  "libmn_serialize.a"
)
