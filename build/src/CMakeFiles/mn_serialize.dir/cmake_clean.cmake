file(REMOVE_RECURSE
  "CMakeFiles/mn_serialize.dir/serialize/archive.cc.o"
  "CMakeFiles/mn_serialize.dir/serialize/archive.cc.o.d"
  "libmn_serialize.a"
  "libmn_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
