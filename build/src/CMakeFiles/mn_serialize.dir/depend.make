# Empty dependencies file for mn_serialize.
# This may be replaced when dependencies are built.
