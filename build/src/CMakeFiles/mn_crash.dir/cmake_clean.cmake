file(REMOVE_RECURSE
  "CMakeFiles/mn_crash.dir/crash/crash_harness.cc.o"
  "CMakeFiles/mn_crash.dir/crash/crash_harness.cc.o.d"
  "libmn_crash.a"
  "libmn_crash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_crash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
