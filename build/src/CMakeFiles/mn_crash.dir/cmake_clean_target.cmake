file(REMOVE_RECURSE
  "libmn_crash.a"
)
