# Empty compiler generated dependencies file for mn_crash.
# This may be replaced when dependencies are built.
