
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crash/crash_harness.cc" "src/CMakeFiles/mn_crash.dir/crash/crash_harness.cc.o" "gcc" "src/CMakeFiles/mn_crash.dir/crash/crash_harness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mn_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_mtm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_heap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_region.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_log.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mn_scm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
