file(REMOVE_RECURSE
  "CMakeFiles/mn_ds.dir/ds/pavl_tree.cc.o"
  "CMakeFiles/mn_ds.dir/ds/pavl_tree.cc.o.d"
  "CMakeFiles/mn_ds.dir/ds/pbp_tree.cc.o"
  "CMakeFiles/mn_ds.dir/ds/pbp_tree.cc.o.d"
  "CMakeFiles/mn_ds.dir/ds/phash_table.cc.o"
  "CMakeFiles/mn_ds.dir/ds/phash_table.cc.o.d"
  "CMakeFiles/mn_ds.dir/ds/prb_tree.cc.o"
  "CMakeFiles/mn_ds.dir/ds/prb_tree.cc.o.d"
  "CMakeFiles/mn_ds.dir/ds/vrb_tree.cc.o"
  "CMakeFiles/mn_ds.dir/ds/vrb_tree.cc.o.d"
  "libmn_ds.a"
  "libmn_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
