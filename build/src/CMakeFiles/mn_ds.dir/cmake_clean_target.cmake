file(REMOVE_RECURSE
  "libmn_ds.a"
)
