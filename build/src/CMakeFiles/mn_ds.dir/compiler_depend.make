# Empty compiler generated dependencies file for mn_ds.
# This may be replaced when dependencies are built.
