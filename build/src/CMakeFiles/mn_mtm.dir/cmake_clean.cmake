file(REMOVE_RECURSE
  "CMakeFiles/mn_mtm.dir/mtm/recovery.cc.o"
  "CMakeFiles/mn_mtm.dir/mtm/recovery.cc.o.d"
  "CMakeFiles/mn_mtm.dir/mtm/truncation.cc.o"
  "CMakeFiles/mn_mtm.dir/mtm/truncation.cc.o.d"
  "CMakeFiles/mn_mtm.dir/mtm/txn.cc.o"
  "CMakeFiles/mn_mtm.dir/mtm/txn.cc.o.d"
  "CMakeFiles/mn_mtm.dir/mtm/txn_manager.cc.o"
  "CMakeFiles/mn_mtm.dir/mtm/txn_manager.cc.o.d"
  "libmn_mtm.a"
  "libmn_mtm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_mtm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
