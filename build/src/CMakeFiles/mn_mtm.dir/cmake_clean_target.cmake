file(REMOVE_RECURSE
  "libmn_mtm.a"
)
