# Empty compiler generated dependencies file for mn_mtm.
# This may be replaced when dependencies are built.
