file(REMOVE_RECURSE
  "CMakeFiles/mn_log.dir/log/atomic_redo.cc.o"
  "CMakeFiles/mn_log.dir/log/atomic_redo.cc.o.d"
  "CMakeFiles/mn_log.dir/log/commit_record_log.cc.o"
  "CMakeFiles/mn_log.dir/log/commit_record_log.cc.o.d"
  "CMakeFiles/mn_log.dir/log/log_manager.cc.o"
  "CMakeFiles/mn_log.dir/log/log_manager.cc.o.d"
  "CMakeFiles/mn_log.dir/log/rawl.cc.o"
  "CMakeFiles/mn_log.dir/log/rawl.cc.o.d"
  "libmn_log.a"
  "libmn_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
