# Empty dependencies file for mn_log.
# This may be replaced when dependencies are built.
