file(REMOVE_RECURSE
  "libmn_log.a"
)
