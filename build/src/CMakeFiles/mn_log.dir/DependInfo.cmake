
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/log/atomic_redo.cc" "src/CMakeFiles/mn_log.dir/log/atomic_redo.cc.o" "gcc" "src/CMakeFiles/mn_log.dir/log/atomic_redo.cc.o.d"
  "/root/repo/src/log/commit_record_log.cc" "src/CMakeFiles/mn_log.dir/log/commit_record_log.cc.o" "gcc" "src/CMakeFiles/mn_log.dir/log/commit_record_log.cc.o.d"
  "/root/repo/src/log/log_manager.cc" "src/CMakeFiles/mn_log.dir/log/log_manager.cc.o" "gcc" "src/CMakeFiles/mn_log.dir/log/log_manager.cc.o.d"
  "/root/repo/src/log/rawl.cc" "src/CMakeFiles/mn_log.dir/log/rawl.cc.o" "gcc" "src/CMakeFiles/mn_log.dir/log/rawl.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mn_scm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
