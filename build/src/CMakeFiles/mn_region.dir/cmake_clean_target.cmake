file(REMOVE_RECURSE
  "libmn_region.a"
)
