# Empty dependencies file for mn_region.
# This may be replaced when dependencies are built.
