file(REMOVE_RECURSE
  "CMakeFiles/mn_region.dir/region/pstatic.cc.o"
  "CMakeFiles/mn_region.dir/region/pstatic.cc.o.d"
  "CMakeFiles/mn_region.dir/region/region_manager.cc.o"
  "CMakeFiles/mn_region.dir/region/region_manager.cc.o.d"
  "CMakeFiles/mn_region.dir/region/region_table.cc.o"
  "CMakeFiles/mn_region.dir/region/region_table.cc.o.d"
  "libmn_region.a"
  "libmn_region.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_region.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
