file(REMOVE_RECURSE
  "libmn_apps.a"
)
