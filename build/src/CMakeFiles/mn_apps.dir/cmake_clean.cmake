file(REMOVE_RECURSE
  "CMakeFiles/mn_apps.dir/apps/ldap_backends.cc.o"
  "CMakeFiles/mn_apps.dir/apps/ldap_backends.cc.o.d"
  "CMakeFiles/mn_apps.dir/apps/ldap_server.cc.o"
  "CMakeFiles/mn_apps.dir/apps/ldap_server.cc.o.d"
  "CMakeFiles/mn_apps.dir/apps/ldif_workload.cc.o"
  "CMakeFiles/mn_apps.dir/apps/ldif_workload.cc.o.d"
  "CMakeFiles/mn_apps.dir/apps/tokyo_mini.cc.o"
  "CMakeFiles/mn_apps.dir/apps/tokyo_mini.cc.o.d"
  "libmn_apps.a"
  "libmn_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mn_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
