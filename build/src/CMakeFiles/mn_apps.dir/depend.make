# Empty dependencies file for mn_apps.
# This may be replaced when dependencies are built.
