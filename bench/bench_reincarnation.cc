/**
 * @file
 * Section 6.3.2, reincarnation cost:
 *
 *  (i)  OS boot: reconstruct persistent regions by scanning the
 *       persistent mapping table (paper: ~734 ms for 1 GB of SCM,
 *       i.e. <1 s added to boot);
 *  (ii) process start: remap the persistent regions (~1.1 ms), scavenge
 *       the persistent heap and rebuild its volatile indexes (~89 ms),
 *       and replay completed-but-not-flushed transactions (3-76 us
 *       per transaction; ~300 us worst case for 4 threads).
 */

#include <cstdio>
#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "crash/crash_harness.h"
#include "region/region_manager.h"
#include "region/region_table.h"

namespace bench = mnemosyne::bench;
namespace region = mnemosyne::region;
namespace scm = mnemosyne::scm;
using mnemosyne::Runtime;

namespace {

void
bootReconstruction()
{
    std::printf("(i) OS-boot region reconstruction (mapping-table scan):\n");
    std::printf("    %10s  %10s  %12s  %14s\n", "SCM MB", "frames",
                "scan ms", "ms per GB");
    for (size_t mb : {64, 256, 512}) {
        bench::ScratchDir dir("reinc_boot");
        scm::ScmContext ctx(bench::paperScmConfig(150, /*spin=*/false));
        scm::ScopedCtx guard(ctx);
        region::RegionConfig cfg;
        cfg.backing_dir = dir.path();
        cfg.scm_capacity = mb << 20;
        cfg.va_reserve = size_t(4) << 30;
        region::RegionManager mgr(cfg);
        region::RegionLayer layer(mgr);
        // Fill most of the zone with mapped pages (worst case: a
        // persistent region entry for each SCM frame).
        layer.pmap(nullptr, (mb - 16) << 20);

        constexpr int kReps = 5;
        bench::Timer t;
        size_t frames = 0;
        for (int i = 0; i < kReps; ++i)
            frames = mgr.bootReconstruct();
        const double ms = t.ns() / 1e6 / kReps;
        std::printf("    %10zu  %10zu  %12.1f  %14.0f\n", mb, frames, ms,
                    ms * 1024 / mb);
    }
    std::printf("    paper: ~734 ms/GB (includes kernel page-descriptor "
                "setup; <1 s of boot)\n\n");
}

void
processStart()
{
    std::printf("(ii) process reincarnation:\n");
    bench::ScratchDir dir("reinc_proc");
    {
        scm::ScmContext ctx(bench::paperScmConfig(150, false));
        scm::ScopedCtx guard(ctx);
        Runtime rt(bench::paperRuntimeConfig(dir.path()));
        // Populate the heap: ~100K live allocations across size classes.
        auto **roots = static_cast<void **>(rt.regions().pstaticVar(
            "bench_roots", 128 * sizeof(void *), nullptr));
        std::mt19937_64 rng(7);
        for (int i = 0; i < 100000; ++i) {
            const size_t slot = rng() % 128;
            if (roots[slot])
                rt.pfree(&roots[slot]);
            rt.pmalloc(16 << (rng() % 8), &roots[slot]);
        }
    }
    scm::ScmContext ctx(bench::paperScmConfig(150, false));
    scm::ScopedCtx guard(ctx);
    Runtime rt(bench::paperRuntimeConfig(dir.path()));
    const auto r = rt.reincarnation();
    std::printf("    remap persistent regions: %8.2f ms  (paper ~1.1 ms)\n",
                r.region_remap.count() / 1e6);
    std::printf("    heap scavenge + indexes:  %8.2f ms  (paper ~89 ms)\n",
                r.heap_scavenge.count() / 1e6);
}

void
txnReplay()
{
    std::printf("\n(iii) replay of completed but not flushed "
                "transactions:\n");
    bench::ScratchDir dir("reinc_replay");
    const int kTxns = 256;
    {
        scm::ScmConfig sc; // failure tracking ON for the crash
        scm::ScmContext ctx(sc);
        scm::ScopedCtx guard(ctx);
        auto cfg = bench::paperRuntimeConfig(
            dir.path(), mnemosyne::mtm::Truncation::kAsync);
        Runtime rt(cfg);
        rt.txns().pauseTruncation();
        auto *arr = static_cast<uint64_t *>(rt.regions().pstaticVar(
            "replay_arr", 4096 * sizeof(uint64_t), nullptr));
        std::mt19937_64 rng(3);
        for (int i = 0; i < kTxns; ++i) {
            rt.atomic([&](mnemosyne::mtm::Txn &tx) {
                for (int w = 0; w < 8; ++w)
                    tx.writeT<uint64_t>(&arr[rng() % 4096], rng());
            });
        }
        ctx.crash(true);
    }
    scm::ScmContext ctx(bench::paperScmConfig(150, false));
    scm::ScopedCtx guard(ctx);
    bench::Timer t;
    Runtime rt(bench::paperRuntimeConfig(dir.path()));
    const auto r = rt.reincarnation();
    std::printf("    replayed %zu txns in %.0f us -> %.1f us per txn "
                "(paper: 3-76 us)\n",
                r.replayed_txns, r.txn_replay.count() / 1e3,
                r.replayed_txns
                    ? double(r.txn_replay.count()) / 1e3 / r.replayed_txns
                    : 0.0);
}

} // namespace

int
main()
{
    bench::header("Section 6.3.2: reincarnation costs");
    bench::paperNote("region reconstruction ~734 ms/GB; remap ~1.1 ms; "
                     "heap scavenge ~89 ms; replay 3-76 us/txn");
    bootReconstruction();
    processStart();
    txnReplay();
    bench::emitStatsJson("reincarnation");
    return 0;
}
