/**
 * @file
 * Table 4, OpenLDAP: update throughput of the mini directory server
 * under a SLAMD-style add-entry workload with the three backends.
 *
 * Paper numbers (updates/s): back-bdb 5428, back-ldbm 6024,
 * back-mnemosyne 7350 — back-mnemosyne ~35% over back-bdb, and all
 * three close together because PCM is fast enough that persistence is
 * a small fraction of the request time.  The paper runs 16 threads
 * (4 per core on a quad-core); on this 1-CPU container the same thread
 * count only adds scheduling noise, so the bench uses 4 threads and
 * reports the relative ordering, which is the result under test.
 */

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "apps/ldap.h"
#include "apps/ldif_workload.h"
#include "bench/bench_util.h"
#include "pcmdisk/minifs.h"

namespace bench = mnemosyne::bench;
namespace apps = mnemosyne::apps;
namespace pcm = mnemosyne::pcmdisk;
namespace scm = mnemosyne::scm;
using mnemosyne::Runtime;

namespace {

/**
 * The frontend (BER decode, ACL checks, SLAMD round trip) dominates a
 * real slapd request; 150 us per request reproduces the paper's
 * absolute throughput regime (back-bdb ~5.4K updates/s), and makes the
 * backend cost the small fraction it is in Table 4.
 */
constexpr uint64_t kFrontendUs = 150;

double
runBackend(apps::Backend &backend, int threads, uint64_t per_thread)
{
    apps::DirectoryServer server(backend);
    server.setFrontendWorkUs(kFrontendUs);
    apps::LdifWorkload workload(1);
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (uint64_t i = 0; i < per_thread; ++i)
                server.addFromLdif(
                    workload.entryLdif(uint64_t(t) * per_thread + i));
        });
    }
    bench::Timer wall;
    go.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();
    return double(threads) * per_thread / wall.s();
}

} // namespace

int
main()
{
    bench::header("Table 4 (OpenLDAP): add-entry throughput per backend");
    bench::paperNote("back-bdb 5428, back-ldbm 6024, back-mnemosyne 7350 "
                     "updates/s; mnemosyne ~+35% over bdb, ldbm between");

    const int threads = 4;
    const uint64_t per_thread = 2000;

    double bdb_rate, ldbm_rate, mnemo_rate;
    {
        pcm::PcmDisk disk(bench::paperDiskConfig());
        pcm::MiniFs fs(disk);
        apps::BackBdb be(fs, "ldap_bdb");
        bdb_rate = runBackend(be, threads, per_thread);
    }
    {
        pcm::PcmDisk disk(bench::paperDiskConfig());
        pcm::MiniFs fs(disk);
        apps::BackLdbm be(fs, "ldap_ldbm");
        ldbm_rate = runBackend(be, threads, per_thread);
    }
    {
        bench::ScratchDir dir("ldap");
        scm::ScmContext ctx(bench::paperScmConfig());
        scm::ScopedCtx guard(ctx);
        Runtime rt(bench::paperRuntimeConfig(dir.path()));
        apps::AttrDescTable descs;
        apps::BackMnemosyne be(rt, descs);
        mnemo_rate = runBackend(be, threads, per_thread);
    }

    std::printf("%-16s %-28s %12s %10s\n", "Backend", "Persistence",
                "Updates/s", "vs bdb");
    std::printf("%-16s %-28s %12.0f %9.2fx\n", "back-bdb",
                "MiniBdb txn on PCM-disk", bdb_rate, 1.0);
    std::printf("%-16s %-28s %12.0f %9.2fx\n", "back-ldbm",
                "MiniBdb + periodic flush", ldbm_rate,
                ldbm_rate / bdb_rate);
    std::printf("%-16s %-28s %12.0f %9.2fx\n", "back-mnemosyne",
                "persistent AVL cache (txns)", mnemo_rate,
                mnemo_rate / bdb_rate);

    std::printf("\nshape checks:\n");
    const double hi = std::max({bdb_rate, ldbm_rate, mnemo_rate});
    const double lo = std::min({bdb_rate, ldbm_rate, mnemo_rate});
    std::printf("  all three backends close together (paper: within "
                "35%%): %s (spread %.0f%%)\n",
                hi / lo <= 1.4 ? "yes" : "NO", (hi / lo - 1) * 100);
    std::printf("  mnemosyne/bdb = %.2fx (paper: 1.35x; see "
                "EXPERIMENTS.md — our MiniBdb baseline lacks real "
                "Berkeley DB's API overheads)\n",
                mnemo_rate / bdb_rate);
    std::printf("  standard in-memory structure (AVL) keeps pace with a "
                "tuned storage engine: %s\n",
                mnemo_rate >= 0.9 * bdb_rate ? "yes" : "NO");
    bench::emitStatsJson("table4_openldap");
    return 0;
}
