/**
 * @file
 * Figures 4 and 5: write latency and update throughput of a hash table
 * using Mnemosyne durable transactions (MTM) vs. the Berkeley-DB-style
 * storage manager (BDB) on the PCM-disk, across value sizes and thread
 * counts.
 *
 * Paper shapes to reproduce:
 *  - Figure 4: for single-threaded runs and values < 2048 B, MTM write
 *    latency is ~6x better; with larger values, BDB's disk-style
 *    optimizations (large sequential writes, one fence per block) win.
 *  - Figure 5: MTM update throughput is 10-14x BDB's with multiple
 *    threads; BDB stops scaling past 2 threads (centralized log
 *    buffer), while its 2-thread gain costs write latency (group
 *    commit).
 *
 * Thread-scaling cells that oversubscribe the CPUs actually available
 * (bench::hwThreads(), affinity-mask aware) are annotated at runtime;
 * on a 1-CPU host the MTM-vs-BDB ordering and the latency behaviour
 * still reproduce.
 */

#include <cstdio>
#include <vector>

#include "bench/hashtable_workload.h"

namespace bench = mnemosyne::bench;

int
main()
{
    bench::header("Figures 4 & 5: hashtable with durable transactions "
                  "vs Berkeley DB");
    bench::paperNote("~6x lower MTM latency below 2048 B (1 thread); "
                     "crossover at larger values; BDB stops scaling at "
                     "2 threads");

    const std::vector<size_t> sizes = {8, 64, 256, 1024, 2048, 4096};
    const std::vector<int> threads = {1, 2, 4};
    const int ops = 1200;

    const unsigned hw = bench::hwThreads();
    std::printf("%s\n\n", bench::scalingNote(threads.back()).c_str());
    // Column labels carry the oversubscription mark so every muted
    // cell is visibly annotated rather than silently misleading.
    char col[2][3][16];
    for (size_t ti = 0; ti < threads.size(); ++ti) {
        std::snprintf(col[0][ti], sizeof(col[0][ti]), "BDB-%dT%s",
                      threads[ti], unsigned(threads[ti]) > hw ? "*" : "");
        std::snprintf(col[1][ti], sizeof(col[1][ti]), "MTM-%dT%s",
                      threads[ti], unsigned(threads[ti]) > hw ? "*" : "");
    }

    struct Row {
        size_t size;
        bench::CellResult bdb[3];
        bench::CellResult mtm[3];
    };
    std::vector<Row> rows;

    for (size_t size : sizes) {
        Row row;
        row.size = size;
        for (size_t ti = 0; ti < threads.size(); ++ti) {
            row.bdb[ti] = bench::runBdbCell(threads[ti], size, ops, 150);
            row.mtm[ti] = bench::runMtmCell("fig45", threads[ti], size,
                                            ops, 150);
        }
        rows.push_back(row);
        std::printf("  measured %zu B...\n", size);
    }

    std::printf("\nFigure 4 — write latency (us per insert):\n");
    std::printf("%8s  %9s %9s %9s  %9s %9s %9s\n", "size", col[0][0],
                col[0][1], col[0][2], col[1][0], col[1][1], col[1][2]);
    for (const auto &r : rows) {
        std::printf("%8zu  %9.1f %9.1f %9.1f  %9.1f %9.1f %9.1f\n",
                    r.size, r.bdb[0].write_latency_us,
                    r.bdb[1].write_latency_us, r.bdb[2].write_latency_us,
                    r.mtm[0].write_latency_us, r.mtm[1].write_latency_us,
                    r.mtm[2].write_latency_us);
    }

    std::printf("\nFigure 5 — update throughput (K updates/s, "
                "writes + deletes):\n");
    std::printf("%8s  %9s %9s %9s  %9s %9s %9s  %7s\n", "size", col[0][0],
                col[0][1], col[0][2], col[1][0], col[1][1], col[1][2],
                "MTM/BDB");
    for (const auto &r : rows) {
        std::printf(
            "%8zu  %9.1f %9.1f %9.1f  %9.1f %9.1f %9.1f  %6.1fx\n",
            r.size, r.bdb[0].updates_per_sec / 1e3,
            r.bdb[1].updates_per_sec / 1e3,
            r.bdb[2].updates_per_sec / 1e3,
            r.mtm[0].updates_per_sec / 1e3,
            r.mtm[1].updates_per_sec / 1e3,
            r.mtm[2].updates_per_sec / 1e3,
            r.mtm[0].updates_per_sec / r.bdb[0].updates_per_sec);
    }

    std::printf("\nshape checks:\n");
    const double small_ratio =
        rows[1].bdb[0].write_latency_us / rows[1].mtm[0].write_latency_us;
    std::printf("  64 B latency:   BDB/MTM = %.1fx (paper: ~6x)\n",
                small_ratio);
    const double big_ratio =
        rows[5].bdb[0].write_latency_us / rows[5].mtm[0].write_latency_us;
    std::printf("  4096 B latency: BDB/MTM = %.1fx (paper: < 1x — BDB "
                "wins at large values)\n",
                big_ratio);
    bench::emitStatsJson("fig4_fig5_hashtable");
    return 0;
}
