/**
 * @file
 * Table 6: throughput of the tornbit RAWL vs. the baseline RAWL that
 * writes a commit record with a separate fence.
 *
 * Paper numbers (MB/s, base vs tornbit):
 *   8 B: 17/34   64 B: 128/227   256 B: 416/591   1024 B: 881/929
 *   2048 B: 1088/1045   4096 B: 1244/1093
 * — the torn bit wins up to ~2x below 2048 B (one fence instead of
 * two) and loses above (the bit-manipulation cost scales with data,
 * the extra fence does not).
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "log/commit_record_log.h"
#include "log/rawl.h"

namespace bench = mnemosyne::bench;
namespace mlog = mnemosyne::log;
namespace scm = mnemosyne::scm;

namespace {

template <typename Log>
double
throughputMBs(Log &log, size_t record_bytes, int iters)
{
    std::vector<uint64_t> record(record_bytes / 8, 0x5555aaaa5555aaaaULL);
    const size_t need = 2 * record.size() + 16;
    // Warm-up.
    log.append(record.data(), record.size());
    log.flush();
    log.truncateAll();

    bench::Timer t;
    for (int i = 0; i < iters; ++i) {
        // Consume lazily, like a log whose reader keeps up: truncation
        // cost is amortized identically for both log designs.
        if (log.freeWords() < need)
            log.truncateAll();
        log.append(record.data(), record.size());
        log.flush();
    }
    return double(record_bytes) * iters / t.s() / 1e6;
}

} // namespace

int
main()
{
    bench::header("Table 6: tornbit RAWL vs commit-record baseline");
    bench::paperNote("tornbit up to ~2x faster below 2048 B (one fence); "
                     "worse above (bit packing scales with data)");

    scm::ScmContext ctx(bench::paperScmConfig());
    scm::ScopedCtx guard(ctx);

    const std::vector<size_t> sizes = {8, 64, 256, 1024, 2048, 4096};
    std::printf("%12s  %12s  %12s  %10s\n", "record B", "base MB/s",
                "tornbit MB/s", "torn/base");

    double small_ratio = 0, big_ratio = 0;
    for (size_t bytes : sizes) {
        const int iters = bytes <= 256 ? 20000 : 5000;
        std::vector<uint64_t> base_arena((1 << 20) / 8, 0);
        std::vector<uint64_t> torn_arena((1 << 20) / 8, 0);
        auto base = mlog::CommitRecordLog::create(base_arena.data(),
                                                  1 << 20);
        auto torn = mlog::Rawl::create(torn_arena.data(), 1 << 20);

        const double base_mbs = throughputMBs(*base, bytes, iters);
        const double torn_mbs = throughputMBs(*torn, bytes, iters);
        std::printf("%12zu  %12.0f  %12.0f  %9.2fx\n", bytes, base_mbs,
                    torn_mbs, torn_mbs / base_mbs);
        if (bytes == 64)
            small_ratio = torn_mbs / base_mbs;
        if (bytes == 4096)
            big_ratio = torn_mbs / base_mbs;
    }

    std::printf("\nshape checks:\n");
    std::printf("  tornbit faster at 64 B:   %s (%.2fx, paper 1.77x)\n",
                small_ratio > 1.0 ? "yes" : "NO", small_ratio);
    std::printf("  advantage gone by 4096 B: %s (%.2fx, paper 0.88x)\n",
                big_ratio < small_ratio ? "yes" : "NO", big_ratio);

    // End-to-end check of the same claim through the MTM: with async
    // truncation off the critical path, a small durable transaction's
    // commit costs exactly one fence (the tornbit append's durability
    // point).  A two-fence log design would show 2.00 here.
    {
        bench::ScratchDir dir("table6_mtm");
        mnemosyne::Runtime rt(bench::paperRuntimeConfig(
            dir.path(), mnemosyne::mtm::Truncation::kAsync));
        uint64_t *cell = static_cast<uint64_t *>(
            rt.regions().pstaticVar("table6_cell", sizeof(uint64_t),
                                    nullptr));
        rt.txns().pauseTruncation();
        const int txns = 1000;
        const uint64_t fences0 = ctx.statsSnapshot().fences;
        for (int i = 0; i < txns; ++i) {
            rt.atomic([&](mnemosyne::mtm::Txn &tx) {
                tx.writeT<uint64_t>(cell, uint64_t(i));
            });
        }
        const uint64_t fences1 = ctx.statsSnapshot().fences;
        std::printf("  fences per durable txn:   %.2f (tornbit claim: "
                    "1.00)\n", double(fences1 - fences0) / txns);
        rt.txns().resumeTruncation();
        rt.txns().drainTruncation();

        bench::emitStatsJson("table6_rawl",
                             {{"torn_base_ratio_64B", small_ratio},
                              {"torn_base_ratio_4096B", big_ratio},
                              {"fences_per_txn",
                               double(fences1 - fences0) / txns}});
    }
    return 0;
}
