/**
 * @file
 * Table 4, Tokyo Cabinet: insert/delete throughput of TokyoMini with
 * msync-after-every-update on the PCM-disk vs. Mnemosyne durable
 * transactions, for 64 B and 1024 B values (single thread), plus the
 * multi-thread deltas the paper reports in passing.
 *
 * Paper numbers (updates/s): msync 19382 (64 B) / 2044 (1024 B);
 * Mnemosyne 42057 (64 B) / 30361 (1024 B) — 2-15x faster, and with
 * stronger guarantees (no torn pages).  Multi-threaded, Mnemosyne TC
 * degrades ~9% from tree contention while msync TC gains ~10%.
 */

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "apps/tokyo_mini.h"
#include "bench/bench_util.h"
#include "pcmdisk/minifs.h"

namespace bench = mnemosyne::bench;
namespace apps = mnemosyne::apps;
namespace pcm = mnemosyne::pcmdisk;
namespace scm = mnemosyne::scm;
using mnemosyne::Runtime;

namespace {

double
runTc(apps::TokyoMini &tc, int threads, int per_thread, size_t vsize)
{
    const std::string value(vsize, 'v');
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < per_thread; ++i) {
                const std::string key =
                    "t" + std::to_string(t) + "k" + std::to_string(i);
                tc.put(key, value);
                if (i >= 8) {
                    tc.del("t" + std::to_string(t) + "k" +
                           std::to_string(i - 8));
                }
            }
        });
    }
    bench::Timer wall;
    go.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();
    return (2.0 * per_thread - 8) * threads / wall.s();
}

} // namespace

int
main()
{
    bench::header("Table 4 (Tokyo Cabinet): msync vs Mnemosyne "
                  "insert/delete throughput");
    bench::paperNote("msync 19382/2044 vs mnemosyne 42057/30361 updates/s "
                     "(64 B / 1024 B): 2-15x faster with stronger "
                     "consistency");

    const int ops = 1500;
    std::printf("%-22s %12s %12s\n", "Configuration", "64 B", "1024 B");

    double ms64, ms1k, mn64, mn1k;
    {
        pcm::PcmDisk disk(bench::paperDiskConfig());
        pcm::MiniFs fs(disk);
        apps::TokyoMini tc64(fs, "tc64");
        ms64 = runTc(tc64, 1, ops, 64);
        apps::TokyoMini tc1k(fs, "tc1k");
        ms1k = runTc(tc1k, 1, ops, 1024);
        std::printf("%-22s %12.0f %12.0f\n", "msync on PCM-disk", ms64,
                    ms1k);
    }
    {
        bench::ScratchDir dir("tc");
        scm::ScmContext ctx(bench::paperScmConfig());
        scm::ScopedCtx guard(ctx);
        Runtime rt(bench::paperRuntimeConfig(dir.path()));
        apps::TokyoMini tc64(rt, "tree64");
        mn64 = runTc(tc64, 1, ops, 64);
        apps::TokyoMini tc1k(rt, "tree1k");
        mn1k = runTc(tc1k, 1, ops, 1024);
        std::printf("%-22s %12.0f %12.0f\n", "Mnemosyne txns", mn64, mn1k);
    }

    std::printf("\nspeedup (paper: 2.2x at 64 B, 14.9x at 1024 B):\n");
    std::printf("  64 B:   %.1fx\n", mn64 / ms64);
    std::printf("  1024 B: %.1fx\n", mn1k / ms1k);

    // Multi-thread deltas (4 threads vs 1).
    double mn4, ms4;
    {
        bench::ScratchDir dir("tc4");
        scm::ScmContext ctx(bench::paperScmConfig());
        scm::ScopedCtx guard(ctx);
        Runtime rt(bench::paperRuntimeConfig(dir.path()));
        apps::TokyoMini tc(rt, "tree4t");
        mn4 = runTc(tc, 4, ops / 2, 64);
    }
    {
        pcm::PcmDisk disk(bench::paperDiskConfig());
        pcm::MiniFs fs(disk);
        apps::TokyoMini tc(fs, "tc4t");
        ms4 = runTc(tc, 4, ops / 2, 64);
    }
    std::printf("\n4-thread 64 B (paper: mnemosyne -9%% from tree "
                "contention, msync +10%%, still far below):\n");
    std::printf("  mnemosyne: %.0f updates/s (%+.0f%% vs 1T)\n", mn4,
                (mn4 / mn64 - 1) * 100);
    std::printf("  msync:     %.0f updates/s (%+.0f%% vs 1T)\n", ms4,
                (ms4 / ms64 - 1) * 100);
    std::printf("  msync still below mnemosyne: %s\n",
                ms4 < mn4 ? "yes" : "NO");
    bench::emitStatsJson("table4_tokyocabinet");
    return 0;
}
