/**
 * @file
 * Shared infrastructure for the benchmark binaries: one per paper
 * table/figure (see DESIGN.md section 4).  Benchmarks run with the
 * paper's default emulation parameters — 150 ns extra write latency,
 * 4 GB/s write bandwidth, TSC spin delays — unless a specific
 * experiment varies them.
 */

#ifndef MNEMOSYNE_BENCH_BENCH_UTIL_H_
#define MNEMOSYNE_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#ifdef __linux__
#include <sched.h>
#endif

#include "obs/obs.h"
#include "obs/phase.h"
#include "obs/stats_registry.h"
#include "pcmdisk/pcmdisk.h"
#include "runtime/runtime.h"
#include "scm/scm.h"

namespace mnemosyne::bench {

/** A self-deleting scratch directory for persistent-region backing. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path_("/tmp/mnemosyne_bench_" + tag)
    {
        std::filesystem::remove_all(path_);
        std::filesystem::create_directories(path_);
    }

    ~ScratchDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** SCM emulator configured like the paper's test platform. */
inline scm::ScmConfig
paperScmConfig(uint64_t write_latency_ns = 150, bool spin = true)
{
    scm::ScmConfig cfg;
    cfg.latency_mode = spin ? scm::LatencyMode::kSpin
                            : scm::LatencyMode::kNone;
    cfg.write_latency_ns = write_latency_ns;
    cfg.write_bandwidth_bytes_per_us = 4096; // 4 GB/s
    // Long-running performance measurement: no failure journal.
    cfg.failure_tracking = false;
    return cfg;
}

/** PCM-disk configured like the paper's (plus kernel-stack overhead). */
inline pcmdisk::PcmDiskConfig
paperDiskConfig(uint64_t write_latency_ns = 150)
{
    pcmdisk::PcmDiskConfig cfg;
    cfg.capacity_bytes = size_t(512) << 20;
    cfg.latency_mode = scm::LatencyMode::kSpin;
    cfg.write_latency_ns = write_latency_ns;
    cfg.write_bandwidth_bytes_per_us = 4096;
    cfg.torn_block_writes = false;
    return cfg;
}

inline RuntimeConfig
paperRuntimeConfig(const std::string &dir,
                   mtm::Truncation trunc = mtm::Truncation::kSync,
                   size_t heap_mb = 256)
{
    RuntimeConfig cfg;
    cfg.use_current_scm_context = true;
    cfg.region.backing_dir = dir;
    cfg.region.scm_capacity = size_t(heap_mb + 320) << 20;
    cfg.region.va_reserve = size_t(4) << 30;
    cfg.small_heap_bytes = size_t(heap_mb) << 20;
    cfg.big_heap_bytes = size_t(64) << 20;
    cfg.txn.truncation = trunc;
    cfg.txn.log_slots = 32;
    cfg.txn.log_slot_bytes = 4 << 20;
    return cfg;
}

/**
 * CPUs actually usable by this process — the affinity mask when the
 * kernel exposes one (containers often restrict it), else the online
 * CPU count.  Never returns 0.  Thread-scaling benchmarks use this to
 * annotate (or skip) cells where thread count exceeds real parallelism
 * instead of hard-coding assumptions about the host.
 */
inline unsigned
hwThreads()
{
#ifdef __linux__
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        const int n = CPU_COUNT(&set);
        if (n > 0)
            return unsigned(n);
    }
#endif
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

/**
 * One-line provenance note for thread-scaling tables: states the
 * detected CPU count and, when @p max_threads oversubscribes it, warns
 * that those cells measure time-slicing, not parallelism.
 */
inline std::string
scalingNote(int max_threads)
{
    const unsigned hw = hwThreads();
    std::string s = "host: " + std::to_string(hw) + " CPU(s) available";
    if (unsigned(max_threads) > hw) {
        s += "; cells marked * run more threads than CPUs — scaling "
             "muted by time-slicing";
    }
    return s;
}

/** Wall-clock stopwatch in nanoseconds. */
class Timer
{
  public:
    Timer() : t0_(std::chrono::steady_clock::now()) {}

    uint64_t
    ns() const
    {
        return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - t0_)
                            .count());
    }

    double us() const { return double(ns()) / 1e3; }
    double s() const { return double(ns()) / 1e9; }

  private:
    std::chrono::steady_clock::time_point t0_;
};

inline void
header(const char *title)
{
    std::printf("\n================================================================\n");
    std::printf("%s\n", title);
    std::printf("================================================================\n");
}

inline void
paperNote(const char *note)
{
    std::printf("paper: %s\n\n", note);
}

/**
 * Pull one numeric value out of a StatsRegistry jsonSnapshot() line.
 * Returns 0 when the key is absent (e.g. a layer not linked in).  Used
 * by benchmarks that derive per-operation rates from registered
 * counters (which have no C++ lookup API by design).
 */
inline double
statValue(const std::string &json, const std::string &key)
{
    const std::string pat = "\"" + key + "\":";
    const auto p = json.find(pat);
    if (p == std::string::npos)
        return 0.0;
    return std::atof(json.c_str() + p + pat.size());
}

/**
 * Emit one machine-readable result line when MNEMOSYNE_STATS is on:
 *
 *   {"bench":"<name>","metrics":{...},"stats":{"scm.fences":31,...}}
 *
 * "metrics" carries the benchmark's headline numbers (ops/sec, MB/s);
 * "stats" is the full StatsRegistry snapshot, so every BENCH_*.json
 * trajectory is self-describing about the primitive counts behind it.
 */
inline void
emitStatsJson(
    const char *bench_name,
    const std::vector<std::pair<std::string, double>> &metrics = {})
{
    if (!obs::enabled())
        return;
    std::string line = "{\"bench\":\"";
    line += bench_name;
    line += "\",\"metrics\":{";
    bool first = true;
    for (const auto &[key, value] : metrics) {
        if (!first)
            line += ',';
        first = false;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "\"%s\":%.6g", key.c_str(), value);
        line += buf;
    }
    line += "},\"stats\":";
    line += obs::StatsRegistry::instance().jsonSnapshot();
    line += '}';
    std::printf("%s\n", line.c_str());
}

/**
 * One formatted percentile row for an HDR histogram key out of a
 * phase diff — exact *interval* percentiles, since Phase subtracts raw
 * bucket arrays, not derived quantiles.  Empty string when the
 * interval recorded nothing (key absent, sampling missed, MN_OBS=OFF).
 */
inline std::string
hdrRow(const obs::PhaseResult &r, const std::string &key)
{
    const uint64_t n = r.hdrCount(key);
    if (n == 0)
        return {};
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "p50=%llu  p90=%llu  p95=%llu  p99=%llu  p999=%llu  "
                  "(n=%llu)",
                  (unsigned long long)r.hdrQuantile(key, 0.50),
                  (unsigned long long)r.hdrQuantile(key, 0.90),
                  (unsigned long long)r.hdrQuantile(key, 0.95),
                  (unsigned long long)r.hdrQuantile(key, 0.99),
                  (unsigned long long)r.hdrQuantile(key, 0.999),
                  (unsigned long long)n);
    return buf;
}

/** Append "<prefix>_p50/_p95/_p99" metrics for an HDR key when the
 *  phase interval recorded samples. */
inline void
appendHdrMetrics(std::vector<std::pair<std::string, double>> &metrics,
                 const obs::PhaseResult &r, const std::string &key,
                 const std::string &prefix)
{
    if (r.hdrCount(key) == 0)
        return;
    metrics.emplace_back(prefix + "_p50",
                         double(r.hdrQuantile(key, 0.50)));
    metrics.emplace_back(prefix + "_p95",
                         double(r.hdrQuantile(key, 0.95)));
    metrics.emplace_back(prefix + "_p99",
                         double(r.hdrQuantile(key, 0.99)));
}

} // namespace mnemosyne::bench

#endif // MNEMOSYNE_BENCH_BENCH_UTIL_H_
