/**
 * @file
 * Figure 7: sensitivity to memory performance — Mnemosyne's advantage
 * over the Berkeley-DB-style baseline as SCM write latency grows from
 * 150 ns to 1000 ns and 2000 ns.
 *
 * Paper shape: Mnemosyne always wins for small values (it writes far
 * less data), but the benefit shrinks with latency (~+200% at 1000 ns,
 * ~+100% at 2000 ns for small values) and vanishes sooner as values
 * grow: at 2000 ns, parity is reached around 1024-byte inserts —
 * beyond that, SCM "may best be treated as a disk".
 */

#include <cstdio>
#include <vector>

#include "bench/hashtable_workload.h"

namespace bench = mnemosyne::bench;

int
main()
{
    bench::header("Figure 7: sensitivity to SCM write latency "
                  "(150/1000/2000 ns)");
    bench::paperNote("benefit over BDB shrinks with latency; at 2000 ns "
                     "parity by 1024 B inserts");

    const std::vector<size_t> sizes = {8, 64, 256, 1024, 2048, 4096};
    const std::vector<uint64_t> lats = {150, 1000, 2000};
    const int ops = 800;

    // relative performance = (BDB latency / MTM latency - 1) * 100%.
    std::printf("%8s | %22s | %22s\n", "", "write latency (us)",
                "MTM advantage (%)");
    std::printf("%8s | %6s %6s %6s | %6s %6s %6s\n", "size", "150",
                "1000", "2000", "150", "1000", "2000");

    double adv_150_small = 0, adv_2000_small = 0, adv_2000_1k = 0;
    for (size_t size : sizes) {
        double mtm_us[3], adv[3];
        for (size_t li = 0; li < lats.size(); ++li) {
            const auto mtm =
                bench::runMtmCell("fig7", 1, size, ops, lats[li]);
            const auto bdb = bench::runBdbCell(1, size, ops, lats[li]);
            mtm_us[li] = mtm.write_latency_us;
            adv[li] =
                (bdb.write_latency_us / mtm.write_latency_us - 1) * 100;
        }
        std::printf("%8zu | %6.1f %6.1f %6.1f | %+5.0f%% %+5.0f%% "
                    "%+5.0f%%\n",
                    size, mtm_us[0], mtm_us[1], mtm_us[2], adv[0], adv[1],
                    adv[2]);
        if (size == 64) {
            adv_150_small = adv[0];
            adv_2000_small = adv[2];
        }
        if (size == 1024)
            adv_2000_1k = adv[2];
    }

    std::printf("\nshape checks:\n");
    std::printf("  small-value advantage shrinks with latency: %s "
                "(%.0f%% @150ns -> %.0f%% @2000ns)\n",
                adv_2000_small < adv_150_small ? "yes" : "NO",
                adv_150_small, adv_2000_small);
    std::printf("  near parity for 1024 B at 2000 ns (paper: ~0%%): "
                "%+.0f%%\n",
                adv_2000_1k);
    bench::emitStatsJson("fig7_sensitivity");
    return 0;
}
