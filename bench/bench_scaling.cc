/**
 * @file
 * Multi-core scaling of the persistence stack (the "per-thread" design
 * claims of paper section 5 and the Hoard heritage of section 4.3).
 *
 * Two workloads, each at 1/2/4/8 threads:
 *
 *  - pmalloc-heavy: threads churn allocations through private slot
 *    ranges (sizes spanning both the superblock heap and the striped
 *    big allocator).  Measured twice: with the heap serialized on one
 *    global mutex (the pre-scaling baseline, RuntimeConfig
 *    heap_global_lock=true) and with the per-thread Hoard caches.
 *  - txn-heavy: threads run the PR3 update-transaction shape (2 reads +
 *    4 writes on distinct lines) against disjoint array regions, so the
 *    measurement exercises the log/lock/commit paths, not aborts.
 *    Runs on the software fast lane (latency_mode=kNone), comparable to
 *    bench_txn_costs' PR3 headline number.  Measured three ways: the
 *    per-commit-fence baseline, the fence-epoch combiner with
 *    synchronous commits, and the combiner with commit_async + one
 *    sync() barrier at the end — the fences/txn column is the group
 *    commit claim (the baseline pays ~2, commit + truncation; the
 *    combiner must amortize below 1 at 8 threads).  Fence counts come
 *    from the SCM emulator's own statistics, so they are exact and
 *    immune to time-slicing, unlike wall-clock throughput on an
 *    oversubscribed host.
 *
 * Methodology for the heap cells: SCM latency is emulated virtually
 * (LatencyMode::kVirtual) at the 2000 ns write-latency point of the
 * paper's Figure 7 sensitivity sweep, and each cell is scored in
 * MODELLED time = wall time + emulated device time / overlap.  Under
 * the global mutex every device write the heap issues happens inside
 * the one lock, so its delay serializes (overlap = 1); with per-thread
 * caches each thread's writes go to its own superblocks and private
 * redo log, so delays overlap across threads (overlap = nthreads; the
 * few pool transfers, counted by heap.superblock_transfers, are charged
 * as parallel too — a ~2% approximation).  This is the only honest way
 * to show lock-level scaling on a host with fewer CPUs than worker
 * threads: raw wall-clock of CPU-bound work is pinned to serial speed
 * by time-slicing no matter how the locks are arranged, while the
 * serialized-vs-overlapped device time is precisely the effect the
 * per-thread design removes.  Raw wall-clock numbers ride along in the
 * JSON for completeness, and cells that oversubscribe the CPUs are
 * annotated via bench::scalingNote().
 *
 * Contention counters (heap.lock_contended, heap.lock_wait_ns,
 * heap.superblock_transfers) are sampled around every heap cell so the
 * before/after curves in BENCH_PR4.json are self-describing about WHERE
 * the serialization went.
 */

#include <atomic>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mtm/txn_manager.h"
#include "obs/trace_ring.h"
#include "runtime/runtime.h"

namespace bench = mnemosyne::bench;
namespace scm = mnemosyne::scm;
namespace obs = mnemosyne::obs;
using mnemosyne::Runtime;

namespace {

scm::ScmConfig
fastLaneScm()
{
    scm::ScmConfig cfg;
    cfg.latency_mode = scm::LatencyMode::kNone;
    cfg.failure_tracking = false;
    return cfg;
}

struct HeapCell {
    double ops_per_sec = 0;      ///< Cycles/s in modelled time.
    double wall_ops_per_sec = 0; ///< Cycles/s in raw wall time.
    double device_ms = 0;        ///< Emulated SCM time charged (total).
    double lock_contended = 0;   ///< Contended heap-lock acquisitions.
    double lock_wait_ms = 0;     ///< Total blocked time across threads.
    double transfers = 0;        ///< Superblock cache<->pool transfers.
};

/** SCM write latency for the heap cells: the top of the paper's
 *  Figure 7 sensitivity sweep (150/1000/2000 ns). */
constexpr uint64_t kHeapCellLatencyNs = 2000;

/** One pmalloc/pfree cell: @p nthreads churning private slot ranges. */
HeapCell
runHeapCell(int nthreads, bool global_lock)
{
    constexpr size_t kSlots = 64;        // per thread
    constexpr uint64_t kWarmup = 5000;   // per thread
    constexpr uint64_t kIters = 60000;   // per thread
    // 7 small-heap classes and one big-allocator size; the big size
    // keeps the striped allocator in the picture without dominating.
    static const size_t sizes[] = {16, 40, 96, 200, 440, 1000, 2000, 8192};

    bench::ScratchDir dir(std::string("scaling_heap_") +
                          (global_lock ? "base" : "hoard") +
                          std::to_string(nthreads));
    auto scmCfg = fastLaneScm();
    scmCfg.latency_mode = scm::LatencyMode::kVirtual;
    scmCfg.write_latency_ns = kHeapCellLatencyNs;
    scm::ScmContext ctx(scmCfg);
    scm::ScopedCtx guard(ctx);
    auto rc = bench::paperRuntimeConfig(dir.path(),
                                       mnemosyne::mtm::Truncation::kSync, 32);
    rc.heap_global_lock = global_lock;
    Runtime rt(rc);

    auto **slots = static_cast<void **>(rt.regions().pstaticVar(
        "scaling_slots", 8 * kSlots * sizeof(void *), nullptr));

    auto churn = [&](int t, uint64_t iters, uint64_t seed) {
        std::mt19937_64 rng(seed);
        void **mine = slots + size_t(t) * kSlots;
        for (uint64_t i = 0; i < iters; ++i) {
            void **slot = &mine[rng() % kSlots];
            if (*slot)
                rt.pfree(slot);
            rt.pmalloc(sizes[rng() % 8], slot);
        }
    };
    auto sweep = [&] {
        for (size_t i = 0; i < 8 * kSlots; ++i)
            if (slots[i])
                rt.pfree(&slots[i]);
    };

    auto runThreads = [&](uint64_t iters, uint64_t round) {
        std::vector<std::thread> ts;
        for (int t = 0; t < nthreads; ++t)
            ts.emplace_back(churn, t, iters, round * 1000 + t);
        for (auto &th : ts)
            th.join();
    };

    runThreads(kWarmup, 1);
    sweep();

    const auto &reg = obs::StatsRegistry::instance();
    const std::string before = reg.jsonSnapshot();
    const uint64_t dev0 = ctx.emulatedDelayNs();
    bench::Timer timer;
    runThreads(kIters, 2);
    const double wall_ns = double(timer.ns());
    const uint64_t dev1 = ctx.emulatedDelayNs();
    const std::string after = reg.jsonSnapshot();
    sweep();

    auto delta = [&](const char *key) {
        return bench::statValue(after, key) - bench::statValue(before, key);
    };
    HeapCell cell;
    const double device_ns = double(dev1 - dev0);
    // Device-time overlap: serialized under the global mutex, parallel
    // across per-thread caches (see file header).
    const double overlap = global_lock ? 1.0 : double(nthreads);
    const double cycles = double(kIters) * nthreads;
    // Each cycle is one pmalloc plus (usually) one pfree.
    cell.ops_per_sec = cycles / ((wall_ns + device_ns / overlap) / 1e9);
    cell.wall_ops_per_sec = cycles / (wall_ns / 1e9);
    cell.device_ms = device_ns / 1e6;
    cell.lock_contended = delta("heap.lock_contended") +
                          delta("heap.big_stripe_contended");
    cell.lock_wait_ms = delta("heap.lock_wait_ns.sum") / 1e6;
    cell.transfers = delta("heap.superblock_transfers");
    return cell;
}

struct TxnCell {
    double ops_per_sec = 0;
    double fences_per_txn = 0;   ///< SCM fences / committed txns, exact.
    /** Interval commit-latency percentiles (mtm.commit_ns HDR, sampled
     *  1-in-16 commits); zero when obs is off. */
    double p50 = 0, p95 = 0, p99 = 0;
    uint64_t samples = 0;
};

/** Commit discipline for a txn cell. */
enum class TxnMode {
    kBaseline,      ///< Per-commit fence (group_commit off).
    kCombinerSync,  ///< Fence-epoch combiner, synchronous atomic{}.
    kCombinerAsync, ///< commit_async per txn + one sync() barrier.
};

const char *
txnModeName(TxnMode m)
{
    switch (m) {
    case TxnMode::kBaseline:      return "baseline";
    case TxnMode::kCombinerSync:  return "gc-sync";
    case TxnMode::kCombinerAsync: return "gc-async";
    }
    return "?";
}

/** One txn cell: @p nthreads running the PR3 update shape, disjoint. */
TxnCell
runTxnCell(int nthreads, TxnMode mode)
{
    constexpr uint64_t kWarmup = 20000;  // per thread
    constexpr uint64_t kTxns = 120000;   // per thread
    constexpr size_t kRegion = 4096;     // words per thread

    bench::ScratchDir dir(std::string("scaling_txn_") + txnModeName(mode) +
                          std::to_string(nthreads));
    scm::ScmContext ctx(fastLaneScm());
    scm::ScopedCtx guard(ctx);
    auto rc = bench::paperRuntimeConfig(dir.path());
    if (mode != TxnMode::kBaseline)
        rc.txn.group_commit = true;
    Runtime rt(rc);
    auto *arr = static_cast<uint64_t *>(rt.regions().pstaticVar(
        "scaling_arr", 8 * kRegion * sizeof(uint64_t), nullptr));

    // Threads hold their log lease until EVERY worker finished (the
    // combiner's grace heuristic counts live leases); the done-barrier
    // models long-lived server workers rather than exit-after-loop ones.
    std::atomic<int> done{0};
    auto worker = [&](int t, uint64_t txns, int nDone) {
        obs::setCurrentThreadName("txn-worker-" + std::to_string(t));
        uint64_t *mine = arr + size_t(t) * kRegion;
        auto body = [&](mnemosyne::mtm::Txn &tx, uint64_t i) {
            const uint64_t base = (i * 40) % (kRegion - 32);
            uint64_t v = tx.readT<uint64_t>(&mine[base]);
            v += tx.readT<uint64_t>(&mine[base + 8]);
            for (int k = 0; k < 4; ++k)
                tx.writeT<uint64_t>(&mine[base + 8 * k], v + uint64_t(k));
        };
        if (mode == TxnMode::kCombinerAsync) {
            for (uint64_t i = 0; i < txns; ++i)
                rt.atomicAsync(
                    [&](mnemosyne::mtm::Txn &tx) { body(tx, i); });
        } else {
            for (uint64_t i = 0; i < txns; ++i)
                rt.atomic([&](mnemosyne::mtm::Txn &tx) { body(tx, i); });
        }
        done.fetch_add(1);
        while (done.load() < nDone)
            std::this_thread::yield();
    };

    auto runThreads = [&](uint64_t txns) {
        done.store(0);
        std::vector<std::thread> ts;
        for (int t = 0; t < nthreads; ++t)
            ts.emplace_back(worker, t, txns, nthreads);
        for (auto &th : ts)
            th.join();
        // Durability parity across modes: async tickets are fenced and
        // the truncation backlog drained before the clock stops.
        rt.sync();
        rt.txns().drainTruncation();
    };

    runThreads(kWarmup);
    obs::Phase phase("scaling_txn_" + std::to_string(nthreads) + "t");
    const uint64_t fences0 = ctx.statsSnapshot().fences;
    bench::Timer timer;
    runThreads(kTxns);
    const double secs = timer.s();
    const uint64_t fences1 = ctx.statsSnapshot().fences;
    const auto interval = phase.finish();

    TxnCell cell;
    cell.ops_per_sec = double(kTxns) * nthreads / secs;
    cell.fences_per_txn =
        double(fences1 - fences0) / (double(kTxns) * nthreads);
    cell.samples = interval.hdrCount("mtm.commit_ns");
    if (cell.samples) {
        cell.p50 = double(interval.hdrQuantile("mtm.commit_ns", 0.50));
        cell.p95 = double(interval.hdrQuantile("mtm.commit_ns", 0.95));
        cell.p99 = double(interval.hdrQuantile("mtm.commit_ns", 0.99));
    }
    return cell;
}

} // namespace

int
main()
{
    bench::header("Multi-core scaling: per-thread heaps and "
                  "contention-free log/lock paths");
    bench::paperNote("per-thread logs and Hoard-derived per-thread heaps "
                     "keep the persistence stack scalable (sections 4.3 "
                     "and 5)");

    const std::vector<int> threads = {1, 2, 4, 8};
    std::printf("%s\n\n", bench::scalingNote(threads.back()).c_str());
    const unsigned hw = bench::hwThreads();

    std::vector<HeapCell> base(threads.size()), hoard(threads.size());
    for (size_t i = 0; i < threads.size(); ++i) {
        base[i] = runHeapCell(threads[i], true);
        hoard[i] = runHeapCell(threads[i], false);
        std::printf("  measured pmalloc @ %dT...\n", threads[i]);
    }

    std::printf("\npmalloc-heavy, modelled time at %llu ns SCM write "
                "latency (K cycles/s; cycle = pfree + pmalloc):\n",
                (unsigned long long)kHeapCellLatencyNs);
    std::printf("%8s  %12s %12s %8s  %14s %14s %10s\n", "threads",
                "global-lock", "per-thread", "gain", "contended-locks",
                "lock-wait-ms", "transfers");
    for (size_t i = 0; i < threads.size(); ++i) {
        std::printf("%7d%s  %12.1f %12.1f %7.2fx  %7.0f/%-7.0f %7.1f/%-7.1f %10.0f\n",
                    threads[i], unsigned(threads[i]) > hw ? "*" : " ",
                    base[i].ops_per_sec / 1e3, hoard[i].ops_per_sec / 1e3,
                    hoard[i].ops_per_sec / base[i].ops_per_sec,
                    base[i].lock_contended, hoard[i].lock_contended,
                    base[i].lock_wait_ms, hoard[i].lock_wait_ms,
                    hoard[i].transfers);
    }
    std::printf("(raw wall-clock, same cells, K cycles/s: ");
    for (size_t i = 0; i < threads.size(); ++i)
        std::printf("%dT %.0f/%.0f%s", threads[i],
                    base[i].wall_ops_per_sec / 1e3,
                    hoard[i].wall_ops_per_sec / 1e3,
                    i + 1 < threads.size() ? ", " : "");
    std::printf(")\n");

    const std::vector<TxnMode> modes = {
        TxnMode::kBaseline, TxnMode::kCombinerSync, TxnMode::kCombinerAsync};
    std::vector<std::vector<TxnCell>> txns(modes.size());
    for (size_t m = 0; m < modes.size(); ++m) {
        txns[m].resize(threads.size());
        for (size_t i = 0; i < threads.size(); ++i) {
            txns[m][i] = runTxnCell(threads[i], modes[m]);
            std::printf("  measured txn (%s) @ %dT...\n",
                        txnModeName(modes[m]), threads[i]);
        }
    }
    const auto &txn = txns[0]; // baseline, for the legacy shape check

    std::printf("\ntxn-heavy (K update txns/s, disjoint working sets; "
                "fences/txn exact from the emulator; commit latency in "
                "ns from the sampled HDR):\n");
    std::printf("%9s %8s  %12s %8s %11s  %10s %10s %10s\n", "mode",
                "threads", "txns/s", "vs 1T", "fences/txn", "commit-p50",
                "p95", "p99");
    for (size_t m = 0; m < modes.size(); ++m) {
        for (size_t i = 0; i < threads.size(); ++i) {
            const TxnCell &c = txns[m][i];
            std::printf("%9s %7d%s  %12.1f %7.2fx %11.3f",
                        txnModeName(modes[m]), threads[i],
                        unsigned(threads[i]) > hw ? "*" : " ",
                        c.ops_per_sec / 1e3,
                        c.ops_per_sec / txns[m][0].ops_per_sec,
                        c.fences_per_txn);
            if (c.samples)
                std::printf("  %10.0f %10.0f %10.0f\n", c.p50, c.p95,
                            c.p99);
            else
                std::printf("  %10s %10s %10s\n", "-", "-", "-");
        }
    }

    const TxnCell &gc_sync_8t = txns[1][threads.size() - 1];
    const TxnCell &gc_async_8t = txns[2][threads.size() - 1];
    std::printf("\nshape checks:\n");
    std::printf("  4T pmalloc, per-thread vs global lock: %.2fx "
                "(target >= 2.5x)\n",
                hoard[2].ops_per_sec / base[2].ops_per_sec);
    std::printf("  1T txn throughput: %.0f txns/s (PR3 recorded 2009320; "
                "must stay within 5%%)\n", txn[0].ops_per_sec);
    std::printf("  8T fences/txn: baseline %.3f, gc-sync %.3f, gc-async "
                "%.3f (combiner target < 1)\n",
                txn[threads.size() - 1].fences_per_txn,
                gc_sync_8t.fences_per_txn, gc_async_8t.fences_per_txn);

    std::vector<std::pair<std::string, double>> metrics;
    for (size_t i = 0; i < threads.size(); ++i) {
        const std::string t = std::to_string(threads[i]) + "t";
        metrics.emplace_back("pmalloc_global_lock_ops_" + t,
                             base[i].ops_per_sec);
        metrics.emplace_back("pmalloc_per_thread_ops_" + t,
                             hoard[i].ops_per_sec);
        metrics.emplace_back("pmalloc_global_lock_wall_ops_" + t,
                             base[i].wall_ops_per_sec);
        metrics.emplace_back("pmalloc_per_thread_wall_ops_" + t,
                             hoard[i].wall_ops_per_sec);
        for (size_t m = 0; m < modes.size(); ++m) {
            // Baseline keeps the legacy un-prefixed keys so the curves
            // in earlier BENCH_PR*.json stay comparable.
            const std::string pre =
                m == 0 ? std::string("txn")
                       : std::string("txn_") + txnModeName(modes[m]);
            const TxnCell &c = txns[m][i];
            metrics.emplace_back(pre + "_ops_" + t, c.ops_per_sec);
            metrics.emplace_back(pre + "_fences_per_txn_" + t,
                                 c.fences_per_txn);
            if (c.samples) {
                metrics.emplace_back(pre + "_commit_ns_p50_" + t, c.p50);
                metrics.emplace_back(pre + "_commit_ns_p95_" + t, c.p95);
                metrics.emplace_back(pre + "_commit_ns_p99_" + t, c.p99);
            }
        }
    }
    metrics.emplace_back("pmalloc_4t_speedup",
                         hoard[2].ops_per_sec / base[2].ops_per_sec);
    metrics.emplace_back("hw_threads", double(hw));
    bench::emitStatsJson("scaling", metrics);
    return 0;
}
