/**
 * @file
 * Figure 6: write-latency change of the hashtable workload with
 * asynchronous log truncation relative to synchronous, when the
 * application thread is idle 90%, 50%, and 10% of the time.
 *
 * Paper shape: at 90% and 50% idle the truncation thread keeps up and
 * write latency drops 7-31%; at 10% idle the worker stalls behind the
 * truncation backlog and latency can RISE (up to +42% for 4 KB
 * values).
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ds/phash_table.h"

namespace bench = mnemosyne::bench;
namespace ds = mnemosyne::ds;
namespace scm = mnemosyne::scm;
using mnemosyne::Runtime;
using mnemosyne::mtm::Truncation;

namespace {

/** Mean put latency (us) with a duty cycle set by idle_pct. */
double
latencyUs(Truncation trunc, size_t value_size, int idle_pct, int ops)
{
    bench::ScratchDir dir("fig6");
    scm::ScmContext ctx(bench::paperScmConfig());
    scm::ScopedCtx guard(ctx);
    Runtime rt(bench::paperRuntimeConfig(dir.path(), trunc));
    ds::PHashTable table(rt, "bench_table", 8192);

    const std::string value(value_size, 'x');
    uint64_t busy_ns_total = 0;
    uint64_t op_ns_mean = 1000; // initial idle-time estimate
    for (int i = 0; i < ops; ++i) {
        bench::Timer op;
        table.put("k" + std::to_string(i), value);
        if (i >= 8)
            table.del("k" + std::to_string(i - 8));
        const uint64_t busy = op.ns();
        busy_ns_total += busy;
        op_ns_mean = (op_ns_mean * 7 + busy) / 8;
        // Idle for idle_pct of the duty cycle: idle = busy * p/(1-p).
        if (idle_pct > 0) {
            const uint64_t idle =
                op_ns_mean * uint64_t(idle_pct) / uint64_t(100 - idle_pct);
            scm::DelayLoop::spin(idle);
        }
    }
    return double(busy_ns_total) / ops / 1e3;
}

} // namespace

int
main()
{
    bench::header("Figure 6: asynchronous vs synchronous log truncation "
                  "(latency change by idle duty cycle)");
    bench::paperNote("-7..-31% latency at 90%/50% idle; up to +42% at "
                     "10% idle (worker stalls behind truncation)");

    const std::vector<size_t> sizes = {8, 64, 256, 1024, 2048, 4096};
    const int ops = 600;

    std::printf("%8s  %10s | %22s\n", "", "sync us",
                "async latency change");
    std::printf("%8s  %10s | %6s %6s %6s\n", "size", "baseline",
                "90%idle", "50%", "10%");
    for (size_t size : sizes) {
        const double sync_us =
            latencyUs(Truncation::kSync, size, 50, ops);
        double async_delta[3];
        const int idles[3] = {90, 50, 10};
        for (int i = 0; i < 3; ++i) {
            const double async_us =
                latencyUs(Truncation::kAsync, size, idles[i], ops);
            async_delta[i] = (async_us / sync_us - 1.0) * 100.0;
        }
        std::printf("%8zu  %10.1f | %+5.0f%% %+5.0f%% %+5.0f%%\n", size,
                    sync_us, async_delta[0], async_delta[1],
                    async_delta[2]);
    }
    std::printf("\nshape check: async should reduce latency at high idle "
                "and help least (or hurt) at 10%% idle.\n");
    bench::emitStatsJson("fig6_async_trunc");
    return 0;
}
