/**
 * @file
 * Table 5: updating a red-black tree with 128-byte nodes in persistent
 * memory (Mnemosyne transactions) vs. keeping it in DRAM and
 * periodically serializing it to a file on the PCM-disk (the
 * Boost-style fast-save).
 *
 * Paper numbers: insert 4.7-5.8 us across tree sizes; serialization
 * 517 us (1K nodes) to 143,776 us (256K nodes); 189 to 24,788 inserts
 * per serialization — "on average 10 percent of the tree can be
 * updated for the cost of serializing and storing the tree just once."
 */

#include <cstdio>
#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "ds/prb_tree.h"
#include "ds/vrb_tree.h"
#include "pcmdisk/minifs.h"

namespace bench = mnemosyne::bench;
namespace ds = mnemosyne::ds;
namespace pcm = mnemosyne::pcmdisk;
namespace scm = mnemosyne::scm;
using mnemosyne::Runtime;

int
main()
{
    bench::header("Table 5: red-black tree updates vs Boost-style "
                  "serialization");
    bench::paperNote("insert 4.7-5.8 us; serialize 517 us - 143.8 ms; "
                     "189 - 24788 inserts per serialization");

    const std::vector<size_t> tree_sizes = {1024, 8192, 65536, 262144};
    std::printf("%10s  %12s  %14s  %16s\n", "tree size", "insert us",
                "serialize us", "inserts/serial.");

    bench::ScratchDir dir("table5");
    scm::ScmContext ctx(bench::paperScmConfig());
    scm::ScopedCtx guard(ctx);
    Runtime rt(bench::paperRuntimeConfig(dir.path(),mnemosyne::mtm::
                                             Truncation::kSync,
                                         /*heap_mb=*/512));
    ds::PRbTree ptree(rt, "table5_rb");
    ds::VRbTree vtree;
    pcm::PcmDisk disk(bench::paperDiskConfig());
    pcm::MiniFs fs(disk);

    uint8_t payload[ds::PRbTree::kPayloadBytes];
    std::memset(payload, 0x5a, sizeof(payload));
    std::mt19937_64 rng(1);

    size_t grown = 0;
    for (size_t target : tree_sizes) {
        // Grow both trees to the target size with identical keys.
        while (grown < target) {
            const uint64_t key = (uint64_t(grown) << 20) | (rng() & 0xfffff);
            ptree.put(key, payload, sizeof(payload));
            vtree.put(key, payload, sizeof(payload));
            ++grown;
        }

        // Mnemosyne: mean latency of transactional updates at this size
        // (updates of random existing keys keep the size stable, like
        // the steady-state tree the paper measures).
        const int kProbe = 400;
        std::vector<uint64_t> keys;
        keys.reserve(kProbe);
        ptree.forEachKey([&](uint64_t k) {
            if (keys.size() < kProbe && (rng() & 7) == 0)
                keys.push_back(k);
        });
        while (keys.size() < kProbe)
            keys.push_back(keys[rng() % keys.size()]);
        bench::Timer ti;
        for (int i = 0; i < kProbe; ++i) {
            payload[0] = uint8_t(i);
            ptree.put(keys[size_t(i)], payload, sizeof(payload));
        }
        const double insert_us = ti.us() / kProbe;

        // Baseline: serialize the whole volatile tree and store it.
        bench::Timer ts;
        vtree.saveToFile(fs, "tree_snapshot.bin");
        const double serialize_us = ts.us();

        std::printf("%10zu  %12.1f  %14.0f  %16.0f\n", target, insert_us,
                    serialize_us, serialize_us / insert_us);
    }

    std::printf("\nshape check: inserts-per-serialization must grow "
                "superlinearly with tree size (paper: 189 -> 24788).\n");
    bench::emitStatsJson("table5_serialization");
    return 0;
}
