/**
 * @file
 * The section 6.3 transaction cost model, measured with
 * google-benchmark:
 *
 *  - "the cost of instrumenting and logging each word written [is]
 *    190 ns when the transaction's write set size is smaller than 128
 *    cache lines";
 *  - "the cost of committing a transaction ... adds up to 250 ns per
 *    distinct cache line flushed";
 *  - "a hash table insert of 64 bytes requires on average 15 updates
 *    to 5 distinct cache lines, for a total cost of 4.3 us".
 *
 * Plus the raw persistence primitives underneath.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "ds/phash_table.h"
#include "mtm/txn_manager.h"
#include "obs/flight_recorder.h"
#include "runtime/runtime.h"

namespace bench = mnemosyne::bench;
namespace scm = mnemosyne::scm;
using mnemosyne::Runtime;

namespace {

/** Process-wide lazily-built runtime for the benchmarks. */
struct Env {
    Env()
        : dir("txncosts"), ctx(bench::paperScmConfig()), guard(ctx),
          rt(bench::paperRuntimeConfig(dir.path()))
    {
        arr = static_cast<uint64_t *>(rt.regions().pstaticVar(
            "cost_arr", (64 << 10) * sizeof(uint64_t), nullptr));
    }
    bench::ScratchDir dir;
    scm::ScmContext ctx;
    scm::ScopedCtx guard;
    Runtime rt;
    uint64_t *arr;
};

Env &
env()
{
    static Env e;
    return e;
}

void
BM_PrimitiveWtstoreFence(benchmark::State &state)
{
    auto &e = env();
    uint64_t w = 0;
    for (auto _ : state) {
        e.ctx.wtstoreT<uint64_t>(e.arr, ++w);
        e.ctx.fence();
    }
}
BENCHMARK(BM_PrimitiveWtstoreFence);

void
BM_PrimitiveStoreFlushFence(benchmark::State &state)
{
    auto &e = env();
    uint64_t w = 0;
    for (auto _ : state) {
        e.ctx.storeT<uint64_t>(e.arr, ++w);
        e.ctx.flush(e.arr);
        e.ctx.fence();
    }
}
BENCHMARK(BM_PrimitiveStoreFlushFence);

/** Per-word instrument+log cost: txn writing N spread-out words; the
 *  paper reports ~190 ns/word below 128 cache lines. */
void
BM_InstrumentAndLogPerWord(benchmark::State &state)
{
    auto &e = env();
    const int words = int(state.range(0));
    for (auto _ : state) {
        e.rt.atomic([&](mnemosyne::mtm::Txn &tx) {
            for (int i = 0; i < words; ++i)
                tx.writeT<uint64_t>(&e.arr[i * 8], uint64_t(i));
        });
    }
    state.counters["ns_per_word"] = benchmark::Counter(
        double(state.iterations()) * words,
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_InstrumentAndLogPerWord)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

/** Commit cost growth per distinct cache line (paper ~250 ns/line). */
void
BM_CommitPerLine(benchmark::State &state)
{
    auto &e = env();
    const int lines = int(state.range(0));
    for (auto _ : state) {
        e.rt.atomic([&](mnemosyne::mtm::Txn &tx) {
            for (int i = 0; i < lines; ++i)
                tx.writeT<uint64_t>(&e.arr[i * 8], uint64_t(i));
        });
    }
    state.counters["ns_per_line"] = benchmark::Counter(
        double(state.iterations()) * lines,
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_CommitPerLine)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/** The 4.3 us headline: one 64-byte hash table insert. */
void
BM_HashTableInsert64B(benchmark::State &state)
{
    auto &e = env();
    static mnemosyne::ds::PHashTable table(e.rt, "cost_table", 65536);
    const std::string value(64, 'x');
    uint64_t i = 0;
    for (auto _ : state)
        table.put("key" + std::to_string(i++), value);
}
BENCHMARK(BM_HashTableInsert64B);

/**
 * The PR3 headline measurement: single-thread update-transaction
 * throughput on the software fast path — latency_mode=kNone and
 * failure_tracking=false, so the emulator charges nothing and every
 * cycle goes to the STM barriers, write-set maintenance, and log
 * staging.  Each transaction reads two words and updates four words on
 * distinct cache lines (the shape of one hash-table update).  Derived
 * per-txn primitive counts (log words, fences) ride along so the
 * BENCH_PR3.json trajectory can verify the one-fence durability claim
 * and the log-write amplification directly.
 */
std::vector<std::pair<std::string, double>>
runUpdateTxnMeasurement()
{
    bench::header("Update-txn fast path (latency=kNone, no tracking)");
    bench::ScratchDir dir("txncosts_fastlane");
    scm::ScmConfig cfg;
    cfg.latency_mode = scm::LatencyMode::kNone;
    cfg.failure_tracking = false;
    scm::ScmContext ctx(cfg);
    scm::setCtx(&ctx);

    std::vector<std::pair<std::string, double>> metrics;
    {
        // Offset the VA base: the google-benchmark env's runtime still
        // holds the default persistent range.
        auto rtcfg = bench::paperRuntimeConfig(dir.path());
        rtcfg.region.va_base += size_t(64) << 30;
        mnemosyne::Runtime rt(rtcfg);
        auto *arr = static_cast<uint64_t *>(rt.regions().pstaticVar(
            "fastlane_arr", 4096 * sizeof(uint64_t), nullptr));

        auto update_txn = [&](uint64_t i) {
            rt.atomic([&](mnemosyne::mtm::Txn &tx) {
                // 2 reads + 4 writes, 8 words apart (distinct lines and
                // lock stripes), walking the array so lines vary.
                const uint64_t base = (i * 40) % 4064;
                uint64_t v = tx.readT<uint64_t>(&arr[base]);
                v += tx.readT<uint64_t>(&arr[base + 8]);
                for (int k = 0; k < 4; ++k)
                    tx.writeT<uint64_t>(&arr[base + 8 * k], v + uint64_t(k));
            });
        };

        constexpr uint64_t kWarmup = 20000;
        constexpr uint64_t kTxns = 200000;
        for (uint64_t i = 0; i < kWarmup; ++i)
            update_txn(i);

        const auto &reg = mnemosyne::obs::StatsRegistry::instance();
        const std::string before = reg.jsonSnapshot();
        const scm::ScmStats s0 = ctx.statsSnapshot();
        mnemosyne::obs::Phase phase("update_txn");
        bench::Timer timer;
        for (uint64_t i = 0; i < kTxns; ++i)
            update_txn(i);
        const double secs = timer.s();
        const auto interval = phase.finish();
        const scm::ScmStats s1 = ctx.statsSnapshot();
        const std::string after = reg.jsonSnapshot();

        const double n = double(kTxns);
        const double ops = n / secs;
        auto delta = [&](const char *key) {
            return (bench::statValue(after, key) -
                    bench::statValue(before, key)) / n;
        };
        metrics.emplace_back("fences_per_txn",
                             double(s1.fences - s0.fences) / n);
        metrics.emplace_back("wtstores_per_txn",
                             double(s1.wtstores - s0.wtstores) / n);
        metrics.emplace_back("append_words_per_txn",
                             delta("rawl.append_words"));
        metrics.emplace_back("appends_per_txn", delta("rawl.appends"));
        metrics.emplace_back("redo_words_per_txn", delta("mtm.redo_words"));
        // Exact interval percentiles of the sampled commit-operation
        // latency (HDR, ~3% relative error).
        bench::appendHdrMetrics(metrics, interval, "mtm.commit_ns",
                                "commit_ns");

        std::printf("update txns/s: %.0f  (fences/txn %.3f, "
                    "log words/txn %.2f, appends/txn %.2f)\n",
                    ops, double(s1.fences - s0.fences) / n,
                    delta("rawl.append_words"), delta("rawl.appends"));
        const std::string row = bench::hdrRow(interval, "mtm.commit_ns");
        if (!row.empty())
            std::printf("commit latency (ns): %s\n", row.c_str());

        // Flight-recorder overhead check: the same loop with sampled
        // flight recording on (1 in 64 transactions get span detail;
        // 1 in 16 unsampled transactions are TSC-timed for the
        // slow-txn trap).  The acceptance bar is throughput within 5% of the
        // plain run.  Host drift on shared machines swings plain-vs-
        // plain reruns by 15%, so a single A-then-B comparison (or a
        // best-vs-best of long passes) is hopelessly biased.  Instead:
        // pair short adjacent chunks of the two modes, alternate which
        // mode goes first within each pair (cancels order bias), and
        // take the *median of per-pair time ratios* — drift hits both
        // chunks of a pair nearly equally and cancels in the ratio,
        // and the median sheds pairs a noise burst split unevenly.
        auto &flight = mnemosyne::obs::FlightRecorder::instance();
        constexpr uint64_t kChunk = 2000;
        constexpr int kPairs = 100;
        constexpr uint64_t kChunkWarm = 200;
        std::vector<double> plain_times, flight_times, ratios;
        auto run_chunk = [&](bool with_flight) {
            flight.setSampleEvery(64);
            flight.setEnabled(with_flight);
            for (uint64_t i = 0; i < kChunkWarm; ++i)
                update_txn(i);
            bench::Timer t;
            for (uint64_t i = 0; i < kChunk; ++i)
                update_txn(i);
            return t.s();
        };
        for (int p = 0; p < kPairs; ++p) {
            double tf, tp;
            if (p & 1) {
                tp = run_chunk(false);
                tf = run_chunk(true);
            } else {
                tf = run_chunk(true);
                tp = run_chunk(false);
            }
            flight_times.push_back(tf);
            plain_times.push_back(tp);
            ratios.push_back(tf / tp);
        }
        flight.setEnabled(false);
        auto median = [](std::vector<double> v) {
            std::sort(v.begin(), v.end());
            const size_t n = v.size();
            return n % 2 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
        };
        const double med_plain = double(kChunk) / median(plain_times);
        const double med_flight = double(kChunk) / median(flight_times);
        const double overhead_pct = (median(ratios) - 1.0) * 100.0;
        metrics.emplace_back("update_txn_ops_per_sec", med_plain);
        metrics.emplace_back("update_txn_ops_per_sec_flight", med_flight);
        metrics.emplace_back("flight_overhead_pct", overhead_pct);
        std::printf("update txns/s median of %d paired chunks: %.0f "
                    "plain, %.0f with flight recording (1/64) — "
                    "overhead %.2f%% (median per-pair ratio), %llu "
                    "spans published\n",
                    kPairs, med_plain, med_flight, overhead_pct,
                    (unsigned long long)flight.published());
    }
    // Restore the google-benchmark env's context so the final stats
    // snapshot still resolves to a live emulator.
    scm::setCtx(&env().ctx);
    return metrics;
}

/**
 * The PR9 persist-path bandwidth measurements, both on exact emulator
 * counters (immune to scheduler noise on a 1-CPU host):
 *
 *  - Log bytes per transaction on the 4-word clustered update shape
 *    (one write() span), v1 vs the compact v2 record — the framed
 *    rawl.append_words delta is everything the log stages, flushes, and
 *    tornbit-restages.  Acceptance: v2 <= 0.65x v1.
 *  - Truncator flushes per transaction on a hot-key shape (every txn
 *    rewrites the same line), per-task write-back vs the batch-merged
 *    dedup.  Acceptance: >= 2x reduction.
 */
std::vector<std::pair<std::string, double>>
runPersistPathMeasurement()
{
    bench::header("Persist-path bandwidth (exact emulator counters)");
    scm::ScmConfig cfg;
    cfg.latency_mode = scm::LatencyMode::kNone;
    cfg.failure_tracking = false;

    std::vector<std::pair<std::string, double>> metrics;
    const auto &reg = mnemosyne::obs::StatsRegistry::instance();

    // --- Clustered-update log bytes, v1 vs v2 -------------------------
    double bytes_per_txn[2] = {0, 0};
    for (const bool compact : {false, true}) {
        bench::ScratchDir dir(compact ? "persist_bytes_v2"
                                      : "persist_bytes_v1");
        scm::ScmContext ctx(cfg);
        scm::setCtx(&ctx);
        auto rtcfg = bench::paperRuntimeConfig(dir.path());
        rtcfg.region.va_base += size_t(compact ? 96 : 80) << 30;
        rtcfg.txn.compact_redo = compact;
        mnemosyne::Runtime rt(rtcfg);
        auto *arr = static_cast<uint64_t *>(rt.regions().pstaticVar(
            "persist_arr", 4096 * sizeof(uint64_t), nullptr));
        constexpr uint64_t kTxns = 20000;
        auto clustered_txn = [&](uint64_t i) {
            // One contiguous 4-word span — the structure-update shape.
            uint64_t vals[4] = {i, i + 1, i + 2, i + 3};
            rt.atomic([&](mnemosyne::mtm::Txn &tx) {
                tx.write(&arr[(i * 4) % 4096], vals, sizeof(vals));
            });
        };
        for (uint64_t i = 0; i < 512; ++i)
            clustered_txn(i);
        const std::string before = reg.jsonSnapshot();
        for (uint64_t i = 0; i < kTxns; ++i)
            clustered_txn(i);
        const std::string after = reg.jsonSnapshot();
        auto delta = [&](const char *key) {
            return (bench::statValue(after, key) -
                    bench::statValue(before, key)) / double(kTxns);
        };
        bytes_per_txn[compact] = 8.0 * delta("rawl.append_words");
        if (compact) {
            metrics.emplace_back("clustered_record_words_saved_per_txn",
                                 delta("rawl.record_words_saved"));
        }
    }
    metrics.emplace_back("clustered_log_bytes_per_txn_v1",
                         bytes_per_txn[0]);
    metrics.emplace_back("clustered_log_bytes_per_txn_v2",
                         bytes_per_txn[1]);
    const double bytes_ratio = bytes_per_txn[1] / bytes_per_txn[0];
    metrics.emplace_back("clustered_log_bytes_v2_over_v1", bytes_ratio);
    std::printf("clustered 4-word txn log bytes: v1 %.1f, v2 %.1f "
                "(ratio %.3f)\n",
                bytes_per_txn[0], bytes_per_txn[1], bytes_ratio);

    // --- Hot-key truncation flushes, per-task vs batch dedup ----------
    double flushes_per_txn[2] = {0, 0};
    for (const bool dedup : {false, true}) {
        bench::ScratchDir dir(dedup ? "persist_dedup_on"
                                    : "persist_dedup_off");
        scm::ScmContext ctx(cfg);
        scm::setCtx(&ctx);
        auto rtcfg = bench::paperRuntimeConfig(
            dir.path(), mnemosyne::mtm::Truncation::kAsync);
        rtcfg.region.va_base += size_t(dedup ? 128 : 112) << 30;
        rtcfg.txn.trunc_batch_dedup = dedup;
        mnemosyne::Runtime rt(rtcfg);
        auto *arr = static_cast<uint64_t *>(rt.regions().pstaticVar(
            "hotkey_arr", 64 * sizeof(uint64_t), nullptr));
        constexpr uint64_t kTxns = 256;
        // Quiesce the truncator, pile up one batch of hot-key tasks
        // (every txn rewrites the same cache line), then drain it and
        // count ONLY the truncator's flushes.
        rt.txns().pauseTruncation();
        for (uint64_t i = 0; i < kTxns; ++i) {
            rt.atomic([&](mnemosyne::mtm::Txn &tx) {
                for (int k = 0; k < 4; ++k)
                    tx.writeT<uint64_t>(&arr[k], i + uint64_t(k));
            });
        }
        const scm::ScmStats s0 = ctx.statsSnapshot();
        rt.txns().resumeTruncation();
        rt.txns().drainTruncation();
        const scm::ScmStats s1 = ctx.statsSnapshot();
        flushes_per_txn[dedup] =
            double(s1.flushes - s0.flushes) / double(kTxns);
    }
    metrics.emplace_back("hotkey_trunc_flushes_per_txn_nodedup",
                         flushes_per_txn[0]);
    metrics.emplace_back("hotkey_trunc_flushes_per_txn_dedup",
                         flushes_per_txn[1]);
    const double factor = flushes_per_txn[1] > 0
                              ? flushes_per_txn[0] / flushes_per_txn[1]
                              : 0.0;
    metrics.emplace_back("hotkey_trunc_dedup_factor", factor);
    std::printf("hot-key truncation flushes/txn: per-task %.3f, batch "
                "dedup %.4f (%.0fx)\n",
                flushes_per_txn[0], flushes_per_txn[1], factor);

    scm::setCtx(&env().ctx);
    return metrics;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    auto metrics = runUpdateTxnMeasurement();
    const auto persist = runPersistPathMeasurement();
    metrics.insert(metrics.end(), persist.begin(), persist.end());
    bench::emitStatsJson("txn_costs", metrics);
    return 0;
}
