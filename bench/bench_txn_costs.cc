/**
 * @file
 * The section 6.3 transaction cost model, measured with
 * google-benchmark:
 *
 *  - "the cost of instrumenting and logging each word written [is]
 *    190 ns when the transaction's write set size is smaller than 128
 *    cache lines";
 *  - "the cost of committing a transaction ... adds up to 250 ns per
 *    distinct cache line flushed";
 *  - "a hash table insert of 64 bytes requires on average 15 updates
 *    to 5 distinct cache lines, for a total cost of 4.3 us".
 *
 * Plus the raw persistence primitives underneath.
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "ds/phash_table.h"
#include "mtm/txn_manager.h"
#include "runtime/runtime.h"

namespace bench = mnemosyne::bench;
namespace scm = mnemosyne::scm;
using mnemosyne::Runtime;

namespace {

/** Process-wide lazily-built runtime for the benchmarks. */
struct Env {
    Env()
        : dir("txncosts"), ctx(bench::paperScmConfig()), guard(ctx),
          rt(bench::paperRuntimeConfig(dir.path()))
    {
        arr = static_cast<uint64_t *>(rt.regions().pstaticVar(
            "cost_arr", (64 << 10) * sizeof(uint64_t), nullptr));
    }
    bench::ScratchDir dir;
    scm::ScmContext ctx;
    scm::ScopedCtx guard;
    Runtime rt;
    uint64_t *arr;
};

Env &
env()
{
    static Env e;
    return e;
}

void
BM_PrimitiveWtstoreFence(benchmark::State &state)
{
    auto &e = env();
    uint64_t w = 0;
    for (auto _ : state) {
        e.ctx.wtstoreT<uint64_t>(e.arr, ++w);
        e.ctx.fence();
    }
}
BENCHMARK(BM_PrimitiveWtstoreFence);

void
BM_PrimitiveStoreFlushFence(benchmark::State &state)
{
    auto &e = env();
    uint64_t w = 0;
    for (auto _ : state) {
        e.ctx.storeT<uint64_t>(e.arr, ++w);
        e.ctx.flush(e.arr);
        e.ctx.fence();
    }
}
BENCHMARK(BM_PrimitiveStoreFlushFence);

/** Per-word instrument+log cost: txn writing N spread-out words; the
 *  paper reports ~190 ns/word below 128 cache lines. */
void
BM_InstrumentAndLogPerWord(benchmark::State &state)
{
    auto &e = env();
    const int words = int(state.range(0));
    for (auto _ : state) {
        e.rt.atomic([&](mnemosyne::mtm::Txn &tx) {
            for (int i = 0; i < words; ++i)
                tx.writeT<uint64_t>(&e.arr[i * 8], uint64_t(i));
        });
    }
    state.counters["ns_per_word"] = benchmark::Counter(
        double(state.iterations()) * words,
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_InstrumentAndLogPerWord)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

/** Commit cost growth per distinct cache line (paper ~250 ns/line). */
void
BM_CommitPerLine(benchmark::State &state)
{
    auto &e = env();
    const int lines = int(state.range(0));
    for (auto _ : state) {
        e.rt.atomic([&](mnemosyne::mtm::Txn &tx) {
            for (int i = 0; i < lines; ++i)
                tx.writeT<uint64_t>(&e.arr[i * 8], uint64_t(i));
        });
    }
    state.counters["ns_per_line"] = benchmark::Counter(
        double(state.iterations()) * lines,
        benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_CommitPerLine)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

/** The 4.3 us headline: one 64-byte hash table insert. */
void
BM_HashTableInsert64B(benchmark::State &state)
{
    auto &e = env();
    static mnemosyne::ds::PHashTable table(e.rt, "cost_table", 65536);
    const std::string value(64, 'x');
    uint64_t i = 0;
    for (auto _ : state)
        table.put("key" + std::to_string(i++), value);
}
BENCHMARK(BM_HashTableInsert64B);

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    bench::emitStatsJson("txn_costs");
    return 0;
}
