/**
 * @file
 * Ablations of Mnemosyne design choices (DESIGN.md section 4):
 *
 *  1. Lock-table size (encounter-time locking over a hashed global
 *     array): smaller arrays alias more addresses to the same lock and
 *     manufacture false conflicts under concurrency.
 *  2. Instrumented vs streamed value writes: what routing every byte
 *     of an insert through the transactional write barriers (as the
 *     paper's compiler does) costs, vs initializing the still-private
 *     node with streaming stores and letting the commit fence cover it
 *     — the write-set size is the price of the compiler approach.
 *  3. Per-thread vs contended logging: transactions touching disjoint
 *     data with private logs scale; making all threads hammer the same
 *     stripe set shows the abort machinery's cost.
 */

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ds/phash_table.h"

namespace bench = mnemosyne::bench;
namespace ds = mnemosyne::ds;
namespace scm = mnemosyne::scm;
using mnemosyne::Runtime;

namespace {

struct AbResult {
    double kops = 0;
    uint64_t aborts = 0;
};

AbResult
hashRun(size_t lock_bits, int threads, size_t vsize, int ops,
        bool instrumented)
{
    bench::ScratchDir dir("ablation");
    scm::ScmContext ctx(bench::paperScmConfig());
    scm::ScopedCtx guard(ctx);
    auto cfg = bench::paperRuntimeConfig(dir.path());
    cfg.txn.lock_bits = lock_bits;
    Runtime rt(cfg);
    ds::PHashTable table(rt, "ab_table", 8192, instrumented);

    const std::string value(vsize, 'x');
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < ops; ++i)
                table.put("t" + std::to_string(t) + "k" + std::to_string(i),
                          value);
        });
    }
    bench::Timer w;
    go.store(true, std::memory_order_release);
    for (auto &th : ts)
        th.join();
    AbResult r;
    r.kops = double(threads) * ops / w.s() / 1e3;
    r.aborts = rt.txns().stats().aborts;
    return r;
}

} // namespace

int
main()
{
    bench::header("Ablations: lock-table size, value instrumentation");

    std::printf("1. lock-table size (4 threads, 64 B inserts, disjoint "
                "keys):\n");
    std::printf("   %10s %12s %10s\n", "lock bits", "K ops/s", "aborts");
    for (size_t bits : {6, 10, 14, 20}) {
        const auto r = hashRun(bits, 4, 64, 600, true);
        std::printf("   %10zu %12.1f %10llu\n", bits, r.kops,
                    (unsigned long long)r.aborts);
    }
    std::printf("   expectation: small arrays alias disjoint keys onto "
                "the same locks -> false conflicts and aborts.\n\n");

    std::printf("2. instrumented vs streamed value writes (1 thread):\n");
    std::printf("   %8s %16s %16s %8s\n", "size", "instrumented",
                "streamed", "ratio");
    for (size_t size : {64, 1024, 4096}) {
        const auto ins = hashRun(20, 1, size, 800, true);
        const auto str = hashRun(20, 1, size, 800, false);
        std::printf("   %8zu %13.1f K/s %13.1f K/s %7.2fx\n", size,
                    ins.kops, str.kops, str.kops / ins.kops);
    }
    std::printf("   expectation: streaming private-node initialization "
                "wins increasingly with value size — the cost of the\n"
                "   paper's instrument-everything compiler approach is "
                "the transactional write set, not durability itself.\n");
    bench::emitStatsJson("ablation");
    return 0;
}
