/**
 * @file
 * Emulator calibration (paper section 6.1): "In calibration tests, we
 * found that inserted delays are at least equal to the target delay,
 * and that our bandwidth model is accurate to within 4%."
 *
 * This binary reproduces those two calibration results for the SCM
 * emulator and the PCM-disk.
 */

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "scm/latency.h"
#include "scm/scm.h"

namespace bench = mnemosyne::bench;
namespace scm = mnemosyne::scm;

namespace {

void
delayCalibration()
{
    std::printf("delay-loop calibration (TSC spin):\n");
    std::printf("  %10s  %12s  %12s  %8s\n", "target ns", "mean ns",
                "min ns", ">=target");
    for (uint64_t target : {150, 1000, 2000, 10000}) {
        constexpr int kIters = 2000;
        uint64_t total = 0, mn = ~0ull;
        bool all_ge = true;
        for (int i = 0; i < kIters; ++i) {
            bench::Timer t;
            scm::DelayLoop::spin(target);
            const uint64_t ns = t.ns();
            total += ns;
            mn = std::min(mn, ns);
            all_ge &= (ns >= target);
        }
        std::printf("  %10llu  %12.0f  %12llu  %8s\n",
                    (unsigned long long)target, double(total) / kIters,
                    (unsigned long long)mn, all_ge ? "yes" : "NO");
    }
}

void
bandwidthCalibration()
{
    std::printf("\nbandwidth model calibration (target 4 GB/s streaming):\n");
    std::printf("  %12s  %14s  %10s\n", "stream bytes", "eff. GB/s",
                "error %");
    scm::ScmContext c(bench::paperScmConfig());
    for (size_t bytes : {4096, 65536, 1 << 20, 8 << 20}) {
        std::vector<uint8_t> src(bytes, 0xaa), dst(bytes, 0);
        // Warm once, then measure several rounds.
        c.wtstore(dst.data(), src.data(), bytes);
        c.fence();
        constexpr int kRounds = 20;
        bench::Timer t;
        for (int r = 0; r < kRounds; ++r) {
            c.wtstore(dst.data(), src.data(), bytes);
            c.fence();
        }
        const double secs = t.s();
        // Subtract the fixed 150 ns completion waits.
        const double data_secs = secs - kRounds * 150e-9;
        const double gbps = double(bytes) * kRounds / data_secs / 1e9;
        const double target_gbps = 4096e6 / 1e9; // 4096 bytes/us
        std::printf("  %12zu  %14.2f  %9.1f%%\n", bytes, gbps,
                    (gbps / target_gbps - 1.0) * 100.0);
    }
}

} // namespace

int
main()
{
    bench::header("Calibration of the SCM performance emulator "
                  "(section 6.1)");
    bench::paperNote("inserted delays are at least equal to the target "
                     "delay; bandwidth model accurate to within 4%");
    delayCalibration();
    bandwidthCalibration();
    bench::emitStatsJson("calibration");
    return 0;
}
