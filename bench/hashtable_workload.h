/**
 * @file
 * The section 6.3 microbenchmark workload, shared by the Figure 4/5
 * benchmark and the Figure 7 sensitivity study: insert/delete a hash
 * table with values of a given size, "deletes introduced at the same
 * rate as writes to ensure steady progress", comparing Mnemosyne
 * durable transactions against the Berkeley-DB-style storage manager
 * on the PCM-disk.
 */

#ifndef MNEMOSYNE_BENCH_HASHTABLE_WORKLOAD_H_
#define MNEMOSYNE_BENCH_HASHTABLE_WORKLOAD_H_

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ds/phash_table.h"
#include "pcmdisk/minifs.h"
#include "storage/minibdb.h"

namespace mnemosyne::bench {

struct CellResult {
    double write_latency_us = 0;  ///< Mean per-insert latency.
    double updates_per_sec = 0;   ///< Aggregate throughput (puts+dels).
};

/** Run one (threads, value_size) cell against the given put/del ops. */
template <typename PutFn, typename DelFn>
CellResult
runCell(int threads, size_t value_size, int ops_per_thread, PutFn put,
        DelFn del)
{
    const std::string value(value_size, 'x');
    std::atomic<uint64_t> total_put_ns{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> workers;

    Timer wall;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            uint64_t my_put_ns = 0;
            for (int i = 0; i < ops_per_thread; ++i) {
                const std::string key =
                    "t" + std::to_string(t) + "k" + std::to_string(i);
                Timer op;
                put(key, value);
                my_put_ns += op.ns();
                // Delete at the same rate, trailing by a small window.
                if (i >= 8) {
                    const std::string old =
                        "t" + std::to_string(t) + "k" +
                        std::to_string(i - 8);
                    del(old);
                }
            }
            total_put_ns.fetch_add(my_put_ns, std::memory_order_relaxed);
        });
    }
    Timer run;
    go.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();
    const double secs = run.s();

    CellResult r;
    r.write_latency_us =
        double(total_put_ns.load()) / 1e3 / threads / ops_per_thread;
    const double total_ops =
        double(threads) * (2.0 * ops_per_thread - 8); // puts + dels
    r.updates_per_sec = total_ops / secs;
    return r;
}

/** Mnemosyne transactions on the persistent hash table. */
inline CellResult
runMtmCell(const std::string &scratch_tag, int threads, size_t value_size,
           int ops_per_thread, uint64_t write_latency_ns,
           mtm::Truncation trunc = mtm::Truncation::kSync)
{
    ScratchDir dir(scratch_tag);
    scm::ScmContext ctx(paperScmConfig(write_latency_ns));
    scm::ScopedCtx guard(ctx);
    Runtime rt(paperRuntimeConfig(dir.path(), trunc));
    ds::PHashTable table(rt, "bench_table", 16384);
    return runCell(
        threads, value_size, ops_per_thread,
        [&](const std::string &k, const std::string &v) { table.put(k, v); },
        [&](const std::string &k) { table.del(k); });
}

/** The Berkeley-DB-style baseline on the PCM-disk. */
inline CellResult
runBdbCell(int threads, size_t value_size, int ops_per_thread,
           uint64_t write_latency_ns)
{
    pcmdisk::PcmDisk disk(paperDiskConfig(write_latency_ns));
    pcmdisk::MiniFs fs(disk);
    storage::MiniBdbConfig cfg;
    cfg.nbuckets = 16384;
    storage::MiniBdb db(fs, "bench", cfg);
    return runCell(
        threads, value_size, ops_per_thread,
        [&](const std::string &k, const std::string &v) {
            const auto tx = db.begin();
            db.put(tx, k, v);
            db.commit(tx);
        },
        [&](const std::string &k) {
            const auto tx = db.begin();
            db.del(tx, k);
            db.commit(tx);
        });
}

} // namespace mnemosyne::bench

#endif // MNEMOSYNE_BENCH_HASHTABLE_WORKLOAD_H_
