/**
 * @file
 * Table 2 / section 3.2: the four methods for consistently updating
 * persistent memory, implemented with the persistence primitives and
 * measured for a common task (durably update one record of a given
 * size).  The table's "ordering constraints within update" column
 * shows up directly as the fence count of each method:
 *
 *   method           ordering constraints   fences   data structures
 *   single variable          0                 1      flag, pointer
 *   append                   0                 1      log, extent
 *   shadow                   1                 2      tree, bitmap
 *   in-place (txn)          N-1              2-3      any
 *
 * (A fence both orders and awaits durability, so even 0-constraint
 * methods pay one to learn the update completed.)
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "log/rawl.h"
#include "runtime/runtime.h"
#include "scm/scm.h"

namespace bench = mnemosyne::bench;
namespace scm = mnemosyne::scm;
using mnemosyne::Runtime;

namespace {

constexpr int kIters = 4000;

/** Single variable update: atomic 64-bit write-through + fence. */
double
singleVariable(scm::ScmContext &c, uint64_t *var)
{
    bench::Timer t;
    for (int i = 0; i < kIters; ++i) {
        c.wtstoreT<uint64_t>(var, uint64_t(i));
        c.fence();
    }
    return t.us() / kIters;
}

/** Append update: write new data after the previous update (RAWL). */
double
append(mnemosyne::log::Rawl &log, size_t bytes)
{
    std::vector<uint64_t> rec(bytes / 8, 0x55aa55aa);
    bench::Timer t;
    for (int i = 0; i < kIters; ++i) {
        if (log.freeWords() < 2 * rec.size() + 16)
            log.truncateAll();
        log.append(rec.data(), rec.size());
        log.flush();
    }
    return t.us() / kIters;
}

/**
 * Shadow update: write the new version to fresh space, fence, then
 * atomically swing the reference — the store modifying the reference
 * is ordered after the stores writing the data (1 constraint).
 */
double
shadow(scm::ScmContext &c, uint8_t *arena, uint64_t *ref, size_t bytes)
{
    std::vector<uint8_t> data(bytes, 0xcd);
    bench::Timer t;
    for (int i = 0; i < kIters; ++i) {
        uint8_t *fresh = arena + (size_t(i % 64)) * bytes;
        c.wtstore(fresh, data.data(), bytes);
        c.fence(); // ordering constraint: data before reference
        c.wtstoreT<uint64_t>(ref, reinterpret_cast<uint64_t>(fresh));
        c.fence(); // await durability of the swing
    }
    return t.us() / kIters;
}

/** In-place update: a durable memory transaction (copy for recovery). */
double
inPlace(Runtime &rt, uint8_t *record, size_t bytes)
{
    std::vector<uint8_t> data(bytes, 0xab);
    bench::Timer t;
    for (int i = 0; i < kIters; ++i) {
        data[0] = uint8_t(i);
        rt.atomic([&](mnemosyne::mtm::Txn &tx) {
            tx.write(record, data.data(), bytes);
        });
    }
    return t.us() / kIters;
}

} // namespace

int
main()
{
    bench::header("Table 2 / section 3.2: the four consistent-update "
                  "methods");
    bench::paperNote("increasing flexibility costs increasing ordering: "
                     "single/append (0 constraints) < shadow (1) < "
                     "in-place (N-1, but works on any structure)");

    bench::ScratchDir dir("table2");
    scm::ScmContext ctx(bench::paperScmConfig());
    scm::ScopedCtx guard(ctx);
    Runtime rt(bench::paperRuntimeConfig(dir.path()));

    // Persistent space for every method.
    auto *var = static_cast<uint64_t *>(
        rt.regions().pstaticVar("t2_var", 8, nullptr));
    auto *log_mem = rt.pmap(nullptr, 1 << 20);
    auto log = mnemosyne::log::Rawl::create(log_mem, 1 << 20);
    auto *arena = static_cast<uint8_t *>(rt.pmap(nullptr, 1 << 20));
    auto *ref = static_cast<uint64_t *>(
        rt.regions().pstaticVar("t2_ref", 8, nullptr));
    auto *record = static_cast<uint8_t *>(
        rt.regions().pstaticVar("t2_rec", 4096, nullptr));

    std::printf("%-18s %10s | %9s %9s %9s\n", "method", "constraints",
                "64 B", "256 B", "1024 B");
    std::printf("%-18s %10s | %8.2f* %8s %9s   (*8-byte flag/pointer)\n",
                "single variable", "0", singleVariable(ctx, var), "-",
                "-");

    double ap[3], sh[3], ip[3];
    const size_t sizes[3] = {64, 256, 1024};
    for (int i = 0; i < 3; ++i) {
        ap[i] = append(*log, sizes[i]);
        sh[i] = shadow(ctx, arena, ref, sizes[i]);
        ip[i] = inPlace(rt, record, sizes[i]);
    }
    std::printf("%-18s %10s | %8.2f  %8.2f  %8.2f   (us per update)\n",
                "append (RAWL)", "0", ap[0], ap[1], ap[2]);
    std::printf("%-18s %10s | %8.2f  %8.2f  %8.2f\n", "shadow", "1",
                sh[0], sh[1], sh[2]);
    std::printf("%-18s %10s | %8.2f  %8.2f  %8.2f\n", "in-place (txn)",
                "N-1", ip[0], ip[1], ip[2]);

    std::printf("\nshape check: the general method (in-place txn) is the "
                "most expensive at every size, and the specialized "
                "methods stay within ~2x of each other (section 3.2.1): "
                "%s\n",
                (ip[0] > ap[0] && ip[0] > sh[0] && ip[2] > ap[2] &&
                 ip[2] > sh[2])
                    ? "yes"
                    : "NO");
    bench::emitStatsJson("table2_methods");
    return 0;
}
