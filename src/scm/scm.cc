#include "scm/scm.h"

#include <algorithm>
#include <cassert>
#include <random>

#include "obs/stats_registry.h"
#include "obs/trace_ring.h"

namespace mnemosyne::scm {

namespace {

std::atomic<ScmContext *> gCurrent{nullptr};
thread_local ScmContext *tCurrent = nullptr;

ScmContext &
defaultCtx()
{
    static ScmContext c{ScmConfig{}};
    return c;
}

uintptr_t
lineBase(const void *addr)
{
    return reinterpret_cast<uintptr_t>(addr) & ~(uintptr_t(kCacheLineSize) - 1);
}

uint64_t
nextCtxId()
{
    static std::atomic<uint64_t> gen{0};
    return gen.fetch_add(1, std::memory_order_relaxed) + 1;
}

// Live writes into the persistent range can race with the MTM's
// optimistic readers: Txn::readWord is a seqlock-style read that is
// validated against the stripe version and retried on instability.
// The protocol is correct, but a plain memcpy would make that race
// undefined behaviour (and a ThreadSanitizer report), so device-level
// copies go through word-sized relaxed atomics — free on x86-64 —
// whenever the destination is word-aligned.
void
deviceCopy(void *dst, const void *src, size_t len)
{
    if ((reinterpret_cast<uintptr_t>(dst) | len) & 7) {
        std::memcpy(dst, src, len);
        return;
    }
    auto *dw = reinterpret_cast<uint64_t *>(dst);
    const auto *sb = static_cast<const uint8_t *>(src);
    for (size_t i = 0; i < len / 8; ++i) {
        uint64_t v;
        std::memcpy(&v, sb + i * 8, 8);
        std::atomic_ref<uint64_t>(dw[i]).store(v, std::memory_order_relaxed);
    }
}

} // namespace

ScmContext &
ctx()
{
    if (tCurrent)
        return *tCurrent;
    ScmContext *c = gCurrent.load(std::memory_order_acquire);
    return c ? *c : defaultCtx();
}

void
setCtx(ScmContext *c)
{
    gCurrent.store(c, std::memory_order_release);
}

ScmContext *
threadCtx()
{
    return tCurrent;
}

void
setThreadCtx(ScmContext *c)
{
    tCurrent = c;
}

const char *
eventName(ScmContext::Event ev)
{
    switch (ev) {
      case ScmContext::Event::kStore: return "store";
      case ScmContext::Event::kWtStore: return "wtstore";
      case ScmContext::Event::kFlush: return "flush";
      case ScmContext::Event::kFlushOpt: return "flushopt";
      case ScmContext::Event::kFence: return "fence";
    }
    return "?";
}

ScmContext::ScmContext(ScmConfig cfg) : cfg_(cfg), id_(nextCtxId())
{
    // Emit this context's primitive counts under "scm.*" whenever it is
    // the context the free-function primitives resolve to.  Contexts
    // that are alive but not current emit nothing, so one snapshot
    // never mixes two emulators.
    statsSourceToken_ =
        obs::StatsRegistry::instance().addSource([this](obs::Sink &sink) {
            if (&ctx() != this)
                return;
            const ScmStats s = statsSnapshot();
            sink.emit("scm.stores", s.stores);
            sink.emit("scm.wtstores", s.wtstores);
            sink.emit("scm.flushes", s.flushes);
            sink.emit("scm.fences", s.fences);
            sink.emit("scm.bytes_streamed", s.bytes_streamed);
            sink.emit("scm.bytes_stored", s.bytes_stored);
            sink.emit("scm.delay_ns", s.delay_ns);
        });
}

ScmContext::~ScmContext()
{
    obs::StatsRegistry::instance().removeSource(statsSourceToken_);
    if (tCurrent == this)
        tCurrent = nullptr;
    if (gCurrent.load(std::memory_order_acquire) == this)
        setCtx(nullptr);
}

ScmContext::ThreadScm &
ScmContext::self()
{
    // Cache the lookup per (thread, context).  The cache is keyed by the
    // context's unique id, not its address: a new context may be
    // allocated where a destroyed one lived.
    thread_local uint64_t cached_id = 0;
    thread_local ThreadScm *cached_state = nullptr;
    if (cached_id == id_ && cached_state)
        return *cached_state;

    std::lock_guard<std::mutex> g(regMu_);
    auto &slot = threads_[std::this_thread::get_id()];
    if (!slot)
        slot = std::make_unique<ThreadScm>();
    cached_id = id_;
    cached_state = slot.get();
    return *slot;
}

void
ScmContext::hookEvent(Event ev, const void *addr, size_t len)
{
    // Fast lane: with no hook installed and no failure journal there is
    // no consumer of event numbers (crash-point sweeps need both), so
    // skip the shared counter bump — on a many-core performance run the
    // fetch_add line bounces between every thread issuing primitives.
    if (!hasHook_.load(std::memory_order_acquire)) {
        if (cfg_.failure_tracking)
            eventNo_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    const uint64_t n = eventNo_.fetch_add(1, std::memory_order_relaxed) + 1;
    WriteHook h;
    {
        std::lock_guard<std::mutex> g(hookMu_);
        h = hook_;
    }
    if (h)
        h(n, ev, addr, len);
}

void
ScmContext::setWriteHook(WriteHook hook)
{
    std::lock_guard<std::mutex> g(hookMu_);
    hook_ = std::move(hook);
    hasHook_.store(hook_ != nullptr, std::memory_order_release);
}

void
ScmContext::setCrashMode(CrashPersistMode m, uint64_t seed)
{
    cfg_.crash_mode = m;
    cfg_.crash_seed = seed;
}

ScmContext::JournalEntry
ScmContext::makeEntry(void *addr, const void *src, size_t len,
                      WriteState st, bool streaming)
{
    JournalEntry e;
    e.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    e.addr = reinterpret_cast<uintptr_t>(addr);
    e.len = uint32_t(len);
    e.state = st;
    e.streaming = streaming;
    if (len > JournalEntry::kInlineBytes)
        e.spill = std::make_unique<uint8_t[]>(2 * len);
    std::memcpy(e.oldBytes(), addr, len);
    std::memcpy(e.newBytes(), src, len);
    deviceCopy(addr, src, len);
    return e;
}

void
ScmContext::store(void *addr, const void *src, size_t len)
{
    if (halted_.load(std::memory_order_acquire))
        return;
    nStores_.add(1);
    bytesStored_.add(len);
    obs::TraceRing::instance().record(obs::TraceEv::kStore,
                                      uintptr_t(addr), len);
    hookEvent(Event::kStore, addr, len);
    if (!cfg_.failure_tracking) {
        deviceCopy(addr, src, len);
        return;
    }
    // Into the shared cache pool: the write is coherent and visible,
    // and any thread's later flush of its line(s) can issue it.  The
    // write is split at cache-line boundaries — clflush acts on one
    // line, so each line's portion must be claimable and persistable
    // independently (a cross-line store tears at the boundary when
    // only one of its lines was flushed before the crash).
    std::lock_guard<std::mutex> g(cache_.mu);
    auto *dst = static_cast<uint8_t *>(addr);
    const auto *s = static_cast<const uint8_t *>(src);
    size_t off = 0;
    while (off < len) {
        const uintptr_t line = lineBase(dst + off);
        const size_t n = std::min<size_t>(
            len - off,
            line + kCacheLineSize - reinterpret_cast<uintptr_t>(dst + off));
        JournalEntry e =
            makeEntry(dst + off, s + off, n, WriteState::kCached, false);
        const uint64_t key = e.seq;
        cache_.byLine[line].push_back(key);
        cache_.entries.emplace(key, std::move(e));
        off += n;
    }
}

void
ScmContext::wtstore(void *addr, const void *src, size_t len)
{
    if (halted_.load(std::memory_order_acquire))
        return;
    nWtStores_.add(1);
    bytesStreamed_.add(len);
    obs::TraceRing::instance().record(obs::TraceEv::kWtStore,
                                      uintptr_t(addr), len);
    hookEvent(Event::kWtStore, addr, len);
    if (!cfg_.failure_tracking &&
        cfg_.latency_mode == LatencyMode::kNone) {
        // Fast lane (pure software measurement): no journal entry, and
        // the bandwidth model is moot with no delay realization — skip
        // the per-thread state lookup and the steady_clock read.
        deviceCopy(addr, src, len);
        return;
    }
    ThreadScm &t = self();
    if (t.wtBytesSinceFence == 0)
        t.wtSeqStart = std::chrono::steady_clock::now();
    t.wtBytesSinceFence += len;
    if (!cfg_.failure_tracking) {
        deviceCopy(addr, src, len);
        return;
    }
    JournalEntry e = makeEntry(addr, src, len, WriteState::kIssued, true);
    std::lock_guard<std::mutex> g(t.mu);
    t.entries.push_back(std::move(e));
}

void
ScmContext::flushImpl(const void *addr, Event ev)
{
    if (halted_.load(std::memory_order_acquire))
        return;
    nFlushes_.add(1);
    obs::TraceRing::instance().record(obs::TraceEv::kFlush,
                                      uintptr_t(addr), kCacheLineSize);
    hookEvent(ev, addr, kCacheLineSize);
    if (cfg_.failure_tracking) {
        // Claim the line's cached writes: they are now issued toward
        // SCM, and a fence by *any* thread that flushed the line
        // retires them.  The entries stay in the coherent pool — the
        // claim is shared, not a hand-off — so two threads flushing
        // the same line each gain the clflush→fence durability edge
        // (asynchronous truncation relies on the cross-thread case).
        const uintptr_t base = lineBase(addr);
        ThreadScm &t = self();
        std::scoped_lock g(t.mu, cache_.mu);
        auto it = cache_.byLine.find(base);
        if (it != cache_.byLine.end()) {
            auto &keys = it->second;
            size_t w = 0;
            for (uint64_t key : keys) {
                auto eit = cache_.entries.find(key);
                if (eit == cache_.entries.end())
                    continue; // retired by a claimant's fence; prune
                eit->second.state = WriteState::kIssued;
                t.claimedKeys.push_back(key);
                keys[w++] = key;
            }
            keys.resize(w);
            if (keys.empty())
                cache_.byLine.erase(it);
        }
    }
    // Cacheable writes pay the PCM write latency on the subsequent
    // flush (paper, section 6.1).  The kNone fast lane skips even the
    // accounting: charge()'s shared atomic is a contention point.
    if (cfg_.latency_mode != LatencyMode::kNone || cfg_.failure_tracking)
        account_.charge(cfg_.latency_mode, cfg_.write_latency_ns);
}

void
ScmContext::flush(const void *addr)
{
    flushImpl(addr, Event::kFlush);
}

void
ScmContext::flushopt(const void *addr)
{
    flushImpl(addr, Event::kFlushOpt);
}

void
ScmContext::flushRange(const void *addr, size_t len)
{
    if (len == 0)
        return;
    const uintptr_t first = lineBase(addr);
    const uintptr_t last =
        lineBase(reinterpret_cast<const uint8_t *>(addr) + len - 1);
    for (uintptr_t line = first; line <= last; line += kCacheLineSize)
        flush(reinterpret_cast<const void *>(line));
}

void
ScmContext::fence()
{
    if (halted_.load(std::memory_order_acquire))
        return;
    nFences_.add(1);
    obs::TraceRing::instance().record(obs::TraceEv::kFence);
    hookEvent(Event::kFence, nullptr, 0);
    if (!cfg_.failure_tracking &&
        cfg_.latency_mode == LatencyMode::kNone) {
        // Fast lane: nothing to retire and nothing to delay — the
        // matching wtstore lane never accumulated bandwidth state, so
        // a fence is counters + trace only.
        return;
    }
    ThreadScm &t = self();

    // Bandwidth model: the delay for a sequence of streaming writes is
    // inserted after the sequence completes, sized so the sequence's
    // total duration matches the modelled bandwidth (section 6.1 —
    // "accurate to within 4%").  The time already spent issuing the
    // writes counts toward the transfer in spin mode; the virtual mode
    // charges the full model time for deterministic accounting.
    uint64_t delay = cfg_.write_latency_ns;
    if (t.wtBytesSinceFence > 0 && cfg_.write_bandwidth_bytes_per_us > 0) {
        uint64_t bw_ns =
            t.wtBytesSinceFence * 1000 / cfg_.write_bandwidth_bytes_per_us;
        if (cfg_.latency_mode == LatencyMode::kSpin) {
            const uint64_t elapsed = uint64_t(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - t.wtSeqStart)
                    .count());
            bw_ns = bw_ns > elapsed ? bw_ns - elapsed : 0;
        }
        delay += bw_ns;
        t.wtBytesSinceFence = 0;
    }

    if (cfg_.failure_tracking) {
        // Retire this thread's issued writes: they are now durable.
        // Two sources: the thread's own streamed stores, and the pool
        // entries whose lines it flushed.  A claimed entry another
        // claimant's fence already retired is simply gone.  The
        // conformance canary (ScmConfig::conform_bug) severs exactly
        // the flush half of this edge.
        std::scoped_lock g(t.mu, cache_.mu);
        std::erase_if(t.entries, [](const JournalEntry &e) {
            return e.state == WriteState::kIssued;
        });
        if (!cfg_.conform_bug) {
            for (uint64_t key : t.claimedKeys) {
                auto eit = cache_.entries.find(key);
                if (eit == cache_.entries.end())
                    continue;
                const uintptr_t line = lineBase(
                    reinterpret_cast<const void *>(eit->second.addr));
                auto lit = cache_.byLine.find(line);
                if (lit != cache_.byLine.end()) {
                    std::erase(lit->second, key);
                    if (lit->second.empty())
                        cache_.byLine.erase(lit);
                }
                cache_.entries.erase(eit);
            }
            t.claimedKeys.clear();
        }
    }
    account_.charge(cfg_.latency_mode, delay);
}

uint64_t
ScmContext::crash(bool halt_after)
{
    assert(cfg_.failure_tracking && "crash() requires failure tracking");
    if (halt_after)
        halted_.store(true, std::memory_order_release);

    // Collect every outstanding write — per-thread streamed journals
    // plus the shared cache pool — in global write order.
    std::vector<JournalEntry> all;
    {
        std::lock_guard<std::mutex> reg(regMu_);
        for (auto &[tid, t] : threads_) {
            (void)tid;
            std::lock_guard<std::mutex> g(t->mu);
            for (auto &e : t->entries)
                all.push_back(std::move(e));
            t->entries.clear();
            t->claimedKeys.clear();
            t->wtBytesSinceFence = 0;
        }
        std::lock_guard<std::mutex> g(cache_.mu);
        for (auto &[key, e] : cache_.entries) {
            (void)key;
            all.push_back(std::move(e));
        }
        cache_.entries.clear();
        cache_.byLine.clear();
    }
    std::sort(all.begin(), all.end(),
              [](const JournalEntry &a, const JournalEntry &b) {
                  return a.seq < b.seq;
              });

    // Step 1: revert, newest first, to reach the durable base.  A byte
    // whose current value differs from the entry's post-image was
    // overwritten by a *retired* (already durable) later write — e.g.
    // store(x,1) still pending while wtstore(x,2)+fence retired —
    // and rewinding it would un-persist durable data.  Such bytes are
    // superseded: patch both images to the durable value so the revert
    // and any re-apply of the entry become no-ops for them (the
    // superseded write is observationally invisible either way).  One
    // blind spot, shared with the whole pre-image scheme: a retired
    // write that stored the byte's *identical* pending value cannot be
    // told apart from "no later write" and is still rewound.
    for (auto it = all.rbegin(); it != all.rend(); ++it) {
        auto *mem = reinterpret_cast<uint8_t *>(it->addr);
        uint8_t *oldb = it->oldBytes();
        uint8_t *newb = it->newBytes();
        for (uint32_t b = 0; b < it->len; ++b) {
            if (mem[b] == newb[b])
                mem[b] = oldb[b];
            else
                oldb[b] = newb[b] = mem[b];
        }
    }

    // Step 2: re-apply the writes that "made it" to SCM, oldest first.
    if (cfg_.crash_mode == CrashPersistMode::kRandomSubset)
        return applyRandomSubset(all);
    uint64_t lost = 0;
    for (auto &e : all) {
        bool keep_entry = false;
        switch (cfg_.crash_mode) {
          case CrashPersistMode::kDropUnfenced:
            keep_entry = false;
            break;
          case CrashPersistMode::kKeepIssued:
            keep_entry = (e.state == WriteState::kIssued);
            break;
          case CrashPersistMode::kKeepAll:
            keep_entry = true;
            break;
          case CrashPersistMode::kRandomSubset:
            break; // handled above
        }
        if (keep_entry) {
            std::memcpy(reinterpret_cast<void *>(e.addr), e.newBytes(),
                        e.len);
        } else {
            ++lost;
        }
    }
    return lost;
}

uint64_t
ScmContext::applyRandomSubset(std::vector<JournalEntry> &all)
{
    // The adversarial mode realizes the Px86 failure semantics
    // (arXiv 2010.13593) the conformance oracle checks against:
    //
    //  - Survival is decided per *device-aligned* 8-byte chunk — SCM
    //    persists are atomic at aligned 64-bit granularity (paper
    //    section 2), so an unaligned write can tear exactly at the
    //    boundaries of the device words it straddles.
    //  - Persists to one cache line are FIFO: a crash cuts each line's
    //    cacheable write sequence at a single point, and the surviving
    //    writes of the line are a prefix of its write order.
    //  - Streamed writes sit in write-combining buffers, which drain
    //    in arbitrary 8-byte chunks — independent survival per chunk,
    //    exempt from the per-line FIFO.
    //
    // RNG draws happen in a layout-stable order (lines ascending, then
    // streamed chunks in write order), so a (seed, workload) pair
    // reproduces the same image wherever the arena's internal layout
    // is the same — the property sweep repro specs depend on.
    struct Chunk {
        JournalEntry *e;
        uint32_t off, n;
    };
    std::map<uintptr_t, std::vector<Chunk>> lines;
    std::vector<Chunk> wc;
    for (auto &e : all) {
        uint32_t off = 0;
        while (off < e.len) {
            const uintptr_t a = e.addr + off;
            const uint32_t n =
                std::min<uint32_t>(e.len - off, uint32_t(8 - (a & 7)));
            if (e.streaming)
                wc.push_back({&e, off, n});
            else
                lines[lineBase(reinterpret_cast<const void *>(a))]
                    .push_back({&e, off, n});
            off += n;
        }
    }

    std::mt19937_64 rng(cfg_.crash_seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<Chunk> kept;
    for (auto &[line, seqd] : lines) {
        (void)line;
        const size_t cut = size_t(rng() % (seqd.size() + 1));
        kept.insert(kept.end(), seqd.begin(), seqd.begin() + cut);
    }
    for (const auto &c : wc)
        if (rng() & 1)
            kept.push_back(c);

    std::sort(kept.begin(), kept.end(), [](const Chunk &a, const Chunk &b) {
        return a.e->seq != b.e->seq ? a.e->seq < b.e->seq : a.off < b.off;
    });
    std::unordered_map<const JournalEntry *, uint32_t> keptBytes;
    for (const auto &c : kept) {
        std::memcpy(reinterpret_cast<void *>(c.e->addr + c.off),
                    c.e->newBytes() + c.off, c.n);
        keptBytes[c.e] += c.n;
    }
    uint64_t lost = 0;
    for (const auto &e : all)
        if (keptBytes[&e] < e.len)
            ++lost;
    return lost;
}

void
ScmContext::persistAll()
{
    std::lock_guard<std::mutex> reg(regMu_);
    for (auto &[tid, t] : threads_) {
        (void)tid;
        std::lock_guard<std::mutex> g(t->mu);
        t->entries.clear();
        t->claimedKeys.clear();
        t->wtBytesSinceFence = 0;
    }
    std::lock_guard<std::mutex> g(cache_.mu);
    cache_.entries.clear();
    cache_.byLine.clear();
}

ScmStats
ScmContext::statsSnapshot() const
{
    ScmStats s;
    s.stores = nStores_.sum();
    s.wtstores = nWtStores_.sum();
    s.flushes = nFlushes_.sum();
    s.fences = nFences_.sum();
    s.bytes_streamed = bytesStreamed_.sum();
    s.bytes_stored = bytesStored_.sum();
    s.delay_ns = account_.totalNs();
    return s;
}

void
ScmContext::resetStats()
{
    nStores_.reset();
    nWtStores_.reset();
    nFlushes_.reset();
    nFences_.reset();
    bytesStreamed_.reset();
    bytesStored_.reset();
    account_.reset();
}

} // namespace mnemosyne::scm
