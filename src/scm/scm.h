/**
 * @file
 * Storage-class memory (SCM) emulator and hardware persistence primitives.
 *
 * Mnemosyne (ASPLOS 2011) relies on four hardware primitives available on
 * commodity x86 processors (section 4.1):
 *
 *  - store(addr, val):   regular cacheable store (mov); the value is
 *                        visible immediately but NOT durable.
 *  - wtstore(addr, val): write-through streaming store (movntq) into the
 *                        write-combining buffers; durable after a fence.
 *  - flush(addr):        clflush; pushes a cache line toward SCM, durable
 *                        after a fence.
 *  - fence():            mfence; blocks until write-combining buffers and
 *                        issued flushes have reached SCM.
 *
 * Because real SCM is unavailable, this module reproduces the paper's own
 * methodology (section 6.1): a DRAM-based performance emulator that
 * inserts TSC-calibrated delays for the *additional* latency of PCM
 * writes, models sequential write-through bandwidth, and — beyond the
 * paper's emulator — models the *failure* semantics of the cache
 * hierarchy so that crashes can be injected and recovery tested:
 *
 *  - Memory always holds the architecturally visible state (loads are
 *    plain reads).
 *  - A per-thread undo journal records every persistent-memory write
 *    that is not yet guaranteed durable, together with its pre-image.
 *  - fence() retires the calling thread's issued entries: its streamed
 *    writes, and every cache line the thread has flushed (the claim a
 *    flush takes on a line is shared — any thread that flushed the
 *    line can make it durable with its own fence, matching the formal
 *    clflush→fence ordering of Px86).  Entries that are only in the
 *    simulated cache (plain store(), never flushed) stay volatile.
 *  - crash() computes the post-failure SCM image: it reverts all
 *    journaled writes to obtain the durable base state and then, under
 *    CrashPersistMode::kRandomSubset, re-applies a seeded random
 *    selection of the un-retired writes at 8-byte granularity.
 *
 * The failure model follows the formal x86 persistency semantics of
 * *Taming x86-TSO Persistency* (arXiv 2010.13593), Px86: persists to
 * one cache line are FIFO (a crash cuts each line's write sequence at
 * a single point), streamed (write-combining) writes drain in
 * arbitrary aligned-8-byte chunks, and cross-line persist order is
 * unconstrained without flush+fence.  src/conform/ checks the emulator
 * against an executable oracle of that model litmus test by litmus
 * test; DESIGN.md §5.2 documents the rule-by-rule mapping and the
 * known simplifications.
 */

#ifndef MNEMOSYNE_SCM_SCM_H_
#define MNEMOSYNE_SCM_SCM_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/obs.h"
#include "scm/latency.h"

namespace mnemosyne::scm {

/** Size of a cache line / write-combining buffer on the modelled platform. */
inline constexpr size_t kCacheLineSize = 64;

/** What happens to not-yet-durable writes when the machine loses power. */
enum class CrashPersistMode {
    kDropUnfenced,  ///< Strict: every write not retired by a fence is lost.
    kKeepIssued,    ///< Flushed/streamed writes survive; cached-only are lost.
    kKeepAll,       ///< Everything survives (models a flush-on-fail platform).
    kRandomSubset,  ///< Adversarial: seeded random subset survives, any order.
};

/** Configuration of the SCM emulator. */
struct ScmConfig {
    /** Delay realization (none / spin like the paper / virtual counter). */
    LatencyMode latency_mode = LatencyMode::kNone;

    /**
     * Additional write latency of PCM over DRAM, charged per cache-line
     * flush and per fence.  The paper's default experiments use 150 ns.
     */
    uint64_t write_latency_ns = 150;

    /**
     * Sequential write-through bandwidth in bytes per microsecond.
     * The paper limits experiments to 4 GB/s (Numonyx projection),
     * i.e. ~4096 bytes/us.
     */
    uint64_t write_bandwidth_bytes_per_us = 4096;

    /** Failure model applied by crash(). */
    CrashPersistMode crash_mode = CrashPersistMode::kDropUnfenced;

    /** Seed for kRandomSubset crash persistence decisions. */
    uint64_t crash_seed = 0;

    /**
     * Track the undo journal needed by crash().  Long-running pure
     * performance benchmarks can disable tracking; crash() is then
     * unavailable but all latency accounting still applies.
     */
    bool failure_tracking = true;

    /**
     * Conformance canary (MN_CONFORM_BUG): fence() skips retiring the
     * lines the calling thread flushed, severing the clflush→fence
     * durability edge while streamed writes still retire.  Exists so
     * the Px86 conformance harness (src/conform) can prove it catches
     * a broken emulator with a deterministic repro; never set in real
     * runs.
     */
    bool conform_bug = false;
};

/** Counters describing emulator activity since the last reset. */
struct ScmStats {
    uint64_t stores = 0;        ///< store() calls.
    uint64_t wtstores = 0;      ///< wtstore() calls.
    uint64_t flushes = 0;       ///< flush() calls.
    uint64_t fences = 0;        ///< fence() calls.
    uint64_t bytes_streamed = 0;///< Bytes written through wtstore().
    uint64_t bytes_stored = 0;  ///< Bytes written through store().
    uint64_t delay_ns = 0;      ///< Total emulated PCM delay charged.
};

/** Thrown by a crash-point hook to simulate sudden failure at that point. */
struct CrashNow {
    uint64_t event_no = 0;
};

/**
 * The SCM emulator: persistence primitives, latency model, failure model.
 *
 * Thread-safe.  One context is typically installed process-wide via
 * setCtx(); tests construct private contexts.
 */
class ScmContext
{
  public:
    /** Kinds of persistence events, as seen by the write hook. */
    enum class Event { kStore, kWtStore, kFlush, kFlushOpt, kFence };

    /**
     * Crash-point hook: invoked with a global monotonically increasing
     * event number before each persistence event takes effect.  May throw
     * CrashNow to simulate failure at exactly that point.
     */
    using WriteHook =
        std::function<void(uint64_t event_no, Event ev, const void *addr,
                           size_t len)>;

    explicit ScmContext(ScmConfig cfg = {});
    ~ScmContext();

    ScmContext(const ScmContext &) = delete;
    ScmContext &operator=(const ScmContext &) = delete;

    /** Regular cacheable store: visible immediately, durable only after
     *  flush() of its line followed by fence(). */
    void store(void *addr, const void *src, size_t len);

    /** Streaming write-through store: durable after the next fence(). */
    void wtstore(void *addr, const void *src, size_t len);

    /** Write back the cache line containing @p addr (clflush). */
    void flush(const void *addr);

    /**
     * Optimized write-back of the line containing @p addr (clflushopt).
     * In this model it is durability-equivalent to flush() — the line
     * is written back and a subsequent fence by the flushing thread
     * makes it durable.  The real instruction is weaker only in its
     * ordering against *other* flushes, which does not change the set
     * of reachable post-crash states at fence granularity (DESIGN.md
     * §5.2); the separate event kind exists so protocols can state
     * intent and the conformance harness can exercise both paths.
     */
    void flushopt(const void *addr);

    /** Flush every cache line overlapping [addr, addr+len). */
    void flushRange(const void *addr, size_t len);

    /** Drain write-combining buffers and issued flushes (mfence). */
    void fence();

    /** Cache-coherent read (plain load; SCM reads are not delayed,
     *  matching the paper's emulator). */
    void
    load(void *dst, const void *addr, size_t len) const
    {
        std::memcpy(dst, addr, len);
    }

    /** Typed helpers. @{ */
    template <typename T>
    void storeT(T *addr, T val) { store(addr, &val, sizeof(T)); }
    template <typename T>
    void wtstoreT(T *addr, T val) { wtstore(addr, &val, sizeof(T)); }
    template <typename T>
    T
    loadT(const T *addr) const
    {
        T v;
        load(&v, addr, sizeof(T));
        return v;
    }
    /** @} */

    /**
     * Simulate sudden power failure: compute the post-crash SCM image
     * according to the configured CrashPersistMode, then discard all
     * volatile emulator state.  Returns the number of journaled writes
     * that were lost.
     *
     * With @p halt_after, the context is halted: every subsequent write
     * primitive becomes a no-op, so threads still unwinding (e.g. an
     * async truncation worker being torn down) cannot alter the
     * post-crash image.  Recovery then runs under a fresh context.
     */
    uint64_t crash(bool halt_after = false);

    /**
     * Halt without computing the crash image yet: the machine is "dead"
     * from this instant — all later writes are no-ops — but the failure
     * journal is kept so a subsequent crash() resolves what survived.
     * Crash-point hooks call this before throwing CrashNow so that
     * unwinding code cannot contaminate the post-crash image.
     */
    void haltNow() { halted_.store(true, std::memory_order_release); }

    bool halted() const { return halted_.load(std::memory_order_acquire); }

    /** Clean shutdown: everything reaches SCM; journal cleared. */
    void persistAll();

    /** Install (or clear, with nullptr) the crash-point hook. */
    void setWriteHook(WriteHook hook);

    /** Number of persistence events so far (for crash-point sweeps). */
    uint64_t eventCount() const { return eventNo_.load(std::memory_order_relaxed); }

    ScmStats statsSnapshot() const;
    void resetStats();

    const ScmConfig &config() const { return cfg_; }

    /** Adjust the PCM write latency (used by the sensitivity study). */
    void setWriteLatency(uint64_t ns) { cfg_.write_latency_ns = ns; }
    void setLatencyMode(LatencyMode m) { cfg_.latency_mode = m; }
    void setCrashMode(CrashPersistMode m, uint64_t seed = 0);

    /** Total emulated SCM delay charged so far, in nanoseconds. */
    uint64_t emulatedDelayNs() const { return account_.totalNs(); }

  private:
    /** Durability state of a journaled write. */
    enum class WriteState : uint8_t {
        kCached,    ///< In the simulated cache; lost unless flushed+fenced.
        kIssued,    ///< Flushed or streamed; durable at the next fence.
    };

    /** One journaled persistent-memory write with pre- and post-images. */
    struct JournalEntry {
        uint64_t seq;           ///< Global order of the write.
        uintptr_t addr;
        uint32_t len;
        WriteState state;
        bool streaming;         ///< wtstore (write-combining) vs cacheable.
        // Small writes are the common case; images are stored inline up
        // to kInlineBytes and spill to the heap beyond that.
        static constexpr size_t kInlineBytes = 64;
        std::unique_ptr<uint8_t[]> spill;   // 2*len bytes when len > inline
        uint8_t inlineBuf[2 * kInlineBytes];

        uint8_t *oldBytes() { return spill ? spill.get() : inlineBuf; }
        uint8_t *newBytes() { return oldBytes() + len; }
    };

    /**
     * Per-thread emulator state.  Holds the thread's streamed stores
     * (write-combining semantics are per-thread, so only this thread's
     * fence retires them) and the keys of cache-pool entries whose
     * lines this thread flushed (clflush + this thread's mfence makes
     * them durable, even if another thread wrote them — the
     * coherent-cache path that asynchronous log truncation depends
     * on).  The claim is shared, not exclusive: the entry stays in the
     * pool, and whichever flushing thread fences first retires it —
     * the formal clflush→fence rule of Px86 is per flush, not per
     * first-flusher.
     */
    struct ThreadScm {
        std::mutex mu;                      // guards entries against crash()
        std::vector<JournalEntry> entries;  // un-retired streamed writes
        std::vector<uint64_t> claimedKeys;  // flushed pool entries
        uint64_t wtBytesSinceFence = 0;     // for the bandwidth model
        std::chrono::steady_clock::time_point wtSeqStart;
    };

    /**
     * Writes living in the simulated (shared, coherent) cache: plain
     * store() results, split at cache-line boundaries (clflush acts on
     * one line, so each line's portion persists independently).
     * Entries flushed by some thread turn kIssued but remain here until
     * a claimant's fence retires them.  Indexed by cache line so
     * flush() can claim them.
     */
    struct CachePool {
        std::mutex mu;
        std::map<uint64_t, JournalEntry> entries;   // seq -> entry
        std::unordered_map<uintptr_t, std::vector<uint64_t>> byLine;
    };

    ThreadScm &self();
    JournalEntry makeEntry(void *addr, const void *src, size_t len,
                           WriteState st, bool streaming);
    void flushImpl(const void *addr, Event ev);
    uint64_t applyRandomSubset(std::vector<JournalEntry> &all);
    void hookEvent(Event ev, const void *addr, size_t len);

    ScmConfig cfg_;
    LatencyAccount account_;
    const uint64_t id_;     ///< Process-unique, for thread-local caching.

    std::mutex regMu_;
    std::map<std::thread::id, std::unique_ptr<ThreadScm>> threads_;
    CachePool cache_;

    std::atomic<uint64_t> seq_{0};
    std::atomic<uint64_t> eventNo_{0};
    std::atomic<bool> halted_{false};

    mutable std::mutex hookMu_;
    WriteHook hook_;
    std::atomic<bool> hasHook_{false};  ///< Skip hookMu_ when no hook set.

    // Stats: lock-free per-thread-sharded counters; a snapshot sums the
    // shards (never torn, at worst slightly stale).  This context also
    // registers itself with the obs::StatsRegistry and emits these
    // values under "scm.*" whenever it is the current context.
    obs::ShardedCounter nStores_, nWtStores_, nFlushes_, nFences_,
        bytesStreamed_, bytesStored_;
    uint64_t statsSourceToken_ = 0;
};

/** Human-readable name of a persistence event kind. */
const char *eventName(ScmContext::Event ev);

/**
 * The current SCM context: the calling thread's override if one is
 * installed (setThreadCtx), else the process-wide context (setCtx),
 * else a shared default context.
 */
ScmContext &ctx();

/** Install @p c as the process-wide context; nullptr restores default. */
void setCtx(ScmContext *c);

/**
 * Per-thread override of the current context.  The crash-consistency
 * sweeper runs one isolated emulator per worker thread; every layer
 * resolves its primitives through ctx(), so the override confines a
 * worker's writes (and its crash) to its own emulator.  Threads spawned
 * by the runtime while an override is active (the async truncation
 * worker) install their creator's context themselves.
 */
ScmContext *threadCtx();
void setThreadCtx(ScmContext *c);

/** RAII installation of a process-wide context, for tests. */
class ScopedCtx
{
  public:
    explicit ScopedCtx(ScmContext &c) { setCtx(&c); }
    ~ScopedCtx() { setCtx(nullptr); }
    ScopedCtx(const ScopedCtx &) = delete;
    ScopedCtx &operator=(const ScopedCtx &) = delete;
};

/** RAII installation of a per-thread context override (sweep workers). */
class ScopedThreadCtx
{
  public:
    explicit ScopedThreadCtx(ScmContext &c) : prev_(threadCtx())
    {
        setThreadCtx(&c);
    }
    ~ScopedThreadCtx() { setThreadCtx(prev_); }
    ScopedThreadCtx(const ScopedThreadCtx &) = delete;
    ScopedThreadCtx &operator=(const ScopedThreadCtx &) = delete;

  private:
    ScmContext *prev_;
};

/** Free-function forms of the primitives on the current context. @{ */
inline void store(void *a, const void *s, size_t n) { ctx().store(a, s, n); }
inline void wtstore(void *a, const void *s, size_t n) { ctx().wtstore(a, s, n); }
inline void flush(const void *a) { ctx().flush(a); }
inline void flushopt(const void *a) { ctx().flushopt(a); }
inline void flushRange(const void *a, size_t n) { ctx().flushRange(a, n); }
inline void fence() { ctx().fence(); }
template <typename T> void storeT(T *a, T v) { ctx().storeT(a, v); }
template <typename T> void wtstoreT(T *a, T v) { ctx().wtstoreT(a, v); }
template <typename T> T loadT(const T *a) { return ctx().loadT(a); }
/** @} */

} // namespace mnemosyne::scm

#endif // MNEMOSYNE_SCM_SCM_H_
