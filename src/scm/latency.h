/**
 * @file
 * Latency emulation for storage-class memory (SCM).
 *
 * Reproduces the paper's performance emulator (Mnemosyne, ASPLOS 2011,
 * section 6.1): delays are implemented with a loop that reads the
 * processor's timestamp counter each iteration and spins until the
 * requested delay has elapsed.  A virtual mode accumulates delays into a
 * counter instead of spinning, for deterministic accounting in tests.
 */

#ifndef MNEMOSYNE_SCM_LATENCY_H_
#define MNEMOSYNE_SCM_LATENCY_H_

#include <atomic>
#include <cstdint>

namespace mnemosyne::scm {

/** How emulated SCM delays are realized. */
enum class LatencyMode {
    kNone,      ///< No delays (functional simulation only).
    kSpin,      ///< Busy-wait on the TSC, like the paper's emulator.
    kVirtual,   ///< Accumulate delay in a counter without spinning.
};

/**
 * Calibrated TSC-based spin-delay engine.
 *
 * Calibration happens once per process on first use; the calibration
 * measures TSC ticks per nanosecond against the steady clock.
 */
class DelayLoop
{
  public:
    /** Spin for at least @p ns nanoseconds. */
    static void spin(uint64_t ns);

    /** Read the calibrated TSC rate (ticks per nanosecond, scaled by 2^16). */
    static uint64_t ticksPerNsQ16();

    /** Raw timestamp counter read. */
    static uint64_t rdtsc();
};

/**
 * Per-context emulated-time accounting.  In kVirtual mode, delays are
 * added here; in kSpin mode they are both spun and recorded so that
 * benchmarks can report emulated SCM time separately.
 */
class LatencyAccount
{
  public:
    void
    charge(LatencyMode mode, uint64_t ns)
    {
        totalNs_.fetch_add(ns, std::memory_order_relaxed);
        if (mode == LatencyMode::kSpin)
            DelayLoop::spin(ns);
    }

    uint64_t totalNs() const { return totalNs_.load(std::memory_order_relaxed); }
    void reset() { totalNs_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> totalNs_{0};
};

} // namespace mnemosyne::scm

#endif // MNEMOSYNE_SCM_LATENCY_H_
