#include "scm/latency.h"

#include <chrono>

namespace mnemosyne::scm {

namespace {

#if defined(__x86_64__)
inline uint64_t
readTsc()
{
    uint32_t lo, hi;
    asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
    return (uint64_t(hi) << 32) | lo;
}
#else
inline uint64_t
readTsc()
{
    return uint64_t(std::chrono::steady_clock::now().time_since_epoch().count());
}
#endif

/**
 * Measure TSC ticks per nanosecond once, scaled by 2^16 to keep integer
 * math while preserving sub-tick precision.
 */
uint64_t
calibrate()
{
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const uint64_t c0 = readTsc();
    // Spin for ~2 ms of wall time: long enough to average out noise,
    // short enough not to be noticed at process start.
    while (std::chrono::duration_cast<std::chrono::microseconds>(
               clock::now() - t0).count() < 2000) {
    }
    const uint64_t c1 = readTsc();
    const auto t1 = clock::now();
    const uint64_t ns = uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    if (ns == 0 || c1 <= c0)
        return 1 << 16; // fall back to 1 tick/ns
    return ((c1 - c0) << 16) / ns;
}

} // namespace

uint64_t
DelayLoop::ticksPerNsQ16()
{
    static const uint64_t rate = calibrate();
    return rate;
}

uint64_t
DelayLoop::rdtsc()
{
    return readTsc();
}

void
DelayLoop::spin(uint64_t ns)
{
    if (ns == 0)
        return;
    const uint64_t target = (ns * ticksPerNsQ16()) >> 16;
    const uint64_t start = readTsc();
    while (readTsc() - start < target) {
        // Calibration tests (bench_calibration) verify that inserted
        // delays are at least equal to the target delay.
    }
}

} // namespace mnemosyne::scm
