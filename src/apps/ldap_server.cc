#include "apps/ldap.h"

#include <algorithm>
#include <stdexcept>

#include "scm/latency.h"

namespace mnemosyne::apps {

std::string
Entry::encode() const
{
    serialize::OArchive oa;
    oa &*const_cast<Entry *>(this);
    return std::string(reinterpret_cast<const char *>(oa.buffer().data()),
                       oa.buffer().size());
}

Entry
Entry::decode(const std::string &bytes)
{
    std::vector<uint8_t> data(bytes.begin(), bytes.end());
    serialize::IArchive ia(std::move(data));
    Entry e;
    ia &e;
    return e;
}

AttrDescTable::AttrDescTable()
{
    static std::atomic<uint64_t> gen{0};
    generation_ = gen.fetch_add(1, std::memory_order_relaxed) + 1;
}

const AttrDescTable::Desc &
AttrDescTable::resolve(const std::string &name)
{
    std::lock_guard<std::mutex> g(mu_);
    auto &slot = descs_[name];
    if (!slot) {
        slot = std::make_unique<Desc>();
        slot->name = name;
        slot->id = nextId_++;
    }
    return *slot;
}

Entry
DirectoryServer::parseLdif(const std::string &ldif)
{
    // A small but real LDIF parser: "attr: value" lines, dn first.
    Entry e;
    size_t pos = 0;
    while (pos < ldif.size()) {
        size_t eol = ldif.find('\n', pos);
        if (eol == std::string::npos)
            eol = ldif.size();
        const std::string line = ldif.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        const size_t colon = line.find(':');
        if (colon == std::string::npos)
            throw std::invalid_argument("LDIF: malformed line: " + line);
        std::string attr = line.substr(0, colon);
        std::string value = line.substr(colon + 1);
        if (!value.empty() && value[0] == ' ')
            value.erase(0, 1);
        std::transform(attr.begin(), attr.end(), attr.begin(), ::tolower);
        if (attr == "dn") {
            e.dn = value;
        } else {
            e.attrs.emplace_back(std::move(attr), std::move(value));
        }
    }
    if (e.dn.empty())
        throw std::invalid_argument("LDIF: entry without dn");
    return e;
}

void
DirectoryServer::schemaCheck(const Entry &entry)
{
    // The frontend work a real slapd performs before the backend: make
    // sure structural attributes exist and values are sane.
    bool has_oc = false;
    for (const auto &[attr, value] : entry.attrs) {
        if (value.empty())
            throw std::invalid_argument("empty value for " + attr);
        if (attr == "objectclass")
            has_oc = true;
    }
    if (!has_oc)
        throw std::invalid_argument("entry without objectClass: " + entry.dn);
}

void
DirectoryServer::frontendWork()
{
    if (frontendUs_ > 0)
        scm::DelayLoop::spin(frontendUs_ * 1000);
}

void
DirectoryServer::addFromLdif(const std::string &ldif)
{
    Entry e = parseLdif(ldif);
    schemaCheck(e);
    frontendWork();
    backend_.add(e);
    backend_.tick();
    processed_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<Entry>
DirectoryServer::search(const std::string &dn)
{
    frontendWork();
    auto r = backend_.search(dn);
    processed_.fetch_add(1, std::memory_order_relaxed);
    return r;
}

} // namespace mnemosyne::apps
