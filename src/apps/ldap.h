/**
 * @file
 * A miniature LDAP directory server with the three storage backends of
 * the paper's Table 4 study:
 *
 *  - back-bdb: the default transactional backend — every add commits
 *    through the MiniBdb storage manager (WAL + group commit on the
 *    PCM-disk), with a read-mostly entry cache in front.
 *  - back-ldbm: MiniBdb without transactions; dirty data is flushed
 *    periodically to minimize the window of vulnerability, trading
 *    reliability for speed.
 *  - back-mnemosyne: the backing store is REMOVED, leaving only a
 *    persistent cache — an AVL tree of entries in persistent memory
 *    updated with durable transactions (paper section 6.2).
 *
 * back-mnemosyne also reproduces the paper's volatile-pointer detail:
 * cache entries reference the frontend's attribute descriptions, which
 * live in volatile memory; each entry carries a generation stamp and
 * re-resolves the descriptions by name after a restart.
 */

#ifndef MNEMOSYNE_APPS_LDAP_H_
#define MNEMOSYNE_APPS_LDAP_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ds/pavl_tree.h"
#include "runtime/runtime.h"
#include "serialize/archive.h"
#include "storage/minibdb.h"

namespace mnemosyne::apps {

/** One directory entry: a DN plus attribute/value pairs. */
struct Entry {
    std::string dn;
    std::vector<std::pair<std::string, std::string>> attrs;

    template <typename Archive>
    void
    serialize(Archive &ar, unsigned)
    {
        ar &dn &attrs;
    }

    std::string encode() const;
    static Entry decode(const std::string &bytes);
};

/**
 * The frontend's attribute description table: volatile, rebuilt every
 * process lifetime (hence the generation stamp).
 */
class AttrDescTable
{
  public:
    struct Desc {
        std::string name;
        uint32_t id;
    };

    AttrDescTable();

    /** Resolve (interning on first use) an attribute description. */
    const Desc &resolve(const std::string &name);

    uint64_t generation() const { return generation_; }

  private:
    uint64_t generation_;
    std::mutex mu_;
    std::unordered_map<std::string, std::unique_ptr<Desc>> descs_;
    uint32_t nextId_ = 1;
};

/** Storage backend interface. */
class Backend
{
  public:
    virtual ~Backend() = default;
    virtual const char *name() const = 0;
    virtual void add(const Entry &entry) = 0;
    virtual std::optional<Entry> search(const std::string &dn) = 0;
    virtual size_t entryCount() = 0;
    /** Housekeeping hook (back-ldbm's periodic flush). */
    virtual void tick() {}
};

/** The default transactional backend (Berkeley DB with transactions). */
class BackBdb : public Backend
{
  public:
    BackBdb(pcmdisk::MiniFs &fs, const std::string &prefix);
    const char *name() const override { return "back-bdb"; }
    void add(const Entry &entry) override;
    std::optional<Entry> search(const std::string &dn) override;
    size_t entryCount() override;

  private:
    storage::MiniBdb db_;
    std::mutex cacheMu_;
    std::unordered_map<std::string, Entry> cache_;
};

/** Berkeley DB without transactions + periodic flush. */
class BackLdbm : public Backend
{
  public:
    BackLdbm(pcmdisk::MiniFs &fs, const std::string &prefix,
             size_t flush_every = 64);
    const char *name() const override { return "back-ldbm"; }
    void add(const Entry &entry) override;
    std::optional<Entry> search(const std::string &dn) override;
    size_t entryCount() override;
    void tick() override;

  private:
    storage::MiniBdb db_;
    size_t flushEvery_;
    std::atomic<uint64_t> sinceFlush_{0};
    std::mutex cacheMu_;
    std::unordered_map<std::string, Entry> cache_;
};

/** The persistent-cache-only backend built on Mnemosyne. */
class BackMnemosyne : public Backend
{
  public:
    BackMnemosyne(Runtime &rt, AttrDescTable &descs,
                  const std::string &name = "ldap_cache");
    const char *name() const override { return "back-mnemosyne"; }
    void add(const Entry &entry) override;
    std::optional<Entry> search(const std::string &dn) override;
    size_t entryCount() override;

  private:
    Runtime &rt_;
    AttrDescTable &descs_;
    ds::PAvlTree cache_;
};

/**
 * The server frontend: performs the request-processing work (decode,
 * schema check, normalization) and dispatches to a backend.
 *
 * A real slapd spends far more time in the protocol/frontend path
 * (BER decode, ACL evaluation, index maintenance, SLAMD round trip)
 * than in the storage backend — which is exactly why the paper's three
 * backends land within 35% of each other (Table 4).  That work has no
 * analogue in this mini server, so setFrontendWorkUs() lets the
 * benchmark model it with a calibrated busy period per request
 * (default: none).
 */
class DirectoryServer
{
  public:
    explicit DirectoryServer(Backend &backend) : backend_(backend) {}

    /** Simulated frontend cost per request, in microseconds. */
    void setFrontendWorkUs(uint64_t us) { frontendUs_ = us; }

    /** Process one LDAP add request (LDIF text in, like SLAMD sends). */
    void addFromLdif(const std::string &ldif);

    std::optional<Entry> search(const std::string &dn);

    Backend &backend() { return backend_; }
    uint64_t processed() const { return processed_.load(); }

    static Entry parseLdif(const std::string &ldif);

  private:
    void schemaCheck(const Entry &entry);
    void frontendWork();

    Backend &backend_;
    std::atomic<uint64_t> processed_{0};
    uint64_t frontendUs_ = 0;
};

} // namespace mnemosyne::apps

#endif // MNEMOSYNE_APPS_LDAP_H_
