#include "apps/tokyo_mini.h"

namespace mnemosyne::apps {

TokyoMini::TokyoMini(pcmdisk::MiniFs &fs, const std::string &prefix)
    : mode_(Mode::kMsync)
{
    storage::MiniBdbConfig cfg;
    cfg.transactional = false; // TC does not write-ahead log; it msyncs
    cfg.nbuckets = 1024;
    db_ = std::make_unique<storage::MiniBdb>(fs, prefix, cfg);
}

TokyoMini::TokyoMini(Runtime &rt, const std::string &name)
    : mode_(Mode::kMnemosyne)
{
    tree_ = std::make_unique<ds::PBpTree>(rt, name);
}

void
TokyoMini::put(std::string_view key, std::string_view value)
{
    if (mode_ == Mode::kMsync) {
        db_->put(0, key, value);
        db_->flush(); // msync after every update
    } else {
        tree_->put(key, value);
    }
}

bool
TokyoMini::get(std::string_view key, std::string *value)
{
    if (mode_ == Mode::kMsync)
        return db_->get(key, value);
    return tree_->get(key, value);
}

bool
TokyoMini::del(std::string_view key)
{
    if (mode_ == Mode::kMsync) {
        const bool hit = db_->del(0, key);
        if (hit)
            db_->flush();
        return hit;
    }
    const bool hit = tree_->del(key);
    return hit;
}

size_t
TokyoMini::count()
{
    if (mode_ == Mode::kMsync)
        return db_->count();
    return tree_->size();
}

} // namespace mnemosyne::apps
