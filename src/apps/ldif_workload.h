/**
 * @file
 * SLAMD-style workload generation: LDIF entries from an inetOrgPerson
 * template, like the paper's "LDIF template to generate a workload of
 * 100,000 directory entries" (section 6.2).
 */

#ifndef MNEMOSYNE_APPS_LDIF_WORKLOAD_H_
#define MNEMOSYNE_APPS_LDIF_WORKLOAD_H_

#include <cstdint>
#include <string>

namespace mnemosyne::apps {

class LdifWorkload
{
  public:
    explicit LdifWorkload(uint64_t seed = 1,
                          std::string base_dn = "ou=People,dc=example,"
                                                "dc=com");

    /** The LDIF text of the i-th generated entry (deterministic). */
    std::string entryLdif(uint64_t i) const;

    /** The DN of the i-th entry. */
    std::string entryDn(uint64_t i) const;

  private:
    uint64_t seed_;
    std::string baseDn_;
};

} // namespace mnemosyne::apps

#endif // MNEMOSYNE_APPS_LDIF_WORKLOAD_H_
