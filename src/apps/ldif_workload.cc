#include "apps/ldif_workload.h"

#include <cstdio>
#include <random>

namespace mnemosyne::apps {

namespace {

const char *const kFirstNames[] = {"alice", "bob",   "carol", "dave",
                                   "erin",  "frank", "grace", "heidi",
                                   "ivan",  "judy",  "mike",  "nina"};
const char *const kLastNames[] = {"smith",  "jones", "brown",  "garcia",
                                  "miller", "davis", "wilson", "moore",
                                  "taylor", "lee",   "walker", "hall"};

} // namespace

LdifWorkload::LdifWorkload(uint64_t seed, std::string base_dn)
    : seed_(seed), baseDn_(std::move(base_dn))
{
}

std::string
LdifWorkload::entryDn(uint64_t i) const
{
    char buf[64];
    snprintf(buf, sizeof(buf), "uid=user%06llu,", (unsigned long long)i);
    return std::string(buf) + baseDn_;
}

std::string
LdifWorkload::entryLdif(uint64_t i) const
{
    std::mt19937_64 rng(seed_ * 1000003 + i);
    const char *first = kFirstNames[rng() % std::size(kFirstNames)];
    const char *last = kLastNames[rng() % std::size(kLastNames)];

    std::string ldif;
    ldif.reserve(512);
    ldif += "dn: " + entryDn(i) + "\n";
    ldif += "objectClass: inetOrgPerson\n";
    ldif += "uid: user" + std::to_string(i) + "\n";
    ldif += std::string("cn: ") + first + " " + last + "\n";
    ldif += std::string("sn: ") + last + "\n";
    ldif += std::string("givenName: ") + first + "\n";
    ldif += std::string("mail: ") + first + "." + last + "@example.com\n";
    ldif +=
        "telephoneNumber: +1 555 " + std::to_string(1000 + rng() % 9000) +
        " " + std::to_string(1000 + rng() % 9000) + "\n";
    ldif += "employeeNumber: " + std::to_string(rng() % 1000000) + "\n";
    ldif += "description: generated entry number " + std::to_string(i) +
            " for the SLAMD-style add workload\n";
    return ldif;
}

} // namespace mnemosyne::apps
