/**
 * @file
 * TokyoMini: a miniature Tokyo Cabinet — "a high-performance key-value
 * store [that] stores data in a B+ tree" — in the two configurations
 * of Table 4:
 *
 *  - kMsync: the standard design.  Data lives in page-structured
 *    storage backed by a memory-mapped file on the PCM-disk, and after
 *    every update the store flushes modified pages (the paper
 *    "configured it to save data with msync after every update").
 *    Torn pages on crash are possible — the weakness the paper calls
 *    out.
 *  - kMnemosyne: the Mnemosyne port.  The B+ tree is allocated in a
 *    persistent region and every update runs in a durable transaction;
 *    the msync persistence code is removed, and so are the tree locks
 *    (transactions provide concurrency control).
 */

#ifndef MNEMOSYNE_APPS_TOKYO_MINI_H_
#define MNEMOSYNE_APPS_TOKYO_MINI_H_

#include <memory>
#include <string>
#include <string_view>

#include "ds/pbp_tree.h"
#include "pcmdisk/minifs.h"
#include "runtime/runtime.h"
#include "storage/minibdb.h"

namespace mnemosyne::apps {

class TokyoMini
{
  public:
    enum class Mode { kMsync, kMnemosyne };

    /** The msync-on-PCM-disk configuration. */
    TokyoMini(pcmdisk::MiniFs &fs, const std::string &prefix);

    /** The Mnemosyne configuration. */
    TokyoMini(Runtime &rt, const std::string &name);

    void put(std::string_view key, std::string_view value);
    bool get(std::string_view key, std::string *value);
    bool del(std::string_view key);
    size_t count();

    Mode mode() const { return mode_; }

  private:
    Mode mode_;
    // kMsync state: page store on the PCM-disk.
    std::unique_ptr<storage::MiniBdb> db_;
    // kMnemosyne state: persistent B+ tree.
    std::unique_ptr<ds::PBpTree> tree_;
};

} // namespace mnemosyne::apps

#endif // MNEMOSYNE_APPS_TOKYO_MINI_H_
