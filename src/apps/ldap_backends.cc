#include "apps/ldap.h"

namespace mnemosyne::apps {

// ----------------------------------------------------------------- back-bdb

BackBdb::BackBdb(pcmdisk::MiniFs &fs, const std::string &prefix)
    : db_(fs, prefix, storage::MiniBdbConfig{true, 1024})
{
}

void
BackBdb::add(const Entry &entry)
{
    const uint32_t tx = db_.begin();
    db_.put(tx, entry.dn, entry.encode());
    db_.commit(tx);
    std::lock_guard<std::mutex> g(cacheMu_);
    cache_[entry.dn] = entry;
}

std::optional<Entry>
BackBdb::search(const std::string &dn)
{
    {
        std::lock_guard<std::mutex> g(cacheMu_);
        auto it = cache_.find(dn);
        if (it != cache_.end())
            return it->second;
    }
    std::string bytes;
    if (!db_.get(dn, &bytes))
        return std::nullopt;
    Entry e = Entry::decode(bytes);
    std::lock_guard<std::mutex> g(cacheMu_);
    cache_[dn] = e;
    return e;
}

size_t
BackBdb::entryCount()
{
    return db_.count();
}

// ---------------------------------------------------------------- back-ldbm

BackLdbm::BackLdbm(pcmdisk::MiniFs &fs, const std::string &prefix,
                   size_t flush_every)
    : db_(fs, prefix, storage::MiniBdbConfig{false, 1024}),
      flushEvery_(flush_every)
{
}

void
BackLdbm::add(const Entry &entry)
{
    db_.put(0, entry.dn, entry.encode());
    std::lock_guard<std::mutex> g(cacheMu_);
    cache_[entry.dn] = entry;
}

void
BackLdbm::tick()
{
    // "periodically asks Berkeley DB to flush dirty data to disk to
    // minimize the window of vulnerability" (section 6.2).
    if (sinceFlush_.fetch_add(1, std::memory_order_relaxed) + 1 >=
        flushEvery_) {
        sinceFlush_.store(0, std::memory_order_relaxed);
        db_.flush();
    }
}

std::optional<Entry>
BackLdbm::search(const std::string &dn)
{
    {
        std::lock_guard<std::mutex> g(cacheMu_);
        auto it = cache_.find(dn);
        if (it != cache_.end())
            return it->second;
    }
    std::string bytes;
    if (!db_.get(dn, &bytes))
        return std::nullopt;
    Entry e = Entry::decode(bytes);
    std::lock_guard<std::mutex> g(cacheMu_);
    cache_[dn] = e;
    return e;
}

size_t
BackLdbm::entryCount()
{
    return db_.count();
}

// ----------------------------------------------------------- back-mnemosyne

namespace {

/**
 * Persistent cache value: a generation stamp plus the encoded entry.
 * The generation detects stale volatile attribute-description bindings
 * after a restart (paper section 6.2); the entry encodes the names
 * needed to re-resolve them.
 */
std::string
stampValue(uint64_t generation, const std::string &encoded)
{
    std::string v(sizeof(uint64_t), 0);
    std::memcpy(v.data(), &generation, sizeof(uint64_t));
    v += encoded;
    return v;
}

} // namespace

BackMnemosyne::BackMnemosyne(Runtime &rt, AttrDescTable &descs,
                             const std::string &name)
    : rt_(rt), descs_(descs), cache_(rt, name)
{
}

void
BackMnemosyne::add(const Entry &entry)
{
    // The backing store is gone: the durable transaction on the AVL
    // cache IS the persistence.  Attribute descriptions are resolved
    // now (volatile pointers) and stamped with the current generation.
    for (const auto &[attr, value] : entry.attrs) {
        (void)value;
        descs_.resolve(attr);
    }
    cache_.put(entry.dn, stampValue(descs_.generation(), entry.encode()));
}

std::optional<Entry>
BackMnemosyne::search(const std::string &dn)
{
    std::string bytes;
    if (!cache_.get(dn, &bytes) || bytes.size() < sizeof(uint64_t))
        return std::nullopt;
    uint64_t stamp = 0;
    std::memcpy(&stamp, bytes.data(), sizeof(uint64_t));
    Entry e = Entry::decode(bytes.substr(sizeof(uint64_t)));
    if (stamp != descs_.generation()) {
        // Volatile descriptions became stale across a restart:
        // re-resolve by name and refresh the stamp (lazily, in place).
        for (const auto &[attr, value] : e.attrs) {
            (void)value;
            descs_.resolve(attr);
        }
        cache_.put(dn, stampValue(descs_.generation(),
                                  bytes.substr(sizeof(uint64_t))));
    }
    return e;
}

size_t
BackMnemosyne::entryCount()
{
    return cache_.size();
}

} // namespace mnemosyne::apps
