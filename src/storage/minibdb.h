/**
 * @file
 * MiniBdb: a Berkeley-DB-style transactional storage manager over the
 * PCM-disk — the comparison baseline of the paper's evaluation.
 *
 * Architecture (deliberately mirroring the properties the paper
 * measures in Berkeley DB):
 *  - hash access method over 8 KB pages with a large buffer pool
 *    (no capacity evictions, like the paper's configuration);
 *  - redo-only write-ahead log with a centralized, mutex-protected log
 *    buffer and group commit (the multi-thread bottleneck of Figure 5);
 *  - commits are durable via log fsync to the PCM-disk; data pages are
 *    checkpointed lazily;
 *  - crash recovery replays the updates of committed transactions.
 *
 * A non-transactional mode reproduces OpenLDAP's back-ldbm usage:
 * no logging, periodic flush() of dirty data to minimize the window of
 * vulnerability (Table 4).
 */

#ifndef MNEMOSYNE_STORAGE_MINIBDB_H_
#define MNEMOSYNE_STORAGE_MINIBDB_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "pcmdisk/minifs.h"
#include "storage/hash_am.h"
#include "storage/pager.h"
#include "storage/wal.h"

namespace mnemosyne::storage {

struct MiniBdbConfig {
    bool transactional = true;
    uint32_t nbuckets = 1024;
};

struct MiniBdbStats {
    uint64_t puts = 0;
    uint64_t dels = 0;
    uint64_t commits = 0;
    uint64_t aborts = 0;
    size_t recovered_txns = 0;
};

class MiniBdb
{
  public:
    /**
     * Open (creating or recovering) a database named @p prefix on
     * @p fs.  If a write-ahead log is present, committed transactions
     * are replayed, pages are checkpointed, and the log is truncated.
     */
    MiniBdb(pcmdisk::MiniFs &fs, const std::string &prefix,
            MiniBdbConfig cfg = {});

    MiniBdb(const MiniBdb &) = delete;
    MiniBdb &operator=(const MiniBdb &) = delete;

    // -- transactional API -------------------------------------------------

    uint32_t begin();

    /** Group-committed durable commit. */
    void commit(uint32_t txid);

    /** Roll back this transaction's page changes (in-memory undo). */
    void abort(uint32_t txid);

    void put(uint32_t txid, std::string_view key, std::string_view val);
    bool del(uint32_t txid, std::string_view key);

    // -- common -------------------------------------------------------------

    bool get(std::string_view key, std::string *val);
    size_t count() { return am_->count(); }

    /** Non-transactional durability: flush dirty pages (back-ldbm's
     *  periodic "flush dirty data to disk"). */
    void flush();

    /** Flush pages and truncate the log. */
    void checkpoint();

    MiniBdbStats stats() const;

  private:
    struct UndoRegion {
        uint32_t pageNo;
        uint32_t off;
        std::vector<uint8_t> before;
    };

    HashAm::WriteObserver observerFor(uint32_t txid);

    pcmdisk::MiniFs &fs_;
    MiniBdbConfig cfg_;
    std::unique_ptr<Pager> pager_;
    std::unique_ptr<Wal> wal_;
    std::unique_ptr<HashAm> am_;

    std::atomic<uint32_t> nextTxid_{1};
    std::mutex undoMu_;
    std::unordered_map<uint32_t, std::vector<UndoRegion>> undo_;

    std::atomic<uint64_t> nPuts_{0}, nDels_{0}, nCommits_{0}, nAborts_{0};
    size_t recovered_ = 0;
};

} // namespace mnemosyne::storage

#endif // MNEMOSYNE_STORAGE_MINIBDB_H_
