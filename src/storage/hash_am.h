/**
 * @file
 * Hash access method for MiniBdb: a static hash table with overflow
 * pages, the stand-in for Berkeley DB's hash tables that the paper's
 * microbenchmarks commit small changes to (section 6.3).
 *
 * Bucket pages hold variable-length records appended behind a small header;
 * deletes tombstone in place.  Every page modification is reported to
 * a write observer so the storage manager can WAL-log the after-image
 * and capture undo for aborts.
 */

#ifndef MNEMOSYNE_STORAGE_HASH_AM_H_
#define MNEMOSYNE_STORAGE_HASH_AM_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "storage/pager.h"

namespace mnemosyne::storage {

class HashAm
{
  public:
    /** Called BEFORE bytes [off, off+len) of @p page_no change, with the
     *  page image still holding the old bytes; and the caller then
     *  applies the change.  Observers capture undo here.  A second call
     *  with after=true delivers the new bytes for WAL logging. */
    using WriteObserver =
        std::function<void(uint32_t page_no, uint32_t off, uint32_t len,
                           const uint8_t *bytes, bool after)>;

    HashAm(Pager &pager, uint32_t nbuckets);

    /** Format meta + bucket pages on a fresh file. */
    void create();

    /** Open an existing table (reads the meta page). */
    void open();

    /** Insert or replace. @p obs receives every page mutation. */
    void put(std::string_view key, std::string_view val,
             const WriteObserver &obs);

    bool get(std::string_view key, std::string *val);

    /** Remove; returns false if the key was absent. */
    bool del(std::string_view key, const WriteObserver &obs);

    size_t count();

    uint32_t nbuckets() const { return nbuckets_; }

    /** Lock covering one bucket chain (public so the storage manager
     *  can hold it across a record-level transaction). */
    std::mutex &bucketLock(std::string_view key);

  private:
    struct PageHdr {
        uint32_t nextOverflow;  // 0 = none
        uint16_t nRecords;
        uint16_t freeOff;       // next free byte within the page
    };

    static constexpr uint16_t kTombKey = 0xffff;
    static constexpr size_t kHdrBytes = sizeof(PageHdr);

    uint64_t hashOf(std::string_view key) const;
    uint32_t bucketPage(std::string_view key) const;

    /** Find (page, offset) of a live record with this key; 0 if none. */
    bool find(std::string_view key, uint32_t *page_no, uint32_t *off,
              uint16_t *klen, uint16_t *vlen);

    void tombstone(uint32_t page_no, uint32_t off,
                   const WriteObserver &obs);
    void append(uint32_t first_page, std::string_view key,
                std::string_view val, const WriteObserver &obs);

    Pager &pager_;
    uint32_t nbuckets_;
    std::vector<std::mutex> locks_;
    std::mutex allocMu_;
};

} // namespace mnemosyne::storage

#endif // MNEMOSYNE_STORAGE_HASH_AM_H_
