#include "storage/pager.h"

#include <cstring>

namespace mnemosyne::storage {

Pager::Pager(pcmdisk::MiniFs &fs, const std::string &file_name) : fs_(fs)
{
    fd_ = fs_.open(file_name);
    pageCount_ = uint32_t((fs_.size(fd_) + kDbPageBytes - 1) / kDbPageBytes);
}

uint8_t *
Pager::fetch(uint32_t page_no)
{
    std::lock_guard<std::mutex> g(mu_);
    auto it = pool_.find(page_no);
    if (it != pool_.end())
        return it->second.data.get();
    Page p;
    p.data = std::make_unique<uint8_t[]>(kDbPageBytes);
    if (uint64_t(page_no) * kDbPageBytes < fs_.size(fd_)) {
        fs_.pread(fd_, p.data.get(), kDbPageBytes,
                  uint64_t(page_no) * kDbPageBytes);
    } else {
        std::memset(p.data.get(), 0, kDbPageBytes);
    }
    auto *raw = p.data.get();
    pool_.emplace(page_no, std::move(p));
    if (page_no >= pageCount_)
        pageCount_ = page_no + 1;
    return raw;
}

void
Pager::markDirty(uint32_t page_no)
{
    std::lock_guard<std::mutex> g(mu_);
    auto it = pool_.find(page_no);
    if (it != pool_.end())
        it->second.dirty = true;
}

uint32_t
Pager::allocPage()
{
    std::lock_guard<std::mutex> g(mu_);
    const uint32_t page_no = pageCount_++;
    Page p;
    p.data = std::make_unique<uint8_t[]>(kDbPageBytes);
    std::memset(p.data.get(), 0, kDbPageBytes);
    p.dirty = true;
    pool_.emplace(page_no, std::move(p));
    return page_no;
}

uint32_t
Pager::pageCount() const
{
    std::lock_guard<std::mutex> g(mu_);
    return pageCount_;
}

void
Pager::flushAll()
{
    std::lock_guard<std::mutex> g(mu_);
    for (auto &[page_no, page] : pool_) {
        if (!page.dirty)
            continue;
        fs_.pwrite(fd_, page.data.get(), kDbPageBytes,
                   uint64_t(page_no) * kDbPageBytes);
        page.dirty = false;
    }
    fs_.fsync(fd_);
}

size_t
Pager::dirtyCount() const
{
    std::lock_guard<std::mutex> g(mu_);
    size_t n = 0;
    for (const auto &[page_no, page] : pool_) {
        (void)page_no;
        n += page.dirty;
    }
    return n;
}

} // namespace mnemosyne::storage
