/**
 * @file
 * Write-ahead log for the MiniBdb storage manager, with the two
 * architectural properties the paper's evaluation depends on:
 *
 *  - a *centralized log buffer* protected by one mutex, which becomes
 *    the serialization bottleneck as I/O latency shrinks ("We found
 *    this is due to contention on the centralized log buffer",
 *    section 6.3);
 *  - *group commit*: one committer flushes the buffer to the PCM-disk
 *    for everyone waiting, improving throughput at the cost of write
 *    latency — the behaviour Figure 4/5 attribute to Berkeley DB.
 *
 * Records carry after-images only (redo-only WAL, legal under the
 * pager's no-steal policy) and a checksum to detect torn tails — the
 * classical disk-world solution the tornbit RAWL is designed to beat.
 */

#ifndef MNEMOSYNE_STORAGE_WAL_H_
#define MNEMOSYNE_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "pcmdisk/minifs.h"

namespace mnemosyne::storage {

class Wal
{
  public:
    enum class RecType : uint8_t { kUpdate = 1, kCommit = 2 };

    struct UpdateRec {
        uint32_t txid;
        uint32_t pageNo;
        uint32_t off;
        uint32_t len;
        const uint8_t *after;
    };

    Wal(pcmdisk::MiniFs &fs, const std::string &file_name);

    /** Append an update record to the central buffer (not durable). */
    void logUpdate(const UpdateRec &rec);

    /** Append a commit record and group-commit: block until it is on
     *  the PCM-disk. */
    void logCommitAndSync(uint32_t txid);

    /** Drop the log (after a checkpoint made the pages durable). */
    void truncate();

    /**
     * Recovery: two passes over the on-disk log — collect committed
     * transaction ids, then feed every update of a committed txn, in
     * log order, to @p apply.  Returns the number of committed txns.
     */
    size_t replay(
        const std::function<void(uint32_t txid, uint32_t page_no,
                                 uint32_t off, uint32_t len,
                                 const uint8_t *after)> &apply);

    uint64_t bytesAppended() const;

  private:
    void appendRaw(RecType type, uint32_t txid, uint32_t page_no,
                   uint32_t off, const uint8_t *data, uint32_t len);

    pcmdisk::MiniFs &fs_;
    int fd_;

    std::mutex mu_;                 ///< THE centralized log-buffer mutex.
    std::condition_variable cv_;
    std::vector<uint8_t> buf_;      ///< Appended but unflushed bytes.
    uint64_t appendedLsn_ = 0;      ///< File offset + buffered bytes.
    uint64_t flushedLsn_ = 0;
    uint64_t fileEnd_ = 0;
    bool flushing_ = false;
};

} // namespace mnemosyne::storage

#endif // MNEMOSYNE_STORAGE_WAL_H_
