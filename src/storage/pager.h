/**
 * @file
 * Buffer pool / pager for the MiniBdb storage manager.
 *
 * The paper configures Berkeley DB with "cache sizes large enough to
 * avoid evictions due to capacity" (section 6.2), so this pager keeps
 * every fetched page cached (no-steal, no-force): dirty pages reach the
 * PCM-disk only at an explicit checkpoint or through WAL replay after a
 * crash.
 */

#ifndef MNEMOSYNE_STORAGE_PAGER_H_
#define MNEMOSYNE_STORAGE_PAGER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pcmdisk/minifs.h"

namespace mnemosyne::storage {

/** MiniBdb pages are 8 KB (two PCM-disk blocks), so a maximum-size
 *  benchmark record (4 KB value) fits in one bucket page. */
inline constexpr size_t kDbPageBytes = 8192;

class Pager
{
  public:
    Pager(pcmdisk::MiniFs &fs, const std::string &file_name);

    Pager(const Pager &) = delete;
    Pager &operator=(const Pager &) = delete;

    /** Fetch a page, reading it from the PCM-disk on first touch. */
    uint8_t *fetch(uint32_t page_no);

    void markDirty(uint32_t page_no);

    /** Append a fresh zero page to the file; returns its number. */
    uint32_t allocPage();

    uint32_t pageCount() const;

    /** Checkpoint: write every dirty page out and fsync. */
    void flushAll();

    size_t dirtyCount() const;

  private:
    struct Page {
        std::unique_ptr<uint8_t[]> data;
        bool dirty = false;
    };

    pcmdisk::MiniFs &fs_;
    int fd_;
    mutable std::mutex mu_;
    std::unordered_map<uint32_t, Page> pool_;
    uint32_t pageCount_ = 0;
};

} // namespace mnemosyne::storage

#endif // MNEMOSYNE_STORAGE_PAGER_H_
