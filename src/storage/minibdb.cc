#include "storage/minibdb.h"

#include <cstring>

namespace mnemosyne::storage {

MiniBdb::MiniBdb(pcmdisk::MiniFs &fs, const std::string &prefix,
                 MiniBdbConfig cfg)
    : fs_(fs), cfg_(cfg)
{
    const std::string db_file = prefix + ".db";
    const std::string log_file = prefix + ".log";
    const bool fresh = !fs_.exists(db_file);

    pager_ = std::make_unique<Pager>(fs_, db_file);
    wal_ = std::make_unique<Wal>(fs_, log_file);
    am_ = std::make_unique<HashAm>(*pager_, cfg_.nbuckets);

    if (fresh) {
        am_->create();
        pager_->flushAll();
        return;
    }

    // Crash recovery: redo the page updates of committed transactions
    // in log order, checkpoint, truncate.
    recovered_ = wal_->replay([&](uint32_t, uint32_t page_no, uint32_t off,
                                  uint32_t len, const uint8_t *after) {
        uint8_t *page = pager_->fetch(page_no);
        std::memcpy(page + off, after, len);
        pager_->markDirty(page_no);
    });
    am_->open();
    if (recovered_ > 0)
        checkpoint();
}

HashAm::WriteObserver
MiniBdb::observerFor(uint32_t txid)
{
    if (!cfg_.transactional)
        return nullptr;
    return [this, txid](uint32_t page_no, uint32_t off, uint32_t len,
                        const uint8_t *bytes, bool after) {
        if (after) {
            wal_->logUpdate(Wal::UpdateRec{txid, page_no, off, len, bytes});
        } else {
            std::lock_guard<std::mutex> g(undoMu_);
            auto &regions = undo_[txid];
            regions.push_back(
                UndoRegion{page_no, off,
                           std::vector<uint8_t>(bytes, bytes + len)});
        }
    };
}

uint32_t
MiniBdb::begin()
{
    return nextTxid_.fetch_add(1, std::memory_order_relaxed);
}

void
MiniBdb::commit(uint32_t txid)
{
    if (cfg_.transactional)
        wal_->logCommitAndSync(txid);
    {
        std::lock_guard<std::mutex> g(undoMu_);
        undo_.erase(txid);
    }
    nCommits_.fetch_add(1, std::memory_order_relaxed);
}

void
MiniBdb::abort(uint32_t txid)
{
    std::vector<UndoRegion> regions;
    {
        std::lock_guard<std::mutex> g(undoMu_);
        auto it = undo_.find(txid);
        if (it != undo_.end()) {
            regions = std::move(it->second);
            undo_.erase(it);
        }
    }
    // Apply before-images newest-first.
    for (auto it = regions.rbegin(); it != regions.rend(); ++it) {
        uint8_t *page = pager_->fetch(it->pageNo);
        std::memcpy(page + it->off, it->before.data(), it->before.size());
        pager_->markDirty(it->pageNo);
    }
    nAborts_.fetch_add(1, std::memory_order_relaxed);
}

void
MiniBdb::put(uint32_t txid, std::string_view key, std::string_view val)
{
    std::lock_guard<std::mutex> g(am_->bucketLock(key));
    am_->put(key, val, observerFor(txid));
    nPuts_.fetch_add(1, std::memory_order_relaxed);
}

bool
MiniBdb::del(uint32_t txid, std::string_view key)
{
    std::lock_guard<std::mutex> g(am_->bucketLock(key));
    const bool hit = am_->del(key, observerFor(txid));
    if (hit)
        nDels_.fetch_add(1, std::memory_order_relaxed);
    return hit;
}

bool
MiniBdb::get(std::string_view key, std::string *val)
{
    return am_->get(key, val);
}

void
MiniBdb::flush()
{
    pager_->flushAll();
}

void
MiniBdb::checkpoint()
{
    pager_->flushAll();
    if (cfg_.transactional)
        wal_->truncate();
}

MiniBdbStats
MiniBdb::stats() const
{
    MiniBdbStats s;
    s.puts = nPuts_.load(std::memory_order_relaxed);
    s.dels = nDels_.load(std::memory_order_relaxed);
    s.commits = nCommits_.load(std::memory_order_relaxed);
    s.aborts = nAborts_.load(std::memory_order_relaxed);
    s.recovered_txns = recovered_;
    return s;
}

} // namespace mnemosyne::storage
