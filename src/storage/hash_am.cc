#include "storage/hash_am.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace mnemosyne::storage {

namespace {

/** Meta page (page 0) layout. */
struct MetaPage {
    uint64_t magic;
    uint32_t nbuckets;
};

constexpr uint64_t kMetaMagic = 0x4d4e48414d455441ULL; // "MNHAMETA"

} // namespace

HashAm::HashAm(Pager &pager, uint32_t nbuckets)
    : pager_(pager), nbuckets_(nbuckets), locks_(nbuckets)
{
}

void
HashAm::create()
{
    // Page 0: meta.  Pages 1..nbuckets: empty buckets.
    uint8_t *meta = pager_.fetch(0);
    auto *m = reinterpret_cast<MetaPage *>(meta);
    m->magic = kMetaMagic;
    m->nbuckets = nbuckets_;
    pager_.markDirty(0);
    for (uint32_t b = 0; b < nbuckets_; ++b) {
        uint8_t *page = pager_.fetch(1 + b);
        auto *h = reinterpret_cast<PageHdr *>(page);
        h->nextOverflow = 0;
        h->nRecords = 0;
        h->freeOff = uint16_t(kHdrBytes);
        pager_.markDirty(1 + b);
    }
}

void
HashAm::open()
{
    const auto *m = reinterpret_cast<const MetaPage *>(pager_.fetch(0));
    if (m->magic != kMetaMagic)
        throw std::runtime_error("HashAm: bad meta page");
    if (m->nbuckets != nbuckets_)
        throw std::runtime_error("HashAm: bucket count mismatch");
}

uint64_t
HashAm::hashOf(std::string_view key) const
{
    // FNV-1a, as a stand-in for Berkeley DB's hash function.
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : key) {
        h ^= uint8_t(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

uint32_t
HashAm::bucketPage(std::string_view key) const
{
    return 1 + uint32_t(hashOf(key) % nbuckets_);
}

std::mutex &
HashAm::bucketLock(std::string_view key)
{
    return locks_[size_t(hashOf(key) % nbuckets_)];
}

bool
HashAm::find(std::string_view key, uint32_t *page_no, uint32_t *off,
             uint16_t *klen, uint16_t *vlen)
{
    uint32_t pno = bucketPage(key);
    while (pno != 0) {
        uint8_t *page = pager_.fetch(pno);
        const auto *h = reinterpret_cast<const PageHdr *>(page);
        uint32_t pos = kHdrBytes;
        while (pos < h->freeOff) {
            uint16_t kl, vl;
            std::memcpy(&kl, page + pos, 2);
            std::memcpy(&vl, page + pos + 2, 2);
            if (kl == kTombKey) {
                pos += 4 + vl; // vl holds the tombstoned body size
                continue;
            }
            if (kl == key.size() &&
                std::memcmp(page + pos + 4, key.data(), kl) == 0) {
                *page_no = pno;
                *off = pos;
                *klen = kl;
                *vlen = vl;
                return true;
            }
            pos += 4 + kl + vl;
        }
        pno = h->nextOverflow;
    }
    return false;
}

bool
HashAm::get(std::string_view key, std::string *val)
{
    std::lock_guard<std::mutex> g(bucketLock(key));
    uint32_t pno, off;
    uint16_t kl, vl;
    if (!find(key, &pno, &off, &kl, &vl))
        return false;
    if (val) {
        uint8_t *page = pager_.fetch(pno);
        val->assign(reinterpret_cast<char *>(page + off + 4 + kl), vl);
    }
    return true;
}

void
HashAm::tombstone(uint32_t page_no, uint32_t off, const WriteObserver &obs)
{
    uint8_t *page = pager_.fetch(page_no);
    uint16_t kl, vl;
    std::memcpy(&kl, page + off, 2);
    std::memcpy(&vl, page + off + 2, 2);
    if (obs)
        obs(page_no, off, 4, page + off, false);
    const uint16_t body = uint16_t(kl + vl);
    std::memcpy(page + off, &kTombKey, 2);
    std::memcpy(page + off + 2, &body, 2);
    if (obs)
        obs(page_no, off, 4, page + off, true);
    pager_.markDirty(page_no);
}

void
HashAm::append(uint32_t first_page, std::string_view key,
               std::string_view val, const WriteObserver &obs)
{
    const size_t need = 4 + key.size() + val.size();
    if (need > kDbPageBytes - kHdrBytes)
        throw std::invalid_argument("HashAm: record larger than a page");

    uint32_t pno = first_page;
    for (;;) {
        uint8_t *page = pager_.fetch(pno);
        auto *h = reinterpret_cast<PageHdr *>(page);
        if (h->freeOff + need <= kDbPageBytes) {
            const uint32_t pos = h->freeOff;
            if (obs) {
                obs(pno, 0, uint32_t(kHdrBytes), page, false);
                obs(pno, pos, uint32_t(need), page + pos, false);
            }
            const uint16_t kl = uint16_t(key.size());
            const uint16_t vl = uint16_t(val.size());
            std::memcpy(page + pos, &kl, 2);
            std::memcpy(page + pos + 2, &vl, 2);
            std::memcpy(page + pos + 4, key.data(), kl);
            std::memcpy(page + pos + 4 + kl, val.data(), vl);
            h->nRecords++;
            h->freeOff = uint16_t(pos + need);
            if (obs) {
                obs(pno, 0, uint32_t(kHdrBytes), page, true);
                obs(pno, pos, uint32_t(need), page + pos, true);
            }
            pager_.markDirty(pno);
            return;
        }
        if (h->nextOverflow != 0) {
            pno = h->nextOverflow;
            continue;
        }
        // Chain a fresh overflow page.
        uint32_t fresh;
        {
            std::lock_guard<std::mutex> g(allocMu_);
            fresh = pager_.allocPage();
        }
        uint8_t *ovp = pager_.fetch(fresh);
        auto *oh = reinterpret_cast<PageHdr *>(ovp);
        if (obs)
            obs(fresh, 0, uint32_t(kHdrBytes), ovp, false);
        oh->nextOverflow = 0;
        oh->nRecords = 0;
        oh->freeOff = uint16_t(kHdrBytes);
        if (obs)
            obs(fresh, 0, uint32_t(kHdrBytes), ovp, true);
        pager_.markDirty(fresh);

        if (obs)
            obs(pno, 0, uint32_t(kHdrBytes), page, false);
        h->nextOverflow = fresh;
        if (obs)
            obs(pno, 0, uint32_t(kHdrBytes), page, true);
        pager_.markDirty(pno);
        pno = fresh;
    }
}

void
HashAm::put(std::string_view key, std::string_view val,
            const WriteObserver &obs)
{
    uint32_t pno, off;
    uint16_t kl, vl;
    if (find(key, &pno, &off, &kl, &vl))
        tombstone(pno, off, obs);
    append(bucketPage(key), key, val, obs);
}

bool
HashAm::del(std::string_view key, const WriteObserver &obs)
{
    uint32_t pno, off;
    uint16_t kl, vl;
    if (!find(key, &pno, &off, &kl, &vl))
        return false;
    tombstone(pno, off, obs);
    return true;
}

size_t
HashAm::count()
{
    size_t n = 0;
    for (uint32_t b = 0; b < nbuckets_; ++b) {
        uint32_t pno = 1 + b;
        while (pno != 0) {
            uint8_t *page = pager_.fetch(pno);
            const auto *h = reinterpret_cast<const PageHdr *>(page);
            uint32_t pos = kHdrBytes;
            while (pos < h->freeOff) {
                uint16_t kl, vl;
                std::memcpy(&kl, page + pos, 2);
                std::memcpy(&vl, page + pos + 2, 2);
                if (kl == kTombKey) {
                    pos += 4 + vl;
                } else {
                    ++n;
                    pos += 4 + kl + vl;
                }
            }
            pno = h->nextOverflow;
        }
    }
    return n;
}

} // namespace mnemosyne::storage
