#include "storage/wal.h"

#include <cstring>
#include <set>

namespace mnemosyne::storage {

namespace {

/** Record header as stored in the log file. */
struct RecHdr {
    uint32_t magic;     // kRecMagic
    uint8_t type;
    uint8_t pad[3];
    uint32_t txid;
    uint32_t pageNo;
    uint32_t off;
    uint32_t len;
    uint32_t checksum;  // Fletcher-style over the payload
};

constexpr uint32_t kRecMagic = 0x57414c52; // "WALR"

uint32_t
checksum(const uint8_t *data, size_t len)
{
    uint32_t a = 1, b = 0;
    for (size_t i = 0; i < len; ++i) {
        a = (a + data[i]) % 65521;
        b = (b + a) % 65521;
    }
    return (b << 16) | a;
}

} // namespace

Wal::Wal(pcmdisk::MiniFs &fs, const std::string &file_name) : fs_(fs)
{
    fd_ = fs_.open(file_name);
    fileEnd_ = fs_.size(fd_);
    appendedLsn_ = fileEnd_;
    flushedLsn_ = fileEnd_;
}

void
Wal::appendRaw(RecType type, uint32_t txid, uint32_t page_no, uint32_t off,
               const uint8_t *data, uint32_t len)
{
    RecHdr h{};
    h.magic = kRecMagic;
    h.type = uint8_t(type);
    h.txid = txid;
    h.pageNo = page_no;
    h.off = off;
    h.len = len;
    h.checksum = data ? checksum(data, len) : 0;
    const auto *hb = reinterpret_cast<const uint8_t *>(&h);
    buf_.insert(buf_.end(), hb, hb + sizeof(h));
    if (data)
        buf_.insert(buf_.end(), data, data + len);
    appendedLsn_ += sizeof(h) + len;
}

void
Wal::logUpdate(const UpdateRec &rec)
{
    std::lock_guard<std::mutex> g(mu_);
    appendRaw(RecType::kUpdate, rec.txid, rec.pageNo, rec.off, rec.after,
              rec.len);
}

void
Wal::logCommitAndSync(uint32_t txid)
{
    std::unique_lock<std::mutex> g(mu_);
    appendRaw(RecType::kCommit, txid, 0, 0, nullptr, 0);
    const uint64_t my_lsn = appendedLsn_;

    while (flushedLsn_ < my_lsn) {
        if (!flushing_) {
            // This thread becomes the group-commit leader: it writes
            // and syncs everything buffered so far, on behalf of every
            // waiter.
            flushing_ = true;
            std::vector<uint8_t> out;
            out.swap(buf_);
            const uint64_t at = fileEnd_;
            const uint64_t new_lsn = at + out.size();
            g.unlock();
            fs_.pwrite(fd_, out.data(), out.size(), at);
            fs_.fsync(fd_);
            g.lock();
            fileEnd_ = new_lsn;
            flushedLsn_ = new_lsn;
            flushing_ = false;
            cv_.notify_all();
        } else {
            cv_.wait(g);
        }
    }
}

void
Wal::truncate()
{
    std::lock_guard<std::mutex> g(mu_);
    buf_.clear();
    fs_.ftruncate(fd_, 0);
    fs_.fsync(fd_);
    fileEnd_ = 0;
    appendedLsn_ = 0;
    flushedLsn_ = 0;
}

size_t
Wal::replay(const std::function<void(uint32_t, uint32_t, uint32_t, uint32_t,
                                     const uint8_t *)> &apply)
{
    const uint64_t end = fs_.size(fd_);
    // Pass 1: find committed transactions (stop at any torn record).
    std::set<uint32_t> committed;
    std::vector<uint8_t> payload;
    uint64_t pos = 0;
    auto read_rec = [&](uint64_t at, RecHdr &h) -> bool {
        if (at + sizeof(RecHdr) > end)
            return false;
        fs_.pread(fd_, &h, sizeof(h), at);
        if (h.magic != kRecMagic || at + sizeof(RecHdr) + h.len > end)
            return false;
        payload.resize(h.len);
        if (h.len > 0) {
            fs_.pread(fd_, payload.data(), h.len, at + sizeof(RecHdr));
            if (checksum(payload.data(), h.len) != h.checksum)
                return false; // torn write detected the disk-world way
        }
        return true;
    };

    RecHdr h;
    while (read_rec(pos, h)) {
        if (RecType(h.type) == RecType::kCommit)
            committed.insert(h.txid);
        pos += sizeof(RecHdr) + h.len;
    }

    // Pass 2: redo updates of committed transactions, in log order.
    pos = 0;
    while (read_rec(pos, h)) {
        if (RecType(h.type) == RecType::kUpdate && committed.count(h.txid))
            apply(h.txid, h.pageNo, h.off, h.len, payload.data());
        pos += sizeof(RecHdr) + h.len;
    }
    return committed.size();
}

uint64_t
Wal::bytesAppended() const
{
    return appendedLsn_;
}

} // namespace mnemosyne::storage
