/**
 * @file
 * Crash-sweep scenarios: the per-layer units the exhaustive
 * crash-consistency sweeper (crash/sweep.h) drives.
 *
 * A scenario packages, for one layer of the system (RAWL log, durable
 * transactions, persistent heap, region table, a ds/ structure), three
 * things:
 *
 *  - prepare():  bring up the layer's persistent state (runs before the
 *                swept window; the driver makes its effects durable),
 *  - workload(): a short, single-threaded, deterministic burst of
 *                operations — the window whose every persistence event
 *                the sweeper crashes at,
 *  - verify():   the layer's crash invariant, checked against a freshly
 *                reincarnated Runtime over the same backing files.
 *
 * Determinism contract: workload() must issue an identical sequence of
 * persistence events on every run (fixed seeds, no threads, no
 * wall-clock or address-dependent branching).  The sweeper counts the
 * events once in a baseline run and then replays the workload crashing
 * at event k for every k — so a failure's repro spec
 * ("scenario:event:mode:seed") replays the same way anywhere.
 *
 * Scenario objects live across one whole trial: prepare() and
 * workload() run against the pre-crash Runtime, verify() against the
 * post-recovery one.  Volatile members carried across (e.g. the count
 * of committed operations) are how verify() knows the expected state;
 * persistent pointers must be re-resolved from the verify-side Runtime.
 */

#ifndef MNEMOSYNE_CRASH_SCENARIO_H_
#define MNEMOSYNE_CRASH_SCENARIO_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/runtime.h"
#include "scm/scm.h"

namespace mnemosyne::crash {

/** What a scenario phase gets to work with. */
struct ScenarioEnv {
    Runtime &rt;
    scm::ScmContext &scm;
};

class Scenario
{
  public:
    virtual ~Scenario() = default;

    virtual std::string name() const = 0;

    /** Adjust the trial's RuntimeConfig (heap/log sizes) before the
     *  Runtime is constructed.  Applied to both the pre-crash and the
     *  recovery Runtime. */
    virtual void configure(RuntimeConfig &cfg) { (void)cfg; }

    /** Set up persistent state.  Runs before the swept window; the
     *  driver persists its effects, so the window starts from a fully
     *  durable base. */
    virtual void prepare(ScenarioEnv &env) { (void)env; }

    /** The deterministic operation burst the sweeper crashes inside.
     *  CrashNow from the injected crash point propagates out. */
    virtual void workload(ScenarioEnv &env) = 0;

    /** Check the layer's invariant after recovery.  Returns "" when it
     *  holds, else a diagnostic. */
    virtual std::string verify(ScenarioEnv &env) = 0;
};

/**
 * Name -> factory registry.  Each trial creates a fresh scenario
 * instance, so trials never share mutable state.
 */
class ScenarioRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<Scenario>()>;

    static ScenarioRegistry &instance();

    /** Register (or replace) a scenario factory. */
    void add(const std::string &name, Factory factory);

    /** Instantiate; throws std::out_of_range for unknown names. */
    std::unique_ptr<Scenario> create(const std::string &name) const;

    bool has(const std::string &name) const;
    std::vector<std::string> names() const;

  private:
    std::map<std::string, Factory> factories_;
};

/**
 * Register the built-in per-layer scenarios (idempotent):
 *   rawl    — torn-bit log appends; recovered records are an exact,
 *             uncorrupted prefix.
 *   mtm     — transactional random updates (the section 6.2 stress
 *             engine); memory matches the committed prefix.
 *   heap    — pmalloc/pfree bursts; after reincarnation no block is
 *             leaked, doubly owned, or overlapping (reachable slots
 *             exactly match the heap's live-block accounting).
 *   region  — pmap/punmap with persistent publication slots; regions
 *             and client pointer cells agree one-to-one (no orphaned
 *             region, no dangling pointer).
 *   hash    — PHashTable puts/deletes; contents match the committed
 *             operation prefix (one in-flight op allowed).
 *   group_commit — commit_async epochs; whole-epoch all-or-nothing.
 *   compact_redo / redo_v1 / compact_redo_gc — commit-record format
 *             coverage (v2 varint run-length stream, v1 fallback, v2
 *             under the epoch combiner); recovery must land on an
 *             exact transaction prefix.
 */
void registerBuiltinScenarios();

/**
 * Register "bug_onefence": a deliberately broken data+commit protocol
 * (the fence between the payload words and the commit word is elided,
 * as if a tornbit append skipped its ordering fence).  Under
 * CrashPersistMode::kRandomSubset the commit word can survive a crash
 * that drops payload words, which verify() detects — the sweeper's
 * own end-to-end test that injected bugs are caught and reproducible.
 * Never registered by default; tests and `crash_sweep --with-bug` opt
 * in.
 */
void registerSyntheticBugScenario();

} // namespace mnemosyne::crash

#endif // MNEMOSYNE_CRASH_SCENARIO_H_
