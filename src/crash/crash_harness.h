/**
 * @file
 * Crash-injection harness: reusable machinery behind the reliability
 * methodology of paper section 6.2 — "we wrote a crash stress program,
 * which uses transactions to perform random updates to memory using a
 * known seed.  We verified that after a crash, memory contains the
 * correct random values."
 *
 * The harness builds on the SCM emulator's write hook (crash at an
 * exact persistence event) and adversarial crash modes (random subsets
 * of unfenced writes survive).
 */

#ifndef MNEMOSYNE_CRASH_CRASH_HARNESS_H_
#define MNEMOSYNE_CRASH_CRASH_HARNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runtime/runtime.h"
#include "scm/scm.h"

namespace mnemosyne::crash {

/**
 * One-shot crash injector: fires CrashNow at the first persistence
 * event >= @p at.  By default the context is halted at that instant
 * (haltNow), so code unwinding past the crash point cannot alter the
 * post-crash image; pass halt_on_fire = false for the legacy behavior
 * where unwinding writes proceed and are resolved by crash().
 */
class CrashPoint
{
  public:
    CrashPoint(scm::ScmContext &c, uint64_t at, bool halt_on_fire = true);
    ~CrashPoint();

    CrashPoint(const CrashPoint &) = delete;
    CrashPoint &operator=(const CrashPoint &) = delete;

    bool fired() const { return fired_; }

    /** The event number the crash fired at (0 when !fired()). */
    uint64_t firedEvent() const { return firedEvent_; }

  private:
    scm::ScmContext &c_;
    bool fired_ = false;
    uint64_t firedEvent_ = 0;
};

/** Result of one crash-stress round. */
struct StressResult {
    uint64_t committed_ops = 0;   ///< Ops whose atomic() returned.
    bool crashed = false;         ///< Whether the injected crash fired.
    bool verified = false;        ///< Post-recovery state matched.
    std::string mismatch;         ///< Diagnostic when !verified.

    // Failure forensics (valid when !verified), so a sweep failure is
    // actionable without re-running under a debugger:
    size_t bad_index = 0;         ///< First mismatching word index.
    uint64_t expected = 0;        ///< Expected value of that word.
    uint64_t actual = 0;          ///< Value found in persistent memory.
    size_t mismatched_words = 0;  ///< Total words that differ.
    uint64_t crash_event = 0;     ///< Event the crash fired at (0 = n/a).
};

/**
 * The crash stress engine: performs @p total_ops seeded random
 * multi-word transactional updates over a persistent array, crashing at
 * a pseudo-random persistence event; verify() recomputes the expected
 * image from the committed prefix and compares.
 */
class StressEngine
{
  public:
    static constexpr size_t kWords = 256;
    static constexpr int kWordsPerOp = 4;

    StressEngine(Runtime &rt, uint64_t seed,
                 const std::string &array_name = "crash_stress");

    /** Run ops until done or crashed (CrashNow is swallowed). */
    uint64_t run(scm::ScmContext &c, uint64_t total_ops,
                 uint64_t crash_at_event);

    /**
     * Run ops with no crash point of its own: CrashNow from an external
     * injector (the sweeper's driver) propagates.  @p committed is
     * updated after every completed op so the caller sees the committed
     * prefix even when an exception unwinds.
     */
    void runOps(uint64_t total_ops, uint64_t *committed);

    /** Event number the last run()'s injected crash fired at (0 if it
     *  completed without crashing). */
    uint64_t lastCrashEvent() const { return lastCrashEvent_; }

    /**
     * After recovery (fresh runtime on the same backing files): check
     * the array against the committed prefix (allowing the one
     * ambiguous in-flight op).  @p crash_event, when known, is embedded
     * in the failure diagnostics.
     */
    static StressResult verify(Runtime &rt, uint64_t seed,
                               uint64_t committed_ops,
                               const std::string &array_name =
                                   "crash_stress",
                               uint64_t crash_event = 0);

    /** The seeded (index, value) targets of op @p op — public so sweep
     *  scenarios can replay the expected image. */
    static void opTargets(uint64_t seed, uint64_t op, size_t *idx,
                          uint64_t *val);

  private:
    Runtime &rt_;
    uint64_t seed_;
    uint64_t *arr_;
    uint64_t lastCrashEvent_ = 0;
};

/**
 * Inject bit flips into a byte range (used to validate the torn-bit
 * detection of the RAWL, section 6.2).  Returns positions flipped.
 */
std::vector<size_t> flipRandomBits(void *data, size_t bytes, size_t flips,
                                   uint64_t seed);

} // namespace mnemosyne::crash

#endif // MNEMOSYNE_CRASH_CRASH_HARNESS_H_
