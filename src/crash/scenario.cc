#include "crash/scenario.h"

#include <cstring>
#include <set>
#include <sstream>
#include <stdexcept>

#include "crash/crash_harness.h"
#include "ds/phash_table.h"
#include "log/rawl.h"

namespace mnemosyne::crash {

ScenarioRegistry &
ScenarioRegistry::instance()
{
    static ScenarioRegistry r;
    return r;
}

void
ScenarioRegistry::add(const std::string &name, Factory factory)
{
    factories_[name] = std::move(factory);
}

std::unique_ptr<Scenario>
ScenarioRegistry::create(const std::string &name) const
{
    auto it = factories_.find(name);
    if (it == factories_.end())
        throw std::out_of_range("unknown crash scenario: " + name);
    return it->second();
}

bool
ScenarioRegistry::has(const std::string &name) const
{
    return factories_.count(name) != 0;
}

std::vector<std::string>
ScenarioRegistry::names() const
{
    std::vector<std::string> out;
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;
}

namespace {

/** Deterministic word values (splitmix-style), shared by workloads and
 *  their verify sides. */
uint64_t
mixWord(uint64_t a, uint64_t b)
{
    uint64_t x = a * 0x9E3779B97F4A7C15ULL +
                 (b + 1) * 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 31;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 29;
    return x;
}

// ---------------------------------------------------------------------------
// rawl: torn-bit log appends.  Crash anywhere inside a sequence of
// append+flush bursts; the reopened log must hold an exact, uncorrupted
// prefix of the appended records.
// ---------------------------------------------------------------------------

class RawlScenario final : public Scenario
{
  public:
    static constexpr size_t kLogBytes = 4096;
    static constexpr int kRecords = 6;

    std::string name() const override { return "rawl"; }

    static size_t recordLen(int r) { return 1 + size_t(r % 7); }

    void
    prepare(ScenarioEnv &env) override
    {
        void *buf = env.rt.regions().pstaticVar("sweep_rawl", kLogBytes,
                                                nullptr);
        log_ = log::Rawl::create(buf, kLogBytes);
    }

    void
    workload(ScenarioEnv &env) override
    {
        (void)env;
        for (int r = 0; r < kRecords; ++r) {
            uint64_t rec[8];
            const size_t n = recordLen(r);
            for (size_t j = 0; j < n; ++j)
                rec[j] = mixWord(uint64_t(r), j) & log::Rawl::kPayloadMask;
            log_->append(rec, n);
            log_->flush();
        }
    }

    std::string
    verify(ScenarioEnv &env) override
    {
        void *buf = env.rt.regions().pstaticVar("sweep_rawl", kLogBytes,
                                                nullptr);
        auto re = log::Rawl::open(buf);
        if (!re)
            return "rawl: reopen failed (corrupt header)";
        auto cur = re->begin();
        std::vector<uint64_t> out;
        int i = 0;
        while (re->readRecord(cur, out)) {
            if (i >= kRecords) {
                return "rawl: phantom record " + std::to_string(i) +
                       " beyond everything appended";
            }
            const size_t n = recordLen(i);
            if (out.size() != n) {
                return "rawl: record " + std::to_string(i) + " has " +
                       std::to_string(out.size()) + " words, want " +
                       std::to_string(n);
            }
            for (size_t j = 0; j < n; ++j) {
                const uint64_t want =
                    mixWord(uint64_t(i), j) & log::Rawl::kPayloadMask;
                if (out[j] != want) {
                    std::ostringstream os;
                    os << "rawl: record " << i << " word " << j
                       << ": have 0x" << std::hex << out[j] << " want 0x"
                       << want;
                    return os.str();
                }
            }
            ++i;
        }
        return "";
    }

  private:
    std::unique_ptr<log::Rawl> log_;
};

// ---------------------------------------------------------------------------
// mtm: the section 6.2 crash stress engine — seeded multi-word durable
// transactions; recovered memory must match the committed prefix.
// ---------------------------------------------------------------------------

class MtmScenario final : public Scenario
{
  public:
    static constexpr uint64_t kSeed = 42;
    static constexpr uint64_t kOps = 3;

    std::string name() const override { return "mtm"; }

    void
    prepare(ScenarioEnv &env) override
    {
        eng_ = std::make_unique<StressEngine>(env.rt, kSeed);
    }

    void
    workload(ScenarioEnv &env) override
    {
        (void)env;
        eng_->runOps(kOps, &committed_);
    }

    std::string
    verify(ScenarioEnv &env) override
    {
        const auto res =
            StressEngine::verify(env.rt, kSeed, committed_);
        return res.verified ? "" : res.mismatch;
    }

  private:
    std::unique_ptr<StressEngine> eng_;
    uint64_t committed_ = 0;
};

// ---------------------------------------------------------------------------
// heap: pmalloc/pfree bursts over persistent pointer slots.  After
// reincarnation, the set of reachable blocks must exactly match the
// heap's live-block accounting: nothing leaked (allocated but in no
// slot), nothing doubly owned, no two blocks overlapping.
// ---------------------------------------------------------------------------

class HeapScenario final : public Scenario
{
  public:
    static constexpr size_t kSlots = 6;

    std::string name() const override { return "heap"; }

    static const size_t *
    sizes()
    {
        // Mix of superblock-heap (<= 4 KB) and big-allocator sizes.
        static const size_t s[kSlots] = {24, 600, 3000, 8192, 64, 12288};
        return s;
    }

    void
    prepare(ScenarioEnv &env) override
    {
        slots_ = static_cast<void **>(env.rt.regions().pstaticVar(
            "sweep_heap_slots", kSlots * sizeof(void *), nullptr));
    }

    void
    workload(ScenarioEnv &env) override
    {
        // detachThreadCache() between segments parks this thread's
        // superblock cache and hands its partial superblocks back to the
        // global pool, so successive segments run under different caches
        // (and different per-cache redo logs).  That makes every crash
        // point also cover superblock transfers, orphan adoption, and
        // multi-log replay — the per-thread bitmaps must stay leak-free
        // no matter which cache last owned them.
        for (size_t i = 0; i < kSlots; ++i) {
            env.rt.pmalloc(sizes()[i], &slots_[i]);
            if (i == kSlots / 2)
                env.rt.heap().detachThreadCache();
        }
        env.rt.heap().detachThreadCache();
        env.rt.pfree(&slots_[1]);
        env.rt.pfree(&slots_[3]);
        env.rt.heap().detachThreadCache();
        // Allocate into a just-freed slot: covers alloc-after-free
        // paths (superblock reuse, coalesced big chunks).
        env.rt.pmalloc(512, &slots_[1]);
    }

    std::string
    verify(ScenarioEnv &env) override
    {
        auto **slots = static_cast<void **>(env.rt.regions().pstaticVar(
            "sweep_heap_slots", kSlots * sizeof(void *), nullptr));
        auto &heap = env.rt.heap();

        size_t reachable = 0;
        for (size_t i = 0; i < kSlots; ++i) {
            void *p = slots[i];
            if (!p)
                continue;
            ++reachable;
            if (!heap.owns(p)) {
                std::ostringstream os;
                os << "heap: slot " << i << " -> " << p
                   << " not owned by the heap (dangling)";
                return os.str();
            }
            if (heap.usableSize(p) == 0) {
                std::ostringstream os;
                os << "heap: slot " << i << " -> " << p
                   << " has zero usable size (freed block reachable)";
                return os.str();
            }
        }
        // Doubly-owned / overlap: every reachable block's byte range
        // must be disjoint from every other's.
        for (size_t i = 0; i < kSlots; ++i) {
            for (size_t j = i + 1; j < kSlots; ++j) {
                if (!slots[i] || !slots[j])
                    continue;
                const auto a = reinterpret_cast<uintptr_t>(slots[i]);
                const auto b = reinterpret_cast<uintptr_t>(slots[j]);
                const uintptr_t a_end = a + heap.usableSize(slots[i]);
                const uintptr_t b_end = b + heap.usableSize(slots[j]);
                if (a < b_end && b < a_end) {
                    std::ostringstream os;
                    os << "heap: slots " << i << " and " << j
                       << " overlap (" << slots[i] << " and " << slots[j]
                       << ") — block doubly owned";
                    return os.str();
                }
            }
        }
        // Leak check: the heap's own accounting of live blocks must
        // equal the number of reachable slots — an allocated block no
        // slot points to is leaked; a slot pointing at accounted-free
        // memory was caught above.
        const auto st = heap.stats();
        const size_t live = st.small.blocks_allocated + st.big.chunks_in_use;
        if (live != reachable) {
            std::ostringstream os;
            os << "heap: " << live << " live blocks but " << reachable
               << " reachable slots ("
               << (live > reachable ? "leak" : "double free") << ")";
            return os.str();
        }
        return "";
    }

  private:
    void **slots_ = nullptr;
};

// ---------------------------------------------------------------------------
// region: pmap/punmap with persistent publication slots.  The region
// table and the client's pointer cells must agree one-to-one after
// recovery: every default-flag region has exactly one cell naming it
// (no orphaned region), every non-null cell names a valid region (no
// dangling pointer).
// ---------------------------------------------------------------------------

class RegionScenario final : public Scenario
{
  public:
    static constexpr size_t kCells = 3;
    static constexpr size_t kLen0 = 64 * 1024;
    static constexpr size_t kLen1 = 128 * 1024;
    static constexpr size_t kLen2 = 64 * 1024;

    std::string name() const override { return "region"; }

    void
    prepare(ScenarioEnv &env) override
    {
        cells_ = static_cast<void **>(env.rt.regions().pstaticVar(
            "sweep_region_cells", kCells * sizeof(void *), nullptr));
    }

    void
    workload(ScenarioEnv &env) override
    {
        env.rt.pmap(&cells_[0], kLen0);
        env.rt.pmap(&cells_[1], kLen1);
        env.rt.punmap(cells_[0], kLen0);
        env.rt.pmap(&cells_[2], kLen2);
    }

    std::string
    verify(ScenarioEnv &env) override
    {
        auto **cells = static_cast<void **>(env.rt.regions().pstaticVar(
            "sweep_region_cells", kCells * sizeof(void *), nullptr));
        std::set<void *> regions;
        for (const auto &r : env.rt.regions().regions()) {
            if (r.flags == region::kRegionDefault)
                regions.insert(r.addr);
        }
        std::set<void *> named;
        for (size_t i = 0; i < kCells; ++i) {
            void *p = cells[i];
            if (!p)
                continue;
            if (!regions.count(p)) {
                std::ostringstream os;
                os << "region: cell " << i << " -> " << p
                   << " names no valid region (dangling)";
                return os.str();
            }
            if (!named.insert(p).second) {
                std::ostringstream os;
                os << "region: cell " << i << " -> " << p
                   << " names an already-claimed region";
                return os.str();
            }
        }
        if (named.size() != regions.size()) {
            std::ostringstream os;
            os << "region: " << regions.size() << " valid regions but "
               << named.size() << " cells name one (orphaned region)";
            return os.str();
        }
        return "";
    }

  private:
    void **cells_ = nullptr;
};

// ---------------------------------------------------------------------------
// hash: PHashTable puts/deletes (the section 6.3 microbenchmark
// structure).  The recovered table must reflect a prefix of the
// committed operations (the one in-flight op may or may not have
// landed).
// ---------------------------------------------------------------------------

class HashScenario final : public Scenario
{
  public:
    static constexpr uint64_t kOps = 6;
    static constexpr size_t kKeys = 4;
    static constexpr size_t kBuckets = 64;

    std::string name() const override { return "hash"; }

    static std::string keyOf(uint64_t op) { return "k" + std::to_string(op % kKeys); }
    static std::string valOf(uint64_t op) { return "v" + std::to_string(op); }
    static bool isPut(uint64_t op) { return op % 3 != 2; }

    void
    prepare(ScenarioEnv &env) override
    {
        table_ = std::make_unique<ds::PHashTable>(env.rt, "sweep_hash",
                                                  kBuckets);
        // Pre-populate one key so the very first swept events can hit
        // the delete path too.
        table_->put(keyOf(2), "seed");
    }

    void
    workload(ScenarioEnv &env) override
    {
        (void)env;
        for (uint64_t op = 0; op < kOps; ++op) {
            if (isPut(op))
                table_->put(keyOf(op), valOf(op));
            else
                table_->del(keyOf(op));
            ++committed_;
        }
    }

    std::string
    verify(ScenarioEnv &env) override
    {
        ds::PHashTable table(env.rt, "sweep_hash", kBuckets);

        auto imageAfter = [](uint64_t nops) {
            std::map<std::string, std::string> m;
            m[keyOf(2)] = "seed";
            for (uint64_t op = 0; op < nops && op < kOps; ++op) {
                if (isPut(op))
                    m[keyOf(op)] = valOf(op);
                else
                    m.erase(keyOf(op));
            }
            return m;
        };

        auto matches = [&](const std::map<std::string, std::string> &want,
                           std::string *why) {
            for (size_t k = 0; k < kKeys; ++k) {
                const std::string key = "k" + std::to_string(k);
                std::string val;
                const bool present = table.get(key, &val);
                auto it = want.find(key);
                if (it == want.end()) {
                    if (present) {
                        *why = "hash: key " + key +
                               " present (\"" + val + "\") but deleted";
                        return false;
                    }
                } else if (!present) {
                    *why = "hash: key " + key + " missing, want \"" +
                           it->second + "\"";
                    return false;
                } else if (val != it->second) {
                    *why = "hash: key " + key + " = \"" + val +
                           "\", want \"" + it->second + "\"";
                    return false;
                }
            }
            if (table.size() != want.size()) {
                *why = "hash: size " + std::to_string(table.size()) +
                       ", want " + std::to_string(want.size());
                return false;
            }
            return true;
        };

        std::string why_exact, why_next;
        if (matches(imageAfter(committed_), &why_exact))
            return "";
        if (matches(imageAfter(committed_ + 1), &why_next))
            return "";
        return why_exact + " (after " + std::to_string(committed_) +
               " committed ops; next-op image also mismatches: " +
               why_next + ")";
    }

  private:
    std::unique_ptr<ds::PHashTable> table_;
    uint64_t committed_ = 0;
};

// ---------------------------------------------------------------------------
// group_commit: relaxed-durability commit_async under the fence-epoch
// combiner.  Two sync() barriers seal two epochs of three async
// transactions each; every epoch rewrites the whole word array.  Crash
// anywhere inside the window — including between the member-record
// flushes and the single epoch fence — and recovery must land on
// exactly one of { baseline, epoch 1, epoch 2 }: whole-epoch
// all-or-nothing, never a torn batch with only some member
// transactions applied.
// ---------------------------------------------------------------------------

class GroupCommitScenario final : public Scenario
{
  public:
    static constexpr size_t kTxns = 3;        // member txns per epoch
    static constexpr size_t kWordsPerTxn = 4;
    static constexpr size_t kWords = kTxns * kWordsPerTxn;

    std::string name() const override { return "group_commit"; }

    void
    configure(RuntimeConfig &cfg) override
    {
        cfg.txn.group_commit = true;
        // Larger than any batch below: epochs seal only at the
        // workload thread's sync(), never early at a join, keeping the
        // persistence-event sequence deterministic.
        cfg.txn.epoch_max_batch = 64;
    }

    void
    prepare(ScenarioEnv &env) override
    {
        words_ = static_cast<uint64_t *>(env.rt.regions().pstaticVar(
            "sweep_epoch_words", kWords * sizeof(uint64_t), nullptr));
        // Keep the background truncator quiescent: with it paused all
        // combining happens inline on this thread, satisfying the
        // single-threaded determinism contract.
        env.rt.txns().pauseTruncation();
        env.rt.atomic([&](mtm::Txn &tx) {
            for (size_t w = 0; w < kWords; ++w)
                tx.writeT<uint64_t>(&words_[w], mixWord(0, w));
        });
    }

    void
    workload(ScenarioEnv &env) override
    {
        for (uint64_t epoch = 1; epoch <= 2; ++epoch) {
            for (size_t t = 0; t < kTxns; ++t) {
                env.rt.atomicAsync([&](mtm::Txn &tx) {
                    for (size_t i = 0; i < kWordsPerTxn; ++i) {
                        const size_t w = t * kWordsPerTxn + i;
                        tx.writeT<uint64_t>(&words_[w],
                                            mixWord(epoch, w));
                    }
                });
            }
            env.rt.sync();
        }
    }

    std::string
    verify(ScenarioEnv &env) override
    {
        auto *words = static_cast<uint64_t *>(env.rt.regions().pstaticVar(
            "sweep_epoch_words", kWords * sizeof(uint64_t), nullptr));
        // Each epoch (and the baseline) writes ALL words, so the only
        // legal images are complete ones.  Seeing some-but-not-all
        // words from an epoch means its batch tore.
        for (uint64_t epoch = 2;; --epoch) {
            size_t hits = 0;
            for (size_t w = 0; w < kWords; ++w)
                if (words[w] == mixWord(epoch, w))
                    ++hits;
            if (hits == kWords)
                return "";
            if (hits != 0) {
                std::ostringstream os;
                os << "group_commit: torn epoch " << epoch << ": only "
                   << hits << "/" << kWords << " words updated";
                return os.str();
            }
            if (epoch == 0)
                return "group_commit: no consistent image "
                       "(baseline missing)";
        }
    }

  private:
    uint64_t *words_ = nullptr;
};

// ---------------------------------------------------------------------------
// compact_redo / redo_v1 / compact_redo_gc: commit-record format
// coverage.  Every transaction writes one clustered 3-word run (a
// write() span) plus two scattered words on other cache lines — the
// shape the compact (v2) record encodes as a multi-run varint stream
// (redo_codec.h).  Transaction footprints are disjoint, so recovery
// must land on an exact transaction prefix: any torn record, a
// mis-decoded run, or a wrong base address shows up as a torn or
// out-of-prefix transaction.  The three registered variants pin the
// encoding knob (v2 default, v1 fallback) and run the v2 records
// through the group-commit epoch path (kTagCommitEpochV2 gated on the
// epoch marker).
// ---------------------------------------------------------------------------

class RedoShapeScenario : public Scenario
{
  public:
    static constexpr size_t kTxns = 4;
    static constexpr size_t kClustered = 3;   // contiguous words per txn
    static constexpr size_t kScattered = 2;   // far words per txn
    static constexpr size_t kScatterBase = kTxns * kClustered;
    static constexpr size_t kWords = kTxns * (kClustered + kScattered);
    static constexpr size_t kTxnsPerEpoch = 2; // group-commit variant

    RedoShapeScenario(bool compact, bool gc) : compact_(compact), gc_(gc) {}

    std::string
    name() const override
    {
        return gc_ ? "compact_redo_gc"
                   : (compact_ ? "compact_redo" : "redo_v1");
    }

    void
    configure(RuntimeConfig &cfg) override
    {
        cfg.txn.compact_redo = compact_;
        if (gc_) {
            cfg.txn.group_commit = true;
            // Larger than any batch below: epochs seal only at sync(),
            // keeping the persistence-event sequence deterministic.
            cfg.txn.epoch_max_batch = 64;
        }
    }

    void
    prepare(ScenarioEnv &env) override
    {
        words_ = static_cast<uint64_t *>(env.rt.regions().pstaticVar(
            "sweep_redo_words", kWords * sizeof(uint64_t), nullptr));
        if (gc_)
            env.rt.txns().pauseTruncation(); // combine inline: determinism
        env.rt.atomic([&](mtm::Txn &tx) {
            for (size_t w = 0; w < kWords; ++w)
                tx.writeT<uint64_t>(&words_[w], mixWord(0, w));
        });
    }

    void
    workload(ScenarioEnv &env) override
    {
        for (size_t t = 0; t < kTxns; ++t) {
            auto body = [&](mtm::Txn &tx) {
                // One contiguous run via a span write...
                uint64_t buf[kClustered];
                for (size_t i = 0; i < kClustered; ++i)
                    buf[i] = mixWord(t + 1, t * kClustered + i);
                tx.write(&words_[t * kClustered], buf, sizeof(buf));
                // ...plus scattered single words on other lines.
                for (size_t s = 0; s < kScattered; ++s) {
                    const size_t w = kScatterBase + s * kTxns + t;
                    tx.writeT<uint64_t>(&words_[w], mixWord(t + 1, w));
                }
            };
            if (gc_) {
                env.rt.atomicAsync(body);
                if ((t + 1) % kTxnsPerEpoch == 0)
                    env.rt.sync(); // seal the epoch
            } else {
                env.rt.atomic(body);
                ++committed_;
            }
        }
    }

    std::string
    verify(ScenarioEnv &env) override
    {
        auto *words = static_cast<uint64_t *>(env.rt.regions().pstaticVar(
            "sweep_redo_words", kWords * sizeof(uint64_t), nullptr));
        // Per-transaction all-or-nothing over disjoint footprints.
        size_t applied_prefix = 0;
        bool prefix_open = true;
        for (size_t t = 0; t < kTxns; ++t) {
            size_t hits = 0;
            const size_t total = kClustered + kScattered;
            for (size_t i = 0; i < kClustered; ++i)
                if (words[t * kClustered + i] ==
                    mixWord(t + 1, t * kClustered + i))
                    ++hits;
            for (size_t s = 0; s < kScattered; ++s) {
                const size_t w = kScatterBase + s * kTxns + t;
                if (words[w] == mixWord(t + 1, w))
                    ++hits;
            }
            if (hits != 0 && hits != total) {
                std::ostringstream os;
                os << name() << ": torn txn " << t << ": " << hits << "/"
                   << total << " words updated";
                return os.str();
            }
            if (hits == total) {
                if (!prefix_open) {
                    std::ostringstream os;
                    os << name() << ": txn " << t
                       << " applied after an unapplied predecessor";
                    return os.str();
                }
                ++applied_prefix;
            } else {
                prefix_open = false;
            }
        }
        if (gc_) {
            // Whole-epoch all-or-nothing: only epoch-multiple prefixes
            // are legal images (a sync() that crashed mid-round may or
            // may not have fenced its epoch, so any such prefix is).
            if (applied_prefix % kTxnsPerEpoch != 0) {
                std::ostringstream os;
                os << name() << ": torn epoch: " << applied_prefix
                   << " txns applied (not a multiple of "
                   << kTxnsPerEpoch << ")";
                return os.str();
            }
            return "";
        }
        // Synchronous commits: atomic() returning means durable, and at
        // most the one in-flight transaction may additionally survive.
        if (applied_prefix != committed_ &&
            applied_prefix != committed_ + 1) {
            std::ostringstream os;
            os << name() << ": " << applied_prefix
               << " txns applied, expected " << committed_ << " or "
               << committed_ + 1;
            return os.str();
        }
        return "";
    }

  private:
    const bool compact_;
    const bool gc_;
    uint64_t *words_ = nullptr;
    uint64_t committed_ = 0;
};

// ---------------------------------------------------------------------------
// bug_onefence: the deliberately broken protocol the sweeper must
// catch.  Each group writes four payload words and a commit word with a
// SINGLE trailing fence — omitting the ordering fence between payload
// and commit that the tornbit scheme exists to avoid needing.  Under
// kRandomSubset, the commit word can reach SCM while payload words are
// lost; verify() sees commit set with wrong payload.
// ---------------------------------------------------------------------------

class OneFenceBugScenario final : public Scenario
{
  public:
    static constexpr size_t kGroups = 6;
    static constexpr size_t kWordsPerGroup = 5; // 4 payload + 1 commit

    std::string name() const override { return "bug_onefence"; }

    void
    prepare(ScenarioEnv &env) override
    {
        words_ = static_cast<uint64_t *>(env.rt.regions().pstaticVar(
            "sweep_bug", kGroups * kWordsPerGroup * sizeof(uint64_t),
            nullptr));
    }

    void
    workload(ScenarioEnv &env) override
    {
        auto &c = env.scm;
        for (size_t g = 0; g < kGroups; ++g) {
            uint64_t *grp = words_ + g * kWordsPerGroup;
            for (size_t i = 0; i < 4; ++i)
                c.wtstoreT(&grp[i], mixWord(g, i));
            // BUG: no fence here — the commit word races its payload.
            c.wtstoreT(&grp[4], uint64_t(1));
            c.fence();
        }
    }

    std::string
    verify(ScenarioEnv &env) override
    {
        auto *words = static_cast<uint64_t *>(env.rt.regions().pstaticVar(
            "sweep_bug", kGroups * kWordsPerGroup * sizeof(uint64_t),
            nullptr));
        for (size_t g = 0; g < kGroups; ++g) {
            const uint64_t *grp = words + g * kWordsPerGroup;
            if (grp[4] == 0)
                continue; // uncommitted group: payload unconstrained
            for (size_t i = 0; i < 4; ++i) {
                if (grp[i] != mixWord(g, i)) {
                    std::ostringstream os;
                    os << "bug_onefence: group " << g
                       << " committed but word " << i << " is 0x"
                       << std::hex << grp[i] << ", want 0x"
                       << mixWord(g, i);
                    return os.str();
                }
            }
        }
        return "";
    }

  private:
    uint64_t *words_ = nullptr;
};

} // namespace

void
registerBuiltinScenarios()
{
    auto &r = ScenarioRegistry::instance();
    r.add("rawl", [] { return std::make_unique<RawlScenario>(); });
    r.add("mtm", [] { return std::make_unique<MtmScenario>(); });
    r.add("heap", [] { return std::make_unique<HeapScenario>(); });
    r.add("region", [] { return std::make_unique<RegionScenario>(); });
    r.add("hash", [] { return std::make_unique<HashScenario>(); });
    r.add("group_commit",
          [] { return std::make_unique<GroupCommitScenario>(); });
    r.add("compact_redo", [] {
        return std::make_unique<RedoShapeScenario>(/*compact=*/true,
                                                   /*gc=*/false);
    });
    r.add("redo_v1", [] {
        return std::make_unique<RedoShapeScenario>(/*compact=*/false,
                                                   /*gc=*/false);
    });
    r.add("compact_redo_gc", [] {
        return std::make_unique<RedoShapeScenario>(/*compact=*/true,
                                                   /*gc=*/true);
    });
}

void
registerSyntheticBugScenario()
{
    ScenarioRegistry::instance().add(
        "bug_onefence", [] { return std::make_unique<OneFenceBugScenario>(); });
}

} // namespace mnemosyne::crash
