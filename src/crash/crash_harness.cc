#include "crash/crash_harness.h"

#include <random>
#include <sstream>

namespace mnemosyne::crash {

CrashPoint::CrashPoint(scm::ScmContext &c, uint64_t at, bool halt_on_fire)
    : c_(c)
{
    c_.setWriteHook([this, at, halt_on_fire](uint64_t n,
                                             scm::ScmContext::Event,
                                             const void *, size_t) {
        if (!fired_ && n >= at) {
            fired_ = true;
            firedEvent_ = n;
            // The machine dies *now*: with halt_on_fire, no write issued
            // by unwinding code can reach SCM, so the post-crash image
            // depends only on the pre-crash history and the crash mode.
            if (halt_on_fire)
                c_.haltNow();
            throw scm::CrashNow{n};
        }
    });
}

CrashPoint::~CrashPoint()
{
    c_.setWriteHook(nullptr);
}

StressEngine::StressEngine(Runtime &rt, uint64_t seed,
                           const std::string &array_name)
    : rt_(rt), seed_(seed)
{
    arr_ = static_cast<uint64_t *>(rt.regions().pstaticVar(
        array_name, kWords * sizeof(uint64_t), nullptr));
}

void
StressEngine::opTargets(uint64_t seed, uint64_t op, size_t *idx,
                        uint64_t *val)
{
    std::mt19937_64 rng(seed * 69069 + op * 2654435761ULL);
    for (int k = 0; k < kWordsPerOp; ++k) {
        idx[k] = size_t(rng() % kWords);
        val[k] = rng();
    }
}

void
StressEngine::runOps(uint64_t total_ops, uint64_t *committed)
{
    for (uint64_t op = 0; op < total_ops; ++op) {
        size_t idx[kWordsPerOp];
        uint64_t val[kWordsPerOp];
        opTargets(seed_, op, idx, val);
        rt_.atomic([&](mtm::Txn &tx) {
            for (int k = 0; k < kWordsPerOp; ++k)
                tx.writeT<uint64_t>(&arr_[idx[k]], val[k]);
        });
        ++*committed;
    }
}

uint64_t
StressEngine::run(scm::ScmContext &c, uint64_t total_ops,
                  uint64_t crash_at_event)
{
    uint64_t committed = 0;
    lastCrashEvent_ = 0;
    try {
        CrashPoint cp(c, crash_at_event);
        try {
            runOps(total_ops, &committed);
        } catch (...) {
            lastCrashEvent_ = cp.firedEvent();
            throw;
        }
    } catch (const scm::CrashNow &) {
    }
    return committed;
}

StressResult
StressEngine::verify(Runtime &rt, uint64_t seed, uint64_t committed_ops,
                     const std::string &array_name, uint64_t crash_event)
{
    auto *arr = static_cast<uint64_t *>(rt.regions().pstaticVar(
        array_name, kWords * sizeof(uint64_t), nullptr));

    auto image = [&](uint64_t ops) {
        std::vector<uint64_t> img(kWords, 0);
        for (uint64_t op = 0; op < ops; ++op) {
            size_t idx[kWordsPerOp];
            uint64_t val[kWordsPerOp];
            opTargets(seed, op, idx, val);
            for (int k = 0; k < kWordsPerOp; ++k)
                img[idx[k]] = val[k];
        }
        return img;
    };

    StressResult res;
    res.committed_ops = committed_ops;
    res.crash_event = crash_event;
    const auto exact = image(committed_ops);
    const auto plus_one = image(committed_ops + 1);
    bool match_exact = true, match_next = true;
    size_t bad = kWords;
    size_t n_bad = 0;
    for (size_t i = 0; i < kWords; ++i) {
        if (arr[i] != exact[i]) {
            match_exact = false;
            ++n_bad;
            if (bad == kWords)
                bad = i;
        }
        if (arr[i] != plus_one[i])
            match_next = false;
    }
    res.verified = match_exact || match_next;
    if (!res.verified) {
        res.bad_index = bad;
        res.expected = exact[bad];
        res.actual = arr[bad];
        res.mismatched_words = n_bad;
        std::ostringstream os;
        os << "word " << bad << ": have 0x" << std::hex << arr[bad]
           << " want 0x" << exact[bad] << std::dec << " ("
           << n_bad << "/" << kWords << " words differ, committed "
           << committed_ops;
        if (crash_event)
            os << ", crash at event " << crash_event;
        os << ")";
        res.mismatch = os.str();
    }
    return res;
}

std::vector<size_t>
flipRandomBits(void *data, size_t bytes, size_t flips, uint64_t seed)
{
    auto *p = static_cast<uint8_t *>(data);
    std::mt19937_64 rng(seed);
    std::vector<size_t> positions;
    for (size_t i = 0; i < flips; ++i) {
        const size_t bit = size_t(rng() % (bytes * 8));
        p[bit / 8] ^= uint8_t(1u << (bit % 8));
        positions.push_back(bit);
    }
    return positions;
}

} // namespace mnemosyne::crash
