#include "crash/sweep.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "crash/crash_harness.h"
#include "obs/flight_recorder.h"
#include "obs/obs.h"

namespace mnemosyne::crash {

namespace {

struct SweepCounters {
    obs::Counter events{"sweep.events_enumerated"};
    obs::Counter trials{"sweep.trials"};
    obs::Counter failures{"sweep.failures"};
    obs::Histogram recovery{"sweep.recovery_ns"};
};

SweepCounters &
ctrs()
{
    static SweepCounters c;
    return c;
}

/** A self-deleting per-trial backing-file directory. */
class TrialDir
{
  public:
    explicit TrialDir(const std::string &root)
    {
        std::string tmpl = root + "/mn_sweep_XXXXXX";
        if (!mkdtemp(tmpl.data()))
            throw std::runtime_error("sweep: mkdtemp failed under " + root);
        path_ = tmpl;
    }

    ~TrialDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }

    TrialDir(const TrialDir &) = delete;
    TrialDir &operator=(const TrialDir &) = delete;

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

using clk = std::chrono::steady_clock;

} // namespace

const char *
modeName(scm::CrashPersistMode m)
{
    switch (m) {
    case scm::CrashPersistMode::kDropUnfenced: return "drop";
    case scm::CrashPersistMode::kKeepIssued: return "keep";
    case scm::CrashPersistMode::kKeepAll: return "all";
    case scm::CrashPersistMode::kRandomSubset: return "rand";
    }
    return "?";
}

bool
modeFromName(const std::string &s, scm::CrashPersistMode *out)
{
    if (s == "drop")
        *out = scm::CrashPersistMode::kDropUnfenced;
    else if (s == "keep")
        *out = scm::CrashPersistMode::kKeepIssued;
    else if (s == "all")
        *out = scm::CrashPersistMode::kKeepAll;
    else if (s == "rand")
        *out = scm::CrashPersistMode::kRandomSubset;
    else
        return false;
    return true;
}

std::string
formatSpec(const SweepSpec &spec)
{
    std::ostringstream os;
    os << spec.scenario << ":" << spec.event << ":" << modeName(spec.mode)
       << ":" << spec.seed;
    return os.str();
}

bool
parseSpec(const std::string &s, SweepSpec *out)
{
    // scenario:event:mode:seed — scenario names contain no ':'.
    std::vector<std::string> parts;
    size_t from = 0;
    for (;;) {
        const size_t colon = s.find(':', from);
        if (colon == std::string::npos) {
            parts.push_back(s.substr(from));
            break;
        }
        parts.push_back(s.substr(from, colon - from));
        from = colon + 1;
    }
    if (parts.size() != 4 || parts[0].empty())
        return false;
    SweepSpec spec;
    spec.scenario = parts[0];
    char *end = nullptr;
    spec.event = std::strtoull(parts[1].c_str(), &end, 10);
    if (!end || *end != '\0' || parts[1].empty())
        return false;
    if (!modeFromName(parts[2], &spec.mode))
        return false;
    spec.seed = std::strtoull(parts[3].c_str(), &end, 10);
    if (!end || *end != '\0' || parts[3].empty())
        return false;
    *out = spec;
    return true;
}

std::vector<std::string>
SweepReport::reproSpecs() const
{
    std::vector<std::string> out;
    for (const auto &s : scenarios)
        for (const auto &f : s.failed)
            out.push_back(formatSpec(f.spec));
    return out;
}

Sweeper::Sweeper(SweepOptions opts) : opts_(std::move(opts))
{
    if (opts_.workers == 0) {
        const size_t hw = std::thread::hardware_concurrency();
        opts_.workers = hw ? std::min<size_t>(hw, 8) : 2;
    }
    if (opts_.stride == 0)
        opts_.stride = 1;
    if (opts_.random_seeds == 0)
        opts_.random_seeds = 1;
    registerBuiltinScenarios();
}

RuntimeConfig
Sweeper::trialConfig(const std::string &dir, size_t worker) const
{
    RuntimeConfig rc;
    rc.use_current_scm_context = true;
    rc.region.backing_dir = dir;
    rc.region.scm_capacity = size_t(64) << 20;
    // Each worker owns a disjoint slice of persistent address space, so
    // concurrent trials can reserve and MAP_FIXED without colliding.
    const uintptr_t base =
        opts_.va_base ? opts_.va_base : region::RegionConfig{}.va_base;
    rc.region.va_base = base + uintptr_t(worker) * opts_.va_stride;
    rc.region.va_reserve = opts_.va_stride;
    rc.small_heap_bytes = 4 << 20;
    rc.big_heap_bytes = 4 << 20;
    rc.txn.log_slots = 8;
    rc.txn.log_slot_bytes = 256 * 1024;
    return rc;
}

uint64_t
Sweeper::countEvents(const std::string &scenario)
{
    auto sc = ScenarioRegistry::instance().create(scenario);
    TrialDir dir(opts_.tmp_root);
    uint64_t n = 0;
    {
        scm::ScmContext c{scm::ScmConfig{}};
        scm::ScopedThreadCtx guard(c);
        RuntimeConfig rcfg = trialConfig(dir.path(), 0);
        sc->configure(rcfg);
        Runtime rt(rcfg);
        ScenarioEnv env{rt, c};
        sc->prepare(env);
        // The swept window starts from a fully durable base: prepare's
        // effects cannot be part of any crash ambiguity.
        c.persistAll();
        const uint64_t start = c.eventCount();
        sc->workload(env);
        n = c.eventCount() - start;
    } // clean shutdown
    scm::ScmContext c2{scm::ScmConfig{}};
    scm::ScopedThreadCtx guard2(c2);
    RuntimeConfig rcfg2 = trialConfig(dir.path(), 0);
    sc->configure(rcfg2);
    Runtime rt2(rcfg2);
    ScenarioEnv env2{rt2, c2};
    const std::string err = sc->verify(env2);
    if (!err.empty()) {
        throw std::runtime_error("baseline (no-crash) invariant failure "
                                 "for '" + scenario + "': " + err);
    }
    return n;
}

TrialResult
Sweeper::runTrialIn(const SweepSpec &spec, size_t worker)
{
    TrialResult res;
    res.spec = spec;

    // Record every transaction of the trial in this worker's flight
    // ring: when verification fails, the victim's last transactions —
    // with span timings and log byte counts — ride along in the repro.
    auto &flight = obs::FlightRecorder::instance();
    flight.setSampleEvery(1);
    flight.setEnabled(true);
    flight.clearThread();
    std::vector<obs::FlightRecord> flightTail;

    try {
        TrialDir dir(opts_.tmp_root);
        auto sc = ScenarioRegistry::instance().create(spec.scenario);
        {
            scm::ScmConfig scfg;
            scfg.crash_mode = spec.mode;
            scfg.crash_seed = spec.seed;
            scm::ScmContext c(scfg);
            scm::ScopedThreadCtx guard(c);
            RuntimeConfig rcfg = trialConfig(dir.path(), worker);
            sc->configure(rcfg);
            Runtime rt(rcfg);
            ScenarioEnv env{rt, c};
            sc->prepare(env);
            c.persistAll();
            const uint64_t start = c.eventCount();
            try {
                CrashPoint cp(c, start + spec.event);
                sc->workload(env);
            } catch (const scm::CrashNow &) {
                res.crashed = true;
            }
            // Compute the post-crash image under this trial's mode and
            // seed; halt so the Runtime teardown below cannot write.
            c.crash(/*halt_after=*/true);

            // Capture the victim's flight-recorder tail now, before
            // recovery-time transactions overwrite the ring.
            flightTail = flight.threadSnapshot();
        }
        // Reincarnate over the same backing files, under a pristine
        // context, and check the scenario's invariant.
        scm::ScmContext c2{scm::ScmConfig{}};
        scm::ScopedThreadCtx guard2(c2);
        RuntimeConfig rcfg2 = trialConfig(dir.path(), worker);
        sc->configure(rcfg2);
        const auto t0 = clk::now();
        Runtime rt2(rcfg2);
        res.recovery_ns =
            uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         clk::now() - t0)
                         .count());
        ScenarioEnv env2{rt2, c2};
        res.detail = sc->verify(env2);
        res.passed = res.detail.empty();
    } catch (const std::exception &e) {
        res.passed = false;
        res.detail = std::string("exception: ") + e.what();
    }
    if (!res.passed && !flightTail.empty()) {
        // Mismatch forensics: the last few transactions the victim ran
        // before the crash point, newest last.
        constexpr size_t kTailRecords = 8;
        if (flightTail.size() > kTailRecords)
            flightTail.erase(flightTail.begin(),
                             flightTail.end() - kTailRecords);
        res.detail += "\nflight-recorder tail (last ";
        res.detail += std::to_string(flightTail.size());
        res.detail += " txns): ";
        res.detail += obs::FlightRecorder::recordsJson(flightTail);
    }
    ctrs().trials.add(1);
    if (!res.passed)
        ctrs().failures.add(1);
    if (res.recovery_ns)
        ctrs().recovery.record(res.recovery_ns);
    return res;
}

TrialResult
Sweeper::runTrial(const SweepSpec &spec)
{
    if (!ScenarioRegistry::instance().has(spec.scenario))
        throw std::out_of_range("unknown crash scenario: " + spec.scenario);
    return runTrialIn(spec, 0);
}

ScenarioReport
Sweeper::sweep(const std::string &scenario)
{
    ScenarioReport rep;
    rep.scenario = scenario;
    try {
        rep.events = countEvents(scenario);
    } catch (const std::exception &e) {
        rep.error = e.what();
        return rep;
    }
    ctrs().events.add(rep.events);

    std::vector<SweepSpec> specs;
    for (uint64_t k = 1; k <= rep.events; k += opts_.stride) {
        for (const auto mode : opts_.modes) {
            if (mode == scm::CrashPersistMode::kRandomSubset) {
                for (uint64_t s = 1; s <= opts_.random_seeds; ++s)
                    specs.push_back(SweepSpec{scenario, k, mode, s});
            } else {
                specs.push_back(SweepSpec{scenario, k, mode, 0});
            }
        }
    }
    if (opts_.max_trials && specs.size() > opts_.max_trials)
        specs.resize(opts_.max_trials);

    const auto deadline =
        opts_.budget_ms
            ? clk::now() + std::chrono::milliseconds(opts_.budget_ms)
            : clk::time_point::max();

    std::atomic<size_t> next{0};
    std::mutex mu;
    const size_t nworkers =
        std::max<size_t>(1, std::min(opts_.workers, specs.size()));
    std::vector<std::thread> pool;
    pool.reserve(nworkers);
    for (size_t w = 0; w < nworkers; ++w) {
        pool.emplace_back([&, w] {
            for (;;) {
                const size_t i = next.fetch_add(1,
                                                std::memory_order_relaxed);
                if (i >= specs.size())
                    return;
                if (clk::now() >= deadline) {
                    std::lock_guard<std::mutex> g(mu);
                    ++rep.skipped;
                    continue;
                }
                TrialResult r = runTrialIn(specs[i], w);
                std::lock_guard<std::mutex> g(mu);
                ++rep.trials;
                if (!r.passed) {
                    ++rep.failures;
                    rep.failed.push_back(std::move(r));
                }
            }
        });
    }
    for (auto &t : pool)
        t.join();
    return rep;
}

SweepReport
Sweeper::sweepAll(const std::vector<std::string> &names)
{
    SweepReport report;
    const std::vector<std::string> todo =
        names.empty() ? ScenarioRegistry::instance().names() : names;

    // A shared wall-clock budget: each scenario gets what remains.
    const auto start = clk::now();
    const uint64_t total_budget = opts_.budget_ms;
    for (const auto &name : todo) {
        if (total_budget) {
            const auto spent =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    clk::now() - start)
                    .count();
            opts_.budget_ms =
                uint64_t(spent) >= total_budget
                    ? 1 // expired: baseline still runs, trials skip
                    : total_budget - uint64_t(spent);
        }
        report.scenarios.push_back(sweep(name));
        const auto &rep = report.scenarios.back();
        report.trials += rep.trials;
        report.skipped += rep.skipped;
        report.failures += rep.failures;
    }
    opts_.budget_ms = total_budget;
    return report;
}

} // namespace mnemosyne::crash
