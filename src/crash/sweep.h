/**
 * @file
 * The exhaustive crash-consistency sweeper.
 *
 * For every registered scenario (crash/scenario.h) the sweeper:
 *
 *  1. runs a *baseline* trial: prepare + full workload + clean
 *     shutdown + recovery + verify, counting the N persistence events
 *     the workload issues (the SCM emulator numbers every store /
 *     wtstore / flush / fence) and checking the invariant holds with
 *     no crash at all;
 *
 *  2. fans the cross product {event k = 1..N} x {crash persistence
 *     mode} x {seed, for kRandomSubset} out over a worker pool.  Each
 *     trial runs in full isolation — its own ScmContext (installed as
 *     the worker thread's context override), its own backing-file
 *     tmpdir, its own slice of persistent address space — so workers
 *     never share emulator or mapping state;
 *
 *  3. for each trial: replays prepare + workload with a crash point at
 *     event k, computes the post-crash SCM image under the trial's
 *     mode/seed, reincarnates a fresh Runtime over the same backing
 *     files, and checks the scenario invariant.
 *
 * Every failure carries a deterministic repro spec,
 * "scenario:event:mode:seed" (e.g. "heap:217:rand:3"), replayable with
 * runTrial() or `crash_sweep --repro` — workloads are deterministic
 * and event numbers are window-relative, so a spec reproduces
 * identically regardless of which worker or machine found it.
 */

#ifndef MNEMOSYNE_CRASH_SWEEP_H_
#define MNEMOSYNE_CRASH_SWEEP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "crash/scenario.h"
#include "scm/scm.h"

namespace mnemosyne::crash {

/** One point in the sweep space. */
struct SweepSpec {
    std::string scenario;
    uint64_t event = 0;     ///< Crash at the event-th persistence event
                            ///< of the workload window (1-based).
    scm::CrashPersistMode mode = scm::CrashPersistMode::kDropUnfenced;
    uint64_t seed = 0;      ///< kRandomSubset survival seed.
};

/** Short stable mode names used in repro specs: drop/keep/all/rand. */
const char *modeName(scm::CrashPersistMode m);
bool modeFromName(const std::string &s, scm::CrashPersistMode *out);

/** "scenario:event:mode:seed" (seed omitted as 0 for non-rand modes). */
std::string formatSpec(const SweepSpec &spec);
bool parseSpec(const std::string &s, SweepSpec *out);

struct SweepOptions {
    /** Crash modes swept per event.  kKeepAll is a no-loss model and
     *  catches nothing the baseline doesn't, so it is off by default. */
    std::vector<scm::CrashPersistMode> modes{
        scm::CrashPersistMode::kDropUnfenced,
        scm::CrashPersistMode::kKeepIssued,
        scm::CrashPersistMode::kRandomSubset,
    };

    /** Seeds swept per event under kRandomSubset. */
    uint64_t random_seeds = 4;

    /** Worker threads (0 = one per core, capped at 8). */
    size_t workers = 0;

    /** Crash at events 1, 1+stride, 1+2*stride, ... (1 = exhaustive). */
    uint64_t stride = 1;

    /** Cap on trials per scenario (0 = unlimited). */
    uint64_t max_trials = 0;

    /** Wall-clock budget for a whole sweep (0 = unlimited).  Trials
     *  not started when it expires are skipped and counted. */
    uint64_t budget_ms = 0;

    /** Parent directory for per-trial backing-file tmpdirs. */
    std::string tmp_root = "/tmp";

    /** Base of the swept persistent address range (0 = the platform
     *  default).  Worker w uses va_base + w * va_stride; va_stride is
     *  also each trial's va_reserve, so worker ranges never overlap. */
    uintptr_t va_base = 0;
    uintptr_t va_stride = uintptr_t(1) << 30;
};

/** Outcome of one trial. */
struct TrialResult {
    SweepSpec spec;
    bool crashed = false;    ///< The injected crash point fired.
    bool passed = false;
    std::string detail;      ///< Invariant diagnostic / exception text.
    uint64_t recovery_ns = 0;///< Runtime reincarnation latency.
};

struct ScenarioReport {
    std::string scenario;
    uint64_t events = 0;     ///< Persistence events in the workload.
    uint64_t trials = 0;
    uint64_t skipped = 0;    ///< Not run (budget exhausted).
    uint64_t failures = 0;
    std::vector<TrialResult> failed;    ///< Failures only.
    std::string error;       ///< Baseline failure; "" when swept.
};

struct SweepReport {
    std::vector<ScenarioReport> scenarios;
    uint64_t trials = 0;
    uint64_t skipped = 0;
    uint64_t failures = 0;

    bool
    ok() const
    {
        if (failures)
            return false;
        for (const auto &s : scenarios)
            if (!s.error.empty())
                return false;
        return true;
    }

    /** One repro spec line per failure. */
    std::vector<std::string> reproSpecs() const;
};

class Sweeper
{
  public:
    explicit Sweeper(SweepOptions opts = {});

    /**
     * Baseline run: count the workload's persistence events and check
     * the invariant holds across a clean shutdown + recovery.  Throws
     * std::runtime_error when the no-crash invariant already fails.
     */
    uint64_t countEvents(const std::string &scenario);

    /** Sweep one scenario across its full event x mode x seed space. */
    ScenarioReport sweep(const std::string &scenario);

    /** Sweep the named scenarios (empty = every registered one). */
    SweepReport sweepAll(const std::vector<std::string> &names = {});

    /**
     * Run one trial — the --repro path.  Deterministic: the same spec
     * always yields the same outcome.
     */
    TrialResult runTrial(const SweepSpec &spec);

    const SweepOptions &options() const { return opts_; }

  private:
    TrialResult runTrialIn(const SweepSpec &spec, size_t worker);
    RuntimeConfig trialConfig(const std::string &dir, size_t worker) const;

    SweepOptions opts_;
};

} // namespace mnemosyne::crash

#endif // MNEMOSYNE_CRASH_SWEEP_H_
