/**
 * @file
 * Observability core: lock-free, per-thread-sharded counters and
 * bucketed latency histograms for every layer of Figure 1.
 *
 * Design goals (see DESIGN.md "Observability"):
 *
 *  - Near-zero overhead when disabled.  Two gates stack:
 *      * compile time: build with -DMNEMOSYNE_OBS=0 (cmake -DMN_OBS=OFF)
 *        and every registered counter/histogram/trace call compiles to
 *        nothing;
 *      * run time: the MNEMOSYNE_STATS environment variable (or
 *        setEnabled()) — when off, instrumented call sites cost one
 *        relaxed load and a predictable branch.
 *  - Lock-free hot path.  A counter is an array of cache-line-sized
 *    shards; a thread increments the shard picked by its process-wide
 *    ordinal with one relaxed fetch_add, so concurrent writers never
 *    share a line (until more than kMaxThreadShards threads exist, when
 *    ordinals wrap and shards are shared but stay correct).
 *  - Snapshots are sums over shards: never torn, at worst slightly
 *    stale relative to in-flight increments.
 *
 * ShardedCounter is the always-on value type used by layers that expose
 * their own stats structs (ScmStats, TxnStats).  Counter / Histogram
 * are the registered, gated variants that feed the StatsRegistry JSON
 * snapshot (stats_registry.h).
 */

#ifndef MNEMOSYNE_OBS_OBS_H_
#define MNEMOSYNE_OBS_OBS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

#ifndef MNEMOSYNE_OBS
#define MNEMOSYNE_OBS 1
#endif

namespace mnemosyne::obs {

/** Shards per counter; thread ordinals wrap beyond this. */
inline constexpr size_t kMaxThreadShards = 64;

namespace detail {
size_t nextThreadOrdinal();
#if MNEMOSYNE_OBS
extern std::atomic<bool> gEnabled;
#endif
} // namespace detail

/** Process-wide ordinal of the calling thread (0, 1, 2, ...). */
inline size_t
threadOrdinal()
{
    thread_local size_t ord = detail::nextThreadOrdinal();
    return ord;
}

inline size_t threadShard() { return threadOrdinal() % kMaxThreadShards; }

/** Monotonic nanoseconds since process start (for trace timestamps and
 *  latency measurement). */
uint64_t nowNs();

/**
 * Cheap monotonic tick source for per-transaction timing: the raw TSC
 * on x86-64 (one `rdtsc`, ~10 ns — less than half a clock_gettime), a
 * nowNs() fallback elsewhere.  Convert accumulated tick deltas to
 * nanoseconds with ticksToNs() at publish time, off the hot path.
 */
inline uint64_t
tickNow()
{
#if defined(__x86_64__)
    uint32_t lo, hi;
    asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
    return (uint64_t(hi) << 32) | lo;
#else
    return nowNs();
#endif
}

/** Nanoseconds represented by @p ticks tick-deltas (calibrated once per
 *  process on first use). */
uint64_t ticksToNs(uint64_t ticks);

#if MNEMOSYNE_OBS
/** Runtime toggle: seeded from MNEMOSYNE_STATS, overridable. */
inline bool
enabled()
{
    return detail::gEnabled.load(std::memory_order_relaxed);
}
void setEnabled(bool on);
#else
inline constexpr bool enabled() { return false; }
inline void setEnabled(bool) {}
#endif

/**
 * Always-on sharded counter (no registration, no runtime gate): the
 * building block, also used directly by layers whose stats predate the
 * observability subsystem (ScmStats, TxnStats).
 */
class ShardedCounter
{
  public:
    ShardedCounter() = default;
    ShardedCounter(const ShardedCounter &) = delete;
    ShardedCounter &operator=(const ShardedCounter &) = delete;

    void
    add(uint64_t n = 1)
    {
        slots_[threadShard()].v.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    sum() const
    {
        uint64_t s = 0;
        for (const auto &slot : slots_)
            s += slot.v.load(std::memory_order_relaxed);
        return s;
    }

    void
    reset()
    {
        for (auto &slot : slots_)
            slot.v.store(0, std::memory_order_relaxed);
    }

    /** Per-shard values (shard index == thread ordinal mod shards). */
    std::array<uint64_t, kMaxThreadShards>
    perShard() const
    {
        std::array<uint64_t, kMaxThreadShards> out;
        for (size_t i = 0; i < kMaxThreadShards; ++i)
            out[i] = slots_[i].v.load(std::memory_order_relaxed);
        return out;
    }

  private:
    struct alignas(64) Slot {
        std::atomic<uint64_t> v{0};
    };
    std::array<Slot, kMaxThreadShards> slots_{};
};

#if MNEMOSYNE_OBS

/**
 * A named counter registered with the StatsRegistry.  Increments are
 * dropped while stats are disabled, so counters reflect activity during
 * enabled windows only.  Construct as a function-local static grouped
 * per layer:
 *
 *   struct RawlObs { obs::Counter appends{"rawl.appends"}; ... };
 *   RawlObs &robs() { static RawlObs o; return o; }
 */
class Counter
{
  public:
    /** @p key must outlive the counter (string literal).  With
     *  @p per_thread_breakdown, JSON snapshots also emit the per-shard
     *  array under "<key>.per_thread". */
    explicit Counter(const char *key, bool per_thread_breakdown = false);
    ~Counter();

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void
    add(uint64_t n = 1)
    {
        if (enabled())
            impl_.add(n);
    }

    uint64_t value() const { return impl_.sum(); }
    void reset() { impl_.reset(); }
    const char *key() const { return key_; }
    bool breakdown() const { return breakdown_; }
    std::array<uint64_t, kMaxThreadShards> perShard() const
    {
        return impl_.perShard();
    }

  private:
    const char *key_;
    const bool breakdown_;
    ShardedCounter impl_;
};

/**
 * A registered power-of-two-bucketed histogram (bucket i covers values
 * in [2^i, 2^(i+1)), with 0 folded into bucket 0).  Intended for
 * latencies in nanoseconds; records are dropped while stats are
 * disabled.  Not sharded: histograms sit off the hot path (truncation
 * latency, recovery phases).
 *
 * The bucket array stops at 2^kBuckets (~3.2 days in ns): values at or
 * beyond the top bucket are counted in an explicit overflow bucket
 * (exposed as <key>.overflow in snapshots) instead of clamping
 * silently, and quantiles that land there saturate to UINT64_MAX.
 * Latencies that need tighter resolution than a power of two use
 * HdrHistogram (hdr_histogram.h).
 */
class Histogram
{
  public:
    static constexpr size_t kBuckets = 48;

    explicit Histogram(const char *key);
    ~Histogram();

    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    void
    record(uint64_t v)
    {
        if (enabled())
            recordAlways(v);
    }

    void recordAlways(uint64_t v);

    /** Bucket that value @p v falls into. */
    static size_t
    bucketIndex(uint64_t v)
    {
        return v == 0 ? 0 : size_t(std::bit_width(v)) - 1;
    }

    /** Smallest value belonging to bucket @p i. */
    static uint64_t
    bucketLowerBound(size_t i)
    {
        return i == 0 ? 0 : uint64_t(1) << i;
    }

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t total() const { return sum_.load(std::memory_order_relaxed); }

    /** Records at or beyond bucketLowerBound(kBuckets). */
    uint64_t
    overflow() const
    {
        return overflow_.load(std::memory_order_relaxed);
    }

    /** Approximate quantile (upper bound of the containing bucket;
     *  ranks in the overflow bucket saturate to UINT64_MAX). */
    uint64_t quantile(double q) const;

    std::array<uint64_t, kBuckets> bucketsSnapshot() const;
    void reset();
    const char *key() const { return key_; }

  private:
    const char *key_;
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> overflow_{0};
    std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
};

#else // !MNEMOSYNE_OBS — compiled-out stubs with identical surface

class Counter
{
  public:
    explicit Counter(const char *key, bool = false) : key_(key) {}
    void add(uint64_t = 1) {}
    uint64_t value() const { return 0; }
    void reset() {}
    const char *key() const { return key_; }
    bool breakdown() const { return false; }
    std::array<uint64_t, kMaxThreadShards> perShard() const { return {}; }

  private:
    const char *key_;
};

class Histogram
{
  public:
    static constexpr size_t kBuckets = 48;
    explicit Histogram(const char *key) : key_(key) {}
    void record(uint64_t) {}
    void recordAlways(uint64_t) {}
    static size_t bucketIndex(uint64_t v)
    {
        return v == 0 ? 0 : size_t(std::bit_width(v)) - 1;
    }
    static uint64_t bucketLowerBound(size_t i)
    {
        return i == 0 ? 0 : uint64_t(1) << i;
    }
    uint64_t count() const { return 0; }
    uint64_t total() const { return 0; }
    uint64_t overflow() const { return 0; }
    uint64_t quantile(double) const { return 0; }
    std::array<uint64_t, kBuckets> bucketsSnapshot() const { return {}; }
    void reset() {}
    const char *key() const { return key_; }

  private:
    const char *key_;
};

#endif // MNEMOSYNE_OBS

} // namespace mnemosyne::obs

#endif // MNEMOSYNE_OBS_OBS_H_
