#include "obs/phase.h"

#include <cinttypes>
#include <cstdio>

namespace mnemosyne::obs {

#if MNEMOSYNE_OBS

uint64_t
PhaseResult::value(const std::string &key) const
{
    const auto it = scalars.find(key);
    if (it == scalars.end())
        return 0;
    return it->second.is_float ? uint64_t(it->second.d) : it->second.u;
}

double
PhaseResult::valueF(const std::string &key) const
{
    const auto it = scalars.find(key);
    if (it == scalars.end())
        return 0.0;
    return it->second.is_float ? it->second.d : double(it->second.u);
}

uint64_t
PhaseResult::hdrQuantile(const std::string &key, double q) const
{
    const auto it = hdrs.find(key);
    return it == hdrs.end() ? 0 : it->second.quantile(q);
}

uint64_t
PhaseResult::hdrCount(const std::string &key) const
{
    const auto it = hdrs.find(key);
    return it == hdrs.end() ? 0 : it->second.count;
}

namespace {

void
appendKv(std::string &out, bool &first, const std::string &key, uint64_t v)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\":%" PRIu64, first ? "" : ",",
                  key.c_str(), v);
    first = false;
    out += buf;
}

} // namespace

std::string
PhaseResult::json() const
{
    std::string out = "{\"name\":\"" + name + "\",\"wall_ns\":";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, wall_ns);
    out += buf;
    out += ",\"stats\":{";
    bool first = true;
    for (const auto &[key, v] : scalars) {
        if (v.is_float) {
            char fbuf[96];
            std::snprintf(fbuf, sizeof(fbuf), "%s\"%s\":%.6g",
                          first ? "" : ",", key.c_str(), v.d);
            first = false;
            out += fbuf;
        } else {
            appendKv(out, first, key, v.u);
        }
    }
    for (const auto &[key, d] : hdrs) {
        appendKv(out, first, key + ".count", d.count);
        appendKv(out, first, key + ".sum", d.sum);
        appendKv(out, first, key + ".p50", d.quantile(0.50));
        appendKv(out, first, key + ".p90", d.quantile(0.90));
        appendKv(out, first, key + ".p95", d.quantile(0.95));
        appendKv(out, first, key + ".p99", d.quantile(0.99));
        appendKv(out, first, key + ".p999", d.quantile(0.999));
        appendKv(out, first, key + ".overflow", d.overflow);
    }
    out += "}}";
    return out;
}

PhaseResult
diffSnapshots(std::string name, const StatsRegistry::RawSnapshot &begin,
              const StatsRegistry::RawSnapshot &end)
{
    PhaseResult r;
    r.name = std::move(name);
    r.wall_ns =
        end.when_ns > begin.when_ns ? end.when_ns - begin.when_ns : 0;

    for (const auto &[key, ev] : end.scalars) {
        const auto bit = begin.scalars.find(key);
        Sink::Value d;
        if (ev.is_float || (bit != begin.scalars.end() &&
                            bit->second.is_float)) {
            const double e = ev.is_float ? ev.d : double(ev.u);
            const double b =
                bit == begin.scalars.end()
                    ? 0.0
                    : (bit->second.is_float ? bit->second.d
                                            : double(bit->second.u));
            d.is_float = true;
            d.d = e - b;
        } else {
            const uint64_t b =
                bit == begin.scalars.end() ? 0 : bit->second.u;
            d.u = ev.u > b ? ev.u - b : 0;
        }
        r.scalars.emplace(key, d);
    }

    for (const auto &[key, ed] : end.hdrs) {
        const auto bit = begin.hdrs.find(key);
        r.hdrs.emplace(key, bit == begin.hdrs.end() ? ed
                                                    : ed - bit->second);
    }
    return r;
}

Phase::Phase(std::string name)
    : name_(std::move(name)),
      begin_(StatsRegistry::instance().rawSnapshot())
{
}

PhaseResult
Phase::finish()
{
    if (finished_) {
        // Already recorded: return the logged copy if still present,
        // else an empty result (callers normally finish() once).
        for (const auto &r : PhaseLog::instance().results())
            if (r.name == name_)
                return r;
        PhaseResult r;
        r.name = name_;
        return r;
    }
    finished_ = true;
    PhaseResult r = diffSnapshots(
        name_, begin_, StatsRegistry::instance().rawSnapshot());
    PhaseLog::instance().record(r);
    return r;
}

Phase::~Phase()
{
    if (!finished_)
        (void)finish();
}

PhaseLog &
PhaseLog::instance()
{
    static PhaseLog log;
    return log;
}

void
PhaseLog::record(PhaseResult r)
{
    std::lock_guard<std::mutex> g(mu_);
    results_.push_back(std::move(r));
}

std::vector<PhaseResult>
PhaseLog::results() const
{
    std::lock_guard<std::mutex> g(mu_);
    return results_;
}

std::string
PhaseLog::json() const
{
    const auto results = this->results();
    std::string out = "{\"phases\":[";
    for (size_t i = 0; i < results.size(); ++i) {
        if (i)
            out += ",";
        out += results[i].json();
    }
    out += "]}";
    return out;
}

void
PhaseLog::clear()
{
    std::lock_guard<std::mutex> g(mu_);
    results_.clear();
}

#endif // MNEMOSYNE_OBS

} // namespace mnemosyne::obs
