/**
 * @file
 * Bounded in-memory ring of persistence events, exportable as Chrome
 * trace-event JSON (load the file at chrome://tracing or ui.perfetto.dev).
 *
 * Recording is lock-free: a writer claims a slot with one relaxed
 * fetch_add on the head and fills it in place; when the ring is full,
 * the oldest events are overwritten.  Each record carries its claim
 * sequence number, so a snapshot can reassemble the surviving events in
 * order and discard slots that are mid-write.  Export is intended to
 * run at a quiescent point (shutdown, end of benchmark); an export
 * racing active writers may drop the handful of events being written at
 * that instant, never crash.
 *
 * Toggles: MNEMOSYNE_TRACE=1 enables recording, MNEMOSYNE_TRACE_FILE
 * names a JSON file auto-written at Runtime shutdown (implies enable),
 * MNEMOSYNE_TRACE_CAPACITY overrides the default 65536-event capacity.
 */

#ifndef MNEMOSYNE_OBS_TRACE_RING_H_
#define MNEMOSYNE_OBS_TRACE_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace mnemosyne::obs {

/** Persistence-event kinds recorded by the layers of Figure 1. */
enum class TraceEv : uint8_t {
    // scm (hardware primitives)
    kFence,
    kFlush,
    kWtStore,
    kStore,
    // log (RAWL)
    kLogAppend,
    kLogFlush,
    kLogTruncate,
    // mtm (durable transactions)
    kTxnBegin,
    kTxnCommit,
    kTxnAbort,
    // region (kernel simulation)
    kRegionMap,
    kRegionUnmap,
    kPageFault,
    kPageEvict,
    // heap
    kHeapAlloc,
    kHeapFree,
    // runtime
    kReincPhase,
};

const char *traceEvName(TraceEv ev);

struct TraceRecord {
    uint64_t seq = 0;       ///< 1-based claim order; 0 = never written.
    uint64_t ts_ns = 0;     ///< nowNs() at record time.
    uint64_t dur_ns = 0;    ///< Non-zero for span events.
    uint64_t a0 = 0;        ///< Event-specific argument.
    uint64_t a1 = 0;        ///< Event-specific argument.
    uint32_t tid = 0;       ///< obs::threadOrdinal() of the recorder.
    TraceEv ev = TraceEv::kFence;
};

class TraceRing
{
  public:
    static constexpr size_t kDefaultCapacity = 1 << 16;

    static TraceRing &instance();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void setEnabled(bool on);

    /** Resize (rounded up to a power of two) and clear.  Not safe
     *  against concurrent record(); call at a quiescent point. */
    void setCapacity(size_t events);
    size_t capacity() const { return ring_.size(); }

    void
    record(TraceEv ev, uint64_t a0 = 0, uint64_t a1 = 0, uint64_t dur_ns = 0)
    {
#if MNEMOSYNE_OBS
        if (!enabled())
            return;
        const uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
        TraceRecord &r = ring_[seq & mask_];
        r.seq = seq + 1;
        r.ts_ns = nowNs();
        r.dur_ns = dur_ns;
        r.a0 = a0;
        r.a1 = a1;
        r.tid = uint32_t(threadOrdinal());
        r.ev = ev;
#else
        (void)ev;
        (void)a0;
        (void)a1;
        (void)dur_ns;
#endif
    }

    /** Events ever recorded (including overwritten ones). */
    uint64_t recorded() const { return head_.load(std::memory_order_relaxed); }

    /** Events lost to ring wraparound. */
    uint64_t
    dropped() const
    {
        const uint64_t n = recorded();
        return n > ring_.size() ? n - ring_.size() : 0;
    }

    /** Surviving events, oldest first. */
    std::vector<TraceRecord> snapshot() const;

    void clear();

    /** Label the calling thread in trace exports ("worker-3",
     *  "async-trunc"); emitted as Chrome "M"-phase thread_name
     *  metadata.  Unnamed threads export as "thread <ordinal>". */
    void setThreadName(const std::string &name);

    /** Registered names by thread ordinal. */
    std::map<uint32_t, std::string> threadNames() const;

    /** Chrome trace-event JSON ({"traceEvents":[...]}), led by
     *  process_name / thread_name metadata records. */
    void exportChromeJson(std::ostream &os) const;
    bool exportChromeJsonFile(const std::string &path) const;

  private:
    TraceRing();

    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> head_{0};
    std::vector<TraceRecord> ring_;
    uint64_t mask_ = 0;
    mutable std::mutex resizeMu_;
    mutable std::mutex namesMu_;
    std::map<uint32_t, std::string> threadNames_;
};

/** Convenience: name the calling thread for trace/flight exports. */
inline void
setCurrentThreadName(const std::string &name)
{
#if MNEMOSYNE_OBS
    TraceRing::instance().setThreadName(name);
#else
    (void)name;
#endif
}

} // namespace mnemosyne::obs

#endif // MNEMOSYNE_OBS_TRACE_RING_H_
