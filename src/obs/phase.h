/**
 * @file
 * Phase-scoped stats diffing: bracket a region of interest with a
 * RAII `Phase` and get the *interval's* counters and exact interval
 * percentiles, not the process-lifetime aggregates.
 *
 *   {
 *       obs::Phase phase("load");
 *       runLoad();
 *       obs::PhaseResult r = phase.finish();
 *       // r.value("mtm.commits"), r.hdrQuantile("mtm.commit_ns", 0.99)
 *   }
 *
 * A Phase captures StatsRegistry::rawSnapshot() at construction and at
 * finish()/destruction; the diff is computed bucket-wise on the raw
 * HdrHistogram bucket arrays (percentiles of endpoint snapshots do not
 * subtract — bucket counts do).  Finished phases are also appended to
 * the global PhaseLog, which benches and the crash sweeper dump as
 * JSON ("phases" command on the stats emitter).
 *
 * Like the rest of the obs layer, everything here compiles to no-op
 * stubs under MN_OBS=OFF.
 */

#ifndef MNEMOSYNE_OBS_PHASE_H_
#define MNEMOSYNE_OBS_PHASE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/hdr_histogram.h"
#include "obs/stats_registry.h"

namespace mnemosyne::obs {

#if MNEMOSYNE_OBS

/** The diff between a phase's two endpoint snapshots. */
struct PhaseResult {
    std::string name;
    uint64_t wall_ns = 0;
    std::map<std::string, Sink::Value> scalars; ///< Saturating deltas.
    std::map<std::string, HdrHistogram::Data> hdrs; ///< Interval data.

    /** Scalar delta for @p key (0 when absent). */
    uint64_t value(const std::string &key) const;
    double valueF(const std::string &key) const;

    /** Interval quantile of HdrHistogram @p key (0 when absent). */
    uint64_t hdrQuantile(const std::string &key, double q) const;
    uint64_t hdrCount(const std::string &key) const;

    /** One-line JSON: {"name":...,"wall_ns":...,"stats":{...}} with
     *  hdr keys expanded to .count/.sum/.p50/.p90/.p95/.p99/.p999. */
    std::string json() const;
};

/** Process-global log of finished phases (mutex-guarded, cold path). */
class PhaseLog
{
  public:
    static PhaseLog &instance();

    void record(PhaseResult r);
    std::vector<PhaseResult> results() const;
    std::string json() const; ///< {"phases":[...]}
    void clear();

  private:
    PhaseLog() = default;
    mutable std::mutex mu_;
    std::vector<PhaseResult> results_;
};

class Phase
{
  public:
    /** Captures the begin snapshot (cold: one registry walk). */
    explicit Phase(std::string name);

    /** Captures the end snapshot, records the diff into the PhaseLog
     *  and returns it.  Idempotent; the destructor calls it if the
     *  caller did not. */
    PhaseResult finish();

    ~Phase();

    Phase(const Phase &) = delete;
    Phase &operator=(const Phase &) = delete;

  private:
    std::string name_;
    StatsRegistry::RawSnapshot begin_;
    bool finished_ = false;
};

/** Diff two raw snapshots (end - begin) under @p name. */
PhaseResult diffSnapshots(std::string name,
                          const StatsRegistry::RawSnapshot &begin,
                          const StatsRegistry::RawSnapshot &end);

#else // !MNEMOSYNE_OBS — compiled-out stubs with identical surface

struct PhaseResult {
    std::string name;
    uint64_t wall_ns = 0;
    std::map<std::string, Sink::Value> scalars;
    std::map<std::string, HdrHistogram::Data> hdrs;
    uint64_t value(const std::string &) const { return 0; }
    double valueF(const std::string &) const { return 0.0; }
    uint64_t hdrQuantile(const std::string &, double) const { return 0; }
    uint64_t hdrCount(const std::string &) const { return 0; }
    std::string json() const { return "{}"; }
};

class PhaseLog
{
  public:
    static PhaseLog &
    instance()
    {
        static PhaseLog log;
        return log;
    }
    void record(PhaseResult) {}
    std::vector<PhaseResult> results() const { return {}; }
    std::string json() const { return "{\"phases\":[]}"; }
    void clear() {}
};

class Phase
{
  public:
    explicit Phase(std::string name) : name_(std::move(name)) {}
    PhaseResult
    finish()
    {
        PhaseResult r;
        r.name = name_;
        return r;
    }
    Phase(const Phase &) = delete;
    Phase &operator=(const Phase &) = delete;

  private:
    std::string name_;
};

inline PhaseResult
diffSnapshots(std::string name, const StatsRegistry::RawSnapshot &,
              const StatsRegistry::RawSnapshot &)
{
    PhaseResult r;
    r.name = std::move(name);
    return r;
}

#endif // MNEMOSYNE_OBS

} // namespace mnemosyne::obs

#endif // MNEMOSYNE_OBS_PHASE_H_
