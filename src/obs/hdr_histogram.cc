#include "obs/hdr_histogram.h"

#include <algorithm>

#include "obs/stats_registry.h"

namespace mnemosyne::obs {

#if MNEMOSYNE_OBS

HdrHistogram::HdrHistogram(const char *key)
    : key_(key), buckets_(HdrLayout::kBucketCount)
{
    StatsRegistry::instance().add(this);
}

HdrHistogram::~HdrHistogram()
{
    StatsRegistry::instance().remove(this);
}

void
HdrHistogram::recordAlways(uint64_t v)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    if (v > HdrLayout::kMaxTrackable) {
        overflow_.fetch_add(1, std::memory_order_relaxed);
    } else {
        buckets_[HdrLayout::indexFor(v)].fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

HdrHistogram::Data
HdrHistogram::data() const
{
    Data d;
    d.count = count_.load(std::memory_order_relaxed);
    d.sum = sum_.load(std::memory_order_relaxed);
    d.overflow = overflow_.load(std::memory_order_relaxed);
    d.max = max_.load(std::memory_order_relaxed);
    d.buckets.resize(HdrLayout::kBucketCount);
    for (size_t i = 0; i < HdrLayout::kBucketCount; ++i)
        d.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    return d;
}

void
HdrHistogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    overflow_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

uint64_t
HdrHistogram::Data::quantile(double q) const
{
    uint64_t total = overflow;
    for (uint64_t b : buckets)
        total += b;
    if (total == 0)
        return 0;
    q = std::clamp(q, 0.0, 1.0);
    const uint64_t rank = uint64_t(double(total - 1) * q) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        seen += buckets[i];
        if (seen >= rank)
            return HdrLayout::valueFor(i);
    }
    return HdrLayout::kMaxTrackable; // rank fell into the overflow bucket
}

HdrHistogram::Data
HdrHistogram::Data::operator-(const Data &base) const
{
    auto sat = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
    Data d;
    d.count = sat(count, base.count);
    d.sum = sat(sum, base.sum);
    d.overflow = sat(overflow, base.overflow);
    // Interval max is unknowable from endpoint snapshots; report the
    // endpoint max only if the interval actually recorded something.
    d.max = d.count ? max : 0;
    d.buckets.resize(std::max(buckets.size(), base.buckets.size()), 0);
    for (size_t i = 0; i < d.buckets.size(); ++i) {
        const uint64_t a = i < buckets.size() ? buckets[i] : 0;
        const uint64_t b = i < base.buckets.size() ? base.buckets[i] : 0;
        d.buckets[i] = sat(a, b);
    }
    return d;
}

void
HdrHistogram::Data::merge(const Data &other)
{
    count += other.count;
    sum += other.sum;
    overflow += other.overflow;
    max = std::max(max, other.max);
    if (buckets.size() < other.buckets.size())
        buckets.resize(other.buckets.size(), 0);
    for (size_t i = 0; i < other.buckets.size(); ++i)
        buckets[i] += other.buckets[i];
}

#endif // MNEMOSYNE_OBS

} // namespace mnemosyne::obs
