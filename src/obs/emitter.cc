#include "obs/emitter.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define MNEMOSYNE_EMITTER_SOCKETS 1
#else
#define MNEMOSYNE_EMITTER_SOCKETS 0
#endif

#include "obs/flight_recorder.h"
#include "obs/phase.h"
#include "obs/stats_registry.h"

namespace mnemosyne::obs {

#if MNEMOSYNE_OBS

namespace {

std::atomic<bool> gSigusr2{false};

extern "C" void
sigusr2Handler(int)
{
    // Async-signal-safe: just raise the flag; the emitter thread polls.
    gSigusr2.store(true, std::memory_order_release);
}

void
installSigusr2()
{
#if MNEMOSYNE_EMITTER_SOCKETS
    static std::once_flag once;
    std::call_once(once, [] {
        struct sigaction sa;
        std::memset(&sa, 0, sizeof(sa));
        sa.sa_handler = sigusr2Handler;
        sigemptyset(&sa.sa_mask);
        sa.sa_flags = SA_RESTART;
        sigaction(SIGUSR2, &sa, nullptr);
    });
#endif
}

} // namespace

StatsEmitter &
StatsEmitter::instance()
{
    // Immortal: the emitter thread may outlive static destructors of
    // other translation units; stop() is hooked via atexit instead.
    static StatsEmitter *e = new StatsEmitter();
    return *e;
}

bool
StatsEmitter::start(int port)
{
    std::lock_guard<std::mutex> g(startMu_);
    if (running())
        return true;

#if MNEMOSYNE_EMITTER_SOCKETS
    listenFd_ = -1;
    if (port >= 0) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return false;
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
        sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(uint16_t(port));
        if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
                0 ||
            ::listen(fd, 4) != 0) {
            std::fprintf(stderr,
                         "mnemosyne: stats emitter cannot bind port %d: %s\n",
                         port, std::strerror(errno));
            ::close(fd);
            return false;
        }
        socklen_t len = sizeof(addr);
        ::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len);
        port_.store(ntohs(addr.sin_port), std::memory_order_release);
        listenFd_ = fd;
    }
#else
    (void)port;
#endif

    installSigusr2();
    stop_.store(false, std::memory_order_release);
    running_.store(true, std::memory_order_release);
    thread_ = std::thread([this] { run(); });
    std::atexit([] { StatsEmitter::instance().stop(); });
    return true;
}

void
StatsEmitter::stop()
{
    std::lock_guard<std::mutex> g(startMu_);
    if (!running())
        return;
    stop_.store(true, std::memory_order_release);
    if (thread_.joinable())
        thread_.join();
    running_.store(false, std::memory_order_release);
#if MNEMOSYNE_EMITTER_SOCKETS
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
#endif
    port_.store(0, std::memory_order_release);
}

void
StatsEmitter::run()
{
#if MNEMOSYNE_EMITTER_SOCKETS
    while (!stop_.load(std::memory_order_acquire)) {
        if (gSigusr2.exchange(false, std::memory_order_acq_rel) ||
            dumpRequested_.exchange(false, std::memory_order_acq_rel))
            writeDump();

        if (listenFd_ < 0) {
            // Dump-only mode: poll the flags at ~5 Hz.
            struct timespec ts = {0, 200 * 1000 * 1000};
            nanosleep(&ts, nullptr);
            continue;
        }

        pollfd pfd = {listenFd_, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 200);
        if (rc <= 0)
            continue;
        const int client = ::accept(listenFd_, nullptr, nullptr);
        if (client < 0)
            continue;
        serveClient(client);
        ::close(client);
    }
#else
    while (!stop_.load(std::memory_order_acquire)) {
    }
#endif
}

#if MNEMOSYNE_EMITTER_SOCKETS

void
StatsEmitter::serveClient(int fd)
{
    std::string buf;
    char chunk[4096];
    while (!stop_.load(std::memory_order_acquire)) {
        pollfd pfd = {fd, POLLIN, 0};
        const int rc = ::poll(&pfd, 1, 200);
        if (rc < 0)
            return;
        if (rc == 0) {
            // Stay responsive to dump requests while a client idles.
            if (gSigusr2.exchange(false, std::memory_order_acq_rel) ||
                dumpRequested_.exchange(false, std::memory_order_acq_rel))
                writeDump();
            continue;
        }
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return;
        buf.append(chunk, size_t(n));

        size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            bool close = false;
            std::string reply = respond(line, close);
            reply += '\n';
            size_t off = 0;
            while (off < reply.size()) {
                const ssize_t w =
                    ::send(fd, reply.data() + off, reply.size() - off, 0);
                if (w <= 0)
                    return;
                off += size_t(w);
            }
            if (close)
                return;
        }
    }
}

#else

void
StatsEmitter::serveClient(int)
{
}

#endif // MNEMOSYNE_EMITTER_SOCKETS

std::string
StatsEmitter::respond(const std::string &line, bool &close)
{
    if (line == "ping") {
        char buf[64];
#if MNEMOSYNE_EMITTER_SOCKETS
        std::snprintf(buf, sizeof(buf), "{\"ok\":true,\"pid\":%d}",
                      int(::getpid()));
#else
        std::snprintf(buf, sizeof(buf), "{\"ok\":true,\"pid\":0}");
#endif
        return buf;
    }
    if (line == "stats")
        return StatsRegistry::instance().jsonSnapshot();
    if (line == "flight" || line.rfind("flight ", 0) == 0) {
        size_t cap = 0;
        if (line.size() > 7)
            cap = size_t(std::strtoul(line.c_str() + 7, nullptr, 10));
        return FlightRecorder::instance().json(cap);
    }
    if (line == "slow")
        return FlightRecorder::recordsJson(
            FlightRecorder::instance().slowest());
    if (line == "phases")
        return PhaseLog::instance().json();
    if (line == "reset") {
        StatsRegistry::instance().resetAll();
        return "{\"ok\":true}";
    }
    if (line == "quit" || line == "exit") {
        close = true;
        return "{\"ok\":true}";
    }
    return "{\"error\":\"unknown command: " + line + "\"}";
}

void
StatsEmitter::writeDump()
{
    std::string out = "{\"stats\":";
    out += StatsRegistry::instance().jsonSnapshot();
    out += ",\"flight\":";
    out += FlightRecorder::instance().json();
    out += ",\"phases\":";
    out += PhaseLog::instance().json();
    out += "}";

    if (const char *path = std::getenv("MNEMOSYNE_DUMP_FILE")) {
        if (std::FILE *f = std::fopen(path, "a")) {
            std::fprintf(f, "%s\n", out.c_str());
            std::fclose(f);
            return;
        }
        std::fprintf(stderr,
                     "mnemosyne: cannot append dump to %s; using stderr\n",
                     path);
    }
    std::fprintf(stderr, "%s\n", out.c_str());
}

void
StatsEmitter::maybeStartFromEnv()
{
    if (const char *v = std::getenv("MNEMOSYNE_STATS_PORT")) {
        const long port = std::strtol(v, nullptr, 10);
        if (port >= 0 && port <= 65535) {
            if (instance().start(int(port)) && instance().port() != 0)
                std::fprintf(stderr,
                             "mnemosyne: stats emitter listening on "
                             "127.0.0.1:%u\n",
                             unsigned(instance().port()));
            return;
        }
    }
    // Dump-only (SIGUSR2) mode whenever stats are on at startup.
    if (enabled())
        instance().start(-1);
}

#endif // MNEMOSYNE_OBS

} // namespace mnemosyne::obs
