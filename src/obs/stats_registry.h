/**
 * @file
 * StatsRegistry: the single place every layer's observability data
 * meets, and the JSON/text exporter behind the MNEMOSYNE_STATS toggle.
 *
 * Three kinds of inputs:
 *
 *  - Counters / Histograms (obs.h) self-register on construction and
 *    unregister on destruction.  Layers keep them as function-local
 *    statics, so a binary only carries the keys of the layers it links.
 *  - Sources: callbacks registered by stateful objects (ScmContext,
 *    RegionManager, PHeap, TxnManager, Runtime) that emit gauges and
 *    pre-existing stats structs into a Sink at snapshot time.  A source
 *    may emit nothing (e.g. an ScmContext that is not current).
 *
 * Snapshot key space is flat and dot-qualified ("scm.fences",
 * "mtm.commits"); duplicate keys (two live instances of a layer) sum.
 * The JSON snapshot is a single-line object sorted by key:
 *
 *   {"mtm.commits":12,"mtm.commits.per_thread":[8,4],"scm.fences":31,...}
 *
 * Log2 Histograms expand to <key>.count/.sum/.p50/.p99/.overflow;
 * HdrHistograms to <key>.count/.sum/.p50/.p90/.p95/.p99/.p999/.max/
 * .overflow.  Counters created with per-thread breakdown add
 * "<key>.per_thread" arrays (indexed by thread ordinal mod
 * kMaxThreadShards, trailing zeros trimmed).
 *
 * rawSnapshot() is the diffable form: counter/source scalars plus full
 * HdrHistogram bucket arrays, so two captures subtract into *interval*
 * stats with exact interval percentiles (obs::Phase builds on it).
 */

#ifndef MNEMOSYNE_OBS_STATS_REGISTRY_H_
#define MNEMOSYNE_OBS_STATS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/hdr_histogram.h"
#include "obs/obs.h"

namespace mnemosyne::obs {

/** Where sources write their key/value pairs during a snapshot. */
class Sink
{
  public:
    void emit(const std::string &key, uint64_t v);
    void emit(const std::string &key, double v);
    void emitArray(const std::string &key, const std::vector<uint64_t> &v);

    struct Value {
        bool is_float = false;
        uint64_t u = 0;
        double d = 0.0;
    };

  private:
    friend class StatsRegistry;
    std::map<std::string, Value> scalars_;
    std::map<std::string, std::vector<uint64_t>> arrays_;
};

class StatsRegistry
{
  public:
    using Source = std::function<void(Sink &)>;

    static StatsRegistry &instance();

    /** Register a stateful layer's gauge callback; returns a token for
     *  removeSource(). */
    uint64_t addSource(Source fn);
    void removeSource(uint64_t token);

    /** One-line JSON object over all counters, histograms, sources. */
    std::string jsonSnapshot() const;

    /** Human-readable "key  value" lines, sorted. */
    std::string textSnapshot() const;

    /**
     * Diffable snapshot: raw scalar values (counters, log2 histogram
     * count/sum/overflow, source gauges) plus full HdrHistogram bucket
     * arrays summed by key.  Two RawSnapshots subtract bucket-wise, so
     * an interval's percentiles are exact — percentiles of endpoint
     * snapshots do not diff, bucket counts do.
     */
    struct RawSnapshot {
        uint64_t when_ns = 0;
        std::map<std::string, Sink::Value> scalars;
        std::map<std::string, HdrHistogram::Data> hdrs;
    };
    RawSnapshot rawSnapshot() const;

    /** Reset every registered counter and histogram (sources keep their
     *  own state). */
    void resetAll();

    // Called by Counter / Histogram constructors; not for direct use.
    void add(Counter *c);
    void remove(Counter *c);
    void add(Histogram *h);
    void remove(Histogram *h);
    void add(HdrHistogram *h);
    void remove(HdrHistogram *h);

  private:
    StatsRegistry() = default;

    void collect(Sink &sink) const;

    mutable std::mutex mu_;
    std::vector<Counter *> counters_;
    std::vector<Histogram *> histograms_;
    std::vector<HdrHistogram *> hdrs_;
    std::map<uint64_t, Source> sources_;
    uint64_t nextToken_ = 1;
};

/**
 * Shutdown hook called by Runtime's destructor: when MNEMOSYNE_STATS is
 * on, writes the JSON snapshot to MNEMOSYNE_STATS_FILE (append) or
 * stderr; when MNEMOSYNE_TRACE_FILE is set and events were recorded,
 * writes the Chrome trace JSON there.
 */
void shutdownDump();

} // namespace mnemosyne::obs

#endif // MNEMOSYNE_OBS_STATS_REGISTRY_H_
