#include "obs/stats_registry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "obs/trace_ring.h"

namespace mnemosyne::obs {

void
Sink::emit(const std::string &key, uint64_t v)
{
    Value &val = scalars_[key];
    if (val.is_float)
        val.d += double(v);
    else
        val.u += v;
}

void
Sink::emit(const std::string &key, double v)
{
    Value &val = scalars_[key];
    if (!val.is_float) {
        val.d = double(val.u);
        val.is_float = true;
    }
    val.d += v;
}

void
Sink::emitArray(const std::string &key, const std::vector<uint64_t> &v)
{
    auto &dst = arrays_[key];
    if (dst.size() < v.size())
        dst.resize(v.size(), 0);
    for (size_t i = 0; i < v.size(); ++i)
        dst[i] += v[i];
}

StatsRegistry &
StatsRegistry::instance()
{
    static StatsRegistry reg;
    return reg;
}

void
StatsRegistry::add(Counter *c)
{
    std::lock_guard<std::mutex> g(mu_);
    counters_.push_back(c);
}

void
StatsRegistry::remove(Counter *c)
{
    std::lock_guard<std::mutex> g(mu_);
    std::erase(counters_, c);
}

void
StatsRegistry::add(Histogram *h)
{
    std::lock_guard<std::mutex> g(mu_);
    histograms_.push_back(h);
}

void
StatsRegistry::remove(Histogram *h)
{
    std::lock_guard<std::mutex> g(mu_);
    std::erase(histograms_, h);
}

void
StatsRegistry::add(HdrHistogram *h)
{
    std::lock_guard<std::mutex> g(mu_);
    hdrs_.push_back(h);
}

void
StatsRegistry::remove(HdrHistogram *h)
{
    std::lock_guard<std::mutex> g(mu_);
    std::erase(hdrs_, h);
}

uint64_t
StatsRegistry::addSource(Source fn)
{
    std::lock_guard<std::mutex> g(mu_);
    const uint64_t token = nextToken_++;
    sources_.emplace(token, std::move(fn));
    return token;
}

void
StatsRegistry::removeSource(uint64_t token)
{
    std::lock_guard<std::mutex> g(mu_);
    sources_.erase(token);
}

void
StatsRegistry::collect(Sink &sink) const
{
    // Copy the registration lists so source callbacks can run without
    // the registry lock held (a source may construct a counter).
    std::vector<Counter *> counters;
    std::vector<Histogram *> histograms;
    std::vector<HdrHistogram *> hdrs;
    std::vector<Source> sources;
    {
        std::lock_guard<std::mutex> g(mu_);
        counters = counters_;
        histograms = histograms_;
        hdrs = hdrs_;
        sources.reserve(sources_.size());
        for (const auto &[token, fn] : sources_) {
            (void)token;
            sources.push_back(fn);
        }
    }

    for (const Counter *c : counters) {
        sink.emit(c->key(), c->value());
        if (c->breakdown()) {
            const auto shards = c->perShard();
            std::vector<uint64_t> v(shards.begin(), shards.end());
            while (!v.empty() && v.back() == 0)
                v.pop_back();
            sink.emitArray(std::string(c->key()) + ".per_thread", v);
        }
    }
    for (const Histogram *h : histograms) {
        const std::string key = h->key();
        sink.emit(key + ".count", h->count());
        sink.emit(key + ".sum", h->total());
        sink.emit(key + ".p50", h->quantile(0.50));
        sink.emit(key + ".p99", h->quantile(0.99));
        sink.emit(key + ".overflow", h->overflow());
    }
    for (const HdrHistogram *h : hdrs) {
        const std::string key = h->key();
        const HdrHistogram::Data d = h->data();
        sink.emit(key + ".count", d.count);
        sink.emit(key + ".sum", d.sum);
        sink.emit(key + ".p50", d.quantile(0.50));
        sink.emit(key + ".p90", d.quantile(0.90));
        sink.emit(key + ".p95", d.quantile(0.95));
        sink.emit(key + ".p99", d.quantile(0.99));
        sink.emit(key + ".p999", d.quantile(0.999));
        sink.emit(key + ".max", d.max);
        sink.emit(key + ".overflow", d.overflow);
    }
    for (const Source &src : sources)
        src(sink);
}

StatsRegistry::RawSnapshot
StatsRegistry::rawSnapshot() const
{
    RawSnapshot snap;
    snap.when_ns = nowNs();

    std::vector<Counter *> counters;
    std::vector<Histogram *> histograms;
    std::vector<HdrHistogram *> hdrs;
    std::vector<Source> sources;
    {
        std::lock_guard<std::mutex> g(mu_);
        counters = counters_;
        histograms = histograms_;
        hdrs = hdrs_;
        sources.reserve(sources_.size());
        for (const auto &[token, fn] : sources_) {
            (void)token;
            sources.push_back(fn);
        }
    }

    Sink sink;
    for (const Counter *c : counters)
        sink.emit(c->key(), c->value());
    for (const Histogram *h : histograms) {
        const std::string key = h->key();
        sink.emit(key + ".count", h->count());
        sink.emit(key + ".sum", h->total());
        sink.emit(key + ".overflow", h->overflow());
    }
    for (const Source &src : sources)
        src(sink);
    snap.scalars = std::move(sink.scalars_);

    // HdrHistograms keep their full bucket arrays (summed per key) so
    // snapshot differences yield exact interval percentiles.
    for (const HdrHistogram *h : hdrs) {
        auto [it, fresh] = snap.hdrs.try_emplace(h->key());
        if (fresh)
            it->second = h->data();
        else
            it->second.merge(h->data());
    }
    return snap;
}

namespace {

void
appendJsonValue(std::string &out, const Sink::Value &v)
{
    char buf[64];
    if (v.is_float)
        std::snprintf(buf, sizeof(buf), "%.6g", v.d);
    else
        std::snprintf(buf, sizeof(buf), "%" PRIu64, v.u);
    out += buf;
}

} // namespace

std::string
StatsRegistry::jsonSnapshot() const
{
    Sink sink;
    collect(sink);

    std::string out = "{";
    bool first = true;
    // Both maps are key-sorted; merge them into one sorted object.
    auto sit = sink.scalars_.begin();
    auto ait = sink.arrays_.begin();
    auto emitKey = [&](const std::string &key) {
        if (!first)
            out += ",";
        first = false;
        out += "\"";
        out += key;
        out += "\":";
    };
    while (sit != sink.scalars_.end() || ait != sink.arrays_.end()) {
        const bool takeScalar =
            ait == sink.arrays_.end() ||
            (sit != sink.scalars_.end() && sit->first <= ait->first);
        if (takeScalar) {
            emitKey(sit->first);
            appendJsonValue(out, sit->second);
            ++sit;
        } else {
            emitKey(ait->first);
            out += "[";
            for (size_t i = 0; i < ait->second.size(); ++i) {
                if (i > 0)
                    out += ",";
                char buf[32];
                std::snprintf(buf, sizeof(buf), "%" PRIu64, ait->second[i]);
                out += buf;
            }
            out += "]";
            ++ait;
        }
    }
    out += "}";
    return out;
}

std::string
StatsRegistry::textSnapshot() const
{
    Sink sink;
    collect(sink);

    size_t width = 0;
    for (const auto &[key, v] : sink.scalars_) {
        (void)v;
        width = std::max(width, key.size());
    }
    std::ostringstream os;
    for (const auto &[key, v] : sink.scalars_) {
        os << key << std::string(width + 2 - key.size(), ' ');
        if (v.is_float)
            os << v.d;
        else
            os << v.u;
        os << "\n";
    }
    for (const auto &[key, arr] : sink.arrays_) {
        os << key << "  [";
        for (size_t i = 0; i < arr.size(); ++i)
            os << (i ? "," : "") << arr[i];
        os << "]\n";
    }
    return os.str();
}

void
StatsRegistry::resetAll()
{
    std::vector<Counter *> counters;
    std::vector<Histogram *> histograms;
    std::vector<HdrHistogram *> hdrs;
    {
        std::lock_guard<std::mutex> g(mu_);
        counters = counters_;
        histograms = histograms_;
        hdrs = hdrs_;
    }
    for (Counter *c : counters)
        c->reset();
    for (Histogram *h : histograms)
        h->reset();
    for (HdrHistogram *h : hdrs)
        h->reset();
}

void
shutdownDump()
{
#if MNEMOSYNE_OBS
    if (enabled()) {
        const std::string json = StatsRegistry::instance().jsonSnapshot();
        if (const char *path = std::getenv("MNEMOSYNE_STATS_FILE")) {
            if (std::FILE *f = std::fopen(path, "a")) {
                std::fprintf(f, "%s\n", json.c_str());
                std::fclose(f);
            } else {
                std::fprintf(stderr,
                             "mnemosyne: cannot append stats to %s; "
                             "dumping to stderr\n%s\n",
                             path, json.c_str());
            }
        } else {
            std::fprintf(stderr, "%s\n", json.c_str());
        }
    }
    if (const char *path = std::getenv("MNEMOSYNE_TRACE_FILE")) {
        auto &ring = TraceRing::instance();
        if (ring.recorded() > 0)
            ring.exportChromeJsonFile(path);
    }
#endif
}

} // namespace mnemosyne::obs
