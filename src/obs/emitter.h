/**
 * @file
 * StatsEmitter: the live export path.  A single background thread that
 *
 *  - serves StatsRegistry snapshots, flight-recorder dumps, and the
 *    PhaseLog over a tiny line protocol on a loopback TCP socket
 *    (127.0.0.1:MNEMOSYNE_STATS_PORT), and
 *  - dumps the same payload to MNEMOSYNE_DUMP_FILE (or stderr) when the
 *    process receives SIGUSR2 — the handler only sets an atomic flag;
 *    the emitter thread does the writing.
 *
 * Protocol: one newline-terminated command per request, one line of
 * JSON per response, connection persists until "quit" or client close:
 *
 *   ping    -> {"ok":true,"pid":1234}
 *   stats   -> StatsRegistry::jsonSnapshot()
 *   flight  -> FlightRecorder::json()      ("flight N" caps records)
 *   slow    -> slow-txn trap records, slowest first
 *   phases  -> PhaseLog::json()
 *   reset   -> StatsRegistry::resetAll()  + {"ok":true}
 *
 * The emitter starts automatically from Runtime when
 * MNEMOSYNE_STATS_PORT is set (port 0 binds an ephemeral port; the
 * chosen port is printed to stderr and available from port()), or in
 * dump-only mode (no socket) when only MNEMOSYNE_STATS is set, so
 * SIGUSR2 works without the endpoint.  `tools/mn_stat` is the matching
 * client.  Under MN_OBS=OFF everything is a no-op stub.
 */

#ifndef MNEMOSYNE_OBS_EMITTER_H_
#define MNEMOSYNE_OBS_EMITTER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>

#include "obs/obs.h"

namespace mnemosyne::obs {

#if MNEMOSYNE_OBS

class StatsEmitter
{
  public:
    static StatsEmitter &instance();

    /**
     * Start the emitter thread (idempotent).  @p port >= 0 binds a
     * loopback listener (0 picks an ephemeral port); @p port < 0 runs
     * in dump-only mode (SIGUSR2 handling, no socket).  Returns false
     * if the socket could not be bound.
     */
    bool start(int port);
    void stop();

    bool running() const { return running_.load(std::memory_order_acquire); }

    /** Bound TCP port, 0 when no listener. */
    uint16_t port() const { return port_.load(std::memory_order_acquire); }

    /** Ask the emitter thread to write a dump (what SIGUSR2 does). */
    void requestDump() { dumpRequested_.store(true, std::memory_order_release); }

    /** Runtime hook: start from MNEMOSYNE_STATS_PORT / MNEMOSYNE_STATS. */
    static void maybeStartFromEnv();

  private:
    StatsEmitter() = default;

    void run();
    void serveClient(int fd);
    void writeDump();
    std::string respond(const std::string &line, bool &close);

    std::mutex startMu_;
    std::thread thread_;
    std::atomic<bool> running_{false};
    std::atomic<bool> stop_{false};
    std::atomic<bool> dumpRequested_{false};
    std::atomic<uint16_t> port_{0};
    int listenFd_ = -1;
};

#else // !MNEMOSYNE_OBS — compiled-out stub with identical surface

class StatsEmitter
{
  public:
    static StatsEmitter &
    instance()
    {
        static StatsEmitter e;
        return e;
    }
    bool start(int) { return false; }
    void stop() {}
    bool running() const { return false; }
    uint16_t port() const { return 0; }
    void requestDump() {}
    static void maybeStartFromEnv() {}
};

#endif // MNEMOSYNE_OBS

} // namespace mnemosyne::obs

#endif // MNEMOSYNE_OBS_EMITTER_H_
