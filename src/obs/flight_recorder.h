/**
 * @file
 * Transaction flight recorder: per-thread lock-free rings of fixed-size
 * span records capturing each transaction's causal timeline —
 * begin -> read/write barriers -> log staging -> RAWL append -> fence ->
 * write-back -> truncation -> commit — with per-span durations and
 * per-transaction fence/flush/log-byte counts.
 *
 * Cost model (the recorder must not perturb what it measures):
 *
 *  - disabled: one relaxed load + branch per transaction;
 *  - enabled, unsampled transaction: a handful of plain loads/stores,
 *    plus two tickNow() reads (raw TSC) on the 1-in-trap_stride
 *    transactions the slow-txn trap times (default 16) — on hosts
 *    where a TSC read is expensive (virtualized TSC stalls real code
 *    for 30-60 ns per read) timing literally every transaction would
 *    alone exceed a 5% overhead budget; no frame reset, no
 *    clock_gettime, no per-barrier counting;
 *  - enabled, sampled transaction (1 in sample_every): full span
 *    timeline, two TSC reads per instrumented span, published to the
 *    thread's ring at commit/abort.
 *
 * Rings are strictly per-thread (claimed via a thread_local pointer,
 * recycled through a free list on thread exit), so writers never
 * contend.  Each slot is a seqlock over relaxed atomic words: a dump
 * racing the owner re-reads the slot's sequence and discards records
 * caught mid-write, so snapshots from any thread are safe (and
 * TSan-clean) at any time.
 *
 * The slow-txn trap is a small always-on "worst offenders" table: any
 * *timed* transaction (sampled, or unsampled and hit by the 1-in-
 * trap_stride timing rotation) whose total latency exceeds the current
 * table minimum is captured, so recurring tail events survive even at
 * 1/1024 sampling.  Unsampled trap entries carry total latency but zero
 * span and count detail (that bookkeeping is what sampling pays for).
 * Set trap_stride to 1 to time — and trap-check — every transaction
 * when overhead is no concern.
 *
 * Toggles: MNEMOSYNE_FLIGHT=1 enables, MNEMOSYNE_FLIGHT_SAMPLE=N sets
 * the sampling period (default 64; implies enable),
 * MNEMOSYNE_FLIGHT_RING=N sets per-thread ring capacity (default 256),
 * MNEMOSYNE_FLIGHT_TRAP_STRIDE=N times 1 in N unsampled transactions
 * for the slow trap (default 16; 0 disables trap timing).
 */

#ifndef MNEMOSYNE_OBS_FLIGHT_RECORDER_H_
#define MNEMOSYNE_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "obs/obs.h"

namespace mnemosyne::obs {

/** Timed phases of one durable transaction. */
enum class Span : uint8_t {
    kReadBarrier = 0, ///< read() barriers (incl. write-set probes).
    kWriteBarrier,    ///< write() barriers (lock acquire + buffer).
    kValidate,        ///< Commit-time validation + write-set sort.
    kLogStage,        ///< Building the redo record (tornbit staging).
    kLogAppend,       ///< Rawl::append, including full-log stalls.
    kLogFence,        ///< The durability fence (Rawl::flush).
    kWriteBack,       ///< In-place write-back of new values.
    kTruncate,        ///< Sync truncation / async-truncation enqueue.
    kSpanCount
};

const char *spanName(Span s);

/** Record flags. */
enum : uint32_t {
    kFlightCommitted = 1u << 0,
    kFlightAborted = 1u << 1,
    kFlightReadOnly = 1u << 2,
    kFlightSampled = 1u << 3, ///< Span detail present.
    kFlightSlow = 1u << 4,    ///< Captured by the slow-txn trap.
};

/** One transaction's flight record (fixed-size, ring slot payload). */
struct FlightRecord {
    uint64_t txn_id = 0;
    uint64_t begin_ns = 0;  ///< nowNs()-domain begin timestamp.
    uint64_t total_ns = 0;  ///< begin -> commit/abort return.
    uint64_t commit_ts = 0; ///< Global commit timestamp (0 if none).
    uint32_t span_ns[size_t(Span::kSpanCount)] = {}; ///< Saturating u32.
    uint32_t reads = 0;      ///< Word-read barriers.
    uint32_t writes = 0;     ///< Word-write barriers.
    uint32_t redo_words = 0; ///< Persistent (addr,val) payload words.
    uint32_t log_bytes = 0;  ///< Bytes appended to the RAWL (framed).
    uint32_t fences = 0;     ///< Fences issued by this txn's commit.
    uint32_t flushes = 0;    ///< Line flushes issued by this txn.
    uint32_t tid = 0;        ///< obs::threadOrdinal() of the owner.
    uint32_t flags = 0;
};

/** Number of 64-bit words a FlightRecord packs into (seqlock payload). */
inline constexpr size_t kFlightRecordWords =
    (sizeof(FlightRecord) + 7) / 8;

#if MNEMOSYNE_OBS

/**
 * Thread-local working area for the transaction in flight.  The txn
 * layer accumulates raw tick deltas and counts here; endTxn() converts
 * to nanoseconds and publishes.
 */
struct FlightFrame {
    uint64_t begin_tick = 0;
    uint64_t begin_ns = 0;
    uint64_t txn_id = 0;
    uint64_t span_ticks[size_t(Span::kSpanCount)] = {};
    uint32_t reads = 0;
    uint32_t writes = 0;
    uint32_t redo_words = 0;
    uint32_t log_bytes = 0;
    uint32_t fences = 0;
    uint32_t flushes = 0;
    bool sampled = false;
    bool timed = false;        ///< begin_tick valid (sampled or trap).
    uint32_t txn_counter = 0;  ///< Per-thread sampling phase.
    uint32_t trap_counter = 0; ///< Per-thread trap-timing phase.
};

namespace detail {
/** The calling thread's frame, cached as a constant-initialized POD
 *  thread_local so the per-transaction hooks reach it without the
 *  guarded-TLS wrapper a destructor-bearing thread_local costs;
 *  beginTxnSlow() populates it on a thread's first transaction. */
extern constinit thread_local FlightFrame *gFlightFrame;
} // namespace detail

class FlightRecorder
{
  public:
    static constexpr size_t kDefaultRingSlots = 256;
    static constexpr size_t kSlowSlots = 16;
    static constexpr uint32_t kDefaultTrapStride = 16;

    /** Immortal singleton: thread-exit hooks may run after static
     *  destructors, so the recorder is never destroyed. */
    static FlightRecorder &instance();

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }
    void setEnabled(bool on);

    /** Record full span detail for 1 in @p n transactions (n >= 1);
     *  0 disables sampling but keeps the slow-txn trap timing. */
    void setSampleEvery(uint32_t n);
    uint32_t sampleEvery() const
    {
        return sampleEvery_.load(std::memory_order_relaxed);
    }

    /** Time 1 in @p n unsampled transactions for the slow-txn trap
     *  (1 = every transaction, 0 = trap timing off).  Sampled
     *  transactions are always timed. */
    void setTrapStride(uint32_t n);
    uint32_t trapStride() const
    {
        return trapStride_.load(std::memory_order_relaxed);
    }

    /**
     * Hot-path hook at transaction begin.  Returns nullptr when the
     * recorder is disabled; otherwise the calling thread's frame, with
     * frame->sampled deciding whether span detail is collected.  The
     * common case — enabled, unsampled — stays inline: two relaxed
     * loads, two counter bumps, and at most one TSC read.
     */
    FlightFrame *
    beginTxn(uint64_t txn_id)
    {
        if (!enabled())
            return nullptr;
        FlightFrame *f = detail::gFlightFrame;
        if (f == nullptr)
            return beginTxnSlow(txn_id); // first txn on this thread
        const uint32_t n = sampleEvery_.load(std::memory_order_relaxed);
        if (n != 0 && ++f->txn_counter >= n)
            return beginTxnSampled(f, txn_id);
        f->sampled = false;
        f->txn_id = txn_id;
        // Unsampled: time 1 in trap_stride transactions for the
        // slow-txn trap.  A TSC read costs ~18 ns on some virtualized
        // hosts, so timing every transaction is not free enough to do
        // unconditionally.
        const uint32_t stride =
            trapStride_.load(std::memory_order_relaxed);
        f->timed = stride != 0 && ++f->trap_counter >= stride;
        if (f->timed) {
            f->trap_counter = 0;
            f->begin_tick = tickNow();
        }
        return f;
    }

    /** Hot-path hook at transaction end (commit return or rollback).
     *  @p end_flags is kFlightCommitted / kFlightAborted / etc.
     *  Untimed transactions return after one branch. */
    void
    endTxn(FlightFrame *f, uint32_t end_flags, uint64_t commit_ts)
    {
        if (f == nullptr || !f->timed)
            return;
        endTxnTimed(f, end_flags, commit_ts);
    }

    /** Surviving records from every thread's ring, oldest first per
     *  thread; safe against concurrent writers (mid-write slots are
     *  dropped). */
    std::vector<FlightRecord> snapshot() const;

    /** The calling thread's ring only (crash forensics). */
    std::vector<FlightRecord> threadSnapshot() const;

    /** Slow-txn trap contents, slowest first. */
    std::vector<FlightRecord> slowest() const;

    /** Records ever published to rings (including overwritten). */
    uint64_t published() const
    {
        return published_.load(std::memory_order_relaxed);
    }

    /** Reset the calling thread's ring. */
    void clearThread();

    /** Reset every ring and the slow trap (quiescent points only). */
    void clearAll();

    /** One-line JSON dump: {"records":[...],"slow":[...],...}.  With
     *  @p max_records > 0 only the newest that many ring records. */
    std::string json(size_t max_records = 0) const;

    static std::string recordsJson(const std::vector<FlightRecord> &recs);

  private:
    struct Slot {
        std::atomic<uint64_t> seq{0}; ///< Even = stable, odd = writing.
        std::atomic<uint64_t> w[kFlightRecordWords] = {};
    };

    struct Ring {
        explicit Ring(size_t slots);
        std::vector<Slot> slots;
        std::atomic<uint64_t> head{0};
        std::atomic<uint32_t> tid{0};
        void publish(const FlightRecord &rec);
        std::vector<FlightRecord> snapshot() const;
        void clear();
    };

    FlightRecorder();
    FlightFrame *beginTxnSlow(uint64_t txn_id);
    FlightFrame *beginTxnSampled(FlightFrame *f, uint64_t txn_id);
    void endTxnTimed(FlightFrame *f, uint32_t end_flags,
                     uint64_t commit_ts);
    Ring *threadRing();
    void returnRing(Ring *r); ///< Thread-exit: park for reuse.
    void maybeTrap(FlightRecord &rec);

    std::atomic<bool> enabled_{false};
    std::atomic<uint32_t> sampleEvery_{64};
    std::atomic<uint32_t> trapStride_{kDefaultTrapStride};
    std::atomic<uint64_t> published_{0};
    size_t ringSlots_ = kDefaultRingSlots;

    mutable std::mutex ringsMu_;
    std::vector<Ring *> rings_;     ///< Every ring ever created.
    std::vector<Ring *> freeRings_; ///< Parked by exited threads.

    mutable std::mutex slowMu_;
    std::vector<FlightRecord> slow_;     ///< Up to kSlowSlots.
    std::atomic<uint64_t> slowMin_{0};   ///< Admission threshold.

    friend struct FlightThreadState;
};

/** Scoped span timer: no-op unless @p f is a sampled frame. */
class SpanScope
{
  public:
    SpanScope(FlightFrame *f, Span s)
        : f_(f && f->sampled ? f : nullptr), s_(s),
          t0_(f_ ? tickNow() : 0)
    {
    }

    ~SpanScope()
    {
        if (f_)
            f_->span_ticks[size_t(s_)] += tickNow() - t0_;
    }

    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

  private:
    FlightFrame *f_;
    Span s_;
    uint64_t t0_;
};

#else // !MNEMOSYNE_OBS — compiled-out stubs with identical surface

struct FlightFrame {
    uint64_t begin_tick = 0;
    uint64_t begin_ns = 0;
    uint64_t txn_id = 0;
    uint64_t span_ticks[size_t(Span::kSpanCount)] = {};
    uint32_t reads = 0;
    uint32_t writes = 0;
    uint32_t redo_words = 0;
    uint32_t log_bytes = 0;
    uint32_t fences = 0;
    uint32_t flushes = 0;
    bool sampled = false;
    bool timed = false;
    uint32_t txn_counter = 0;
    uint32_t trap_counter = 0;
};

class FlightRecorder
{
  public:
    static constexpr size_t kDefaultRingSlots = 256;
    static constexpr size_t kSlowSlots = 16;
    static constexpr uint32_t kDefaultTrapStride = 16;

    static FlightRecorder &
    instance()
    {
        static FlightRecorder r;
        return r;
    }

    bool enabled() const { return false; }
    void setEnabled(bool) {}
    void setSampleEvery(uint32_t) {}
    uint32_t sampleEvery() const { return 0; }
    void setTrapStride(uint32_t) {}
    uint32_t trapStride() const { return 0; }
    FlightFrame *beginTxn(uint64_t) { return nullptr; }
    void endTxn(FlightFrame *, uint32_t, uint64_t) {}
    std::vector<FlightRecord> snapshot() const { return {}; }
    std::vector<FlightRecord> threadSnapshot() const { return {}; }
    std::vector<FlightRecord> slowest() const { return {}; }
    uint64_t published() const { return 0; }
    void clearThread() {}
    void clearAll() {}
    std::string json(size_t = 0) const
    {
        return "{\"records\":[],\"slow\":[]}";
    }
    static std::string recordsJson(const std::vector<FlightRecord> &)
    {
        return "[]";
    }
};

class SpanScope
{
  public:
    SpanScope(FlightFrame *, Span) {}
    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;
};

#endif // MNEMOSYNE_OBS

} // namespace mnemosyne::obs

#endif // MNEMOSYNE_OBS_FLIGHT_RECORDER_H_
