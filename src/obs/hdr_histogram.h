/**
 * @file
 * HdrHistogram: an HDR-style (High Dynamic Range) latency histogram with
 * bounded relative error, exact mergeable bucket counts, and cheap
 * p50/p90/p95/p99/p999 extraction.
 *
 * The log2 Histogram (obs.h) buckets by power of two, so a "p99" can be
 * off by almost 2x — fine for order-of-magnitude costs (recovery
 * phases), useless for judging a group-commit change that moves p99
 * commit latency by 20%.  This histogram keeps kSubBits extra bits of
 * mantissa per power of two, bounding relative error to
 * 2^-kSubBits (~3.1% at 5 bits) across the whole range:
 *
 *  - values below 2^(kSubBits+1) are counted exactly (one bucket per
 *    value);
 *  - above that, each power-of-two range splits into 2^kSubBits
 *    sub-buckets;
 *  - values at or above kMaxTrackable land in an explicit overflow
 *    bucket (reported as <key>.overflow; quantiles that fall there
 *    saturate to kMaxTrackable).
 *
 * Recording is one relaxed fetch_add on the bucket plus count/sum
 * updates — wait-free and thread-safe.  The bucket array is a plain
 * `Data` value type, so two snapshots subtract bucket-wise: phase-scoped
 * diffing (obs::Phase) computes exact percentiles *of the interval*, not
 * of the process lifetime, and shards merge by addition.
 *
 * Like Counter/Histogram, a named HdrHistogram self-registers with the
 * StatsRegistry; snapshots expand to
 * <key>.count/.sum/.p50/.p90/.p95/.p99/.p999/.max/.overflow.
 */

#ifndef MNEMOSYNE_OBS_HDR_HISTOGRAM_H_
#define MNEMOSYNE_OBS_HDR_HISTOGRAM_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/obs.h"

namespace mnemosyne::obs {

/** Bucket geometry shared by the live histogram and its Data snapshots. */
struct HdrLayout {
    /** Sub-bucket precision bits: relative error <= 2^-kSubBits. */
    static constexpr unsigned kSubBits = 5;
    static constexpr uint64_t kSubCount = uint64_t(1) << kSubBits;

    /** Power-of-two ranges above the exact region.  40 ranges put the
     *  trackable max at 2^46 ns ~ 19.5 hours — plenty for any latency
     *  this system measures; beyond that is the overflow bucket. */
    static constexpr unsigned kRanges = 40;
    static constexpr uint64_t kMaxTrackable =
        (uint64_t(1) << (kSubBits + 1 + kRanges)) - 1;

    /** Exact region (2 * kSubCount) plus kSubCount per range. */
    static constexpr size_t kBucketCount =
        size_t(2 * kSubCount + kRanges * kSubCount);

    static size_t
    indexFor(uint64_t v)
    {
        if (v < 2 * kSubCount)
            return size_t(v);
        const unsigned w = unsigned(std::bit_width(v)); // >= kSubBits + 2
        const unsigned shift = w - (kSubBits + 1);
        // Top kSubBits+1 bits of v, in [kSubCount, 2*kSubCount), so the
        // first range (shift == 1) continues seamlessly at 2*kSubCount.
        const uint64_t top = v >> shift;
        return size_t(shift) * size_t(kSubCount) + size_t(top);
    }

    /** Highest value that maps to bucket @p i (its representative). */
    static uint64_t
    valueFor(size_t i)
    {
        if (i < 2 * kSubCount)
            return uint64_t(i);
        const unsigned shift = unsigned(i / kSubCount) - 1;
        const uint64_t top = kSubCount + (uint64_t(i) % kSubCount);
        // Upper bound of the sub-bucket: every discarded low bit set.
        return (top << shift) | ((uint64_t(1) << shift) - 1);
    }
};

#if MNEMOSYNE_OBS

class HdrHistogram
{
  public:
    /** Plain value type: a detached snapshot of the bucket counts.
     *  Subtracts bucket-wise (interval percentiles) and merges by
     *  addition (shard/thread aggregation). */
    struct Data {
        uint64_t count = 0;
        uint64_t sum = 0;
        uint64_t overflow = 0;
        uint64_t max = 0;
        std::vector<uint64_t> buckets;  ///< kBucketCount, or empty.

        /** Quantile in [0,1]; overflow counts as a final bucket that
         *  saturates to kMaxTrackable. */
        uint64_t quantile(double q) const;

        /** Bucket-wise saturating difference (this - base): exact
         *  percentiles for the interval between two snapshots. */
        Data operator-(const Data &base) const;

        /** Bucket-wise accumulate. */
        void merge(const Data &other);
    };

    /** @p key must outlive the histogram (string literal); registers
     *  with the StatsRegistry like Counter/Histogram. */
    explicit HdrHistogram(const char *key);
    ~HdrHistogram();

    HdrHistogram(const HdrHistogram &) = delete;
    HdrHistogram &operator=(const HdrHistogram &) = delete;

    void
    record(uint64_t v)
    {
        if (enabled())
            recordAlways(v);
    }

    void recordAlways(uint64_t v);

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t total() const { return sum_.load(std::memory_order_relaxed); }
    uint64_t overflow() const
    {
        return overflow_.load(std::memory_order_relaxed);
    }
    uint64_t max() const { return max_.load(std::memory_order_relaxed); }

    uint64_t quantile(double q) const { return data().quantile(q); }

    Data data() const;
    void reset();
    const char *key() const { return key_; }

  private:
    const char *key_;
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> overflow_{0};
    std::atomic<uint64_t> max_{0};
    std::vector<std::atomic<uint64_t>> buckets_;
};

#else // !MNEMOSYNE_OBS — compiled-out stub with identical surface

class HdrHistogram
{
  public:
    struct Data {
        uint64_t count = 0;
        uint64_t sum = 0;
        uint64_t overflow = 0;
        uint64_t max = 0;
        std::vector<uint64_t> buckets;
        uint64_t quantile(double) const { return 0; }
        Data operator-(const Data &) const { return {}; }
        void merge(const Data &) {}
    };

    explicit HdrHistogram(const char *key) : key_(key) {}
    void record(uint64_t) {}
    void recordAlways(uint64_t) {}
    uint64_t count() const { return 0; }
    uint64_t total() const { return 0; }
    uint64_t overflow() const { return 0; }
    uint64_t max() const { return 0; }
    uint64_t quantile(double) const { return 0; }
    Data data() const { return {}; }
    void reset() {}
    const char *key() const { return key_; }

  private:
    const char *key_;
};

#endif // MNEMOSYNE_OBS

} // namespace mnemosyne::obs

#endif // MNEMOSYNE_OBS_HDR_HISTOGRAM_H_
