#include "obs/trace_ring.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <ostream>

namespace mnemosyne::obs {

const char *
traceEvName(TraceEv ev)
{
    switch (ev) {
      case TraceEv::kFence:       return "fence";
      case TraceEv::kFlush:       return "clflush";
      case TraceEv::kWtStore:     return "wtstore";
      case TraceEv::kStore:       return "store";
      case TraceEv::kLogAppend:   return "log_append";
      case TraceEv::kLogFlush:    return "log_flush";
      case TraceEv::kLogTruncate: return "log_truncate";
      case TraceEv::kTxnBegin:    return "txn_begin";
      case TraceEv::kTxnCommit:   return "txn_commit";
      case TraceEv::kTxnAbort:    return "txn_abort";
      case TraceEv::kRegionMap:   return "region_map";
      case TraceEv::kRegionUnmap: return "region_unmap";
      case TraceEv::kPageFault:   return "page_fault";
      case TraceEv::kPageEvict:   return "page_evict";
      case TraceEv::kHeapAlloc:   return "pmalloc";
      case TraceEv::kHeapFree:    return "pfree";
      case TraceEv::kReincPhase:  return "reincarnation_phase";
    }
    return "unknown";
}

namespace {

const char *
traceEvCategory(TraceEv ev)
{
    switch (ev) {
      case TraceEv::kFence:
      case TraceEv::kFlush:
      case TraceEv::kWtStore:
      case TraceEv::kStore:
        return "scm";
      case TraceEv::kLogAppend:
      case TraceEv::kLogFlush:
      case TraceEv::kLogTruncate:
        return "log";
      case TraceEv::kTxnBegin:
      case TraceEv::kTxnCommit:
      case TraceEv::kTxnAbort:
        return "mtm";
      case TraceEv::kRegionMap:
      case TraceEv::kRegionUnmap:
      case TraceEv::kPageFault:
      case TraceEv::kPageEvict:
        return "region";
      case TraceEv::kHeapAlloc:
      case TraceEv::kHeapFree:
        return "heap";
      case TraceEv::kReincPhase:
        return "runtime";
    }
    return "unknown";
}

bool
envTruthy(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

size_t
envCapacity()
{
    if (const char *v = std::getenv("MNEMOSYNE_TRACE_CAPACITY")) {
        const unsigned long long n = std::strtoull(v, nullptr, 10);
        if (n >= 2)
            return size_t(n);
    }
    return TraceRing::kDefaultCapacity;
}

} // namespace

TraceRing::TraceRing()
{
#if MNEMOSYNE_OBS
    ring_.resize(std::bit_ceil(envCapacity()));
    mask_ = ring_.size() - 1;
    enabled_.store(envTruthy("MNEMOSYNE_TRACE") ||
                       std::getenv("MNEMOSYNE_TRACE_FILE") != nullptr,
                   std::memory_order_relaxed);
#else
    ring_.resize(1);
    mask_ = 0;
#endif
}

TraceRing &
TraceRing::instance()
{
    static TraceRing ring;
    return ring;
}

void
TraceRing::setEnabled(bool on)
{
#if MNEMOSYNE_OBS
    enabled_.store(on, std::memory_order_relaxed);
#else
    (void)on;
#endif
}

void
TraceRing::setCapacity(size_t events)
{
    std::lock_guard<std::mutex> g(resizeMu_);
    ring_.assign(std::bit_ceil(std::max<size_t>(events, 2)), TraceRecord{});
    mask_ = ring_.size() - 1;
    head_.store(0, std::memory_order_relaxed);
}

void
TraceRing::clear()
{
    std::lock_guard<std::mutex> g(resizeMu_);
    std::fill(ring_.begin(), ring_.end(), TraceRecord{});
    head_.store(0, std::memory_order_relaxed);
}

std::vector<TraceRecord>
TraceRing::snapshot() const
{
    std::lock_guard<std::mutex> g(resizeMu_);
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t lo = head > ring_.size() ? head - ring_.size() : 0;
    std::vector<TraceRecord> out;
    out.reserve(size_t(head - lo));
    for (const TraceRecord &r : ring_) {
        // Skip empty slots and slots claimed but possibly mid-write
        // beyond the published head.
        if (r.seq > lo && r.seq <= head)
            out.push_back(r);
    }
    std::sort(out.begin(), out.end(),
              [](const TraceRecord &a, const TraceRecord &b) {
                  return a.seq < b.seq;
              });
    return out;
}

void
TraceRing::setThreadName(const std::string &name)
{
    std::lock_guard<std::mutex> g(namesMu_);
    threadNames_[uint32_t(threadOrdinal())] = name;
}

std::map<uint32_t, std::string>
TraceRing::threadNames() const
{
    std::lock_guard<std::mutex> g(namesMu_);
    return threadNames_;
}

void
TraceRing::exportChromeJson(std::ostream &os) const
{
    const auto events = snapshot();
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;

    // Metadata records first: the process name, then one thread_name
    // per thread that either registered a name or recorded an event.
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
          "\"args\":{\"name\":\"mnemosyne\"}}";
    first = false;
    std::map<uint32_t, std::string> names = threadNames();
    for (const TraceRecord &r : events) {
        if (!names.count(r.tid))
            names[r.tid] = "thread " + std::to_string(r.tid);
    }
    for (const auto &[tid, name] : names) {
        os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":"
           << tid << ",\"args\":{\"name\":\"" << name << "\"}}";
    }

    for (const TraceRecord &r : events) {
        if (!first)
            os << ",";
        first = false;
        // Events are stamped when record() runs, i.e. at the END of a
        // timed operation; Chrome's "X" phase wants the start.
        const uint64_t start_ns =
            r.ts_ns > r.dur_ns ? r.ts_ns - r.dur_ns : 0;
        const double ts_us = double(start_ns) / 1e3;
        os << "{\"name\":\"" << traceEvName(r.ev) << "\",\"cat\":\""
           << traceEvCategory(r.ev) << "\",\"pid\":1,\"tid\":" << r.tid
           << ",\"ts\":" << ts_us;
        if (r.dur_ns > 0) {
            os << ",\"ph\":\"X\",\"dur\":" << double(r.dur_ns) / 1e3;
        } else {
            os << ",\"ph\":\"i\",\"s\":\"t\"";
        }
        os << ",\"args\":{\"a0\":" << r.a0 << ",\"a1\":" << r.a1
           << ",\"seq\":" << r.seq << "}}";
    }
    os << "]}";
}

bool
TraceRing::exportChromeJsonFile(const std::string &path) const
{
    std::ofstream f(path, std::ios::trunc);
    if (!f)
        return false;
    exportChromeJson(f);
    f << "\n";
    return bool(f);
}

} // namespace mnemosyne::obs
