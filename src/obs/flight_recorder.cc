#include "obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace mnemosyne::obs {

const char *
spanName(Span s)
{
    switch (s) {
    case Span::kReadBarrier:
        return "read_barrier";
    case Span::kWriteBarrier:
        return "write_barrier";
    case Span::kValidate:
        return "validate";
    case Span::kLogStage:
        return "log_stage";
    case Span::kLogAppend:
        return "log_append";
    case Span::kLogFence:
        return "log_fence";
    case Span::kWriteBack:
        return "write_back";
    case Span::kTruncate:
        return "truncate";
    case Span::kSpanCount:
        break;
    }
    return "?";
}

#if MNEMOSYNE_OBS

namespace {

bool
flightEnvTruthy(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

uint32_t
sat32(uint64_t v)
{
    return v > UINT32_MAX ? UINT32_MAX : uint32_t(v);
}

void
packRecord(const FlightRecord &rec, uint64_t (&words)[kFlightRecordWords])
{
    static_assert(sizeof(words) >= sizeof(FlightRecord));
    std::memset(words, 0, sizeof(words));
    std::memcpy(words, &rec, sizeof(rec));
}

void
unpackRecord(const uint64_t (&words)[kFlightRecordWords], FlightRecord &rec)
{
    std::memcpy(&rec, words, sizeof(rec));
}

} // namespace

namespace detail {
constinit thread_local FlightFrame *gFlightFrame = nullptr;
} // namespace detail

/** Thread-local recorder state: the in-flight frame plus this thread's
 *  ring, parked on the recorder's free list when the thread exits. */
struct FlightThreadState {
    FlightRecorder::Ring *ring = nullptr;
    FlightFrame frame;

    ~FlightThreadState()
    {
        detail::gFlightFrame = nullptr; // no dangling fast-path cache
        if (ring)
            FlightRecorder::instance().returnRing(ring);
    }

    static FlightThreadState &
    current()
    {
        thread_local FlightThreadState state;
        return state;
    }
};

FlightRecorder::Ring::Ring(size_t n) : slots(n == 0 ? 1 : n) {}

void
FlightRecorder::Ring::publish(const FlightRecord &rec)
{
    const uint64_t h = head.load(std::memory_order_relaxed);
    Slot &slot = slots[h % slots.size()];

    uint64_t words[kFlightRecordWords];
    packRecord(rec, words);

    const uint64_t s = slot.seq.load(std::memory_order_relaxed);
    slot.seq.store(s + 1, std::memory_order_release); // odd: writing
    std::atomic_thread_fence(std::memory_order_release);
    for (size_t i = 0; i < kFlightRecordWords; ++i)
        slot.w[i].store(words[i], std::memory_order_relaxed);
    slot.seq.store(s + 2, std::memory_order_release); // even: stable
    head.store(h + 1, std::memory_order_release);
}

std::vector<FlightRecord>
FlightRecorder::Ring::snapshot() const
{
    std::vector<FlightRecord> out;
    const uint64_t h = head.load(std::memory_order_acquire);
    const size_t n = slots.size();
    const uint64_t lo = h > n ? h - n : 0;
    out.reserve(size_t(h - lo));
    for (uint64_t i = lo; i < h; ++i) {
        const Slot &slot = slots[i % n];
        // Seqlock read: bounded retries, drop the slot if the owner
        // keeps overwriting it (it only holds newer data anyway).
        for (int attempt = 0; attempt < 4; ++attempt) {
            const uint64_t s1 = slot.seq.load(std::memory_order_acquire);
            if (s1 & 1)
                continue;
            uint64_t words[kFlightRecordWords];
            for (size_t w = 0; w < kFlightRecordWords; ++w)
                words[w] = slot.w[w].load(std::memory_order_relaxed);
            std::atomic_thread_fence(std::memory_order_acquire);
            if (slot.seq.load(std::memory_order_relaxed) != s1)
                continue;
            FlightRecord rec;
            unpackRecord(words, rec);
            if (rec.total_ns != 0 || rec.txn_id != 0)
                out.push_back(rec);
            break;
        }
    }
    return out;
}

void
FlightRecorder::Ring::clear()
{
    for (auto &slot : slots) {
        const uint64_t s = slot.seq.load(std::memory_order_relaxed);
        slot.seq.store(s + 1, std::memory_order_release);
        for (auto &w : slot.w)
            w.store(0, std::memory_order_relaxed);
        slot.seq.store(s + 2, std::memory_order_release);
    }
    head.store(0, std::memory_order_release);
}

FlightRecorder &
FlightRecorder::instance()
{
    // Immortal: thread-exit hooks (returnRing) may run during process
    // teardown, after static destructors would have fired.
    static FlightRecorder *r = new FlightRecorder();
    return *r;
}

FlightRecorder::FlightRecorder()
{
    if (const char *v = std::getenv("MNEMOSYNE_FLIGHT_RING")) {
        const long n = std::strtol(v, nullptr, 10);
        if (n >= 4 && n <= (1 << 20))
            ringSlots_ = size_t(n);
    }
    if (const char *v = std::getenv("MNEMOSYNE_FLIGHT_SAMPLE")) {
        const long n = std::strtol(v, nullptr, 10);
        if (n >= 0)
            sampleEvery_.store(uint32_t(n), std::memory_order_relaxed);
        enabled_.store(true, std::memory_order_relaxed);
    }
    if (const char *v = std::getenv("MNEMOSYNE_FLIGHT_TRAP_STRIDE")) {
        const long n = std::strtol(v, nullptr, 10);
        if (n >= 0)
            trapStride_.store(uint32_t(n), std::memory_order_relaxed);
    }
    if (flightEnvTruthy("MNEMOSYNE_FLIGHT"))
        enabled_.store(true, std::memory_order_relaxed);
}

void
FlightRecorder::setEnabled(bool on)
{
    enabled_.store(on, std::memory_order_relaxed);
}

void
FlightRecorder::setSampleEvery(uint32_t n)
{
    sampleEvery_.store(n, std::memory_order_relaxed);
}

void
FlightRecorder::setTrapStride(uint32_t n)
{
    trapStride_.store(n, std::memory_order_relaxed);
}

FlightRecorder::Ring *
FlightRecorder::threadRing()
{
    FlightThreadState &st = FlightThreadState::current();
    if (!st.ring) {
        std::lock_guard<std::mutex> g(ringsMu_);
        if (!freeRings_.empty()) {
            st.ring = freeRings_.back();
            freeRings_.pop_back();
            st.ring->clear();
        } else {
            st.ring = new Ring(ringSlots_);
            rings_.push_back(st.ring);
        }
        st.ring->tid.store(uint32_t(threadOrdinal()),
                           std::memory_order_relaxed);
    }
    return st.ring;
}

void
FlightRecorder::returnRing(Ring *r)
{
    std::lock_guard<std::mutex> g(ringsMu_);
    freeRings_.push_back(r);
}

FlightFrame *
FlightRecorder::beginTxnSlow(uint64_t txn_id)
{
    // First transaction on this thread: materialize the thread state
    // (ring claim happens lazily at first publish), cache the frame in
    // the fast-access thread_local, and re-enter the inline fast path.
    detail::gFlightFrame = &FlightThreadState::current().frame;
    return beginTxn(txn_id);
}

FlightFrame *
FlightRecorder::beginTxnSampled(FlightFrame *f, uint64_t txn_id)
{
    // Countdown instead of modulo (the sampling period is a runtime
    // value, and an integer divide per transaction is measurable);
    // the inline caller detected the countdown expiring.
    f->txn_counter = 0;
    f->sampled = true;
    f->timed = true;
    f->txn_id = txn_id;
    f->begin_tick = tickNow();
    f->begin_ns = nowNs();
    std::memset(f->span_ticks, 0, sizeof(f->span_ticks));
    f->reads = f->writes = f->redo_words = f->log_bytes = 0;
    f->fences = f->flushes = 0;
    return f;
}

void
FlightRecorder::endTxnTimed(FlightFrame *f, uint32_t end_flags,
                            uint64_t commit_ts)
{
    const uint64_t total_ns = ticksToNs(tickNow() - f->begin_tick);
    // Cheap exit for the common case: unsampled and not slower than the
    // slow-trap's admission threshold (0 means the trap has room).
    const uint64_t slow_min = slowMin_.load(std::memory_order_relaxed);
    if (!f->sampled && slow_min != 0 && total_ns <= slow_min)
        return;

    FlightRecord rec;
    rec.txn_id = f->txn_id;
    rec.total_ns = total_ns;
    rec.commit_ts = commit_ts;
    rec.tid = uint32_t(threadOrdinal());
    rec.flags = end_flags;
    if (f->sampled) {
        rec.flags |= kFlightSampled;
        rec.begin_ns = f->begin_ns;
        for (size_t i = 0; i < size_t(Span::kSpanCount); ++i)
            rec.span_ns[i] = sat32(ticksToNs(f->span_ticks[i]));
        rec.reads = f->reads;
        rec.writes = f->writes;
        rec.redo_words = f->redo_words;
        rec.log_bytes = f->log_bytes;
        rec.fences = f->fences;
        rec.flushes = f->flushes;
        threadRing()->publish(rec);
        published_.fetch_add(1, std::memory_order_relaxed);
    } else {
        // Unsampled transactions skip all frame bookkeeping, so span and
        // count detail is unavailable; reconstruct the begin timestamp
        // retroactively.  Only trap candidates reach this branch, so the
        // nowNs() call is rare.
        rec.begin_ns = nowNs() - total_ns;
    }
    if (slow_min == 0 || total_ns > slow_min)
        maybeTrap(rec);
}

void
FlightRecorder::maybeTrap(FlightRecord &rec)
{
    std::lock_guard<std::mutex> g(slowMu_);
    rec.flags |= kFlightSlow;
    if (slow_.size() < kSlowSlots) {
        slow_.push_back(rec);
    } else {
        auto victim = std::min_element(
            slow_.begin(), slow_.end(),
            [](const FlightRecord &a, const FlightRecord &b) {
                return a.total_ns < b.total_ns;
            });
        if (rec.total_ns <= victim->total_ns) {
            slowMin_.store(victim->total_ns, std::memory_order_relaxed);
            return;
        }
        *victim = rec;
    }
    if (slow_.size() == kSlowSlots) {
        const auto mit = std::min_element(
            slow_.begin(), slow_.end(),
            [](const FlightRecord &a, const FlightRecord &b) {
                return a.total_ns < b.total_ns;
            });
        slowMin_.store(mit->total_ns, std::memory_order_relaxed);
    }
}

std::vector<FlightRecord>
FlightRecorder::snapshot() const
{
    std::vector<Ring *> rings;
    {
        std::lock_guard<std::mutex> g(ringsMu_);
        rings = rings_;
    }
    std::vector<FlightRecord> out;
    for (const Ring *r : rings) {
        auto recs = r->snapshot();
        out.insert(out.end(), recs.begin(), recs.end());
    }
    return out;
}

std::vector<FlightRecord>
FlightRecorder::threadSnapshot() const
{
    const FlightThreadState &st = FlightThreadState::current();
    return st.ring ? st.ring->snapshot() : std::vector<FlightRecord>{};
}

std::vector<FlightRecord>
FlightRecorder::slowest() const
{
    std::vector<FlightRecord> out;
    {
        std::lock_guard<std::mutex> g(slowMu_);
        out = slow_;
    }
    std::sort(out.begin(), out.end(),
              [](const FlightRecord &a, const FlightRecord &b) {
                  return a.total_ns > b.total_ns;
              });
    return out;
}

void
FlightRecorder::clearThread()
{
    FlightThreadState &st = FlightThreadState::current();
    if (st.ring)
        st.ring->clear();
}

void
FlightRecorder::clearAll()
{
    std::vector<Ring *> rings;
    {
        std::lock_guard<std::mutex> g(ringsMu_);
        rings = rings_;
    }
    for (Ring *r : rings)
        r->clear();
    {
        std::lock_guard<std::mutex> g(slowMu_);
        slow_.clear();
        slowMin_.store(0, std::memory_order_relaxed);
    }
    published_.store(0, std::memory_order_relaxed);
}

namespace {

void
appendRecordJson(std::string &out, const FlightRecord &rec)
{
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\"txn\":%" PRIu64 ",\"tid\":%u,\"begin_ns\":%" PRIu64
                  ",\"total_ns\":%" PRIu64 ",\"commit_ts\":%" PRIu64
                  ",\"flags\":%u,\"reads\":%u,\"writes\":%u,"
                  "\"redo_words\":%u,\"log_bytes\":%u,\"fences\":%u,"
                  "\"flushes\":%u,\"spans\":{",
                  rec.txn_id, rec.tid, rec.begin_ns, rec.total_ns,
                  rec.commit_ts, rec.flags, rec.reads, rec.writes,
                  rec.redo_words, rec.log_bytes, rec.fences, rec.flushes);
    out += buf;
    for (size_t i = 0; i < size_t(Span::kSpanCount); ++i) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\":%u", i ? "," : "",
                      spanName(Span(i)), rec.span_ns[i]);
        out += buf;
    }
    out += "}}";
}

} // namespace

std::string
FlightRecorder::recordsJson(const std::vector<FlightRecord> &recs)
{
    std::string out = "[";
    for (size_t i = 0; i < recs.size(); ++i) {
        if (i)
            out += ",";
        appendRecordJson(out, recs[i]);
    }
    out += "]";
    return out;
}

std::string
FlightRecorder::json(size_t max_records) const
{
    std::vector<FlightRecord> recs = snapshot();
    // Newest last: ring records carry begin_ns (sampled), so a global
    // time sort gives a coherent cross-thread tail.
    std::sort(recs.begin(), recs.end(),
              [](const FlightRecord &a, const FlightRecord &b) {
                  return a.begin_ns < b.begin_ns;
              });
    if (max_records > 0 && recs.size() > max_records)
        recs.erase(recs.begin(), recs.end() - ptrdiff_t(max_records));

    char buf[128];
    std::string out = "{";
    std::snprintf(buf, sizeof(buf),
                  "\"enabled\":%s,\"sample_every\":%u,\"trap_stride\":%u,"
                  "\"published\":%" PRIu64 ",",
                  enabled() ? "true" : "false", sampleEvery(), trapStride(),
                  published());
    out += buf;
    out += "\"records\":";
    out += recordsJson(recs);
    out += ",\"slow\":";
    out += recordsJson(slowest());
    out += "}";
    return out;
}

#endif // MNEMOSYNE_OBS

} // namespace mnemosyne::obs
