#include "obs/obs.h"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/stats_registry.h"

namespace mnemosyne::obs {

namespace detail {

size_t
nextThreadOrdinal()
{
    static std::atomic<size_t> next{0};
    return next.fetch_add(1, std::memory_order_relaxed);
}

namespace {

bool
envTruthy(const char *name)
{
    const char *v = std::getenv(name);
    return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

} // namespace

#if MNEMOSYNE_OBS
std::atomic<bool> gEnabled{envTruthy("MNEMOSYNE_STATS")};
#endif

} // namespace detail

uint64_t
nowNs()
{
    using clk = std::chrono::steady_clock;
    static const clk::time_point start = clk::now();
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        clk::now() - start)
                        .count());
}

namespace {

/** Nanoseconds per tick in Q32 fixed point, calibrated against the
 *  steady clock over a short busy window.  On non-x86 tickNow() IS
 *  nowNs(), so the factor is exactly 1.0. */
uint64_t
calibrateNsPerTickQ32()
{
#if defined(__x86_64__)
    const uint64_t t0 = tickNow();
    const uint64_t n0 = nowNs();
    // ~200us window: long enough to swamp the clock-read cost, short
    // enough to be invisible at process start.
    while (nowNs() - n0 < 200000) {
    }
    const uint64_t dt = tickNow() - t0;
    const uint64_t dn = nowNs() - n0;
    if (dt == 0)
        return uint64_t(1) << 32;
    using u128 = unsigned __int128;
    return uint64_t((u128(dn) << 32) / dt);
#else
    return uint64_t(1) << 32;
#endif
}

} // namespace

uint64_t
ticksToNs(uint64_t ticks)
{
    static const uint64_t q32 = calibrateNsPerTickQ32();
    using u128 = unsigned __int128;
    return uint64_t((u128(ticks) * q32) >> 32);
}

#if MNEMOSYNE_OBS

void
setEnabled(bool on)
{
    detail::gEnabled.store(on, std::memory_order_relaxed);
}

Counter::Counter(const char *key, bool per_thread_breakdown)
    : key_(key), breakdown_(per_thread_breakdown)
{
    StatsRegistry::instance().add(this);
}

Counter::~Counter()
{
    StatsRegistry::instance().remove(this);
}

Histogram::Histogram(const char *key) : key_(key)
{
    StatsRegistry::instance().add(this);
}

Histogram::~Histogram()
{
    StatsRegistry::instance().remove(this);
}

void
Histogram::recordAlways(uint64_t v)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    const size_t idx = bucketIndex(v);
    if (idx >= kBuckets)
        overflow_.fetch_add(1, std::memory_order_relaxed);
    else
        buckets_[idx].fetch_add(1, std::memory_order_relaxed);
}

uint64_t
Histogram::quantile(double q) const
{
    const auto buckets = bucketsSnapshot();
    uint64_t total = overflow_.load(std::memory_order_relaxed);
    for (uint64_t b : buckets)
        total += b;
    if (total == 0)
        return 0;
    const uint64_t rank = uint64_t(double(total - 1) * q) + 1;
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        seen += buckets[i];
        if (seen >= rank) {
            // Upper bound of the bucket (saturating for the last one).
            return i >= 63 ? UINT64_MAX : (uint64_t(2) << i) - 1;
        }
    }
    return UINT64_MAX; // rank fell into the overflow bucket
}

std::array<uint64_t, Histogram::kBuckets>
Histogram::bucketsSnapshot() const
{
    std::array<uint64_t, kBuckets> out;
    for (size_t i = 0; i < kBuckets; ++i)
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    return out;
}

void
Histogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    overflow_.store(0, std::memory_order_relaxed);
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
}

#endif // MNEMOSYNE_OBS

} // namespace mnemosyne::obs
