#include "conform/litmus.h"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace mnemosyne::conform {

namespace {

Op st(uint8_t t, uint8_t l, uint8_t w) { return {OpKind::kStore, t, l, w, 0}; }
Op wt(uint8_t t, uint8_t l, uint8_t w) { return {OpKind::kWtStore, t, l, w, 0}; }
Op fl(uint8_t t, uint8_t l) { return {OpKind::kFlush, t, l, 0, 0}; }
Op flo(uint8_t t, uint8_t l) { return {OpKind::kFlushOpt, t, l, 0, 0}; }
Op fen(uint8_t t) { return {OpKind::kFence, t, 0, 0, 0}; }

/** Give every store a distinct nonzero value: op position + 1. */
void
assignValues(Program &p)
{
    for (size_t i = 0; i < p.ops.size(); ++i) {
        Op &op = p.ops[i];
        if (op.kind == OpKind::kStore || op.kind == OpKind::kWtStore)
            op.value = uint64_t(i) + 1;
    }
}

Program
make(std::string name, std::string family, std::vector<Op> ops)
{
    Program p;
    p.name = std::move(name);
    p.family = std::move(family);
    p.ops = std::move(ops);
    assignValues(p);
    return p;
}

/**
 * The generator's op alphabet: a fixed, order-stable list of
 * (kind, line, word) shapes.  Two words on line 0 (same-line FIFO and
 * same-word ordering), one on line 1 (cross-line independence), a
 * streamed write per line (WC weak order), both flush flavors on
 * line 0, a flush on line 1, and a fence.  Growing this list reorders
 * gen<i> names — append only.
 */
struct Shape {
    OpKind kind;
    uint8_t line, word;
};

constexpr std::array<Shape, 9> kAlphabet{{
    {OpKind::kStore, 0, 0},
    {OpKind::kStore, 0, 1},
    {OpKind::kStore, 1, 0},
    {OpKind::kWtStore, 0, 0},
    {OpKind::kWtStore, 1, 0},
    {OpKind::kFlush, 0, 0},
    {OpKind::kFlush, 1, 0},
    {OpKind::kFlushOpt, 0, 0},
    {OpKind::kFence, 0, 0},
}};

bool
hasWrite(const Program &p)
{
    for (const Op &op : p.ops)
        if (op.kind == OpKind::kStore || op.kind == OpKind::kWtStore)
            return true;
    return false;
}

/**
 * Enumerate programs in the stable order, invoking @p emit for each
 * (index, program) that contains at least one write.  Returns false
 * when emit stops the walk.
 */
template <typename Emit>
void
enumerate(const GenConfig &cfg, Emit &&emit)
{
    const size_t symbols = kAlphabet.size() * (cfg.two_threads ? 2 : 1);
    size_t index = 0;
    std::vector<size_t> digits;
    for (int len = 1; len <= cfg.max_ops; ++len) {
        digits.assign(size_t(len), 0);
        for (;;) {
            Program p;
            p.family = "gen";
            p.ops.reserve(size_t(len));
            for (size_t d : digits) {
                const Shape &s = kAlphabet[d % kAlphabet.size()];
                Op op{s.kind, uint8_t(d / kAlphabet.size()), s.line,
                      s.word, 0};
                p.ops.push_back(op);
            }
            if (hasWrite(p)) {
                p.name = "gen" + std::to_string(index);
                assignValues(p);
                if (!emit(index, std::move(p)))
                    return;
                ++index;
            }
            // Next base-`symbols` number of `len` digits.
            int pos = len - 1;
            while (pos >= 0 && ++digits[size_t(pos)] == symbols) {
                digits[size_t(pos)] = 0;
                --pos;
            }
            if (pos < 0)
                break;
        }
    }
}

} // namespace

int
Program::threads() const
{
    for (const Op &op : ops)
        if (op.thread == 1)
            return 2;
    return 1;
}

std::string
formatOp(const Op &op)
{
    char buf[64];
    switch (op.kind) {
      case OpKind::kStore:
        std::snprintf(buf, sizeof buf, "t%u:store L%u.W%u=%llu",
                      op.thread, op.line, op.word,
                      (unsigned long long)op.value);
        break;
      case OpKind::kWtStore:
        std::snprintf(buf, sizeof buf, "t%u:wtstore L%u.W%u=%llu",
                      op.thread, op.line, op.word,
                      (unsigned long long)op.value);
        break;
      case OpKind::kFlush:
        std::snprintf(buf, sizeof buf, "t%u:flush L%u", op.thread, op.line);
        break;
      case OpKind::kFlushOpt:
        std::snprintf(buf, sizeof buf, "t%u:flushopt L%u", op.thread,
                      op.line);
        break;
      case OpKind::kFence:
        std::snprintf(buf, sizeof buf, "t%u:fence", op.thread);
        break;
    }
    return buf;
}

std::string
formatProgram(const Program &p)
{
    std::ostringstream os;
    os << p.name << " (" << p.family << "), " << p.ops.size() << " ops\n";
    for (size_t i = 0; i < p.ops.size(); ++i)
        os << "  " << i + 1 << ". " << formatOp(p.ops[i]) << "\n";
    return os.str();
}

std::vector<Program>
curatedPrograms()
{
    std::vector<Program> v;

    // The one-sided durability rules: what a fence does and does not
    // retire (Px86 DFLUSH/DFENCE).
    v.push_back(make("store_flush_fence", "flush_fence",
                     {st(0, 0, 0), fl(0, 0), fen(0)}));
    v.push_back(make("store_flush_no_fence", "flush_fence",
                     {st(0, 0, 0), fl(0, 0)}));
    v.push_back(make("store_fence_no_flush", "flush_fence",
                     {st(0, 0, 0), fen(0)}));
    v.push_back(make("flushopt_fence", "flush_fence",
                     {st(0, 0, 0), flo(0, 0), fen(0)}));
    v.push_back(make("flush_before_fence", "flush_fence",
                     {st(0, 0, 0), fl(0, 0), fen(0), st(0, 0, 1)}));
    v.push_back(make("flush_claims_prefix", "flush_fence",
                     {st(0, 0, 0), fl(0, 0), st(0, 0, 1), fen(0)}));

    // Streamed writes: durable after the issuer's fence, weakly
    // ordered before it (write-combining buffers drain in any chunk
    // order, exempt from the per-line FIFO).
    v.push_back(make("wtstore_fence", "wc",
                     {wt(0, 0, 0), fen(0)}));
    v.push_back(make("wtstore_no_fence", "wc",
                     {wt(0, 0, 0)}));
    v.push_back(make("wt_same_line_weak_order", "wc",
                     {wt(0, 0, 0), wt(0, 0, 1)}));
    v.push_back(make("wt_then_store_same_word", "wc",
                     {wt(0, 0, 0), st(0, 0, 0)}));

    // Same-line FIFO vs cross-line independence for cacheable stores.
    v.push_back(make("same_line_prefix", "line_fifo",
                     {st(0, 0, 0), st(0, 0, 1)}));
    v.push_back(make("same_word_order", "line_fifo",
                     {st(0, 0, 0), st(0, 0, 0)}));
    v.push_back(make("cross_line_no_order", "line_fifo",
                     {st(0, 0, 0), st(0, 1, 0)}));
    v.push_back(make("line_fifo_three_deep", "line_fifo",
                     {st(0, 0, 0), st(0, 0, 1), st(0, 0, 2)}));

    // A retired (durable) overwrite supersedes a still-pending older
    // write to the same word: the post-crash value must be the durable
    // one, never the pending write's pre-image.
    v.push_back(make("retired_overwrite", "supersede",
                     {st(0, 0, 0), wt(0, 0, 0), fen(0)}));
    v.push_back(make("retired_overwrite_cross_thread", "supersede",
                     {wt(1, 0, 0), wt(0, 0, 0), fen(0)}));

    // Cross-thread flush claims: clflush acts on the coherent cache,
    // and the durability edge belongs to whoever flushed + fenced.
    v.push_back(make("cross_thread_flush_fence", "cross_thread",
                     {st(0, 0, 0), fl(1, 0), fen(1)}));
    v.push_back(make("cross_thread_flush_wrong_fence", "cross_thread",
                     {st(0, 0, 0), fl(1, 0), fen(0)}));
    v.push_back(make("double_flush_either_fence", "cross_thread",
                     {st(0, 0, 0), fl(0, 0), fl(1, 0), fen(1)}));
    v.push_back(make("fence_is_per_thread_wc", "cross_thread",
                     {wt(0, 0, 0), wt(1, 0, 1), fen(0)}));

    return v;
}

std::vector<Program>
generatePrograms(const GenConfig &cfg)
{
    std::vector<Program> v;
    enumerate(cfg, [&](size_t, Program p) {
        v.push_back(std::move(p));
        return cfg.max_programs == 0 || v.size() < cfg.max_programs;
    });
    return v;
}

bool
findProgram(const std::string &name, const GenConfig &cfg, Program *out)
{
    for (Program &p : curatedPrograms()) {
        if (p.name == name) {
            *out = std::move(p);
            return true;
        }
    }
    if (name.rfind("gen", 0) == 0) {
        char *end = nullptr;
        const unsigned long long want =
            std::strtoull(name.c_str() + 3, &end, 10);
        if (end && *end == '\0') {
            bool found = false;
            enumerate(cfg, [&](size_t index, Program p) {
                if (index == want) {
                    *out = std::move(p);
                    found = true;
                    return false;
                }
                return true;
            });
            return found;
        }
    }
    return false;
}

} // namespace mnemosyne::conform
