/**
 * @file
 * Executable Px86 persistency oracle: the model side of the
 * conformance harness.
 *
 * Given a litmus program prefix (the ops executed before a crash), the
 * oracle computes the complete set of post-crash memory images the
 * formal x86 persistency model of *Taming x86-TSO Persistency*
 * (arXiv 2010.13593) allows, specialized to the emulator's abstraction
 * level (DESIGN.md §5.2):
 *
 *  - Cacheable stores persist per cache line in FIFO order: a crash
 *    cuts each line's write sequence at one point and the survivors of
 *    the line are a prefix.
 *  - Streamed (write-combining) stores are exempt from the line FIFO:
 *    each aligned 8-byte chunk survives or not independently.  Litmus
 *    stores are whole aligned words, so here chunk == write.
 *  - clflush/clflushopt take a *shared* claim on the line's current
 *    pending writes for the flushing thread; a later fence by any
 *    claiming thread makes those writes guaranteed (durable).  A fence
 *    also guarantees the fencing thread's own streamed writes.
 *  - Guaranteed writes appear in every allowed image; a guaranteed
 *    write to a word supersedes older pending writes to it (the old
 *    value can never resurface).
 *
 * Among surviving writes the final value of a word is that of the
 * newest (largest memory-order position) survivor — the emulator
 * applies survivors in write order, a deliberate strengthening over
 * the weakest reading of WC/cacheable persist interleaving, documented
 * in DESIGN.md §5.2.
 *
 * The harness asserts emulator-reachable ⊆ allowed for every crash
 * point and mode, with two exact corners: kDropUnfenced must equal
 * strict() (guaranteed writes only) and kKeepAll must equal full()
 * (every write applied).
 */

#ifndef MNEMOSYNE_CONFORM_ORACLE_H_
#define MNEMOSYNE_CONFORM_ORACLE_H_

#include <array>
#include <cstdint>
#include <set>
#include <string>

#include "conform/litmus.h"

namespace mnemosyne::conform {

/** A post-crash image of the litmus arena, word by word (0 = never
 *  written).  Totally ordered so it can live in std::set. */
using MemState = std::array<uint64_t, kArenaWords>;

/** "L0.W0=2 L1.W3=5" — nonzero words only; "(zero)" when empty. */
std::string formatMemState(const MemState &m);

/** The model-allowed outcome set for one crash point. */
struct OracleResult {
    std::set<MemState> allowed;  ///< Every image Px86 permits.
    MemState strict{};           ///< Guaranteed (retired) writes only.
    MemState full{};             ///< Every executed write applied.
};

/**
 * Compute the allowed set after executing the first @p prefix_len ops
 * of @p p and then crashing.  strict and full are always members of
 * allowed.  Throws std::logic_error if the outcome space exceeds an
 * internal sanity cap (unreachable for bounded litmus programs).
 */
OracleResult computeAllowed(const Program &p, size_t prefix_len);

} // namespace mnemosyne::conform

#endif // MNEMOSYNE_CONFORM_ORACLE_H_
