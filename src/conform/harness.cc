#include "conform/harness.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "crash/crash_harness.h"
#include "crash/sweep.h"

namespace mnemosyne::conform {

std::string
formatSpec(const ConformSpec &spec)
{
    std::ostringstream os;
    os << spec.program << ":" << spec.event << ":"
       << crash::modeName(spec.mode) << ":" << spec.seed;
    return os.str();
}

bool
parseSpec(const std::string &s, ConformSpec *out)
{
    // program:event:mode:seed — program names contain no ':'.
    std::vector<std::string> parts;
    size_t from = 0;
    for (;;) {
        const size_t colon = s.find(':', from);
        if (colon == std::string::npos) {
            parts.push_back(s.substr(from));
            break;
        }
        parts.push_back(s.substr(from, colon - from));
        from = colon + 1;
    }
    if (parts.size() != 4 || parts[0].empty())
        return false;
    ConformSpec spec;
    spec.program = parts[0];
    char *end = nullptr;
    spec.event = std::strtoull(parts[1].c_str(), &end, 10);
    if (!end || *end != '\0' || parts[1].empty())
        return false;
    if (!crash::modeFromName(parts[2], &spec.mode))
        return false;
    spec.seed = std::strtoull(parts[3].c_str(), &end, 10);
    if (!end || *end != '\0' || parts[3].empty())
        return false;
    *out = spec;
    return true;
}

double
ConformReport::coverage() const
{
    return allowed_states
               ? double(witnessed_states) / double(allowed_states)
               : 0.0;
}

std::vector<std::string>
ConformReport::reproSpecs() const
{
    std::vector<std::string> out;
    out.reserve(failures.size());
    for (const auto &v : failures)
        out.push_back(formatSpec(v.spec));
    return out;
}

/**
 * The litmus thread-1 executor: one persistent helper thread running
 * submitted closures synchronously.  Persistent (rather than
 * thread-per-trial) because an exhaustive run replays hundreds of
 * thousands of trials; per-thread emulator state is keyed by
 * std::thread::id, so a stable helper also keeps per-trial contexts
 * down to exactly two registered threads.
 */
struct Harness::Exec {
    std::mutex mu;
    std::condition_variable cv;
    std::function<void()> job;
    bool pending = false;
    bool done = false;
    bool stop = false;
    std::thread th;

    Exec() : th([this] { loop(); }) {}

    ~Exec()
    {
        {
            std::lock_guard<std::mutex> g(mu);
            stop = true;
        }
        cv.notify_all();
        th.join();
    }

    void
    loop()
    {
        std::unique_lock<std::mutex> l(mu);
        for (;;) {
            cv.wait(l, [&] { return pending || stop; });
            if (stop && !pending)
                return;
            std::function<void()> j = std::move(job);
            pending = false;
            l.unlock();
            j();
            l.lock();
            done = true;
            cv.notify_all();
        }
    }

    /** Run @p fn on the helper thread; returns after it completes. */
    void
    run(std::function<void()> fn)
    {
        std::unique_lock<std::mutex> l(mu);
        job = std::move(fn);
        pending = true;
        done = false;
        cv.notify_all();
        cv.wait(l, [&] { return done; });
    }
};

namespace {

/** The litmus arena: kLines real cache lines, so the emulator's line
 *  math sees exactly the geometry the oracle models. */
struct alignas(scm::kCacheLineSize) Arena {
    std::array<uint64_t, size_t(kArenaWords)> w{};
};

void
applyOp(scm::ScmContext &c, const Op &op, uint64_t *arena)
{
    uint64_t *addr =
        arena + size_t(op.line) * kWordsPerLine + size_t(op.word);
    switch (op.kind) {
      case OpKind::kStore:
        c.store(addr, &op.value, sizeof(op.value));
        break;
      case OpKind::kWtStore:
        c.wtstore(addr, &op.value, sizeof(op.value));
        break;
      case OpKind::kFlush:
        c.flush(addr);
        break;
      case OpKind::kFlushOpt:
        c.flushopt(addr);
        break;
      case OpKind::kFence:
        c.fence();
        break;
    }
}

} // namespace

Harness::Harness(HarnessOptions opts)
    : opts_(std::move(opts)), exec_(std::make_unique<Exec>())
{
    if (opts_.random_seeds == 0)
        opts_.random_seeds = 1;
}

Harness::~Harness() = default;

MemState
Harness::replay(const Program &p, uint64_t event,
                scm::CrashPersistMode mode, uint64_t seed, bool *crashed)
{
    scm::ScmConfig cfg;
    cfg.latency_mode = scm::LatencyMode::kNone;
    cfg.crash_mode = mode;
    cfg.crash_seed = seed;
    cfg.conform_bug = opts_.conform_bug;
    scm::ScmContext c(cfg);

    Arena arena;    // zero-initialized: the pristine SCM image
    bool fired = false;
    {
        // No crash point for the run-to-completion trial (event beyond
        // the last op): every op executes, then power is lost.
        std::optional<crash::CrashPoint> cp;
        if (event <= p.ops.size())
            cp.emplace(c, event);
        for (const Op &op : p.ops) {
            bool opCrashed = false;
            auto body = [&] {
                try {
                    applyOp(c, op, arena.w.data());
                } catch (const scm::CrashNow &) {
                    opCrashed = true;
                }
            };
            if (op.thread == 0)
                body();
            else
                exec_->run(body);
            if (opCrashed) {
                fired = true;
                break;
            }
        }
    }   // CrashPoint detaches its hook before the image is computed.
    c.crash();

    if (crashed)
        *crashed = fired;
    MemState m{};
    std::copy(arena.w.begin(), arena.w.end(), m.begin());
    return m;
}

void
Harness::judge(const Program &p, const OracleResult &oracle,
               const ConformSpec &spec, const MemState &got,
               std::string *detail) const
{
    (void)p;
    std::ostringstream os;
    switch (spec.mode) {
      case scm::CrashPersistMode::kDropUnfenced:
        if (got != oracle.strict)
            os << "kDropUnfenced image differs from the strict durable "
                  "state: got [" << formatMemState(got) << "] want ["
               << formatMemState(oracle.strict) << "]";
        break;
      case scm::CrashPersistMode::kKeepAll:
        if (got != oracle.full)
            os << "kKeepAll image differs from the full write image: "
                  "got [" << formatMemState(got) << "] want ["
               << formatMemState(oracle.full) << "]";
        break;
      case scm::CrashPersistMode::kKeepIssued:
      case scm::CrashPersistMode::kRandomSubset:
        if (!oracle.allowed.count(got))
            os << crash::modeName(spec.mode) << " image ["
               << formatMemState(got) << "] is outside the Px86-allowed "
                  "set (" << oracle.allowed.size() << " states)";
        break;
    }
    *detail = os.str();
}

ProgramReport
Harness::checkProgram(const Program &p)
{
    ProgramReport r;
    r.name = p.name;
    r.family = p.family;
    const uint64_t len = p.ops.size();
    for (uint64_t ev = 1; ev <= len + 1; ++ev) {
        const size_t prefix = size_t(std::min<uint64_t>(ev - 1, len));
        const OracleResult oracle = computeAllowed(p, prefix);
        std::set<MemState> witnessed;
        for (scm::CrashPersistMode mode : opts_.modes) {
            const bool rand =
                mode == scm::CrashPersistMode::kRandomSubset;
            const uint64_t seeds = rand ? opts_.random_seeds : 1;
            for (uint64_t seed = 0; seed < seeds; ++seed) {
                ConformSpec spec{p.name, ev, mode, seed};
                const MemState got =
                    replay(p, ev, mode, seed, nullptr);
                ++r.trials;
                std::string detail;
                judge(p, oracle, spec, got, &detail);
                if (!detail.empty())
                    r.violations.push_back({spec, std::move(detail)});
                else if (rand)
                    witnessed.insert(got);
            }
        }
        r.allowed_states += oracle.allowed.size();
        r.witnessed_states += witnessed.size();
    }
    return r;
}

ConformReport
Harness::checkAll(const std::vector<Program> &programs)
{
    ConformReport rep;
    for (const Program &p : programs) {
        ProgramReport r = checkProgram(p);
        ++rep.programs;
        rep.trials += r.trials;
        rep.violations += r.violations.size();
        rep.allowed_states += r.allowed_states;
        rep.witnessed_states += r.witnessed_states;
        FamilyStats &f = rep.families[r.family];
        ++f.programs;
        f.trials += r.trials;
        f.allowed_states += r.allowed_states;
        f.witnessed_states += r.witnessed_states;
        f.violations += r.violations.size();
        for (auto &v : r.violations)
            rep.failures.push_back(std::move(v));
    }
    return rep;
}

Harness::TrialResult
Harness::runTrial(const ConformSpec &spec)
{
    TrialResult res;
    res.spec = spec;
    Program p;
    if (!findProgram(spec.program, opts_.gen, &p)) {
        res.detail = "unknown program '" + spec.program + "'";
        return res;
    }
    const uint64_t len = p.ops.size();
    if (spec.event < 1 || spec.event > len + 1) {
        std::ostringstream os;
        os << "event " << spec.event << " out of range 1.." << len + 1
           << " for '" << p.name << "'";
        res.detail = os.str();
        return res;
    }
    const size_t prefix = size_t(std::min<uint64_t>(spec.event - 1, len));
    const OracleResult oracle = computeAllowed(p, prefix);
    res.state = replay(p, spec.event, spec.mode, spec.seed, &res.crashed);
    judge(p, oracle, spec, res.state, &res.detail);
    res.ok = res.detail.empty();
    return res;
}

} // namespace mnemosyne::conform
