/**
 * @file
 * Litmus-test IR for the Px86 persistency conformance harness.
 *
 * A litmus program is a short, explicitly interleaved sequence of
 * persistence primitives — store / wtstore / flush / flushopt / fence —
 * over a tiny arena of cache lines, issued by one or two threads.  The
 * sequence *is* the x86-TSO memory order: the harness replays it
 * op-by-op (hopping to a helper thread for thread-1 ops, because the
 * emulator's fence/flush semantics are per-thread), so thread ids
 * matter for durability rules while visibility order is fixed by
 * construction.  That sidesteps store-buffer interleaving enumeration
 * and isolates exactly what the SCM emulator models: which writes may
 * survive a crash.
 *
 * Two sources of programs:
 *
 *  - curatedPrograms(): named tests encoding the ordering rules of
 *    *Taming x86-TSO Persistency* (arXiv 2010.13593) — flush-before-
 *    fence, same-line FIFO, write-combining weak order, cross-thread
 *    flush claims, retired-overwrite supersession.
 *
 *  - generatePrograms(): deterministic exhaustive enumeration of every
 *    program up to a bounded length over a fixed op alphabet.  The
 *    enumeration order is stable, so "gen<index>" is a durable repro
 *    name for a given GenConfig.
 *
 * Every store in a program writes a distinct nonzero value (its op
 * position + 1), so any two persist outcomes are distinguishable in
 * the post-crash image.
 */

#ifndef MNEMOSYNE_CONFORM_LITMUS_H_
#define MNEMOSYNE_CONFORM_LITMUS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mnemosyne::conform {

/** Arena geometry: programs address up to kLines cache lines of
 *  kWordsPerLine aligned 8-byte words each. */
inline constexpr int kLines = 4;
inline constexpr int kWordsPerLine = 8;
inline constexpr int kArenaWords = kLines * kWordsPerLine;

/** Litmus op kinds, mirroring ScmContext's primitives. */
enum class OpKind : uint8_t { kStore, kWtStore, kFlush, kFlushOpt, kFence };

/** One primitive issued by one litmus thread. */
struct Op {
    OpKind kind = OpKind::kStore;
    uint8_t thread = 0;     ///< Issuing litmus thread (0 or 1).
    uint8_t line = 0;       ///< Target cache line (unused for fence).
    uint8_t word = 0;       ///< Word within the line (stores only).
    uint64_t value = 0;     ///< Stored value (stores only).
};

struct Program {
    std::string name;       ///< Repro-stable id: curated name or gen<i>.
    std::string family;     ///< Coverage-report grouping.
    std::vector<Op> ops;

    int threads() const;    ///< 1 or 2.
};

/** "t0:store L0.W1=3", "t1:flush L0", "t0:fence". */
std::string formatOp(const Op &op);

/** One line per op, plus the header "name (family), N ops". */
std::string formatProgram(const Program &p);

/** The named tests from the paper's ordering rules (single source of
 *  truth for the tier-1 curated suite). */
std::vector<Program> curatedPrograms();

/** Bounds for the exhaustive generator. */
struct GenConfig {
    /** Maximum program length; enumeration covers every length from 1
     *  to this bound. */
    int max_ops = 3;

    /** Enumerate 2-thread interleavings (true) or thread-0 only. */
    bool two_threads = true;

    /** Cap on generated programs (0 = no cap).  The enumeration order
     *  is stable, so a cap keeps the gen<i> naming of the retained
     *  prefix valid. */
    size_t max_programs = 0;
};

/**
 * Deterministically enumerate all programs with at least one write, in
 * a fixed order: shorter programs first, then lexicographic over the
 * op alphabet.  gen<i> names index into this sequence.
 */
std::vector<Program> generatePrograms(const GenConfig &cfg);

/**
 * Resolve a program by repro name: a curated name, or gen<i> under
 * @p cfg (which must match the generating run's bounds for the index
 * to mean the same program).  Returns false for unknown names.
 */
bool findProgram(const std::string &name, const GenConfig &cfg,
                 Program *out);

} // namespace mnemosyne::conform

#endif // MNEMOSYNE_CONFORM_LITMUS_H_
