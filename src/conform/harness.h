/**
 * @file
 * Px86 conformance harness: replays litmus programs through the SCM
 * emulator, crashes at every persistence event under every crash
 * persistence mode, and checks the emulator's post-crash image against
 * the oracle's allowed set.
 *
 * Expectations per mode:
 *
 *  - kDropUnfenced: the image must equal the oracle's strict state
 *    (guaranteed writes only) — exact, not just ⊆ allowed.
 *  - kKeepAll: the image must equal the oracle's full state.
 *  - kKeepIssued: the image must be within the allowed set.
 *  - kRandomSubset: the image for every seed must be within the
 *    allowed set; distinct images are counted as witnessed states, so
 *    reports can show how much of the allowed envelope the adversarial
 *    mode actually explores.
 *
 * Every trial is deterministic and is identified by a repro spec
 * "program:event:mode:seed" (mode names shared with the crash sweeper:
 * drop/keep/all/rand).  event is 1-based: crash fires *before* op
 * `event` takes effect (ops are numbered 1..len; each op is exactly
 * one persistence event); event = len+1 means run to completion and
 * then lose power.  Thread-1 ops execute on a dedicated helper thread
 * because the emulator's flush claims and fences are per-thread.
 */

#ifndef MNEMOSYNE_CONFORM_HARNESS_H_
#define MNEMOSYNE_CONFORM_HARNESS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "conform/litmus.h"
#include "conform/oracle.h"
#include "scm/scm.h"

namespace mnemosyne::conform {

/** One point in the conformance trial space. */
struct ConformSpec {
    std::string program;    ///< Curated name or gen<i>.
    uint64_t event = 1;     ///< 1..len: crash before op; len+1: completion.
    scm::CrashPersistMode mode = scm::CrashPersistMode::kDropUnfenced;
    uint64_t seed = 0;      ///< kRandomSubset survival seed.
};

/** "program:event:mode:seed", mode names shared with crash::SweepSpec. */
std::string formatSpec(const ConformSpec &spec);
bool parseSpec(const std::string &s, ConformSpec *out);

struct HarnessOptions {
    /** Modes checked per crash point. */
    std::vector<scm::CrashPersistMode> modes{
        scm::CrashPersistMode::kDropUnfenced,
        scm::CrashPersistMode::kKeepIssued,
        scm::CrashPersistMode::kKeepAll,
        scm::CrashPersistMode::kRandomSubset,
    };

    /** Seeds checked per crash point under kRandomSubset. */
    uint64_t random_seeds = 8;

    /** Run the emulator with the MN_CONFORM_BUG canary enabled (the
     *  harness expectations are unchanged — a correct harness must then
     *  report violations). */
    bool conform_bug = false;

    /** Generator bounds used to resolve gen<i> names in runTrial(). */
    GenConfig gen;
};

/** One conformance failure, with its deterministic repro spec. */
struct Violation {
    ConformSpec spec;
    std::string detail;
};

struct ProgramReport {
    std::string name, family;
    uint64_t trials = 0;
    uint64_t allowed_states = 0;    ///< Sum of |allowed| over events.
    uint64_t witnessed_states = 0;  ///< Distinct rand images, summed.
    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }
};

/** Coverage aggregate per litmus family (--coverage report). */
struct FamilyStats {
    uint64_t programs = 0;
    uint64_t trials = 0;
    uint64_t allowed_states = 0;
    uint64_t witnessed_states = 0;
    uint64_t violations = 0;
};

struct ConformReport {
    uint64_t programs = 0;
    uint64_t trials = 0;
    uint64_t violations = 0;
    uint64_t allowed_states = 0;
    uint64_t witnessed_states = 0;
    std::map<std::string, FamilyStats> families;
    std::vector<Violation> failures;

    bool ok() const { return violations == 0; }

    /** Witnessed / allowed over kRandomSubset trials (0 when rand was
     *  not among the checked modes). */
    double coverage() const;

    /** One repro spec line per failure. */
    std::vector<std::string> reproSpecs() const;
};

class Harness
{
  public:
    explicit Harness(HarnessOptions opts = {});
    ~Harness();

    Harness(const Harness &) = delete;
    Harness &operator=(const Harness &) = delete;

    /** Check one program across every event x mode x seed. */
    ProgramReport checkProgram(const Program &p);

    /** Check many programs; aggregates trials, failures, coverage. */
    ConformReport checkAll(const std::vector<Program> &programs);

    /** Outcome of one replayed trial (the --repro path). */
    struct TrialResult {
        ConformSpec spec;
        bool ok = false;
        bool crashed = false;   ///< The injected crash point fired.
        MemState state{};       ///< Post-crash emulator image.
        std::string detail;     ///< Violation / error diagnostic.
    };

    /** Replay one spec deterministically and judge it. */
    TrialResult runTrial(const ConformSpec &spec);

    /**
     * Raw replay: execute @p p with a crash at @p event under
     * mode/seed, return the post-crash image.  Deterministic —
     * byte-identical across invocations for the same inputs.
     */
    MemState replay(const Program &p, uint64_t event,
                    scm::CrashPersistMode mode, uint64_t seed,
                    bool *crashed = nullptr);

    const HarnessOptions &options() const { return opts_; }

  private:
    struct Exec;    ///< Persistent helper thread for litmus thread 1.

    void judge(const Program &p, const OracleResult &oracle,
               const ConformSpec &spec, const MemState &got,
               std::string *detail) const;

    HarnessOptions opts_;
    std::unique_ptr<Exec> exec_;
};

} // namespace mnemosyne::conform

#endif // MNEMOSYNE_CONFORM_HARNESS_H_
