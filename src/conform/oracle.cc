#include "conform/oracle.h"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace mnemosyne::conform {

namespace {

/** One executed write with its durability bookkeeping. */
struct Write {
    int line, word;
    uint64_t value;
    bool streaming;
    uint8_t thread;
    bool guaranteed = false;  ///< Retired: in every allowed image.
    uint8_t claims = 0;       ///< Threads whose flush claimed it (bitmask).
};

/** Safety valve for the outcome enumeration; bounded litmus programs
 *  stay orders of magnitude below it. */
constexpr uint64_t kMaxOutcomes = 1u << 20;

/**
 * Replay the prefix against the model: build the write list and mark
 * which writes are guaranteed at the crash point.
 */
std::vector<Write>
simulate(const Program &p, size_t prefix_len)
{
    std::vector<Write> ws;
    for (size_t i = 0; i < prefix_len && i < p.ops.size(); ++i) {
        const Op &op = p.ops[i];
        switch (op.kind) {
          case OpKind::kStore:
          case OpKind::kWtStore:
            ws.push_back({op.line, op.word, op.value,
                          op.kind == OpKind::kWtStore, op.thread});
            break;
          case OpKind::kFlush:
          case OpKind::kFlushOpt:
            // A flush claims every pending cacheable write currently on
            // the line for the flushing thread.  The claim is shared:
            // later flushes by other threads add their bit.
            for (Write &w : ws)
                if (!w.streaming && !w.guaranteed && w.line == op.line)
                    w.claims |= uint8_t(1u << op.thread);
            break;
          case OpKind::kFence:
            // A fence guarantees the claims the fencing thread holds
            // and the thread's own streamed writes.
            for (Write &w : ws) {
                if (w.guaranteed)
                    continue;
                if (w.streaming ? w.thread == op.thread
                                : (w.claims >> op.thread) & 1)
                    w.guaranteed = true;
            }
            break;
        }
    }
    return ws;
}

MemState
apply(const std::vector<Write> &ws, const std::vector<bool> &kept)
{
    MemState m{};
    for (size_t i = 0; i < ws.size(); ++i)
        if (ws[i].guaranteed || kept[i])
            m[size_t(ws[i].line) * kWordsPerLine + size_t(ws[i].word)] =
                ws[i].value;
    return m;
}

} // namespace

std::string
formatMemState(const MemState &m)
{
    std::ostringstream os;
    bool any = false;
    for (int i = 0; i < kArenaWords; ++i) {
        if (m[size_t(i)] == 0)
            continue;
        if (any)
            os << " ";
        os << "L" << i / kWordsPerLine << ".W" << i % kWordsPerLine << "="
           << m[size_t(i)];
        any = true;
    }
    return any ? os.str() : "(zero)";
}

OracleResult
computeAllowed(const Program &p, size_t prefix_len)
{
    const std::vector<Write> ws = simulate(p, prefix_len);

    // Free choices: for each line, where to cut its pending cacheable
    // suffix (the guaranteed writes of a line are always a prefix of
    // its write order, because claims cover everything pending at
    // flush time); for each pending streamed write, keep or drop.
    std::vector<std::vector<size_t>> linePend(kLines);
    std::vector<size_t> wcPend;
    for (size_t i = 0; i < ws.size(); ++i) {
        if (ws[i].guaranteed)
            continue;
        if (ws[i].streaming)
            wcPend.push_back(i);
        else
            linePend[size_t(ws[i].line)].push_back(i);
    }

    uint64_t total = 1;
    for (const auto &pend : linePend)
        total *= uint64_t(pend.size()) + 1;
    total <<= wcPend.size();
    if (total > kMaxOutcomes)
        throw std::logic_error("conform oracle: outcome space too large");

    OracleResult r;
    std::vector<bool> kept(ws.size(), false);
    for (uint64_t pick = 0; pick < total; ++pick) {
        kept.assign(ws.size(), false);
        uint64_t rest = pick;
        for (const auto &pend : linePend) {
            const uint64_t radix = uint64_t(pend.size()) + 1;
            const uint64_t cut = rest % radix;
            rest /= radix;
            for (uint64_t k = 0; k < cut; ++k)
                kept[pend[size_t(k)]] = true;
        }
        for (size_t k = 0; k < wcPend.size(); ++k)
            if ((rest >> k) & 1)
                kept[wcPend[k]] = true;
        r.allowed.insert(apply(ws, kept));
    }

    kept.assign(ws.size(), false);
    r.strict = apply(ws, kept);
    kept.assign(ws.size(), true);
    r.full = apply(ws, kept);
    return r;
}

} // namespace mnemosyne::conform
