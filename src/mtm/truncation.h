/**
 * @file
 * Asynchronous log truncation (paper section 5).
 *
 * "Asynchronous truncation retains the log after transaction commit, so
 * the latency of committing is shorter.  A separate log manager thread
 * consumes the log and forces values out to memory before truncating
 * the log."
 */

#ifndef MNEMOSYNE_MTM_TRUNCATION_H_
#define MNEMOSYNE_MTM_TRUNCATION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "log/rawl.h"

namespace mnemosyne::scm {
class ScmContext;
}

namespace mnemosyne::mtm {

class EpochCombiner;

class TruncationThread
{
  public:
    /** One committed transaction's deferred flush work. */
    struct Task {
        log::Rawl *log;
        uint64_t consumeTo;                 ///< Log position after the txn.
        /** Sorted dirty persistent word addresses.  Word (not line)
         *  granularity so the batch drain can merge tasks and account
         *  for exactly how many words the cross-transaction dedup
         *  collapsed before flushing each distinct line once. */
        std::vector<uintptr_t> words;
        /** Fence epoch gating this task: it may only be processed once
         *  the epoch has retired (the record's fence has happened) —
         *  otherwise the truncator could flush the in-place data,
         *  fence, and consume an UNFENCED record, losing the txn if
         *  the data lines then fail to persist.  0 = ungated.  Per-log
         *  task epochs are monotone in enqueue order, so gating the
         *  queue's prefix never starves an eligible task behind an
         *  ineligible one of the same log. */
        uint64_t epoch = 0;
    };

    /** @p batch_dedup merges the drained batch's word sets and flushes
     *  each distinct line once per batch (hot keys: O(dirty lines)
     *  flushes instead of O(txns)); off, every task flushes its own
     *  lines — the pre-dedup baseline, kept for A/B measurement. */
    explicit TruncationThread(uint64_t poll_us = 100,
                              bool batch_dedup = true);
    ~TruncationThread();

    /** Install the combiner the worker polls for epoch retirement
     *  (tryAdvance — the epoch-timeout path) and notifies of consumed
     *  member tasks (marker GC).  Call before any gated enqueue.
     *  Atomic: the worker thread is already polling when this runs
     *  during TxnManager construction. */
    void
    setCombiner(EpochCombiner *c)
    {
        combiner_.store(c, std::memory_order_release);
    }

    void enqueue(Task task);

    /**
     * Wake the worker immediately.  Called from a producer stalled on a
     * full log (Rawl space waiter): unlike enqueue(), which batches
     * wakeups to stay off the commit critical path, a stalled producer
     * is already blocked and wants the backlog drained now.
     */
    void nudge() { cv_.notify_one(); }

    /** Block until every enqueued task has been processed. */
    void drain();

    /** Suspend/resume processing (deterministic crash tests and the
     *  idle-duty-cycle study of Figure 6 use this). */
    void pause();
    void resume();

    uint64_t processed() const { return processed_; }
    size_t backlog() const;

  private:
    /** Backlog that forces an eager worker wakeup (log-space pressure). */
    static constexpr size_t kEagerWakeBacklog = 48;

    void run();

    /**
     * The SCM context of the thread that created this truncator,
     * installed as the worker thread's context override.  A sweep
     * worker's runtime (and its truncation thread) must write through
     * that worker's private emulator, not the process-wide one.
     */
    scm::ScmContext *parentCtx_;

    const uint64_t pollUs_;
    const bool batchDedup_;
    std::atomic<EpochCombiner *> combiner_{nullptr};

    std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable idleCv_;
    std::deque<Task> queue_;
    bool stop_ = false;
    bool busy_ = false;
    bool paused_ = false;
    uint64_t processed_ = 0;
    std::thread worker_;
};

} // namespace mnemosyne::mtm

#endif // MNEMOSYNE_MTM_TRUNCATION_H_
