#include "mtm/txn.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "mtm/group_commit.h"
#include "mtm/redo_codec.h"
#include "mtm/truncation.h"
#include "mtm/txn_manager.h"
#include "obs/hdr_histogram.h"
#include "obs/obs.h"
#include "obs/trace_ring.h"
#include "scm/scm.h"

namespace mnemosyne::mtm {

namespace {

obs::Counter &
redoWordsCtr()
{
    static obs::Counter c{"mtm.redo_words"};
    return c;
}

/** Log words the compact (v2) encoding saved versus what the v1 record
 *  shape would have appended for the same write set — the bandwidth
 *  win, measured at the source. */
obs::Counter &
wordsSavedCtr()
{
    static obs::Counter c{"rawl.record_words_saved"};
    return c;
}

/** Touch at load so the key appears in every snapshot even when the
 *  compact encoding is off (live schema checks rely on presence). */
[[maybe_unused]] obs::Counter &gWordsSavedEager = wordsSavedCtr();

obs::Histogram &
syncTruncHist()
{
    static obs::Histogram h{"mtm.sync_trunc_ns"};
    return h;
}

/** Update-transaction commit() latency, sampled 1 in 16 (the two TSC
 *  reads are cheap, but a 2M txn/s workload still shouldn't pay them
 *  every commit); HDR-bucketed so p99 moves are visible at ~3%. */
obs::HdrHistogram &
commitLatencyHist()
{
    static obs::HdrHistogram h{"mtm.commit_ns"};
    return h;
}

/** Touch at load so the mtm.commit_ns.* keys appear in every snapshot,
 *  including processes whose few commits never hit the 1-in-16 sample
 *  (live clients can then rely on the key existing). */
[[maybe_unused]] obs::HdrHistogram &gCommitHistEager = commitLatencyHist();

} // namespace

void
Txn::begin(uint64_t id, log::Rawl *log)
{
    id_ = id;
    log_ = log;
    startTs_ = mgr_.clock_.load(std::memory_order_acquire);
    depth_ = 1;
    active_ = true;
    flight_ = obs::FlightRecorder::instance().beginTxn(id_);
    flightDetail_ = flight_ != nullptr && flight_->sampled ? flight_ : nullptr;
    obs::TraceRing::instance().record(obs::TraceEv::kTxnBegin, id_,
                                      startTs_);
}

void
Txn::reset()
{
    writeWords_.clear();
    readSet_.clear();
    lockPrev_.clear();
    abortHooks_.clear();
    commitHooks_.clear();
    depth_ = 0;
    active_ = false;
    asyncCommit_ = false;
}

void
Txn::rollback()
{
    // Release every lock, restoring its pre-acquisition version, and
    // discard buffered updates.  Nothing reaches the log before commit,
    // so an aborted transaction leaves no trace to invalidate (paper
    // section 5; the staged-redo scheme makes aborts log-free).
    for (const auto &it : lockPrev_) {
        reinterpret_cast<LockTable::Word *>(it.key)->store(
            it.val, std::memory_order_release);
    }
    for (auto it = abortHooks_.rbegin(); it != abortHooks_.rend(); ++it)
        (*it)();
    const uint64_t id = id_;
    obs::FlightRecorder::instance().endTxn(flight_, obs::kFlightAborted,
                                           /*commit_ts=*/0);
    flight_ = nullptr;
    flightDetail_ = nullptr;
    reset();
    mgr_.nAborts_.add(1);
    obs::TraceRing::instance().record(obs::TraceEv::kTxnAbort, id);
}

void
Txn::abort(const char *why)
{
    rollback();
    throw TxnConflict{why};
}

void
Txn::extend()
{
    // Lazy snapshot extension: the snapshot can move forward to `now` if
    // every stripe read so far is still valid at its recorded version.
    const uint64_t now = mgr_.clock_.load(std::memory_order_acquire);
    for (const auto &it : readSet_) {
        auto *lock = reinterpret_cast<LockTable::Word *>(it.key);
        const uint64_t cur = lock->load(std::memory_order_acquire);
        if (cur == it.val)
            continue;
        if (LockTable::isLocked(cur) && LockTable::owner(cur) == id_) {
            const uint64_t *prev = lockPrev_.find(it.key);
            if (prev && *prev == it.val)
                continue;
        }
        abort("snapshot extension failed");
    }
    startTs_ = now;
}

void
Txn::validateOrAbort(const char *why)
{
    for (const auto &it : readSet_) {
        auto *lock = reinterpret_cast<LockTable::Word *>(it.key);
        const uint64_t cur = lock->load(std::memory_order_acquire);
        if (cur == it.val)
            continue;
        if (LockTable::isLocked(cur) && LockTable::owner(cur) == id_) {
            const uint64_t *prev = lockPrev_.find(it.key);
            if (prev && *prev == it.val)
                continue;
        }
        abort(why);
    }
}

void
Txn::recordRead(LockTable::Word &lock, uint64_t seen)
{
    // One read-set entry per lock stripe.  A repeat read of a stripe
    // whose version moved since the first read means another commit
    // slipped between them; commit-time validation of the first entry
    // would abort anyway, so fail fast here.
    auto [val, inserted] = readSet_.insert(
        reinterpret_cast<uintptr_t>(&lock), seen);
    if (!inserted && *val != seen)
        abort("stripe version changed between reads");
}

void
Txn::acquire(LockTable::Word &lock)
{
    uint64_t cur = lock.load(std::memory_order_acquire);
    for (;;) {
        if (LockTable::isLocked(cur)) {
            if (LockTable::owner(cur) == id_)
                return; // already mine
            // Eager conflict detection: the encounter-time policy aborts
            // the requester; the atomic() wrapper backs off and retries.
            abort("write-write conflict");
        }
        if (lock.compare_exchange_weak(cur, LockTable::makeLocked(id_),
                                       std::memory_order_acq_rel)) {
            lockPrev_.insert(reinterpret_cast<uintptr_t>(&lock), cur);
            return;
        }
    }
}

uint64_t
Txn::readWord(uintptr_t word_addr)
{
    // Read-own-writes: the bloom filter answers the (common) miss with
    // two bit tests; only a positive pays the table probe.
    if (writeWords_.mayContain(word_addr)) {
        if (const uint64_t *v = writeWords_.find(word_addr))
            return *v;
    }

    // The in-memory loads below are seqlock-style optimistic reads:
    // a concurrent committer may be writing the word back while we
    // read it, and the version re-check catches that.  The loads go
    // through relaxed atomics (free on x86-64) so the race is defined
    // behaviour; the device side writes with matching relaxed atomics
    // (scm deviceCopy).
    std::atomic_ref<uint64_t> word(
        *reinterpret_cast<uint64_t *>(word_addr));
    auto &lock = mgr_.locks_.lockFor(reinterpret_cast<void *>(word_addr));
    for (int attempt = 0; attempt < 4; ++attempt) {
        const uint64_t v1 = lock.load(std::memory_order_acquire);
        if (LockTable::isLocked(v1)) {
            if (LockTable::owner(v1) == id_) {
                // I hold the stripe lock (a different word hashed here):
                // memory is stable under my lock.
                return word.load(std::memory_order_relaxed);
            }
            abort("read-write conflict");
        }
        const uint64_t val = word.load(std::memory_order_relaxed);
        const uint64_t v2 = lock.load(std::memory_order_acquire);
        if (v1 != v2)
            continue; // concurrent writer slipped in; retry the read
        if (LockTable::version(v1) > startTs_)
            extend();
        recordRead(lock, v1);
        return val;
    }
    abort("unstable read");
    __builtin_unreachable();
}

void
Txn::writeWord(uintptr_t word_addr, uint64_t val)
{
    // Lazy version management: acquire the stripe, buffer the value.
    // The redo log sees nothing until commit, when the whole write set
    // is staged as one record (stageAndAppendRedo).
    acquire(mgr_.locks_.lockFor(reinterpret_cast<void *>(word_addr)));
    writeWords_.put(word_addr, val);
}

void
Txn::write(void *addr, const void *src, size_t len)
{
    assert(active_);
    obs::SpanScope span(flightDetail_, obs::Span::kWriteBarrier);
    if (flightDetail_)
        flightDetail_->writes += uint32_t((len + 7) / 8);
    const auto *bytes = static_cast<const uint8_t *>(src);
    uintptr_t a = reinterpret_cast<uintptr_t>(addr);
    size_t remaining = len;
    while (remaining > 0) {
        const uintptr_t word = a & ~uintptr_t(7);
        const size_t off = a - word;
        const size_t n = std::min(remaining, 8 - off);
        uint64_t cur;
        if (n == 8) {
            std::memcpy(&cur, bytes, 8);
        } else {
            // Sub-word store: merge into the current word value.  The
            // lock is taken first so the in-memory read is stable.
            acquire(mgr_.locks_.lockFor(reinterpret_cast<void *>(word)));
            const uint64_t *buf = writeWords_.mayContain(word)
                                      ? writeWords_.find(word)
                                      : nullptr;
            cur = buf ? *buf
                      : *reinterpret_cast<const uint64_t *>(word);
            std::memcpy(reinterpret_cast<uint8_t *>(&cur) + off, bytes, n);
        }
        writeWord(word, cur);
        a += n;
        bytes += n;
        remaining -= n;
    }
}

void
Txn::read(void *dst, const void *addr, size_t len)
{
    assert(active_);
    obs::SpanScope span(flightDetail_, obs::Span::kReadBarrier);
    if (flightDetail_)
        flightDetail_->reads += uint32_t((len + 7) / 8);
    auto *out = static_cast<uint8_t *>(dst);
    uintptr_t a = reinterpret_cast<uintptr_t>(addr);
    size_t remaining = len;
    while (remaining > 0) {
        const uintptr_t word = a & ~uintptr_t(7);
        const size_t off = a - word;
        const size_t n = std::min(remaining, 8 - off);
        const uint64_t val = readWord(word);
        std::memcpy(out, reinterpret_cast<const uint8_t *>(&val) + off, n);
        a += n;
        out += n;
        remaining -= n;
    }
}

void
Txn::stageAndAppendRedo(uint64_t ts, bool epoch_mode)
{
    // Per-transaction log staging: the whole redo — commit timestamp
    // plus every persistent buffered word — travels to the RAWL as ONE
    // record, so the header word and tornbit restaging are paid once
    // per transaction instead of once per store.  commit() filled
    // persistScratch_ with the addr-sorted persistent items; the record
    // format is either v1 ([tag, ts, (addr, val)...]) or the compact v2
    // shape (redo_codec.h), which drops the address column for a varint
    // run-length stream.
    //
    // Under group commit the record is epoch-tagged and left UNFENCED:
    // the epoch combiner flushes its lines and fences the whole batch
    // (the log itself staged the words with cached stores, see
    // Rawl::setCachedAppends).  Recovery then replays the txn only if
    // its epoch's marker proves the batch fence happened.
    const size_t n = persistScratch_.size();
    redoWordsCtr().add(2 * n);

    // Records are additionally capped well below a large log's capacity:
    // the tornbit restaging buffer stays cache-sized, and a chunk is
    // never so large that the truncator cannot free space between spills.
    constexpr size_t kMaxStagedWords = 4096;
    const size_t max_rec = std::min(
        log::Rawl::maxRecordWords(log_->capacityWords()), kMaxStagedWords);
    assert(max_rec >= 4 && "log slot too small for any transaction");
    size_t appended = 0;
    {
        obs::SpanScope append_span(flightDetail_, obs::Span::kLogAppend);
        if (mgr_.cfg_.compact_redo) {
            const uintptr_t va_base = mgr_.rl_.manager().vaBase();
            const WriteSet::Item *items = persistScratch_.data();
            // Hot path: encode straight away (single pass) and check
            // the size after — almost no transaction is oversized.
            redo::encodeV2(va_base, ts, epoch_mode, items, n,
                           redoScratch_);
            size_t start = 0;
            if (redoScratch_.size() > max_rec) [[unlikely]] {
                // Oversized transaction: spill leading chunks as plain
                // (addr, val) pair records until the compact tail fits
                // one record.  Recovery buffers pair records until the
                // commit record arrives (and discards them if it never
                // does).
                size_t rec_words =
                    redo::encodedWordsV2(va_base, ts, items, n);
                while (rec_words > max_rec) {
                    const size_t chunk =
                        std::min((max_rec - 2) / 2, n - start - 1);
                    redoScratch_.clear();
                    for (size_t i = start; i < start + chunk; ++i) {
                        redoScratch_.push_back(items[i].key);
                        redoScratch_.push_back(items[i].val);
                    }
                    log_->append(redoScratch_.data(), redoScratch_.size());
                    appended += redoScratch_.size();
                    start += chunk;
                    rec_words = redo::encodedWordsV2(
                        va_base, ts, items + start, n - start);
                }
                redo::encodeV2(va_base, ts, epoch_mode, items + start,
                               n - start, redoScratch_);
            }
            log_->append(redoScratch_.data(), redoScratch_.size());
            appended += redoScratch_.size();
            // The v1 shape appends exactly 2 + 2n words for any spill
            // split; the difference is the bandwidth this txn saved.
            if (appended < 2 + 2 * n)
                wordsSavedCtr().add(2 + 2 * n - appended);
        } else {
            const uint64_t tag = epoch_mode ? kTagCommitEpoch : kTagCommit;
            redoScratch_.clear();
            redoScratch_.reserve(2 + 2 * n);
            redoScratch_.push_back(tag);
            redoScratch_.push_back(ts);
            for (const auto &it : persistScratch_) {
                redoScratch_.push_back(it.key);
                redoScratch_.push_back(it.val);
            }
            appended = redoScratch_.size();
            if (redoScratch_.size() <= max_rec) {
                log_->append(redoScratch_.data(), redoScratch_.size());
            } else {
                // Oversized transaction: spill leading pair chunks as
                // plain records, then fold the tail into the commit
                // record.
                const size_t chunk = (max_rec - 2) & ~size_t(1);
                size_t pos = 2;
                size_t remaining = redoScratch_.size() - 2;
                while (remaining + 2 > max_rec) {
                    log_->append(&redoScratch_[pos], chunk);
                    pos += chunk;
                    remaining -= chunk;
                }
                // The commit header slides down next to the tail pairs
                // so the final append stays one contiguous range.
                redoScratch_[pos - 2] = tag;
                redoScratch_[pos - 1] = ts;
                log_->append(&redoScratch_[pos - 2], remaining + 2);
            }
        }
    }
    if (flightDetail_) {
        flightDetail_->redo_words += uint32_t(2 * n);
        flightDetail_->log_bytes += uint32_t(appended * sizeof(uint64_t));
    }
    if (epoch_mode)
        return; // the epoch fence is the durability point
    // Durability point: one fence thanks to the tornbit RAWL.
    {
        obs::SpanScope fence_span(flightDetail_, obs::Span::kLogFence);
        log_->flush();
    }
    if (flightDetail_)
        flightDetail_->fences += 1;
}

uint64_t
Txn::commit()
{
    assert(active_ && depth_ == 1);
    auto &c = scm::ctx();

    if (writeWords_.empty()) {
        // Read-only transactions are consistent by construction of the
        // incremental validation; nothing to persist.
        for (auto &h : commitHooks_)
            h();
        const uint64_t id = id_;
        obs::FlightRecorder::instance().endTxn(
            flight_, obs::kFlightCommitted | obs::kFlightReadOnly,
            /*commit_ts=*/0);
        flight_ = nullptr;
    flightDetail_ = nullptr;
        reset();
        mgr_.nReadonly_.add(1);
        obs::TraceRing::instance().record(obs::TraceEv::kTxnCommit, id,
                                          /*readonly=*/1);
        return 0;
    }

    // Commit-operation latency (update transactions), sampled 1 in 16
    // into the mtm.commit_ns HDR histogram: cheap TSC reads, converted
    // to ns off the hot path.
    const uint64_t commit_t0 =
        obs::enabled() && (++commitSample_ & 15) == 0 ? obs::tickNow() : 0;

    // Total order over transactions: the global timestamp counter,
    // stored with the commit record for replay ordering (section 5).
    // The timestamp is taken BEFORE validation so that any conflicting
    // writer serializes strictly before or after this transaction.
    const uint64_t ts =
        mgr_.clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
    {
        obs::SpanScope validate_span(flightDetail_, obs::Span::kValidate);
        if (startTs_ != ts - 1)
            validateOrAbort("commit validation failed");
    }

    {
        // Staging: sort the write set once into reusable scratch (the
        // sorted order drives line coalescing for flushes and
        // write-back runs) and build the redo record.
        obs::SpanScope stage_span(flightDetail_, obs::Span::kLogStage);
        sortScratch_.assign(writeWords_.begin(), writeWords_.end());
        std::sort(sortScratch_.begin(), sortScratch_.end(),
                  [](const WriteSet::Item &a, const WriteSet::Item &b) {
                      return a.key < b.key;
                  });
        lineScratch_.clear();
        persistScratch_.clear();
        for (const auto &it : sortScratch_) {
            if (mgr_.rl_.isPersistent(reinterpret_cast<void *>(it.key))) {
                persistScratch_.push_back(it);
                const uintptr_t line = it.key & ~uintptr_t(63);
                if (lineScratch_.empty() || lineScratch_.back() != line)
                    lineScratch_.push_back(line);
            }
        }
    }
    const bool logged = !persistScratch_.empty();
    EpochCombiner *comb = logged ? mgr_.combiner_.get() : nullptr;
    uint64_t epoch = 0;

    if (logged) {
        const uint64_t from_abs = log_->tailAbs();
        stageAndAppendRedo(ts, comb != nullptr);
        if (comb) {
            const EpochCombiner::Member member{log_, from_abs,
                                               log_->tailAbs(), ts};
            if (asyncCommit_) {
                // commit_async: logical commit now, an epoch ticket for
                // the caller.  The in-place write-back AND lock release
                // are deferred to the combiner at epoch retirement —
                // writing back earlier would let cache eviction persist
                // in-place data ahead of its (unfenced) log record,
                // breaking the whole-epoch atomicity guarantee.  Until
                // the epoch retires (bounded by the epoch timeout),
                // conflicting transactions abort and retry.
                EpochCombiner::Pending p;
                p.items = std::move(sortScratch_);
                p.dataWords.reserve(persistScratch_.size());
                for (const auto &it : persistScratch_)
                    p.dataWords.push_back(it.key);
                p.lockSlots.reserve(lockPrev_.size());
                for (const auto &it : lockPrev_)
                    p.lockSlots.push_back(uintptr_t(it.key));
                p.ts = ts;
                p.log = log_;
                p.toAbs = member.toAbs;
                epoch = comb->joinAsync(member, std::move(p));
                sortScratch_.clear();
                for (auto &h : commitHooks_)
                    h();
                if (commit_t0)
                    commitLatencyHist().recordAlways(
                        obs::ticksToNs(obs::tickNow() - commit_t0));
                const uint64_t id = id_;
                obs::FlightRecorder::instance().endTxn(
                    flight_, obs::kFlightCommitted, ts);
                flight_ = nullptr;
                flightDetail_ = nullptr;
                reset();
                mgr_.nCommits_.add(1);
                obs::TraceRing::instance().record(obs::TraceEv::kTxnCommit,
                                                  id, ts);
                return epoch;
            }
            // Synchronous commit under group commit: wait for the epoch
            // fence (issued once, by whichever thread combines) BEFORE
            // the write-back — write-ahead again.  The wait is what the
            // caller pays instead of a private flush+fence.
            obs::SpanScope fence_span(flightDetail_, obs::Span::kLogFence);
            epoch = comb->joinSync(member);
            comb->waitRetired(epoch);
        }
    }

    {
        obs::SpanScope wb_span(flightDetail_, obs::Span::kWriteBack);
        // Write back the new values in place (lazy version management),
        // coalescing contiguous words into single cached stores.
        for (size_t i = 0; i < sortScratch_.size();) {
            const uintptr_t start = sortScratch_[i].key;
            runScratch_.clear();
            runScratch_.push_back(sortScratch_[i].val);
            size_t j = i + 1;
            while (j < sortScratch_.size() &&
                   sortScratch_[j].key == sortScratch_[j - 1].key + 8) {
                runScratch_.push_back(sortScratch_[j].val);
                ++j;
            }
            c.store(reinterpret_cast<void *>(start), runScratch_.data(),
                    runScratch_.size() * sizeof(uint64_t));
            i = j;
        }

        // Release the locks at the commit timestamp.
        for (const auto &it : lockPrev_) {
            reinterpret_cast<LockTable::Word *>(it.key)->store(
                LockTable::makeVersion(ts), std::memory_order_release);
        }
    }

    if (logged) {
        obs::SpanScope trunc_span(flightDetail_, obs::Span::kTruncate);
        if (comb) {
            // Group commit always truncates through the worker thread:
            // a synchronous flush+fence here would hand back the very
            // fence the epoch just amortized away.  The task is gated
            // on its epoch (already retired on this path, so it is
            // immediately eligible).
            std::vector<uintptr_t> words;
            words.reserve(persistScratch_.size());
            for (const auto &it : persistScratch_)
                words.push_back(it.key);
            mgr_.truncator_->enqueue(TruncationThread::Task{
                log_, log_->tailAbs(), std::move(words), epoch});
        } else if (mgr_.cfg_.truncation == Truncation::kSync) {
            // Synchronous truncation: force new values to memory during
            // commit, then drop the whole per-thread log.  The head
            // advance is ordered after this fence and rides the next
            // one (losing it only means an idempotent replay).
            // The latency histogram samples 1 in 16 commits: two clock
            // reads per commit cost more than the truncation itself on
            // the emulator fast lane.
            const uint64_t t0 = obs::enabled() && (++truncSample_ & 15) == 0
                                    ? obs::nowNs()
                                    : 0;
            for (uintptr_t line : lineScratch_)
                c.flush(reinterpret_cast<const void *>(line));
            c.fence();
            log_->consumeTo(log::Rawl::Cursor{log_->tailAbs()},
                            /*do_fence=*/false);
            if (t0)
                syncTruncHist().record(obs::nowNs() - t0);
            if (flightDetail_) {
                flightDetail_->flushes += uint32_t(lineScratch_.size());
                flightDetail_->fences += 1;
            }
        } else {
            std::vector<uintptr_t> words;
            words.reserve(persistScratch_.size());
            for (const auto &it : persistScratch_)
                words.push_back(it.key);
            mgr_.truncator_->enqueue(TruncationThread::Task{
                log_, log_->tailAbs(), std::move(words)});
        }
    }

    for (auto &h : commitHooks_)
        h();
    if (commit_t0)
        commitLatencyHist().recordAlways(
            obs::ticksToNs(obs::tickNow() - commit_t0));
    const uint64_t id = id_;
    obs::FlightRecorder::instance().endTxn(flight_, obs::kFlightCommitted,
                                           ts);
    flight_ = nullptr;
    flightDetail_ = nullptr;
    reset();
    mgr_.nCommits_.add(1);
    obs::TraceRing::instance().record(obs::TraceEv::kTxnCommit, id, ts);
    return 0; // durable on return
}

} // namespace mnemosyne::mtm
