#include "mtm/txn.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "mtm/truncation.h"
#include "mtm/txn_manager.h"
#include "obs/obs.h"
#include "obs/trace_ring.h"
#include "scm/scm.h"

namespace mnemosyne::mtm {

namespace {

obs::Counter &
redoWordsCtr()
{
    static obs::Counter c{"mtm.redo_words"};
    return c;
}

obs::Histogram &
syncTruncHist()
{
    static obs::Histogram h{"mtm.sync_trunc_ns"};
    return h;
}

} // namespace

void
Txn::begin(uint64_t id, log::Rawl *log)
{
    id_ = id;
    log_ = log;
    startTs_ = mgr_.clock_.load(std::memory_order_acquire);
    depth_ = 1;
    active_ = true;
    obs::TraceRing::instance().record(obs::TraceEv::kTxnBegin, id_,
                                      startTs_);
}

void
Txn::reset()
{
    writeWords_.clear();
    readSet_.clear();
    lockPrev_.clear();
    abortHooks_.clear();
    commitHooks_.clear();
    depth_ = 0;
    active_ = false;
}

void
Txn::rollback()
{
    // Release every lock, restoring its pre-acquisition version, discard
    // buffered updates, and mark the transaction aborted in the log so
    // recovery never replays its entries (paper section 5).
    for (auto &[lock, prev] : lockPrev_)
        lock->store(prev, std::memory_order_release);
    if (log_ && !writeWords_.empty()) {
        logScratch_[0] = kTagAbort;
        log_->append(logScratch_, 1);
    }
    for (auto it = abortHooks_.rbegin(); it != abortHooks_.rend(); ++it)
        (*it)();
    const uint64_t id = id_;
    reset();
    mgr_.nAborts_.add(1);
    obs::TraceRing::instance().record(obs::TraceEv::kTxnAbort, id);
}

void
Txn::abort(const char *why)
{
    rollback();
    throw TxnConflict{why};
}

void
Txn::extend()
{
    // Lazy snapshot extension: the snapshot can move forward to `now` if
    // every read so far is still valid at its recorded version.
    const uint64_t now = mgr_.clock_.load(std::memory_order_acquire);
    for (const auto &[lock, seen] : readSet_) {
        const uint64_t cur = lock->load(std::memory_order_acquire);
        if (cur == seen)
            continue;
        if (LockTable::isLocked(cur) && LockTable::owner(cur) == id_) {
            auto it = lockPrev_.find(lock);
            if (it != lockPrev_.end() && it->second == seen)
                continue;
        }
        abort("snapshot extension failed");
    }
    startTs_ = now;
}

void
Txn::validateOrAbort(const char *why)
{
    for (const auto &[lock, seen] : readSet_) {
        const uint64_t cur = lock->load(std::memory_order_acquire);
        if (cur == seen)
            continue;
        if (LockTable::isLocked(cur) && LockTable::owner(cur) == id_) {
            auto it = lockPrev_.find(lock);
            if (it != lockPrev_.end() && it->second == seen)
                continue;
        }
        abort(why);
    }
}

void
Txn::acquire(LockTable::Word &lock)
{
    uint64_t cur = lock.load(std::memory_order_acquire);
    for (;;) {
        if (LockTable::isLocked(cur)) {
            if (LockTable::owner(cur) == id_)
                return; // already mine
            // Eager conflict detection: the encounter-time policy aborts
            // the requester; the atomic() wrapper backs off and retries.
            abort("write-write conflict");
        }
        if (lock.compare_exchange_weak(cur, LockTable::makeLocked(id_),
                                       std::memory_order_acq_rel)) {
            lockPrev_.emplace(&lock, cur);
            return;
        }
    }
}

uint64_t
Txn::readWord(uintptr_t word_addr)
{
    auto wit = writeWords_.find(word_addr);
    if (wit != writeWords_.end())
        return wit->second;

    auto &lock = mgr_.locks_.lockFor(reinterpret_cast<void *>(word_addr));
    for (int attempt = 0; attempt < 4; ++attempt) {
        const uint64_t v1 = lock.load(std::memory_order_acquire);
        if (LockTable::isLocked(v1)) {
            if (LockTable::owner(v1) == id_) {
                // I hold the stripe lock (a different word hashed here):
                // memory is stable under my lock.
                return *reinterpret_cast<const uint64_t *>(word_addr);
            }
            abort("read-write conflict");
        }
        const uint64_t val = *reinterpret_cast<const uint64_t *>(word_addr);
        const uint64_t v2 = lock.load(std::memory_order_acquire);
        if (v1 != v2)
            continue; // concurrent writer slipped in; retry the read
        if (LockTable::version(v1) > startTs_)
            extend();
        readSet_.emplace_back(&lock, v1);
        return val;
    }
    abort("unstable read");
    __builtin_unreachable();
}

void
Txn::bufferWord(uintptr_t word_addr, uint64_t val)
{
    auto &lock = mgr_.locks_.lockFor(reinterpret_cast<void *>(word_addr));
    acquire(lock);
    writeWords_[word_addr] = val;

    // Write-ahead redo logging: address/value pairs are streamed into
    // the per-thread persistent log during the transaction; only writes
    // to persistent memory are logged (quick range check, section 5).
    if (mgr_.rl_.isPersistent(reinterpret_cast<void *>(word_addr))) {
        logBatch_.push_back(word_addr);
        logBatch_.push_back(val);
    }
}

void
Txn::writeWord(uintptr_t word_addr, uint64_t val)
{
    logBatch_.clear();
    bufferWord(word_addr, val);
    if (!logBatch_.empty()) {
        redoWordsCtr().add(logBatch_.size());
        log_->append(logBatch_.data(), logBatch_.size());
    }
}

void
Txn::write(void *addr, const void *src, size_t len)
{
    assert(active_);
    const auto *bytes = static_cast<const uint8_t *>(src);
    uintptr_t a = reinterpret_cast<uintptr_t>(addr);
    size_t remaining = len;
    logBatch_.clear();
    while (remaining > 0) {
        const uintptr_t word = a & ~uintptr_t(7);
        const size_t off = a - word;
        const size_t n = std::min(remaining, 8 - off);
        uint64_t cur;
        if (n == 8) {
            std::memcpy(&cur, bytes, 8);
        } else {
            // Sub-word store: merge into the current word value.  The
            // lock is taken first so the in-memory read is stable.
            acquire(mgr_.locks_.lockFor(reinterpret_cast<void *>(word)));
            auto it = writeWords_.find(word);
            cur = (it != writeWords_.end())
                      ? it->second
                      : *reinterpret_cast<const uint64_t *>(word);
            std::memcpy(reinterpret_cast<uint8_t *>(&cur) + off, bytes, n);
        }
        bufferWord(word, cur);
        a += n;
        bytes += n;
        remaining -= n;
    }
    // One log record for the whole multi-word store (the streamed
    // appends of one instrumented memcpy).
    if (!logBatch_.empty()) {
        redoWordsCtr().add(logBatch_.size());
        log_->append(logBatch_.data(), logBatch_.size());
    }
}

void
Txn::read(void *dst, const void *addr, size_t len)
{
    assert(active_);
    auto *out = static_cast<uint8_t *>(dst);
    uintptr_t a = reinterpret_cast<uintptr_t>(addr);
    size_t remaining = len;
    while (remaining > 0) {
        const uintptr_t word = a & ~uintptr_t(7);
        const size_t off = a - word;
        const size_t n = std::min(remaining, 8 - off);
        const uint64_t val = readWord(word);
        std::memcpy(out, reinterpret_cast<const uint8_t *>(&val) + off, n);
        a += n;
        out += n;
        remaining -= n;
    }
}

void
Txn::commit()
{
    assert(active_ && depth_ == 1);
    auto &c = scm::ctx();

    if (writeWords_.empty()) {
        // Read-only transactions are consistent by construction of the
        // incremental validation; nothing to persist.
        for (auto &h : commitHooks_)
            h();
        const uint64_t id = id_;
        reset();
        mgr_.nReadonly_.add(1);
        obs::TraceRing::instance().record(obs::TraceEv::kTxnCommit, id,
                                          /*readonly=*/1);
        return;
    }

    // Total order over transactions: the global timestamp counter,
    // stored with the commit record for replay ordering (section 5).
    // The timestamp is taken BEFORE validation so that any conflicting
    // writer serializes strictly before or after this transaction.
    const uint64_t ts =
        mgr_.clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (startTs_ != ts - 1)
        validateOrAbort("commit validation failed");

    std::vector<std::pair<uintptr_t, uint64_t>> sorted(writeWords_.begin(),
                                                       writeWords_.end());
    std::sort(sorted.begin(), sorted.end());
    bool logged = false;
    std::vector<uintptr_t> lines;
    for (const auto &[word, val] : sorted) {
        (void)val;
        if (mgr_.rl_.isPersistent(reinterpret_cast<void *>(word))) {
            logged = true;
            const uintptr_t line = word & ~uintptr_t(63);
            if (lines.empty() || lines.back() != line)
                lines.push_back(line);
        }
    }

    if (logged) {
        // Durability point: one fence thanks to the tornbit RAWL.
        logScratch_[0] = kTagCommit;
        logScratch_[1] = ts;
        log_->append(logScratch_, 2);
        log_->flush();
    }

    // Write back the new values in place (lazy version management),
    // coalescing contiguous words into single cached stores.
    std::vector<uint64_t> run;
    for (size_t i = 0; i < sorted.size();) {
        const uintptr_t start = sorted[i].first;
        run.clear();
        run.push_back(sorted[i].second);
        size_t j = i + 1;
        while (j < sorted.size() &&
               sorted[j].first == sorted[j - 1].first + 8) {
            run.push_back(sorted[j].second);
            ++j;
        }
        c.store(reinterpret_cast<void *>(start), run.data(),
                run.size() * sizeof(uint64_t));
        i = j;
    }

    // Release the locks at the commit timestamp.
    for (auto &[lock, prev] : lockPrev_) {
        (void)prev;
        lock->store(LockTable::makeVersion(ts), std::memory_order_release);
    }

    if (logged) {
        if (mgr_.cfg_.truncation == Truncation::kSync) {
            // Synchronous truncation: force new values to memory during
            // commit, then drop the whole per-thread log.  The head
            // advance is ordered after this fence and rides the next
            // one (losing it only means an idempotent replay).
            const uint64_t t0 = obs::enabled() ? obs::nowNs() : 0;
            for (uintptr_t line : lines)
                c.flush(reinterpret_cast<const void *>(line));
            c.fence();
            log_->consumeTo(log::Rawl::Cursor{log_->tailAbs()},
                            /*do_fence=*/false);
            if (t0)
                syncTruncHist().record(obs::nowNs() - t0);
        } else {
            mgr_.truncator_->enqueue(TruncationThread::Task{
                log_, log_->tailAbs(), std::move(lines)});
        }
    }

    for (auto &h : commitHooks_)
        h();
    const uint64_t id = id_;
    reset();
    mgr_.nCommits_.add(1);
    obs::TraceRing::instance().record(obs::TraceEv::kTxnCommit, id, ts);
}

} // namespace mnemosyne::mtm
