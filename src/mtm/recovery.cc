#include "mtm/recovery.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "mtm/redo_codec.h"
#include "mtm/txn.h"
#include "scm/scm.h"

namespace mnemosyne::mtm {

namespace {

struct ReplayTxn {
    uint64_t ts;
    std::vector<std::pair<uint64_t, uint64_t>> writes; // (addr, val)
};

/** One epoch marker: [kTagEpoch, epoch, n, (slot, to_abs, ts) x n]. */
struct Marker {
    uint64_t epoch;
    struct MemberRef {
        uint64_t slot;
        uint64_t toAbs;
        uint64_t ts;
    };
    std::vector<MemberRef> members;
};

} // namespace

RecoveryResult
recoverTransactions(log::LogManager &logs, uintptr_t va_base)
{
    RecoveryResult res;
    std::vector<ReplayTxn> committed;        // plain kTagCommit txns
    std::vector<ReplayTxn> epochTxns;        // kTagCommitEpoch txns
    std::vector<Marker> markers;
    // Per-slot surviving epoch-record timestamps and durable head, for
    // the epoch completeness check.
    std::unordered_map<uint64_t, std::unordered_set<uint64_t>> slotEpochTs;
    std::unordered_map<uint64_t, uint64_t> slotHead;

    logs.forEachActive([&](size_t slot, log::Rawl &log) {
        slotHead[slot] = log.headAbs();
        // Group-commit records were never producer-flushed; recovery
        // must scan the full torn-bit-valid extent, not just the
        // volatile flushed watermark (which open() conservatively set
        // to the scan end anyway — this keeps that contract explicit).
        auto cur = log.begin();
        std::vector<uint64_t> rec;
        std::vector<std::pair<uint64_t, uint64_t>> pending;
        while (log.readRecord(cur, rec)) {
            if (rec.empty())
                continue;
            if (rec[0] == kTagCommit && rec.size() >= 2) {
                // Staged commit record: [kTagCommit, ts, (addr, val)...].
                // Any `pending` pairs are spilled chunks of the same
                // (oversized) transaction and come first in replay order.
                for (size_t i = 2; i + 1 < rec.size(); i += 2)
                    pending.emplace_back(rec[i], rec[i + 1]);
                committed.push_back(ReplayTxn{rec[1], std::move(pending)});
                pending.clear();
            } else if (rec[0] == kTagCommitEpoch && rec.size() >= 2) {
                // Group-commit record: same shape, but replay is gated
                // on its epoch's marker proving the batch fence
                // happened (whole-epoch all-or-nothing).
                for (size_t i = 2; i + 1 < rec.size(); i += 2)
                    pending.emplace_back(rec[i], rec[i + 1]);
                slotEpochTs[slot].insert(rec[1]);
                epochTxns.push_back(ReplayTxn{rec[1], std::move(pending)});
                pending.clear();
            } else if (redo::isV2(rec[0])) {
                // Compact (v2) record: varint run-length address
                // stream, decoded against the region base.  Same
                // replay semantics as its v1 twin — the epoch-tagged
                // variant is gated on its epoch's marker.  RAWL
                // framing is whole-record, so a surviving record
                // decodes wholly; a decode failure is treated like a
                // torn tail and discarded.
                const bool epoch_rec = redo::isV2Epoch(rec[0]);
                uint64_t ts = 0;
                if (!redo::decodeV2(va_base, rec.data(), rec.size(), ts,
                                    pending)) {
                    res.torn_discarded++;
                    pending.clear();
                    continue;
                }
                if (epoch_rec) {
                    slotEpochTs[slot].insert(ts);
                    epochTxns.push_back(ReplayTxn{ts, std::move(pending)});
                } else {
                    committed.push_back(ReplayTxn{ts, std::move(pending)});
                }
                pending.clear();
            } else if (rec[0] == kTagEpoch && rec.size() >= 3) {
                // Epoch marker (marker log).  RAWL framing is whole-
                // record, so a surviving marker is never short; the
                // size check is defensive.
                Marker m;
                m.epoch = rec[1];
                const uint64_t n = rec[2];
                if (rec.size() >= 3 + 3 * n) {
                    for (uint64_t i = 0; i < n; ++i) {
                        m.members.push_back(Marker::MemberRef{
                            rec[3 + 3 * i], rec[3 + 3 * i + 1],
                            rec[3 + 3 * i + 2]});
                    }
                    markers.push_back(std::move(m));
                }
            } else if (rec[0] == kTagAbort) {
                res.aborted_discarded++;
                pending.clear();
            } else {
                // A batched write record: (addr, val) pairs.
                for (size_t i = 0; i + 1 < rec.size(); i += 2)
                    pending.emplace_back(rec[i], rec[i + 1]);
            }
        }
        if (!pending.empty())
            res.torn_discarded++;
    });

    // Whole-epoch atomicity: an epoch is COMPLETE iff, for every member
    // named by its marker, either the member's record survives in its
    // slot (same ts) or the slot's durable head has passed the record
    // (consumed, which implies the epoch retired and the data is in
    // place), or the slot is gone (released only after truncation).
    // Replay the largest complete PREFIX of surviving markers and drop
    // everything after: markers are appended in epoch order and sealed
    // strictly one at a time, so an incomplete epoch means its fence
    // (and every later epoch's) never retired.
    std::sort(markers.begin(), markers.end(),
              [](const Marker &a, const Marker &b) {
                  return a.epoch < b.epoch;
              });
    std::unordered_set<uint64_t> fencedTs;
    for (const auto &m : markers) {
        bool complete = true;
        for (const auto &ref : m.members) {
            auto head = slotHead.find(ref.slot);
            if (head == slotHead.end())
                continue; // slot released: consumed before release
            if (head->second >= ref.toAbs)
                continue; // consumed: provably retired
            auto ts_set = slotEpochTs.find(ref.slot);
            if (ts_set != slotEpochTs.end() && ts_set->second.count(ref.ts))
                continue; // record survives wholly
            complete = false;
            break;
        }
        if (!complete)
            break;
        for (const auto &ref : m.members)
            fencedTs.insert(ref.ts);
    }

    size_t epoch_kept = 0;
    for (auto &txn : epochTxns) {
        if (fencedTs.count(txn.ts)) {
            committed.push_back(std::move(txn));
            ++epoch_kept;
        } else {
            // Un-fenced epoch (or never sealed): dropped atomically
            // with every sibling — no torn batch replays.
            res.unfenced_epoch_discarded++;
        }
    }
    res.epoch_replayed = epoch_kept;

    // Replay in counter order so later transactions' values win.
    std::sort(committed.begin(), committed.end(),
              [](const ReplayTxn &a, const ReplayTxn &b) {
                  return a.ts < b.ts;
              });

    auto &c = scm::ctx();
    for (const auto &txn : committed) {
        for (const auto &[addr, val] : txn.writes) {
            uint64_t v = val;
            c.wtstore(reinterpret_cast<void *>(addr), &v, sizeof(v));
        }
        res.max_ts = std::max(res.max_ts, txn.ts);
    }
    c.fence();
    res.committed_replayed = committed.size();

    logs.forEachActive([&](size_t, log::Rawl &log) { log.truncateAll(); });
    return res;
}

} // namespace mnemosyne::mtm
