#include "mtm/recovery.h"

#include <algorithm>
#include <vector>

#include "mtm/txn.h"
#include "scm/scm.h"

namespace mnemosyne::mtm {

namespace {

struct ReplayTxn {
    uint64_t ts;
    std::vector<std::pair<uint64_t, uint64_t>> writes; // (addr, val)
};

} // namespace

RecoveryResult
recoverTransactions(log::LogManager &logs)
{
    RecoveryResult res;
    std::vector<ReplayTxn> committed;

    logs.forEachActive([&](size_t, log::Rawl &log) {
        auto cur = log.begin();
        std::vector<uint64_t> rec;
        std::vector<std::pair<uint64_t, uint64_t>> pending;
        while (log.readRecord(cur, rec)) {
            if (rec.empty())
                continue;
            if (rec[0] == kTagCommit && rec.size() >= 2) {
                // Staged commit record: [kTagCommit, ts, (addr, val)...].
                // Any `pending` pairs are spilled chunks of the same
                // (oversized) transaction and come first in replay order.
                for (size_t i = 2; i + 1 < rec.size(); i += 2)
                    pending.emplace_back(rec[i], rec[i + 1]);
                committed.push_back(ReplayTxn{rec[1], std::move(pending)});
                pending.clear();
            } else if (rec[0] == kTagAbort) {
                res.aborted_discarded++;
                pending.clear();
            } else {
                // A batched write record: (addr, val) pairs.
                for (size_t i = 0; i + 1 < rec.size(); i += 2)
                    pending.emplace_back(rec[i], rec[i + 1]);
            }
        }
        if (!pending.empty())
            res.torn_discarded++;
    });

    // Replay in counter order so later transactions' values win.
    std::sort(committed.begin(), committed.end(),
              [](const ReplayTxn &a, const ReplayTxn &b) {
                  return a.ts < b.ts;
              });

    auto &c = scm::ctx();
    for (const auto &txn : committed) {
        for (const auto &[addr, val] : txn.writes) {
            uint64_t v = val;
            c.wtstore(reinterpret_cast<void *>(addr), &v, sizeof(v));
        }
        res.max_ts = std::max(res.max_ts, txn.ts);
    }
    c.fence();
    res.committed_replayed = committed.size();

    logs.forEachActive([&](size_t, log::Rawl &log) { log.truncateAll(); });
    return res;
}

} // namespace mnemosyne::mtm
