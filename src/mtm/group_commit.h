/**
 * @file
 * Group commit: the cross-thread fence-epoch combiner.
 *
 * PR 3 reduced a durable commit to ONE log record and ONE fence; under
 * concurrency the remaining ceiling is that every committing thread
 * still pays its own fence even when neighbors fence the same
 * nanosecond.  The combiner amortizes that fence across threads,
 * flat-combining style:
 *
 *  - A committing thread stages its whole-txn commit record into its
 *    per-thread RAWL with CACHED stores (Rawl::setCachedAppends) — no
 *    flush, no fence — and registers the record's byte range as a
 *    member of the currently OPEN epoch.
 *  - One thread at a time (the first waiter, a joiner that filled the
 *    batch, or the truncator's poll) becomes the combiner: it SEALS the
 *    epoch, appends one epoch marker record to a dedicated marker log,
 *    flushes every member's record lines (the Px86 shared-flush-claim
 *    rule lets its fence retire other threads' cached stores), and
 *    issues ONE fence for the whole batch — the epoch is then FLUSHED
 *    and immediately RETIRED: waiters wake, deferred write-backs run,
 *    truncation tasks are released.
 *
 * Durability contract (write-ahead preserved under every persist mode,
 * including the cache-eviction model kRandomSubset):
 *
 *  - No member's in-place data is written back before its epoch's fence
 *    retires — otherwise an "evicted" in-place line could become
 *    durable while the unfenced log record is lost, and recovery could
 *    see a torn epoch it cannot undo.  Synchronous commits therefore
 *    wait for retirement BEFORE their write-back; `commit_async`
 *    returns at logical commit and hands its write-back, lock release,
 *    and truncation enqueue to the combiner (Pending).
 *  - Consequently an async transaction's stripe locks stay held until
 *    its epoch retires.  A conflicting transaction aborts, and the
 *    manager's backoff nudges the truncator, whose poll retires the
 *    epoch — bounded by the epoch timeout, so conflicts make progress.
 *
 * Recovery rule (whole-epoch all-or-nothing): an epoch is replayed iff
 * its marker survives and EVERY member record either survives wholly or
 * was already consumed (headAbs >= member end, i.e. provably retired);
 * replay takes the largest complete prefix of surviving markers and
 * drops everything after — no torn batch is ever visible.
 */

#ifndef MNEMOSYNE_MTM_GROUP_COMMIT_H_
#define MNEMOSYNE_MTM_GROUP_COMMIT_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "log/rawl.h"
#include "mtm/write_set.h"

namespace mnemosyne::mtm {

class TruncationThread;

class EpochCombiner
{
  public:
    /** One committed transaction's record range in its per-thread log. */
    struct Member {
        log::Rawl *log;
        uint64_t fromAbs;   ///< Log position before the record(s).
        uint64_t toAbs;     ///< Log position after the record(s).
        uint64_t ts;        ///< Commit timestamp.
    };

    /** Work a `commit_async` transaction defers to epoch retirement:
     *  in-place write-back, lock release, truncation enqueue. */
    struct Pending {
        std::vector<WriteSet::Item> items;   ///< Addr-sorted new values.
        std::vector<uintptr_t> dataWords;    ///< Sorted dirty word addrs.
        std::vector<uintptr_t> lockSlots;    ///< Stripe locks to release.
        uint64_t ts;
        log::Rawl *log;
        uint64_t toAbs;
    };

    /**
     * @p marker_log must be a dedicated RAWL slot (streaming appends);
     * @p truncator processes the epoch-gated truncation tasks the
     * combiner produces and drives retirement from its poll.
     */
    EpochCombiner(log::Rawl *marker_log, TruncationThread *truncator,
                  size_t max_batch);

    EpochCombiner(const EpochCombiner &) = delete;
    EpochCombiner &operator=(const EpochCombiner &) = delete;

    /**
     * Register a synchronous commit's record with the open epoch.
     * Returns the epoch id; the caller must waitRetired() on it before
     * writing its values back in place.  May combine inline (batch
     * full, flat-combining: the filling arrival does the work).
     */
    uint64_t joinSync(const Member &m);

    /** Register an async commit and its deferred work.  Returns the
     *  epoch ticket; the caller returns to the application at once. */
    uint64_t joinAsync(const Member &m, Pending &&p);

    /**
     * Block until @p epoch has retired.  A free waiter combines the
     * open epoch itself; a waiter parked behind an in-flight round
     * nudges the truncator on every wakeup so a full log can never
     * deadlock the batch (the Rawl::append backoff interaction).
     */
    void waitRetired(uint64_t epoch);

    /** Drain every open/in-flight epoch (durability barrier). */
    void sync();

    /**
     * Non-blocking retirement driver for the truncator's poll: seal and
     * retire the open epoch if one exists and no round is in flight.
     * Returns true if a round ran (the epoch-timeout path for async
     * tickets nobody is waiting on).
     */
    bool tryAdvance();

    /** Highest retired epoch (truncation tasks with epoch <= this are
     *  eligible: their fence has happened). */
    uint64_t
    retiredEpoch() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return retired_;
    }

    /**
     * Committer-thread registration, maintained by the manager's log
     * lease lifecycle (first lease acquire / thread-exit recycle).
     * More than one registered committer is THE signal that a grace nap
     * before sealing can grow the batch.  Instantaneous in-flight-commit
     * counts cannot serve here: a fencing thread serializes its peers'
     * staging on the SCM context, and on a single-core host peers are
     * only ever preempted at scheduler quanta — both make "someone else
     * is committing RIGHT NOW" nearly unobservable even when eight
     * threads hammer commits.  Lease possession is the stable proxy.
     */
    void
    registerCommitter()
    {
        committers_.fetch_add(1, std::memory_order_relaxed);
    }
    void
    unregisterCommitter()
    {
        committers_.fetch_sub(1, std::memory_order_relaxed);
    }

    /** The truncator consumed one member task of @p epoch. */
    void noteConsumed(uint64_t epoch);

    /** Garbage-collect marker records whose epochs are fully consumed
     *  (every member task processed); called by the truncator. */
    void gcMarkers();

    // Introspection (tests).
    uint64_t
    openEpoch() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return openEpoch_;
    }
    size_t
    openMembers() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return members_.size();
    }
    uint64_t
    rounds() const
    {
        std::lock_guard<std::mutex> g(mu_);
        return rounds_;
    }

  private:
    /** Marker-epoch bookkeeping for GC: one entry per retired epoch
     *  still owning a marker record. */
    struct Outstanding {
        uint64_t epoch;
        size_t remaining;       ///< Member tasks not yet consumed.
        uint64_t markerEnd;     ///< Marker-log position after the record.
    };

    /** Seal + flush + fence + retire the open epoch.  Pre: @p g held,
     *  !combining_, !members_.empty().  Unlocks for the I/O. */
    void combineRound(std::unique_lock<std::mutex> &g);

    log::Rawl *markerLog_;
    TruncationThread *truncator_;
    const size_t maxBatch_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    uint64_t openEpoch_ = 1;    ///< members_ belong to this epoch.
    uint64_t retired_ = 0;
    bool combining_ = false;
    uint64_t rounds_ = 0;
    std::atomic<uint32_t> committers_{0}; ///< Threads holding a log lease.
    uint32_t gracers_ = 0;  ///< Waiters napping in grace (under mu_).
    std::vector<Member> members_;
    std::vector<Pending> pendings_;
    std::deque<Outstanding> outstanding_;

    // Combiner-round scratch, guarded by combining_ (one round at a
    // time; the mutex handoff orders successive rounds' accesses).
    std::vector<uint64_t> markerScratch_;
    std::vector<uintptr_t> lineScratch_;
    std::vector<uint64_t> runScratch_;
};

} // namespace mnemosyne::mtm

#endif // MNEMOSYNE_MTM_GROUP_COMMIT_H_
