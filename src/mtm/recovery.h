/**
 * @file
 * Transaction-log recovery (paper section 5).
 *
 * "When a program starts, Mnemosyne replays all completed transactions
 * by writing the data at the logged address.  ...  During recovery,
 * transactions from different threads are replayed in counter order."
 */

#ifndef MNEMOSYNE_MTM_RECOVERY_H_
#define MNEMOSYNE_MTM_RECOVERY_H_

#include <cstddef>
#include <cstdint>

#include "log/log_manager.h"

namespace mnemosyne::mtm {

struct RecoveryResult {
    size_t committed_replayed = 0;  ///< Completed txns redone.
    size_t aborted_discarded = 0;   ///< Explicitly aborted txns skipped.
    size_t torn_discarded = 0;      ///< Unterminated trailing entries.
    uint64_t max_ts = 0;            ///< Highest commit timestamp seen.
};

/**
 * Scan every active per-thread log of @p logs, gather completed
 * transactions, replay their writes in global timestamp order, force
 * them to SCM, and truncate all logs.
 */
RecoveryResult recoverTransactions(log::LogManager &logs);

} // namespace mnemosyne::mtm

#endif // MNEMOSYNE_MTM_RECOVERY_H_
