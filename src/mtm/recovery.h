/**
 * @file
 * Transaction-log recovery (paper section 5).
 *
 * "When a program starts, Mnemosyne replays all completed transactions
 * by writing the data at the logged address.  ...  During recovery,
 * transactions from different threads are replayed in counter order."
 */

#ifndef MNEMOSYNE_MTM_RECOVERY_H_
#define MNEMOSYNE_MTM_RECOVERY_H_

#include <cstddef>
#include <cstdint>

#include "log/log_manager.h"

namespace mnemosyne::mtm {

struct RecoveryResult {
    size_t committed_replayed = 0;  ///< Completed txns redone (all kinds).
    size_t aborted_discarded = 0;   ///< Explicitly aborted txns skipped.
    size_t torn_discarded = 0;      ///< Unterminated trailing entries.
    /** Group-commit txns replayed because their epoch's marker proves
     *  the batch fence happened (subset of committed_replayed). */
    size_t epoch_replayed = 0;
    /** Group-commit txns dropped whole-epoch: their epoch never fenced
     *  (no marker, torn sibling record, or a later incomplete prefix). */
    size_t unfenced_epoch_discarded = 0;
    uint64_t max_ts = 0;            ///< Highest commit timestamp seen.
};

/**
 * Scan every active per-thread log of @p logs, gather completed
 * transactions, replay their writes in global timestamp order, force
 * them to SCM, and truncate all logs.  @p va_base is the persistent
 * region base the compact (v2) records encode their addresses against
 * (redo_codec.h); v1 records carry absolute addresses and ignore it.
 */
RecoveryResult recoverTransactions(log::LogManager &logs,
                                   uintptr_t va_base);

} // namespace mnemosyne::mtm

#endif // MNEMOSYNE_MTM_RECOVERY_H_
