#include "mtm/truncation.h"

#include "obs/obs.h"
#include "obs/trace_ring.h"
#include "scm/scm.h"

namespace mnemosyne::mtm {

namespace {

obs::Histogram &
asyncTruncHist()
{
    static obs::Histogram h{"mtm.async_trunc_ns"};
    return h;
}

} // namespace

TruncationThread::TruncationThread()
    : parentCtx_(&scm::ctx()), worker_([this] { run(); })
{
}

TruncationThread::~TruncationThread()
{
    {
        std::lock_guard<std::mutex> g(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
}

void
TruncationThread::enqueue(Task task)
{
    size_t backlog;
    {
        std::lock_guard<std::mutex> g(mu_);
        queue_.push_back(std::move(task));
        backlog = queue_.size();
    }
    // Do not wake the worker for every commit: on few-core hosts an
    // eager notify preempts the committing thread and puts the flush
    // right back on its critical path.  The worker polls on a short
    // timer and drains during the application's idle periods; only a
    // large backlog (log-space pressure) forces a wakeup.
    if (backlog >= kEagerWakeBacklog)
        cv_.notify_one();
}

void
TruncationThread::drain()
{
    std::unique_lock<std::mutex> g(mu_);
    idleCv_.wait(g, [this] {
        return paused_ || (queue_.empty() && !busy_);
    });
}

void
TruncationThread::pause()
{
    std::lock_guard<std::mutex> g(mu_);
    paused_ = true;
    cv_.notify_all();
    idleCv_.notify_all();
}

void
TruncationThread::resume()
{
    {
        std::lock_guard<std::mutex> g(mu_);
        paused_ = false;
    }
    cv_.notify_all();
}

size_t
TruncationThread::backlog() const
{
    std::lock_guard<std::mutex> g(const_cast<std::mutex &>(mu_));
    return queue_.size();
}

void
TruncationThread::run()
{
    scm::setThreadCtx(parentCtx_);
    obs::setCurrentThreadName("async-trunc");
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> g(mu_);
            cv_.wait_for(g, std::chrono::microseconds(100), [this] {
                return stop_ || (!paused_ && !queue_.empty());
            });
            if (!stop_ && (paused_ || queue_.empty()))
                continue;
            if (stop_ && (queue_.empty() || paused_))
                return;
            if (paused_ || queue_.empty())
                continue;
            task = std::move(queue_.front());
            queue_.pop_front();
            busy_ = true;
        }

        // Force the committed values out to SCM, then release the log
        // space.  The order matters: the redo record may only disappear
        // once the in-place data is durable.
        try {
            const uint64_t t0 = obs::enabled() ? obs::nowNs() : 0;
            auto &c = scm::ctx();
            for (uintptr_t line : task.lines)
                c.flush(reinterpret_cast<const void *>(line));
            c.fence();
            task.log->consumeTo(log::Rawl::Cursor{task.consumeTo},
                                /*do_fence=*/false);
            if (t0)
                asyncTruncHist().record(obs::nowNs() - t0);
        } catch (const scm::CrashNow &) {
            // A crash-injection hook fired on this thread: the machine
            // is "dying"; stop touching SCM and let the test's crash()
            // + recovery take over.
        }

        {
            std::lock_guard<std::mutex> g(mu_);
            busy_ = false;
            ++processed_;
            if (queue_.empty())
                idleCv_.notify_all();
        }
    }
}

} // namespace mnemosyne::mtm
