#include "mtm/truncation.h"

#include <algorithm>

#include "mtm/group_commit.h"
#include "obs/obs.h"
#include "obs/trace_ring.h"
#include "scm/scm.h"

namespace mnemosyne::mtm {

namespace {

obs::Histogram &
asyncTruncHist()
{
    static obs::Histogram h{"mtm.async_trunc_ns"};
    return h;
}

struct TruncCounters {
    /** Dirty words the cross-transaction batch merge collapsed (words
     *  enqueued minus distinct words flushed) — the hot-key dedup win. */
    obs::Counter words_deduped{"trunc.writeback_words_deduped"};
    /** Cache lines the truncator actually flushed. */
    obs::Counter lines_flushed{"trunc.lines_flushed"};
};

TruncCounters &
tctrs()
{
    static TruncCounters c;
    return c;
}

/** Touch at load so the trunc.* keys appear in every snapshot (live
 *  schema checks rely on presence). */
[[maybe_unused]] TruncCounters &gTruncCtrsEager = tctrs();

} // namespace

TruncationThread::TruncationThread(uint64_t poll_us, bool batch_dedup)
    : parentCtx_(&scm::ctx()), pollUs_(poll_us ? poll_us : 100),
      batchDedup_(batch_dedup), worker_([this] { run(); })
{
}

TruncationThread::~TruncationThread()
{
    {
        std::lock_guard<std::mutex> g(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    worker_.join();
}

void
TruncationThread::enqueue(Task task)
{
    size_t backlog;
    {
        std::lock_guard<std::mutex> g(mu_);
        queue_.push_back(std::move(task));
        backlog = queue_.size();
    }
    // Do not wake the worker for every commit: on few-core hosts an
    // eager notify preempts the committing thread and puts the flush
    // right back on its critical path.  The worker polls on a short
    // timer and drains during the application's idle periods; only a
    // large backlog (log-space pressure) forces a wakeup.
    if (backlog >= kEagerWakeBacklog)
        cv_.notify_one();
}

void
TruncationThread::drain()
{
    std::unique_lock<std::mutex> g(mu_);
    idleCv_.wait(g, [this] {
        return paused_ || (queue_.empty() && !busy_);
    });
}

void
TruncationThread::pause()
{
    std::lock_guard<std::mutex> g(mu_);
    paused_ = true;
    cv_.notify_all();
    idleCv_.notify_all();
}

void
TruncationThread::resume()
{
    {
        std::lock_guard<std::mutex> g(mu_);
        paused_ = false;
    }
    cv_.notify_all();
}

size_t
TruncationThread::backlog() const
{
    std::lock_guard<std::mutex> g(const_cast<std::mutex &>(mu_));
    return queue_.size();
}

void
TruncationThread::run()
{
    scm::setThreadCtx(parentCtx_);
    obs::setCurrentThreadName("async-trunc");
    std::vector<Task> batch;
    std::vector<log::Rawl *> consumed_logs;
    std::vector<uintptr_t> word_scratch;
    for (;;) {
        batch.clear();
        bool stopping = false;
        bool paused_now = false;
        {
            std::unique_lock<std::mutex> g(mu_);
            cv_.wait_for(g, std::chrono::microseconds(pollUs_), [this] {
                return stop_ || (!paused_ && !queue_.empty());
            });
            if (stop_ && (queue_.empty() || paused_))
                return;
            stopping = stop_;
            paused_now = paused_;
            if (!paused_ && !queue_.empty()) {
                // Take the ELIGIBLE prefix: tasks whose gating epoch
                // has retired (its fence happened).  Per-log task
                // epochs are monotone in enqueue order, so stopping at
                // the first gated task never strands an eligible one.
                // At stop time the gate is bypassed — the owner retires
                // every epoch (combiner sync) before tearing us down.
                EpochCombiner *comb =
                    combiner_.load(std::memory_order_acquire);
                const uint64_t retired = (comb && !stop_)
                                             ? comb->retiredEpoch()
                                             : ~uint64_t(0);
                while (!queue_.empty() &&
                       queue_.front().epoch <= retired) {
                    batch.push_back(std::move(queue_.front()));
                    queue_.pop_front();
                }
                busy_ = !batch.empty();
            }
        }

        if (!batch.empty()) {
            // Force the committed values out to SCM, then release the
            // log space.  The order matters: a redo record may only
            // disappear once its in-place data is durable.  The batch
            // pays ONE fence — flush every task's lines, fence, then
            // advance each log's head to its furthest consumed
            // position (per-log enqueue order is consume order, so the
            // last task per log carries the furthest position).
            try {
                const uint64_t t0 = obs::enabled() ? obs::nowNs() : 0;
                auto &c = scm::ctx();
                size_t flushed = 0;
                if (batchDedup_) {
                    // Cross-transaction dedup: merge every task's dirty
                    // word set and flush each distinct line ONCE per
                    // batch.  Correct under every persist mode because
                    // the truncator never writes data — the committing
                    // threads already wrote the words back in commit-ts
                    // order (last writer won in memory), so one flush of
                    // the merged line persists exactly the latest value,
                    // and the single fence below still orders every
                    // flush before every consumeTo (write-ahead: no
                    // record is dropped before its data is durable).
                    word_scratch.clear();
                    size_t enqueued = 0;
                    for (const auto &t : batch) {
                        word_scratch.insert(word_scratch.end(),
                                            t.words.begin(),
                                            t.words.end());
                        enqueued += t.words.size();
                    }
                    std::sort(word_scratch.begin(), word_scratch.end());
                    word_scratch.erase(std::unique(word_scratch.begin(),
                                                   word_scratch.end()),
                                       word_scratch.end());
                    tctrs().words_deduped.add(enqueued -
                                              word_scratch.size());
                    uintptr_t prev_line = 0;
                    bool have_line = false;
                    for (uintptr_t w : word_scratch) {
                        const uintptr_t line = w & ~uintptr_t(63);
                        if (have_line && line == prev_line)
                            continue;
                        c.flush(reinterpret_cast<const void *>(line));
                        ++flushed;
                        prev_line = line;
                        have_line = true;
                    }
                } else {
                    // Per-task baseline: every transaction's lines are
                    // flushed individually (coalesced only within the
                    // task, since its words arrive sorted).
                    for (const auto &t : batch) {
                        uintptr_t prev_line = 0;
                        bool have_line = false;
                        for (uintptr_t w : t.words) {
                            const uintptr_t line = w & ~uintptr_t(63);
                            if (have_line && line == prev_line)
                                continue;
                            c.flush(reinterpret_cast<const void *>(line));
                            ++flushed;
                            prev_line = line;
                            have_line = true;
                        }
                    }
                }
                tctrs().lines_flushed.add(flushed);
                c.fence();
                consumed_logs.clear();
                for (size_t i = batch.size(); i-- > 0;) {
                    log::Rawl *log = batch[i].log;
                    if (std::find(consumed_logs.begin(),
                                  consumed_logs.end(),
                                  log) != consumed_logs.end())
                        continue;
                    consumed_logs.push_back(log);
                    log->consumeTo(log::Rawl::Cursor{batch[i].consumeTo},
                                   /*do_fence=*/false);
                }
                if (EpochCombiner *comb =
                        combiner_.load(std::memory_order_acquire)) {
                    for (const auto &t : batch)
                        if (t.epoch != 0)
                            comb->noteConsumed(t.epoch);
                    comb->gcMarkers();
                }
                if (t0)
                    asyncTruncHist().record(obs::nowNs() - t0);
            } catch (const scm::CrashNow &) {
                // A crash-injection hook fired on this thread: the
                // machine is "dying"; stop touching SCM and let the
                // test's crash() + recovery take over.
            }

            {
                std::lock_guard<std::mutex> g(mu_);
                busy_ = false;
                processed_ += batch.size();
                if (queue_.empty())
                    idleCv_.notify_all();
            }
        }

        // Retirement driver: the poll interval doubles as the epoch
        // timeout, so an async ticket nobody waits on still retires
        // promptly.  Skipped while paused — crash tests need a
        // quiescent truncator to keep persistence-event sequences
        // deterministic.
        EpochCombiner *comb = combiner_.load(std::memory_order_acquire);
        if (comb && !stopping && !paused_now)
            comb->tryAdvance();
    }
}

} // namespace mnemosyne::mtm
