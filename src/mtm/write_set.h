/**
 * @file
 * Cache-friendly transaction-local containers for the STM fast path.
 *
 * The barriers in txn.cc run on every instrumented load and store, so
 * their data structures dominate transaction cost once the SCM latency
 * model is factored out.  `std::unordered_map` (the original write set
 * and lock map) costs a heap node per insert, a pointer chase per
 * probe, and a full rehash pass per clear.  DenseMap replaces it with:
 *
 *  - a dense item array in insertion order (contiguous, no per-insert
 *    allocation once warm, cheap to iterate for commit/rollback);
 *  - an open-addressed, linear-probed index of generation-stamped
 *    slots.  clear() just bumps the generation, so descriptor reuse
 *    across transactions is O(1) regardless of how large an earlier
 *    transaction grew the table.
 *
 * WriteSet wraps a DenseMap keyed by word address and adds a 256-bit
 * summary (bloom) filter: read barriers of transactions that write
 * little or nothing answer the read-own-writes question with two bit
 * tests instead of a table probe.
 *
 * Neither container supports erase — transactions only ever add to
 * their write/read/lock sets and then discard them wholesale.
 */

#ifndef MNEMOSYNE_MTM_WRITE_SET_H_
#define MNEMOSYNE_MTM_WRITE_SET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mnemosyne::mtm {

/**
 * Open-addressed insertion-ordered map for transaction-local state.
 * Keys are word addresses or lock-slot pointers cast to uintptr_t;
 * key 0 is valid (occupancy lives in the slot stamps, not the keys).
 */
template <typename Value>
class DenseMap
{
  public:
    struct Item {
        uintptr_t key;
        Value val;
    };

    DenseMap() : slots_(kInitSlots, 0), mask_(kInitSlots - 1) {}

    size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }

    /** O(1): invalidates every slot by bumping the generation; the item
     *  array keeps its capacity for the next transaction. */
    void
    clear()
    {
        items_.clear();
        if (++gen_ == 0) {
            // Generation wrapped (2^32 clears): hard-reset the stamps so
            // slots from the previous epoch cannot alias as occupied.
            std::fill(slots_.begin(), slots_.end(), uint64_t(0));
            gen_ = 1;
        }
    }

    Value *
    find(uintptr_t key)
    {
        size_t i = probeStart(key);
        for (;;) {
            const uint64_t s = slots_[i];
            if (!occupied(s))
                return nullptr;
            Item &it = items_[indexOf(s)];
            if (it.key == key)
                return &it.val;
            i = (i + 1) & mask_;
        }
    }

    const Value *
    find(uintptr_t key) const
    {
        return const_cast<DenseMap *>(this)->find(key);
    }

    /**
     * Insert @p key -> @p val if absent.  Returns the value slot and
     * whether it was inserted (false: pre-existing, value untouched).
     */
    std::pair<Value *, bool>
    insert(uintptr_t key, const Value &val)
    {
        size_t i = probeStart(key);
        for (;;) {
            const uint64_t s = slots_[i];
            if (!occupied(s))
                break;
            Item &it = items_[indexOf(s)];
            if (it.key == key)
                return {&it.val, false};
            i = (i + 1) & mask_;
        }
        if (items_.size() + 1 > (slots_.size() * 7) / 10) {
            grow();
            // Re-probe: the slot index moved with the table.
            i = probeStart(key);
            while (occupied(slots_[i]))
                i = (i + 1) & mask_;
        }
        items_.push_back(Item{key, val});
        slots_[i] = makeSlot(items_.size() - 1);
        return {&items_.back().val, true};
    }

    /** Insert or overwrite; returns true when the key was new. */
    bool
    put(uintptr_t key, const Value &val)
    {
        auto [v, inserted] = insert(key, val);
        if (!inserted)
            *v = val;
        return inserted;
    }

    /** Items in insertion order (valid until the next insert/clear). */
    const Item *begin() const { return items_.data(); }
    const Item *end() const { return items_.data() + items_.size(); }

  private:
    static constexpr size_t kInitSlots = 64;  // power of two

    static uint64_t
    hashOf(uintptr_t key)
    {
        // Multiplicative hash; low bits of word addresses are zero, so
        // mix from the top.
        return (uint64_t(key) >> 3) * 0x9e3779b97f4a7c15ULL >> 17;
    }

    size_t probeStart(uintptr_t key) const { return hashOf(key) & mask_; }

    // Slot layout: high 32 bits generation, low 32 bits item index + 1.
    bool
    occupied(uint64_t s) const
    {
        return (s >> 32) == gen_ && uint32_t(s) != 0;
    }
    static size_t indexOf(uint64_t s) { return size_t(uint32_t(s)) - 1; }
    uint64_t
    makeSlot(size_t idx) const
    {
        return (uint64_t(gen_) << 32) | uint32_t(idx + 1);
    }

    void
    grow()
    {
        slots_.assign(slots_.size() * 2, 0);
        mask_ = slots_.size() - 1;
        ++gen_;
        for (size_t n = 0; n < items_.size(); ++n) {
            size_t i = probeStart(items_[n].key);
            while (occupied(slots_[i]))
                i = (i + 1) & mask_;
            slots_[i] = makeSlot(n);
        }
    }

    std::vector<Item> items_;
    std::vector<uint64_t> slots_;
    size_t mask_;
    uint32_t gen_ = 1;
};

/**
 * The transaction write set: word address -> buffered new value, plus a
 * 256-bit two-probe summary filter answering "definitely not written"
 * without touching the index.
 */
class WriteSet
{
  public:
    using Item = DenseMap<uint64_t>::Item;

    size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }

    void
    clear()
    {
        map_.clear();
        filter_[0] = filter_[1] = filter_[2] = filter_[3] = 0;
    }

    /** Two bit tests; false means the address was never written. */
    bool
    mayContain(uintptr_t addr) const
    {
        const uint64_t h = hash(addr);
        const uint64_t b1 = h & 255, b2 = (h >> 8) & 255;
        return (filter_[b1 >> 6] >> (b1 & 63)) &
               (filter_[b2 >> 6] >> (b2 & 63)) & 1;
    }

    /** Buffered value for @p addr, or nullptr (exact, not probabilistic). */
    uint64_t *
    find(uintptr_t addr)
    {
        return map_.find(addr);
    }

    /** Insert or overwrite the buffered value for @p addr. */
    void
    put(uintptr_t addr, uint64_t val)
    {
        const uint64_t h = hash(addr);
        const uint64_t b1 = h & 255, b2 = (h >> 8) & 255;
        filter_[b1 >> 6] |= uint64_t(1) << (b1 & 63);
        filter_[b2 >> 6] |= uint64_t(1) << (b2 & 63);
        map_.put(addr, val);
    }

    const Item *begin() const { return map_.begin(); }
    const Item *end() const { return map_.end(); }

  private:
    static uint64_t
    hash(uintptr_t addr)
    {
        return (uint64_t(addr) >> 3) * 0xbf58476d1ce4e5b9ULL >> 32;
    }

    DenseMap<uint64_t> map_;
    uint64_t filter_[4] = {0, 0, 0, 0};
};

} // namespace mnemosyne::mtm

#endif // MNEMOSYNE_MTM_WRITE_SET_H_
