#include "mtm/group_commit.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "mtm/lock_table.h"
#include "mtm/truncation.h"
#include "mtm/txn.h"
#include "obs/hdr_histogram.h"
#include "obs/obs.h"
#include "obs/trace_ring.h"
#include "scm/scm.h"

namespace mnemosyne::mtm {

namespace {

struct EpochCounters {
    obs::Counter seals{"mtm.epoch_seals"};
    obs::Counter members{"mtm.epoch_members"};
    obs::Counter async_commits{"mtm.epoch_async_commits"};
    /** Record lines shared between members of one epoch and flushed
     *  once instead of per member (adjacent records in a slot share
     *  boundary lines; the Px86 shared-flush-claim rule makes the
     *  single flush correct for every producer's cached stores). */
    obs::Counter lines_deduped{"mtm.epoch_lines_deduped"};
    /** Members per sealed epoch — the fence-amortization factor. */
    obs::Histogram batch{"mtm.epoch_batch"};
    /** Sync-commit wait for epoch retirement (the fence is on another
     *  thread's clock now; this is what the caller actually pays). */
    obs::HdrHistogram wait_ns{"mtm.epoch_wait_ns"};
};

EpochCounters &
ctrs()
{
    static EpochCounters c;
    return c;
}

/** Touch at load so the mtm.epoch_* keys appear in every snapshot even
 *  when the combiner is off (live schema checks rely on presence). */
[[maybe_unused]] EpochCounters &gEpochCtrsEager = ctrs();

} // namespace

EpochCombiner::EpochCombiner(log::Rawl *marker_log,
                             TruncationThread *truncator, size_t max_batch)
    : markerLog_(marker_log), truncator_(truncator),
      maxBatch_(max_batch ? max_batch : 1)
{
}

uint64_t
EpochCombiner::joinSync(const Member &m)
{
    std::unique_lock<std::mutex> g(mu_);
    members_.push_back(m);
    const uint64_t e = openEpoch_;
    if (gracers_ > 0)
        cv_.notify_all(); // wake gracers: the batch just grew
    if (members_.size() >= maxBatch_ && !combining_)
        combineRound(g); // flat combining: the filling arrival works
    return e;
}

uint64_t
EpochCombiner::joinAsync(const Member &m, Pending &&p)
{
    std::unique_lock<std::mutex> g(mu_);
    members_.push_back(m);
    pendings_.push_back(std::move(p));
    ctrs().async_commits.add(1);
    const uint64_t e = openEpoch_;
    if (gracers_ > 0)
        cv_.notify_all();
    if (members_.size() >= maxBatch_ && !combining_)
        combineRound(g);
    return e;
}

void
EpochCombiner::waitRetired(uint64_t epoch)
{
    std::unique_lock<std::mutex> g(mu_);
    if (retired_ >= epoch)
        return;
    const uint64_t t0 = obs::enabled() ? obs::nowNs() : 0;
    bool graced = false;
    while (retired_ < epoch) {
        assert(epoch <= openEpoch_ && "ticket from the future");
        if (!combining_ && !members_.empty()) {
            // Grace before the seal: with more than one committer
            // thread alive, linger while the batch is still growing so
            // peers can stage and join this epoch — that is where the
            // fence amortization comes from.  The loop seals early once
            // every registered committer is aboard (nobody left to wait
            // for) and gives up after two quiet naps, so a stalled peer
            // costs tens of microseconds, never unbounded latency.  A
            // lone committer skips all of this and seals immediately.
            const size_t quorum = std::min<size_t>(
                maxBatch_, committers_.load(std::memory_order_relaxed));
            if (!graced && quorum > 1) {
                graced = true;
                ++gracers_;
                size_t last = members_.size();
                int quiet = 0;
                while (retired_ < epoch && !combining_ &&
                       members_.size() < quorum) {
                    cv_.wait_for(g, std::chrono::microseconds(10));
                    if (members_.size() > last) {
                        last = members_.size();
                        quiet = 0;
                    } else if (++quiet >= 2) {
                        break;
                    }
                }
                --gracers_;
                continue; // re-evaluate: someone may have combined
            }
            // Free waiter: become the combiner.  The open epoch holds
            // (at least) our member, so one round retires our ticket.
            combineRound(g);
            continue;
        }
        // Parked behind an in-flight round (or an empty epoch that a
        // racing round already swept up).  The combiner may itself be
        // stalled in Rawl::append on a FULL log, whose drain needs the
        // truncator — keep nudging it on every wakeup so log-space
        // pressure can never deadlock the batch.
        if (truncator_)
            truncator_->nudge();
        cv_.wait_for(g, std::chrono::microseconds(200));
    }
    if (t0)
        ctrs().wait_ns.record(obs::nowNs() - t0);
}

void
EpochCombiner::sync()
{
    uint64_t target;
    {
        std::lock_guard<std::mutex> g(mu_);
        if (!members_.empty())
            target = openEpoch_;            // open epoch holds work
        else if (combining_)
            target = openEpoch_ - 1;        // round in flight
        else
            return;                         // nothing pending
    }
    waitRetired(target);
}

bool
EpochCombiner::tryAdvance()
{
    std::unique_lock<std::mutex> g(mu_, std::try_to_lock);
    if (!g.owns_lock() || combining_ || members_.empty())
        return false;
    combineRound(g);
    return true;
}

void
EpochCombiner::combineRound(std::unique_lock<std::mutex> &g)
{
    assert(g.owns_lock() && !combining_ && !members_.empty());
    const uint64_t e = openEpoch_++;
    combining_ = true;
    std::vector<Member> members;
    std::vector<Pending> pendings;
    members.swap(members_);
    pendings.swap(pendings_);
    g.unlock();

    ctrs().seals.add(1);
    ctrs().members.add(members.size());
    ctrs().batch.record(members.size());
    obs::TraceRing::instance().record(obs::TraceEv::kTxnCommit, e,
                                      members.size());

    uint64_t marker_end = 0;
    try {
        auto &c = scm::ctx();

        // 1. Epoch marker: [kTagEpoch, e, n, (slot, to_abs, ts) x n],
        //    streamed (wtstore) into the dedicated marker log — OUR
        //    fence below retires our own stream.
        markerScratch_.clear();
        markerScratch_.push_back(kTagEpoch);
        markerScratch_.push_back(e);
        markerScratch_.push_back(members.size());
        for (const auto &m : members) {
            markerScratch_.push_back(m.log->slotId());
            markerScratch_.push_back(m.toAbs);
            markerScratch_.push_back(m.ts);
        }
        markerLog_->append(markerScratch_.data(), markerScratch_.size());
        marker_end = markerLog_->tailAbs();

        // 2. Flush every member's record lines.  The records were
        //    staged with cached stores, so these flush claims are
        //    SHARED: our fence retires them on the producers' behalf.
        lineScratch_.clear();
        for (const auto &m : members)
            m.log->linesFor(m.fromAbs, m.toAbs, lineScratch_);
        std::sort(lineScratch_.begin(), lineScratch_.end());
        const size_t gathered = lineScratch_.size();
        lineScratch_.erase(
            std::unique(lineScratch_.begin(), lineScratch_.end()),
            lineScratch_.end());
        ctrs().lines_deduped.add(gathered - lineScratch_.size());
        for (uintptr_t line : lineScratch_)
            c.flush(reinterpret_cast<const void *>(line));

        // 3. THE fence — one per epoch.  Marker and every member record
        //    become durable together; this is the epoch's atomicity
        //    point.
        markerLog_->flush();

        // 4. Publish durability so consumers may read the records.
        for (const auto &m : members)
            m.log->publishFlushed(m.toAbs);

        // 5. Deferred async work, now on the safe side of the fence:
        //    in-place write-back (coalesced runs), lock release at the
        //    commit timestamp, then the truncation task.  Order matters
        //    twice over — write-back strictly after the record's fence
        //    (write-ahead), and the task enqueued only after the
        //    write-back, so the truncator can never drop a record whose
        //    data is still nowhere.
        for (auto &p : pendings) {
            for (size_t i = 0; i < p.items.size();) {
                const uintptr_t start = p.items[i].key;
                runScratch_.clear();
                runScratch_.push_back(p.items[i].val);
                size_t j = i + 1;
                while (j < p.items.size() &&
                       p.items[j].key == p.items[j - 1].key + 8) {
                    runScratch_.push_back(p.items[j].val);
                    ++j;
                }
                c.store(reinterpret_cast<void *>(start), runScratch_.data(),
                        runScratch_.size() * sizeof(uint64_t));
                i = j;
            }
            truncator_->enqueue(TruncationThread::Task{
                p.log, p.toAbs, std::move(p.dataWords), e});
        }
    } catch (const scm::CrashNow &) {
        // Crash injection fired mid-round: the machine is dying, stop
        // touching SCM.  Volatile bookkeeping still completes below so
        // in-process waiters (the crash harness's own thread) unblock;
        // recovery decides the epoch's fate from the media alone.
    }

    // Stripe-lock release is VOLATILE state and must happen even when a
    // crash hook cut the round short mid-I/O above — otherwise surviving
    // in-process threads (the harness itself) spin forever on locks
    // owned by a dead epoch.  On the normal path this still orders after
    // every member's in-place write-back, so a reader that observes the
    // new version also observes the new data.
    for (const auto &p : pendings) {
        for (uintptr_t slot : p.lockSlots) {
            reinterpret_cast<LockTable::Word *>(slot)->store(
                LockTable::makeVersion(p.ts), std::memory_order_release);
        }
    }

    g.lock();
    retired_ = e;
    ++rounds_;
    outstanding_.push_back(Outstanding{e, members.size(), marker_end});
    combining_ = false;
    cv_.notify_all();
}

void
EpochCombiner::noteConsumed(uint64_t epoch)
{
    std::lock_guard<std::mutex> g(mu_);
    for (auto &o : outstanding_) {
        if (o.epoch == epoch) {
            assert(o.remaining > 0);
            --o.remaining;
            return;
        }
    }
    assert(false && "consumed task of unknown epoch");
}

void
EpochCombiner::gcMarkers()
{
    uint64_t consume_to = 0;
    {
        std::lock_guard<std::mutex> g(mu_);
        while (!outstanding_.empty() && outstanding_.front().remaining == 0) {
            consume_to = outstanding_.front().markerEnd;
            outstanding_.pop_front();
        }
    }
    // Every member record of the popped prefix is consumed, which
    // implies its epoch's in-place data is flushed and fenced — the
    // markers carry no remaining recovery obligation.  The head advance
    // rides a later fence; losing it only resurrects fully-retired
    // markers, whose replay is idempotent.
    if (consume_to != 0 && consume_to > markerLog_->headAbs())
        markerLog_->consumeTo(log::Rawl::Cursor{consume_to},
                              /*do_fence=*/false);
}

} // namespace mnemosyne::mtm
