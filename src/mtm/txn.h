/**
 * @file
 * Durable memory transactions (paper section 5).
 *
 * The transaction system implements lazy version management with
 * write-ahead redo logging and eager conflict detection with
 * encounter-time locking, in the style of TinySTM:
 *
 *  - New values written during the transaction are buffered in a
 *    volatile open-addressed write set (write_set.h).
 *  - Reads return buffered values for addresses in the write set (a
 *    bloom-filter test answers the common miss without a probe), and
 *    otherwise use timestamp-validated reads against the global lock
 *    array, with lazy snapshot extension.  The read set keeps one entry
 *    per lock stripe, so validation scans unique stripes, not raw reads.
 *  - Commit stages the transaction's redo — every buffered word in the
 *    reserved persistent address range plus the commit timestamp — as
 *    ONE log record [kTagCommit, ts, (addr, val)...] appended to the
 *    per-thread persistent RAWL, and issues ONE fence (the tornbit log
 *    needs no commit-record fence pair).  Torn-append atomicity of the
 *    RAWL makes the single record the atomicity point: recovery either
 *    sees the whole transaction or none of it.  The new values are then
 *    written back in place, locks are released at the commit timestamp,
 *    and the log is truncated either synchronously (flush every written
 *    line, fence, truncate) or asynchronously by the log-manager thread.
 *  - Transactions whose redo exceeds the log's largest record spill
 *    earlier chunks as plain (addr, val) pair records and fold the rest
 *    into the commit record; recovery buffers pair records until the
 *    commit record arrives (and discards them if it never does).
 *
 * In the paper, Intel's STM compiler instruments every load and store
 * inside an `atomic { }` block with calls into this system; here the
 * instrumentation calls are the public read()/write() barriers, and
 * TxnManager::atomic() provides the retry loop the compiler would emit.
 */

#ifndef MNEMOSYNE_MTM_TXN_H_
#define MNEMOSYNE_MTM_TXN_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "log/rawl.h"
#include "mtm/lock_table.h"
#include "mtm/write_set.h"
#include "obs/flight_recorder.h"

namespace mnemosyne::mtm {

class TxnManager;

/** Thrown internally on conflict; TxnManager::atomic() retries. */
struct TxnConflict {
    const char *why;
};

/** Control-record tags in the redo log (values below the persistent
 *  address range, so they cannot collide with logged addresses).
 *
 *  Record shapes recovery understands (recovery.cc):
 *    [kTagCommit, ts, a0, v0, a1, v1, ...]  one whole transaction
 *    [a0, v0, a1, v1, ...]                  spilled chunk of a large txn
 *    [kTagAbort]                            spilled chunks are dead
 *    [kTagCommitEpoch, ts, a0, v0, ...]     group-commit txn: replayed
 *                                           only if its epoch's marker
 *                                           proves the epoch fenced
 *    [kTagEpoch, e, n, (slot, to, ts)*n]    epoch marker (marker log)
 *
 *  Compact (v2) commit records carry their tag in byte 0 of the first
 *  word (kTagCommitV2 / kTagCommitEpochV2, redo_codec.h) and compress
 *  the address column into a varint run-length stream; replay
 *  semantics match their v1 twins.
 */
enum LogTag : uint64_t {
    kTagCommit = 1,
    kTagAbort = 2,
    kTagCommitEpoch = 3,
    kTagEpoch = 4,
};

class Txn
{
  public:
    /** Transactional store of @p len bytes (any alignment). */
    void write(void *addr, const void *src, size_t len);

    /** Transactional load of @p len bytes (any alignment). */
    void read(void *dst, const void *addr, size_t len);

    template <typename T>
    void
    writeT(T *addr, const T &val)
    {
        write(addr, &val, sizeof(T));
    }

    template <typename T>
    T
    readT(const T *addr)
    {
        T v;
        read(&v, addr, sizeof(T));
        return v;
    }

    /** Register a handler run if this transaction (attempt) aborts. */
    void onAbort(std::function<void()> fn) { abortHooks_.push_back(std::move(fn)); }

    /** Register a handler run after this transaction commits durably. */
    void onCommit(std::function<void()> fn) { commitHooks_.push_back(std::move(fn)); }

    uint64_t id() const { return id_; }
    size_t writeSetWords() const { return writeWords_.size(); }

  private:
    friend class TxnManager;

    explicit Txn(TxnManager &mgr) : mgr_(mgr) {}

    void begin(uint64_t id, log::Rawl *log);
    /** Commit; returns the epoch ticket (0 = durable on return: read-
     *  only, volatile-only, or the combiner is off). */
    uint64_t commit();
    void abort(const char *why);      ///< rollback() + throw TxnConflict.
    void rollback();                  ///< Clean up and run abort hooks.
    void reset();

    uint64_t readWord(uintptr_t word_addr);
    void writeWord(uintptr_t word_addr, uint64_t val);
    void recordRead(LockTable::Word &lock, uint64_t seen);
    void acquire(LockTable::Word &lock);
    void validateOrAbort(const char *why);
    void extend();
    void stageAndAppendRedo(uint64_t ts, bool epoch_mode);

    TxnManager &mgr_;
    log::Rawl *log_ = nullptr;
    uint64_t id_ = 0;
    uint64_t startTs_ = 0;
    uint64_t truncSample_ = 0;      ///< Sync-trunc histogram sampling.
    uint64_t commitSample_ = 0;     ///< mtm.commit_ns HDR sampling.
    int depth_ = 0;                 ///< Flat nesting.
    bool active_ = false;
    bool asyncCommit_ = false;      ///< commit_async: defer durability
                                    ///< (and write-back) to the epoch.

    /** Flight-recorder frame for the attempt in flight (nullptr when
     *  the recorder is disabled); owned by the recorder. */
    obs::FlightFrame *flight_ = nullptr;

    /** flight_ when this attempt is sampled for span detail, else
     *  nullptr — the barrier/commit instrumentation sites test this one
     *  pointer, so unsampled transactions take the same null-check
     *  fast path as a disabled recorder. */
    obs::FlightFrame *flightDetail_ = nullptr;

    /** Volatile buffer of new values (lazy version management):
     *  open-addressed word map plus read-own-writes bloom filter. */
    WriteSet writeWords_;

    /** Read set for timestamp validation: lock stripe -> first observed
     *  version, one entry per stripe (deduplicated at insert). */
    DenseMap<uint64_t> readSet_;

    /** Locks held: lock slot -> version to restore on abort. */
    DenseMap<uint64_t> lockPrev_;

    std::vector<std::function<void()>> abortHooks_;
    std::vector<std::function<void()>> commitHooks_;

    // Reusable commit-path scratch: commit allocates nothing once these
    // reach their high-water capacity.
    std::vector<WriteSet::Item> sortScratch_;   ///< Write set, addr-sorted.
    std::vector<WriteSet::Item> persistScratch_; ///< Persistent subset.
    std::vector<uintptr_t> lineScratch_;        ///< Distinct dirty lines.
    std::vector<uint64_t> runScratch_;          ///< Contiguous write-back run.
    std::vector<uint64_t> redoScratch_;         ///< Staged log record.
};

} // namespace mnemosyne::mtm

#endif // MNEMOSYNE_MTM_TXN_H_
