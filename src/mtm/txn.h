/**
 * @file
 * Durable memory transactions (paper section 5).
 *
 * The transaction system implements lazy version management with
 * write-ahead redo logging and eager conflict detection with
 * encounter-time locking, in the style of TinySTM:
 *
 *  - New values written during the transaction and their addresses are
 *    appended to a per-thread persistent redo log (a RAWL) and buffered
 *    in volatile memory.  Only writes to the reserved persistent
 *    address range are logged (a quick range check).
 *  - Reads return buffered values for addresses in the write set, and
 *    otherwise use timestamp-validated reads against the global lock
 *    array, with lazy snapshot extension.
 *  - Commit appends a commit record carrying the global timestamp and
 *    issues ONE fence (the tornbit log needs no commit-record fence
 *    pair); the new values are then written back in place, locks are
 *    released at the commit timestamp, and the log is truncated either
 *    synchronously (flush every written line, fence, truncate) or
 *    asynchronously by the log-manager thread.
 *
 * In the paper, Intel's STM compiler instruments every load and store
 * inside an `atomic { }` block with calls into this system; here the
 * instrumentation calls are the public read()/write() barriers, and
 * TxnManager::atomic() provides the retry loop the compiler would emit.
 */

#ifndef MNEMOSYNE_MTM_TXN_H_
#define MNEMOSYNE_MTM_TXN_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "log/rawl.h"
#include "mtm/lock_table.h"

namespace mnemosyne::mtm {

class TxnManager;

/** Thrown internally on conflict; TxnManager::atomic() retries. */
struct TxnConflict {
    const char *why;
};

/** Control-record tags in the redo log (values below the persistent
 *  address range, so they cannot collide with logged addresses). */
enum LogTag : uint64_t {
    kTagCommit = 1,
    kTagAbort = 2,
};

class Txn
{
  public:
    /** Transactional store of @p len bytes (any alignment). */
    void write(void *addr, const void *src, size_t len);

    /** Transactional load of @p len bytes (any alignment). */
    void read(void *dst, const void *addr, size_t len);

    template <typename T>
    void
    writeT(T *addr, const T &val)
    {
        write(addr, &val, sizeof(T));
    }

    template <typename T>
    T
    readT(const T *addr)
    {
        T v;
        read(&v, addr, sizeof(T));
        return v;
    }

    /** Register a handler run if this transaction (attempt) aborts. */
    void onAbort(std::function<void()> fn) { abortHooks_.push_back(std::move(fn)); }

    /** Register a handler run after this transaction commits durably. */
    void onCommit(std::function<void()> fn) { commitHooks_.push_back(std::move(fn)); }

    uint64_t id() const { return id_; }
    size_t writeSetWords() const { return writeWords_.size(); }

  private:
    friend class TxnManager;

    explicit Txn(TxnManager &mgr) : mgr_(mgr) {}

    void begin(uint64_t id, log::Rawl *log);
    void commit();
    void abort(const char *why);      ///< rollback() + throw TxnConflict.
    void rollback();                  ///< Clean up and run abort hooks.
    void reset();

    uint64_t readWord(uintptr_t word_addr);
    void writeWord(uintptr_t word_addr, uint64_t val);
    void bufferWord(uintptr_t word_addr, uint64_t val);
    void acquire(LockTable::Word &lock);
    void validateOrAbort(const char *why);
    void extend();

    TxnManager &mgr_;
    log::Rawl *log_ = nullptr;
    uint64_t id_ = 0;
    uint64_t startTs_ = 0;
    int depth_ = 0;                 ///< Flat nesting.
    bool active_ = false;

    /** Volatile buffer of new values (lazy version management). */
    std::unordered_map<uintptr_t, uint64_t> writeWords_;

    /** Read set for timestamp validation: (lock, observed value). */
    std::vector<std::pair<LockTable::Word *, uint64_t>> readSet_;

    /** Locks held, with the version to restore on abort. */
    std::unordered_map<LockTable::Word *, uint64_t> lockPrev_;

    std::vector<std::function<void()>> abortHooks_;
    std::vector<std::function<void()>> commitHooks_;

    uint64_t logScratch_[2];
    std::vector<uint64_t> logBatch_;    ///< (addr, val) pairs of one write().
};

} // namespace mnemosyne::mtm

#endif // MNEMOSYNE_MTM_TXN_H_
