/**
 * @file
 * The transaction manager: global clock, lock table, per-thread logs,
 * truncation policy, and recovery (paper section 5).
 */

#ifndef MNEMOSYNE_MTM_TXN_MANAGER_H_
#define MNEMOSYNE_MTM_TXN_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "log/log_manager.h"
#include "mtm/lock_table.h"
#include "mtm/txn.h"
#include "obs/obs.h"
#include "region/region_table.h"

namespace mnemosyne::mtm {

class TruncationThread;
class EpochCombiner;

/** When modified data is forced to SCM and the log truncated. */
enum class Truncation {
    kSync,      ///< At commit: flush every written line, fence, truncate.
    kAsync,     ///< By the log-manager thread, off the critical path.
};

struct TxnConfig {
    Truncation truncation = Truncation::kSync;
    size_t log_slots = 16;          ///< Max threads with live logs.
    size_t log_slot_bytes = 1 << 20;
    size_t lock_bits = 20;
    size_t max_backoff_us = 50;

    /** Compact (v2) redo records: varint run-length address stream
     *  instead of a full 8-byte address per value (redo_codec.h).
     *  Recovery always understands both formats; the knob exists for
     *  A/B bandwidth measurement and as a fallback. */
    bool compact_redo = true;
    /** Cross-transaction write-back dedup in the truncator: merge the
     *  drained batch's dirty-word sets and flush each distinct line
     *  once per batch instead of once per task (truncation.cc). */
    bool trunc_batch_dedup = true;

    /** Group commit: batch committing threads' records into fence
     *  epochs — ONE fence per epoch instead of one per transaction
     *  (group_commit.h).  Truncation always runs through the worker
     *  thread when the combiner is on; the `truncation` knob then only
     *  affects nothing-logged paths. */
    bool group_commit = false;
    size_t epoch_max_batch = 64;    ///< Seal when this many members join.
    /** Epoch retirement latency bound for unwaited (async) tickets:
     *  the truncator polls the combiner at this interval. */
    uint64_t epoch_timeout_us = 100;
    /** atomic() commits async by default (callers use sync()). */
    bool commit_async_default = false;
};

/**
 * Relaxed-durability handle from atomicAsync(): the transaction has
 * committed logically; it is durable once its fence epoch retires.
 * epoch == 0 means there is nothing to wait for (read-only or
 * volatile-only transaction, or the combiner is off — the commit was
 * durable on return).
 */
struct CommitTicket {
    uint64_t epoch = 0;
    bool pending() const { return epoch != 0; }
};

struct TxnStats {
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t readonly_commits = 0;
    uint64_t retries = 0;           ///< Backoff/retry rounds in atomic().
    uint64_t replayed_txns = 0;     ///< Completed txns redone at recovery.
};

class TxnManager
{
  public:
    /**
     * Create the transaction system over @p rl's log region (created on
     * first run), replaying any completed-but-not-flushed transactions
     * left in the per-thread logs by a crash.
     */
    TxnManager(region::RegionLayer &rl, TxnConfig cfg = {});
    ~TxnManager();

    TxnManager(const TxnManager &) = delete;
    TxnManager &operator=(const TxnManager &) = delete;

    /**
     * Run @p fn inside a durable memory transaction — the `atomic { }`
     * construct.  @p fn receives the transaction and must perform all
     * persistent accesses through its read/write barriers; it may be
     * re-executed on conflict.  Nested atomic blocks flatten into the
     * outermost one; a conflict restarts the whole flat transaction.
     */
    template <typename Fn>
    void
    atomic(Fn &&fn)
    {
        for (int attempt = 0;; ++attempt) {
            Txn &tx = begin();
            const bool outer = (tx.depth_ == 1);
            try {
                fn(tx);
                commit(tx);
                return;
            } catch (const TxnConflict &) {
                // The txn is already rolled back; only the outermost
                // level may retry.
                if (!outer)
                    throw;
                nRetries_.add(1);
                backoff(attempt);
            } catch (...) {
                // User exception: roll the whole transaction back at the
                // outermost level and propagate.
                if (outer && tx.active_)
                    tx.rollback();
                else if (!outer)
                    --tx.depth_;
                throw;
            }
        }
    }

    /**
     * Run @p fn as a relaxed-durability transaction (`commit_async`):
     * the commit is LOGICAL on return — values are locked-in and the
     * transaction cannot abort anymore — and becomes durable when its
     * fence epoch retires (at the latest one epoch timeout later).
     * Wait on the returned ticket, or sync(), for durability.  With
     * the combiner off this degrades to a normal durable commit and
     * the ticket is already retired.
     *
     * Note the write-ahead consequence: the in-place write-back and
     * stripe-lock release also happen at retirement, so a conflicting
     * transaction started in the window aborts and retries (bounded by
     * the epoch timeout).  Tickets are process-local and remain valid
     * after the committing thread exits (epochs are manager state, and
     * log leases are recycled, not torn down, on thread exit).
     */
    template <typename Fn>
    CommitTicket
    atomicAsync(Fn &&fn)
    {
        for (int attempt = 0;; ++attempt) {
            Txn &tx = begin();
            const bool outer = (tx.depth_ == 1);
            if (outer)
                tx.asyncCommit_ = true;
            try {
                fn(tx);
                return CommitTicket{commit(tx)};
            } catch (const TxnConflict &) {
                if (!outer)
                    throw;
                nRetries_.add(1);
                backoff(attempt);
            } catch (...) {
                if (outer && tx.active_)
                    tx.rollback();
                else if (!outer)
                    --tx.depth_;
                throw;
            }
        }
    }

    /** Block until @p t's epoch has retired (no-op for retired/empty
     *  tickets). */
    void wait(CommitTicket t);

    /** Durability barrier: drain every open and in-flight epoch, so all
     *  previously returned tickets are retired. */
    void sync();

    /** Begin (or flat-nest into) this thread's transaction. */
    Txn &begin();

    /** Commit the current transaction (or pop one nesting level).
     *  Returns the epoch ticket (0 = durable on return). */
    uint64_t commit(Txn &tx);

    /** The calling thread's active transaction, or nullptr. */
    Txn *current();

    TxnStats stats() const;

    Truncation truncation() const { return cfg_.truncation; }
    void setTruncation(Truncation t);

    region::RegionLayer &regions() { return rl_; }
    LockTable &locks() { return locks_; }

    /** Wait until the async truncation thread has drained all logs. */
    void drainTruncation();

    /** Suspend/resume the async truncation thread (crash tests and the
     *  Figure 6 idle-duty-cycle study). */
    void pauseTruncation();
    void resumeTruncation();

    /** Committed transactions whose logs are not yet truncated. */
    size_t truncationBacklog() const;

    /**
     * Return a per-thread log lease to this manager's free pool; called
     * by the thread-local lease destructor on thread exit.  The slot is
     * NOT released from the persistent LogManager — queued async
     * truncation tasks may still reference the Rawl, and an unconsumed
     * suffix must survive a crash — it is simply handed to the next
     * thread that needs a log, so thread churn no longer exhausts slots.
     */
    void recycleLog(log::Rawl *log);

    /** Logs currently parked in the free pool (tests). */
    size_t recycledLogCount() const;

    /** The fence-epoch combiner, or nullptr when group_commit is off
     *  (tests and the truncator's retirement poll). */
    EpochCombiner *combiner() { return combiner_.get(); }

  private:
    friend class Txn;

    void backoff(int attempt);
    log::Rawl *threadLog();
    log::Rawl *acquireLog();
    size_t recoverLogs();

    region::RegionLayer &rl_;
    TxnConfig cfg_;
    LockTable locks_;
    // Every committing writer bumps clock_ and every begin bumps
    // nextTxnId_; cache-line-align both so the two hottest words in the
    // manager never ping-pong on one line (with each other or with the
    // cold members around them).
    alignas(64) std::atomic<uint64_t> clock_{0};
    alignas(64) std::atomic<uint64_t> nextTxnId_{1};
    std::unique_ptr<log::LogManager> logs_;
    /** Declared before truncator_: the truncator's worker polls the
     *  combiner (tryAdvance), so it must be destroyed FIRST (members
     *  destroy in reverse declaration order). */
    std::unique_ptr<EpochCombiner> combiner_;
    std::unique_ptr<TruncationThread> truncator_;
    const uint64_t mgrId_;

    /** Leases returned by exited threads, ready for reuse. */
    mutable std::mutex freeMu_;
    std::vector<log::Rawl *> freeLogs_;

    // Per-thread-sharded so hot commit/abort paths never contend on one
    // cache line, and stats() sums relaxed per-shard loads (no torn
    // 64-bit reads, unlike the earlier single-atomic scheme on 32-bit).
    obs::ShardedCounter nCommits_, nAborts_, nReadonly_, nRetries_;
    uint64_t nReplayed_ = 0;
    uint64_t statsSourceToken_ = 0;
};

} // namespace mnemosyne::mtm

#endif // MNEMOSYNE_MTM_TXN_MANAGER_H_
