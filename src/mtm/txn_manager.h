/**
 * @file
 * The transaction manager: global clock, lock table, per-thread logs,
 * truncation policy, and recovery (paper section 5).
 */

#ifndef MNEMOSYNE_MTM_TXN_MANAGER_H_
#define MNEMOSYNE_MTM_TXN_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "log/log_manager.h"
#include "mtm/lock_table.h"
#include "mtm/txn.h"
#include "obs/obs.h"
#include "region/region_table.h"

namespace mnemosyne::mtm {

class TruncationThread;

/** When modified data is forced to SCM and the log truncated. */
enum class Truncation {
    kSync,      ///< At commit: flush every written line, fence, truncate.
    kAsync,     ///< By the log-manager thread, off the critical path.
};

struct TxnConfig {
    Truncation truncation = Truncation::kSync;
    size_t log_slots = 16;          ///< Max threads with live logs.
    size_t log_slot_bytes = 1 << 20;
    size_t lock_bits = 20;
    size_t max_backoff_us = 50;
};

struct TxnStats {
    uint64_t commits = 0;
    uint64_t aborts = 0;
    uint64_t readonly_commits = 0;
    uint64_t retries = 0;           ///< Backoff/retry rounds in atomic().
    uint64_t replayed_txns = 0;     ///< Completed txns redone at recovery.
};

class TxnManager
{
  public:
    /**
     * Create the transaction system over @p rl's log region (created on
     * first run), replaying any completed-but-not-flushed transactions
     * left in the per-thread logs by a crash.
     */
    TxnManager(region::RegionLayer &rl, TxnConfig cfg = {});
    ~TxnManager();

    TxnManager(const TxnManager &) = delete;
    TxnManager &operator=(const TxnManager &) = delete;

    /**
     * Run @p fn inside a durable memory transaction — the `atomic { }`
     * construct.  @p fn receives the transaction and must perform all
     * persistent accesses through its read/write barriers; it may be
     * re-executed on conflict.  Nested atomic blocks flatten into the
     * outermost one; a conflict restarts the whole flat transaction.
     */
    template <typename Fn>
    void
    atomic(Fn &&fn)
    {
        for (int attempt = 0;; ++attempt) {
            Txn &tx = begin();
            const bool outer = (tx.depth_ == 1);
            try {
                fn(tx);
                commit(tx);
                return;
            } catch (const TxnConflict &) {
                // The txn is already rolled back; only the outermost
                // level may retry.
                if (!outer)
                    throw;
                nRetries_.add(1);
                backoff(attempt);
            } catch (...) {
                // User exception: roll the whole transaction back at the
                // outermost level and propagate.
                if (outer && tx.active_)
                    tx.rollback();
                else if (!outer)
                    --tx.depth_;
                throw;
            }
        }
    }

    /** Begin (or flat-nest into) this thread's transaction. */
    Txn &begin();

    /** Commit the current transaction (or pop one nesting level). */
    void commit(Txn &tx);

    /** The calling thread's active transaction, or nullptr. */
    Txn *current();

    TxnStats stats() const;

    Truncation truncation() const { return cfg_.truncation; }
    void setTruncation(Truncation t);

    region::RegionLayer &regions() { return rl_; }
    LockTable &locks() { return locks_; }

    /** Wait until the async truncation thread has drained all logs. */
    void drainTruncation();

    /** Suspend/resume the async truncation thread (crash tests and the
     *  Figure 6 idle-duty-cycle study). */
    void pauseTruncation();
    void resumeTruncation();

    /** Committed transactions whose logs are not yet truncated. */
    size_t truncationBacklog() const;

    /**
     * Return a per-thread log lease to this manager's free pool; called
     * by the thread-local lease destructor on thread exit.  The slot is
     * NOT released from the persistent LogManager — queued async
     * truncation tasks may still reference the Rawl, and an unconsumed
     * suffix must survive a crash — it is simply handed to the next
     * thread that needs a log, so thread churn no longer exhausts slots.
     */
    void recycleLog(log::Rawl *log);

    /** Logs currently parked in the free pool (tests). */
    size_t recycledLogCount() const;

  private:
    friend class Txn;

    void backoff(int attempt);
    log::Rawl *threadLog();
    log::Rawl *acquireLog();
    size_t recoverLogs();

    region::RegionLayer &rl_;
    TxnConfig cfg_;
    LockTable locks_;
    // Every committing writer bumps clock_ and every begin bumps
    // nextTxnId_; cache-line-align both so the two hottest words in the
    // manager never ping-pong on one line (with each other or with the
    // cold members around them).
    alignas(64) std::atomic<uint64_t> clock_{0};
    alignas(64) std::atomic<uint64_t> nextTxnId_{1};
    std::unique_ptr<log::LogManager> logs_;
    std::unique_ptr<TruncationThread> truncator_;
    const uint64_t mgrId_;

    /** Leases returned by exited threads, ready for reuse. */
    mutable std::mutex freeMu_;
    std::vector<log::Rawl *> freeLogs_;

    // Per-thread-sharded so hot commit/abort paths never contend on one
    // cache line, and stats() sums relaxed per-shard loads (no torn
    // 64-bit reads, unlike the earlier single-atomic scheme on 32-bit).
    obs::ShardedCounter nCommits_, nAborts_, nReadonly_, nRetries_;
    uint64_t nReplayed_ = 0;
    uint64_t statsSourceToken_ = 0;
};

} // namespace mnemosyne::mtm

#endif // MNEMOSYNE_MTM_TXN_MANAGER_H_
