/**
 * @file
 * Compact (v2) redo-record encoding.
 *
 * The v1 commit record spends 16 bytes of log per buffered word — a full
 * 8-byte address next to every 8-byte value — even though commit-time
 * staging sorts the write set, so the addresses are a monotone sequence
 * with heavy clustering (structure updates and write() memcpy spans are
 * contiguous word runs).  The v2 record replaces the address column with
 * a varint-compressed run-length stream:
 *
 *   word 0   byte 0: tag (kTagCommitV2 | kTagCommitEpochV2)
 *            bytes 1..7: first 7 stream bytes
 *   words 1..S: remaining stream bytes, little-endian packed, zero-padded
 *   words S+1..: the values, in ascending address order
 *
 * The stream is a sequence of LEB128 varints (7 value bits per byte,
 * high bit = continuation):
 *
 *   [ts] [rel_base] [len0] ([gap] [len])*
 *
 * where rel_base = (addr0 - va_base) >> 3 is the first written word
 * relative to the persistent region base (small for the static region's
 * pstatic variables), len0 >= 1 is the first contiguous run's length in
 * words, and each further run is a gap >= 1 (words skipped from the
 * previous run's end) and a length >= 1.
 *
 * There is no item count: the record is self-delimiting.  With R total
 * record words and S(b) = extra stream words after b stream bytes
 * (ceil(max(0, b-7)/8)), the decoder stops after the run that makes
 *
 *     1 + S(bytes consumed) + sum(len)  ==  R .
 *
 * The sum strictly increases per run while S is monotone, so the
 * equality is reached exactly once — at the encoder's boundary — and
 * never overshot by a well-formed record (decode fails otherwise).
 *
 * Tag dispatch is safe against every v1 record shape: v1 control tags
 * are full-word values 1..4, and a spilled pair record begins with a
 * word-aligned address whose low byte is a multiple of 8 — byte 0 of a
 * record's first word equals 5 or 6 only for a v2 record.
 *
 * For the 4-word clustered update (the paper's structure-update shape)
 * the payload drops from 10 words (v1: tag, ts, four address/value
 * pairs) to 5 (tag+stream word, four values) — with RAWL tornbit
 * framing, 12 staged words become 7.
 */

#ifndef MNEMOSYNE_MTM_REDO_CODEC_H_
#define MNEMOSYNE_MTM_REDO_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "mtm/write_set.h"

namespace mnemosyne::mtm::redo {

/** v2 record tags, in BYTE 0 of the record's first word (v1 tags are
 *  full-word values; see txn.h LogTag). */
enum V2Tag : uint8_t {
    kTagCommitV2 = 5,
    kTagCommitEpochV2 = 6,
};

/** Is @p word0 the first word of a v2 record? */
inline bool
isV2(uint64_t word0)
{
    const uint8_t b0 = uint8_t(word0);
    return b0 == kTagCommitV2 || b0 == kTagCommitEpochV2;
}

inline bool
isV2Epoch(uint64_t word0)
{
    return uint8_t(word0) == kTagCommitEpochV2;
}

/**
 * Record words (header + stream + values) that encodeV2 would emit for
 * @p n addr-sorted persistent items.  Pre: n >= 1, every key >= va_base.
 */
size_t encodedWordsV2(uintptr_t va_base, uint64_t ts,
                      const WriteSet::Item *items, size_t n);

/**
 * Encode @p n addr-sorted, duplicate-free items as one v2 record into
 * @p out (replaced, not appended).  Pre: n >= 1.
 */
void encodeV2(uintptr_t va_base, uint64_t ts, bool epoch_mode,
              const WriteSet::Item *items, size_t n,
              std::vector<uint64_t> &out);

/**
 * Decode a v2 record of @p n_words.  Appends the (addr, val) pairs to
 * @p pairs and sets @p ts.  Returns false (leaving @p pairs in an
 * unspecified appended state) if the record is malformed.
 */
bool decodeV2(uintptr_t va_base, const uint64_t *rec, size_t n_words,
              uint64_t &ts, std::vector<std::pair<uint64_t, uint64_t>> &pairs);

} // namespace mnemosyne::mtm::redo

#endif // MNEMOSYNE_MTM_REDO_CODEC_H_
