/**
 * @file
 * The global versioned-lock array used for encounter-time locking
 * (paper section 5).
 *
 * "For encounter-time locking, we use a global array of volatile locks,
 * with each lock covering a portion of the address space."  Each slot is
 * one 64-bit word: bit 0 set means locked (the upper bits then hold the
 * owner's transaction id); bit 0 clear means unlocked (the upper bits
 * hold the version — the commit timestamp of the last transaction that
 * wrote any address covered by the slot).
 */

#ifndef MNEMOSYNE_MTM_LOCK_TABLE_H_
#define MNEMOSYNE_MTM_LOCK_TABLE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>

namespace mnemosyne::mtm {

class LockTable
{
  public:
    using Word = std::atomic<uint64_t>;

    explicit LockTable(size_t bits = 20)
        : shift_(64 - bits), mask_((size_t(1) << bits) - 1),
          locks_(new(std::align_val_t(64)) Word[size_t(1) << bits]())
    {
        // Contention audit: eight locks share each cache line, which is
        // intentional — the multiplicative hash below spreads adjacent
        // address stripes across the whole array, so two hot variables
        // land on the same line only by (1/2^bits-ish) accident, and
        // halving density would double the table's memory for a
        // negligible win.  What DOES matter is the array's base
        // alignment (no straddling) and keeping the table away from the
        // manager's clock/txn-id lines, hence the aligned allocation.
    }

    /** The lock covering @p addr (8-byte stripes, hashed). */
    Word &
    lockFor(const void *addr)
    {
        return locks_[indexFor(addr)];
    }

    /** Slot index of @p addr's lock (exposed for distribution tests). */
    size_t
    indexFor(const void *addr) const
    {
        const auto a = reinterpret_cast<uintptr_t>(addr) >> 3;
        // Fibonacci multiplicative hash: the top `bits` product bits
        // are the best-mixed, so the shift must track the table size —
        // a fixed shift would select mid bits for any other size and
        // silently degrade stripe distribution.
        return (a * 0x9e3779b97f4a7c15ULL) >> shift_;
    }

    static bool isLocked(uint64_t v) { return v & 1; }
    static uint64_t owner(uint64_t v) { return v >> 1; }
    static uint64_t version(uint64_t v) { return v >> 1; }
    static uint64_t makeLocked(uint64_t owner) { return (owner << 1) | 1; }
    static uint64_t makeVersion(uint64_t ts) { return ts << 1; }

    size_t size() const { return mask_ + 1; }

  private:
    struct AlignedDelete {
        void
        operator()(Word *p) const
        {
            ::operator delete[](p, std::align_val_t(64));
        }
    };

    size_t shift_;
    size_t mask_;
    std::unique_ptr<Word[], AlignedDelete> locks_;
};

} // namespace mnemosyne::mtm

#endif // MNEMOSYNE_MTM_LOCK_TABLE_H_
