#include "mtm/txn_manager.h"

#include <array>
#include <cassert>
#include <random>
#include <thread>
#include <unordered_map>

#include "mtm/group_commit.h"
#include "mtm/recovery.h"
#include "mtm/truncation.h"
#include "obs/stats_registry.h"
#include "scm/scm.h"

namespace mnemosyne::mtm {

namespace {

uint64_t
nextMgrId()
{
    static std::atomic<uint64_t> gen{0};
    return gen.fetch_add(1, std::memory_order_relaxed) + 1;
}

/**
 * Live managers by id (ids are never reused).  A thread-exit lease
 * destructor must not touch a manager that died first; the registry
 * mutex is held across the lookup AND the recycle call, so a manager
 * blocked in ~TxnManager on this mutex cannot finish dying mid-recycle.
 * Allocated immortally: thread_local destructors can run during process
 * teardown, after function-local statics are destroyed.
 *
 * Sharded by manager id so a burst of threads exiting under different
 * managers (the thread-churn pattern) does not serialize on one mutex;
 * shards are line-padded so the locks themselves do not false-share.
 */
struct MgrRegistry {
    static constexpr size_t kShards = 8;

    struct alignas(64) Shard {
        std::mutex mu;
        std::unordered_map<uint64_t, TxnManager *> live;
    };
    std::array<Shard, kShards> shards;

    Shard &shardFor(uint64_t id) { return shards[id % kShards]; }
};

MgrRegistry &
mgrRegistry()
{
    static MgrRegistry *r = new MgrRegistry;
    return *r;
}

/**
 * The calling thread's log leases, one per manager it has transacted
 * under.  On thread exit each lease is returned to its manager's free
 * pool — the per-thread-log slot leak this replaces made every
 * short-lived worker thread consume a log slot forever.
 */
struct LogLeases {
    struct Lease {
        uint64_t mgr;
        log::Rawl *log;
    };
    std::vector<Lease> leases;

    log::Rawl *
    find(uint64_t mgr) const
    {
        for (const auto &l : leases)
            if (l.mgr == mgr)
                return l.log;
        return nullptr;
    }

    ~LogLeases()
    {
        auto &reg = mgrRegistry();
        for (const auto &l : leases) {
            auto &shard = reg.shardFor(l.mgr);
            std::lock_guard<std::mutex> g(shard.mu);
            auto it = shard.live.find(l.mgr);
            if (it != shard.live.end())
                it->second->recycleLog(l.log);
        }
    }
};

LogLeases &
threadLeases()
{
    thread_local LogLeases leases;
    return leases;
}

} // namespace

TxnManager::TxnManager(region::RegionLayer &rl, TxnConfig cfg)
    : rl_(rl), cfg_(cfg), locks_(cfg.lock_bits), mgrId_(nextMgrId())
{
    const size_t need =
        log::LogManager::footprint(cfg_.log_slots, cfg_.log_slot_bytes);
    auto log_region = rl.findByFlags(region::kRegionLog);
    if (log_region.addr == nullptr) {
        void *mem = rl.pmap(nullptr, need, region::kRegionLog);
        logs_ = log::LogManager::create(mem, need, cfg_.log_slots,
                                        cfg_.log_slot_bytes);
    } else {
        logs_ = log::LogManager::open(log_region.addr);
        if (!logs_)
            throw std::runtime_error("TxnManager: corrupt log region");
        // Replay all completed but not flushed transactions (the
        // reincarnation step of section 6.3.2).
        const auto res =
            recoverTransactions(*logs_, rl.manager().vaBase());
        nReplayed_ = res.committed_replayed;
        clock_.store(res.max_ts, std::memory_order_release);
        // The previous run's (now empty) logs are released so slots do
        // not leak across restarts.
        std::vector<log::Rawl *> stale;
        logs_->forEachActive(
            [&](size_t, log::Rawl &log) { stale.push_back(&log); });
        for (auto *log : stale)
            logs_->release(log);
    }
    truncator_ = std::make_unique<TruncationThread>(cfg_.epoch_timeout_us,
                                                    cfg_.trunc_batch_dedup);
    if (cfg_.group_commit) {
        // The marker log is an ordinary slot; it stays on streaming
        // appends (the combiner fences its own marker stream).  It is
        // not recycled through the free pool — recovery tells it apart
        // from member logs by record tags, not by slot.
        log::Rawl *marker = logs_->acquire(/*owner_hint=*/0);
        marker->setSpaceWaiter([this] { truncator_->nudge(); });
        combiner_ = std::make_unique<EpochCombiner>(marker, truncator_.get(),
                                                    cfg_.epoch_max_batch);
        truncator_->setCombiner(combiner_.get());
    }

    {
        auto &shard = mgrRegistry().shardFor(mgrId_);
        std::lock_guard<std::mutex> g(shard.mu);
        shard.live.emplace(mgrId_, this);
    }

    // Counts sum across live managers; per-thread arrays are indexed by
    // obs thread ordinal (mod the shard count), matching scm.* shards.
    statsSourceToken_ =
        obs::StatsRegistry::instance().addSource([this](obs::Sink &sink) {
            sink.emit("mtm.commits", nCommits_.sum());
            sink.emit("mtm.aborts", nAborts_.sum());
            sink.emit("mtm.readonly_commits", nReadonly_.sum());
            sink.emit("mtm.retries", nRetries_.sum());
            sink.emit("mtm.replayed_txns", nReplayed_);
            sink.emit("mtm.truncation_backlog",
                      uint64_t(truncationBacklog()));
            auto trim = [](std::array<uint64_t, obs::kMaxThreadShards> a) {
                std::vector<uint64_t> v(a.begin(), a.end());
                while (!v.empty() && v.back() == 0)
                    v.pop_back();
                return v;
            };
            sink.emitArray("mtm.commits.per_thread", trim(nCommits_.perShard()));
            sink.emitArray("mtm.aborts.per_thread", trim(nAborts_.perShard()));
            sink.emitArray("mtm.retries.per_thread", trim(nRetries_.perShard()));
        });
}

TxnManager::~TxnManager()
{
    {
        // After this, exiting threads' lease destructors skip us.
        auto &shard = mgrRegistry().shardFor(mgrId_);
        std::lock_guard<std::mutex> g(shard.mu);
        shard.live.erase(mgrId_);
    }
    obs::StatsRegistry::instance().removeSource(statsSourceToken_);
    // Retire every open epoch first so the gated truncation tasks all
    // become eligible, then drain the worker.
    if (combiner_)
        combiner_->sync();
    if (truncator_)
        truncator_->drain();
}

void
TxnManager::wait(CommitTicket t)
{
    if (combiner_ && t.pending())
        combiner_->waitRetired(t.epoch);
}

void
TxnManager::sync()
{
    if (combiner_)
        combiner_->sync();
}

log::Rawl *
TxnManager::threadLog()
{
    // One-entry cache for the common case (a thread transacting under a
    // single manager); the lease list handles threads that alternate
    // between managers without leaking a slot per switch.
    thread_local uint64_t cached_mgr = 0;
    thread_local log::Rawl *cached_log = nullptr;
    if (cached_mgr == mgrId_ && cached_log)
        return cached_log;
    auto &leases = threadLeases();
    log::Rawl *log = leases.find(mgrId_);
    if (!log) {
        log = acquireLog();
        leases.leases.push_back({mgrId_, log});
        // A fresh lease means a new committer thread: the combiner's
        // grace heuristic keys off how many exist (lease possession is
        // the stable concurrency signal — see EpochCombiner).
        if (combiner_)
            combiner_->registerCommitter();
    }
    cached_mgr = mgrId_;
    cached_log = log;
    return log;
}

log::Rawl *
TxnManager::acquireLog()
{
    {
        std::lock_guard<std::mutex> g(freeMu_);
        if (!freeLogs_.empty()) {
            log::Rawl *log = freeLogs_.back();
            freeLogs_.pop_back();
            return log;
        }
    }
    static std::atomic<uint64_t> ordinal{0};
    log::Rawl *log = logs_->acquire(ordinal.fetch_add(1) + 1);
    // A producer stalled on this (full) log kicks the async truncator
    // instead of waiting out its poll interval.
    log->setSpaceWaiter([this] { truncator_->nudge(); });
    // Member logs stage records with cached stores under group commit
    // so the combiner's single fence can retire them (shared flush
    // claims); streaming stores would only retire under the producer's
    // own fence, which epoch mode never issues.
    if (cfg_.group_commit)
        log->setCachedAppends(true);
    return log;
}

void
TxnManager::recycleLog(log::Rawl *log)
{
    if (combiner_)
        combiner_->unregisterCommitter();
    {
        std::lock_guard<std::mutex> g(freeMu_);
        freeLogs_.push_back(log);
    }
}

size_t
TxnManager::recycledLogCount() const
{
    std::lock_guard<std::mutex> g(freeMu_);
    return freeLogs_.size();
}

namespace {

/** Per-thread transaction descriptors, one per manager instance. */
std::unordered_map<uint64_t, std::unique_ptr<Txn>> &
threadSlots()
{
    thread_local std::unordered_map<uint64_t, std::unique_ptr<Txn>> slots;
    return slots;
}

} // namespace

Txn &
TxnManager::begin()
{
    // One-entry descriptor cache: a hash lookup per transaction is
    // measurable on the fast path (sub-microsecond transactions).
    thread_local uint64_t cached_mgr = 0;
    thread_local Txn *cached_tx = nullptr;
    Txn *tx = cached_tx;
    if (cached_mgr != mgrId_) {
        auto &slot = threadSlots()[mgrId_];
        if (!slot)
            slot = std::unique_ptr<Txn>(new Txn(*this));
        tx = slot.get();
        cached_mgr = mgrId_;
        cached_tx = tx;
    }
    if (tx->active_) {
        ++tx->depth_; // flat nesting
        return *tx;
    }
    tx->begin(nextTxnId_.fetch_add(1, std::memory_order_relaxed),
              threadLog());
    // Relaxed-durability default: atomic() commits async, callers use
    // sync() as the durability barrier.  atomicAsync() overrides to
    // true after begin() regardless.
    tx->asyncCommit_ = cfg_.group_commit && cfg_.commit_async_default;
    return *tx;
}

Txn *
TxnManager::current()
{
    auto it = threadSlots().find(mgrId_);
    if (it == threadSlots().end() || !it->second->active_)
        return nullptr;
    return it->second.get();
}

uint64_t
TxnManager::commit(Txn &tx)
{
    assert(tx.active_);
    if (tx.depth_ > 1) {
        --tx.depth_;
        return 0; // durability rides the outermost commit
    }
    return tx.commit();
}

void
TxnManager::backoff(int attempt)
{
    // With the combiner on, the lock we just lost to may belong to an
    // async transaction that releases only at epoch retirement.  Drive
    // a combine round from THIS thread — a conflict forces the epoch
    // closed — so progress never depends on the truncator's poll (which
    // may be paused, e.g. under the crash sweeper).  Then kick the
    // truncator anyway so the retired epoch's log space is reclaimed.
    if (combiner_) {
        combiner_->tryAdvance();
        truncator_->nudge();
    }
    // Randomized exponential backoff after a conflict abort.
    thread_local std::mt19937_64 rng{std::random_device{}()};
    const uint64_t cap =
        std::min<uint64_t>(cfg_.max_backoff_us, 1ULL << std::min(attempt, 12));
    if (cap == 0)
        return;
    const uint64_t us = rng() % (cap + 1);
    if (us == 0) {
        std::this_thread::yield();
    } else {
        std::this_thread::sleep_for(std::chrono::microseconds(us));
    }
}

void
TxnManager::setTruncation(Truncation t)
{
    drainTruncation();
    cfg_.truncation = t;
}

void
TxnManager::drainTruncation()
{
    // Open epochs gate their truncation tasks; retire them first or the
    // drain would wait on tasks that cannot become eligible.
    if (combiner_)
        combiner_->sync();
    if (truncator_)
        truncator_->drain();
}

void
TxnManager::pauseTruncation()
{
    if (truncator_)
        truncator_->pause();
}

void
TxnManager::resumeTruncation()
{
    if (truncator_)
        truncator_->resume();
}

size_t
TxnManager::truncationBacklog() const
{
    return truncator_ ? truncator_->backlog() : 0;
}

TxnStats
TxnManager::stats() const
{
    TxnStats s;
    s.commits = nCommits_.sum();
    s.aborts = nAborts_.sum();
    s.readonly_commits = nReadonly_.sum();
    s.retries = nRetries_.sum();
    s.replayed_txns = nReplayed_;
    return s;
}

} // namespace mnemosyne::mtm
