#include "mtm/redo_codec.h"

#include <cassert>

namespace mnemosyne::mtm::redo {

namespace {

inline size_t
varintLen(uint64_t v)
{
    size_t n = 1;
    while (v >>= 7)
        ++n;
    return n;
}

/** Extra stream words needed after @p b stream bytes (the first 7 ride
 *  in word 0 next to the tag). */
inline size_t
extraStreamWords(size_t b)
{
    return b <= 7 ? 0 : (b - 7 + 7) / 8;
}

/** Appends LEB128 bytes into the stream lanes of a record being built:
 *  byte i lands in word 0 (bytes 1..7) for i < 7, then packs 8 per
 *  word, growing the record vector on demand — the encoder is single-
 *  pass, no sizing walk (commit is the hot path). */
class StreamWriter
{
  public:
    explicit StreamWriter(std::vector<uint64_t> &out) : out_(out) {}

    void
    putVarint(uint64_t v)
    {
        do {
            uint8_t b = v & 0x7f;
            v >>= 7;
            if (v)
                b |= 0x80;
            putByte(b);
        } while (v);
    }

  private:
    void
    putByte(uint8_t b)
    {
        size_t widx, shift;
        if (nbytes_ < 7) {
            widx = 0;
            shift = 8 * (1 + nbytes_);
        } else {
            widx = 1 + (nbytes_ - 7) / 8;
            shift = 8 * ((nbytes_ - 7) % 8);
            if (widx == out_.size())
                out_.push_back(0);
        }
        assert(widx < out_.size());
        out_[widx] |= uint64_t(b) << shift;
        ++nbytes_;
    }

    std::vector<uint64_t> &out_;
    size_t nbytes_ = 0;
};

/** Reads the stream lanes of a record; bounds-checked against the
 *  record extent (a malformed stream that runs into the value words is
 *  caught by the termination balance check, one that runs off the
 *  record entirely fails here). */
class StreamReader
{
  public:
    StreamReader(const uint64_t *rec, size_t n_words)
        : rec_(rec), nWords_(n_words)
    {
    }

    bool
    getVarint(uint64_t &v)
    {
        v = 0;
        for (int i = 0; i < 10; ++i) {
            uint8_t b;
            if (!getByte(b))
                return false;
            v |= uint64_t(b & 0x7f) << (7 * i);
            if (!(b & 0x80))
                return true;
        }
        return false; // varint longer than any uint64_t
    }

    size_t
    streamWords() const
    {
        return extraStreamWords(nbytes_);
    }

  private:
    bool
    getByte(uint8_t &b)
    {
        size_t widx, shift;
        if (nbytes_ < 7) {
            widx = 0;
            shift = 8 * (1 + nbytes_);
        } else {
            widx = 1 + (nbytes_ - 7) / 8;
            shift = 8 * ((nbytes_ - 7) % 8);
        }
        if (widx >= nWords_)
            return false;
        b = uint8_t(rec_[widx] >> shift);
        ++nbytes_;
        return true;
    }

    const uint64_t *rec_;
    const size_t nWords_;
    size_t nbytes_ = 0;
};

/** Walk the run-length structure of a sorted item array, calling
 *  fn(first_index, run_len, gap_words) per contiguous run (gap_words is
 *  the word distance from the previous run's end; unused for the first
 *  run). */
template <typename Fn>
inline void
forEachRun(const WriteSet::Item *items, size_t n, Fn &&fn)
{
    size_t i = 0;
    uintptr_t prev_end = 0;
    while (i < n) {
        size_t j = i + 1;
        while (j < n && items[j].key == items[j - 1].key + 8)
            ++j;
        const uint64_t gap = i == 0 ? 0 : (items[i].key - prev_end) >> 3;
        fn(i, j - i, gap);
        prev_end = items[j - 1].key + 8;
        i = j;
    }
}

} // namespace

size_t
encodedWordsV2(uintptr_t va_base, uint64_t ts, const WriteSet::Item *items,
               size_t n)
{
    assert(n >= 1 && items[0].key >= va_base);
    size_t bytes = varintLen(ts) +
                   varintLen((items[0].key - va_base) >> 3);
    forEachRun(items, n, [&](size_t i, size_t len, uint64_t gap) {
        if (i != 0)
            bytes += varintLen(gap);
        bytes += varintLen(len);
    });
    return 1 + extraStreamWords(bytes) + n;
}

void
encodeV2(uintptr_t va_base, uint64_t ts, bool epoch_mode,
         const WriteSet::Item *items, size_t n, std::vector<uint64_t> &out)
{
    assert(n >= 1 && items[0].key >= va_base);
    out.clear();
    out.push_back(epoch_mode ? kTagCommitEpochV2 : kTagCommitV2);

    // Single pass: the varint stream grows the record as it goes, then
    // the values land behind it.
    StreamWriter w(out);
    w.putVarint(ts);
    w.putVarint((items[0].key - va_base) >> 3);
    forEachRun(items, n, [&](size_t i, size_t len, uint64_t gap) {
        if (i != 0)
            w.putVarint(gap);
        w.putVarint(uint64_t(len));
    });

    for (size_t i = 0; i < n; ++i)
        out.push_back(items[i].val);
}

bool
decodeV2(uintptr_t va_base, const uint64_t *rec, size_t n_words,
         uint64_t &ts, std::vector<std::pair<uint64_t, uint64_t>> &pairs)
{
    if (n_words < 2 || !isV2(rec[0]))
        return false;

    StreamReader r(rec, n_words);
    uint64_t ts_v, rel, len0;
    if (!r.getVarint(ts_v) || !r.getVarint(rel) || !r.getVarint(len0))
        return false;
    if (len0 == 0)
        return false;

    struct Run {
        uintptr_t start;
        uint64_t len;
    };
    std::vector<Run> runs;
    runs.push_back(Run{va_base + uintptr_t(rel << 3), len0});
    uint64_t total_vals = len0;

    // Termination balance: stop once header + stream words + values
    // account for the whole record.  The value total strictly grows per
    // run while the stream-word count is monotone, so a well-formed
    // record hits the equality exactly at its encoder's boundary; a
    // malformed one overshoots and fails.
    while (1 + r.streamWords() + total_vals != n_words) {
        if (1 + r.streamWords() + total_vals > n_words)
            return false;
        uint64_t gap, len;
        if (!r.getVarint(gap) || !r.getVarint(len))
            return false;
        if (gap == 0 || len == 0)
            return false;
        const Run &prev = runs.back();
        runs.push_back(Run{prev.start + uintptr_t((prev.len + gap) << 3),
                           len});
        total_vals += len;
    }

    const size_t val_base = 1 + r.streamWords();
    size_t vi = val_base;
    for (const Run &run : runs) {
        for (uint64_t k = 0; k < run.len; ++k, ++vi)
            pairs.emplace_back(uint64_t(run.start) + 8 * k, rec[vi]);
    }
    assert(vi == n_words);
    ts = ts_v;
    return true;
}

} // namespace mnemosyne::mtm::redo
