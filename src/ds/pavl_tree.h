/**
 * @file
 * PAvlTree: an AVL tree in persistent memory.
 *
 * This is the structure the paper uses for OpenLDAP's persistent cache
 * (section 6.2): "The cache is organized using an AVL tree, which we
 * make persistent by allocating nodes with pmalloc and placing atomic
 * blocks around updates."  Keys and values are byte strings stored
 * inline in the node; value replacement splices in a freshly allocated
 * node (keeping all persistent writes word-sized and transactional).
 */

#ifndef MNEMOSYNE_DS_PAVL_TREE_H_
#define MNEMOSYNE_DS_PAVL_TREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "runtime/runtime.h"

namespace mnemosyne::ds {

class PAvlTree
{
  public:
    PAvlTree(Runtime &rt, const std::string &name);

    /** Insert or replace, durably, in one transaction. */
    void put(std::string_view key, std::string_view value);

    bool get(std::string_view key, std::string *value);

    bool del(std::string_view key);

    size_t size() const;

    /** In-order visit (inside one read-only transaction). */
    void forEach(
        const std::function<void(std::string_view, std::string_view)> &fn);

    /** Height of the tree (0 when empty), for balance checks. */
    size_t height();

  private:
    struct Node {
        Node *left;
        Node *right;
        uint64_t height;
        uint32_t klen;
        uint32_t vlen;
        char kv[];
    };

    struct Header {
        Node *root;
        uint64_t count;
    };

    Node *makeNode(std::string_view key, std::string_view value);
    std::string readKey(mtm::Txn &tx, Node *n);
    /** <0, 0, >0 as @p key compares to n's key (lazy chunked reads). */
    int cmpKey(mtm::Txn &tx, Node *n, std::string_view key);

    uint64_t heightOf(mtm::Txn &tx, Node *n);
    void fixHeight(mtm::Txn &tx, Node *n);
    Node *rotateRight(mtm::Txn &tx, Node *n);
    Node *rotateLeft(mtm::Txn &tx, Node *n);
    Node *rebalance(mtm::Txn &tx, Node *n);

    Node *insertRec(mtm::Txn &tx, Node *n, std::string_view key,
                    Node *fresh, bool *replaced);
    Node *eraseRec(mtm::Txn &tx, Node *n, std::string_view key,
                   bool *removed);
    Node *extractMin(mtm::Txn &tx, Node *n, Node **min);
    void visitRec(mtm::Txn &tx, Node *n,
                  const std::function<void(std::string_view,
                                           std::string_view)> &fn,
                  std::string &kbuf, std::string &vbuf);

    Runtime &rt_;
    Header *hdr_;
};

} // namespace mnemosyne::ds

#endif // MNEMOSYNE_DS_PAVL_TREE_H_
