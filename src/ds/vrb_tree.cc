// VRbTree is header-only; this translation unit anchors the component.
#include "ds/vrb_tree.h"
