/**
 * @file
 * PHashTable: a chained hash table in persistent memory.
 *
 * This is the microbenchmark structure of paper section 6.3 — "a simple
 * hash table using Mnemosyne transactions for persistence" (modeled on
 * Christopher Clark's C hashtable): a bucket-pointer array plus chain
 * nodes, allocated with pmalloc and updated inside atomic blocks.  A
 * 64-byte insert touches a handful of words over a few cache lines,
 * which is exactly the footprint the paper's cost model (~15 updates to
 * 5 distinct cache lines, ~4.3 us) is built on.
 *
 * Crash-safe allocation uses the runtime's staging slots: the node is
 * allocated and initialized before the linking transaction, which
 * clears the staging slot as it links — so neither a crash nor an
 * abort can leak the node.
 */

#ifndef MNEMOSYNE_DS_PHASH_TABLE_H_
#define MNEMOSYNE_DS_PHASH_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "runtime/runtime.h"

namespace mnemosyne::ds {

class PHashTable
{
  public:
    /**
     * Attach to (or create on first run) the named table.  The header
     * lives in the static region under @p name; buckets and nodes live
     * in the persistent heap.
     *
     * @p instrumented_values selects how a node's key/value bytes are
     * written: through the transaction (default — what the paper's
     * instrumenting compiler emits inside an atomic block, so the bytes
     * are redo-logged and flushed per line), or streamed into the
     * still-private node before it is linked (an optimization the
     * ablation benchmark quantifies; crash atomicity is preserved
     * either way because the node only becomes reachable at commit).
     */
    PHashTable(Runtime &rt, const std::string &name,
               size_t nbuckets = 4096, bool instrumented_values = true);

    /** Insert or replace, durably, in one transaction. */
    void put(std::string_view key, std::string_view value);

    /** Read a value (isolated from concurrent writers). */
    bool get(std::string_view key, std::string *value);

    /** Remove, durably; returns false if absent. */
    bool del(std::string_view key);

    /**
     * Relaxed-durability insert/replace: logically committed on return,
     * durable once the returned ticket's fence epoch retires
     * (rt.wait(ticket) / rt.sync()).  Same-length replaces overwrite the
     * value in place with no allocation, so back-to-back updates from
     * one thread pipeline into shared fence epochs; inserts and
     * resizing replaces allocate, which forces a wait for the previous
     * staged async commit (see Runtime::syncThreadStaging).
     */
    mtm::CommitTicket putAsync(std::string_view key, std::string_view value);

    /** Relaxed-durability remove; *removed (if non-null) tells whether
     *  the key existed. */
    mtm::CommitTicket delAsync(std::string_view key,
                               bool *removed = nullptr);

    /**
     * In-transaction operations, for composing several KV updates into
     * ONE durable transaction (the server's BATCH op).  The caller owns
     * the staging protocol: rt.syncThreadStaging() before the
     * transaction, rt.resetStaging() at the start of each attempt,
     * rt.clearAllocStaging(tx) at the end of the body, and
     * reapStagedFree() / noteStagedAsync(ticket) after commit.  At most
     * Runtime::kStageSlots allocating puts and Runtime::kGraveSlots
     * frees (resizing replaces + deletes) fit in one transaction.
     */
    void putTx(mtm::Txn &tx, std::string_view key, std::string_view value);
    bool getTx(mtm::Txn &tx, std::string_view key, std::string *value);
    bool delTx(mtm::Txn &tx, std::string_view key);

    size_t size() const;

    /** Visit every (key, value) pair inside one read-only transaction
     *  (isolated from concurrent writers; order is bucket order). */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        rt_.atomic([&](mtm::Txn &tx) {
            Node **buckets = tx.readT<Node **>(&hdr_->buckets);
            const uint64_t n = tx.readT<uint64_t>(&hdr_->nbuckets);
            std::string kv;
            for (uint64_t b = 0; b < n; ++b) {
                for (Node *cur = tx.readT<Node *>(&buckets[b]); cur;
                     cur = tx.readT<Node *>(&cur->next)) {
                    const uint32_t kl = tx.readT<uint32_t>(&cur->klen);
                    const uint32_t vl = tx.readT<uint32_t>(&cur->vlen);
                    kv.resize(size_t(kl) + vl);
                    tx.read(kv.data(), cur->kv, kv.size());
                    fn(std::string_view(kv.data(), kl),
                       std::string_view(kv.data() + kl, vl));
                }
            }
        });
    }

  private:
    struct Node {
        Node *next;
        uint64_t hash;
        uint32_t klen;
        uint32_t vlen;
        char kv[];      // key bytes, then value bytes
    };

    struct Header {
        Node **buckets;
        uint64_t nbuckets;
        uint64_t count;
        uint64_t initDone;
    };

    /** Chain position of @p key: node (null if absent) + predecessor. */
    struct ChainPos {
        Node *node;
        Node *prev;
    };

    static uint64_t hashOf(std::string_view key);
    Node *makeNode(std::string_view key, std::string_view value);
    ChainPos findTx(mtm::Txn &tx, Node **bucket, uint64_t h,
                    std::string_view key);
    bool putInPlaceTx(mtm::Txn &tx, std::string_view key,
                      std::string_view value);

    Runtime &rt_;
    Header *hdr_;
    bool instrumentedValues_;
};

} // namespace mnemosyne::ds

#endif // MNEMOSYNE_DS_PHASH_TABLE_H_
