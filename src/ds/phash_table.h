/**
 * @file
 * PHashTable: a chained hash table in persistent memory.
 *
 * This is the microbenchmark structure of paper section 6.3 — "a simple
 * hash table using Mnemosyne transactions for persistence" (modeled on
 * Christopher Clark's C hashtable): a bucket-pointer array plus chain
 * nodes, allocated with pmalloc and updated inside atomic blocks.  A
 * 64-byte insert touches a handful of words over a few cache lines,
 * which is exactly the footprint the paper's cost model (~15 updates to
 * 5 distinct cache lines, ~4.3 us) is built on.
 *
 * Crash-safe allocation uses the runtime's staging slots: the node is
 * allocated and initialized before the linking transaction, which
 * clears the staging slot as it links — so neither a crash nor an
 * abort can leak the node.
 */

#ifndef MNEMOSYNE_DS_PHASH_TABLE_H_
#define MNEMOSYNE_DS_PHASH_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "runtime/runtime.h"

namespace mnemosyne::ds {

class PHashTable
{
  public:
    /**
     * Attach to (or create on first run) the named table.  The header
     * lives in the static region under @p name; buckets and nodes live
     * in the persistent heap.
     *
     * @p instrumented_values selects how a node's key/value bytes are
     * written: through the transaction (default — what the paper's
     * instrumenting compiler emits inside an atomic block, so the bytes
     * are redo-logged and flushed per line), or streamed into the
     * still-private node before it is linked (an optimization the
     * ablation benchmark quantifies; crash atomicity is preserved
     * either way because the node only becomes reachable at commit).
     */
    PHashTable(Runtime &rt, const std::string &name,
               size_t nbuckets = 4096, bool instrumented_values = true);

    /** Insert or replace, durably, in one transaction. */
    void put(std::string_view key, std::string_view value);

    /** Read a value (isolated from concurrent writers). */
    bool get(std::string_view key, std::string *value);

    /** Remove, durably; returns false if absent. */
    bool del(std::string_view key);

    size_t size() const;

  private:
    struct Node {
        Node *next;
        uint64_t hash;
        uint32_t klen;
        uint32_t vlen;
        char kv[];      // key bytes, then value bytes
    };

    struct Header {
        Node **buckets;
        uint64_t nbuckets;
        uint64_t count;
        uint64_t initDone;
    };

    static uint64_t hashOf(std::string_view key);
    Node *makeNode(std::string_view key, std::string_view value);

    Runtime &rt_;
    Header *hdr_;
    bool instrumentedValues_;
};

} // namespace mnemosyne::ds

#endif // MNEMOSYNE_DS_PHASH_TABLE_H_
