#include "ds/prb_tree.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "scm/scm.h"

namespace mnemosyne::ds {

PRbTree::PRbTree(Runtime &rt, const std::string &name) : rt_(rt)
{
    hdr_ = static_cast<Header *>(
        rt_.regions().pstaticVar(name, sizeof(Header), nullptr));
}

void
PRbTree::rotateLeft(mtm::Txn &tx, Node *x)
{
    Node *y = tx.readT<Node *>(&x->right);
    Node *yl = tx.readT<Node *>(&y->left);
    tx.writeT<Node *>(&x->right, yl);
    if (yl)
        tx.writeT<Node *>(&yl->parent, x);
    Node *xp = tx.readT<Node *>(&x->parent);
    tx.writeT<Node *>(&y->parent, xp);
    if (xp == nullptr) {
        tx.writeT<Node *>(&hdr_->root, y);
    } else if (tx.readT<Node *>(&xp->left) == x) {
        tx.writeT<Node *>(&xp->left, y);
    } else {
        tx.writeT<Node *>(&xp->right, y);
    }
    tx.writeT<Node *>(&y->left, x);
    tx.writeT<Node *>(&x->parent, y);
}

void
PRbTree::rotateRight(mtm::Txn &tx, Node *x)
{
    Node *y = tx.readT<Node *>(&x->left);
    Node *yr = tx.readT<Node *>(&y->right);
    tx.writeT<Node *>(&x->left, yr);
    if (yr)
        tx.writeT<Node *>(&yr->parent, x);
    Node *xp = tx.readT<Node *>(&x->parent);
    tx.writeT<Node *>(&y->parent, xp);
    if (xp == nullptr) {
        tx.writeT<Node *>(&hdr_->root, y);
    } else if (tx.readT<Node *>(&xp->right) == x) {
        tx.writeT<Node *>(&xp->right, y);
    } else {
        tx.writeT<Node *>(&xp->left, y);
    }
    tx.writeT<Node *>(&y->right, x);
    tx.writeT<Node *>(&x->parent, y);
}

void
PRbTree::insertFixup(mtm::Txn &tx, Node *z)
{
    while (true) {
        Node *p = tx.readT<Node *>(&z->parent);
        if (p == nullptr || tx.readT<uint64_t>(&p->color) == kBlack)
            break;
        Node *g = tx.readT<Node *>(&p->parent);
        if (tx.readT<Node *>(&g->left) == p) {
            Node *u = tx.readT<Node *>(&g->right);
            if (u && tx.readT<uint64_t>(&u->color) == kRed) {
                tx.writeT<uint64_t>(&p->color, kBlack);
                tx.writeT<uint64_t>(&u->color, kBlack);
                tx.writeT<uint64_t>(&g->color, kRed);
                z = g;
                continue;
            }
            if (tx.readT<Node *>(&p->right) == z) {
                z = p;
                rotateLeft(tx, z);
                p = tx.readT<Node *>(&z->parent);
                g = tx.readT<Node *>(&p->parent);
            }
            tx.writeT<uint64_t>(&p->color, kBlack);
            tx.writeT<uint64_t>(&g->color, kRed);
            rotateRight(tx, g);
        } else {
            Node *u = tx.readT<Node *>(&g->left);
            if (u && tx.readT<uint64_t>(&u->color) == kRed) {
                tx.writeT<uint64_t>(&p->color, kBlack);
                tx.writeT<uint64_t>(&u->color, kBlack);
                tx.writeT<uint64_t>(&g->color, kRed);
                z = g;
                continue;
            }
            if (tx.readT<Node *>(&p->left) == z) {
                z = p;
                rotateRight(tx, z);
                p = tx.readT<Node *>(&z->parent);
                g = tx.readT<Node *>(&p->parent);
            }
            tx.writeT<uint64_t>(&p->color, kBlack);
            tx.writeT<uint64_t>(&g->color, kRed);
            rotateLeft(tx, g);
        }
    }
    Node *root = tx.readT<Node *>(&hdr_->root);
    tx.writeT<uint64_t>(&root->color, kBlack);
}

void
PRbTree::put(uint64_t key, const void *payload, size_t len)
{
    if (len > kPayloadBytes)
        throw std::invalid_argument("PRbTree payload too large");

    rt_.atomic([&](mtm::Txn &tx) {
        rt_.resetStaging();

        // Find the attachment point (or the node to update).
        Node *parent = nullptr;
        Node *cur = tx.readT<Node *>(&hdr_->root);
        while (cur != nullptr) {
            const uint64_t ck = tx.readT<uint64_t>(&cur->key);
            if (ck == key) {
                tx.write(cur->payload, payload, len);
                rt_.clearAllocStaging(tx);
                return;
            }
            parent = cur;
            cur = (key < ck) ? tx.readT<Node *>(&cur->left)
                             : tx.readT<Node *>(&cur->right);
        }

        // Every store of the new node goes through the transaction,
        // as the paper's instrumenting compiler would emit.
        auto *z = static_cast<Node *>(rt_.stageAlloc(sizeof(Node)));
        tx.writeT<Node *>(&z->left, nullptr);
        tx.writeT<Node *>(&z->right, nullptr);
        tx.writeT<Node *>(&z->parent, parent);
        tx.writeT<uint64_t>(&z->key, key);
        tx.writeT<uint64_t>(&z->color, kRed);
        uint8_t padded[kPayloadBytes] = {};
        std::memcpy(padded, payload, len);
        tx.write(z->payload, padded, kPayloadBytes);

        if (parent == nullptr) {
            tx.writeT<Node *>(&hdr_->root, z);
        } else if (key < tx.readT<uint64_t>(&parent->key)) {
            tx.writeT<Node *>(&parent->left, z);
        } else {
            tx.writeT<Node *>(&parent->right, z);
        }
        insertFixup(tx, z);
        tx.writeT<uint64_t>(&hdr_->count,
                            tx.readT<uint64_t>(&hdr_->count) + 1);
        rt_.clearAllocStaging(tx);
    });
}

bool
PRbTree::get(uint64_t key, void *out)
{
    bool found = false;
    rt_.atomic([&](mtm::Txn &tx) {
        found = false;
        Node *cur = tx.readT<Node *>(&hdr_->root);
        while (cur != nullptr) {
            const uint64_t ck = tx.readT<uint64_t>(&cur->key);
            if (ck == key) {
                if (out)
                    tx.read(out, cur->payload, kPayloadBytes);
                found = true;
                return;
            }
            cur = (key < ck) ? tx.readT<Node *>(&cur->left)
                             : tx.readT<Node *>(&cur->right);
        }
    });
    return found;
}

size_t
PRbTree::size() const
{
    return size_t(hdr_->count);
}

void
PRbTree::forEachKey(const std::function<void(uint64_t)> &fn)
{
    rt_.atomic([&](mtm::Txn &tx) {
        // Iterative in-order walk (left-spine stack).
        std::vector<Node *> stack;
        Node *cur = tx.readT<Node *>(&hdr_->root);
        while (cur != nullptr || !stack.empty()) {
            while (cur != nullptr) {
                stack.push_back(cur);
                cur = tx.readT<Node *>(&cur->left);
            }
            cur = stack.back();
            stack.pop_back();
            fn(tx.readT<uint64_t>(&cur->key));
            cur = tx.readT<Node *>(&cur->right);
        }
    });
}

size_t
PRbTree::checkRec(mtm::Txn &tx, Node *n, uint64_t *min, uint64_t *max)
{
    if (n == nullptr)
        return 1;
    const uint64_t key = tx.readT<uint64_t>(&n->key);
    const uint64_t color = tx.readT<uint64_t>(&n->color);
    Node *l = tx.readT<Node *>(&n->left);
    Node *r = tx.readT<Node *>(&n->right);

    if (color == kRed) {
        if ((l && tx.readT<uint64_t>(&l->color) == kRed) ||
            (r && tx.readT<uint64_t>(&r->color) == kRed)) {
            throw std::logic_error("red-red violation");
        }
    }
    uint64_t lmin = key, lmax = key, rmin = key, rmax = key;
    const size_t lb = checkRec(tx, l, &lmin, &lmax);
    const size_t rb = checkRec(tx, r, &rmin, &rmax);
    if (lb != rb)
        throw std::logic_error("black-height violation");
    if ((l && lmax >= key) || (r && rmin <= key))
        throw std::logic_error("ordering violation");
    *min = l ? lmin : key;
    *max = r ? rmax : key;
    return lb + (color == kBlack ? 1 : 0);
}

size_t
PRbTree::checkInvariants()
{
    size_t bh = 0;
    rt_.atomic([&](mtm::Txn &tx) {
        Node *root = tx.readT<Node *>(&hdr_->root);
        if (root && tx.readT<uint64_t>(&root->color) != kBlack)
            throw std::logic_error("root must be black");
        uint64_t mn = 0, mx = 0;
        bh = checkRec(tx, root, &mn, &mx);
    });
    return bh;
}

} // namespace mnemosyne::ds
