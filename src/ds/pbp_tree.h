/**
 * @file
 * PBpTree: a B+ tree in persistent memory — the structure Tokyo
 * Cabinet keeps its data in (paper section 6.2).  The Mnemosyne port
 * of Tokyo Cabinet "allocate[s] its B+ tree in a persistent region and
 * perform[s] updates in durable transactions"; this class is that
 * tree.
 *
 * Keys are short byte strings stored inline in the nodes; values live
 * in separately pmalloc'ed blocks referenced from the leaves.  Splits
 * allocate through the runtime's staging slots, so a crash in the
 * middle of a multi-node split can neither leak nodes nor expose a
 * half-split tree.
 *
 * Deletion removes the key from its leaf without rebalancing (lazy
 * deletion); the paper's insert/delete workload keeps occupancy
 * steady, and structural merging is orthogonal to the persistence
 * mechanisms under study.
 */

#ifndef MNEMOSYNE_DS_PBP_TREE_H_
#define MNEMOSYNE_DS_PBP_TREE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "runtime/runtime.h"

namespace mnemosyne::ds {

class PBpTree
{
  public:
    static constexpr size_t kOrder = 8;        ///< Max keys per node.
    static constexpr size_t kMaxKeyBytes = 24;

    PBpTree(Runtime &rt, const std::string &name);

    /** Insert or replace, durably, in one transaction. */
    void put(std::string_view key, std::string_view value);

    bool get(std::string_view key, std::string *value);

    /** Lazy delete; returns false if the key was absent. */
    bool del(std::string_view key);

    size_t size() const;

    /** Visit all live keys in order (via the leaf chain). */
    void forEach(
        const std::function<void(std::string_view, std::string_view)> &fn);

    /** Validate ordering and structural invariants; returns height. */
    size_t checkInvariants();

  private:
    struct KeySlot {
        uint32_t len;
        char bytes[kMaxKeyBytes];
    };

    struct ValueRef {
        void *block;    ///< pmalloc'ed: [u32 len][bytes]
    };

    struct Node {
        uint64_t isLeaf;
        uint64_t n;                     ///< Live keys in this node.
        KeySlot keys[kOrder];
        union {
            Node *children[kOrder + 1]; // internal
            struct {
                ValueRef vals[kOrder];
                Node *nextLeaf;
            } leaf;
        };
    };

    struct Header {
        Node *root;
        uint64_t count;
    };

    Node *makeNode(bool leaf);
    void *makeValue(mtm::Txn &tx, std::string_view value);
    std::string keyAt(mtm::Txn &tx, Node *n, size_t i);
    std::string readValue(mtm::Txn &tx, void *block);
    void setKey(mtm::Txn &tx, Node *n, size_t i, std::string_view key);

    /** Find child index for @p key in internal node @p n. */
    size_t childIndex(mtm::Txn &tx, Node *n, std::string_view key);

    /** Slot of @p key in leaf (or insertion point); found flag out. */
    size_t leafSlot(mtm::Txn &tx, Node *n, std::string_view key,
                    bool *found);

    void insertIntoLeaf(mtm::Txn &tx, Node *leaf, size_t at,
                        std::string_view key, void *vblock);
    /** Split @p node; returns new right sibling and its separator key. */
    Node *splitNode(mtm::Txn &tx, Node *node, std::string *sep);

    size_t checkRec(mtm::Txn &tx, Node *n, std::string *min,
                    std::string *max);

    Runtime &rt_;
    Header *hdr_;
};

} // namespace mnemosyne::ds

#endif // MNEMOSYNE_DS_PBP_TREE_H_
