#include "ds/pbp_tree.h"

#include <cstring>
#include <stdexcept>
#include <vector>

#include "scm/scm.h"

namespace mnemosyne::ds {

PBpTree::PBpTree(Runtime &rt, const std::string &name) : rt_(rt)
{
    hdr_ = static_cast<Header *>(
        rt_.regions().pstaticVar(name, sizeof(Header), nullptr));
}

PBpTree::Node *
PBpTree::makeNode(bool leaf)
{
    auto *n = static_cast<Node *>(rt_.stageAlloc(sizeof(Node)));
    auto &c = scm::ctx();
    std::vector<uint8_t> zero(sizeof(Node), 0);
    c.wtstore(n, zero.data(), zero.size());
    const uint64_t is_leaf = leaf ? 1 : 0;
    c.wtstore(&n->isLeaf, &is_leaf, sizeof(is_leaf));
    return n;
}

void *
PBpTree::makeValue(mtm::Txn &tx, std::string_view value)
{
    auto *block = rt_.stageAlloc(sizeof(uint32_t) + value.size());
    // Written through the transaction, like every store in the paper's
    // instrumented atomic blocks.
    tx.writeT<uint32_t>(static_cast<uint32_t *>(block),
                        uint32_t(value.size()));
    if (!value.empty()) {
        tx.write(static_cast<uint8_t *>(block) + sizeof(uint32_t),
                 value.data(), value.size());
    }
    return block;
}

std::string
PBpTree::keyAt(mtm::Txn &tx, Node *n, size_t i)
{
    const uint32_t len = tx.readT<uint32_t>(&n->keys[i].len);
    std::string k(len, 0);
    tx.read(k.data(), n->keys[i].bytes, len);
    return k;
}

std::string
PBpTree::readValue(mtm::Txn &tx, void *block)
{
    const auto *p = static_cast<uint8_t *>(block);
    uint32_t len = 0;
    tx.read(&len, p, sizeof(len));
    std::string v(len, 0);
    tx.read(v.data(), p + sizeof(len), len);
    return v;
}

void
PBpTree::setKey(mtm::Txn &tx, Node *n, size_t i, std::string_view key)
{
    tx.writeT<uint32_t>(&n->keys[i].len, uint32_t(key.size()));
    if (!key.empty())
        tx.write(n->keys[i].bytes, key.data(), key.size());
}

size_t
PBpTree::childIndex(mtm::Txn &tx, Node *n, std::string_view key)
{
    const uint64_t count = tx.readT<uint64_t>(&n->n);
    size_t i = 0;
    while (i < count && keyAt(tx, n, i) <= key)
        ++i;
    return i;
}

size_t
PBpTree::leafSlot(mtm::Txn &tx, Node *n, std::string_view key, bool *found)
{
    const uint64_t count = tx.readT<uint64_t>(&n->n);
    size_t i = 0;
    *found = false;
    while (i < count) {
        const std::string k = keyAt(tx, n, i);
        if (k == key) {
            *found = true;
            return i;
        }
        if (k > key)
            return i;
        ++i;
    }
    return i;
}

void
PBpTree::insertIntoLeaf(mtm::Txn &tx, Node *leaf, size_t at,
                        std::string_view key, void *vblock)
{
    const uint64_t count = tx.readT<uint64_t>(&leaf->n);
    for (size_t j = count; j > at; --j) {
        setKey(tx, leaf, j, keyAt(tx, leaf, j - 1));
        tx.writeT<void *>(&leaf->leaf.vals[j].block,
                          tx.readT<void *>(&leaf->leaf.vals[j - 1].block));
    }
    setKey(tx, leaf, at, key);
    tx.writeT<void *>(&leaf->leaf.vals[at].block, vblock);
    tx.writeT<uint64_t>(&leaf->n, count + 1);
}

PBpTree::Node *
PBpTree::splitNode(mtm::Txn &tx, Node *node, std::string *sep)
{
    const bool leaf = tx.readT<uint64_t>(&node->isLeaf) != 0;
    Node *right = makeNode(leaf);
    const uint64_t count = tx.readT<uint64_t>(&node->n);
    const size_t half = size_t(count) / 2;

    if (leaf) {
        // Right gets keys [half, count); the separator is right's first
        // key (it stays in the leaf level).
        size_t out = 0;
        for (size_t i = half; i < count; ++i, ++out) {
            setKey(tx, right, out, keyAt(tx, node, i));
            tx.writeT<void *>(&right->leaf.vals[out].block,
                              tx.readT<void *>(&node->leaf.vals[i].block));
        }
        tx.writeT<uint64_t>(&right->n, count - half);
        tx.writeT<uint64_t>(&node->n, half);
        tx.writeT<Node *>(&right->leaf.nextLeaf,
                          tx.readT<Node *>(&node->leaf.nextLeaf));
        tx.writeT<Node *>(&node->leaf.nextLeaf, right);
        *sep = keyAt(tx, right, 0);
    } else {
        // The separator key[half] moves up; right gets keys
        // (half, count) and children (half, count].
        *sep = keyAt(tx, node, half);
        size_t out = 0;
        for (size_t i = half + 1; i < count; ++i, ++out)
            setKey(tx, right, out, keyAt(tx, node, i));
        for (size_t i = half + 1; i <= count; ++i) {
            tx.writeT<Node *>(&right->children[i - half - 1],
                              tx.readT<Node *>(&node->children[i]));
        }
        tx.writeT<uint64_t>(&right->n, count - half - 1);
        tx.writeT<uint64_t>(&node->n, half);
    }
    return right;
}

void
PBpTree::put(std::string_view key, std::string_view value)
{
    if (key.size() > kMaxKeyBytes)
        throw std::invalid_argument("PBpTree key too long");

    rt_.atomic([&](mtm::Txn &tx) {
        rt_.resetStaging();
        void *vblock = makeValue(tx, value);

        Node *root = tx.readT<Node *>(&hdr_->root);
        if (root == nullptr) {
            Node *leaf = makeNode(true);
            insertIntoLeaf(tx, leaf, 0, key, vblock);
            tx.writeT<Node *>(&hdr_->root, leaf);
            tx.writeT<uint64_t>(&hdr_->count, 1);
            rt_.clearAllocStaging(tx);
            return;
        }

        // Descend, recording the path of (internal node, child index).
        std::vector<std::pair<Node *, size_t>> path;
        Node *n = root;
        while (tx.readT<uint64_t>(&n->isLeaf) == 0) {
            const size_t i = childIndex(tx, n, key);
            path.emplace_back(n, i);
            n = tx.readT<Node *>(&n->children[i]);
        }

        bool found = false;
        size_t at = leafSlot(tx, n, key, &found);
        if (found) {
            void *old = tx.readT<void *>(&n->leaf.vals[at].block);
            tx.writeT<void *>(&n->leaf.vals[at].block, vblock);
            rt_.stageFree(tx, old);
            rt_.clearAllocStaging(tx);
            return;
        }

        if (tx.readT<uint64_t>(&n->n) < kOrder) {
            insertIntoLeaf(tx, n, at, key, vblock);
        } else {
            // Split the leaf, insert into the proper half.
            std::string sep;
            Node *right = splitNode(tx, n, &sep);
            Node *target = (key < sep) ? n : right;
            bool f2 = false;
            insertIntoLeaf(tx, target, leafSlot(tx, target, key, &f2), key,
                           vblock);

            // Propagate the separator upward.
            Node *child = right;
            bool done = false;
            for (auto it = path.rbegin(); it != path.rend(); ++it) {
                Node *p = it->first;
                size_t i = it->second;
                if (tx.readT<uint64_t>(&p->n) < kOrder) {
                    const uint64_t pc = tx.readT<uint64_t>(&p->n);
                    for (size_t j = size_t(pc); j > i; --j) {
                        setKey(tx, p, j, keyAt(tx, p, j - 1));
                        tx.writeT<Node *>(
                            &p->children[j + 1],
                            tx.readT<Node *>(&p->children[j]));
                    }
                    setKey(tx, p, i, sep);
                    tx.writeT<Node *>(&p->children[i + 1], child);
                    tx.writeT<uint64_t>(&p->n, pc + 1);
                    done = true;
                    break;
                }
                // Full internal node: split it first, then place the
                // pending separator into the correct half.
                std::string psep;
                Node *pright = splitNode(tx, p, &psep);
                Node *target_p = (sep < psep) ? p : pright;
                size_t ti = childIndex(tx, target_p, sep);
                const uint64_t tc = tx.readT<uint64_t>(&target_p->n);
                for (size_t j = size_t(tc); j > ti; --j) {
                    setKey(tx, target_p, j, keyAt(tx, target_p, j - 1));
                    tx.writeT<Node *>(
                        &target_p->children[j + 1],
                        tx.readT<Node *>(&target_p->children[j]));
                }
                setKey(tx, target_p, ti, sep);
                tx.writeT<Node *>(&target_p->children[ti + 1], child);
                tx.writeT<uint64_t>(&target_p->n, tc + 1);

                sep = psep;
                child = pright;
            }
            if (!done) {
                Node *new_root = makeNode(false);
                setKey(tx, new_root, 0, sep);
                tx.writeT<Node *>(&new_root->children[0],
                                  tx.readT<Node *>(&hdr_->root));
                tx.writeT<Node *>(&new_root->children[1], child);
                tx.writeT<uint64_t>(&new_root->n, 1);
                tx.writeT<Node *>(&hdr_->root, new_root);
            }
        }
        tx.writeT<uint64_t>(&hdr_->count,
                            tx.readT<uint64_t>(&hdr_->count) + 1);
        rt_.clearAllocStaging(tx);
    });
    rt_.reapStagedFree();
}

bool
PBpTree::get(std::string_view key, std::string *value)
{
    bool found = false;
    rt_.atomic([&](mtm::Txn &tx) {
        found = false;
        Node *n = tx.readT<Node *>(&hdr_->root);
        if (n == nullptr)
            return;
        while (tx.readT<uint64_t>(&n->isLeaf) == 0)
            n = tx.readT<Node *>(&n->children[childIndex(tx, n, key)]);
        size_t at = leafSlot(tx, n, key, &found);
        if (found && value) {
            *value =
                readValue(tx, tx.readT<void *>(&n->leaf.vals[at].block));
        }
    });
    return found;
}

bool
PBpTree::del(std::string_view key)
{
    bool removed = false;
    rt_.atomic([&](mtm::Txn &tx) {
        removed = false;
        Node *n = tx.readT<Node *>(&hdr_->root);
        if (n == nullptr)
            return;
        while (tx.readT<uint64_t>(&n->isLeaf) == 0)
            n = tx.readT<Node *>(&n->children[childIndex(tx, n, key)]);
        bool found = false;
        const size_t at = leafSlot(tx, n, key, &found);
        if (!found)
            return;
        rt_.stageFree(tx, tx.readT<void *>(&n->leaf.vals[at].block));
        const uint64_t count = tx.readT<uint64_t>(&n->n);
        for (size_t j = at; j + 1 < size_t(count); ++j) {
            setKey(tx, n, j, keyAt(tx, n, j + 1));
            tx.writeT<void *>(&n->leaf.vals[j].block,
                              tx.readT<void *>(&n->leaf.vals[j + 1].block));
        }
        tx.writeT<uint64_t>(&n->n, count - 1);
        tx.writeT<uint64_t>(&hdr_->count,
                            tx.readT<uint64_t>(&hdr_->count) - 1);
        removed = true;
    });
    rt_.reapStagedFree();
    return removed;
}

size_t
PBpTree::size() const
{
    return size_t(hdr_->count);
}

void
PBpTree::forEach(
    const std::function<void(std::string_view, std::string_view)> &fn)
{
    rt_.atomic([&](mtm::Txn &tx) {
        Node *n = tx.readT<Node *>(&hdr_->root);
        if (n == nullptr)
            return;
        while (tx.readT<uint64_t>(&n->isLeaf) == 0)
            n = tx.readT<Node *>(&n->children[0]);
        while (n != nullptr) {
            const uint64_t count = tx.readT<uint64_t>(&n->n);
            for (size_t i = 0; i < size_t(count); ++i) {
                const std::string k = keyAt(tx, n, i);
                const std::string v = readValue(
                    tx, tx.readT<void *>(&n->leaf.vals[i].block));
                fn(k, v);
            }
            n = tx.readT<Node *>(&n->leaf.nextLeaf);
        }
    });
}

size_t
PBpTree::checkRec(mtm::Txn &tx, Node *n, std::string *min, std::string *max)
{
    const uint64_t count = tx.readT<uint64_t>(&n->n);
    if (count > kOrder)
        throw std::logic_error("node overflow");
    for (size_t i = 1; i < size_t(count); ++i) {
        if (keyAt(tx, n, i - 1) >= keyAt(tx, n, i))
            throw std::logic_error("keys out of order");
    }
    if (tx.readT<uint64_t>(&n->isLeaf)) {
        if (count > 0) {
            *min = keyAt(tx, n, 0);
            *max = keyAt(tx, n, size_t(count) - 1);
        }
        return 1;
    }
    size_t depth = 0;
    for (size_t i = 0; i <= size_t(count); ++i) {
        Node *c = tx.readT<Node *>(&n->children[i]);
        if (c == nullptr)
            throw std::logic_error("null child");
        std::string cmin, cmax;
        const size_t d = checkRec(tx, c, &cmin, &cmax);
        if (depth == 0)
            depth = d;
        else if (d != depth)
            throw std::logic_error("uneven leaf depth");
        if (i > 0 && !cmin.empty() && cmin < keyAt(tx, n, i - 1))
            throw std::logic_error("child under separator");
        if (i < size_t(count) && !cmax.empty() &&
            cmax >= keyAt(tx, n, i)) {
            throw std::logic_error("child over separator");
        }
        if (i == 0 && !cmin.empty())
            *min = cmin;
        if (i == size_t(count) && !cmax.empty())
            *max = cmax;
    }
    return depth + 1;
}

size_t
PBpTree::checkInvariants()
{
    size_t h = 0;
    rt_.atomic([&](mtm::Txn &tx) {
        Node *root = tx.readT<Node *>(&hdr_->root);
        if (root == nullptr) {
            h = 0;
            return;
        }
        std::string mn, mx;
        h = checkRec(tx, root, &mn, &mx);
    });
    return h;
}

} // namespace mnemosyne::ds
