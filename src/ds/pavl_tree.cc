#include "ds/pavl_tree.h"

#include <algorithm>
#include <cstring>

#include "scm/scm.h"

namespace mnemosyne::ds {

PAvlTree::PAvlTree(Runtime &rt, const std::string &name) : rt_(rt)
{
    hdr_ = static_cast<Header *>(
        rt_.regions().pstaticVar(name, sizeof(Header), nullptr));
}

PAvlTree::Node *
PAvlTree::makeNode(std::string_view key, std::string_view value)
{
    auto *node = static_cast<Node *>(
        rt_.stageAlloc(sizeof(Node) + key.size() + value.size()));
    auto &c = scm::ctx();
    Node init;
    init.left = nullptr;
    init.right = nullptr;
    init.height = 1;
    init.klen = uint32_t(key.size());
    init.vlen = uint32_t(value.size());
    c.wtstore(node, &init, sizeof(Node));
    // kv bytes are written transactionally by put().
    return node;
}

std::string
PAvlTree::readKey(mtm::Txn &tx, Node *n)
{
    const uint32_t klen = tx.readT<uint32_t>(&n->klen);
    std::string k(klen, 0);
    tx.read(k.data(), n->kv, klen);
    return k;
}

int
PAvlTree::cmpKey(mtm::Txn &tx, Node *n, std::string_view key)
{
    // Lazy chunked comparison: read the stored key 8 bytes at a time
    // and stop at the first differing chunk.
    const uint32_t klen = tx.readT<uint32_t>(&n->klen);
    const size_t common = std::min<size_t>(klen, key.size());
    char chunk[8];
    for (size_t off = 0; off < common; off += 8) {
        const size_t nb = std::min<size_t>(8, common - off);
        tx.read(chunk, n->kv + off, nb);
        const int c = std::memcmp(key.data() + off, chunk, nb);
        if (c != 0)
            return c;
    }
    if (key.size() == klen)
        return 0;
    return key.size() < klen ? -1 : 1;
}

uint64_t
PAvlTree::heightOf(mtm::Txn &tx, Node *n)
{
    return n ? tx.readT<uint64_t>(&n->height) : 0;
}

void
PAvlTree::fixHeight(mtm::Txn &tx, Node *n)
{
    const uint64_t hl = heightOf(tx, tx.readT<Node *>(&n->left));
    const uint64_t hr = heightOf(tx, tx.readT<Node *>(&n->right));
    tx.writeT<uint64_t>(&n->height, 1 + std::max(hl, hr));
}

PAvlTree::Node *
PAvlTree::rotateRight(mtm::Txn &tx, Node *n)
{
    Node *l = tx.readT<Node *>(&n->left);
    tx.writeT<Node *>(&n->left, tx.readT<Node *>(&l->right));
    tx.writeT<Node *>(&l->right, n);
    fixHeight(tx, n);
    fixHeight(tx, l);
    return l;
}

PAvlTree::Node *
PAvlTree::rotateLeft(mtm::Txn &tx, Node *n)
{
    Node *r = tx.readT<Node *>(&n->right);
    tx.writeT<Node *>(&n->right, tx.readT<Node *>(&r->left));
    tx.writeT<Node *>(&r->left, n);
    fixHeight(tx, n);
    fixHeight(tx, r);
    return r;
}

PAvlTree::Node *
PAvlTree::rebalance(mtm::Txn &tx, Node *n)
{
    fixHeight(tx, n);
    Node *l = tx.readT<Node *>(&n->left);
    Node *r = tx.readT<Node *>(&n->right);
    const int64_t balance =
        int64_t(heightOf(tx, l)) - int64_t(heightOf(tx, r));
    if (balance > 1) {
        if (heightOf(tx, tx.readT<Node *>(&l->left)) <
            heightOf(tx, tx.readT<Node *>(&l->right))) {
            tx.writeT<Node *>(&n->left, rotateLeft(tx, l));
        }
        return rotateRight(tx, n);
    }
    if (balance < -1) {
        if (heightOf(tx, tx.readT<Node *>(&r->right)) <
            heightOf(tx, tx.readT<Node *>(&r->left))) {
            tx.writeT<Node *>(&n->right, rotateRight(tx, r));
        }
        return rotateLeft(tx, n);
    }
    return n;
}

PAvlTree::Node *
PAvlTree::insertRec(mtm::Txn &tx, Node *n, std::string_view key,
                    Node *fresh, bool *replaced)
{
    if (n == nullptr)
        return fresh;
    const int cmp = cmpKey(tx, n, key);
    if (cmp == 0) {
        // Replace by splicing in the fresh node with n's shape.
        tx.writeT<Node *>(&fresh->left, tx.readT<Node *>(&n->left));
        tx.writeT<Node *>(&fresh->right, tx.readT<Node *>(&n->right));
        tx.writeT<uint64_t>(&fresh->height, tx.readT<uint64_t>(&n->height));
        rt_.stageFree(tx, n);
        *replaced = true;
        return fresh;
    }
    if (cmp < 0) {
        tx.writeT<Node *>(
            &n->left,
            insertRec(tx, tx.readT<Node *>(&n->left), key, fresh, replaced));
    } else {
        tx.writeT<Node *>(
            &n->right,
            insertRec(tx, tx.readT<Node *>(&n->right), key, fresh,
                      replaced));
    }
    return rebalance(tx, n);
}

void
PAvlTree::put(std::string_view key, std::string_view value)
{
    rt_.atomic([&](mtm::Txn &tx) {
        rt_.resetStaging();
        Node *fresh = makeNode(key, value);
        tx.write(fresh->kv, key.data(), key.size());
        tx.write(fresh->kv + key.size(), value.data(), value.size());
        bool replaced = false;
        Node *root = insertRec(tx, tx.readT<Node *>(&hdr_->root), key,
                               fresh, &replaced);
        tx.writeT<Node *>(&hdr_->root, root);
        if (!replaced) {
            tx.writeT<uint64_t>(&hdr_->count,
                                tx.readT<uint64_t>(&hdr_->count) + 1);
        }
        rt_.clearAllocStaging(tx);
    });
    rt_.reapStagedFree();
}

bool
PAvlTree::get(std::string_view key, std::string *value)
{
    bool found = false;
    rt_.atomic([&](mtm::Txn &tx) {
        found = false;
        Node *n = tx.readT<Node *>(&hdr_->root);
        while (n != nullptr) {
            const int cmp = cmpKey(tx, n, key);
            if (cmp == 0) {
                if (value) {
                    const uint32_t vlen = tx.readT<uint32_t>(&n->vlen);
                    const uint32_t klen = tx.readT<uint32_t>(&n->klen);
                    value->resize(vlen);
                    tx.read(value->data(), n->kv + klen, vlen);
                }
                found = true;
                return;
            }
            n = (cmp < 0) ? tx.readT<Node *>(&n->left)
                          : tx.readT<Node *>(&n->right);
        }
    });
    return found;
}

PAvlTree::Node *
PAvlTree::extractMin(mtm::Txn &tx, Node *n, Node **min)
{
    Node *l = tx.readT<Node *>(&n->left);
    if (l == nullptr) {
        *min = n;
        return tx.readT<Node *>(&n->right);
    }
    tx.writeT<Node *>(&n->left, extractMin(tx, l, min));
    return rebalance(tx, n);
}

PAvlTree::Node *
PAvlTree::eraseRec(mtm::Txn &tx, Node *n, std::string_view key,
                   bool *removed)
{
    if (n == nullptr)
        return nullptr;
    const int cmp = cmpKey(tx, n, key);
    if (cmp == 0) {
        *removed = true;
        rt_.stageFree(tx, n);
        Node *l = tx.readT<Node *>(&n->left);
        Node *r = tx.readT<Node *>(&n->right);
        if (l == nullptr)
            return r;
        if (r == nullptr)
            return l;
        Node *min = nullptr;
        Node *r2 = extractMin(tx, r, &min);
        tx.writeT<Node *>(&min->left, l);
        tx.writeT<Node *>(&min->right, r2);
        return rebalance(tx, min);
    }
    if (cmp < 0) {
        tx.writeT<Node *>(
            &n->left,
            eraseRec(tx, tx.readT<Node *>(&n->left), key, removed));
    } else {
        tx.writeT<Node *>(
            &n->right,
            eraseRec(tx, tx.readT<Node *>(&n->right), key, removed));
    }
    return rebalance(tx, n);
}

bool
PAvlTree::del(std::string_view key)
{
    bool removed = false;
    rt_.atomic([&](mtm::Txn &tx) {
        removed = false;
        Node *root =
            eraseRec(tx, tx.readT<Node *>(&hdr_->root), key, &removed);
        tx.writeT<Node *>(&hdr_->root, root);
        if (removed) {
            tx.writeT<uint64_t>(&hdr_->count,
                                tx.readT<uint64_t>(&hdr_->count) - 1);
        }
    });
    rt_.reapStagedFree();
    return removed;
}

size_t
PAvlTree::size() const
{
    return size_t(hdr_->count);
}

size_t
PAvlTree::height()
{
    size_t h = 0;
    rt_.atomic([&](mtm::Txn &tx) {
        h = size_t(heightOf(tx, tx.readT<Node *>(&hdr_->root)));
    });
    return h;
}

void
PAvlTree::visitRec(mtm::Txn &tx, Node *n,
                   const std::function<void(std::string_view,
                                            std::string_view)> &fn,
                   std::string &kbuf, std::string &vbuf)
{
    if (n == nullptr)
        return;
    visitRec(tx, tx.readT<Node *>(&n->left), fn, kbuf, vbuf);
    const uint32_t klen = tx.readT<uint32_t>(&n->klen);
    const uint32_t vlen = tx.readT<uint32_t>(&n->vlen);
    kbuf.resize(klen);
    vbuf.resize(vlen);
    tx.read(kbuf.data(), n->kv, klen);
    tx.read(vbuf.data(), n->kv + klen, vlen);
    fn(kbuf, vbuf);
    visitRec(tx, tx.readT<Node *>(&n->right), fn, kbuf, vbuf);
}

void
PAvlTree::forEach(
    const std::function<void(std::string_view, std::string_view)> &fn)
{
    rt_.atomic([&](mtm::Txn &tx) {
        std::string kbuf, vbuf;
        visitRec(tx, tx.readT<Node *>(&hdr_->root), fn, kbuf, vbuf);
    });
}

} // namespace mnemosyne::ds
