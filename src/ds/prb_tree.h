/**
 * @file
 * PRbTree: a red-black tree with 128-byte nodes in persistent memory —
 * the structure of the Table 5 study ("the cost of maintaining a
 * red-black tree with 128 byte nodes in persistent memory" vs.
 * serializing it to a file).
 *
 * Keys are 64-bit integers; each node carries a fixed 88-byte payload
 * so that sizeof(Node) is exactly 128 bytes, as in the paper.
 */

#ifndef MNEMOSYNE_DS_PRB_TREE_H_
#define MNEMOSYNE_DS_PRB_TREE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "runtime/runtime.h"

namespace mnemosyne::ds {

class PRbTree
{
  public:
    static constexpr size_t kPayloadBytes = 88;
    static constexpr size_t kNodeBytes = 128;

    PRbTree(Runtime &rt, const std::string &name);

    /** Insert or update key with the given payload, in one durable
     *  transaction. */
    void put(uint64_t key, const void *payload, size_t len);

    /** Read a node's payload into @p out (kPayloadBytes). */
    bool get(uint64_t key, void *out);

    size_t size() const;

    /** In-order key visit (read-only transaction). */
    void forEachKey(const std::function<void(uint64_t)> &fn);

    /**
     * Verify the red-black invariants: root black, no red-red edges,
     * equal black height on every path, and keys in order.  Throws on
     * violation; returns the black height.
     */
    size_t checkInvariants();

  private:
    enum Color : uint64_t { kRed = 0, kBlack = 1 };

    struct Node {
        Node *left;
        Node *right;
        Node *parent;
        uint64_t key;
        uint64_t color;
        uint8_t payload[kPayloadBytes];
    };
    static_assert(sizeof(Node) == kNodeBytes);

    struct Header {
        Node *root;
        uint64_t count;
    };

    void rotateLeft(mtm::Txn &tx, Node *x);
    void rotateRight(mtm::Txn &tx, Node *x);
    void insertFixup(mtm::Txn &tx, Node *z);
    size_t checkRec(mtm::Txn &tx, Node *n, uint64_t *min, uint64_t *max);

    Runtime &rt_;
    Header *hdr_;
};

} // namespace mnemosyne::ds

#endif // MNEMOSYNE_DS_PRB_TREE_H_
