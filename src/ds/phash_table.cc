#include "ds/phash_table.h"

#include <cstring>
#include <vector>

#include "scm/scm.h"

namespace mnemosyne::ds {

uint64_t
PHashTable::hashOf(std::string_view key)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : key) {
        h ^= uint8_t(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

PHashTable::PHashTable(Runtime &rt, const std::string &name, size_t nbuckets,
                       bool instrumented_values)
    : rt_(rt), instrumentedValues_(instrumented_values)
{
    hdr_ = static_cast<Header *>(
        rt_.regions().pstaticVar(name, sizeof(Header), nullptr));
    if (hdr_->initDone)
        return;

    auto &c = scm::ctx();
    if (hdr_->buckets == nullptr) {
        rt_.pmalloc(nbuckets * sizeof(Node *), &hdr_->buckets);
    }
    // (Re-)zero the bucket array: a crash between the allocation and
    // the initDone flag re-runs this idempotently.
    std::vector<uint8_t> zero(nbuckets * sizeof(Node *), 0);
    c.wtstore(hdr_->buckets, zero.data(), zero.size());
    c.wtstoreT(&hdr_->nbuckets, uint64_t(nbuckets));
    c.wtstoreT(&hdr_->count, uint64_t(0));
    c.fence();
    c.wtstoreT(&hdr_->initDone, uint64_t(1));
    c.fence();
}

PHashTable::Node *
PHashTable::makeNode(std::string_view key, std::string_view value)
{
    auto *node = static_cast<Node *>(
        rt_.stageAlloc(sizeof(Node) + key.size() + value.size()));
    // The node is private until linked: initialize it with streaming
    // writes; the linking transaction's commit fence makes both the
    // node image and the link durable together.
    auto &c = scm::ctx();
    Node init;
    init.next = nullptr;
    init.hash = hashOf(key);
    init.klen = uint32_t(key.size());
    init.vlen = uint32_t(value.size());
    c.wtstore(node, &init, sizeof(Node));
    if (!instrumentedValues_) {
        // Ablation mode: stream the bytes into the still-private node;
        // the linking transaction's commit fence covers them.
        c.wtstore(node->kv, key.data(), key.size());
        c.wtstore(node->kv + key.size(), value.data(), value.size());
    }
    // Otherwise the key/value bytes are written inside the transaction
    // (see put()): the paper's compiler instruments every store in the
    // atomic block, so the value is logged and written back per word.
    return node;
}

PHashTable::ChainPos
PHashTable::findTx(mtm::Txn &tx, Node **bucket, uint64_t h,
                   std::string_view key)
{
    Node *prev = nullptr;
    Node *cur = tx.readT<Node *>(bucket);
    while (cur != nullptr) {
        const uint64_t chash = tx.readT<uint64_t>(&cur->hash);
        const uint32_t cklen = tx.readT<uint32_t>(&cur->klen);
        if (chash == h && cklen == key.size()) {
            std::string k(cklen, 0);
            tx.read(k.data(), cur->kv, cklen);
            if (k == key)
                return {cur, prev};
        }
        prev = cur;
        cur = tx.readT<Node *>(&cur->next);
    }
    return {nullptr, prev};
}

bool
PHashTable::putInPlaceTx(mtm::Txn &tx, std::string_view key,
                         std::string_view value)
{
    // In-place overwrite only works when the value bytes go through the
    // transaction (redo-logged); in the streaming ablation mode the
    // node may be shared, so a raw overwrite would be non-atomic.
    if (!instrumentedValues_)
        return false;
    const uint64_t h = hashOf(key);
    Node **bucket = &hdr_->buckets[h % hdr_->nbuckets];
    ChainPos pos = findTx(tx, bucket, h, key);
    if (pos.node == nullptr ||
        tx.readT<uint32_t>(&pos.node->vlen) != value.size())
        return false;
    tx.write(pos.node->kv + key.size(), value.data(), value.size());
    return true;
}

void
PHashTable::putTx(mtm::Txn &tx, std::string_view key, std::string_view value)
{
    const uint64_t h = hashOf(key);
    Node **bucket = &hdr_->buckets[h % hdr_->nbuckets];

    ChainPos pos = findTx(tx, bucket, h, key);
    if (pos.node != nullptr && instrumentedValues_ &&
        tx.readT<uint32_t>(&pos.node->vlen) == value.size()) {
        // Same-length replace: overwrite the value in place — no
        // allocation, no free, just redo-logged value bytes.
        tx.write(pos.node->kv + key.size(), value.data(), value.size());
        return;
    }

    Node *node = makeNode(key, value);
    if (instrumentedValues_) {
        tx.write(node->kv, key.data(), key.size());
        tx.write(node->kv + key.size(), value.data(), value.size());
    }
    if (pos.node != nullptr) {
        // Replace: splice the new node in place of the old one.
        tx.writeT<Node *>(&node->next, tx.readT<Node *>(&pos.node->next));
        if (pos.prev) {
            tx.writeT<Node *>(&pos.prev->next, node);
        } else {
            tx.writeT<Node *>(bucket, node);
        }
        rt_.stageFree(tx, pos.node);
    } else {
        tx.writeT<Node *>(&node->next, tx.readT<Node *>(bucket));
        tx.writeT<Node *>(bucket, node);
        tx.writeT<uint64_t>(&hdr_->count,
                            tx.readT<uint64_t>(&hdr_->count) + 1);
    }
}

bool
PHashTable::getTx(mtm::Txn &tx, std::string_view key, std::string *value)
{
    const uint64_t h = hashOf(key);
    Node **bucket = &hdr_->buckets[h % hdr_->nbuckets];
    ChainPos pos = findTx(tx, bucket, h, key);
    if (pos.node == nullptr)
        return false;
    if (value) {
        const uint32_t vlen = tx.readT<uint32_t>(&pos.node->vlen);
        value->resize(vlen);
        tx.read(value->data(), pos.node->kv + key.size(), vlen);
    }
    return true;
}

bool
PHashTable::delTx(mtm::Txn &tx, std::string_view key)
{
    const uint64_t h = hashOf(key);
    Node **bucket = &hdr_->buckets[h % hdr_->nbuckets];
    ChainPos pos = findTx(tx, bucket, h, key);
    if (pos.node == nullptr)
        return false;
    Node *next = tx.readT<Node *>(&pos.node->next);
    if (pos.prev) {
        tx.writeT<Node *>(&pos.prev->next, next);
    } else {
        tx.writeT<Node *>(bucket, next);
    }
    tx.writeT<uint64_t>(&hdr_->count, tx.readT<uint64_t>(&hdr_->count) - 1);
    rt_.stageFree(tx, pos.node);
    return true;
}

void
PHashTable::put(std::string_view key, std::string_view value)
{
    rt_.syncThreadStaging();
    rt_.atomic([&](mtm::Txn &tx) {
        rt_.resetStaging();
        putTx(tx, key, value);
        rt_.clearAllocStaging(tx);
    });
    rt_.reapStagedFree();
}

bool
PHashTable::get(std::string_view key, std::string *value)
{
    bool found = false;
    rt_.atomic([&](mtm::Txn &tx) { found = getTx(tx, key, value); });
    return found;
}

bool
PHashTable::del(std::string_view key)
{
    rt_.syncThreadStaging();
    bool removed = false;
    rt_.atomic([&](mtm::Txn &tx) { removed = delTx(tx, key); });
    rt_.reapStagedFree();
    return removed;
}

mtm::CommitTicket
PHashTable::putAsync(std::string_view key, std::string_view value)
{
    // Fast path: try a pure in-place overwrite first.  It allocates and
    // frees nothing, so it needs no staging guard — back-to-back value
    // updates from one thread join open fence epochs without ever
    // waiting for the previous epoch to retire.
    bool inplace = false;
    mtm::CommitTicket t = rt_.atomicAsync([&](mtm::Txn &tx) {
        inplace = putInPlaceTx(tx, key, value);
    });
    if (inplace)
        return t;

    // Slow path (insert or resizing replace): staged allocation.  The
    // guard waits out this thread's previous staged async commit so the
    // raw staging-slot reads below see retired (written-back) state.
    rt_.syncThreadStaging();
    t = rt_.atomicAsync([&](mtm::Txn &tx) {
        rt_.resetStaging();
        putTx(tx, key, value);
        rt_.clearAllocStaging(tx);
    });
    rt_.noteStagedAsync(t);
    return t;
}

mtm::CommitTicket
PHashTable::delAsync(std::string_view key, bool *removed)
{
    rt_.syncThreadStaging();
    bool r = false;
    mtm::CommitTicket t =
        rt_.atomicAsync([&](mtm::Txn &tx) { r = delTx(tx, key); });
    rt_.noteStagedAsync(t);
    if (removed)
        *removed = r;
    return t;
}

size_t
PHashTable::size() const
{
    return size_t(hdr_->count);
}

} // namespace mnemosyne::ds
