#include "ds/phash_table.h"

#include <cstring>
#include <vector>

#include "scm/scm.h"

namespace mnemosyne::ds {

uint64_t
PHashTable::hashOf(std::string_view key)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : key) {
        h ^= uint8_t(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

PHashTable::PHashTable(Runtime &rt, const std::string &name, size_t nbuckets,
                       bool instrumented_values)
    : rt_(rt), instrumentedValues_(instrumented_values)
{
    hdr_ = static_cast<Header *>(
        rt_.regions().pstaticVar(name, sizeof(Header), nullptr));
    if (hdr_->initDone)
        return;

    auto &c = scm::ctx();
    if (hdr_->buckets == nullptr) {
        rt_.pmalloc(nbuckets * sizeof(Node *), &hdr_->buckets);
    }
    // (Re-)zero the bucket array: a crash between the allocation and
    // the initDone flag re-runs this idempotently.
    std::vector<uint8_t> zero(nbuckets * sizeof(Node *), 0);
    c.wtstore(hdr_->buckets, zero.data(), zero.size());
    c.wtstoreT(&hdr_->nbuckets, uint64_t(nbuckets));
    c.wtstoreT(&hdr_->count, uint64_t(0));
    c.fence();
    c.wtstoreT(&hdr_->initDone, uint64_t(1));
    c.fence();
}

PHashTable::Node *
PHashTable::makeNode(std::string_view key, std::string_view value)
{
    auto *node = static_cast<Node *>(
        rt_.stageAlloc(sizeof(Node) + key.size() + value.size()));
    // The node is private until linked: initialize it with streaming
    // writes; the linking transaction's commit fence makes both the
    // node image and the link durable together.
    auto &c = scm::ctx();
    Node init;
    init.next = nullptr;
    init.hash = hashOf(key);
    init.klen = uint32_t(key.size());
    init.vlen = uint32_t(value.size());
    c.wtstore(node, &init, sizeof(Node));
    if (!instrumentedValues_) {
        // Ablation mode: stream the bytes into the still-private node;
        // the linking transaction's commit fence covers them.
        c.wtstore(node->kv, key.data(), key.size());
        c.wtstore(node->kv + key.size(), value.data(), value.size());
    }
    // Otherwise the key/value bytes are written inside the transaction
    // (see put()): the paper's compiler instruments every store in the
    // atomic block, so the value is logged and written back per word.
    return node;
}

void
PHashTable::put(std::string_view key, std::string_view value)
{
    const uint64_t h = hashOf(key);
    Node **bucket = &hdr_->buckets[h % hdr_->nbuckets];

    rt_.atomic([&](mtm::Txn &tx) {
        rt_.resetStaging();
        Node *node = makeNode(key, value);
        if (instrumentedValues_) {
            tx.write(node->kv, key.data(), key.size());
            tx.write(node->kv + key.size(), value.data(), value.size());
        }

        // Walk the chain looking for an existing key to replace.
        Node *prev = nullptr;
        Node *cur = tx.readT<Node *>(bucket);
        while (cur != nullptr) {
            const uint64_t chash = tx.readT<uint64_t>(&cur->hash);
            const uint32_t cklen = tx.readT<uint32_t>(&cur->klen);
            if (chash == h && cklen == key.size()) {
                std::string k(cklen, 0);
                tx.read(k.data(), cur->kv, cklen);
                if (k == key)
                    break;
            }
            prev = cur;
            cur = tx.readT<Node *>(&cur->next);
        }

        if (cur != nullptr) {
            // Replace: splice the new node in place of the old one.
            tx.writeT<Node *>(&node->next, tx.readT<Node *>(&cur->next));
            if (prev) {
                tx.writeT<Node *>(&prev->next, node);
            } else {
                tx.writeT<Node *>(bucket, node);
            }
            rt_.stageFree(tx, cur);
        } else {
            tx.writeT<Node *>(&node->next, tx.readT<Node *>(bucket));
            tx.writeT<Node *>(bucket, node);
            tx.writeT<uint64_t>(&hdr_->count,
                                tx.readT<uint64_t>(&hdr_->count) + 1);
        }
        rt_.clearAllocStaging(tx);
    });
    rt_.reapStagedFree();
}

bool
PHashTable::get(std::string_view key, std::string *value)
{
    const uint64_t h = hashOf(key);
    Node **bucket = &hdr_->buckets[h % hdr_->nbuckets];
    bool found = false;

    rt_.atomic([&](mtm::Txn &tx) {
        found = false;
        Node *cur = tx.readT<Node *>(bucket);
        while (cur != nullptr) {
            const uint64_t chash = tx.readT<uint64_t>(&cur->hash);
            const uint32_t cklen = tx.readT<uint32_t>(&cur->klen);
            if (chash == h && cklen == key.size()) {
                std::string k(cklen, 0);
                tx.read(k.data(), cur->kv, cklen);
                if (k == key) {
                    if (value) {
                        const uint32_t vlen =
                            tx.readT<uint32_t>(&cur->vlen);
                        value->resize(vlen);
                        tx.read(value->data(), cur->kv + cklen, vlen);
                    }
                    found = true;
                    return;
                }
            }
            cur = tx.readT<Node *>(&cur->next);
        }
    });
    return found;
}

bool
PHashTable::del(std::string_view key)
{
    const uint64_t h = hashOf(key);
    Node **bucket = &hdr_->buckets[h % hdr_->nbuckets];
    bool removed = false;

    rt_.atomic([&](mtm::Txn &tx) {
        removed = false;
        Node *prev = nullptr;
        Node *cur = tx.readT<Node *>(bucket);
        while (cur != nullptr) {
            const uint64_t chash = tx.readT<uint64_t>(&cur->hash);
            const uint32_t cklen = tx.readT<uint32_t>(&cur->klen);
            if (chash == h && cklen == key.size()) {
                std::string k(cklen, 0);
                tx.read(k.data(), cur->kv, cklen);
                if (k == key) {
                    Node *next = tx.readT<Node *>(&cur->next);
                    if (prev) {
                        tx.writeT<Node *>(&prev->next, next);
                    } else {
                        tx.writeT<Node *>(bucket, next);
                    }
                    tx.writeT<uint64_t>(
                        &hdr_->count, tx.readT<uint64_t>(&hdr_->count) - 1);
                    rt_.stageFree(tx, cur);
                    removed = true;
                    return;
                }
            }
            prev = cur;
            cur = tx.readT<Node *>(&cur->next);
        }
    });
    rt_.reapStagedFree();
    return removed;
}

size_t
PHashTable::size() const
{
    return size_t(hdr_->count);
}

} // namespace mnemosyne::ds
