/**
 * @file
 * VRbTree: the volatile red-black tree of the Table 5 baseline — kept
 * in DRAM and periodically serialized to a file on the PCM-disk
 * ("the cost of keeping it in DRAM and periodically serializing it and
 * storing it in a file").
 *
 * Nodes match PRbTree's shape (64-bit key + 88-byte payload = 128-byte
 * nodes); the tree itself is std::map, which is a red-black tree in
 * every mainstream implementation.  serialize() walks the tree through
 * the archive framework exactly the way a Boost-based fast-save would.
 */

#ifndef MNEMOSYNE_DS_VRB_TREE_H_
#define MNEMOSYNE_DS_VRB_TREE_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <map>

#include "serialize/archive.h"

namespace mnemosyne::ds {

class VRbTree
{
  public:
    static constexpr size_t kPayloadBytes = 88;
    using Payload = std::array<uint8_t, kPayloadBytes>;

    void
    put(uint64_t key, const void *payload, size_t len)
    {
        Payload p{};
        std::memcpy(p.data(), payload, std::min(len, kPayloadBytes));
        map_[key] = p;
    }

    bool
    get(uint64_t key, void *out) const
    {
        auto it = map_.find(key);
        if (it == map_.end())
            return false;
        if (out)
            std::memcpy(out, it->second.data(), kPayloadBytes);
        return true;
    }

    size_t size() const { return map_.size(); }

    template <typename Archive>
    void
    serialize(Archive &ar, unsigned)
    {
        if constexpr (std::is_same_v<Archive, serialize::OArchive>) {
            uint64_t n = map_.size();
            ar &n;
            for (auto &[key, payload] : map_) {
                uint64_t k = key;
                ar &k;
                for (auto b : payload)
                    ar &b;
            }
        } else {
            uint64_t n = 0;
            ar &n;
            map_.clear();
            for (uint64_t i = 0; i < n; ++i) {
                uint64_t k = 0;
                ar &k;
                Payload p{};
                for (auto &b : p)
                    ar &b;
                map_[k] = p;
            }
        }
    }

    /** Serialize the whole tree and store it on the PCM-disk. */
    void
    saveToFile(pcmdisk::MiniFs &fs, const std::string &name)
    {
        serialize::OArchive oa;
        oa &*this;
        oa.saveToFile(fs, name);
    }

    static VRbTree
    loadFromFile(pcmdisk::MiniFs &fs, const std::string &name)
    {
        auto ia = serialize::IArchive::loadFromFile(fs, name);
        VRbTree t;
        ia &t;
        return t;
    }

  private:
    std::map<uint64_t, Payload> map_;
};

} // namespace mnemosyne::ds

#endif // MNEMOSYNE_DS_VRB_TREE_H_
