/**
 * @file
 * The Mnemosyne runtime: one object owning every layer of Figure 1 —
 * the SCM emulator (hardware), the region manager (kernel), the region
 * layer + persistence primitives + persistent heap (libmnemosyne), and
 * the durable transaction system (libmtm).
 *
 * Constructing a Runtime performs the full reincarnation sequence of
 * section 6.3.2:
 *   1. reconstruct persistent regions (region manager + region table),
 *   2. recover the persistent heap (replay redo records, scavenge the
 *      volatile indexes),
 *   3. replay all completed but not flushed transactions in timestamp
 *      order,
 *   4. reclaim allocation staging slots (crash-safe pmalloc support).
 *
 * Destroying a Runtime is a clean shutdown; destroying the process (or
 * calling ScmContext::crash()) without it models a failure.
 */

#ifndef MNEMOSYNE_RUNTIME_RUNTIME_H_
#define MNEMOSYNE_RUNTIME_RUNTIME_H_

#include <array>
#include <chrono>
#include <memory>
#include <string>

#include "heap/pheap.h"
#include "mtm/txn_manager.h"
#include "region/pstatic.h"
#include "region/region_manager.h"
#include "region/region_table.h"
#include "scm/scm.h"

namespace mnemosyne {

struct RuntimeConfig {
    /** SCM emulator settings (latency/failure model). */
    scm::ScmConfig scm;

    /** Region manager settings; backing_dir honors MNEMOSYNE_REGION_PATH. */
    region::RegionConfig region;

    size_t static_region_bytes = 1 << 20;
    size_t small_heap_bytes = size_t(32) << 20;
    size_t big_heap_bytes = size_t(32) << 20;

    /** Serialize pmalloc/pfree on one global mutex (the pre-scaling
     *  behaviour).  Baseline mode for the thread-scaling benchmark;
     *  leave off for the per-thread Hoard caches. */
    bool heap_global_lock = false;

    mtm::TxnConfig txn;

    /**
     * Use the process-wide SCM context instead of creating a private
     * one.  Tests that inject crashes install their own context and set
     * this.
     */
    bool use_current_scm_context = false;
};

/** Timings of the reincarnation steps, for the section 6.3.2 study. */
struct ReincarnationStats {
    std::chrono::nanoseconds region_reconstruct{0};
    std::chrono::nanoseconds region_remap{0};
    std::chrono::nanoseconds heap_scavenge{0};
    std::chrono::nanoseconds txn_replay{0};
    size_t replayed_txns = 0;
    size_t reclaimed_allocs = 0;
};

class Runtime
{
  public:
    explicit Runtime(RuntimeConfig cfg = {});
    ~Runtime();

    Runtime(const Runtime &) = delete;
    Runtime &operator=(const Runtime &) = delete;

    // -- persistence primitives & regions ---------------------------------

    region::RegionLayer &regions() { return *regions_; }
    region::RegionManager &regionManager() { return *mgr_; }

    /** Paper API: create a dynamic persistent region. */
    void *
    pmap(void **persistent_slot, size_t len,
         uint64_t flags = region::kRegionDefault)
    {
        return regions_->pmap(persistent_slot, len, flags);
    }

    void punmap(void *addr, size_t len) { regions_->punmap(addr, len); }

    // -- persistent heap ---------------------------------------------------

    heap::PHeap &heap() { return *heap_; }

    /** Paper API: set *pptr to a new persistent chunk of @p size bytes. */
    void pmalloc(size_t size, void *pptr) { heap_->pmalloc(size, pptr); }

    /** Paper API: free *pptr and nullify it. */
    void pfree(void *pptr) { heap_->pfree(pptr); }

    // -- durable transactions -----------------------------------------------

    mtm::TxnManager &txns() { return *txns_; }

    /** The `atomic { ... }` construct. */
    template <typename Fn>
    void
    atomic(Fn &&fn)
    {
        txns_->atomic(std::forward<Fn>(fn));
    }

    /** Relaxed-durability `commit_async { ... }`: commits logically on
     *  return; durable once the returned ticket's fence epoch retires
     *  (wait on it, or sync()).  Requires txn.group_commit. */
    template <typename Fn>
    mtm::CommitTicket
    atomicAsync(Fn &&fn)
    {
        return txns_->atomicAsync(std::forward<Fn>(fn));
    }

    /** Block until @p t's epoch has retired. */
    void wait(mtm::CommitTicket t) { txns_->wait(t); }

    /** Durability barrier for all previously returned tickets. */
    void sync() { txns_->sync(); }

    /**
     * Crash-safe allocation for use around transactions: allocates into
     * this thread's next free persistent staging slot (up to
     * kStageSlots blocks per transaction, enough for a B+-tree split
     * chain).  Link the blocks inside a transaction and call
     * clearAllocStaging(tx) in the same transaction; if the program
     * crashes before the link commits, the next Runtime reclaims them.
     */
    void *stageAlloc(size_t size);

    /**
     * Free any blocks still staged by this thread (unlinked leftovers
     * of an aborted attempt).  Call at the start of each transaction
     * attempt that uses stageAlloc.
     */
    void resetStaging();

    /** Transactionally clear this thread's staging slots (call inside
     *  the txn that links the staged blocks). */
    void clearAllocStaging(mtm::Txn &tx);

    /** Transactionally park @p block for deferred free: record it in
     *  a grave slot inside the unlinking txn... */
    void stageFree(mtm::Txn &tx, void *block);

    /** ...then reap it after the txn committed (or let the next
     *  Runtime's recovery reap it after a crash). */
    void reapStagedFree();

    /**
     * Staged-allocation guard for relaxed-durability commits.  An
     * atomicAsync() transaction's in-place write-back is deferred to
     * epoch retirement, so after its logical commit the persistent
     * staging and grave slots still hold their PRE-transaction values:
     * a raw read (resetStaging, stageAlloc's free-slot scan,
     * reapStagedFree) would free blocks the committed transaction just
     * linked.  Any operation that touches the staging slots must
     * therefore call this first: it blocks until this thread's most
     * recent staged async commit has retired (write-back done, slots
     * are the truth again) and reaps the graves it parked.  Cheap
     * no-op when nothing is outstanding.
     */
    void syncThreadStaging();

    /** Record @p t as this thread's outstanding staged async commit so
     *  the next syncThreadStaging() waits on it.  Tickets that are
     *  already durable (epoch 0) reap the graves immediately. */
    void noteStagedAsync(mtm::CommitTicket t);

    /** Staged allocations + graves per thread.  Equal budgets so a
     *  transaction of kStageSlots independent replaces/deletes (the
     *  server's BATCH op) can park one grave per op. */
    static constexpr size_t kStageSlots = 12;
    static constexpr size_t kGraveSlots = 12;

    ReincarnationStats reincarnation() const { return reinc_; }

    const RuntimeConfig &config() const { return cfg_; }

  private:
    static constexpr size_t kMaxThreads = 64;
    static constexpr size_t kSlotsPerThread = kStageSlots + kGraveSlots;

    /** Per-thread outstanding staged async commit; only the owning
     *  thread ever touches its slot (padded to avoid false sharing). */
    struct alignas(64) StagedTicket {
        mtm::CommitTicket ticket{};
    };

    void **mySlots();   ///< kSlotsPerThread persistent pointer cells.
    size_t threadOrdinal();

    const uint64_t id_;
    std::atomic<size_t> stagingOrdinal_{0};
    RuntimeConfig cfg_;
    std::unique_ptr<scm::ScmContext> ownedScm_;
    std::unique_ptr<region::RegionManager> mgr_;
    std::unique_ptr<region::RegionLayer> regions_;
    std::unique_ptr<heap::PHeap> heap_;
    std::unique_ptr<mtm::TxnManager> txns_;
    void **staging_ = nullptr;   ///< 2*kMaxThreads persistent slots.
    std::array<StagedTicket, kMaxThreads> stagedAsync_{};
    ReincarnationStats reinc_;
    uint64_t statsSourceToken_ = 0;
};

/** The process-wide runtime set by the most recent Runtime; null when
 *  none is alive. */
Runtime *runtime();

} // namespace mnemosyne

#endif // MNEMOSYNE_RUNTIME_RUNTIME_H_
