#include "runtime/runtime.h"

#include <atomic>
#include <cassert>
#include <stdexcept>

#include "obs/emitter.h"
#include "obs/stats_registry.h"
#include "obs/trace_ring.h"

namespace mnemosyne {

namespace {

std::atomic<Runtime *> gRuntime{nullptr};

uint64_t
nextRuntimeId()
{
    static std::atomic<uint64_t> gen{0};
    return gen.fetch_add(1, std::memory_order_relaxed) + 1;
}

using clk = std::chrono::steady_clock;

} // namespace

Runtime *
runtime()
{
    return gRuntime.load(std::memory_order_acquire);
}

Runtime::Runtime(RuntimeConfig cfg) : id_(nextRuntimeId()), cfg_(cfg)
{
    if (!cfg_.use_current_scm_context) {
        ownedScm_ = std::make_unique<scm::ScmContext>(cfg_.scm);
        scm::setCtx(ownedScm_.get());
    }
    auto &tr = obs::TraceRing::instance();

    // 1. Reconstruct persistent regions: mapping-table scan (simulated
    //    OS boot) happens inside the region manager's constructor...
    auto t0 = clk::now();
    mgr_ = std::make_unique<region::RegionManager>(cfg_.region);
    auto t1 = clk::now();
    reinc_.region_reconstruct = t1 - t0;
    tr.record(obs::TraceEv::kReincPhase, 1, 0,
              uint64_t(reinc_.region_reconstruct.count()));

    // 2. ...then libmnemosyne remaps the process's regions.
    regions_ = std::make_unique<region::RegionLayer>(
        *mgr_, cfg_.static_region_bytes);
    auto t2 = clk::now();
    reinc_.region_remap = t2 - t1;
    tr.record(obs::TraceEv::kReincPhase, 2, 0,
              uint64_t(reinc_.region_remap.count()));
    region::setCurrentRegionLayer(regions_.get());

    // 3. Recover the persistent heap and scavenge its volatile indexes.
    heap_ = std::make_unique<heap::PHeap>(*regions_, cfg_.small_heap_bytes,
                                          cfg_.big_heap_bytes,
                                          cfg_.heap_global_lock);
    auto t3 = clk::now();
    reinc_.heap_scavenge = t3 - t2;
    tr.record(obs::TraceEv::kReincPhase, 3, 0,
              uint64_t(reinc_.heap_scavenge.count()));

    // 4. Replay completed but not flushed transactions.
    txns_ = std::make_unique<mtm::TxnManager>(*regions_, cfg_.txn);
    auto t4 = clk::now();
    reinc_.txn_replay = t4 - t3;
    tr.record(obs::TraceEv::kReincPhase, 4, 0,
              uint64_t(reinc_.txn_replay.count()));
    reinc_.replayed_txns = txns_->stats().replayed_txns;

    // 5. Reclaim staged allocations that never got linked (and staged
    //    frees that never got reaped).
    staging_ = static_cast<void **>(regions_->pstaticVar(
        "mtm_alloc_staging",
        kSlotsPerThread * kMaxThreads * sizeof(void *), nullptr));
    for (size_t i = 0; i < kSlotsPerThread * kMaxThreads; ++i) {
        if (staging_[i] != nullptr) {
            heap_->pfree(&staging_[i]);
            ++reinc_.reclaimed_allocs;
        }
    }

    statsSourceToken_ =
        obs::StatsRegistry::instance().addSource([this](obs::Sink &sink) {
            sink.emit("reinc.region_reconstruct_ns",
                      uint64_t(reinc_.region_reconstruct.count()));
            sink.emit("reinc.region_remap_ns",
                      uint64_t(reinc_.region_remap.count()));
            sink.emit("reinc.heap_scavenge_ns",
                      uint64_t(reinc_.heap_scavenge.count()));
            sink.emit("reinc.txn_replay_ns",
                      uint64_t(reinc_.txn_replay.count()));
            sink.emit("reinc.replayed_txns", uint64_t(reinc_.replayed_txns));
            sink.emit("reinc.reclaimed_allocs",
                      uint64_t(reinc_.reclaimed_allocs));
        });

    // Live export: start the stats emitter when MNEMOSYNE_STATS_PORT is
    // set (or in SIGUSR2 dump-only mode when stats are on).  Idempotent
    // across Runtime incarnations; the emitter thread is process-global.
    obs::StatsEmitter::maybeStartFromEnv();

    gRuntime.store(this, std::memory_order_release);
}

Runtime::~Runtime()
{
    // Snapshot while every layer is still alive and registered; the
    // dump itself only writes anything when MNEMOSYNE_STATS is on.
    obs::shutdownDump();
    obs::StatsRegistry::instance().removeSource(statsSourceToken_);
    if (gRuntime.load(std::memory_order_acquire) == this)
        gRuntime.store(nullptr, std::memory_order_release);
    txns_.reset();     // drains async truncation
    heap_.reset();
    if (regions_ && region::currentRegionLayer() == regions_.get())
        region::setCurrentRegionLayer(nullptr);
    regions_.reset();
    mgr_.reset();
    if (ownedScm_) {
        // Clean shutdown: everything reaches SCM.
        ownedScm_->persistAll();
        if (&scm::ctx() == ownedScm_.get())
            scm::setCtx(nullptr);
    }
}

size_t
Runtime::threadOrdinal()
{
    thread_local uint64_t cached_rt = 0;
    thread_local size_t ordinal = 0;
    if (cached_rt != id_) {
        ordinal = stagingOrdinal_.fetch_add(1, std::memory_order_relaxed);
        assert(ordinal < kMaxThreads && "too many threads for staging slots");
        cached_rt = id_;
    }
    return ordinal;
}

void **
Runtime::mySlots()
{
    return &staging_[kSlotsPerThread * threadOrdinal()];
}

void *
Runtime::stageAlloc(size_t size)
{
    void **slots = mySlots();
    for (size_t i = 0; i < kStageSlots; ++i) {
        if (slots[i] == nullptr) {
            heap_->pmalloc(size, &slots[i]);
            return slots[i];
        }
    }
    throw std::runtime_error("Runtime: too many staged allocations in one "
                             "transaction");
}

void
Runtime::resetStaging()
{
    void **slots = mySlots();
    for (size_t i = 0; i < kStageSlots; ++i) {
        if (slots[i] != nullptr)
            heap_->pfree(&slots[i]);
    }
}

void
Runtime::clearAllocStaging(mtm::Txn &tx)
{
    void **slots = mySlots();
    for (size_t i = 0; i < kStageSlots; ++i) {
        if (slots[i] != nullptr)
            tx.writeT<void *>(&slots[i], nullptr);
    }
}

void
Runtime::stageFree(mtm::Txn &tx, void *block)
{
    void **graves = mySlots() + kStageSlots;
    for (size_t i = 0; i < kGraveSlots; ++i) {
        // Read through the transaction: an earlier stageFree in this
        // same transaction has only buffered its slot write.
        if (tx.readT<void *>(&graves[i]) == nullptr) {
            tx.writeT<void *>(&graves[i], block);
            return;
        }
    }
    throw std::runtime_error("Runtime: too many staged frees in one "
                             "transaction");
}

void
Runtime::reapStagedFree()
{
    void **graves = mySlots() + kStageSlots;
    for (size_t i = 0; i < kGraveSlots; ++i) {
        if (graves[i] != nullptr)
            heap_->pfree(&graves[i]);
    }
}

void
Runtime::syncThreadStaging()
{
    StagedTicket &slot = stagedAsync_[threadOrdinal()];
    if (slot.ticket.pending()) {
        txns_->wait(slot.ticket);
        slot.ticket = {};
        reapStagedFree();
    }
}

void
Runtime::noteStagedAsync(mtm::CommitTicket t)
{
    if (t.pending()) {
        stagedAsync_[threadOrdinal()].ticket = t;
    } else {
        // Combiner off (or degraded): the commit was synchronous and its
        // write-back already ran, so the graves are current — reap now.
        reapStagedFree();
    }
}

} // namespace mnemosyne
