/**
 * @file
 * Boundary-tag allocator for large blocks (the dlmalloc fallback of
 * paper section 4.3).
 *
 * Mnemosyne routes requests larger than the superblock classes to a
 * dlmalloc-style allocator chosen for its scalability to large block
 * sizes; the paper modified it only "to add logging to ensure
 * allocations are atomic".  This implementation does the same: chunk
 * headers/footers are persistent, the free list is volatile and rebuilt
 * by walking the chunks at startup, and every allocate/free applies its
 * handful of word writes through an AtomicRedo record.
 */

#ifndef MNEMOSYNE_HEAP_BIG_ALLOC_H_
#define MNEMOSYNE_HEAP_BIG_ALLOC_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "log/atomic_redo.h"
#include "log/rawl.h"

namespace mnemosyne::heap {

struct BigAllocStats {
    size_t chunks_in_use = 0;
    size_t bytes_in_use = 0;
    size_t chunks_free = 0;
    size_t bytes_free = 0;
};

class BigAlloc
{
  public:
    /** Chunk sizes and payloads are multiples of this. */
    static constexpr size_t kAlign = 16;
    static constexpr size_t kHeaderBytes = 16;
    static constexpr size_t kFooterBytes = 8;
    static constexpr size_t kMinChunk = 64;

    static size_t footprint(size_t usable_bytes);

    static std::unique_ptr<BigAlloc> create(void *mem, size_t bytes);
    static std::unique_ptr<BigAlloc> open(void *mem);

    /** Allocate at least @p size bytes; durably stores the address into
     *  @p pptr.  Returns nullptr if no chunk fits. */
    void *allocate(size_t size, void **pptr);

    /** Free *@p pptr (with eager coalescing) and durably nullify it. */
    void free(void **pptr);

    bool owns(const void *p) const;
    size_t blockSize(const void *p) const;

    BigAllocStats stats() const;

    /** Rebuild the volatile free list by walking the chunk headers;
     *  returns the number of chunks walked. */
    size_t rebuildFreeList();

  private:
    struct Header {
        uint64_t magic;
        uint64_t chunkBytes;
        uint64_t reserved0;
        uint64_t reserved1;
    };

    static constexpr uint64_t kMagic = 0x4d4e4249474d4c4cULL; // "MNBIGMLL"
    static constexpr size_t kRedoLogBytes = 16384;

    BigAlloc(Header *hdr, uint8_t *chunks, size_t chunk_bytes);

    uint64_t *chunkHdr(uint64_t off) const;
    uint64_t chunkSize(uint64_t off) const;
    bool chunkInUse(uint64_t off) const;
    uint64_t *chunkFooter(uint64_t off, uint64_t size) const;

    Header *hdr_;
    uint8_t *base_;         ///< Start of the chunk area.
    size_t chunkBytes_ = 0; ///< Total chunk-area bytes (excl. sentinel).

    std::unique_ptr<log::Rawl> log_;
    std::unique_ptr<log::AtomicRedo> redo_;

    /** Volatile free index: offset -> size. */
    std::map<uint64_t, uint64_t> free_;
};

/**
 * Address-range-striped big allocator: the persistent arena is split
 * into independent BigAlloc stripes, each with its own mutex and redo
 * log, so concurrent large allocations from different threads no longer
 * serialize on one free list.  A thread's home stripe is picked by its
 * obs ordinal; allocation falls over to the other stripes when the home
 * stripe cannot satisfy a request.  Frees route by address, so any
 * thread can free any block.
 *
 * The stripe count adapts to the arena size (one stripe per 16 MB,
 * capped at 8) so small arenas — including every existing test
 * configuration — keep the exact single-arena behaviour and large
 * requests are not defeated by per-stripe capacity fragmentation.
 */
class StripedBigAlloc
{
  public:
    static constexpr size_t kMaxStripes = 8;

    /** Stripes used for an arena of @p bytes. */
    static size_t stripesFor(size_t bytes);

    static std::unique_ptr<StripedBigAlloc> create(void *mem, size_t bytes);
    static std::unique_ptr<StripedBigAlloc> open(void *mem);

    /** Allocate at least @p size bytes; durably stores the address into
     *  @p pptr.  Returns nullptr when no stripe has a fitting chunk. */
    void *allocate(size_t size, void **pptr);

    /** Free *@p pptr (routed to its stripe by address). */
    void free(void **pptr);

    bool owns(const void *p) const;
    size_t blockSize(const void *p) const;

    BigAllocStats stats() const;

    /** Rebuild every stripe's volatile free list; returns the total
     *  number of chunks walked. */
    size_t rebuildFreeList();

    size_t stripeCount() const { return stripes_.size(); }

  private:
    struct Header {
        uint64_t magic;
        uint64_t nStripes;
        uint64_t stripeSpan;
        uint64_t reserved0;
    };

    static constexpr uint64_t kMagic = 0x4d4e424947535452ULL; // "MNBIGSTR"

    StripedBigAlloc() = default;

    size_t stripeOf(const void *p) const;

    struct Stripe {
        mutable std::mutex mu;
        std::unique_ptr<BigAlloc> alloc;
    };

    uint8_t *base_ = nullptr;   ///< First stripe's start.
    size_t span_ = 0;           ///< Bytes per stripe.
    std::vector<std::unique_ptr<Stripe>> stripes_;
};

} // namespace mnemosyne::heap

#endif // MNEMOSYNE_HEAP_BIG_ALLOC_H_
