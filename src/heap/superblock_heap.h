/**
 * @file
 * Hoard-style persistent superblock allocator (paper section 4.3) with
 * true per-thread local heaps for multiprocessor scalability.
 *
 * The heap region is split into fixed-size superblocks (8 KB).  Each
 * superblock is assigned a block size class and carries a persistent
 * bitmap vector tracking allocated blocks; allocating memory requires
 * only one word write to SCM to set a bit in the superblock's vector.
 * Bitmap vectors are kept in a metadata area separated from the data
 * blocks to reduce the risk of corruption (following Rio Vista's
 * protection argument cited by the paper).
 *
 * Concurrency (the Hoard design the paper derives its allocator from):
 *
 *  - Every thread gets a *thread cache* holding the superblocks it owns
 *    plus a private redo log.  Allocation and same-thread free touch
 *    only cache-local state under the cache's own mutex — uncontended
 *    in steady state, so the hot path never serializes across threads.
 *  - A single locked *global pool* exists only for superblock transfer:
 *    caches refill from it when a size class runs dry and release
 *    superblocks back once they become empty (Hoard's emptiness
 *    threshold), bounding memory blowup.
 *  - Cross-thread frees lock the owning cache (found through a volatile
 *    per-superblock owner word) and return the block to its superblock,
 *    exactly as Hoard does.
 *  - On thread exit the cache's superblocks are released to the pool
 *    and the cache is parked for adoption by the next thread — thread
 *    churn neither leaks log slots nor strands partially-free
 *    superblocks (mirroring the transaction layer's log-lease
 *    recycling).
 *
 * Hoard's indexes, which speed allocation, live in volatile memory and
 * are regenerated when a program starts (the "scavenge" cost measured
 * in the reincarnation study, section 6.3.2).
 *
 * Atomicity: each allocate/free durably applies its word writes — the
 * size-class claim, the bitmap word, and the user's persistent pointer
 * — through an AtomicRedo record in the acting cache's private log, so
 * a crash leaves either the whole operation or none of it.  A
 * superblock's bitmap is only ever mutated while holding its owner's
 * mutex (or the pool mutex for pooled superblocks), and each redo
 * record's lifetime is contained in that critical section, so at crash
 * time at most one pending record across all logs touches any given
 * word and recovery may replay the logs in any order.
 */

#ifndef MNEMOSYNE_HEAP_SUPERBLOCK_HEAP_H_
#define MNEMOSYNE_HEAP_SUPERBLOCK_HEAP_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "log/atomic_redo.h"
#include "log/rawl.h"

namespace mnemosyne::heap {

/** Per-thread heap state; defined in superblock_heap.cc. */
struct SbThreadCache;

/** Statistics for introspection and the reincarnation benchmark. */
struct SbHeapStats {
    size_t superblocks = 0;
    size_t superblocks_assigned = 0;
    size_t blocks_allocated = 0;
    size_t bytes_allocated = 0;
};

class SuperblockHeap
{
  public:
    static constexpr size_t kSuperblockBytes = 8192;
    static constexpr size_t kMinBlock = 16;
    static constexpr size_t kMaxBlock = 4096;   ///< Half a superblock.
    static constexpr size_t kNumClasses = 9;    ///< 16 .. 4096, powers of 2.
    /** Bitmap words per superblock: 8192/16 = 512 blocks max = 8 words. */
    static constexpr size_t kBitmapWords = 8;
    /** Thread caches (== private redo logs); threads beyond this share
     *  caches round-robin, still correct, merely contended. */
    static constexpr size_t kNumCaches = 8;

    /** Bytes of persistent memory needed for @p n superblocks, including
     *  metadata and the embedded redo logs (one per thread cache plus
     *  one for the global pool). */
    static size_t footprint(size_t n_superblocks);

    /** Format @p mem as an empty heap. */
    static std::unique_ptr<SuperblockHeap> create(void *mem, size_t bytes);

    /**
     * Recover a heap: replay any pending redo record in every log, then
     * scavenge the persistent bitmaps to rebuild the volatile indexes.
     */
    static std::unique_ptr<SuperblockHeap> open(void *mem);

    ~SuperblockHeap();

    SuperblockHeap(const SuperblockHeap &) = delete;
    SuperblockHeap &operator=(const SuperblockHeap &) = delete;

    /**
     * Allocate a block of at least @p size bytes and durably store its
     * address into @p pptr (which should live in persistent memory so
     * the allocation cannot leak across a crash).  Returns the block,
     * or nullptr if @p size is out of range or the heap is full.
     * Thread-safe; the fast path locks only the calling thread's cache.
     */
    void *allocate(size_t size, void **pptr);

    /** Free the block pointed to by *@p pptr and durably nullify it.
     *  Thread-safe; frees of blocks owned by another thread's cache
     *  lock that cache (Hoard's remote-free path). */
    void free(void **pptr);

    /** Does @p p point into this heap's data area? */
    bool owns(const void *p) const;

    /** Usable size of the block containing @p p. */
    size_t blockSize(const void *p) const;

    SbHeapStats stats() const;

    /** Rebuild the volatile indexes from the persistent bitmaps;
     *  returns the number of superblocks scanned (timed by the
     *  reincarnation benchmark).  Must be called at a quiescent point
     *  (create/open do). */
    size_t scavenge();

    /**
     * Serialized mode: route every operation through the global pool
     * under one mutex — the pre-per-thread-heap behaviour, kept as the
     * measurable baseline for the thread-scaling benchmark.
     */
    void setSerialized(bool on);
    bool serialized() const { return serialized_.load(std::memory_order_relaxed); }

    /**
     * Park the calling thread's cache: its superblocks move back to the
     * global pool and the next operation acquires a fresh cache.  Used
     * by the crash sweeper to drive transfers, orphan adoption, and
     * multi-log recovery from a single workload thread, and by tests.
     */
    void detachThreadCache();

    /** Number of thread caches ever created (tests). */
    size_t threadCacheCount() const;

    /** Superblocks currently sitting in the global pool, excluding
     *  never-assigned ones (tests). */
    size_t pooledSuperblocks() const;

  private:
    struct Header {
        uint64_t magic;
        uint64_t nSuperblocks;
        uint64_t nLogs;
        uint64_t reserved0;
    };

    /** Persistent per-superblock metadata, separated from the data. */
    struct SbMeta {
        uint64_t sizeClass;             ///< 0 = unassigned, else log2 size.
        uint64_t bitmap[kBitmapWords];  ///< 1 = block allocated.
    };

    /** Volatile per-superblock index. */
    struct SbIndex {
        uint32_t freeBlocks = 0;
        uint32_t blocks = 0;
        uint32_t listPos = 0;   ///< Position in its list (O(1) removal).
        int8_t classIdx = -1;
        bool listed = false;    ///< On some partial list (cache or pool).
    };

    static constexpr uint64_t kMagic = 0x4d4e534248503032ULL; // "MNSBHP02"
    static constexpr size_t kRedoLogBytes = 16384;
    static constexpr size_t kNumLogs = kNumCaches + 1; ///< + pool log.

    SuperblockHeap(Header *hdr, SbMeta *meta, uint8_t *data,
                   uint8_t *logs_mem);

    static size_t classIndexFor(size_t size);
    static size_t classBlockSize(size_t idx) { return kMinBlock << idx; }

    void *sbData(size_t sb) const { return data_ + sb * kSuperblockBytes; }
    size_t sbOf(const void *p) const;

    /** The calling thread's cache for this heap (creates/adopts one). */
    SbThreadCache *cacheForThread();
    SbThreadCache *acquireCacheLocked();

    /** Release a thread's interest in @p tc; when the last user leaves,
     *  the cache's superblocks go back to the pool. */
    void parkCache(SbThreadCache *tc);

    /** Pull a superblock of @p cls into @p tc (pool mutex inside).
     *  Returns false when the heap is exhausted for this class. */
    bool refill(SbThreadCache *tc, size_t cls, uint32_t *out_sb,
                bool *out_claim);

    /** Pick a free block in @p sb and durably apply the allocation
     *  through @p redo; caller holds the lock covering @p sb, and
     *  @p list is the partial list @p sb sits on (delisted on full). */
    void *allocInSb(uint32_t sb, size_t cls, bool claim, void **pptr,
                    log::AtomicRedo &redo, std::vector<uint32_t> &list);

    /** Durably clear @p pptr's block bit through @p redo and bump the
     *  free count; caller holds the lock covering the superblock.
     *  Returns the block's class index. */
    size_t freeInSb(void **pptr, log::AtomicRedo &redo);

    /** Free into a cache-owned superblock; caller holds @p o's mutex. */
    void freeInCache(SbThreadCache *o, uint32_t sb, void **pptr);

    void *allocateFromPoolLocked(size_t cls, void **pptr);
    void freeInPoolLocked(uint32_t sb, void **pptr);

    /** (Re)initialize @p sb's volatile index for class @p cls. */
    void claimIndex(uint32_t sb, size_t cls);

    // List bookkeeping; every superblock is on at most one list and
    // SbIndex::listPos makes removal O(1).
    void pushList(std::vector<uint32_t> &list, uint32_t sb);
    void pushFreePool(uint32_t sb);
    void removeFromList(std::vector<uint32_t> &list, uint32_t sb);

    friend struct SbThreadCache;

    Header *hdr_;
    SbMeta *meta_;
    uint8_t *data_;
    size_t nSb_ = 0;
    const uint64_t heapId_;

    /** All persistent logs; index i < kNumCaches backs cache i, the
     *  last one backs the pool. */
    std::vector<std::unique_ptr<log::Rawl>> logs_;
    std::unique_ptr<log::AtomicRedo> poolRedo_;

    // Volatile indexes (rebuilt by scavenge()).
    std::vector<SbIndex> index_;
    /** Owning cache per superblock; nullptr = in the global pool. */
    std::vector<std::atomic<SbThreadCache *>> owner_;

    // Global pool: the ONLY cross-thread heap lock on the normal path,
    // taken for superblock transfer and pooled-superblock frees.
    // Lock order: cache mutex before poolMu_, never the reverse.
    mutable std::mutex poolMu_;
    std::array<std::vector<uint32_t>, kNumClasses> poolPartial_;
    std::vector<uint32_t> poolFree_;     ///< Fully free, class is stale.
    std::vector<uint32_t> unassigned_;   ///< sizeClass == 0.

    std::vector<std::unique_ptr<SbThreadCache>> caches_;
    std::vector<uint32_t> parkedCaches_;   ///< Indexes ready for adoption.
    std::atomic<uint32_t> rrNext_{0};      ///< Overflow cache sharing.

    std::atomic<bool> serialized_{false};
};

} // namespace mnemosyne::heap

#endif // MNEMOSYNE_HEAP_SUPERBLOCK_HEAP_H_
