/**
 * @file
 * Hoard-style persistent superblock allocator (paper section 4.3).
 *
 * The heap region is split into fixed-size superblocks (8 KB).  Each
 * superblock is assigned a block size class and carries a persistent
 * bitmap vector tracking allocated blocks; allocating memory requires
 * only one word write to SCM to set a bit in the superblock's vector.
 * Bitmap vectors are kept in a metadata area separated from the data
 * blocks to reduce the risk of corruption (following Rio Vista's
 * protection argument cited by the paper).
 *
 * Hoard's indexes, which speed allocation, live in volatile memory and
 * are regenerated when a program starts (the "scavenge" cost measured
 * in the reincarnation study, section 6.3.2).
 *
 * Atomicity: each allocate/free durably applies its word writes — the
 * size-class claim, the bitmap word, and the user's persistent pointer
 * — through an AtomicRedo record, so a crash leaves either the whole
 * operation or none of it.
 */

#ifndef MNEMOSYNE_HEAP_SUPERBLOCK_HEAP_H_
#define MNEMOSYNE_HEAP_SUPERBLOCK_HEAP_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "log/atomic_redo.h"
#include "log/rawl.h"

namespace mnemosyne::heap {

/** Statistics for introspection and the reincarnation benchmark. */
struct SbHeapStats {
    size_t superblocks = 0;
    size_t superblocks_assigned = 0;
    size_t blocks_allocated = 0;
    size_t bytes_allocated = 0;
};

class SuperblockHeap
{
  public:
    static constexpr size_t kSuperblockBytes = 8192;
    static constexpr size_t kMinBlock = 16;
    static constexpr size_t kMaxBlock = 4096;   ///< Half a superblock.
    static constexpr size_t kNumClasses = 9;    ///< 16 .. 4096, powers of 2.
    /** Bitmap words per superblock: 8192/16 = 512 blocks max = 8 words. */
    static constexpr size_t kBitmapWords = 8;

    /** Bytes of persistent memory needed for @p n superblocks, including
     *  metadata and the embedded redo log. */
    static size_t footprint(size_t n_superblocks);

    /** Format @p mem as an empty heap. */
    static std::unique_ptr<SuperblockHeap> create(void *mem, size_t bytes);

    /**
     * Recover a heap: replay any pending redo record, then scavenge the
     * persistent bitmaps to rebuild the volatile indexes.
     */
    static std::unique_ptr<SuperblockHeap> open(void *mem);

    /**
     * Allocate a block of at least @p size bytes and durably store its
     * address into @p pptr (which should live in persistent memory so
     * the allocation cannot leak across a crash).  Returns the block,
     * or nullptr if @p size is out of range or the heap is full.
     */
    void *allocate(size_t size, void **pptr);

    /** Free the block pointed to by *@p pptr and durably nullify it. */
    void free(void **pptr);

    /** Does @p p point into this heap's data area? */
    bool owns(const void *p) const;

    /** Usable size of the block containing @p p. */
    size_t blockSize(const void *p) const;

    SbHeapStats stats() const;

    /** Rebuild the volatile indexes from the persistent bitmaps;
     *  returns the number of superblocks scanned (timed by the
     *  reincarnation benchmark). */
    size_t scavenge();

  private:
    struct Header {
        uint64_t magic;
        uint64_t nSuperblocks;
        uint64_t reserved0;
        uint64_t reserved1;
    };

    /** Persistent per-superblock metadata, separated from the data. */
    struct SbMeta {
        uint64_t sizeClass;             ///< 0 = unassigned, else log2 size.
        uint64_t bitmap[kBitmapWords];  ///< 1 = block allocated.
    };

    /** Volatile per-superblock index. */
    struct SbIndex {
        uint32_t freeBlocks = 0;
        uint32_t blocks = 0;
        int8_t classIdx = -1;
    };

    static constexpr uint64_t kMagic = 0x4d4e534248454150ULL; // "MNSBHEAP"
    static constexpr size_t kRedoLogBytes = 16384;

    SuperblockHeap(Header *hdr, SbMeta *meta, uint8_t *data, void *log_mem);

    static size_t classIndexFor(size_t size);
    static size_t classBlockSize(size_t idx) { return kMinBlock << idx; }

    void *sbData(size_t sb) const { return data_ + sb * kSuperblockBytes; }
    size_t sbOf(const void *p) const;

    Header *hdr_;
    SbMeta *meta_;
    uint8_t *data_;
    size_t nSb_ = 0;

    std::unique_ptr<log::Rawl> log_;
    std::unique_ptr<log::AtomicRedo> redo_;

    // Volatile indexes (rebuilt by scavenge()).
    std::vector<SbIndex> index_;
    std::array<std::vector<uint32_t>, kNumClasses> partial_; ///< sbs w/ space
    std::vector<uint32_t> unassigned_;
};

} // namespace mnemosyne::heap

#endif // MNEMOSYNE_HEAP_SUPERBLOCK_HEAP_H_
