#include "heap/superblock_heap.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>
#include <unordered_map>

#include "obs/hdr_histogram.h"
#include "obs/obs.h"
#include "scm/scm.h"

namespace mnemosyne::heap {

/**
 * Per-thread heap state.  The mutex covers the partial lists, the
 * private redo log, and every superblock the cache owns; in steady
 * state only the owning thread takes it (uncontended), cross-thread
 * frees and superblock transfers are the exceptions.
 */
struct SbThreadCache {
    std::mutex mu;
    std::unique_ptr<log::AtomicRedo> redo;
    std::array<std::vector<uint32_t>, SuperblockHeap::kNumClasses> partial;
    /** Threads currently leasing this cache (shared only when thread
     *  count exceeds kNumCaches); 0 == parked. */
    std::atomic<uint32_t> users{0};
    uint32_t idx = 0;

    /** Bridge for the thread-exit lease destructor below. */
    static void
    park(SuperblockHeap *h, SbThreadCache *tc)
    {
        h->parkCache(tc);
    }
};

namespace {

size_t
alignUp(size_t v, size_t a)
{
    return (v + a - 1) & ~(a - 1);
}

uint64_t
nextHeapId()
{
    static std::atomic<uint64_t> gen{0};
    return gen.fetch_add(1, std::memory_order_relaxed) + 1;
}

struct SbObs {
    obs::Counter transfers{"heap.superblock_transfers"};
    obs::Counter contended{"heap.lock_contended", true};
    /** Contended-acquire wait, HDR-bucketed: heap lock waits cluster
     *  tightly, and log2 buckets hide 2x regressions inside one bin. */
    obs::HdrHistogram lock_wait{"heap.lock_wait_ns"};
};

SbObs &
sbObs()
{
    static SbObs o;
    return o;
}

/**
 * Mutex guard with contention accounting: an uncontended acquisition is
 * one try_lock; a contended one bumps heap.lock_contended (per-thread
 * breakdown) and, when stats are enabled, times the wait into
 * heap.lock_wait_ns.
 */
struct TimedLock {
    explicit TimedLock(std::mutex &m) : mu(m)
    {
        if (mu.try_lock())
            return;
        auto &o = sbObs();
        o.contended.add(1);
        if (obs::enabled()) {
            const uint64_t t0 = obs::nowNs();
            mu.lock();
            o.lock_wait.recordAlways(obs::nowNs() - t0);
        } else {
            mu.lock();
        }
    }
    ~TimedLock() { mu.unlock(); }
    TimedLock(const TimedLock &) = delete;
    TimedLock &operator=(const TimedLock &) = delete;

    std::mutex &mu;
};

/**
 * Live heaps by id (ids are never reused).  Mirrors the transaction
 * manager's log-lease registry: a thread-exit lease destructor must not
 * touch a heap that died first, so the registry mutex is held across
 * the lookup AND the park call.  Allocated immortally because
 * thread_local destructors can outlive function-local statics.
 */
struct HeapRegistry {
    std::mutex mu;
    std::unordered_map<uint64_t, SuperblockHeap *> live;
};

HeapRegistry &
heapRegistry()
{
    static HeapRegistry *r = new HeapRegistry;
    return *r;
}

// One-entry fast path for cacheForThread (a thread allocating from a
// single heap, the common case).  Ids are never reused, so a stale
// entry can only miss, never alias a different heap.
thread_local uint64_t tlFastHeapId = 0;
thread_local SbThreadCache *tlFastCache = nullptr;

/**
 * The calling thread's cache leases, one per heap it has allocated
 * from.  On thread exit each lease is parked so the cache's
 * superblocks return to the global pool and the cache (and its log)
 * is adopted by the next thread instead of being stranded.
 */
struct CacheLeases {
    struct Lease {
        uint64_t heap;
        SbThreadCache *tc;
    };
    std::vector<Lease> leases;

    SbThreadCache *
    find(uint64_t heap) const
    {
        for (const auto &l : leases)
            if (l.heap == heap)
                return l.tc;
        return nullptr;
    }

    void
    drop(uint64_t heap)
    {
        for (auto &l : leases) {
            if (l.heap == heap) {
                l = leases.back();
                leases.pop_back();
                return;
            }
        }
    }

    ~CacheLeases()
    {
        auto &reg = heapRegistry();
        std::lock_guard<std::mutex> g(reg.mu);
        for (const auto &l : leases) {
            auto it = reg.live.find(l.heap);
            if (it != reg.live.end())
                SbThreadCache::park(it->second, l.tc);
        }
    }
};

CacheLeases &
threadCacheLeases()
{
    thread_local CacheLeases leases;
    return leases;
}

} // namespace

size_t
SuperblockHeap::footprint(size_t n_superblocks)
{
    return alignUp(sizeof(Header) + n_superblocks * sizeof(SbMeta) +
                       kNumLogs * kRedoLogBytes,
                   kSuperblockBytes) +
           n_superblocks * kSuperblockBytes;
}

size_t
SuperblockHeap::classIndexFor(size_t size)
{
    if (size == 0)
        size = 1;
    const size_t rounded = std::bit_ceil(std::max(size, kMinBlock));
    if (rounded > kMaxBlock)
        return kNumClasses;
    return size_t(std::countr_zero(rounded)) -
           size_t(std::countr_zero(kMinBlock));
}

SuperblockHeap::SuperblockHeap(Header *hdr, SbMeta *meta, uint8_t *data,
                               uint8_t *logs_mem)
    : hdr_(hdr), meta_(meta), data_(data), heapId_(nextHeapId())
{
    (void)logs_mem;
    nSb_ = size_t(hdr->nSuperblocks);
    owner_ = std::vector<std::atomic<SbThreadCache *>>(nSb_);
    caches_.reserve(kNumCaches);
    auto &reg = heapRegistry();
    std::lock_guard<std::mutex> g(reg.mu);
    reg.live.emplace(heapId_, this);
}

SuperblockHeap::~SuperblockHeap()
{
    // After this, exiting threads' lease destructors skip us.
    auto &reg = heapRegistry();
    std::lock_guard<std::mutex> g(reg.mu);
    reg.live.erase(heapId_);
}

std::unique_ptr<SuperblockHeap>
SuperblockHeap::create(void *mem, size_t bytes)
{
    auto *hdr = static_cast<Header *>(mem);
    // Solve for the superblock count that fits in @p bytes.
    size_t n = bytes / kSuperblockBytes;
    while (n > 0 && footprint(n) > bytes)
        --n;
    assert(n > 0 && "heap region too small");

    auto *meta = reinterpret_cast<SbMeta *>(hdr + 1);
    auto *logs_mem = reinterpret_cast<uint8_t *>(meta + n);
    auto *data = static_cast<uint8_t *>(mem) +
                 alignUp(sizeof(Header) + n * sizeof(SbMeta) +
                             kNumLogs * kRedoLogBytes,
                         kSuperblockBytes);

    auto &c = scm::ctx();
    // Fresh regions are zero-filled; persist the metadata explicitly
    // anyway (sizeClass 0 == unassigned and an all-zero bitmap is
    // exactly the empty state).
    std::vector<uint8_t> zero(n * sizeof(SbMeta), 0);
    c.wtstore(meta, zero.data(), zero.size());

    // Format the logs before the header so a valid magic implies valid
    // logs.
    std::vector<std::unique_ptr<log::Rawl>> logs;
    for (size_t i = 0; i < kNumLogs; ++i)
        logs.push_back(
            log::Rawl::create(logs_mem + i * kRedoLogBytes, kRedoLogBytes));

    Header h{kMagic, n, kNumLogs, 0};
    c.wtstore(hdr, &h, sizeof(h));
    c.fence();

    auto heap = std::unique_ptr<SuperblockHeap>(
        new SuperblockHeap(hdr, meta, data, logs_mem));
    heap->logs_ = std::move(logs);
    heap->poolRedo_ =
        std::make_unique<log::AtomicRedo>(*heap->logs_[kNumCaches]);
    heap->scavenge();
    return heap;
}

std::unique_ptr<SuperblockHeap>
SuperblockHeap::open(void *mem)
{
    auto *hdr = static_cast<Header *>(mem);
    if (hdr->magic != kMagic || hdr->nLogs != kNumLogs)
        return nullptr;
    const size_t n = size_t(hdr->nSuperblocks);
    auto *meta = reinterpret_cast<SbMeta *>(hdr + 1);
    auto *logs_mem = reinterpret_cast<uint8_t *>(meta + n);
    auto *data = static_cast<uint8_t *>(mem) +
                 alignUp(sizeof(Header) + n * sizeof(SbMeta) +
                             kNumLogs * kRedoLogBytes,
                         kSuperblockBytes);

    auto heap = std::unique_ptr<SuperblockHeap>(
        new SuperblockHeap(hdr, meta, data, logs_mem));
    for (size_t i = 0; i < kNumLogs; ++i) {
        auto log = log::Rawl::open(logs_mem + i * kRedoLogBytes);
        if (!log)
            return nullptr;
        heap->logs_.push_back(std::move(log));
    }
    // Complete any interrupted allocate/free.  Replay order across logs
    // does not matter: bitmap words are only mutated under the owning
    // cache's mutex and a record's lifetime is contained in that
    // critical section, so at crash time at most one pending record in
    // all logs touches any given word (see the file header).
    for (auto &log : heap->logs_)
        log::AtomicRedo(*log).recover();
    heap->poolRedo_ =
        std::make_unique<log::AtomicRedo>(*heap->logs_[kNumCaches]);
    heap->scavenge();
    return heap;
}

size_t
SuperblockHeap::scavenge()
{
    // Quiescent-only: create/open call this before any thread cache
    // exists, so indexes can be rebuilt without locks.
    assert(caches_.empty());
    index_.assign(nSb_, SbIndex{});
    for (size_t sb = 0; sb < nSb_; ++sb)
        owner_[sb].store(nullptr, std::memory_order_relaxed);
    for (auto &p : poolPartial_)
        p.clear();
    poolFree_.clear();
    unassigned_.clear();

    for (size_t sb = 0; sb < nSb_; ++sb) {
        const SbMeta &m = meta_[sb];
        if (m.sizeClass == 0) {
            unassigned_.push_back(uint32_t(sb));
            continue;
        }
        const size_t cls = size_t(m.sizeClass) - 1;
        const size_t blocks = kSuperblockBytes / classBlockSize(cls);
        size_t used = 0;
        for (size_t w = 0; w < kBitmapWords; ++w)
            used += size_t(std::popcount(m.bitmap[w]));
        index_[sb].classIdx = int8_t(cls);
        index_[sb].blocks = uint32_t(blocks);
        index_[sb].freeBlocks = uint32_t(blocks - used);
        if (used == 0) {
            // Fully free: reclassifiable, back to the pool.
            pushFreePool(uint32_t(sb));
        } else if (used < blocks) {
            pushList(poolPartial_[cls], uint32_t(sb));
        }
        // Full superblocks stay unlisted until a free arrives.
    }
    return nSb_;
}

size_t
SuperblockHeap::sbOf(const void *p) const
{
    const auto off = size_t(static_cast<const uint8_t *>(p) - data_);
    return off / kSuperblockBytes;
}

bool
SuperblockHeap::owns(const void *p) const
{
    return p >= data_ && p < data_ + nSb_ * kSuperblockBytes;
}

size_t
SuperblockHeap::blockSize(const void *p) const
{
    const size_t sb = sbOf(p);
    assert(sb < nSb_ && meta_[sb].sizeClass != 0);
    return classBlockSize(size_t(meta_[sb].sizeClass) - 1);
}

void
SuperblockHeap::pushList(std::vector<uint32_t> &list, uint32_t sb)
{
    index_[sb].listPos = uint32_t(list.size());
    index_[sb].listed = true;
    list.push_back(sb);
}

void
SuperblockHeap::pushFreePool(uint32_t sb)
{
    // Not "listed": poolFree_ superblocks have no allocated blocks, so
    // the free path can never reach them.
    index_[sb].listPos = uint32_t(poolFree_.size());
    index_[sb].listed = false;
    poolFree_.push_back(sb);
}

void
SuperblockHeap::removeFromList(std::vector<uint32_t> &list, uint32_t sb)
{
    const uint32_t pos = index_[sb].listPos;
    assert(pos < list.size() && list[pos] == sb);
    list[pos] = list.back();
    index_[list[pos]].listPos = pos;
    list.pop_back();
    index_[sb].listed = false;
}

void
SuperblockHeap::claimIndex(uint32_t sb, size_t cls)
{
    const size_t blocks = kSuperblockBytes / classBlockSize(cls);
    index_[sb].classIdx = int8_t(cls);
    index_[sb].blocks = uint32_t(blocks);
    index_[sb].freeBlocks = uint32_t(blocks);
    index_[sb].listed = false;
}

SbThreadCache *
SuperblockHeap::cacheForThread()
{
    if (tlFastHeapId == heapId_)
        return tlFastCache;
    auto &leases = threadCacheLeases();
    SbThreadCache *tc = leases.find(heapId_);
    if (tc == nullptr) {
        {
            TimedLock g(poolMu_);
            tc = acquireCacheLocked();
        }
        leases.leases.push_back({heapId_, tc});
    }
    tlFastHeapId = heapId_;
    tlFastCache = tc;
    return tc;
}

SbThreadCache *
SuperblockHeap::acquireCacheLocked()
{
    // Prefer a fresh cache while slots (== private logs) remain: a new
    // cache has a never-shared mutex and spreads recovery work across
    // the logs.
    if (caches_.size() < kNumCaches) {
        auto tc = std::make_unique<SbThreadCache>();
        tc->idx = uint32_t(caches_.size());
        tc->redo = std::make_unique<log::AtomicRedo>(*logs_[tc->idx]);
        tc->users.store(1, std::memory_order_relaxed);
        caches_.push_back(std::move(tc));
        return caches_.back().get();
    }
    if (!parkedCaches_.empty()) {
        SbThreadCache *tc = caches_[parkedCaches_.back()].get();
        parkedCaches_.pop_back();
        tc->users.fetch_add(1, std::memory_order_relaxed);
        return tc;
    }
    // More live threads than caches: share one round-robin.  Every
    // cache operation takes the cache mutex, so sharing is merely
    // contended, never incorrect.
    const uint32_t idx =
        rrNext_.fetch_add(1, std::memory_order_relaxed) % uint32_t(kNumCaches);
    SbThreadCache *tc = caches_[idx].get();
    tc->users.fetch_add(1, std::memory_order_relaxed);
    return tc;
}

void
SuperblockHeap::parkCache(SbThreadCache *tc)
{
    TimedLock g(tc->mu);
    if (tc->users.fetch_sub(1, std::memory_order_acq_rel) != 1)
        return; // still shared by another thread
    std::lock_guard<std::mutex> g2(poolMu_);
    for (size_t cls = 0; cls < kNumClasses; ++cls) {
        for (const uint32_t sb : tc->partial[cls]) {
            index_[sb].listed = false;
            owner_[sb].store(nullptr, std::memory_order_release);
            if (index_[sb].freeBlocks == index_[sb].blocks)
                pushFreePool(sb);
            else
                pushList(poolPartial_[cls], sb);
            sbObs().transfers.add(1);
        }
        tc->partial[cls].clear();
    }
    // Full superblocks keep owner == tc; frees into them still lock
    // tc->mu and hand them to the pool (freeInCache's parked branch).
    parkedCaches_.push_back(tc->idx);
}

void
SuperblockHeap::detachThreadCache()
{
    auto &leases = threadCacheLeases();
    SbThreadCache *tc = leases.find(heapId_);
    if (tc == nullptr)
        return;
    leases.drop(heapId_);
    if (tlFastHeapId == heapId_) {
        tlFastHeapId = 0;
        tlFastCache = nullptr;
    }
    parkCache(tc);
}

bool
SuperblockHeap::refill(SbThreadCache *tc, size_t cls, uint32_t *out_sb,
                       bool *out_claim)
{
    TimedLock g(poolMu_);
    uint32_t sb;
    if (!poolPartial_[cls].empty()) {
        sb = poolPartial_[cls].back();
        removeFromList(poolPartial_[cls], sb);
        *out_claim = false;
    } else if (!poolFree_.empty()) {
        sb = poolFree_.back();
        poolFree_.pop_back();
        claimIndex(sb, cls);
        *out_claim = true;
    } else if (!unassigned_.empty()) {
        sb = unassigned_.back();
        unassigned_.pop_back();
        claimIndex(sb, cls);
        *out_claim = true;
    } else {
        return false; // heap full for this class
    }
    owner_[sb].store(tc, std::memory_order_release);
    pushList(tc->partial[cls], sb);
    sbObs().transfers.add(1);
    *out_sb = sb;
    return true;
}

void *
SuperblockHeap::allocInSb(uint32_t sb, size_t cls, bool claim, void **pptr,
                          log::AtomicRedo &redo, std::vector<uint32_t> &list)
{
    SbMeta &m = meta_[sb];
    const size_t bsz = classBlockSize(cls);
    const size_t blocks = index_[sb].blocks;
    assert(index_[sb].freeBlocks > 0);

    // Pick the first clear bit.
    size_t blk = blocks;
    for (size_t w = 0; w < kBitmapWords && blk == blocks; ++w) {
        const uint64_t inverted = ~m.bitmap[w];
        if (inverted == 0)
            continue;
        const size_t bit = size_t(std::countr_zero(inverted));
        if (w * 64 + bit < blocks)
            blk = w * 64 + bit;
    }
    assert(blk < blocks && "index said free but bitmap is full");

    void *block = static_cast<uint8_t *>(sbData(sb)) + blk * bsz;

    // Durably apply: (size-class claim,) bitmap bit, destination pointer.
    const size_t word = blk / 64;
    log::WordWrite writes[3];
    size_t nw = 0;
    if (claim)
        writes[nw++] = {&m.sizeClass, uint64_t(cls) + 1};
    writes[nw++] = {&m.bitmap[word],
                    m.bitmap[word] | (uint64_t(1) << (blk % 64))};
    writes[nw++] = {reinterpret_cast<uint64_t *>(pptr),
                    reinterpret_cast<uint64_t>(block)};
    redo.apply({writes, nw});

    if (--index_[sb].freeBlocks == 0)
        removeFromList(list, sb);
    return block;
}

void *
SuperblockHeap::allocateFromPoolLocked(size_t cls, void **pptr)
{
    uint32_t sb;
    bool claim = false;
    if (!poolPartial_[cls].empty()) {
        sb = poolPartial_[cls].back();
    } else if (!poolFree_.empty()) {
        sb = poolFree_.back();
        poolFree_.pop_back();
        claimIndex(sb, cls);
        claim = true;
        pushList(poolPartial_[cls], sb);
    } else if (!unassigned_.empty()) {
        sb = unassigned_.back();
        unassigned_.pop_back();
        claimIndex(sb, cls);
        claim = true;
        pushList(poolPartial_[cls], sb);
    } else {
        return nullptr; // heap full for this class
    }
    return allocInSb(sb, cls, claim, pptr, *poolRedo_, poolPartial_[cls]);
}

void *
SuperblockHeap::allocate(size_t size, void **pptr)
{
    const size_t cls = classIndexFor(size);
    if (cls >= kNumClasses)
        return nullptr;

    if (serialized_.load(std::memory_order_acquire)) {
        TimedLock g(poolMu_);
        return allocateFromPoolLocked(cls, pptr);
    }

    SbThreadCache *tc = cacheForThread();
    TimedLock g(tc->mu);
    uint32_t sb;
    bool claim = false;
    if (!tc->partial[cls].empty()) {
        // Listed entries always have space: superblocks are delisted
        // the moment they fill up.
        sb = tc->partial[cls].back();
    } else if (!refill(tc, cls, &sb, &claim)) {
        return nullptr;
    }
    return allocInSb(sb, cls, claim, pptr, *tc->redo, tc->partial[cls]);
}

size_t
SuperblockHeap::freeInSb(void **pptr, log::AtomicRedo &redo)
{
    void *p = *pptr;
    const size_t sb = sbOf(p);
    SbMeta &m = meta_[sb];
    assert(m.sizeClass != 0 && "free into unassigned superblock");
    const size_t cls = size_t(m.sizeClass) - 1;
    const size_t bsz = classBlockSize(cls);
    const size_t blk = size_t(static_cast<uint8_t *>(p) -
                              static_cast<uint8_t *>(sbData(sb))) /
                       bsz;
    const size_t word = blk / 64;
    assert((m.bitmap[word] >> (blk % 64)) & 1 && "double free");

    const log::WordWrite writes[] = {
        {&m.bitmap[word], m.bitmap[word] & ~(uint64_t(1) << (blk % 64))},
        {reinterpret_cast<uint64_t *>(pptr), 0},
    };
    redo.apply(writes);

    index_[sb].freeBlocks++;
    assert(index_[sb].freeBlocks <= index_[sb].blocks);
    return cls;
}

void
SuperblockHeap::freeInCache(SbThreadCache *o, uint32_t sb, void **pptr)
{
    const size_t cls = freeInSb(pptr, *o->redo);
    SbIndex &ix = index_[sb];
    if (!ix.listed) {
        // Full -> partial again.
        if (o->users.load(std::memory_order_relaxed) == 0) {
            // Owner is parked: hand the superblock straight to the pool
            // so allocating threads can find it.
            std::lock_guard<std::mutex> g(poolMu_);
            owner_[sb].store(nullptr, std::memory_order_release);
            pushList(poolPartial_[cls], sb);
            sbObs().transfers.add(1);
        } else {
            pushList(o->partial[cls], sb);
        }
    } else if (ix.freeBlocks == ix.blocks && o->partial[cls].size() > 1) {
        // Hoard's emptiness threshold: a cache keeps at most one spare
        // superblock per class; the rest return to the pool so memory
        // consumption stays bounded under producer/consumer patterns.
        removeFromList(o->partial[cls], sb);
        std::lock_guard<std::mutex> g(poolMu_);
        owner_[sb].store(nullptr, std::memory_order_release);
        pushFreePool(sb);
        sbObs().transfers.add(1);
    }
}

void
SuperblockHeap::freeInPoolLocked(uint32_t sb, void **pptr)
{
    const size_t cls = freeInSb(pptr, *poolRedo_);
    SbIndex &ix = index_[sb];
    if (!ix.listed) {
        pushList(poolPartial_[cls], sb);
    } else if (ix.freeBlocks == ix.blocks) {
        removeFromList(poolPartial_[cls], sb);
        pushFreePool(sb);
    }
}

void
SuperblockHeap::free(void **pptr)
{
    void *p = *pptr;
    assert(owns(p));
    const auto sb = uint32_t(sbOf(p));

    if (serialized_.load(std::memory_order_acquire)) {
        TimedLock g(poolMu_);
        freeInPoolLocked(sb, pptr);
        return;
    }

    for (;;) {
        SbThreadCache *o = owner_[sb].load(std::memory_order_acquire);
        if (o == nullptr) {
            TimedLock g(poolMu_);
            if (owner_[sb].load(std::memory_order_relaxed) != nullptr)
                continue; // refilled into a cache while we waited
            freeInPoolLocked(sb, pptr);
            return;
        }
        TimedLock g(o->mu);
        if (owner_[sb].load(std::memory_order_relaxed) != o)
            continue; // migrated while we waited for the lock
        freeInCache(o, sb, pptr);
        return;
    }
}

void
SuperblockHeap::setSerialized(bool on)
{
    // Configuration-time switch: callers must quiesce the heap first
    // (the scaling benchmark flips it before spawning workers).
    if (on && !serialized_.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> g(poolMu_);
        for (auto &tcp : caches_) {
            SbThreadCache *tc = tcp.get();
            for (size_t cls = 0; cls < kNumClasses; ++cls) {
                for (const uint32_t sb : tc->partial[cls]) {
                    index_[sb].listed = false;
                    if (index_[sb].freeBlocks == index_[sb].blocks)
                        pushFreePool(sb);
                    else
                        pushList(poolPartial_[cls], sb);
                }
                tc->partial[cls].clear();
            }
        }
        for (size_t sb = 0; sb < nSb_; ++sb)
            owner_[sb].store(nullptr, std::memory_order_release);
    }
    serialized_.store(on, std::memory_order_release);
}

size_t
SuperblockHeap::threadCacheCount() const
{
    std::lock_guard<std::mutex> g(poolMu_);
    return caches_.size();
}

size_t
SuperblockHeap::pooledSuperblocks() const
{
    std::lock_guard<std::mutex> g(poolMu_);
    size_t n = poolFree_.size();
    for (const auto &l : poolPartial_)
        n += l.size();
    return n;
}

SbHeapStats
SuperblockHeap::stats() const
{
    // Reads the persistent bitmaps without locks: values are exact at a
    // quiescent point and advisory while allocations are in flight.
    SbHeapStats s;
    s.superblocks = nSb_;
    for (size_t sb = 0; sb < nSb_; ++sb) {
        const SbMeta &m = meta_[sb];
        if (m.sizeClass == 0)
            continue;
        s.superblocks_assigned++;
        size_t used = 0;
        for (size_t w = 0; w < kBitmapWords; ++w)
            used += size_t(std::popcount(m.bitmap[w]));
        s.blocks_allocated += used;
        s.bytes_allocated += used * classBlockSize(size_t(m.sizeClass) - 1);
    }
    return s;
}

} // namespace mnemosyne::heap
