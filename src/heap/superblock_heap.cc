#include "heap/superblock_heap.h"

#include <bit>
#include <cassert>
#include <cstring>

#include "scm/scm.h"

namespace mnemosyne::heap {

namespace {

size_t
alignUp(size_t v, size_t a)
{
    return (v + a - 1) & ~(a - 1);
}

} // namespace

size_t
SuperblockHeap::footprint(size_t n_superblocks)
{
    return alignUp(sizeof(Header) + n_superblocks * sizeof(SbMeta) +
                       kRedoLogBytes,
                   kSuperblockBytes) +
           n_superblocks * kSuperblockBytes;
}

size_t
SuperblockHeap::classIndexFor(size_t size)
{
    if (size == 0)
        size = 1;
    const size_t rounded = std::bit_ceil(std::max(size, kMinBlock));
    if (rounded > kMaxBlock)
        return kNumClasses;
    return size_t(std::countr_zero(rounded)) -
           size_t(std::countr_zero(kMinBlock));
}

SuperblockHeap::SuperblockHeap(Header *hdr, SbMeta *meta, uint8_t *data,
                               void *log_mem)
    : hdr_(hdr), meta_(meta), data_(data)
{
    nSb_ = size_t(hdr->nSuperblocks);
    (void)log_mem;
}

std::unique_ptr<SuperblockHeap>
SuperblockHeap::create(void *mem, size_t bytes)
{
    auto *hdr = static_cast<Header *>(mem);
    // Solve for the superblock count that fits in @p bytes.
    size_t n = bytes / kSuperblockBytes;
    while (n > 0 && footprint(n) > bytes)
        --n;
    assert(n > 0 && "heap region too small");

    auto *meta = reinterpret_cast<SbMeta *>(hdr + 1);
    auto *log_mem = reinterpret_cast<uint8_t *>(meta + n);
    auto *data = static_cast<uint8_t *>(mem) +
                 alignUp(sizeof(Header) + n * sizeof(SbMeta) + kRedoLogBytes,
                         kSuperblockBytes);

    auto &c = scm::ctx();
    // Fresh regions are zero-filled; just assert the precondition in
    // debug and persist the header.  (sizeClass 0 == unassigned and an
    // all-zero bitmap is exactly the empty state.)
    std::vector<uint8_t> zero(n * sizeof(SbMeta), 0);
    c.wtstore(meta, zero.data(), zero.size());
    Header h{kMagic, n, 0, 0};
    c.wtstore(hdr, &h, sizeof(h));
    c.fence();

    auto heap = std::unique_ptr<SuperblockHeap>(
        new SuperblockHeap(hdr, meta, data, log_mem));
    heap->log_ = log::Rawl::create(log_mem, kRedoLogBytes);
    heap->redo_ = std::make_unique<log::AtomicRedo>(*heap->log_);
    heap->scavenge();
    return heap;
}

std::unique_ptr<SuperblockHeap>
SuperblockHeap::open(void *mem)
{
    auto *hdr = static_cast<Header *>(mem);
    if (hdr->magic != kMagic)
        return nullptr;
    const size_t n = size_t(hdr->nSuperblocks);
    auto *meta = reinterpret_cast<SbMeta *>(hdr + 1);
    auto *log_mem = reinterpret_cast<uint8_t *>(meta + n);
    auto *data = static_cast<uint8_t *>(mem) +
                 alignUp(sizeof(Header) + n * sizeof(SbMeta) + kRedoLogBytes,
                         kSuperblockBytes);

    auto heap = std::unique_ptr<SuperblockHeap>(
        new SuperblockHeap(hdr, meta, data, log_mem));
    heap->log_ = log::Rawl::open(log_mem);
    if (!heap->log_)
        return nullptr;
    heap->redo_ = std::make_unique<log::AtomicRedo>(*heap->log_);
    // Complete any interrupted allocate/free, then rebuild the indexes.
    heap->redo_->recover();
    heap->scavenge();
    return heap;
}

size_t
SuperblockHeap::scavenge()
{
    index_.assign(nSb_, SbIndex{});
    for (auto &p : partial_)
        p.clear();
    unassigned_.clear();

    for (size_t sb = 0; sb < nSb_; ++sb) {
        const SbMeta &m = meta_[sb];
        if (m.sizeClass == 0) {
            unassigned_.push_back(uint32_t(sb));
            continue;
        }
        const size_t cls = size_t(m.sizeClass) - 1;
        const size_t blocks = kSuperblockBytes / classBlockSize(cls);
        size_t used = 0;
        for (size_t w = 0; w < kBitmapWords; ++w)
            used += size_t(std::popcount(m.bitmap[w]));
        index_[sb].classIdx = int8_t(cls);
        index_[sb].blocks = uint32_t(blocks);
        index_[sb].freeBlocks = uint32_t(blocks - used);
        if (used < blocks)
            partial_[cls].push_back(uint32_t(sb));
    }
    return nSb_;
}

size_t
SuperblockHeap::sbOf(const void *p) const
{
    const auto off = size_t(static_cast<const uint8_t *>(p) - data_);
    return off / kSuperblockBytes;
}

bool
SuperblockHeap::owns(const void *p) const
{
    return p >= data_ && p < data_ + nSb_ * kSuperblockBytes;
}

size_t
SuperblockHeap::blockSize(const void *p) const
{
    const size_t sb = sbOf(p);
    assert(sb < nSb_ && meta_[sb].sizeClass != 0);
    return classBlockSize(size_t(meta_[sb].sizeClass) - 1);
}

void *
SuperblockHeap::allocate(size_t size, void **pptr)
{
    const size_t cls = classIndexFor(size);
    if (cls >= kNumClasses)
        return nullptr;
    const size_t bsz = classBlockSize(cls);
    const size_t blocks = kSuperblockBytes / bsz;

    // Find a superblock of this class with space, else claim a fresh one.
    uint32_t sb;
    bool claim = false;
    while (true) {
        if (!partial_[cls].empty()) {
            sb = partial_[cls].back();
            if (index_[sb].freeBlocks == 0) {
                partial_[cls].pop_back();
                continue;
            }
            break;
        }
        if (unassigned_.empty())
            return nullptr; // heap full for this class
        sb = unassigned_.back();
        unassigned_.pop_back();
        claim = true;
        index_[sb].classIdx = int8_t(cls);
        index_[sb].blocks = uint32_t(blocks);
        index_[sb].freeBlocks = uint32_t(blocks);
        partial_[cls].push_back(sb);
        break;
    }

    // Pick the first clear bit.
    SbMeta &m = meta_[sb];
    size_t blk = blocks;
    for (size_t w = 0; w < kBitmapWords && blk == blocks; ++w) {
        const uint64_t inverted = ~m.bitmap[w];
        if (inverted == 0)
            continue;
        const size_t bit = size_t(std::countr_zero(inverted));
        if (w * 64 + bit < blocks)
            blk = w * 64 + bit;
    }
    assert(blk < blocks && "index said free but bitmap is full");

    void *block = static_cast<uint8_t *>(sbData(sb)) + blk * bsz;

    // Durably apply: (size-class claim,) bitmap bit, destination pointer.
    const size_t word = blk / 64;
    log::WordWrite writes[3];
    size_t nw = 0;
    if (claim)
        writes[nw++] = {&m.sizeClass, uint64_t(cls) + 1};
    writes[nw++] = {&m.bitmap[word],
                    m.bitmap[word] | (uint64_t(1) << (blk % 64))};
    writes[nw++] = {reinterpret_cast<uint64_t *>(pptr),
                    reinterpret_cast<uint64_t>(block)};
    redo_->apply({writes, nw});

    index_[sb].freeBlocks--;
    return block;
}

void
SuperblockHeap::free(void **pptr)
{
    void *p = *pptr;
    assert(owns(p));
    const size_t sb = sbOf(p);
    SbMeta &m = meta_[sb];
    assert(m.sizeClass != 0 && "free into unassigned superblock");
    const size_t cls = size_t(m.sizeClass) - 1;
    const size_t bsz = classBlockSize(cls);
    const size_t blk =
        size_t(static_cast<uint8_t *>(p) -
               static_cast<uint8_t *>(sbData(sb))) / bsz;
    const size_t word = blk / 64;
    assert((m.bitmap[word] >> (blk % 64)) & 1 && "double free");

    const log::WordWrite writes[] = {
        {&m.bitmap[word], m.bitmap[word] & ~(uint64_t(1) << (blk % 64))},
        {reinterpret_cast<uint64_t *>(pptr), 0},
    };
    redo_->apply(writes);

    if (index_[sb].freeBlocks == 0)
        partial_[cls].push_back(uint32_t(sb));
    index_[sb].freeBlocks++;
    // Note: fully-free superblocks keep their class; reclaiming them to
    // the unassigned pool would need an extra durable transition and the
    // paper does not describe one.
}

SbHeapStats
SuperblockHeap::stats() const
{
    SbHeapStats s;
    s.superblocks = nSb_;
    for (size_t sb = 0; sb < nSb_; ++sb) {
        const SbMeta &m = meta_[sb];
        if (m.sizeClass == 0)
            continue;
        s.superblocks_assigned++;
        size_t used = 0;
        for (size_t w = 0; w < kBitmapWords; ++w)
            used += size_t(std::popcount(m.bitmap[w]));
        s.blocks_allocated += used;
        s.bytes_allocated += used * classBlockSize(size_t(m.sizeClass) - 1);
    }
    return s;
}

} // namespace mnemosyne::heap
