#include "heap/pheap.h"

#include <cassert>
#include <new>
#include <stdexcept>

namespace mnemosyne::heap {

PHeap::PHeap(region::RegionLayer &rl, size_t small_bytes, size_t big_bytes)
    : rl_(rl)
{
    auto small_region = rl.findByFlags(region::kRegionHeap);
    if (small_region.addr == nullptr) {
        void *mem = rl.pmap(nullptr, small_bytes, region::kRegionHeap);
        small_ = SuperblockHeap::create(mem, small_bytes);
    } else {
        small_ = SuperblockHeap::open(small_region.addr);
        if (!small_)
            throw std::runtime_error("PHeap: corrupt superblock heap");
    }
    initStats_.scavenged_superblocks = small_->stats().superblocks;

    auto big_region = rl.findByFlags(region::kRegionHeapBig);
    if (big_region.addr == nullptr) {
        void *mem = rl.pmap(nullptr, big_bytes, region::kRegionHeapBig);
        big_ = BigAlloc::create(mem, big_bytes);
    } else {
        big_ = BigAlloc::open(big_region.addr);
        if (!big_)
            throw std::runtime_error("PHeap: corrupt big-block heap");
    }
    initStats_.walked_chunks = big_->rebuildFreeList();
}

void
PHeap::pmalloc(size_t size, void *pptr)
{
    assert(pptr != nullptr);
    std::lock_guard<std::mutex> g(mu_);
    auto **slot = static_cast<void **>(pptr);
    if (size <= SuperblockHeap::kMaxBlock) {
        if (small_->allocate(size, slot))
            return;
        // Small heap exhausted: fall through to the big allocator.
    }
    if (!big_->allocate(size, slot))
        throw std::bad_alloc();
}

void
PHeap::pfree(void *pptr)
{
    assert(pptr != nullptr);
    std::lock_guard<std::mutex> g(mu_);
    auto **slot = static_cast<void **>(pptr);
    void *p = *slot;
    assert(p != nullptr && "pfree of null pointer");
    if (small_->owns(p)) {
        small_->free(slot);
    } else if (big_->owns(p)) {
        big_->free(slot);
    } else {
        throw std::invalid_argument("pfree: pointer not from this heap");
    }
}

size_t
PHeap::usableSize(const void *p) const
{
    if (small_->owns(p))
        return small_->blockSize(p);
    if (big_->owns(p))
        return big_->blockSize(p);
    return 0;
}

bool
PHeap::owns(const void *p) const
{
    return small_->owns(p) || big_->owns(p);
}

PHeapStats
PHeap::stats() const
{
    PHeapStats s = initStats_;
    s.small = small_->stats();
    s.big = big_->stats();
    return s;
}

} // namespace mnemosyne::heap
