#include "heap/pheap.h"

#include <cassert>
#include <new>
#include <stdexcept>

#include "obs/obs.h"
#include "obs/stats_registry.h"
#include "obs/trace_ring.h"

namespace mnemosyne::heap {

namespace {

struct HeapCounters {
    obs::Counter pmallocs{"heap.pmallocs"};
    obs::Counter pfrees{"heap.pfrees"};
    obs::Counter bytes_requested{"heap.bytes_requested"};
    obs::Counter small_exhausted{"heap.small_exhausted"};
};

HeapCounters &
ctrs()
{
    static HeapCounters c;
    return c;
}

} // namespace

PHeap::PHeap(region::RegionLayer &rl, size_t small_bytes, size_t big_bytes,
             bool global_lock)
    : rl_(rl), globalLock_(global_lock)
{
    auto small_region = rl.findByFlags(region::kRegionHeap);
    if (small_region.addr == nullptr) {
        void *mem = rl.pmap(nullptr, small_bytes, region::kRegionHeap);
        small_ = SuperblockHeap::create(mem, small_bytes);
    } else {
        small_ = SuperblockHeap::open(small_region.addr);
        if (!small_)
            throw std::runtime_error("PHeap: corrupt superblock heap");
    }
    if (globalLock_)
        small_->setSerialized(true);
    initStats_.scavenged_superblocks = small_->stats().superblocks;

    auto big_region = rl.findByFlags(region::kRegionHeapBig);
    if (big_region.addr == nullptr) {
        void *mem = rl.pmap(nullptr, big_bytes, region::kRegionHeapBig);
        big_ = StripedBigAlloc::create(mem, big_bytes);
    } else {
        big_ = StripedBigAlloc::open(big_region.addr);
        if (!big_)
            throw std::runtime_error("PHeap: corrupt big-block heap");
    }
    initStats_.walked_chunks = big_->rebuildFreeList();

    statsSourceToken_ =
        obs::StatsRegistry::instance().addSource([this](obs::Sink &sink) {
            const PHeapStats s = stats();
            sink.emit("heap.superblocks", uint64_t(s.small.superblocks));
            sink.emit("heap.small_blocks_allocated",
                      uint64_t(s.small.blocks_allocated));
            sink.emit("heap.small_bytes_allocated",
                      uint64_t(s.small.bytes_allocated));
            sink.emit("heap.big_chunks_in_use", uint64_t(s.big.chunks_in_use));
            sink.emit("heap.big_bytes_in_use", uint64_t(s.big.bytes_in_use));
            sink.emit("heap.scavenged_superblocks",
                      uint64_t(s.scavenged_superblocks));
            sink.emit("heap.walked_chunks", uint64_t(s.walked_chunks));
        });
}

PHeap::~PHeap()
{
    obs::StatsRegistry::instance().removeSource(statsSourceToken_);
}

void
PHeap::pmalloc(size_t size, void *pptr)
{
    assert(pptr != nullptr);
    // Baseline mode only: the sub-allocators carry their own locks.
    std::unique_lock<std::mutex> g(mu_, std::defer_lock);
    if (globalLock_)
        g.lock();
    auto **slot = static_cast<void **>(pptr);
    ctrs().pmallocs.add(1);
    ctrs().bytes_requested.add(size);
    obs::TraceRing::instance().record(obs::TraceEv::kHeapAlloc, size);
    if (size <= SuperblockHeap::kMaxBlock) {
        if (small_->allocate(size, slot))
            return;
        // Small heap exhausted: fall through to the big allocator.
        ctrs().small_exhausted.add(1);
    }
    if (!big_->allocate(size, slot))
        throw std::bad_alloc();
}

void
PHeap::pfree(void *pptr)
{
    assert(pptr != nullptr);
    std::unique_lock<std::mutex> g(mu_, std::defer_lock);
    if (globalLock_)
        g.lock();
    auto **slot = static_cast<void **>(pptr);
    void *p = *slot;
    assert(p != nullptr && "pfree of null pointer");
    ctrs().pfrees.add(1);
    obs::TraceRing::instance().record(obs::TraceEv::kHeapFree,
                                      uintptr_t(p));
    if (small_->owns(p)) {
        small_->free(slot);
    } else if (big_->owns(p)) {
        big_->free(slot);
    } else {
        throw std::invalid_argument("pfree: pointer not from this heap");
    }
}

size_t
PHeap::usableSize(const void *p) const
{
    if (small_->owns(p))
        return small_->blockSize(p);
    if (big_->owns(p))
        return big_->blockSize(p);
    return 0;
}

bool
PHeap::owns(const void *p) const
{
    return small_->owns(p) || big_->owns(p);
}

PHeapStats
PHeap::stats() const
{
    PHeapStats s = initStats_;
    s.small = small_->stats();
    s.big = big_->stats();
    return s;
}

} // namespace mnemosyne::heap
