/**
 * @file
 * The persistent heap facade: pmalloc / pfree (paper sections 3.2.2 and
 * 4.3).
 *
 * Requests smaller than a superblock go to the modified Hoard
 * (SuperblockHeap); larger requests fall back to the dlmalloc-style
 * BigAlloc.  Allocated memory and allocation sizes persist across
 * program invocations, so memory can be allocated during one invocation
 * and freed during the next.
 *
 * pmalloc takes a pointer to a persistent pointer so that memory is not
 * lost if a crash happens just after an allocation; pfree takes the
 * same so the pointer does not keep referring to a deallocated chunk if
 * the system fails just after a deallocation (section 3.4).
 */

#ifndef MNEMOSYNE_HEAP_PHEAP_H_
#define MNEMOSYNE_HEAP_PHEAP_H_

#include <cstddef>
#include <memory>
#include <mutex>

#include "heap/big_alloc.h"
#include "heap/superblock_heap.h"
#include "region/region_table.h"

namespace mnemosyne::heap {

struct PHeapStats {
    SbHeapStats small;
    BigAllocStats big;
    size_t scavenged_superblocks = 0;
    size_t walked_chunks = 0;
};

class PHeap
{
  public:
    /**
     * Create or recover the process's persistent heap: locates (or
     * pmaps on first run) the heap regions, replays interrupted
     * operations, and scavenges the volatile indexes.
     *
     * With @p global_lock every operation serializes on one mutex and
     * the superblock heap runs in single-pool mode — the pre-scaling
     * behaviour, kept as the measurable baseline for the thread-scaling
     * benchmark.  Normal operation is lock-free at this layer: the
     * per-thread superblock caches and big-allocator stripes provide
     * their own fine-grained locking.
     */
    PHeap(region::RegionLayer &rl, size_t small_bytes = size_t(32) << 20,
          size_t big_bytes = size_t(32) << 20, bool global_lock = false);
    ~PHeap();

    PHeap(const PHeap &) = delete;
    PHeap &operator=(const PHeap &) = delete;

    /**
     * Set *@p pptr to point to a newly allocated persistent chunk of
     * @p size bytes (the paper's pmalloc).  Throws std::bad_alloc when
     * the heap is exhausted.
     */
    void pmalloc(size_t size, void *pptr);

    /** Deallocate the chunk pointed to by *@p pptr and nullify it. */
    void pfree(void *pptr);

    /** Usable size of an allocated chunk. */
    size_t usableSize(const void *p) const;

    bool owns(const void *p) const;

    PHeapStats stats() const;

    /** Park the calling thread's superblock cache (crash sweeper and
     *  thread-churn tests); see SuperblockHeap::detachThreadCache. */
    void detachThreadCache() { small_->detachThreadCache(); }

    bool globalLock() const { return globalLock_; }

  private:
    region::RegionLayer &rl_;
    std::unique_ptr<SuperblockHeap> small_;
    std::unique_ptr<StripedBigAlloc> big_;
    PHeapStats initStats_;
    const bool globalLock_;
    std::mutex mu_;     ///< Taken only in global-lock baseline mode.
    uint64_t statsSourceToken_ = 0;
};

} // namespace mnemosyne::heap

#endif // MNEMOSYNE_HEAP_PHEAP_H_
