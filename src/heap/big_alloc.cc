#include "heap/big_alloc.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "obs/obs.h"
#include "scm/scm.h"

namespace mnemosyne::heap {

namespace {

size_t
alignUp(size_t v, size_t a)
{
    return (v + a - 1) & ~(a - 1);
}

constexpr uint64_t kInUseBit = 1;

} // namespace

size_t
BigAlloc::footprint(size_t usable_bytes)
{
    return sizeof(Header) + kRedoLogBytes +
           alignUp(usable_bytes + kHeaderBytes + kFooterBytes + kHeaderBytes,
                   kAlign);
}

BigAlloc::BigAlloc(Header *hdr, uint8_t *chunks, size_t chunk_bytes)
    : hdr_(hdr), base_(chunks), chunkBytes_(chunk_bytes)
{
}

uint64_t *
BigAlloc::chunkHdr(uint64_t off) const
{
    return reinterpret_cast<uint64_t *>(base_ + off);
}

uint64_t
BigAlloc::chunkSize(uint64_t off) const
{
    return *chunkHdr(off) & ~kInUseBit;
}

bool
BigAlloc::chunkInUse(uint64_t off) const
{
    return *chunkHdr(off) & kInUseBit;
}

uint64_t *
BigAlloc::chunkFooter(uint64_t off, uint64_t size) const
{
    return reinterpret_cast<uint64_t *>(base_ + off + size - kFooterBytes);
}

std::unique_ptr<BigAlloc>
BigAlloc::create(void *mem, size_t bytes)
{
    assert(bytes > sizeof(Header) + kRedoLogBytes + 2 * kMinChunk);
    auto *hdr = static_cast<Header *>(mem);
    auto *log_mem = reinterpret_cast<uint8_t *>(hdr + 1);
    auto *chunks = log_mem + kRedoLogBytes;
    // Reserve one header-sized sentinel at the very end.
    const size_t chunk_bytes =
        ((bytes - sizeof(Header) - kRedoLogBytes - kHeaderBytes) / kAlign) *
        kAlign;

    auto &c = scm::ctx();
    // One big free chunk plus an in-use, zero-size sentinel that stops
    // forward coalescing and the recovery walk.
    const uint64_t first = uint64_t(chunk_bytes);
    c.wtstoreT(reinterpret_cast<uint64_t *>(chunks), first);
    c.wtstoreT(reinterpret_cast<uint64_t *>(chunks + chunk_bytes -
                                            kFooterBytes),
               first);
    c.wtstoreT(reinterpret_cast<uint64_t *>(chunks + chunk_bytes),
               uint64_t(kInUseBit));
    Header h{kMagic, chunk_bytes, 0, 0};
    c.wtstore(hdr, &h, sizeof(h));
    c.fence();

    auto a = std::unique_ptr<BigAlloc>(new BigAlloc(hdr, chunks,
                                                    chunk_bytes));
    a->log_ = log::Rawl::create(log_mem, kRedoLogBytes);
    a->redo_ = std::make_unique<log::AtomicRedo>(*a->log_);
    a->rebuildFreeList();
    return a;
}

std::unique_ptr<BigAlloc>
BigAlloc::open(void *mem)
{
    auto *hdr = static_cast<Header *>(mem);
    if (hdr->magic != kMagic)
        return nullptr;
    auto *log_mem = reinterpret_cast<uint8_t *>(hdr + 1);
    auto *chunks = log_mem + kRedoLogBytes;
    auto a = std::unique_ptr<BigAlloc>(
        new BigAlloc(hdr, chunks, size_t(hdr->chunkBytes)));
    a->log_ = log::Rawl::open(log_mem);
    if (!a->log_)
        return nullptr;
    a->redo_ = std::make_unique<log::AtomicRedo>(*a->log_);
    a->redo_->recover();
    a->rebuildFreeList();
    return a;
}

size_t
BigAlloc::rebuildFreeList()
{
    free_.clear();
    size_t walked = 0;
    uint64_t off = 0;
    while (off < chunkBytes_) {
        const uint64_t size = chunkSize(off);
        assert(size >= kMinChunk && off + size <= chunkBytes_ &&
               "corrupt chunk chain");
        if (!chunkInUse(off))
            free_[off] = size;
        off += size;
        ++walked;
    }
    return walked;
}

bool
BigAlloc::owns(const void *p) const
{
    return p >= base_ && p < base_ + chunkBytes_;
}

size_t
BigAlloc::blockSize(const void *p) const
{
    const uint64_t off =
        uint64_t(static_cast<const uint8_t *>(p) - base_) - kHeaderBytes;
    return size_t(chunkSize(off)) - kHeaderBytes - kFooterBytes;
}

void *
BigAlloc::allocate(size_t size, void **pptr)
{
    const uint64_t need = std::max<uint64_t>(
        alignUp(size + kHeaderBytes + kFooterBytes, kAlign), kMinChunk);

    // First fit over the volatile free index.
    auto it = free_.begin();
    for (; it != free_.end(); ++it) {
        if (it->second >= need)
            break;
    }
    if (it == free_.end())
        return nullptr;
    const uint64_t off = it->first;
    const uint64_t have = it->second;

    void *payload = base_ + off + kHeaderBytes;
    log::WordWrite writes[4];
    size_t nw = 0;
    uint64_t taken = have;
    if (have - need >= kMinChunk) {
        // Split: in-use front chunk + free remainder with its footer.
        taken = need;
        const uint64_t rem_off = off + need;
        const uint64_t rem = have - need;
        writes[nw++] = {chunkHdr(rem_off), rem};
        writes[nw++] = {chunkFooter(rem_off, rem), rem};
    }
    writes[nw++] = {chunkHdr(off), taken | kInUseBit};
    writes[nw++] = {reinterpret_cast<uint64_t *>(pptr),
                    reinterpret_cast<uint64_t>(payload)};
    redo_->apply({writes, nw});

    free_.erase(it);
    if (taken < have)
        free_[off + taken] = have - taken;
    return payload;
}

void
BigAlloc::free(void **pptr)
{
    void *p = *pptr;
    assert(owns(p));
    uint64_t off = uint64_t(static_cast<uint8_t *>(p) - base_) -
                   kHeaderBytes;
    assert(chunkInUse(off) && "double free");
    uint64_t size = chunkSize(off);

    // Eager coalescing with the physical neighbours (both free-list
    // updates are volatile; only the merged header/footer words and the
    // pointer nullification need durability).
    const uint64_t next = off + size;
    if (next < chunkBytes_ && !chunkInUse(next)) {
        free_.erase(next);
        size += chunkSize(next);
    }
    if (off > 0) {
        const uint64_t prev_size =
            *reinterpret_cast<uint64_t *>(base_ + off - kFooterBytes);
        // The previous chunk's footer is only valid when it is free; its
        // free-list presence is the authoritative volatile check.
        auto pit = prev_size <= off ? free_.find(off - prev_size)
                                    : free_.end();
        if (pit != free_.end() && pit->first + pit->second == off) {
            off = pit->first;
            size += pit->second;
            free_.erase(pit);
        }
    }

    const log::WordWrite writes[] = {
        {chunkHdr(off), size},
        {chunkFooter(off, size), size},
        {reinterpret_cast<uint64_t *>(pptr), 0},
    };
    redo_->apply(writes);
    free_[off] = size;
}

BigAllocStats
BigAlloc::stats() const
{
    BigAllocStats s;
    uint64_t off = 0;
    while (off < chunkBytes_) {
        const uint64_t size = chunkSize(off);
        if (chunkInUse(off)) {
            s.chunks_in_use++;
            s.bytes_in_use += size_t(size);
        } else {
            s.chunks_free++;
            s.bytes_free += size_t(size);
        }
        off += size;
    }
    return s;
}

// ---------------------------------------------------------------------------
// StripedBigAlloc

namespace {

struct BigObs {
    obs::Counter stripe_contended{"heap.big_stripe_contended", true};
};

BigObs &
bigObs()
{
    static BigObs o;
    return o;
}

/** Stripe lock with contention accounting (cf. the superblock heap's
 *  heap.lock_contended). */
struct StripeLock {
    explicit StripeLock(std::mutex &m) : mu(m)
    {
        if (!mu.try_lock()) {
            bigObs().stripe_contended.add(1);
            mu.lock();
        }
    }
    ~StripeLock() { mu.unlock(); }
    StripeLock(const StripeLock &) = delete;
    StripeLock &operator=(const StripeLock &) = delete;

    std::mutex &mu;
};

} // namespace

size_t
StripedBigAlloc::stripesFor(size_t bytes)
{
    // One stripe per 16 MB so per-stripe capacity fragmentation stays
    // irrelevant for realistic request sizes; small arenas (all test
    // configurations) degenerate to a single stripe.
    return std::clamp<size_t>(bytes >> 24, 1, kMaxStripes);
}

std::unique_ptr<StripedBigAlloc>
StripedBigAlloc::create(void *mem, size_t bytes)
{
    assert(bytes > sizeof(Header));
    const size_t n = stripesFor(bytes);
    const size_t span =
        ((bytes - sizeof(Header)) / n) & ~(BigAlloc::kAlign - 1);

    auto a = std::unique_ptr<StripedBigAlloc>(new StripedBigAlloc);
    a->base_ = reinterpret_cast<uint8_t *>(static_cast<Header *>(mem) + 1);
    a->span_ = span;
    for (size_t i = 0; i < n; ++i) {
        auto s = std::make_unique<Stripe>();
        s->alloc = BigAlloc::create(a->base_ + i * span, span);
        a->stripes_.push_back(std::move(s));
    }

    // Header last: a valid magic implies every stripe is formatted.
    auto &c = scm::ctx();
    Header h{kMagic, n, span, 0};
    c.wtstore(mem, &h, sizeof(h));
    c.fence();
    return a;
}

std::unique_ptr<StripedBigAlloc>
StripedBigAlloc::open(void *mem)
{
    auto *hdr = static_cast<Header *>(mem);
    if (hdr->magic != kMagic || hdr->nStripes == 0 ||
        hdr->nStripes > kMaxStripes)
        return nullptr;
    auto a = std::unique_ptr<StripedBigAlloc>(new StripedBigAlloc);
    a->base_ = reinterpret_cast<uint8_t *>(hdr + 1);
    a->span_ = size_t(hdr->stripeSpan);
    for (size_t i = 0; i < size_t(hdr->nStripes); ++i) {
        auto s = std::make_unique<Stripe>();
        s->alloc = BigAlloc::open(a->base_ + i * a->span_);
        if (!s->alloc)
            return nullptr;
        a->stripes_.push_back(std::move(s));
    }
    return a;
}

size_t
StripedBigAlloc::stripeOf(const void *p) const
{
    const auto off = size_t(static_cast<const uint8_t *>(p) - base_);
    return off / span_;
}

void *
StripedBigAlloc::allocate(size_t size, void **pptr)
{
    // Home stripe by thread ordinal, falling over round-robin when the
    // home stripe has no fitting chunk.
    const size_t n = stripes_.size();
    const size_t home = obs::threadOrdinal() % n;
    for (size_t i = 0; i < n; ++i) {
        Stripe &s = *stripes_[(home + i) % n];
        StripeLock g(s.mu);
        if (void *p = s.alloc->allocate(size, pptr))
            return p;
    }
    return nullptr;
}

void
StripedBigAlloc::free(void **pptr)
{
    void *p = *pptr;
    assert(owns(p));
    Stripe &s = *stripes_[stripeOf(p)];
    StripeLock g(s.mu);
    s.alloc->free(pptr);
}

bool
StripedBigAlloc::owns(const void *p) const
{
    if (p < base_ || p >= base_ + stripes_.size() * span_)
        return false;
    return stripes_[stripeOf(p)]->alloc->owns(p);
}

size_t
StripedBigAlloc::blockSize(const void *p) const
{
    return stripes_[stripeOf(p)]->alloc->blockSize(p);
}

BigAllocStats
StripedBigAlloc::stats() const
{
    BigAllocStats total;
    for (const auto &s : stripes_) {
        StripeLock g(s->mu);
        const BigAllocStats st = s->alloc->stats();
        total.chunks_in_use += st.chunks_in_use;
        total.bytes_in_use += st.bytes_in_use;
        total.chunks_free += st.chunks_free;
        total.bytes_free += st.bytes_free;
    }
    return total;
}

size_t
StripedBigAlloc::rebuildFreeList()
{
    size_t walked = 0;
    for (auto &s : stripes_) {
        StripeLock g(s->mu);
        walked += s->alloc->rebuildFreeList();
    }
    return walked;
}

} // namespace mnemosyne::heap
