// OArchive / IArchive are header-only templates; this translation unit
// anchors the component in the build.
#include "serialize/archive.h"
