/**
 * @file
 * Binary serialization archives — the Boost.Serialization stand-in for
 * the Table 5 baseline ("serialize the data into a buffer and write it
 * to a file ... productivity applications use this approach for
 * periodic fast saves").
 *
 * The API follows Boost's conventions: types expose
 * `template <class Archive> void serialize(Archive &ar, unsigned
 * version)` and stream members with `ar & member;`.  Primitives,
 * strings, vectors and pairs are built in.  An archive serializes to a
 * growable buffer; saveToFile() writes the buffer through MiniFs to
 * the PCM-disk and fsyncs, which is the full cost the paper charges
 * the serialization strategy.
 */

#ifndef MNEMOSYNE_SERIALIZE_ARCHIVE_H_
#define MNEMOSYNE_SERIALIZE_ARCHIVE_H_

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "pcmdisk/minifs.h"

namespace mnemosyne::serialize {

inline constexpr uint32_t kArchiveMagic = 0x4d4e4152; // "MNAR"

class OArchive;
class IArchive;

template <typename T, typename A>
concept HasSerialize = requires(T &t, A &a) { t.serialize(a, 0u); };

/** Serializing (output) archive. */
class OArchive
{
  public:
    explicit OArchive(uint32_t version = 1)
    {
        writeRaw(&kArchiveMagic, sizeof(kArchiveMagic));
        writeRaw(&version, sizeof(version));
    }

    template <typename T>
    OArchive &
    operator&(const T &v)
    {
        save(v);
        return *this;
    }

    template <typename T>
        requires std::is_arithmetic_v<T> || std::is_enum_v<T>
    void save(const T &v) { writeRaw(&v, sizeof(T)); }

    void
    save(const std::string &s)
    {
        const uint64_t n = s.size();
        writeRaw(&n, sizeof(n));
        writeRaw(s.data(), s.size());
    }

    template <typename T>
    void
    save(const std::vector<T> &v)
    {
        const uint64_t n = v.size();
        writeRaw(&n, sizeof(n));
        if constexpr (std::is_arithmetic_v<T>) {
            writeRaw(v.data(), v.size() * sizeof(T));
        } else {
            for (const auto &e : v)
                save(e);
        }
    }

    template <typename A, typename B>
    void
    save(const std::pair<A, B> &p)
    {
        save(p.first);
        save(p.second);
    }

    template <typename T>
        requires HasSerialize<T, OArchive>
    void
    save(const T &v)
    {
        // Boost convention: serialize() is non-const and used for both
        // directions; saving does not modify the object.
        const_cast<T &>(v).serialize(*this, 1);
    }

    const std::vector<uint8_t> &buffer() const { return buf_; }

    /** Write the archive to a file on the PCM-disk and fsync it. */
    void
    saveToFile(pcmdisk::MiniFs &fs, const std::string &name) const
    {
        const int fd = fs.open(name);
        fs.ftruncate(fd, 0);
        fs.pwrite(fd, buf_.data(), buf_.size(), 0);
        fs.fsync(fd);
    }

  private:
    void
    writeRaw(const void *p, size_t n)
    {
        const auto *b = static_cast<const uint8_t *>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    std::vector<uint8_t> buf_;
};

/** Deserializing (input) archive. */
class IArchive
{
  public:
    explicit IArchive(std::vector<uint8_t> data) : buf_(std::move(data))
    {
        uint32_t magic = 0;
        readRaw(&magic, sizeof(magic));
        if (magic != kArchiveMagic)
            throw std::runtime_error("IArchive: bad magic");
        readRaw(&version_, sizeof(version_));
    }

    /** Load a whole file from the PCM-disk into an archive. */
    static IArchive
    loadFromFile(pcmdisk::MiniFs &fs, const std::string &name)
    {
        const int fd = fs.open(name);
        std::vector<uint8_t> data(fs.size(fd));
        fs.pread(fd, data.data(), data.size(), 0);
        return IArchive(std::move(data));
    }

    template <typename T>
    IArchive &
    operator&(T &v)
    {
        load(v);
        return *this;
    }

    template <typename T>
        requires std::is_arithmetic_v<T> || std::is_enum_v<T>
    void load(T &v) { readRaw(&v, sizeof(T)); }

    void
    load(std::string &s)
    {
        uint64_t n = 0;
        readRaw(&n, sizeof(n));
        s.resize(n);
        readRaw(s.data(), n);
    }

    template <typename T>
    void
    load(std::vector<T> &v)
    {
        uint64_t n = 0;
        readRaw(&n, sizeof(n));
        v.resize(n);
        if constexpr (std::is_arithmetic_v<T>) {
            readRaw(v.data(), n * sizeof(T));
        } else {
            for (auto &e : v)
                load(e);
        }
    }

    template <typename A, typename B>
    void
    load(std::pair<A, B> &p)
    {
        load(p.first);
        load(p.second);
    }

    template <typename T>
        requires HasSerialize<T, IArchive>
    void
    load(T &v)
    {
        v.serialize(*this, version_);
    }

    uint32_t version() const { return version_; }

  private:
    void
    readRaw(void *p, size_t n)
    {
        if (pos_ + n > buf_.size())
            throw std::runtime_error("IArchive: truncated archive");
        std::memcpy(p, buf_.data() + pos_, n);
        pos_ += n;
    }

    std::vector<uint8_t> buf_;
    size_t pos_ = 0;
    uint32_t version_ = 0;
};

} // namespace mnemosyne::serialize

#endif // MNEMOSYNE_SERIALIZE_ARCHIVE_H_
