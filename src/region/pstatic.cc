// PStatic and pptr are header-only templates; this translation unit
// exists so the build system has a stable object for the component and
// anchors the header's compilation.
#include "region/pstatic.h"
