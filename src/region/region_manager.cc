#include "region/region_manager.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cassert>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/obs.h"
#include "obs/stats_registry.h"
#include "obs/trace_ring.h"
#include "scm/scm.h"

namespace mnemosyne::region {

namespace {

struct MetaHeader {
    uint64_t magic;
    uint64_t nFrames;
    uint64_t nFileNames;
    uint64_t reserved;
};

constexpr uint64_t kMetaMagic = 0x4d4e5a4f4e453031ULL; // "MNZONE01"
constexpr size_t kFileNameSlots = 256;

size_t
pagesOf(size_t bytes)
{
    return (bytes + kPageSize - 1) / kPageSize;
}

uint64_t
residentKey(uint64_t file_id, uint64_t page_off)
{
    return (file_id << 40) | page_off;
}

} // namespace

RegionManager::RegionManager(RegionConfig cfg) : cfg_(std::move(cfg))
{
    if (const char *env = std::getenv("MNEMOSYNE_REGION_PATH"))
        cfg_.backing_dir = env;

    reservation_ = mmap(reinterpret_cast<void *>(cfg_.va_base),
                        cfg_.va_reserve, PROT_NONE,
                        MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE |
                            MAP_FIXED_NOREPLACE,
                        -1, 0);
    if (reservation_ == MAP_FAILED) {
        throw std::runtime_error(
            "RegionManager: cannot reserve persistent address range");
    }
    openMetadata();
    bootReconstruct();

    // Zone gauges; duplicate keys from several live managers sum, which
    // matches "total pages faulted / resident in this process".
    statsSourceToken_ =
        obs::StatsRegistry::instance().addSource([this](obs::Sink &sink) {
            const ZoneStats s = zoneStats();
            sink.emit("region.frames_total", uint64_t(s.frames_total));
            sink.emit("region.frames_resident", uint64_t(s.frames_resident));
            sink.emit("region.faults", s.faults);
            sink.emit("region.soft_faults", s.soft_faults);
            sink.emit("region.evictions", s.evictions);
        });
}

RegionManager::~RegionManager()
{
    obs::StatsRegistry::instance().removeSource(statsSourceToken_);
    std::lock_guard<std::mutex> g(mu_);
    for (auto &m : mappings_) {
        msync(reinterpret_cast<void *>(m.addr), m.length, MS_SYNC);
        close(m.fd);
    }
    for (auto &[id, fd] : inodeCache_) {
        (void)id;
        close(fd);
    }
    if (mapTable_)
        msync(reinterpret_cast<void *>(cfg_.va_base), metaBytes_, MS_SYNC);
    if (metaFd_ >= 0)
        close(metaFd_);
    munmap(reservation_, cfg_.va_reserve);
}

std::string
RegionManager::backingPath(const std::string &file_name) const
{
    return cfg_.backing_dir + "/" + file_name;
}

void
RegionManager::openMetadata()
{
    nFrames_ = cfg_.scm_capacity / kPageSize;
    nFileNames_ = kFileNameSlots;
    metaBytes_ = sizeof(MetaHeader) + nFrames_ * sizeof(MapEntry) +
                 nFileNames_ * sizeof(FileNameEntry);
    metaBytes_ = pagesOf(metaBytes_) * kPageSize;

    const std::string path = backingPath("scm_mapping.meta");
    const bool existed = access(path.c_str(), F_OK) == 0;
    metaFd_ = open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (metaFd_ < 0)
        throw std::runtime_error("RegionManager: cannot open " + path);
    if (ftruncate(metaFd_, off_t(metaBytes_)) != 0)
        throw std::runtime_error("RegionManager: cannot size " + path);

    void *meta = mmap(reinterpret_cast<void *>(cfg_.va_base), metaBytes_,
                      PROT_READ | PROT_WRITE, MAP_SHARED | MAP_FIXED,
                      metaFd_, 0);
    if (meta == MAP_FAILED)
        throw std::runtime_error("RegionManager: cannot map metadata");

    auto *hdr = static_cast<MetaHeader *>(meta);
    mapTable_ = reinterpret_cast<MapEntry *>(hdr + 1);
    fileNames_ = reinterpret_cast<FileNameEntry *>(mapTable_ + nFrames_);

    if (!existed || hdr->magic != kMetaMagic) {
        std::memset(meta, 0, metaBytes_);
        MetaHeader h{kMetaMagic, nFrames_, nFileNames_, 0};
        auto &c = scm::ctx();
        c.wtstore(hdr, &h, sizeof(h));
        c.fence();
        c.persistAll();
    } else {
        if (hdr->nFrames != nFrames_) {
            throw std::runtime_error(
                "RegionManager: SCM capacity changed across restarts");
        }
    }
}

size_t
RegionManager::bootReconstruct()
{
    // Drop all volatile descriptors, as an OS boot would.
    descriptors_.clear();
    residentIndex_.clear();
    lru_.clear();
    lruPos_.clear();
    freeFrames_.clear();
    for (auto &[id, fd] : inodeCache_) {
        (void)id;
        close(fd);
    }
    inodeCache_.clear();

    // Scan the persistent mapping table: (i) rebuild the page descriptor
    // for each mapped SCM page, (ii) create an inode for the backing
    // file of every mapping, (iii) free-list the rest (section 4.2).
    for (size_t f = 0; f < nFrames_; ++f) {
        const MapEntry &e = mapTable_[f];
        if (e.used) {
            descriptors_[f] = {e.fileId, e.pageOff};
            residentIndex_[residentKey(e.fileId, e.pageOff)] = f;
            lru_.push_back(f);
            lruPos_[f] = std::prev(lru_.end());
            if (!inodeCache_.count(e.fileId) &&
                e.fileId < nFileNames_ && fileNames_[e.fileId].used) {
                const int fd = open(
                    backingPath(fileNames_[e.fileId].name).c_str(), O_RDWR);
                if (fd >= 0)
                    inodeCache_[e.fileId] = fd;
            }
        } else {
            freeFrames_.push_back(f);
        }
    }
    stats_.frames_total = nFrames_;
    stats_.frames_resident = residentIndex_.size();
    return nFrames_;
}

uint64_t
RegionManager::internFileName(const std::string &name)
{
    assert(name.size() < sizeof(FileNameEntry::name));
    uint64_t free_slot = nFileNames_;
    for (uint64_t i = 0; i < nFileNames_; ++i) {
        if (fileNames_[i].used) {
            if (name == fileNames_[i].name)
                return i;
        } else if (free_slot == nFileNames_) {
            free_slot = i;
        }
    }
    if (free_slot == nFileNames_)
        throw std::runtime_error("RegionManager: file-name table full");

    FileNameEntry e{};
    std::strncpy(e.name, name.c_str(), sizeof(e.name) - 1);
    e.used = 1;
    auto &c = scm::ctx();
    c.wtstore(&fileNames_[free_slot], &e, sizeof(e));
    c.fence();
    return free_slot;
}

RegionManager::Mapping *
RegionManager::findMapping(uintptr_t addr)
{
    for (auto &m : mappings_) {
        if (addr >= m.addr && addr < m.addr + m.length)
            return &m;
    }
    return nullptr;
}

size_t
RegionManager::allocFrame(uint64_t file_id, uint64_t page_off)
{
    if (freeFrames_.empty())
        evictOne();
    assert(!freeFrames_.empty());
    const size_t f = freeFrames_.back();
    freeFrames_.pop_back();

    MapEntry e{1, file_id, page_off};
    scm::ctx().wtstore(&mapTable_[f], &e, sizeof(e));
    descriptors_[f] = {file_id, page_off};
    residentIndex_[residentKey(file_id, page_off)] = f;
    lru_.push_back(f);
    lruPos_[f] = std::prev(lru_.end());
    return f;
}

void
RegionManager::evictOne()
{
    assert(!lru_.empty() && "SCM zone exhausted with nothing to evict");
    const size_t f = lru_.front();
    lru_.pop_front();
    lruPos_.erase(f);

    const auto [file_id, page_off] = descriptors_[f];
    // Write the page back to its file and release the physical memory;
    // the MAP_SHARED mapping transparently reloads it on the next access
    // (a major fault in the real system).
    for (auto &m : mappings_) {
        if (m.fileId != file_id)
            continue;
        const uintptr_t va = m.addr + page_off * kPageSize;
        if (va < m.addr + m.length) {
            msync(reinterpret_cast<void *>(va), kPageSize, MS_SYNC);
            madvise(reinterpret_cast<void *>(va), kPageSize, MADV_DONTNEED);
        }
        break;
    }
    MapEntry e{0, 0, 0};
    scm::ctx().wtstore(&mapTable_[f], &e, sizeof(e));
    descriptors_.erase(f);
    residentIndex_.erase(residentKey(file_id, page_off));
    freeFrames_.push_back(f);
    ++stats_.evictions;
    obs::TraceRing::instance().record(obs::TraceEv::kPageEvict, file_id,
                                      page_off);
}

void
RegionManager::makeResident(Mapping &m, uintptr_t page_addr, bool initial)
{
    const uint64_t page_off = (page_addr - m.addr) / kPageSize;
    const uint64_t key = residentKey(m.fileId, page_off);
    auto it = residentIndex_.find(key);
    if (it != residentIndex_.end()) {
        // Already in SCM: a soft fault that only updates the page table
        // without copying data from the backing file (section 4.2).
        ++stats_.soft_faults;
        if (!initial) {
            auto pos = lruPos_.find(it->second);
            if (pos != lruPos_.end()) {
                lru_.splice(lru_.end(), lru_, pos->second);
                lruPos_[it->second] = std::prev(lru_.end());
            }
        }
        return;
    }
    ++stats_.faults;
    obs::TraceRing::instance().record(obs::TraceEv::kPageFault, page_addr);
    allocFrame(m.fileId, page_off);
}

void *
RegionManager::mapFile(const std::string &file_name, size_t length,
                       uintptr_t fixed_addr)
{
    std::lock_guard<std::mutex> g(mu_);
    if (fixed_addr < cfg_.va_base + metaBytes_ ||
        fixed_addr + length > cfg_.va_base + cfg_.va_reserve) {
        throw std::runtime_error(
            "RegionManager: address outside reserved range");
    }
    length = pagesOf(length) * kPageSize;

    const std::string path = backingPath(file_name);
    const bool existed = access(path.c_str(), F_OK) == 0;
    existed_[file_name] = existed;
    const int fd = open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd < 0)
        throw std::runtime_error("RegionManager: cannot open " + path);
    if (ftruncate(fd, off_t(length)) != 0) {
        close(fd);
        throw std::runtime_error("RegionManager: cannot size " + path);
    }
    void *addr = mmap(reinterpret_cast<void *>(fixed_addr), length,
                      PROT_READ | PROT_WRITE, MAP_SHARED | MAP_FIXED, fd, 0);
    if (addr == MAP_FAILED) {
        close(fd);
        throw std::runtime_error("RegionManager: cannot map " + path);
    }

    const uint64_t file_id = internFileName(file_name);
    mappings_.push_back(Mapping{file_name, file_id, fd, fixed_addr, length});

    // Fault the region into the SCM zone.
    Mapping &m = mappings_.back();
    for (uintptr_t p = fixed_addr; p < fixed_addr + length; p += kPageSize)
        makeResident(m, p, true);
    scm::ctx().fence();
    stats_.frames_resident = residentIndex_.size();
    {
        static obs::Counter maps{"region.maps"};
        maps.add(1);
    }
    obs::TraceRing::instance().record(obs::TraceEv::kRegionMap, fixed_addr,
                                      length);
    return addr;
}

void
RegionManager::touchPage(uintptr_t page_addr)
{
    std::lock_guard<std::mutex> g(mu_);
    Mapping *m = findMapping(page_addr);
    if (!m)
        return;
    makeResident(*m, page_addr & ~(uintptr_t(kPageSize) - 1), false);
    stats_.frames_resident = residentIndex_.size();
}

void
RegionManager::evictRange(uintptr_t addr, size_t length)
{
    std::lock_guard<std::mutex> g(mu_);
    Mapping *m = findMapping(addr);
    if (!m)
        return;
    auto &c = scm::ctx();
    for (uintptr_t p = addr; p < addr + length; p += kPageSize) {
        const uint64_t page_off = (p - m->addr) / kPageSize;
        auto it = residentIndex_.find(residentKey(m->fileId, page_off));
        if (it == residentIndex_.end())
            continue;
        const size_t f = it->second;
        msync(reinterpret_cast<void *>(p), kPageSize, MS_SYNC);
        MapEntry e{0, 0, 0};
        c.wtstore(&mapTable_[f], &e, sizeof(e));
        descriptors_.erase(f);
        auto pos = lruPos_.find(f);
        if (pos != lruPos_.end()) {
            lru_.erase(pos->second);
            lruPos_.erase(pos);
        }
        residentIndex_.erase(it);
        freeFrames_.push_back(f);
        ++stats_.evictions;
        obs::TraceRing::instance().record(obs::TraceEv::kPageEvict,
                                          m->fileId, page_off);
    }
    c.fence();
    stats_.frames_resident = residentIndex_.size();
}

void
RegionManager::unmapFile(uintptr_t addr, size_t length)
{
    length = pagesOf(length) * kPageSize;
    evictRange(addr, length);
    std::lock_guard<std::mutex> g(mu_);
    for (auto it = mappings_.begin(); it != mappings_.end(); ++it) {
        if (it->addr != addr)
            continue;
        msync(reinterpret_cast<void *>(it->addr), it->length, MS_SYNC);
        close(it->fd);
        mappings_.erase(it);
        break;
    }
    // Re-establish the PROT_NONE reservation over the hole.
    mmap(reinterpret_cast<void *>(addr), length, PROT_NONE,
         MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED, -1, 0);
    {
        static obs::Counter unmaps{"region.unmaps"};
        unmaps.add(1);
    }
    obs::TraceRing::instance().record(obs::TraceEv::kRegionUnmap, addr,
                                      length);
}

void
RegionManager::destroyFile(const std::string &file_name, uintptr_t addr,
                           size_t length)
{
    if (addr)
        unmapFile(addr, length);
    unlink(backingPath(file_name).c_str());
}

bool
RegionManager::existedBefore(const std::string &file_name) const
{
    std::lock_guard<std::mutex> g(mu_);
    auto it = existed_.find(file_name);
    return it != existed_.end() && it->second;
}

ZoneStats
RegionManager::zoneStats() const
{
    std::lock_guard<std::mutex> g(mu_);
    return stats_;
}

} // namespace mnemosyne::region
