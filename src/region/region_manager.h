/**
 * @file
 * The region manager: user-space simulation of Mnemosyne's kernel
 * component (paper sections 3.1 and 4.2).
 *
 * The kernel region manager exposes SCM as memory-mapped files, records
 * the virtual->physical mapping of persistent regions in a persistent
 * mapping table stored at the base of SCM, swaps SCM pages to backing
 * files under memory pressure, and reconstructs persistent regions when
 * the OS boots.
 *
 * This simulation preserves those protocols:
 *
 *  - A large fixed virtual address range is reserved (the paper reserves
 *    one terabyte) so regions always map at the same addresses and raw
 *    pointers stored in persistent memory stay valid across restarts.
 *  - Every region is backed by a real file (honoring the paper's
 *    MNEMOSYNE_REGION_PATH environment variable), mapped MAP_SHARED at
 *    its fixed address, which makes persistence real across process
 *    kills.
 *  - An "SCM zone" with a configurable frame budget models the finite
 *    amount of SCM: page residency is tracked, and exceeding the budget
 *    evicts least-recently-faulted pages to their backing files (msync +
 *    MADV_DONTNEED), exactly the virtualization story of section 3.4.
 *  - A persistent mapping table records <scm_frame, file, page_offset>
 *    triples; bootReconstruct() replays the table to rebuild the page
 *    descriptors and the inode cache, which is the cost measured in the
 *    reincarnation study (section 6.3.2).
 */

#ifndef MNEMOSYNE_REGION_REGION_MANAGER_H_
#define MNEMOSYNE_REGION_REGION_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

// ASan's 64-bit primary allocator owns [0x6000'0000'0000,
// 0x6400'0000'0000), so sanitized builds reserve the persistent range
// lower in high memory.
#if defined(__SANITIZE_ADDRESS__)
#define MNEMOSYNE_ASAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MNEMOSYNE_ASAN_ACTIVE 1
#endif
#endif
#ifndef MNEMOSYNE_ASAN_ACTIVE
#define MNEMOSYNE_ASAN_ACTIVE 0
#endif

// TSan owns most of the address space for shadow/metainfo and its
// interceptor silently drops mmap hints outside its application ranges
// (libtsan's low app range ends at 0x0080'0000'0000; the mid range
// hosts the PIE binary, so large fixed maps there can collide).  TSan
// builds therefore park the persistent range at 256 GB with a 256 GB
// reservation, which fits entirely inside the low app range.
#if defined(__SANITIZE_THREAD__)
#define MNEMOSYNE_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MNEMOSYNE_TSAN_ACTIVE 1
#endif
#endif
#ifndef MNEMOSYNE_TSAN_ACTIVE
#define MNEMOSYNE_TSAN_ACTIVE 0
#endif

namespace mnemosyne::region {

inline constexpr size_t kPageSize = 4096;

/** Configuration of the simulated SCM zone and address space. */
struct RegionConfig {
    /** Base of the reserved persistent address range. */
    uintptr_t va_base = MNEMOSYNE_TSAN_ACTIVE   ? 0x004000000000ULL
                        : MNEMOSYNE_ASAN_ACTIVE ? 0x550000000000ULL
                                                : 0x600000000000ULL;

    /** Size of the reserved range (the paper reserves 1 TB; TSan's low
     *  application range only fits 256 GB). */
    size_t va_reserve =
        MNEMOSYNE_TSAN_ACTIVE ? size_t(1) << 38 : size_t(1) << 40;

    /** Simulated physical SCM capacity (frame budget for residency). */
    size_t scm_capacity = size_t(256) << 20;

    /** Directory for backing files; overridden by MNEMOSYNE_REGION_PATH. */
    std::string backing_dir = ".";
};

/** Statistics about the simulated SCM zone. */
struct ZoneStats {
    size_t frames_total = 0;
    size_t frames_resident = 0;
    uint64_t faults = 0;        ///< Pages faulted into SCM.
    uint64_t soft_faults = 0;   ///< Faults satisfied without file copy.
    uint64_t evictions = 0;     ///< Pages swapped out to backing files.
};

/**
 * Simulated kernel region manager.  Thread-safe.
 */
class RegionManager
{
  public:
    explicit RegionManager(RegionConfig cfg = {});
    ~RegionManager();

    RegionManager(const RegionManager &) = delete;
    RegionManager &operator=(const RegionManager &) = delete;

    /**
     * Map @p length bytes of @p file_name (created and extended as
     * needed) at @p fixed_addr inside the reserved range — the mmap
     * MAP_PERSIST path of the paper.  All pages are faulted resident.
     * Returns the mapped address.
     */
    void *mapFile(const std::string &file_name, size_t length,
                  uintptr_t fixed_addr);

    /** Unmap a region previously mapped with mapFile (data stays in the
     *  backing file). */
    void unmapFile(uintptr_t addr, size_t length);

    /** Unmap and delete the backing file. */
    void destroyFile(const std::string &file_name, uintptr_t addr,
                     size_t length);

    /** Fault one page into the SCM zone, evicting if over budget. */
    void touchPage(uintptr_t page_addr);

    /** Evict every resident page of [addr, addr+len) to its file. */
    void evictRange(uintptr_t addr, size_t length);

    /**
     * Simulate OS boot: drop all volatile descriptors, then scan the
     * persistent mapping table rebuilding the page descriptors and the
     * inode (backing-file) cache.  Returns the number of table entries
     * scanned; the reincarnation benchmark times this call.
     */
    size_t bootReconstruct();

    /** True if @p file_name's backing file already existed at mapFile. */
    bool existedBefore(const std::string &file_name) const;

    ZoneStats zoneStats() const;

    const RegionConfig &config() const { return cfg_; }
    std::string backingPath(const std::string &file_name) const;

    uintptr_t vaBase() const { return cfg_.va_base; }
    size_t vaReserve() const { return cfg_.va_reserve; }

    /** First address past the persistent mapping table, available for
     *  regions. */
    uintptr_t firstUsableVa() const { return cfg_.va_base + metaBytes_; }

  private:
    /** One persistent mapping-table entry: <scm_frame, file, page_off>. */
    struct MapEntry {
        uint64_t used;      ///< 0 = free frame, 1 = holds a page.
        uint64_t fileId;    ///< Index into the persistent file-name table.
        uint64_t pageOff;   ///< Page offset within the file.
    };

    struct FileNameEntry {
        char name[120];
        uint64_t used;
    };

    /** Volatile descriptor of a mapped region. */
    struct Mapping {
        std::string fileName;
        uint64_t fileId;
        int fd;
        uintptr_t addr;
        size_t length;
    };

    void openMetadata();
    uint64_t internFileName(const std::string &name);
    size_t allocFrame(uint64_t file_id, uint64_t page_off);
    void evictOne();
    Mapping *findMapping(uintptr_t addr);
    void makeResident(Mapping &m, uintptr_t page_addr, bool initial);

    RegionConfig cfg_;
    mutable std::mutex mu_;

    void *reservation_ = nullptr;

    // Persistent metadata (mapped at the base of the reserved range).
    int metaFd_ = -1;
    MapEntry *mapTable_ = nullptr;      ///< One entry per SCM frame.
    FileNameEntry *fileNames_ = nullptr;
    size_t nFrames_ = 0;
    size_t nFileNames_ = 0;
    size_t metaBytes_ = 0;

    // Volatile state rebuilt by bootReconstruct().
    std::vector<Mapping> mappings_;
    /** frame -> (fileId, pageOff) descriptors (the "page descriptors"). */
    std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> descriptors_;
    /** (fileId, pageOff) -> frame for residency lookups. */
    std::unordered_map<uint64_t, size_t> residentIndex_;
    /** LRU of resident frames (front = oldest). */
    std::list<size_t> lru_;
    std::unordered_map<size_t, std::list<size_t>::iterator> lruPos_;
    std::vector<size_t> freeFrames_;
    /** fileId -> fd, the simulated inode cache. */
    std::unordered_map<uint64_t, int> inodeCache_;

    ZoneStats stats_;
    std::unordered_map<std::string, bool> existed_;
    uint64_t statsSourceToken_ = 0;
};

} // namespace mnemosyne::region

#endif // MNEMOSYNE_REGION_REGION_MANAGER_H_
