#include "region/region_table.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "obs/obs.h"
#include "scm/scm.h"

namespace mnemosyne::region {

namespace {

struct TableCounters {
    obs::Counter pmaps{"region.pmaps"};
    obs::Counter punmaps{"region.punmaps"};
    obs::Counter pstatic_vars{"region.pstatic_vars"};
};

TableCounters &
tctrs()
{
    static TableCounters c;
    return c;
}

std::atomic<RegionLayer *> gLayer{nullptr};
std::atomic<uint64_t> gGeneration{0};

size_t
alignUp(size_t v, size_t a)
{
    return (v + a - 1) & ~(a - 1);
}

} // namespace

RegionLayer *
currentRegionLayer()
{
    return gLayer.load(std::memory_order_acquire);
}

void
setCurrentRegionLayer(RegionLayer *rl)
{
    gLayer.store(rl, std::memory_order_release);
    gGeneration.fetch_add(1, std::memory_order_acq_rel);
}

uint64_t
regionLayerGeneration()
{
    return gGeneration.load(std::memory_order_acquire);
}

std::string
RegionLayer::slotFileName(size_t slot)
{
    return "dyn_" + std::to_string(slot) + ".pregion";
}

RegionLayer::RegionLayer(RegionManager &mgr, size_t static_region_bytes)
    : mgr_(mgr)
{
    static_region_bytes =
        alignUp(std::max(static_region_bytes, sizeof(StaticHeader) + 4096),
                kPageSize);
    void *base = mgr_.mapFile("static.pregion", static_region_bytes,
                              mgr_.firstUsableVa());
    hdr_ = static_cast<StaticHeader *>(base);
    varArea_ = reinterpret_cast<uint8_t *>(hdr_ + 1);
    varAreaBytes_ = static_region_bytes - sizeof(StaticHeader);

    if (hdr_->magic != kMagic) {
        formatStaticRegion(static_region_bytes);
        firstRun_ = true;
    } else {
        if (hdr_->staticBytes != static_region_bytes) {
            throw std::runtime_error(
                "RegionLayer: static region size changed across restarts");
        }
        recoverRegions();
    }
}

RegionLayer::~RegionLayer()
{
    if (currentRegionLayer() == this)
        setCurrentRegionLayer(nullptr);
}

void
RegionLayer::formatStaticRegion(size_t static_bytes)
{
    auto &c = scm::ctx();
    // The backing file is fresh (zero); only the header words need
    // explicit initialization.
    StaticHeader h{};
    h.magic = kMagic;
    h.staticBytes = static_bytes;
    h.nextVa = alignUp(mgr_.firstUsableVa() + static_bytes, kPageSize);
    h.varBump = 0;
    c.wtstore(&hdr_->staticBytes, &h.staticBytes, sizeof(uint64_t) * 3);
    std::vector<uint8_t> zero(sizeof(StaticHeader) -
                              offsetof(StaticHeader, table));
    c.wtstore(hdr_->table, zero.data(), zero.size());
    c.fence();
    // Magic is written last: a crash mid-format leaves an unformatted
    // region that the next run formats again.
    c.wtstoreT(&hdr_->magic, h.magic);
    c.fence();
}

bool
RegionLayer::mappedNow(uintptr_t addr) const
{
    const auto base = reinterpret_cast<uintptr_t>(hdr_);
    if (addr >= base && addr + sizeof(void *) <= base + hdr_->staticBytes)
        return true;
    for (const auto &e : hdr_->table) {
        if (e.state == 2 && addr >= e.addr &&
            addr + sizeof(void *) <= e.addr + e.len)
            return true;
    }
    return false;
}

void
RegionLayer::reconcileSlot(RegionEntry &e, bool expect_mapped)
{
    // Only dereference the recorded cell if it lies in memory that is
    // mapped right now (the static region or a valid dynamic region) —
    // a cell inside a region that is itself being destroyed is gone
    // along with the data it pointed to.
    if (e.slotAddr == 0 || !mappedNow(e.slotAddr))
        return;
    auto &c = scm::ctx();
    auto **slot = reinterpret_cast<void **>(e.slotAddr);
    auto *region_addr = reinterpret_cast<void *>(e.addr);
    if (expect_mapped) {
        // Redo the publish: valid region, but the crash dropped the
        // pointer write — without this the region would be unreachable
        // (leaked) even though the table still maps it.
        if (*slot != region_addr) {
            c.wtstoreT<void *>(slot, region_addr);
            c.fence();
        }
    } else {
        // Undo the publish: the region is being destroyed; clear the
        // cell only if it still points at it, so it cannot dangle.
        if (*slot == region_addr) {
            c.wtstoreT<void *>(slot, static_cast<void *>(nullptr));
            c.fence();
        }
    }
}

void
RegionLayer::recoverRegions()
{
    auto &c = scm::ctx();
    // Pass 1: re-map every valid region, so client pointer cells that
    // live inside dynamic regions are addressable during pass 2.
    for (size_t i = 0; i < std::size(hdr_->table); ++i) {
        RegionEntry &e = hdr_->table[i];
        if (e.state == 2) {
            mgr_.mapFile(slotFileName(i), size_t(e.len),
                         uintptr_t(e.addr));
        }
    }
    // Pass 2: replay the intention log and reconcile publication slots.
    for (size_t i = 0; i < std::size(hdr_->table); ++i) {
        RegionEntry &e = hdr_->table[i];
        if (e.state == 1 || e.state == 3) {
            // Partially created (1) or partially destroyed (3) region:
            // roll backward/forward to "no region", nullifying the
            // client's cell first so it cannot dangle.
            reconcileSlot(e, /*expect_mapped=*/false);
            mgr_.destroyFile(slotFileName(i), 0, 0);
            c.wtstoreT(&e.state, uint64_t(0));
            c.fence();
        } else if (e.state == 2) {
            // Valid region whose publish write may have been torn off
            // by the crash: redo it from the logged slot address.
            reconcileSlot(e, /*expect_mapped=*/true);
        }
    }
    for (auto &v : hdr_->vars) {
        if (v.state == 1) {
            // Partially created variable: reclaim the slot (the data
            // hole in the bump area is leaked, which is safe).
            c.wtstoreT(&v.state, uint64_t(0));
            c.fence();
        }
    }
}

void *
RegionLayer::pmap(void **persistent_slot, size_t len, uint64_t flags)
{
    std::lock_guard<std::mutex> g(mu_);
    len = alignUp(len, kPageSize);
    auto &c = scm::ctx();

    size_t slot = std::size(hdr_->table);
    for (size_t i = 0; i < std::size(hdr_->table); ++i) {
        if (hdr_->table[i].state == 0) {
            slot = i;
            break;
        }
    }
    if (slot == std::size(hdr_->table))
        throw std::runtime_error("RegionLayer: region table full");

    const uint64_t addr = hdr_->nextVa;
    if (addr + len > mgr_.vaBase() + mgr_.vaReserve())
        throw std::runtime_error("RegionLayer: persistent address space "
                                 "exhausted");
    c.wtstoreT(&hdr_->nextVa, addr + len);

    // Intention-log protocol: record the entry as in-progress (with the
    // client's pointer cell, so recovery can reconcile the publication
    // write), create the backing file, then durably mark it valid
    // (section 4.2).
    RegionEntry e{addr, len, flags, 1,
                  uint64_t(reinterpret_cast<uintptr_t>(persistent_slot))};
    c.wtstore(&hdr_->table[slot], &e, sizeof(e));
    c.fence();

    // A stale backing file from a crashed punmap must not leak old data
    // into a fresh region.
    mgr_.destroyFile(slotFileName(slot), 0, 0);
    void *mapped = mgr_.mapFile(slotFileName(slot), len, uintptr_t(addr));

    c.wtstoreT(&hdr_->table[slot].state, uint64_t(2));
    c.fence();

    if (persistent_slot) {
        assert(isPersistent(persistent_slot) &&
               "pmap target pointer must live in persistent memory");
        c.wtstoreT<void *>(persistent_slot, mapped);
        c.fence();
    }
    tctrs().pmaps.add(1);
    return mapped;
}

void
RegionLayer::punmap(void *addr, size_t len)
{
    std::lock_guard<std::mutex> g(mu_);
    auto &c = scm::ctx();
    for (size_t i = 0; i < std::size(hdr_->table); ++i) {
        RegionEntry &e = hdr_->table[i];
        if (e.state == 2 && e.addr == reinterpret_cast<uintptr_t>(addr)) {
            assert(len == e.len && "partial punmap is not supported");
            (void)len;
            // Destruction intent first: once durable, recovery rolls the
            // punmap forward (nullify the client's cell, destroy the
            // file, free the entry) no matter where the crash lands.
            c.wtstoreT(&e.state, uint64_t(3));
            c.fence();
            if (e.slotAddr && mappedNow(e.slotAddr)) {
                auto **slot = reinterpret_cast<void **>(e.slotAddr);
                if (*slot == addr) {
                    c.wtstoreT<void *>(slot, static_cast<void *>(nullptr));
                    c.fence();
                }
            }
            mgr_.destroyFile(slotFileName(i), uintptr_t(e.addr),
                             size_t(e.len));
            c.wtstoreT(&e.state, uint64_t(0));
            c.fence();
            tctrs().punmaps.add(1);
            return;
        }
    }
    throw std::runtime_error("punmap: no such region");
}

void *
RegionLayer::pstaticVar(const std::string &name, size_t size,
                        const void *init)
{
    std::lock_guard<std::mutex> g(mu_);
    assert(name.size() < sizeof(PVarEntry::name));
    auto &c = scm::ctx();

    size_t free_slot = std::size(hdr_->vars);
    for (size_t i = 0; i < std::size(hdr_->vars); ++i) {
        PVarEntry &v = hdr_->vars[i];
        if (v.state == 2 && name == v.name) {
            if (v.size != size) {
                throw std::runtime_error(
                    "pstatic variable '" + name + "' changed size");
            }
            return varArea_ + v.offset;
        }
        if (v.state == 0 && free_slot == std::size(hdr_->vars))
            free_slot = i;
    }
    if (free_slot == std::size(hdr_->vars))
        throw std::runtime_error("RegionLayer: pstatic table full");

    const uint64_t offset = alignUp(hdr_->varBump, 64);
    if (offset + size > varAreaBytes_)
        throw std::runtime_error("RegionLayer: static region full");

    PVarEntry v{};
    std::strncpy(v.name, name.c_str(), sizeof(v.name) - 1);
    v.offset = offset;
    v.size = size;
    v.state = 1;
    c.wtstoreT(&hdr_->varBump, offset + size);
    c.wtstore(&hdr_->vars[free_slot], &v, sizeof(v));
    c.fence();

    // Initialize once, then durably publish (paper: persistent static
    // variables are initialized when the program first runs).
    if (init) {
        c.wtstore(varArea_ + offset, init, size);
    } else {
        std::vector<uint8_t> zero(size, 0);
        c.wtstore(varArea_ + offset, zero.data(), size);
    }
    c.fence();
    c.wtstoreT(&hdr_->vars[free_slot].state, uint64_t(2));
    c.fence();
    tctrs().pstatic_vars.add(1);
    return varArea_ + offset;
}

std::vector<RegionLayer::RegionInfo>
RegionLayer::regions() const
{
    std::lock_guard<std::mutex> g(mu_);
    std::vector<RegionInfo> out;
    for (size_t i = 0; i < std::size(hdr_->table); ++i) {
        const RegionEntry &e = hdr_->table[i];
        if (e.state == 2) {
            out.push_back(RegionInfo{reinterpret_cast<void *>(e.addr),
                                     size_t(e.len), e.flags, i});
        }
    }
    return out;
}

RegionLayer::RegionInfo
RegionLayer::findByFlags(uint64_t flags) const
{
    for (const auto &r : regions()) {
        if (r.flags == flags)
            return r;
    }
    return RegionInfo{nullptr, 0, 0, 0};
}

} // namespace mnemosyne::region
