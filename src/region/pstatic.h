/**
 * @file
 * The pstatic keyword and the persistent pointer annotation.
 *
 * In the paper, `pstatic int x;` places x in a ".persistent" ELF section
 * that the linker coalesces into the static persistent region, and
 * `type persistent *p` is a Sparse annotation that statically flags
 * assignments mixing persistent and volatile address spaces.
 *
 * Without a modified toolchain, this header provides the same
 * programming model as library constructs:
 *
 *  - PStatic<T> declares a named global persistent variable.  It is
 *    initialized once, the first time the program ever runs, and then
 *    retains its value across invocations and crashes.  Resolution is
 *    lazy: the variable binds to its slot in the static region on first
 *    access after the runtime is initialized.
 *
 *  - pptr<T> is a pointer whose target is declared persistent.  Instead
 *    of Sparse's compile-time address-space check, it verifies on
 *    assignment (in debug builds) that the target really lies in the
 *    reserved persistent range, catching exactly the dangerous
 *    volatile-into-persistent assignments the annotation exists for.
 */

#ifndef MNEMOSYNE_REGION_PSTATIC_H_
#define MNEMOSYNE_REGION_PSTATIC_H_

#include <cassert>
#include <cstdint>

#include "region/region_table.h"

namespace mnemosyne::region {

/**
 * A named global persistent variable (the pstatic keyword).
 *
 * Usage:
 * @code
 *   PStatic<uint64_t> boot_count("boot_count");
 *   ...
 *   *boot_count += 1;   // after runtime init
 * @endcode
 */
template <typename T>
class PStatic
{
  public:
    explicit PStatic(const char *name, const T &init = T{})
        : name_(name), init_(init)
    {
    }

    /** The persistent storage; requires an active runtime. */
    T *
    get()
    {
        const uint64_t gen = regionLayerGeneration();
        if (ptr_ == nullptr || gen_ != gen) {
            RegionLayer *rl = currentRegionLayer();
            assert(rl && "PStatic accessed without an active runtime");
            ptr_ = static_cast<T *>(rl->pstaticVar(name_, sizeof(T),
                                                   &init_));
            gen_ = gen;
        }
        return ptr_;
    }

    T *operator->() { return get(); }
    T &operator*() { return *get(); }

    const char *name() const { return name_; }

  private:
    const char *name_;
    T init_;
    T *ptr_ = nullptr;
    uint64_t gen_ = ~uint64_t(0);
};

/**
 * Pointer-to-persistent annotation (the persistent keyword).  The check
 * is shallow, exactly like the paper's annotation: it validates the
 * target address, not the members of the target.
 */
template <typename T>
class pptr
{
  public:
    pptr() = default;

    pptr(T *p) { assign(p); }      // NOLINT: implicit like a raw pointer

    pptr &
    operator=(T *p)
    {
        assign(p);
        return *this;
    }

    T *get() const { return p_; }
    T *operator->() const { return p_; }
    T &operator*() const { return *p_; }
    explicit operator bool() const { return p_ != nullptr; }
    operator T *() const { return p_; }   // NOLINT: decays like a pointer

    /** Address of the underlying raw pointer cell (for pmalloc etc.). */
    T **cell() { return &p_; }

  private:
    void
    assign(T *p)
    {
#ifndef NDEBUG
        if (p != nullptr) {
            RegionLayer *rl = currentRegionLayer();
            assert((!rl || rl->isPersistent(p)) &&
                   "assigning a volatile address to a persistent pointer");
        }
#endif
        p_ = p;
    }

    T *p_ = nullptr;
};

} // namespace mnemosyne::region

#endif // MNEMOSYNE_REGION_PSTATIC_H_
