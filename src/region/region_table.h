/**
 * @file
 * libmnemosyne's persistent-region layer (paper section 4.2).
 *
 * The library creates and records the persistent regions of a process:
 *
 *  - All regions live in a reserved range of virtual address space,
 *    allowing a quick range check to decide whether an address refers to
 *    persistent data (used by the transaction system, section 5).
 *  - A *static region* holds global persistent variables (the pstatic
 *    keyword) and, at its base, a 16 KB region table recording every
 *    dynamic region of the process: <addr, len, backing file, metadata>.
 *  - The region table doubles as an intention log: pmap() writes the
 *    entry, creates and maps the backing file, and only then durably
 *    flags the entry valid.  At startup, valid entries are re-mapped
 *    and partially created ones are destroyed.
 */

#ifndef MNEMOSYNE_REGION_REGION_TABLE_H_
#define MNEMOSYNE_REGION_REGION_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "region/region_manager.h"

namespace mnemosyne::region {

/** Region flags (metadata stored in the region table). */
enum RegionFlags : uint64_t {
    kRegionDefault = 0,
    kRegionHeap = 1,       ///< Used by the persistent (superblock) heap.
    kRegionLog = 2,        ///< Used by the transaction log manager.
    kRegionHeapBig = 3,    ///< Used by the large-block allocator.
};

class RegionLayer
{
  public:
    struct RegionInfo {
        void *addr;
        size_t len;
        uint64_t flags;
        size_t slot;
    };

    /**
     * Initialize persistent regions for this process: map (or create)
     * the static region, destroy partially created dynamic regions, and
     * re-map the rest at their recorded addresses.
     */
    RegionLayer(RegionManager &mgr, size_t static_region_bytes = 1 << 20);
    ~RegionLayer();

    RegionLayer(const RegionLayer &) = delete;
    RegionLayer &operator=(const RegionLayer &) = delete;

    /**
     * Create a dynamic persistent region of @p len bytes (like mmap with
     * MAP_PERSIST).  @p persistent_slot, when non-null, must point into
     * persistent memory and durably receives the region's address so a
     * crash right after creation cannot leak the region (section 3.4).
     */
    void *pmap(void **persistent_slot, size_t len,
               uint64_t flags = kRegionDefault);

    /** Delete a dynamic region and its backing file. */
    void punmap(void *addr, size_t len);

    /**
     * Resolve (or create on first use) the storage of a persistent
     * static variable.  On creation the variable is initialized from
     * @p init (may be null for zero-init); afterwards it retains its
     * value across invocations, like the paper's pstatic keyword.
     */
    void *pstaticVar(const std::string &name, size_t size,
                     const void *init);

    /** Quick range check: does @p addr refer to persistent memory? */
    bool
    isPersistent(const void *addr) const
    {
        const auto a = reinterpret_cast<uintptr_t>(addr);
        return a >= mgr_.vaBase() && a < mgr_.vaBase() + mgr_.vaReserve();
    }

    /** True when the static region was created by this invocation. */
    bool firstRun() const { return firstRun_; }

    /** Every valid dynamic region, for higher-layer recovery. */
    std::vector<RegionInfo> regions() const;

    /** The first region whose flags match, or {nullptr,0,...}. */
    RegionInfo findByFlags(uint64_t flags) const;

    RegionManager &manager() { return mgr_; }

  private:
    struct RegionEntry {
        uint64_t addr;
        uint64_t len;
        uint64_t flags;
        uint64_t state;     ///< 0 free, 1 create intent, 2 valid,
                            ///< 3 punmap intent.
        /**
         * Address of the client's persistent pointer cell (0 if none).
         * Recording it in the intention log closes the publication
         * windows the crash sweeper exposed: a crash between "entry
         * valid" and "slot written" (or, during punmap, between "slot
         * nullified" and "entry freed") leaves the two words torn under
         * adversarial persistence; recovery reconciles the slot from
         * the entry, so a region can neither leak nor dangle.
         */
        uint64_t slotAddr;
    };

    struct PVarEntry {
        char name[40];
        uint64_t offset;
        uint64_t size;
        uint64_t state;     ///< 0 free, 1 intent, 2 valid.
    };

    /** Header at the base of the static region.  The region table keeps
     *  the paper's 512 slots (grown from its 16 KB by the per-entry
     *  slot-address word). */
    struct StaticHeader {
        uint64_t magic;
        uint64_t staticBytes;
        uint64_t nextVa;        ///< Bump allocator for dynamic region VAs.
        uint64_t varBump;       ///< Bump offset for pstatic variable data.
        RegionEntry table[512];
        PVarEntry vars[256];
    };

    static constexpr uint64_t kMagic = 0x4d4e535441543032ULL; // "MNSTAT02"

    static std::string slotFileName(size_t slot);
    void formatStaticRegion(size_t static_bytes);
    void recoverRegions();
    bool mappedNow(uintptr_t addr) const;
    void reconcileSlot(RegionEntry &e, bool expect_mapped);

    RegionManager &mgr_;
    StaticHeader *hdr_ = nullptr;
    uint8_t *varArea_ = nullptr;
    size_t varAreaBytes_ = 0;
    bool firstRun_ = false;
    mutable std::mutex mu_;
};

/**
 * The process-wide region layer, installed by the runtime; null when no
 * runtime is active.  PStatic<T> resolves through this.
 */
RegionLayer *currentRegionLayer();
void setCurrentRegionLayer(RegionLayer *rl);

/** Generation counter bumped on every install, to invalidate caches. */
uint64_t regionLayerGeneration();

} // namespace mnemosyne::region

#endif // MNEMOSYNE_REGION_REGION_TABLE_H_
