/**
 * @file
 * Log manager: a persistent registry of per-thread RAWLs.
 *
 * Mnemosyne keeps a per-thread redo log for multiprocessor scalability
 * (paper, section 5).  The log manager partitions one persistent area
 * into fixed-size slots, durably tracks which slots hold live logs, and
 * re-opens all live logs during recovery so completed transactions can
 * be replayed.
 *
 * The volatile slot bookkeeping is sharded: slot i belongs to shard
 * i mod kNumShards, each shard with its own mutex, so threads starting
 * up concurrently do not serialize on one lock while formatting their
 * (megabyte-sized) logs.  The persistent layout is untouched by the
 * sharding — it only partitions the in-memory free-slot search.
 */

#ifndef MNEMOSYNE_LOG_LOG_MANAGER_H_
#define MNEMOSYNE_LOG_LOG_MANAGER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "log/rawl.h"

namespace mnemosyne::log {

class LogManager
{
  public:
    struct Header {
        uint64_t magic;
        uint64_t nslots;
        uint64_t slotBytes;
        uint64_t reserved;
    };

    /** Durable per-slot state. */
    struct SlotState {
        uint64_t active;    ///< 0 = free, 1 = holds a live log.
        uint64_t ownerHint; ///< Informational (thread ordinal at acquire).
    };

    static constexpr uint64_t kMagic = 0x4d4e4c4f474d4752ULL;

    static size_t footprint(size_t nslots, size_t slot_bytes);

    static std::unique_ptr<LogManager> create(void *mem, size_t bytes,
                                              size_t nslots,
                                              size_t slot_bytes);

    /** Recover: re-open every active slot's log (torn-bit scan inside). */
    static std::unique_ptr<LogManager> open(void *mem);

    /** Durably claim a free slot and return its (fresh) log.  The
     *  search starts in the shard keyed by @p owner_hint, so threads
     *  acquiring concurrently format their logs in parallel. */
    Rawl *acquire(uint64_t owner_hint = 0);

    /** Truncate and durably release a slot's log. */
    void release(Rawl *log);

    /** Visit every live log (used by recovery and async truncation).
     *  Holds one shard lock at a time while calling @p fn. */
    void forEachActive(const std::function<void(size_t slot, Rawl &)> &fn);

    size_t nslots() const { return size_t(hdr_->nslots); }
    size_t slotBytes() const { return size_t(hdr_->slotBytes); }
    size_t activeCount() const;

    static constexpr size_t kNumShards = 4;

  private:
    LogManager(Header *hdr, SlotState *states, uint8_t *slots_base);

    void *slotMem(size_t i) const { return slotsBase_ + i * hdr_->slotBytes; }

    /** Claim a free slot within one shard; returns nullptr if the shard
     *  is exhausted.  Takes the shard lock inside. */
    Rawl *acquireInShard(size_t shard, uint64_t owner_hint);

    Header *hdr_;
    SlotState *states_;
    uint8_t *slotsBase_;

    /** Padded so concurrently-held shard locks never share a line. */
    struct alignas(64) Shard {
        mutable std::mutex mu;
    };
    mutable std::array<Shard, kNumShards> shards_;
    size_t nShards_ = 1;    ///< min(kNumShards, nslots).

    /** Indexed by slot; null if free.  Entry i is guarded by shard
     *  i mod nShards_. */
    std::vector<std::unique_ptr<Rawl>> logs_;
};

} // namespace mnemosyne::log

#endif // MNEMOSYNE_LOG_LOG_MANAGER_H_
