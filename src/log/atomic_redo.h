/**
 * @file
 * Atomic multi-word updates via RAWL redo logging.
 *
 * The persistent heap makes its operations atomic "by logging the write
 * to the bitmap vector and the destination/source pointer" (paper,
 * section 4.3).  AtomicRedo generalizes that: a small set of word-sized
 * writes is appended to a RAWL as a redo record and flushed (one fence,
 * thanks to the tornbit), then applied in place and flushed, then the
 * log is truncated.  Recovery replays any record left in the log —
 * replaying is idempotent, so a crash at any point yields either none
 * or all of the writes.
 */

#ifndef MNEMOSYNE_LOG_ATOMIC_REDO_H_
#define MNEMOSYNE_LOG_ATOMIC_REDO_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "log/rawl.h"

namespace mnemosyne::log {

/** One word-sized write: *addr = val. */
struct WordWrite {
    uint64_t *addr;
    uint64_t val;
};

class AtomicRedo
{
  public:
    /** Uses @p log for redo records; the log must be private to this
     *  AtomicRedo (its records are truncated after each operation). */
    explicit AtomicRedo(Rawl &log) : log_(log) {}

    /**
     * Durably apply all of @p writes, atomically with respect to
     * crashes: after recovery, either every write is visible or none.
     */
    void apply(std::span<const WordWrite> writes);

    /**
     * Recovery: replay any complete record in the log, then truncate.
     * Returns the number of records replayed.
     */
    size_t recover();

  private:
    Rawl &log_;
    std::vector<uint64_t> scratch_;
};

} // namespace mnemosyne::log

#endif // MNEMOSYNE_LOG_ATOMIC_REDO_H_
