#include "log/atomic_redo.h"

#include "scm/scm.h"

namespace mnemosyne::log {

void
AtomicRedo::apply(std::span<const WordWrite> writes)
{
    auto &c = scm::ctx();

    // Redo record: [addr, val] pairs.  The record append is atomic by
    // torn-bit construction; one fence makes it durable.
    scratch_.clear();
    for (const auto &w : writes) {
        scratch_.push_back(reinterpret_cast<uint64_t>(w.addr));
        scratch_.push_back(w.val);
    }
    log_.append(scratch_.data(), scratch_.size());
    log_.flush();

    // In-place application, then force it out and drop the record.  The
    // head advance itself needs no extra fence: it must merely not
    // become durable before the applied writes (this fence), and if it
    // is lost the recovery replay is idempotent.
    for (const auto &w : writes) {
        c.wtstoreT(w.addr, w.val);
    }
    c.fence();
    log_.consumeTo(log::Rawl::Cursor{log_.tailAbs()}, /*do_fence=*/false);
}

size_t
AtomicRedo::recover()
{
    auto &c = scm::ctx();
    auto cur = log_.begin();
    std::vector<uint64_t> rec;
    size_t replayed = 0;
    while (log_.readRecord(cur, rec)) {
        for (size_t i = 0; i + 1 < rec.size(); i += 2) {
            c.wtstoreT(reinterpret_cast<uint64_t *>(rec[i]), rec[i + 1]);
        }
        ++replayed;
    }
    c.fence();
    log_.truncateAll();
    return replayed;
}

} // namespace mnemosyne::log
