#include "log/log_manager.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/obs.h"
#include "scm/scm.h"

namespace mnemosyne::log {

namespace {

struct LogMgrCounters {
    obs::Counter acquires{"log.slot_acquires"};
    obs::Counter releases{"log.slot_releases"};
};

LogMgrCounters &
ctrs()
{
    static LogMgrCounters c;
    return c;
}

size_t
alignUp(size_t v, size_t a)
{
    return (v + a - 1) & ~(a - 1);
}

} // namespace

size_t
LogManager::footprint(size_t nslots, size_t slot_bytes)
{
    return alignUp(sizeof(Header) + nslots * sizeof(SlotState), 64) +
           nslots * slot_bytes;
}

LogManager::LogManager(Header *hdr, SlotState *states, uint8_t *slots_base)
    : hdr_(hdr), states_(states), slotsBase_(slots_base)
{
    logs_.resize(size_t(hdr_->nslots));
    nShards_ = std::min(kNumShards, logs_.size() ? logs_.size() : size_t(1));
}

std::unique_ptr<LogManager>
LogManager::create(void *mem, size_t bytes, size_t nslots, size_t slot_bytes)
{
    assert(bytes >= footprint(nslots, slot_bytes));
    (void)bytes;
    auto *hdr = static_cast<Header *>(mem);
    auto *states = reinterpret_cast<SlotState *>(hdr + 1);
    auto *base = static_cast<uint8_t *>(mem) +
                 alignUp(sizeof(Header) + nslots * sizeof(SlotState), 64);

    auto &c = scm::ctx();
    std::vector<SlotState> zero(nslots, SlotState{0, 0});
    c.wtstore(states, zero.data(), nslots * sizeof(SlotState));
    Header h{kMagic, nslots, slot_bytes, 0};
    c.wtstore(hdr, &h, sizeof(h));
    c.fence();
    return std::unique_ptr<LogManager>(new LogManager(hdr, states, base));
}

std::unique_ptr<LogManager>
LogManager::open(void *mem)
{
    auto *hdr = static_cast<Header *>(mem);
    if (hdr->magic != kMagic)
        return nullptr;
    auto *states = reinterpret_cast<SlotState *>(hdr + 1);
    auto *base = static_cast<uint8_t *>(mem) +
                 alignUp(sizeof(Header) + size_t(hdr->nslots) *
                         sizeof(SlotState), 64);
    auto lm = std::unique_ptr<LogManager>(new LogManager(hdr, states, base));
    for (size_t i = 0; i < lm->nslots(); ++i) {
        if (states[i].active) {
            auto log = Rawl::open(lm->slotMem(i));
            // A slot marked active whose log was never formatted (crash
            // between the slot flag and the log header) is reclaimed.
            if (log) {
                log->setSlotId(i);
                lm->logs_[i] = std::move(log);
            } else {
                scm::ctx().wtstoreT(&states[i].active, uint64_t(0));
                scm::ctx().fence();
            }
        }
    }
    return lm;
}

Rawl *
LogManager::acquireInShard(size_t shard, uint64_t owner_hint)
{
    std::lock_guard<std::mutex> g(shards_[shard].mu);
    for (size_t i = shard; i < nslots(); i += nShards_) {
        if (states_[i].active || logs_[i])
            continue;
        // Format the log first, then durably flip the slot flag: a crash
        // in between leaves an inactive, formatted slot — harmless.
        logs_[i] = Rawl::create(slotMem(i), slotBytes());
        logs_[i]->setSlotId(i);
        auto &c = scm::ctx();
        c.wtstoreT(&states_[i].ownerHint, owner_hint);
        c.wtstoreT(&states_[i].active, uint64_t(1));
        c.fence();
        ctrs().acquires.add(1);
        return logs_[i].get();
    }
    return nullptr;
}

Rawl *
LogManager::acquire(uint64_t owner_hint)
{
    // Home shard by owner hint: concurrent acquirers land on different
    // locks and format their slots (the expensive part — megabytes of
    // filler writes) in parallel, falling over when a shard runs dry.
    const size_t home = size_t(owner_hint) % nShards_;
    for (size_t s = 0; s < nShards_; ++s) {
        if (Rawl *log = acquireInShard((home + s) % nShards_, owner_hint))
            return log;
    }
    throw std::runtime_error("LogManager: out of log slots");
}

void
LogManager::release(Rawl *log)
{
    for (size_t shard = 0; shard < nShards_; ++shard) {
        std::lock_guard<std::mutex> g(shards_[shard].mu);
        for (size_t i = shard; i < nslots(); i += nShards_) {
            if (logs_[i].get() != log)
                continue;
            log->truncateAll();
            auto &c = scm::ctx();
            c.wtstoreT(&states_[i].active, uint64_t(0));
            c.fence();
            logs_[i].reset();
            ctrs().releases.add(1);
            return;
        }
    }
    assert(false && "release of unknown log");
}

void
LogManager::forEachActive(
    const std::function<void(size_t, Rawl &)> &fn)
{
    // One shard lock at a time; visits slots in shard-interleaved
    // order, which no caller depends on.
    for (size_t shard = 0; shard < nShards_; ++shard) {
        std::lock_guard<std::mutex> g(shards_[shard].mu);
        for (size_t i = shard; i < nslots(); i += nShards_) {
            if (logs_[i])
                fn(i, *logs_[i]);
        }
    }
}

size_t
LogManager::activeCount() const
{
    size_t n = 0;
    for (size_t shard = 0; shard < nShards_; ++shard) {
        std::lock_guard<std::mutex> g(shards_[shard].mu);
        for (size_t i = shard; i < nslots(); i += nShards_)
            n += (logs_[i] != nullptr);
    }
    return n;
}

} // namespace mnemosyne::log
