#include "log/commit_record_log.h"

#include "log/rawl.h"

#include <algorithm>
#include <cassert>
#include <thread>

#include "scm/scm.h"

namespace mnemosyne::log {

size_t
CommitRecordLog::footprint(size_t capacity_words)
{
    return sizeof(Header) + capacity_words * sizeof(uint64_t);
}

size_t
CommitRecordLog::maxRecordWords(size_t capacity_words)
{
    return capacity_words < 3 ? 0 : capacity_words - 2;
}

CommitRecordLog::CommitRecordLog(Header *hdr, uint64_t *buf, uint64_t capacity)
    : hdr_(hdr), buf_(buf), capacity_(capacity)
{
}

std::unique_ptr<CommitRecordLog>
CommitRecordLog::create(void *mem, size_t bytes)
{
    assert(bytes > sizeof(Header) + 4 * sizeof(uint64_t));
    auto *hdr = static_cast<Header *>(mem);
    const uint64_t capacity = (bytes - sizeof(Header)) / sizeof(uint64_t);
    auto *buf = reinterpret_cast<uint64_t *>(hdr + 1);

    Header h{kMagic, capacity, 0, 0};
    scm::ctx().wtstore(hdr, &h, sizeof(h));
    scm::ctx().fence();
    return std::unique_ptr<CommitRecordLog>(
        new CommitRecordLog(hdr, buf, capacity));
}

std::unique_ptr<CommitRecordLog>
CommitRecordLog::open(void *mem)
{
    auto *hdr = static_cast<Header *>(mem);
    if (hdr->magic != kMagic)
        return nullptr;
    auto *buf = reinterpret_cast<uint64_t *>(hdr + 1);
    auto log = std::unique_ptr<CommitRecordLog>(
        new CommitRecordLog(hdr, buf, hdr->capacityWords));
    // Validity is bounded by the durably committed tail: anything past
    // commitAbs never committed and is simply ignored.
    log->headShadow_.store(hdr->headAbs, std::memory_order_release);
    log->tail_ = hdr->commitAbs;
    log->tailShadow_.store(hdr->commitAbs, std::memory_order_release);
    return log;
}

size_t
CommitRecordLog::freeWords() const
{
    return size_t(capacity_ - 1 -
                  (tail_ - headShadow_.load(std::memory_order_acquire)));
}

bool
CommitRecordLog::tryAppend(const uint64_t *words, size_t n)
{
    const size_t need = 1 + n;
    if (need > capacity_ - 1)
        return false;
    if (need > capacity_ - 1 -
            (tail_ - headShadow_.load(std::memory_order_acquire)))
        return false;

    auto &c = scm::ctx();
    uint64_t hdr_word = uint64_t(n);
    c.wtstore(&buf_[tail_ % capacity_], &hdr_word, sizeof(hdr_word));
    ++tail_;
    // Stream the payload verbatim in physically contiguous chunks.
    size_t done = 0;
    while (done < n) {
        const uint64_t slot = tail_ % capacity_;
        const size_t run = std::min(n - done, size_t(capacity_ - slot));
        c.wtstore(&buf_[slot], words + done, run * sizeof(uint64_t));
        done += run;
        tail_ += run;
    }
    return true;
}

void
CommitRecordLog::append(const uint64_t *words, size_t n)
{
    if (1 + n > capacity_ - 1)
        throw RecordTooLarge{n};
    while (!tryAppend(words, n))
        std::this_thread::yield();
}

void
CommitRecordLog::flush()
{
    auto &c = scm::ctx();
    c.fence();                              // data writes complete
    c.wtstoreT(&hdr_->commitAbs, tail_);    // commit record
    c.fence();                              // commit record complete
    tailShadow_.store(tail_, std::memory_order_release);
}

void
CommitRecordLog::truncateAll()
{
    flush();
    consumeTo(Cursor{tail_});
}

bool
CommitRecordLog::readRecord(Cursor &c, std::vector<uint64_t> &out) const
{
    const uint64_t committed = tailShadow_.load(std::memory_order_acquire);
    if (c.pos >= committed)
        return false;
    const uint64_t n = buf_[c.pos % capacity_];
    assert(c.pos + 1 + n <= committed);
    out.clear();
    out.reserve(size_t(n));
    for (uint64_t i = 0; i < n; ++i)
        out.push_back(buf_[(c.pos + 1 + i) % capacity_]);
    c.pos += 1 + n;
    return true;
}

void
CommitRecordLog::consumeTo(Cursor c, bool do_fence)
{
    auto &ctx = scm::ctx();
    ctx.wtstoreT(&hdr_->headAbs, c.pos);
    if (do_fence)
        ctx.fence();
    headShadow_.store(c.pos, std::memory_order_release);
}

} // namespace mnemosyne::log
