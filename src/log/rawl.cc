#include "log/rawl.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "obs/hdr_histogram.h"
#include "obs/obs.h"
#include "obs/trace_ring.h"
#include "scm/scm.h"

namespace mnemosyne::log {

namespace {

/** Registry-backed event counts for every Rawl in the process.  Kept as
 *  a function-local static so the registry (also a function-local
 *  static) is guaranteed to outlive them. */
struct RawlCounters {
    obs::Counter appends{"rawl.appends"};
    obs::Counter append_words{"rawl.append_words"};
    obs::Counter append_stalls{"rawl.append_stalls"};
    obs::Counter pass_flips{"rawl.pass_flips"};
    obs::Counter flushes{"rawl.flushes"};
    obs::Counter truncations{"rawl.truncations"};
    /** Full-log stall latency: HDR-bucketed (~3% relative error) so a
     *  truncation-policy change shows up in p99, not just the mean. */
    obs::HdrHistogram append_stall_ns{"rawl.append_stall_ns"};
};

RawlCounters &
ctrs()
{
    static RawlCounters c;
    return c;
}

} // namespace

size_t
Rawl::footprint(size_t capacity_words)
{
    return sizeof(Header) + capacity_words * sizeof(uint64_t);
}

size_t
Rawl::maxRecordWords(size_t capacity_words)
{
    // An append of n payload words needs 1 + ceil(64n/63) slots and the
    // buffer keeps one slot free: solve for the largest n that fits.
    if (capacity_words < 4)
        return 0;
    const size_t usable = capacity_words - 2; // header slot + reserve slot
    return usable * 63 / 64;
}

Rawl::Rawl(Header *hdr, uint64_t *buf, uint64_t capacity)
    : hdr_(hdr), buf_(buf), capacity_(capacity)
{
}

std::unique_ptr<Rawl>
Rawl::create(void *mem, size_t bytes)
{
    assert(bytes > sizeof(Header) + 4 * sizeof(uint64_t));
    auto *hdr = static_cast<Header *>(mem);
    const uint64_t capacity = (bytes - sizeof(Header)) / sizeof(uint64_t);
    auto *buf = reinterpret_cast<uint64_t *>(hdr + 1);

    auto &c = scm::ctx();
    // Zero words carry torn bit 0, which is invalid for the first pass
    // (expected parity 1): the whole buffer starts out as filler.
    std::vector<uint64_t> zeros(std::min<uint64_t>(capacity, 8192), 0);
    for (uint64_t i = 0; i < capacity; i += zeros.size()) {
        const uint64_t n = std::min<uint64_t>(zeros.size(), capacity - i);
        c.wtstore(&buf[i], zeros.data(), n * sizeof(uint64_t));
    }
    Header h{kMagic, capacity, 0, 0};
    c.wtstore(hdr, &h, sizeof(h));
    c.fence();

    auto log = std::unique_ptr<Rawl>(new Rawl(hdr, buf, capacity));
    return log;
}

bool
Rawl::wordValidAt(uint64_t abs_pos) const
{
    const uint64_t w = buf_[abs_pos % capacity_];
    return (w >> 63) == parityAt(abs_pos);
}

uint64_t
Rawl::payloadAt(uint64_t abs_pos) const
{
    return buf_[abs_pos % capacity_] & kPayloadMask;
}

std::unique_ptr<Rawl>
Rawl::open(void *mem)
{
    auto *hdr = static_cast<Header *>(mem);
    if (hdr->magic != kMagic)
        return nullptr;
    const uint64_t capacity = hdr->capacityWords;
    auto *buf = reinterpret_cast<uint64_t *>(hdr + 1);
    auto log = std::unique_ptr<Rawl>(new Rawl(hdr, buf, capacity));

    const uint64_t head = hdr->headAbs;
    // Torn-bit scan: accept words while the torn bit matches the pass
    // parity; stop at the first out-of-sequence word (end of log or
    // partial write, Figure 2).
    uint64_t scan = head;
    while (scan - head < capacity - 1 && log->wordValidAt(scan))
        ++scan;

    // Keep only whole records: a trailing append whose header promises
    // more words than scanned is a torn append and is discarded.
    uint64_t tail = head;
    while (tail < scan) {
        const uint64_t n = log->payloadAt(tail);
        const uint64_t rec = wordsForAppend(size_t(n));
        if (n > maxRecordWords(capacity) || tail + rec > scan)
            break;
        tail += rec;
    }

    // Restore the filler invariant over the free region so stale words
    // from an earlier crash in the same pass cannot alias as valid.
    log->fillInvalid(tail, head + capacity);

    log->headShadow_.store(head, std::memory_order_release);
    log->tail_ = tail;
    log->tailShadow_.store(tail, std::memory_order_release);
    log->flushedShadow_.store(tail, std::memory_order_release);
    return log;
}

void
Rawl::fillInvalid(uint64_t from_abs, uint64_t to_abs)
{
    auto &c = scm::ctx();
    std::vector<uint64_t> chunk;
    uint64_t p = from_abs;
    while (p < to_abs) {
        // Batch physically contiguous runs with constant parity.
        const uint64_t slot = p % capacity_;
        const uint64_t run_physical = capacity_ - slot;
        const uint64_t run_parity = capacity_ - (p % capacity_);
        uint64_t run =
            std::min({to_abs - p, run_physical, run_parity, uint64_t(8192)});
        const uint64_t filler = (parityAt(p) ^ 1) << 63;
        chunk.assign(size_t(run), filler);
        c.wtstore(&buf_[slot], chunk.data(), size_t(run) * sizeof(uint64_t));
        p += run;
    }
    c.fence();
}

size_t
Rawl::freeWords() const
{
    const uint64_t used =
        tailShadow_.load(std::memory_order_acquire) -
        headShadow_.load(std::memory_order_acquire);
    return size_t(capacity_ - 1 - used);
}

bool
Rawl::tryAppend(const uint64_t *words, size_t n)
{
    const size_t need = wordsForAppend(n);
    if (need > capacity_ - 1)
        throw RecordTooLarge{n};
    if (need > capacity_ - 1 -
            (tail_ - headShadow_.load(std::memory_order_acquire))) {
        ctrs().append_stalls.add(1);
        return false;
    }

    // Form the torn-bit words in a staging buffer: treat the incoming
    // 64-bit words as a stream of bits and cut it into 63-bit payloads
    // (paper, section 4.4).  This bit manipulation is the CPU cost that
    // makes the tornbit scheme lose to a commit record for very large
    // records (Table 6).
    stage_.clear();
    stage_.push_back((uint64_t(n) & kPayloadMask) |
                     (parityAt(tail_) << 63));
    unsigned __int128 acc = 0;
    unsigned bits = 0;
    for (size_t i = 0; i < n; ++i) {
        acc |= (unsigned __int128)words[i] << bits;
        bits += 64;
        while (bits >= 63) {
            stage_.push_back((uint64_t(acc) & kPayloadMask) |
                             (parityAt(tail_ + stage_.size()) << 63));
            acc >>= 63;
            bits -= 63;
        }
    }
    if (bits > 0)
        stage_.push_back((uint64_t(acc) & kPayloadMask) |
                         (parityAt(tail_ + stage_.size()) << 63));

    // Stream the staged words out in physically contiguous chunks.  In
    // epoch (group-commit) mode the words go through cached stores
    // instead: the combiner flushes their lines on this producer's
    // behalf, and shared flush claims let the combiner's single fence
    // retire them — a wtstore stream would only retire under the
    // producer's OWN fence, which epoch mode never issues.
    auto &c = scm::ctx();
    size_t done = 0;
    while (done < stage_.size()) {
        const uint64_t slot = (tail_ + done) % capacity_;
        const size_t run =
            std::min(stage_.size() - done, size_t(capacity_ - slot));
        if (cachedAppends_)
            c.store(&buf_[slot], stage_.data() + done,
                    run * sizeof(uint64_t));
        else
            c.wtstore(&buf_[slot], stage_.data() + done,
                      run * sizeof(uint64_t));
        done += run;
    }
    const uint64_t old_tail = tail_;
    tail_ += stage_.size();
    tailShadow_.store(tail_, std::memory_order_release);
    ctrs().appends.add(1);
    ctrs().append_words.add(stage_.size());
    if (old_tail / capacity_ != tail_ / capacity_)
        ctrs().pass_flips.add(1);
    obs::TraceRing::instance().record(obs::TraceEv::kLogAppend, n,
                                      stage_.size());
    return true;
}

void
Rawl::append(const uint64_t *words, size_t n)
{
    if (tryAppend(words, n)) [[likely]]
        return;

    // Full log ("program threads may stall until there is free log
    // space"): nudge the consumer, then wait with bounded backoff — a
    // short burst of yields for the common quick-drain case, escalating
    // to capped sleeps so a stalled producer does not burn a core while
    // the truncator works through a deep backlog.
    const uint64_t t0 = obs::enabled() ? obs::nowNs() : 0;
    uint64_t sleep_us = 0;
    int spins = 0;
    for (;;) {
        if (spaceWaiter_)
            spaceWaiter_();
        if (spins < 64) {
            ++spins;
            std::this_thread::yield();
        } else {
            sleep_us = sleep_us == 0
                           ? 1
                           : std::min<uint64_t>(sleep_us * 2, 500);
            std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
        }
        if (tryAppend(words, n))
            break;
    }
    if (t0) {
        const uint64_t stall_ns = obs::nowNs() - t0;
        ctrs().append_stall_ns.record(stall_ns);
        obs::TraceRing::instance().record(obs::TraceEv::kLogAppend, n,
                                          /*stalled=*/1, stall_ns);
    }
}

void
Rawl::flush()
{
    auto &ring = obs::TraceRing::instance();
    const uint64_t t0 = ring.enabled() ? obs::nowNs() : 0;
    scm::ctx().fence();
    flushedShadow_.store(tail_, std::memory_order_release);
    ctrs().flushes.add(1);
    ring.record(obs::TraceEv::kLogFlush, tail_, 0,
                t0 ? obs::nowNs() - t0 : 0);
}

void
Rawl::linesFor(uint64_t from_abs, uint64_t to_abs,
               std::vector<uintptr_t> &out) const
{
    constexpr uintptr_t kLine = 64;
    uintptr_t last = 0;
    bool have_last = false;
    for (uint64_t p = from_abs; p < to_abs;) {
        const uint64_t slot = p % capacity_;
        const uintptr_t line =
            reinterpret_cast<uintptr_t>(&buf_[slot]) & ~(kLine - 1);
        if (!have_last || line != last) {
            out.push_back(line);
            last = line;
            have_last = true;
        }
        // Jump to the first word past this cache line (wrap-aware).
        const uint64_t words_in_line =
            (line + kLine - reinterpret_cast<uintptr_t>(&buf_[slot])) /
            sizeof(uint64_t);
        const uint64_t step = std::min<uint64_t>(
            {words_in_line, capacity_ - slot, to_abs - p});
        p += step;
    }
}

void
Rawl::publishFlushed(uint64_t abs)
{
    uint64_t cur = flushedShadow_.load(std::memory_order_relaxed);
    while (cur < abs &&
           !flushedShadow_.compare_exchange_weak(
               cur, abs, std::memory_order_release,
               std::memory_order_relaxed)) {
    }
    ctrs().flushes.add(1);
}

void
Rawl::truncateAll()
{
    // Everything currently appended is dropped; readers restart at tail.
    flush();
    consumeTo(Cursor{tail_});
}

bool
Rawl::readRecord(Cursor &c, std::vector<uint64_t> &out) const
{
    const uint64_t flushed = flushedShadow_.load(std::memory_order_acquire);
    if (c.pos >= flushed)
        return false;
    const uint64_t n = payloadAt(c.pos);
    const uint64_t rec = wordsForAppend(size_t(n));
    assert(c.pos + rec <= flushed && "torn framing inside flushed extent");

    out.clear();
    out.reserve(size_t(n));
    unsigned __int128 acc = 0;
    unsigned bits = 0;
    uint64_t pos = c.pos + 1;
    for (uint64_t produced = 0; produced < n;) {
        acc |= (unsigned __int128)payloadAt(pos++) << bits;
        bits += 63;
        while (bits >= 64 && produced < n) {
            out.push_back(uint64_t(acc));
            acc >>= 64;
            bits -= 64;
            ++produced;
        }
    }
    c.pos += rec;
    return true;
}

void
Rawl::consumeTo(Cursor c, bool do_fence)
{
    auto &ctx = scm::ctx();
    auto &ring = obs::TraceRing::instance();
    const uint64_t t0 = ring.enabled() ? obs::nowNs() : 0;
    const uint64_t freed = c.pos - headShadow_.load(std::memory_order_acquire);
    ctx.wtstoreT(&hdr_->headAbs, c.pos);
    if (do_fence)
        ctx.fence();
    headShadow_.store(c.pos, std::memory_order_release);
    ctrs().truncations.add(1);
    ring.record(obs::TraceEv::kLogTruncate, c.pos, freed,
                t0 ? obs::nowNs() - t0 : 0);
}

} // namespace mnemosyne::log
