/**
 * @file
 * RAWL: the raw word log with tornbit encoding (paper section 4.4).
 *
 * A RAWL is a fixed-size single-producer/single-consumer Lamport circular
 * buffer of 64-bit words living in persistent memory.  It supports
 * consistent appends at the tail and truncation at the head without
 * locking, and it makes appends atomic with only ONE fence per flush —
 * instead of the classical two-fence commit-record protocol — using the
 * tornbit scheme:
 *
 *  - Every stored word carries 63 payload bits plus 1 torn bit.
 *  - The torn bit has the same value for all words written in one pass
 *    over the buffer and reverses sense when the log wraps around.
 *  - Streaming writes (movntq / wtstore) may complete out of order; on
 *    recovery, the log manager scans forward from the head and stops at
 *    the first word whose torn bit is out of sequence — which marks
 *    either the end of the log or a partial (torn) append.
 *
 * Framing: each append of n 64-bit payload words is stored as one header
 * word (payload = n) followed by ceil(64*n/63) words carrying the payload
 * bit-stream, so record boundaries always fall on word boundaries.
 *
 * Anti-aliasing: a slot beyond the valid tail could hold a stale word
 * from an *earlier crash in the same pass*, whose torn bit would falsely
 * read as valid.  create() and open() therefore fill the free region
 * with parity-inverted filler words, which restores the invariant that
 * every word beyond the tail scans as invalid.
 */

#ifndef MNEMOSYNE_LOG_RAWL_H_
#define MNEMOSYNE_LOG_RAWL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace mnemosyne::log {

/** Thrown when an append cannot fit even in an empty log. */
struct RecordTooLarge {
    size_t words;
};

class Rawl
{
  public:
    /** Persistent on-media layout preceding the word buffer. */
    struct Header {
        uint64_t magic;
        uint64_t capacityWords;
        uint64_t headAbs;    ///< Absolute (monotonic) position of the head.
        uint64_t reserved;
    };

    static constexpr uint64_t kMagic = 0x4d4e5241574c3031ULL; // "MNRAWL01"
    static constexpr uint64_t kPayloadMask = (uint64_t(1) << 63) - 1;

    /** Bytes of persistent memory needed for a log of @p capacity_words. */
    static size_t footprint(size_t capacity_words);

    /** Largest append (in 64-bit payload words) a log of this capacity
     *  can hold. */
    static size_t maxRecordWords(size_t capacity_words);

    /** Format @p bytes of persistent memory at @p mem as an empty log. */
    static std::unique_ptr<Rawl> create(void *mem, size_t bytes);

    /**
     * Recover a log from persistent memory: locate the valid extent by
     * torn-bit scan, drop any trailing partial append, and restore the
     * free-region filler invariant.
     */
    static std::unique_ptr<Rawl> open(void *mem);

    // -- producer side ----------------------------------------------------

    /**
     * Append @p n payload words.  The streaming writes are unordered and
     * NOT durable until flush().  Spins when the log is full, waiting for
     * the consumer to truncate (the paper: "program threads may stall
     * until there is free log space").
     */
    void append(const uint64_t *words, size_t n);

    /** Non-blocking append; returns false if the log is too full. */
    bool tryAppend(const uint64_t *words, size_t n);

    /**
     * Install a callback invoked while append() waits for free space —
     * the log's owner uses it to nudge the asynchronous truncator so a
     * full log drains promptly instead of waiting out the consumer's
     * poll interval.  Not thread-safe against concurrent append();
     * install before the producer thread starts using the log.
     */
    void setSpaceWaiter(std::function<void()> fn)
    {
        spaceWaiter_ = std::move(fn);
    }

    /** Block until all prior appends have reached SCM (one fence). */
    void flush();

    // -- group-commit support ---------------------------------------------
    //
    // The fence-epoch combiner (mtm/group_commit.h) makes OTHER threads
    // responsible for a producer's durability: the combiner flushes the
    // record's cache lines and retires them with one fence for a whole
    // epoch.  Write-combining streams are per-thread — only the issuing
    // thread's fence retires its wtstores — so epoch-mode appends must
    // go through ordinary cached stores, whose flushed lines any
    // thread's fence retires (the Px86 shared-flush-claim rule).

    /**
     * Switch append staging from streaming (wtstore) to cached stores.
     * Producer-side setting; install before the producer uses the log.
     */
    void setCachedAppends(bool on) { cachedAppends_ = on; }

    /**
     * Append the distinct physical cache lines backing the absolute
     * word range [@p from_abs, @p to_abs) to @p out (wrap-aware).  The
     * combiner flushes these on the producer's behalf.
     */
    void linesFor(uint64_t from_abs, uint64_t to_abs,
                  std::vector<uintptr_t> &out) const;

    /**
     * Advance the flushed watermark to @p abs (monotonic max): the
     * combiner publishes members' durability after its epoch fence.
     * Safe against a concurrent producer-side flush().
     */
    void publishFlushed(uint64_t abs);

    /** Log-manager slot index (volatile; stamped at acquire/open) —
     *  epoch markers name members by slot. */
    uint64_t slotId() const { return slotId_; }
    void setSlotId(uint64_t id) { slotId_ = id; }

    /** Drop every record in the log (head := tail), durably. */
    void truncateAll();

    // -- consumer side ----------------------------------------------------

    /** A read position; obtained from begin(), advanced by readRecord. */
    struct Cursor {
        uint64_t pos = 0;
    };

    /** Cursor at the current head. */
    Cursor begin() const { return Cursor{headShadow_.load(std::memory_order_acquire)}; }

    /**
     * Read the record at @p c into @p out and advance the cursor.
     * Returns false when the cursor has reached the flushed tail.
     * Only records made durable by flush() are visible to the consumer.
     */
    bool readRecord(Cursor &c, std::vector<uint64_t> &out) const;

    /** Durably advance the head to @p c, releasing consumed space. */
    void consumeTo(Cursor c, bool do_fence = true);

    // -- introspection ------------------------------------------------------

    uint64_t headAbs() const { return headShadow_.load(std::memory_order_acquire); }
    uint64_t tailAbs() const { return tailShadow_.load(std::memory_order_acquire); }
    uint64_t flushedAbs() const { return flushedShadow_.load(std::memory_order_acquire); }
    uint64_t capacityWords() const { return capacity_; }
    size_t freeWords() const;
    bool empty() const { return headAbs() == tailAbs(); }

  private:
    Rawl(Header *hdr, uint64_t *buf, uint64_t capacity);

    /** Torn-bit value expected at absolute position @p abs_pos. */
    uint64_t
    parityAt(uint64_t abs_pos) const
    {
        return ((abs_pos / capacity_) % 2 == 0) ? 1 : 0;
    }

    /** Words needed to store an append of @p n payload words. */
    static size_t wordsForAppend(size_t n) { return 1 + (64 * n + 62) / 63; }

    void fillInvalid(uint64_t from_abs, uint64_t to_abs);
    bool wordValidAt(uint64_t abs_pos) const;
    uint64_t payloadAt(uint64_t abs_pos) const;

    Header *hdr_;
    uint64_t *buf_;
    uint64_t capacity_;

    // Volatile shadows shared by producer and consumer (Lamport SPSC).
    std::atomic<uint64_t> headShadow_{0};
    std::atomic<uint64_t> tailShadow_{0};
    std::atomic<uint64_t> flushedShadow_{0};

    // Producer-private cursor (tailShadow_ published after each append).
    uint64_t tail_ = 0;
    std::vector<uint64_t> stage_;   ///< Producer-private staging buffer.
    std::function<void()> spaceWaiter_;  ///< Poked while append() stalls.
    bool cachedAppends_ = false;    ///< Epoch mode: stage via cached stores.
    uint64_t slotId_ = ~uint64_t(0);  ///< Log-manager slot index.
};

} // namespace mnemosyne::log

#endif // MNEMOSYNE_LOG_RAWL_H_
