/**
 * @file
 * Baseline log using the classical two-fence commit-record protocol.
 *
 * This is the comparison point for the tornbit RAWL in Table 6 of the
 * paper: write the data, wait for the data writes to complete with a
 * fence, then write a commit record, and wait for the commit record to
 * complete with a second fence.  Payload words are stored verbatim (the
 * full 64 bits), so no bit manipulation is needed — which is why this
 * scheme eventually beats the tornbit log for large records, at the
 * price of a second long-latency fence on every flush.
 */

#ifndef MNEMOSYNE_LOG_COMMIT_RECORD_LOG_H_
#define MNEMOSYNE_LOG_COMMIT_RECORD_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace mnemosyne::log {

class CommitRecordLog
{
  public:
    struct Header {
        uint64_t magic;
        uint64_t capacityWords;
        uint64_t headAbs;
        uint64_t commitAbs;  ///< The durably committed tail position.
    };

    static constexpr uint64_t kMagic = 0x4d4e434d54303131ULL;

    static size_t footprint(size_t capacity_words);
    static size_t maxRecordWords(size_t capacity_words);

    static std::unique_ptr<CommitRecordLog> create(void *mem, size_t bytes);
    static std::unique_ptr<CommitRecordLog> open(void *mem);

    /** Append @p n payload words (not durable until flush()). */
    void append(const uint64_t *words, size_t n);
    bool tryAppend(const uint64_t *words, size_t n);

    /** Two-fence commit: fence, write commit record, fence. */
    void flush();

    void truncateAll();

    struct Cursor {
        uint64_t pos = 0;
    };
    Cursor begin() const { return Cursor{headShadow_.load(std::memory_order_acquire)}; }
    bool readRecord(Cursor &c, std::vector<uint64_t> &out) const;
    void consumeTo(Cursor c, bool do_fence = true);

    uint64_t headAbs() const { return headShadow_.load(std::memory_order_acquire); }
    uint64_t tailAbs() const { return tailShadow_.load(std::memory_order_acquire); }
    uint64_t capacityWords() const { return capacity_; }
    size_t freeWords() const;
    bool empty() const { return headAbs() == tailAbs(); }

  private:
    CommitRecordLog(Header *hdr, uint64_t *buf, uint64_t capacity);

    Header *hdr_;
    uint64_t *buf_;
    uint64_t capacity_;

    std::atomic<uint64_t> headShadow_{0};
    std::atomic<uint64_t> tailShadow_{0};   ///< Committed tail.
    uint64_t tail_ = 0;                     ///< Producer-private tail.
};

} // namespace mnemosyne::log

#endif // MNEMOSYNE_LOG_COMMIT_RECORD_LOG_H_
