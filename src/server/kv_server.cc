#include "server/kv_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "obs/obs.h"
#include "obs/stats_registry.h"

namespace mnemosyne::server {

namespace {

struct ServerObs {
    obs::Counter accepts{"server.accepts"};
    obs::Counter conns_closed{"server.conns_closed"};
    obs::Counter requests{"server.requests"};
    obs::Counter gets{"server.gets"};
    obs::Counter puts{"server.puts"};
    obs::Counter dels{"server.dels"};
    obs::Counter batches{"server.batches"};
    obs::Counter errors{"server.errors"};
    obs::Counter bytes_in{"server.bytes_in"};
    obs::Counter bytes_out{"server.bytes_out"};
    obs::HdrHistogram request_ns{"server.request_ns"};
    obs::HdrHistogram wait_ns{"server.wait_ns"};
    obs::HdrHistogram queue_depth{"server.queue_depth"};
    obs::HdrHistogram worker_batch{"server.worker_batch"};
};

ServerObs &
sobs()
{
    static ServerObs o;
    return o;
}

constexpr uint64_t kListenTag = 1;
constexpr uint64_t kWakeTag = 2;

} // namespace

KvServer::KvServer(Runtime &rt, KvServerConfig cfg)
    : rt_(rt), cfg_(cfg), table_(rt, cfg_.table, cfg_.nbuckets)
{
    if (cfg_.io_threads < 1)
        cfg_.io_threads = 1;
    if (cfg_.workers < 1)
        cfg_.workers = 1;
    // The runtime supports 64 staging/obs thread ordinals per process;
    // leave room for the main thread, IO threads, and the emitter.
    if (cfg_.workers > 32)
        cfg_.workers = 32;
    if (cfg_.worker_batch < 1)
        cfg_.worker_batch = 1;
}

KvServer::~KvServer() { stop(); }

bool
KvServer::start()
{
    listenFd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (listenFd_ < 0)
        return false;
    int one = 1;
    setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(cfg_.port);
    if (bind(listenFd_, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
            0 ||
        listen(listenFd_, 1024) < 0) {
        close(listenFd_);
        listenFd_ = -1;
        return false;
    }
    socklen_t alen = sizeof(addr);
    getsockname(listenFd_, reinterpret_cast<sockaddr *>(&addr), &alen);
    port_ = ntohs(addr.sin_port);

    stopIo_ = false;
    stopWorkers_ = false;
    accepting_ = true;

    for (int i = 0; i < cfg_.io_threads; ++i) {
        auto io = std::make_unique<IoThread>();
        io->epfd = epoll_create1(EPOLL_CLOEXEC);
        io->wakeFd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.u64 = kWakeTag;
        epoll_ctl(io->epfd, EPOLL_CTL_ADD, io->wakeFd, &ev);
        if (i == 0) {
            // IO thread 0 owns the listener; accepted fds are handed to
            // the other loops round-robin via their wake queues.
            epoll_event lev{};
            lev.events = EPOLLIN;
            lev.data.u64 = kListenTag;
            epoll_ctl(io->epfd, EPOLL_CTL_ADD, listenFd_, &lev);
        }
        ios_.push_back(std::move(io));
    }
    for (auto &io : ios_)
        io->thr = std::thread([this, &io] { ioLoop(*io); });
    for (int i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    started_ = true;
    return true;
}

void
KvServer::stop()
{
    if (!started_)
        return;
    using namespace std::chrono;

    // 1. Stop accepting; existing connections keep draining.
    accepting_ = false;

    // 2. Wait (bounded) for the workers to drain every queued request.
    auto deadline = steady_clock::now() + seconds(10);
    while (steady_clock::now() < deadline) {
        bool idle;
        {
            std::lock_guard<std::mutex> lk(readyMu_);
            idle = ready_.empty() &&
                   busyWorkers_.load(std::memory_order_acquire) == 0;
        }
        if (idle)
            break;
        std::this_thread::sleep_for(milliseconds(2));
    }
    stopWorkers_ = true;
    readyCv_.notify_all();
    for (auto &w : workers_)
        w.join();
    workers_.clear();

    // 3. Let the IO threads flush any remaining acked response bytes.
    deadline = steady_clock::now() + seconds(2);
    while (pendingOut_.load(std::memory_order_acquire) != 0 &&
           steady_clock::now() < deadline)
        std::this_thread::sleep_for(milliseconds(2));

    stopIo_ = true;
    for (auto &io : ios_) {
        uint64_t one = 1;
        [[maybe_unused]] ssize_t n = write(io->wakeFd, &one, sizeof(one));
    }
    for (auto &io : ios_)
        io->thr.join();
    ios_.clear();

    if (listenFd_ >= 0) {
        close(listenFd_);
        listenFd_ = -1;
    }
    {
        std::lock_guard<std::mutex> lk(readyMu_);
        ready_.clear();
    }

    // 4. Durability epilogue: everything acked is already durable, but a
    //    clean stop must ALSO leave the log empty — retire open epochs
    //    and drain the truncator so restart replays zero transactions.
    rt_.sync();
    rt_.txns().drainTruncation();
    started_ = false;
}

void
KvServer::acceptPending()
{
    while (accepting_.load(std::memory_order_acquire)) {
        int fd = accept4(listenFd_, nullptr, nullptr,
                         SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (fd < 0)
            break;  // EAGAIN, or transient (EMFILE sheds load)
        int one = 1;
        setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto c = std::make_shared<Conn>();
        c->fd = fd;
        c->ioThread =
            int(nextIo_.fetch_add(1, std::memory_order_relaxed) % ios_.size());
        sobs().accepts.add(1);
        liveConns_.fetch_add(1, std::memory_order_relaxed);
        IoThread &io = *ios_[size_t(c->ioThread)];
        {
            std::lock_guard<std::mutex> lk(io.mu);
            io.newConns.push_back(std::move(c));
        }
        uint64_t tick = 1;
        [[maybe_unused]] ssize_t n = write(io.wakeFd, &tick, sizeof(tick));
    }
}

void
KvServer::ioLoop(IoThread &io)
{
    epoll_event evs[128];
    while (!stopIo_.load(std::memory_order_acquire)) {
        int n = epoll_wait(io.epfd, evs, 128, 100);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        for (int i = 0; i < n; ++i) {
            if (evs[i].data.u64 == kWakeTag) {
                uint64_t drain;
                while (read(io.wakeFd, &drain, sizeof(drain)) > 0) {
                }
                std::vector<ConnPtr> fresh, flush;
                {
                    std::lock_guard<std::mutex> lk(io.mu);
                    fresh.swap(io.newConns);
                    flush.swap(io.flushReq);
                }
                for (ConnPtr &c : fresh) {
                    epoll_event ev{};
                    ev.events = EPOLLIN;
                    ev.data.ptr = c.get();
                    epoll_ctl(io.epfd, EPOLL_CTL_ADD, c->fd, &ev);
                    io.conns[c.get()] = std::move(c);
                }
                for (ConnPtr &c : flush)
                    flushConn(io, c);
            } else if (evs[i].data.u64 == kListenTag) {
                acceptPending();
            } else {
                Conn *raw = static_cast<Conn *>(evs[i].data.ptr);
                auto it = io.conns.find(raw);
                if (it == io.conns.end())
                    continue;
                ConnPtr c = it->second;
                if (evs[i].events & (EPOLLHUP | EPOLLERR)) {
                    closeConn(io, c);
                    continue;
                }
                if (evs[i].events & EPOLLOUT)
                    flushConn(io, c);
                if (evs[i].events & EPOLLIN)
                    readConn(io, c);
            }
        }
    }
    // Loop exit: close every connection this thread owns.
    for (auto &kv : io.conns) {
        const ConnPtr &c = kv.second;
        std::lock_guard<std::mutex> lk(c->wmu);
        if (!c->closed.exchange(true)) {
            pendingOut_.fetch_sub(c->wr.size() - c->wrOff,
                                  std::memory_order_relaxed);
            close(c->fd);
        }
    }
    io.conns.clear();
    close(io.epfd);
    close(io.wakeFd);
}

void
KvServer::closeConn(IoThread &io, const ConnPtr &c)
{
    {
        std::lock_guard<std::mutex> lk(c->wmu);
        if (c->closed.exchange(true))
            return;
        pendingOut_.fetch_sub(c->wr.size() - c->wrOff,
                              std::memory_order_relaxed);
        c->wr.clear();
        c->wrOff = 0;
    }
    epoll_ctl(io.epfd, EPOLL_CTL_DEL, c->fd, nullptr);
    close(c->fd);
    io.conns.erase(c.get());
    sobs().conns_closed.add(1);
    liveConns_.fetch_sub(1, std::memory_order_relaxed);
}

void
KvServer::readConn(IoThread &io, const ConnPtr &c)
{
    bool eof = false;
    for (;;) {
        uint8_t chunk[64 * 1024];
        ssize_t n = read(c->fd, chunk, sizeof(chunk));
        if (n > 0) {
            c->rd.insert(c->rd.end(), chunk, chunk + n);
            sobs().bytes_in.add(uint64_t(n));
            continue;
        }
        if (n == 0) {
            eof = true;
            break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        eof = true;
        break;
    }

    // Extract complete frames.
    std::vector<Request> parsed;
    const uint64_t now = obs::tickNow();
    for (;;) {
        const size_t avail = c->rd.size() - c->rdOff;
        if (avail < 4)
            break;
        const uint32_t len = getU32(c->rd.data() + c->rdOff);
        if (len > kMaxFrameBytes || len < kRequestHeaderBytes) {
            eof = true;  // protocol error: drop the connection
            break;
        }
        if (avail < 4 + size_t(len))
            break;
        RequestView v;
        if (!parseRequest(c->rd.data() + c->rdOff + 4, len, &v)) {
            eof = true;
            break;
        }
        parsed.push_back(Request{v.id, v.op, std::string(v.key),
                                 std::string(v.value), now});
        c->rdOff += 4 + size_t(len);
    }
    if (c->rdOff == c->rd.size()) {
        c->rd.clear();
        c->rdOff = 0;
    } else if (c->rdOff > (64u << 10)) {
        c->rd.erase(c->rd.begin(), c->rd.begin() + ptrdiff_t(c->rdOff));
        c->rdOff = 0;
    }

    if (!parsed.empty()) {
        size_t depth = 0;
        bool enqueue = false;
        {
            std::lock_guard<std::mutex> lk(c->qmu);
            for (Request &r : parsed)
                c->pending.push_back(std::move(r));
            depth = c->pending.size();
            if (!c->claimed) {
                c->claimed = true;
                enqueue = true;
            }
        }
        sobs().queue_depth.record(depth);
        if (enqueue) {
            {
                std::lock_guard<std::mutex> lk(readyMu_);
                ready_.push_back(c);
            }
            readyCv_.notify_one();
        }
    }

    if (eof)
        closeConn(io, c);
}

void
KvServer::flushConn(IoThread &io, const ConnPtr &c)
{
    bool dead = false;
    bool partial = false;
    {
        std::lock_guard<std::mutex> lk(c->wmu);
        if (c->closed.load(std::memory_order_relaxed))
            return;
        while (c->wrOff < c->wr.size()) {
            ssize_t n = write(c->fd, c->wr.data() + c->wrOff,
                              c->wr.size() - c->wrOff);
            if (n > 0) {
                c->wrOff += size_t(n);
                sobs().bytes_out.add(uint64_t(n));
                pendingOut_.fetch_sub(uint64_t(n), std::memory_order_relaxed);
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                partial = true;
                break;
            }
            if (n < 0 && errno == EINTR)
                continue;
            dead = true;
            break;
        }
        if (c->wrOff == c->wr.size()) {
            c->wr.clear();
            c->wrOff = 0;
        }
        if (!dead && partial != c->wantWrite) {
            epoll_event ev{};
            ev.events = EPOLLIN | (partial ? EPOLLOUT : 0);
            ev.data.ptr = c.get();
            epoll_ctl(io.epfd, EPOLL_CTL_MOD, c->fd, &ev);
            c->wantWrite = partial;
        }
    }
    if (dead)
        closeConn(io, c);
}

void
KvServer::kickIo(const ConnPtr &c)
{
    IoThread &io = *ios_[size_t(c->ioThread)];
    {
        std::lock_guard<std::mutex> lk(io.mu);
        io.flushReq.push_back(c);
    }
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(io.wakeFd, &one, sizeof(one));
}

void
KvServer::workerLoop()
{
    std::vector<Request> batch;
    for (;;) {
        ConnPtr c;
        {
            std::unique_lock<std::mutex> lk(readyMu_);
            readyCv_.wait(lk, [&] {
                return stopWorkers_.load(std::memory_order_acquire) ||
                       !ready_.empty();
            });
            if (ready_.empty()) {
                if (stopWorkers_.load(std::memory_order_acquire))
                    break;
                continue;
            }
            c = std::move(ready_.front());
            ready_.pop_front();
            busyWorkers_.fetch_add(1, std::memory_order_acq_rel);
        }

        batch.clear();
        {
            std::lock_guard<std::mutex> lk(c->qmu);
            while (!c->pending.empty() && batch.size() < cfg_.worker_batch) {
                batch.push_back(std::move(c->pending.front()));
                c->pending.pop_front();
            }
        }
        sobs().worker_batch.record(batch.size());
        processConn(c, batch);

        bool requeue = false;
        {
            std::lock_guard<std::mutex> lk(c->qmu);
            if (c->pending.empty())
                c->claimed = false;
            else
                requeue = true;
        }
        if (requeue) {
            {
                std::lock_guard<std::mutex> lk(readyMu_);
                ready_.push_back(std::move(c));
            }
            readyCv_.notify_one();
        }
        busyWorkers_.fetch_sub(1, std::memory_order_acq_rel);
    }
    // Retire this thread's last staged async commit and reap its graves
    // before the thread disappears (slots are per-thread-ordinal).
    rt_.syncThreadStaging();
}

void
KvServer::processConn(const ConnPtr &c, std::vector<Request> &batch)
{
    std::vector<uint8_t> out;
    uint64_t maxEpoch = 0;

    for (const Request &req : batch) {
        sobs().requests.add(1);
        if (req.key.size() > kMaxKeyBytes) {
            sobs().errors.add(1);
            appendResponse(out, req.id, Status::kTooLarge, req.op, "");
            continue;
        }
        switch (req.op) {
        case Op::kGet: {
            sobs().gets.add(1);
            std::string v;
            const bool found = table_.get(req.key, &v);
            appendResponse(out, req.id,
                           found ? Status::kOk : Status::kNotFound, Op::kGet,
                           found ? std::string_view(v) : std::string_view());
            break;
        }
        case Op::kPut: {
            sobs().puts.add(1);
            mtm::CommitTicket t = table_.putAsync(req.key, req.value);
            if (t.epoch > maxEpoch)
                maxEpoch = t.epoch;
            appendResponse(out, req.id, Status::kOk, Op::kPut, "");
            break;
        }
        case Op::kDel: {
            sobs().dels.add(1);
            bool removed = false;
            mtm::CommitTicket t = table_.delAsync(req.key, &removed);
            if (t.epoch > maxEpoch)
                maxEpoch = t.epoch;
            appendResponse(out, req.id,
                           removed ? Status::kOk : Status::kNotFound,
                           Op::kDel, "");
            break;
        }
        case Op::kBatch:
            execBatchOp(req, out, &maxEpoch);
            break;
        case Op::kStat: {
            const std::string snap =
                obs::StatsRegistry::instance().jsonSnapshot();
            appendResponse(out, req.id, Status::kOk, Op::kStat, snap);
            break;
        }
        case Op::kPing:
            appendResponse(out, req.id, Status::kOk, Op::kPing, "");
            break;
        default:
            sobs().errors.add(1);
            appendResponse(out, req.id, Status::kBadRequest, req.op, "");
            break;
        }
    }

    // ONE durability wait covers the whole batch: epochs retire in
    // order, so waiting on the newest epoch implies all earlier ones.
    // Many workers wait on the same open epoch — that is the
    // cross-connection fence amortization this server exists for.
    if (maxEpoch != 0) {
        const uint64_t t0 = obs::tickNow();
        rt_.wait(mtm::CommitTicket{maxEpoch});
        sobs().wait_ns.record(obs::ticksToNs(obs::tickNow() - t0));
    }

    const uint64_t done = obs::tickNow();
    for (const Request &req : batch)
        sobs().request_ns.record(obs::ticksToNs(done - req.t0));

    if (!out.empty()) {
        bool send = false;
        {
            std::lock_guard<std::mutex> lk(c->wmu);
            if (!c->closed.load(std::memory_order_relaxed)) {
                c->wr.insert(c->wr.end(), out.begin(), out.end());
                pendingOut_.fetch_add(out.size(), std::memory_order_relaxed);
                send = true;
            }
        }
        if (send)
            kickIo(c);
    }
    served_.fetch_add(batch.size(), std::memory_order_relaxed);
}

void
KvServer::execBatchOp(const Request &req, std::vector<uint8_t> &out,
                      uint64_t *maxEpoch)
{
    std::vector<BatchOp> ops;
    if (!decodeBatch(req.value, &ops)) {
        sobs().errors.add(1);
        appendResponse(out, req.id, Status::kBadRequest, Op::kBatch, "");
        return;
    }
    if (ops.size() > kMaxBatchOps) {
        sobs().errors.add(1);
        appendResponse(out, req.id, Status::kTooLarge, Op::kBatch, "");
        return;
    }
    for (const BatchOp &o : ops) {
        if ((o.op != Op::kPut && o.op != Op::kDel) ||
            o.key.size() > kMaxKeyBytes) {
            sobs().errors.add(1);
            appendResponse(out, req.id, Status::kBadRequest, Op::kBatch, "");
            return;
        }
    }
    sobs().batches.add(1);

    // All ops in ONE durable transaction: atomic across the batch, one
    // log record, one epoch join.  The caller-side staging protocol
    // (see PHashTable::putTx) brackets the transaction.
    std::string statuses(ops.size(), char(Status::kOk));
    rt_.syncThreadStaging();
    mtm::CommitTicket t = rt_.atomicAsync([&](mtm::Txn &tx) {
        rt_.resetStaging();
        for (size_t i = 0; i < ops.size(); ++i) {
            if (ops[i].op == Op::kPut) {
                table_.putTx(tx, ops[i].key, ops[i].value);
                statuses[i] = char(Status::kOk);
            } else {
                statuses[i] = table_.delTx(tx, ops[i].key)
                                  ? char(Status::kOk)
                                  : char(Status::kNotFound);
            }
        }
        rt_.clearAllocStaging(tx);
    });
    rt_.noteStagedAsync(t);
    if (t.epoch > *maxEpoch)
        *maxEpoch = t.epoch;
    appendResponse(out, req.id, Status::kOk, Op::kBatch, statuses);
}

} // namespace mnemosyne::server
