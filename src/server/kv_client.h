/**
 * @file
 * KvClient: a small blocking client for the KV service protocol.
 *
 * One TCP connection, synchronous request/response helpers plus a raw
 * pipelined interface (sendRaw/flush/recvOne) for callers that keep
 * many requests in flight.  The load generator (tools/kv_perf) manages
 * its own non-blocking sockets for scale; this class is for tests, the
 * recovery verifier, and simple tooling.
 */

#ifndef MNEMOSYNE_SERVER_KV_CLIENT_H_
#define MNEMOSYNE_SERVER_KV_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "server/kv_protocol.h"

namespace mnemosyne::server {

class KvClient
{
  public:
    KvClient() = default;
    ~KvClient();

    KvClient(const KvClient &) = delete;
    KvClient &operator=(const KvClient &) = delete;

    bool connect(const std::string &host, uint16_t port);
    void close();
    bool connected() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    // -- synchronous helpers (one round trip each) -------------------------

    Status put(std::string_view key, std::string_view value);
    Status get(std::string_view key, std::string *value);
    Status del(std::string_view key);
    /** One durable transaction over several write ops; @p statuses (if
     *  non-null) receives one Status byte per op. */
    Status batch(const std::vector<BatchOp> &ops, std::string *statuses);
    /** Live StatsRegistry JSON snapshot from the server. */
    bool stat(std::string *json);
    bool ping();

    // -- pipelined interface ----------------------------------------------

    /** Buffer a request; returns its request id.  Call flush() to send. */
    uint64_t sendRaw(Op op, std::string_view key, std::string_view value);
    bool flush();

    struct Response {
        uint64_t id;
        Status status;
        Op op;
        std::string value;
    };
    /** Block until one full response arrives; false on EOF/error. */
    bool recvOne(Response *out);

  private:
    bool roundTrip(Op op, std::string_view key, std::string_view value,
                   Response *out);

    int fd_ = -1;
    uint64_t nextId_ = 1;
    std::vector<uint8_t> sendBuf_;
    std::vector<uint8_t> recvBuf_;
    size_t recvOff_ = 0;
};

} // namespace mnemosyne::server

#endif // MNEMOSYNE_SERVER_KV_CLIENT_H_
