/**
 * @file
 * KvServer: the networked durable KV service (DESIGN.md §10).
 *
 * Architecture (mcas-style): N IO threads run non-blocking epoll event
 * loops — accepting connections, reading length-prefixed request
 * frames, and flushing response bytes.  Fully-parsed requests are
 * queued per connection; a connection with pending requests is checked
 * out by exactly one of M worker threads at a time (per-connection
 * FIFO, cross-connection parallelism).  Workers map write requests
 * onto relaxed-durability transactions (`Runtime::atomicAsync` via
 * PHashTable::putAsync/delAsync), collect the commit tickets for the
 * batch, and `wait()` once on the newest epoch — epochs retire in
 * order, so that single wait covers every commit in the batch, and
 * because many workers wait on the SAME open epoch, the group-commit
 * combiner amortizes one fence across the whole socket fleet.
 * Acknowledgments are enqueued only after that wait returns: an acked
 * write is durable by construction.
 *
 * Shutdown drains the workers, sync()s, and drains the truncator so a
 * clean stop leaves zero unreplayed log.
 */

#ifndef MNEMOSYNE_SERVER_KV_SERVER_H_
#define MNEMOSYNE_SERVER_KV_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "ds/phash_table.h"
#include "runtime/runtime.h"
#include "server/kv_protocol.h"

namespace mnemosyne::server {

struct KvServerConfig {
    /** TCP port to bind on 127.0.0.1; 0 picks an ephemeral port. */
    uint16_t port = 0;

    int io_threads = 1;
    int workers = 4;

    /** Max requests a worker takes from one connection per checkout:
     *  bounds per-connection latency under deep pipelines while still
     *  amortizing one durability wait over the whole batch. */
    size_t worker_batch = 32;

    /** Persistent table backing the service. */
    std::string table = "kv_server_table";
    size_t nbuckets = 1 << 15;
};

class KvServer
{
  public:
    KvServer(Runtime &rt, KvServerConfig cfg = {});
    ~KvServer();

    KvServer(const KvServer &) = delete;
    KvServer &operator=(const KvServer &) = delete;

    /** Bind + spawn IO and worker threads; false on bind failure. */
    bool start();

    /**
     * Graceful stop: stop accepting, let workers drain every queued
     * request, flush pending response bytes, then sync() and drain the
     * truncator so the log is empty on disk (restart replays nothing).
     */
    void stop();

    uint16_t port() const { return port_; }
    uint64_t requestsServed() const
    {
        return served_.load(std::memory_order_relaxed);
    }
    ds::PHashTable &table() { return table_; }

  private:
    struct Request {
        uint64_t id;
        Op op;
        std::string key;
        std::string value;
        uint64_t t0;    ///< arrival timestamp (obs ticks)
    };

    struct Conn {
        int fd = -1;
        int ioThread = 0;
        std::atomic<bool> closed{false};

        // Receive side: owned by the IO thread, no lock needed.
        std::vector<uint8_t> rd;
        size_t rdOff = 0;

        // Parsed-request queue, shared IO thread -> workers.
        std::mutex qmu;
        std::deque<Request> pending;
        bool claimed = false;   ///< one worker owns this conn right now

        // Send side: workers append under wmu; IO thread flushes.
        std::mutex wmu;
        std::vector<uint8_t> wr;
        size_t wrOff = 0;
        bool wantWrite = false; ///< EPOLLOUT armed
    };
    using ConnPtr = std::shared_ptr<Conn>;

    struct IoThread {
        int epfd = -1;
        int wakeFd = -1;        ///< eventfd others kick to hand off work
        std::mutex mu;          ///< guards newConns + flushReq only
        std::vector<ConnPtr> newConns;  ///< accepted, awaiting registration
        std::vector<ConnPtr> flushReq;  ///< conns with fresh response bytes
        std::unordered_map<Conn *, ConnPtr> conns;  ///< owner-thread only
        std::thread thr;
    };

    void ioLoop(IoThread &io);
    void workerLoop();
    void acceptPending();
    void readConn(IoThread &io, const ConnPtr &c);
    void flushConn(IoThread &io, const ConnPtr &c);
    void closeConn(IoThread &io, const ConnPtr &c);
    void enqueueReady(const ConnPtr &c, size_t depth);
    void processConn(const ConnPtr &c, std::vector<Request> &batch);
    void execBatchOp(const Request &req, std::vector<uint8_t> &out,
                     uint64_t *maxEpoch);
    void kickIo(const ConnPtr &c);

    Runtime &rt_;
    KvServerConfig cfg_;
    ds::PHashTable table_;

    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::atomic<bool> stopIo_{false};
    std::atomic<bool> stopWorkers_{false};
    std::atomic<bool> accepting_{true};
    std::atomic<uint64_t> served_{0};
    std::atomic<uint64_t> liveConns_{0};
    std::atomic<uint64_t> pendingOut_{0};   ///< unflushed response bytes
    std::atomic<size_t> nextIo_{0};

    std::vector<std::unique_ptr<IoThread>> ios_;

    std::mutex readyMu_;
    std::condition_variable readyCv_;
    std::deque<ConnPtr> ready_;
    std::atomic<int> busyWorkers_{0};
    std::vector<std::thread> workers_;
    bool started_ = false;
};

} // namespace mnemosyne::server

#endif // MNEMOSYNE_SERVER_KV_SERVER_H_
