#include "server/kv_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mnemosyne::server {

KvClient::~KvClient() { close(); }

bool
KvClient::connect(const std::string &host, uint16_t port)
{
    close();
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        close();
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) <
        0) {
        close();
        return false;
    }
    int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
}

void
KvClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    sendBuf_.clear();
    recvBuf_.clear();
    recvOff_ = 0;
}

uint64_t
KvClient::sendRaw(Op op, std::string_view key, std::string_view value)
{
    const uint64_t id = nextId_++;
    appendRequest(sendBuf_, id, op, key, value);
    return id;
}

bool
KvClient::flush()
{
    size_t off = 0;
    while (off < sendBuf_.size()) {
        ssize_t n =
            write(fd_, sendBuf_.data() + off, sendBuf_.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += size_t(n);
    }
    sendBuf_.clear();
    return true;
}

bool
KvClient::recvOne(Response *out)
{
    for (;;) {
        const size_t avail = recvBuf_.size() - recvOff_;
        if (avail >= 4) {
            const uint32_t len = getU32(recvBuf_.data() + recvOff_);
            if (len > kMaxFrameBytes)
                return false;
            if (avail >= 4 + size_t(len)) {
                ResponseView v;
                if (!parseResponse(recvBuf_.data() + recvOff_ + 4, len, &v))
                    return false;
                out->id = v.id;
                out->status = v.status;
                out->op = v.op;
                out->value.assign(v.value);
                recvOff_ += 4 + size_t(len);
                if (recvOff_ == recvBuf_.size()) {
                    recvBuf_.clear();
                    recvOff_ = 0;
                }
                return true;
            }
        }
        uint8_t chunk[64 * 1024];
        ssize_t n = read(fd_, chunk, sizeof(chunk));
        if (n > 0) {
            recvBuf_.insert(recvBuf_.end(), chunk, chunk + n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
}

bool
KvClient::roundTrip(Op op, std::string_view key, std::string_view value,
                    Response *out)
{
    const uint64_t id = sendRaw(op, key, value);
    if (!flush())
        return false;
    // Responses come back in order; skip any stale pipelined ones.
    while (recvOne(out)) {
        if (out->id == id)
            return true;
    }
    return false;
}

Status
KvClient::put(std::string_view key, std::string_view value)
{
    Response r;
    return roundTrip(Op::kPut, key, value, &r) ? r.status : Status::kError;
}

Status
KvClient::get(std::string_view key, std::string *value)
{
    Response r;
    if (!roundTrip(Op::kGet, key, "", &r))
        return Status::kError;
    if (r.status == Status::kOk && value)
        *value = std::move(r.value);
    return r.status;
}

Status
KvClient::del(std::string_view key)
{
    Response r;
    return roundTrip(Op::kDel, key, "", &r) ? r.status : Status::kError;
}

Status
KvClient::batch(const std::vector<BatchOp> &ops, std::string *statuses)
{
    const std::vector<uint8_t> body = encodeBatch(ops);
    Response r;
    if (!roundTrip(Op::kBatch, "",
                   std::string_view(
                       reinterpret_cast<const char *>(body.data()),
                       body.size()),
                   &r))
        return Status::kError;
    if (statuses)
        *statuses = std::move(r.value);
    return r.status;
}

bool
KvClient::stat(std::string *json)
{
    Response r;
    if (!roundTrip(Op::kStat, "", "", &r) || r.status != Status::kOk)
        return false;
    if (json)
        *json = std::move(r.value);
    return true;
}

bool
KvClient::ping()
{
    Response r;
    return roundTrip(Op::kPing, "", "", &r) && r.status == Status::kOk;
}

} // namespace mnemosyne::server
