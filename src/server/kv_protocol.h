/**
 * @file
 * Wire protocol for the networked durable KV service (DESIGN.md §10).
 *
 * Length-prefixed binary frames over TCP, little-endian integers:
 *
 *   frame    := u32 payload_len | payload           (len excludes itself)
 *   request  := u64 req_id | u8 op | u8 pad[3] | u32 klen | u32 vlen
 *               | klen key bytes | vlen value bytes
 *   response := u64 req_id | u8 status | u8 op | u8 pad[2] | u32 vlen
 *               | vlen value bytes
 *
 * Request ids are client-chosen and echoed back verbatim; responses to
 * one connection come back in request order (per-connection FIFO), so a
 * client may pipeline arbitrarily many requests per connection — that
 * pipelining is what feeds the server's cross-connection group commit.
 *
 * kBatch packs several write ops into ONE durable transaction.  Its
 * value bytes hold: u32 count | count × (u8 op | u8 pad[3] | u32 klen
 * | u32 vlen | key | value), ops limited to kPut/kDel, count limited by
 * kMaxBatchOps (the runtime's staged-allocation budget).  The response
 * value holds `count` status bytes, one per op in order.
 *
 * kStat returns a live StatsRegistry JSON snapshot as the value —
 * exact emulator counters (scm.fences, mtm.commits) over the wire is
 * what lets kv_perf compute fences/txn without scraping the server.
 */

#ifndef MNEMOSYNE_SERVER_KV_PROTOCOL_H_
#define MNEMOSYNE_SERVER_KV_PROTOCOL_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace mnemosyne::server {

enum class Op : uint8_t {
    kGet = 1,
    kPut = 2,
    kDel = 3,
    kBatch = 4,
    kStat = 5,
    kPing = 6,
};

enum class Status : uint8_t {
    kOk = 0,
    kNotFound = 1,
    kBadRequest = 2,
    kTooLarge = 3,
    kError = 4,
};

inline constexpr uint32_t kMaxFrameBytes = 1u << 20;
inline constexpr uint32_t kMaxKeyBytes = 1u << 12;
/** Batch write cap: every op may stage one alloc (insert/resize) but at
 *  most kGraveSlots of them may free (resize/delete); the server
 *  rejects oversized batches up front with kTooLarge. */
inline constexpr uint32_t kMaxBatchOps = 12;

inline constexpr size_t kRequestHeaderBytes = 8 + 4 + 4 + 4;
inline constexpr size_t kResponseHeaderBytes = 8 + 4 + 4;

inline void
putU32(std::vector<uint8_t> &buf, uint32_t v)
{
    uint8_t b[4];
    std::memcpy(b, &v, 4);
    buf.insert(buf.end(), b, b + 4);
}

inline void
putU64(std::vector<uint8_t> &buf, uint64_t v)
{
    uint8_t b[8];
    std::memcpy(b, &v, 8);
    buf.insert(buf.end(), b, b + 8);
}

inline uint32_t
getU32(const uint8_t *p)
{
    uint32_t v;
    std::memcpy(&v, p, 4);
    return v;
}

inline uint64_t
getU64(const uint8_t *p)
{
    uint64_t v;
    std::memcpy(&v, p, 8);
    return v;
}

/** A parsed request pointing into the receive buffer (zero-copy). */
struct RequestView {
    uint64_t id = 0;
    Op op = Op::kPing;
    std::string_view key;
    std::string_view value;
};

/** Parse one request payload (frame length already stripped). */
inline bool
parseRequest(const uint8_t *p, size_t n, RequestView *out)
{
    if (n < kRequestHeaderBytes)
        return false;
    out->id = getU64(p);
    out->op = Op(p[8]);
    const uint32_t klen = getU32(p + 12);
    const uint32_t vlen = getU32(p + 16);
    if (uint64_t(klen) + vlen + kRequestHeaderBytes != n)
        return false;
    const char *body = reinterpret_cast<const char *>(p + kRequestHeaderBytes);
    out->key = std::string_view(body, klen);
    out->value = std::string_view(body + klen, vlen);
    return true;
}

/** Append one framed request to @p buf. */
inline void
appendRequest(std::vector<uint8_t> &buf, uint64_t id, Op op,
              std::string_view key, std::string_view value)
{
    putU32(buf, uint32_t(kRequestHeaderBytes + key.size() + value.size()));
    putU64(buf, id);
    buf.push_back(uint8_t(op));
    buf.push_back(0);
    buf.push_back(0);
    buf.push_back(0);
    putU32(buf, uint32_t(key.size()));
    putU32(buf, uint32_t(value.size()));
    buf.insert(buf.end(), key.begin(), key.end());
    buf.insert(buf.end(), value.begin(), value.end());
}

/** Append one framed response to @p buf. */
inline void
appendResponse(std::vector<uint8_t> &buf, uint64_t id, Status st, Op op,
               std::string_view value)
{
    putU32(buf, uint32_t(kResponseHeaderBytes + value.size()));
    putU64(buf, id);
    buf.push_back(uint8_t(st));
    buf.push_back(uint8_t(op));
    buf.push_back(0);
    buf.push_back(0);
    putU32(buf, uint32_t(value.size()));
    buf.insert(buf.end(), value.begin(), value.end());
}

struct ResponseView {
    uint64_t id = 0;
    Status status = Status::kError;
    Op op = Op::kPing;
    std::string_view value;
};

/** Parse one response payload (frame length already stripped). */
inline bool
parseResponse(const uint8_t *p, size_t n, ResponseView *out)
{
    if (n < kResponseHeaderBytes)
        return false;
    out->id = getU64(p);
    out->status = Status(p[8]);
    out->op = Op(p[9]);
    const uint32_t vlen = getU32(p + 12);
    if (uint64_t(vlen) + kResponseHeaderBytes != n)
        return false;
    out->value = std::string_view(
        reinterpret_cast<const char *>(p + kResponseHeaderBytes), vlen);
    return true;
}

/** One op inside a kBatch payload. */
struct BatchOp {
    Op op;
    std::string_view key;
    std::string_view value;
};

/** Encode a batch body (goes into appendRequest's value). */
inline std::vector<uint8_t>
encodeBatch(const std::vector<BatchOp> &ops)
{
    std::vector<uint8_t> body;
    putU32(body, uint32_t(ops.size()));
    for (const BatchOp &o : ops) {
        body.push_back(uint8_t(o.op));
        body.push_back(0);
        body.push_back(0);
        body.push_back(0);
        putU32(body, uint32_t(o.key.size()));
        putU32(body, uint32_t(o.value.size()));
        body.insert(body.end(), o.key.begin(), o.key.end());
        body.insert(body.end(), o.value.begin(), o.value.end());
    }
    return body;
}

/** Decode a batch body; false on malformed input. */
inline bool
decodeBatch(std::string_view body, std::vector<BatchOp> *out)
{
    const uint8_t *p = reinterpret_cast<const uint8_t *>(body.data());
    size_t n = body.size();
    if (n < 4)
        return false;
    const uint32_t count = getU32(p);
    p += 4;
    n -= 4;
    out->clear();
    for (uint32_t i = 0; i < count; ++i) {
        if (n < 12)
            return false;
        BatchOp o;
        o.op = Op(p[0]);
        const uint32_t klen = getU32(p + 4);
        const uint32_t vlen = getU32(p + 8);
        p += 12;
        n -= 12;
        if (n < uint64_t(klen) + vlen)
            return false;
        o.key = std::string_view(reinterpret_cast<const char *>(p), klen);
        o.value =
            std::string_view(reinterpret_cast<const char *>(p + klen), vlen);
        p += klen + vlen;
        n -= klen + size_t(vlen);
        out->push_back(o);
    }
    return n == 0;
}

} // namespace mnemosyne::server

#endif // MNEMOSYNE_SERVER_KV_PROTOCOL_H_
