/**
 * @file
 * PCM-disk: emulator for a PCM-based block device (paper section 6.1).
 *
 * "To compare Mnemosyne against other uses of PCM, we constructed an
 * emulator, PCM-disk, for a PCM-based block device.  Based on Linux's
 * RAM disk (brd device driver), PCM disk introduces delays when writing
 * a block.  We model block writes using sequential write-through
 * operations."
 *
 * This user-space re-implementation keeps the same latency model —
 * each sync charges the PCM write latency plus bytes/bandwidth for the
 * blocks written, exactly like a sequence of streaming writes followed
 * by a fence — plus a configurable per-request software overhead that
 * stands in for the kernel storage stack (system call, file system,
 * block layer) the paper's PCM-disk is reached through.
 *
 * Failure model: writes go to a volatile buffer; sync() moves them to
 * the media image.  crash() drops unsynced writes, and under the torn
 * mode applies a seeded random subset of sectors of blocks that were
 * being written — the torn-write hazard of msync-style persistence
 * that the evaluation calls out for Tokyo Cabinet (section 6.2).
 */

#ifndef MNEMOSYNE_PCMDISK_PCMDISK_H_
#define MNEMOSYNE_PCMDISK_PCMDISK_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "scm/latency.h"

namespace mnemosyne::pcmdisk {

inline constexpr size_t kBlockBytes = 4096;
inline constexpr size_t kSectorBytes = 512;

struct PcmDiskConfig {
    size_t capacity_bytes = size_t(256) << 20;

    /** Delay realization, matching the SCM emulator's modes. */
    scm::LatencyMode latency_mode = scm::LatencyMode::kNone;

    /** Additional PCM write latency (one "fence" per sync). */
    uint64_t write_latency_ns = 150;

    /** Sequential write-through bandwidth (paper: 4 GB/s). */
    uint64_t write_bandwidth_bytes_per_us = 4096;

    /**
     * Software-stack cost per I/O request: the system call, ext2, and
     * block-layer path of the paper's brd-based PCM-disk.  A synchronous
     * write+fsync round trip through that stack on 2010-era Linux costs
     * tens of microseconds; 20 us reproduces the paper's Berkeley DB
     * single-thread latencies (~25 us for small records, Figure 4).
     */
    uint64_t request_overhead_ns = 20000;

    /** Whether a crash may tear an in-flight block at sector grain. */
    bool torn_block_writes = true;
    uint64_t crash_seed = 0;
};

struct PcmDiskStats {
    uint64_t block_writes = 0;  ///< Blocks moved to media by sync.
    uint64_t block_reads = 0;   ///< Blocks read from media (not cache).
    uint64_t syncs = 0;
    uint64_t delay_ns = 0;      ///< Total emulated delay charged.
};

class PcmDisk
{
  public:
    explicit PcmDisk(PcmDiskConfig cfg = {});

    PcmDisk(const PcmDisk &) = delete;
    PcmDisk &operator=(const PcmDisk &) = delete;

    size_t blockCount() const { return media_.size() / kBlockBytes; }

    /** Write a whole block into the volatile buffer (not yet durable). */
    void writeBlock(uint64_t bno, const void *data);

    /** Read a block (buffered version if present, else media). */
    void readBlock(uint64_t bno, void *data);

    /** Force every buffered block to media, charging the latency model. */
    void sync();

    /** Force a specific set of blocks (e.g. one file's dirty blocks). */
    void syncBlocks(const std::vector<uint64_t> &bnos);

    /**
     * Power failure: unsynced buffered blocks are lost; under
     * torn_block_writes a seeded random subset of their sectors may
     * have reached media anyway — in any order.
     */
    void crash();

    PcmDiskStats stats() const;
    void setLatencyMode(scm::LatencyMode m) { cfg_.latency_mode = m; }
    void setWriteLatency(uint64_t ns) { cfg_.write_latency_ns = ns; }
    const PcmDiskConfig &config() const { return cfg_; }

  private:
    void syncLocked(const std::vector<uint64_t> &bnos);

    PcmDiskConfig cfg_;
    mutable std::mutex mu_;
    std::vector<uint8_t> media_;
    std::unordered_map<uint64_t, std::vector<uint8_t>> buffered_;
    scm::LatencyAccount account_;
    PcmDiskStats stats_;
    uint64_t crashRound_ = 0;
};

} // namespace mnemosyne::pcmdisk

#endif // MNEMOSYNE_PCMDISK_PCMDISK_H_
