/**
 * @file
 * MiniFs: a tiny file layer over the PCM-disk.
 *
 * The paper mounts ext2 on its PCM-disk; the baselines here (the
 * Berkeley-DB-style storage manager, Boost-style serialization, and
 * the msync-mode Tokyo Cabinet) only need named files with pread /
 * pwrite / fsync / truncate, so MiniFs provides exactly that.  Data
 * blocks carry the PCM-disk's full latency and crash semantics; file
 * metadata (name -> block list) is kept by the layer itself, standing
 * in for a journaled file system that recovers its own metadata.
 */

#ifndef MNEMOSYNE_PCMDISK_MINIFS_H_
#define MNEMOSYNE_PCMDISK_MINIFS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pcmdisk/pcmdisk.h"

namespace mnemosyne::pcmdisk {

class MiniFs
{
  public:
    explicit MiniFs(PcmDisk &disk) : disk_(disk) {}

    MiniFs(const MiniFs &) = delete;
    MiniFs &operator=(const MiniFs &) = delete;

    /** Open (creating if needed); returns a small integer handle. */
    int open(const std::string &name);

    bool exists(const std::string &name) const;
    void unlink(const std::string &name);

    size_t pwrite(int fd, const void *buf, size_t n, uint64_t off);
    size_t pread(int fd, void *buf, size_t n, uint64_t off) const;

    /** Force this file's unsynced blocks to the PCM-disk media. */
    void fsync(int fd);

    void ftruncate(int fd, uint64_t size);
    uint64_t size(int fd) const;

    PcmDisk &disk() { return disk_; }

  private:
    struct File {
        std::string name;
        std::vector<uint64_t> blocks;   ///< Block numbers, in file order.
        uint64_t size = 0;
        std::vector<uint64_t> dirty;    ///< Blocks written since fsync.
    };

    File &file(int fd);
    const File &file(int fd) const;
    uint64_t blockFor(File &f, uint64_t file_block);

    PcmDisk &disk_;
    mutable std::mutex mu_;
    std::map<std::string, int> byName_;
    std::vector<std::unique_ptr<File>> files_;
    uint64_t nextBlock_ = 0;
    std::vector<uint64_t> freeBlocks_;
};

} // namespace mnemosyne::pcmdisk

#endif // MNEMOSYNE_PCMDISK_MINIFS_H_
