#include "pcmdisk/minifs.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace mnemosyne::pcmdisk {

MiniFs::File &
MiniFs::file(int fd)
{
    if (fd < 0 || size_t(fd) >= files_.size() || !files_[size_t(fd)])
        throw std::invalid_argument("MiniFs: bad file handle");
    return *files_[size_t(fd)];
}

const MiniFs::File &
MiniFs::file(int fd) const
{
    if (fd < 0 || size_t(fd) >= files_.size() || !files_[size_t(fd)])
        throw std::invalid_argument("MiniFs: bad file handle");
    return *files_[size_t(fd)];
}

int
MiniFs::open(const std::string &name)
{
    std::lock_guard<std::mutex> g(mu_);
    auto it = byName_.find(name);
    if (it != byName_.end())
        return it->second;
    const int fd = int(files_.size());
    auto f = std::make_unique<File>();
    f->name = name;
    files_.push_back(std::move(f));
    byName_[name] = fd;
    return fd;
}

bool
MiniFs::exists(const std::string &name) const
{
    std::lock_guard<std::mutex> g(mu_);
    return byName_.count(name) > 0;
}

void
MiniFs::unlink(const std::string &name)
{
    std::lock_guard<std::mutex> g(mu_);
    auto it = byName_.find(name);
    if (it == byName_.end())
        return;
    File &f = *files_[size_t(it->second)];
    for (uint64_t b : f.blocks)
        freeBlocks_.push_back(b);
    files_[size_t(it->second)].reset();
    byName_.erase(it);
}

uint64_t
MiniFs::blockFor(File &f, uint64_t file_block)
{
    while (f.blocks.size() <= file_block) {
        uint64_t b;
        if (!freeBlocks_.empty()) {
            b = freeBlocks_.back();
            freeBlocks_.pop_back();
        } else {
            b = nextBlock_++;
            if (b >= disk_.blockCount())
                throw std::runtime_error("MiniFs: disk full");
        }
        f.blocks.push_back(b);
    }
    return f.blocks[file_block];
}

size_t
MiniFs::pwrite(int fd, const void *buf, size_t n, uint64_t off)
{
    std::lock_guard<std::mutex> g(mu_);
    File &f = file(fd);
    const auto *src = static_cast<const uint8_t *>(buf);
    size_t done = 0;
    while (done < n) {
        const uint64_t fb = (off + done) / kBlockBytes;
        const size_t boff = size_t((off + done) % kBlockBytes);
        const size_t run = std::min(n - done, kBlockBytes - boff);
        const uint64_t bno = blockFor(f, fb);
        uint8_t block[kBlockBytes];
        if (run != kBlockBytes)
            disk_.readBlock(bno, block);    // read-modify-write
        std::memcpy(block + boff, src + done, run);
        disk_.writeBlock(bno, block);
        if (f.dirty.empty() || f.dirty.back() != bno)
            f.dirty.push_back(bno);
        done += run;
    }
    f.size = std::max(f.size, off + n);
    return n;
}

size_t
MiniFs::pread(int fd, void *buf, size_t n, uint64_t off) const
{
    std::lock_guard<std::mutex> g(mu_);
    const File &f = file(fd);
    if (off >= f.size)
        return 0;
    n = std::min<uint64_t>(n, f.size - off);
    auto *dst = static_cast<uint8_t *>(buf);
    size_t done = 0;
    while (done < n) {
        const uint64_t fb = (off + done) / kBlockBytes;
        const size_t boff = size_t((off + done) % kBlockBytes);
        const size_t run = std::min(n - done, kBlockBytes - boff);
        uint8_t block[kBlockBytes];
        if (fb < f.blocks.size()) {
            disk_.readBlock(f.blocks[fb], block);
        } else {
            std::memset(block, 0, sizeof(block));
        }
        std::memcpy(dst + done, block + boff, run);
        done += run;
    }
    return n;
}

void
MiniFs::fsync(int fd)
{
    std::vector<uint64_t> dirty;
    {
        std::lock_guard<std::mutex> g(mu_);
        File &f = file(fd);
        std::sort(f.dirty.begin(), f.dirty.end());
        f.dirty.erase(std::unique(f.dirty.begin(), f.dirty.end()),
                      f.dirty.end());
        dirty.swap(f.dirty);
    }
    disk_.syncBlocks(dirty);
}

void
MiniFs::ftruncate(int fd, uint64_t size)
{
    std::lock_guard<std::mutex> g(mu_);
    File &f = file(fd);
    const uint64_t keep = (size + kBlockBytes - 1) / kBlockBytes;
    while (f.blocks.size() > keep) {
        freeBlocks_.push_back(f.blocks.back());
        f.blocks.pop_back();
    }
    f.size = size;
}

uint64_t
MiniFs::size(int fd) const
{
    std::lock_guard<std::mutex> g(mu_);
    return file(fd).size;
}

} // namespace mnemosyne::pcmdisk
