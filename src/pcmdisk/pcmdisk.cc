#include "pcmdisk/pcmdisk.h"

#include <cassert>
#include <cstring>
#include <random>
#include <stdexcept>

namespace mnemosyne::pcmdisk {

PcmDisk::PcmDisk(PcmDiskConfig cfg)
    : cfg_(cfg),
      media_((cfg.capacity_bytes / kBlockBytes) * kBlockBytes, 0)
{
}

void
PcmDisk::writeBlock(uint64_t bno, const void *data)
{
    std::lock_guard<std::mutex> g(mu_);
    if (bno >= blockCount())
        throw std::out_of_range("PcmDisk::writeBlock past capacity");
    auto &buf = buffered_[bno];
    buf.assign(static_cast<const uint8_t *>(data),
               static_cast<const uint8_t *>(data) + kBlockBytes);
}

void
PcmDisk::readBlock(uint64_t bno, void *data)
{
    std::lock_guard<std::mutex> g(mu_);
    if (bno >= blockCount())
        throw std::out_of_range("PcmDisk::readBlock past capacity");
    auto it = buffered_.find(bno);
    if (it != buffered_.end()) {
        std::memcpy(data, it->second.data(), kBlockBytes);
        return;
    }
    ++stats_.block_reads;
    std::memcpy(data, media_.data() + bno * kBlockBytes, kBlockBytes);
}

void
PcmDisk::syncLocked(const std::vector<uint64_t> &bnos)
{
    ++stats_.syncs;
    uint64_t bytes = 0;
    for (uint64_t bno : bnos) {
        auto it = buffered_.find(bno);
        if (it == buffered_.end())
            continue;
        std::memcpy(media_.data() + bno * kBlockBytes, it->second.data(),
                    kBlockBytes);
        buffered_.erase(it);
        bytes += kBlockBytes;
        ++stats_.block_writes;
    }
    // Latency: the request overhead (kernel storage stack) plus the
    // paper's sequential write-through model — bandwidth-limited data
    // movement and one write-latency wait for completion.
    uint64_t delay = cfg_.request_overhead_ns + cfg_.write_latency_ns;
    if (cfg_.write_bandwidth_bytes_per_us > 0)
        delay += bytes * 1000 / cfg_.write_bandwidth_bytes_per_us;
    account_.charge(cfg_.latency_mode, delay);
    stats_.delay_ns = account_.totalNs();
}

void
PcmDisk::sync()
{
    std::lock_guard<std::mutex> g(mu_);
    std::vector<uint64_t> bnos;
    bnos.reserve(buffered_.size());
    for (const auto &[bno, data] : buffered_) {
        (void)data;
        bnos.push_back(bno);
    }
    syncLocked(bnos);
}

void
PcmDisk::syncBlocks(const std::vector<uint64_t> &bnos)
{
    std::lock_guard<std::mutex> g(mu_);
    syncLocked(bnos);
}

void
PcmDisk::crash()
{
    std::lock_guard<std::mutex> g(mu_);
    if (cfg_.torn_block_writes) {
        std::mt19937_64 rng(cfg_.crash_seed ^ (++crashRound_ * 0x9e37ULL));
        for (const auto &[bno, data] : buffered_) {
            for (size_t s = 0; s < kBlockBytes / kSectorBytes; ++s) {
                if (rng() & 1) {
                    std::memcpy(media_.data() + bno * kBlockBytes +
                                    s * kSectorBytes,
                                data.data() + s * kSectorBytes,
                                kSectorBytes);
                }
            }
        }
    }
    buffered_.clear();
}

PcmDiskStats
PcmDisk::stats() const
{
    std::lock_guard<std::mutex> g(mu_);
    return stats_;
}

} // namespace mnemosyne::pcmdisk
