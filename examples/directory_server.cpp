/**
 * @file
 * The OpenLDAP scenario of the paper (section 6.2): a mini directory
 * server loaded with an LDIF-template workload, runnable with any of
 * the three storage backends —
 *
 *   ./directory_server back-bdb        # transactional Berkeley-DB style
 *   ./directory_server back-ldbm       # non-transactional + periodic flush
 *   ./directory_server back-mnemosyne  # persistent AVL cache only
 *
 * The back-mnemosyne variant keeps its state across runs of this
 * program; the others store on a fresh PCM-disk emulator per process
 * (a block device does not outlive the process in this sandbox).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "apps/ldap.h"
#include "apps/ldif_workload.h"
#include "pcmdisk/minifs.h"
#include "runtime/runtime.h"

namespace mn = mnemosyne;
namespace apps = mn::apps;

namespace {

mn::RuntimeConfig
config(const std::string &dir)
{
    std::filesystem::create_directories(dir);
    mn::RuntimeConfig cfg;
    cfg.region.backing_dir = dir;
    cfg.region.scm_capacity = size_t(128) << 20;
    cfg.region.va_reserve = size_t(2) << 30;
    cfg.small_heap_bytes = 64 << 20;
    cfg.big_heap_bytes = 16 << 20;
    return cfg;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string which = argc > 1 ? argv[1] : "back-mnemosyne";
    const uint64_t n_entries = argc > 2 ? strtoull(argv[2], nullptr, 10)
                                        : 2000;

    mn::Runtime rt(config("./mnemosyne_ldap"));
    mn::pcmdisk::PcmDiskConfig dcfg;
    dcfg.capacity_bytes = size_t(128) << 20;
    dcfg.latency_mode = mn::scm::LatencyMode::kSpin;
    mn::pcmdisk::PcmDisk disk(dcfg);
    mn::pcmdisk::MiniFs fs(disk);
    apps::AttrDescTable descs;

    std::unique_ptr<apps::Backend> backend;
    if (which == "back-bdb") {
        backend = std::make_unique<apps::BackBdb>(fs, "ldap");
    } else if (which == "back-ldbm") {
        backend = std::make_unique<apps::BackLdbm>(fs, "ldap");
    } else if (which == "back-mnemosyne") {
        backend = std::make_unique<apps::BackMnemosyne>(rt, descs);
    } else {
        std::fprintf(stderr,
                     "usage: %s [back-bdb|back-ldbm|back-mnemosyne] [n]\n",
                     argv[0]);
        return 2;
    }

    apps::DirectoryServer server(*backend);
    apps::LdifWorkload workload(1);

    std::printf("=== mini directory server, %s ===\n", backend->name());
    const size_t preexisting = backend->entryCount();
    if (preexisting > 0)
        std::printf("%zu entries survived from a previous run\n",
                    preexisting);

    const auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < n_entries; ++i)
        server.addFromLdif(workload.entryLdif(preexisting + i));
    const auto t1 = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(t1 - t0).count();

    std::printf("added %llu entries in %.3f s  ->  %.0f updates/s\n",
                (unsigned long long)n_entries, secs, n_entries / secs);

    // Spot-check a few lookups through the server path.
    for (uint64_t i = 0; i < n_entries; i += n_entries / 4 + 1) {
        auto e = server.search(workload.entryDn(preexisting + i));
        if (!e) {
            std::fprintf(stderr, "LOST entry %llu!\n",
                         (unsigned long long)i);
            return 1;
        }
    }
    std::printf("directory now holds %zu entries\n", backend->entryCount());
    if (which == "back-mnemosyne")
        std::printf("(run again: the directory persists)\n");
    return 0;
}
