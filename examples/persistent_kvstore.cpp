/**
 * @file
 * A persistent key-value store in ~50 lines of application code: the
 * Tokyo Cabinet scenario of the paper (section 6.2).  The B+ tree
 * lives in persistent memory and every update is a durable memory
 * transaction — no msync, no serialization, no storage engine.
 *
 *   $ ./persistent_kvstore put lang "C++20"
 *   $ ./persistent_kvstore put paper "Mnemosyne ASPLOS'11"
 *   $ ./persistent_kvstore get lang
 *   C++20
 *   $ ./persistent_kvstore list
 *   ...
 *   $ ./persistent_kvstore del lang
 *
 * Invoked with no arguments it runs a scripted demo of the same.
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "apps/tokyo_mini.h"
#include "runtime/runtime.h"

namespace mn = mnemosyne;

namespace {

mn::RuntimeConfig
config(const std::string &dir)
{
    std::filesystem::create_directories(dir);
    mn::RuntimeConfig cfg;
    cfg.region.backing_dir = dir;
    cfg.region.scm_capacity = size_t(64) << 20;
    cfg.region.va_reserve = size_t(2) << 30;
    cfg.small_heap_bytes = 16 << 20;
    cfg.big_heap_bytes = 8 << 20;
    return cfg;
}

int
command(mn::apps::TokyoMini &kv, const std::string &cmd,
        const std::string &key, const std::string &value)
{
    if (cmd == "put") {
        kv.put(key, value);
        std::printf("ok (%zu keys)\n", kv.count());
        return 0;
    }
    if (cmd == "get") {
        std::string v;
        if (!kv.get(key, &v)) {
            std::printf("(not found)\n");
            return 1;
        }
        std::printf("%s\n", v.c_str());
        return 0;
    }
    if (cmd == "del") {
        const bool hit = kv.del(key);
        std::printf(hit ? "deleted\n" : "(not found)\n");
        return hit ? 0 : 1;
    }
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir = "./mnemosyne_kvstore";
    mn::Runtime rt(config(dir));
    mn::apps::TokyoMini kv(rt, "kv_tree");

    if (argc >= 2) {
        const std::string cmd = argv[1];
        if (cmd == "list") {
            // (list uses the underlying tree's ordered iteration)
            mn::ds::PBpTree tree(rt, "kv_tree");
            tree.forEach([](std::string_view k, std::string_view v) {
                std::printf("%.*s = %.*s\n", int(k.size()), k.data(),
                            int(v.size()), v.data());
            });
            return 0;
        }
        const std::string key = argc > 2 ? argv[2] : "";
        const std::string value = argc > 3 ? argv[3] : "";
        return command(kv, cmd, key, value);
    }

    // Scripted demo.
    std::printf("=== persistent kv store (state in %s) ===\n", dir.c_str());
    std::printf("%zu keys on startup\n", kv.count());
    kv.put("lang", "C++20");
    kv.put("paper", "Mnemosyne: Lightweight Persistent Memory");
    kv.put("venue", "ASPLOS 2011");
    kv.put("runs", std::to_string(kv.count()));
    std::string v;
    kv.get("paper", &v);
    std::printf("paper = %s\n", v.c_str());
    kv.del("runs");
    std::printf("%zu keys after demo; run again — they persist.\n",
                kv.count());
    return 0;
}
