/**
 * @file
 * A persistent key-value store in ~60 lines of application code, now on
 * the relaxed-durability API the networked service uses (DESIGN.md §10):
 * updates run as asynchronous durable transactions (`putAsync`/
 * `delAsync` return a CommitTicket), the fence-epoch combiner coalesces
 * their commit fences, and the caller chooses its durability point —
 * `wait(ticket)` for one update, `sync()` for everything.
 *
 *   $ ./persistent_kvstore put lang "C++20"
 *   $ ./persistent_kvstore put paper "Mnemosyne ASPLOS'11"
 *   $ ./persistent_kvstore get lang
 *   C++20
 *   $ ./persistent_kvstore list
 *   ...
 *   $ ./persistent_kvstore del lang
 *
 * Invoked with no arguments it runs a scripted demo of the same.
 */

#include <cstdio>
#include <filesystem>
#include <string>

#include "ds/phash_table.h"
#include "runtime/runtime.h"

namespace mn = mnemosyne;

namespace {

mn::RuntimeConfig
config(const std::string &dir)
{
    std::filesystem::create_directories(dir);
    mn::RuntimeConfig cfg;
    cfg.region.backing_dir = dir;
    cfg.region.scm_capacity = size_t(64) << 20;
    cfg.region.va_reserve = size_t(2) << 30;
    cfg.small_heap_bytes = 16 << 20;
    cfg.big_heap_bytes = 8 << 20;
    cfg.txn.group_commit = true;    // fence-epoch combiner on
    return cfg;
}

int
command(mn::Runtime &rt, mn::ds::PHashTable &kv, const std::string &cmd,
        const std::string &key, const std::string &value)
{
    if (cmd == "put") {
        // Async commit: the transaction is logically complete here, but
        // its commit fence may be shared with neighbors.  wait() is the
        // durability point — after it returns, the update survives any
        // crash.
        mn::mtm::CommitTicket t = kv.putAsync(key, value);
        rt.wait(t);
        std::printf("ok (%zu keys)\n", kv.size());
        return 0;
    }
    if (cmd == "get") {
        std::string v;
        if (!kv.get(key, &v)) {
            std::printf("(not found)\n");
            return 1;
        }
        std::printf("%s\n", v.c_str());
        return 0;
    }
    if (cmd == "del") {
        bool hit = false;
        rt.wait(kv.delAsync(key, &hit));
        std::printf(hit ? "deleted\n" : "(not found)\n");
        return hit ? 0 : 1;
    }
    if (cmd == "list") {
        kv.forEach([](std::string_view k, std::string_view v) {
            std::printf("%.*s = %.*s\n", int(k.size()), k.data(),
                        int(v.size()), v.data());
        });
        return 0;
    }
    std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir = "./mnemosyne_kvstore";
    mn::Runtime rt(config(dir));
    mn::ds::PHashTable kv(rt, "kv_table", 1 << 12);

    if (argc >= 2) {
        const std::string cmd = argv[1];
        const std::string key = argc > 2 ? argv[2] : "";
        const std::string value = argc > 3 ? argv[3] : "";
        return command(rt, kv, cmd, key, value);
    }

    // Scripted demo: a burst of async updates, one barrier at the end.
    std::printf("=== persistent kv store (state in %s) ===\n", dir.c_str());
    std::printf("%zu keys on startup\n", kv.size());
    kv.putAsync("lang", "C++20");
    kv.putAsync("paper", "Mnemosyne: Lightweight Persistent Memory");
    kv.putAsync("venue", "ASPLOS 2011");
    kv.putAsync("runs", std::to_string(kv.size()));
    // sync(): every transaction committed so far is durable — one fence
    // epoch covered the whole burst instead of four private fences.
    rt.sync();
    std::string v;
    kv.get("paper", &v);
    std::printf("paper = %s\n", v.c_str());
    rt.wait(kv.delAsync("runs"));
    std::printf("%zu keys after demo; run again — they persist.\n",
                kv.size());
    return 0;
}
