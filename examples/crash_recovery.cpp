/**
 * @file
 * The reliability demonstration of paper section 6.2, end to end:
 *
 *  1. a crash stress program performs seeded random transactional
 *     updates and is crashed at an adversarial point (a random subset
 *     of the unfenced writes survives, in any order);
 *  2. a fresh runtime recovers — replaying completed transactions,
 *     discarding torn ones — and the memory image is verified against
 *     the committed prefix;
 *  3. torn-bit detection is shown by flipping a torn bit in a log
 *     image and recovering.
 */

#include <cstdio>
#include <filesystem>
#include <random>
#include <vector>

#include "crash/crash_harness.h"
#include "log/rawl.h"
#include "runtime/runtime.h"
#include "scm/scm.h"

namespace mn = mnemosyne;
namespace crash = mn::crash;

namespace {

mn::RuntimeConfig
config(const std::string &dir, bool async_truncation = false)
{
    mn::RuntimeConfig cfg;
    cfg.use_current_scm_context = true;
    cfg.region.backing_dir = dir;
    cfg.region.scm_capacity = size_t(64) << 20;
    cfg.region.va_reserve = size_t(2) << 30;
    cfg.small_heap_bytes = 8 << 20;
    cfg.big_heap_bytes = 8 << 20;
    cfg.txn.truncation = async_truncation ? mn::mtm::Truncation::kAsync
                                          : mn::mtm::Truncation::kSync;
    return cfg;
}

bool
stressRound(const std::string &dir, uint64_t seed)
{
    uint64_t committed = 0;
    {
        mn::scm::ScmConfig sc;
        sc.crash_mode = mn::scm::CrashPersistMode::kRandomSubset;
        sc.crash_seed = seed * 7 + 3;
        mn::scm::ScmContext c(sc);
        mn::scm::ScopedCtx guard(c);
        // Odd seeds use asynchronous truncation: committed txns then
        // sit in the redo logs and recovery must replay them.
        mn::Runtime rt(config(dir, seed % 2 == 1));
        if (seed % 2 == 1)
            rt.txns().pauseTruncation();
        crash::StressEngine engine(rt, seed);
        std::mt19937_64 rng(seed);
        committed = engine.run(c, 500,
                               c.eventCount() + 100 + rng() % 8000);
        c.crash(true); // power failure
    }
    mn::scm::ScmContext c2{mn::scm::ScmConfig{}};
    mn::scm::ScopedCtx guard2(c2);
    mn::Runtime rt(config(dir));
    const auto res = crash::StressEngine::verify(rt, seed, committed);
    std::printf("  seed %2llu: crashed after %3llu committed txns, "
                "%zu replayed at recovery -> %s\n",
                (unsigned long long)seed, (unsigned long long)committed,
                rt.reincarnation().replayed_txns,
                res.verified ? "VERIFIED" : res.mismatch.c_str());
    return res.verified;
}

void
tornBitDemo()
{
    std::printf("\ntorn-bit detection (RAWL):\n");
    mn::scm::ScmContext c{mn::scm::ScmConfig{}};
    mn::scm::ScopedCtx guard(c);
    std::vector<uint64_t> arena(4096 / 8, 0);
    auto log = mn::log::Rawl::create(arena.data(), 4096);
    const uint64_t recs[][3] = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
    for (const auto &r : recs)
        log->append(r, 3);
    log->flush();
    c.persistAll();

    // Flip the torn bit of a word inside the second record.
    auto *buf = reinterpret_cast<uint64_t *>(
        reinterpret_cast<mn::log::Rawl::Header *>(arena.data()) + 1);
    buf[6] ^= (uint64_t(1) << 63);

    auto re = mn::log::Rawl::open(arena.data());
    auto cur = re->begin();
    std::vector<uint64_t> out;
    int recovered = 0;
    while (re->readRecord(cur, out))
        ++recovered;
    std::printf("  3 records appended, torn bit flipped in record 2 -> "
                "%d record(s) recovered (scan stopped at the flip)\n",
                recovered);
}

} // namespace

int
main()
{
    std::printf("=== crash stress + recovery (paper section 6.2) ===\n");
    const std::string dir = "./mnemosyne_crashdemo";

    int verified = 0;
    const int rounds = 8;
    for (uint64_t seed = 0; seed < rounds; ++seed) {
        // Each round gets a fresh state directory: a crashed image is
        // recovered exactly once, like a real restart.
        const std::string round_dir = dir + "/round" + std::to_string(seed);
        std::filesystem::remove_all(round_dir);
        std::filesystem::create_directories(round_dir);
        verified += stressRound(round_dir, seed);
    }
    std::printf("%d/%d rounds verified\n", verified, rounds);

    tornBitDemo();
    return verified == rounds ? 0 : 1;
}
