/**
 * @file
 * Quickstart: the Mnemosyne programming model in one file.
 *
 *  - declare a global persistent variable (the pstatic keyword),
 *  - create a persistent linked list with pmalloc,
 *  - update it with durable memory transactions (atomic blocks),
 *  - restart and find everything still there,
 *  - read the observability snapshot: what the run cost in fences,
 *    flushes, log appends, and transactions.
 *
 * Run it twice (state lives in ./mnemosyne_quickstart by default, or
 * set MNEMOSYNE_REGION_PATH):
 *
 *   $ ./quickstart      # run 1: creates the list
 *   $ ./quickstart      # run 2: extends it — the data persisted
 *
 * The example also simulates a restart in-process so a single run
 * demonstrates persistence end to end.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include "mtm/txn_manager.h"
#include "obs/obs.h"
#include "obs/stats_registry.h"
#include "runtime/runtime.h"

namespace mn = mnemosyne;
namespace obs = mnemosyne::obs;

namespace {

/** A persistent singly-linked list of 64-bit values. */
struct ListNode {
    ListNode *next;
    uint64_t value;
};

struct ListHead {
    ListNode *first;
    uint64_t length;
};

mn::RuntimeConfig
config(const std::string &dir)
{
    std::filesystem::create_directories(dir);
    mn::RuntimeConfig cfg;
    cfg.region.backing_dir = dir;
    cfg.region.scm_capacity = size_t(64) << 20;
    cfg.region.va_reserve = size_t(2) << 30;
    cfg.small_heap_bytes = 8 << 20;
    cfg.big_heap_bytes = 8 << 20;
    return cfg;
}

void
pushFront(mn::Runtime &rt, ListHead *head, uint64_t value)
{
    // Crash-safe allocation: the node is staged, initialized while
    // still private, and the linking transaction clears the staging
    // slot — a crash anywhere leaks nothing.
    rt.resetStaging();
    auto *node = static_cast<ListNode *>(rt.stageAlloc(sizeof(ListNode)));
    mn::scm::ctx().wtstoreT(&node->value, value);

    rt.atomic([&](mn::mtm::Txn &tx) {
        tx.writeT<ListNode *>(&node->next, tx.readT<ListNode *>(&head->first));
        tx.writeT<ListNode *>(&head->first, node);
        tx.writeT<uint64_t>(&head->length, tx.readT<uint64_t>(&head->length) + 1);
        rt.clearAllocStaging(tx);
    });
}

void
oneSession(const std::string &dir, bool linger = false)
{
    mn::Runtime rt(config(dir));

    // pstatic: initialized once, ever; then persists across runs.
    auto *boot_count = static_cast<uint64_t *>(
        rt.regions().pstaticVar("boot_count", sizeof(uint64_t), nullptr));
    auto *head = static_cast<ListHead *>(
        rt.regions().pstaticVar("list_head", sizeof(ListHead), nullptr));

    rt.atomic([&](mn::mtm::Txn &tx) {
        tx.writeT<uint64_t>(boot_count, tx.readT<uint64_t>(boot_count) + 1);
    });
    std::printf("session #%llu of this quickstart's persistent state\n",
                (unsigned long long)*boot_count);

    pushFront(rt, head, *boot_count * 100);
    pushFront(rt, head, *boot_count * 100 + 1);

    std::printf("list now has %llu nodes:",
                (unsigned long long)head->length);
    for (ListNode *n = head->first; n != nullptr; n = n->next)
        std::printf(" %llu", (unsigned long long)n->value);
    std::printf("\n");

    const auto reinc = rt.reincarnation();
    std::printf("reincarnation: %lld us region scan, %lld us remap, "
                "%lld us heap scavenge, %zu txns replayed\n\n",
                (long long)(reinc.region_reconstruct.count() / 1000),
                (long long)(reinc.region_remap.count() / 1000),
                (long long)(reinc.heap_scavenge.count() / 1000),
                reinc.replayed_txns);

    // While the runtime is alive every layer is registered with the
    // stats registry; the snapshot shows what this session cost in
    // fences, flushes, log appends, and transactions.
    if (obs::enabled()) {
        std::printf("observability snapshot of this session:\n%s\n",
                    obs::StatsRegistry::instance().textSnapshot().c_str());
    }

    // Hold the runtime open so live clients (mn_stat against
    // MNEMOSYNE_STATS_PORT, or a SIGUSR2 dump) can pull a snapshot
    // while every layer is still registered.  CI's obs-schema job
    // relies on this.
    if (linger) {
        if (const char *v = std::getenv("MNEMOSYNE_QUICKSTART_LINGER_MS")) {
            const long ms = std::strtol(v, nullptr, 10);
            if (ms > 0) {
                std::printf("lingering %ld ms for live stats clients...\n",
                            ms);
                std::fflush(stdout);
                std::this_thread::sleep_for(std::chrono::milliseconds(ms));
            }
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string dir =
        argc > 1 ? argv[1] : "./mnemosyne_quickstart";
    std::printf("=== Mnemosyne quickstart (state in %s) ===\n\n",
                dir.c_str());
    // Two sessions in a row: the second finds the first's data — the
    // same thing happens if you run the binary again.
    // Turn stats collection on for the second session (MNEMOSYNE_STATS=1
    // would enable it from the start) and print the snapshot at exit:
    // every layer's counters in one place.
    oneSession(dir);
    obs::setEnabled(true);
    oneSession(dir, /*linger=*/true);
    std::printf("run the binary again: the list keeps growing.\n");
    return 0;
}
