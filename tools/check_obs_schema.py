#!/usr/bin/env python3
"""Validate a live stats snapshot against tools/obs_schema.json.

Usage: check_obs_schema.py <schema.json> <snapshot.json>

The snapshot is what `mn_stat --json --port N stats` prints: one flat
JSON object mapping stat keys to numbers.  The schema (stdlib-only; no
jsonschema dependency) asserts:

  - the snapshot parses as a single JSON object,
  - every value is a finite number (or, for the *.per_thread breakdown
    keys, an array of finite numbers),
  - every key matches `key_pattern`,
  - every key in `required_keys` is present,
  - at least one key exists under each of `required_prefixes` (layer
    liveness: the layer registered and exported something).

Exit status 0 on success; 1 with one line per violation otherwise.
"""

import json
import math
import re
import sys


def fail(msgs):
    for m in msgs:
        print(f"obs-schema: FAIL: {m}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)

    with open(sys.argv[1]) as f:
        schema = json.load(f)
    with open(sys.argv[2]) as f:
        text = f.read().strip()

    errors = []
    try:
        snap = json.loads(text)
    except json.JSONDecodeError as e:
        fail([f"snapshot is not valid JSON: {e}"])
    if not isinstance(snap, dict):
        fail([f"snapshot is a {type(snap).__name__}, expected an object"])

    def is_number(v):
        return (isinstance(v, (int, float)) and not isinstance(v, bool)
                and (not isinstance(v, float) or math.isfinite(v)))

    pattern = re.compile(schema.get("key_pattern", r".*"))
    for key, value in snap.items():
        if isinstance(value, list):
            if not all(is_number(v) for v in value):
                errors.append(f"array value of {key!r} has a non-numeric "
                              f"element")
        elif not is_number(value):
            errors.append(f"value of {key!r} is not a finite number: "
                          f"{value!r}")
        if not pattern.fullmatch(key):
            errors.append(f"key {key!r} does not match key_pattern")

    for key in schema.get("required_keys", []):
        if key not in snap:
            errors.append(f"required key {key!r} missing from snapshot")

    for prefix in schema.get("required_prefixes", []):
        if not any(k.startswith(prefix) for k in snap):
            errors.append(f"no keys under required prefix {prefix!r} "
                          f"(layer not exporting?)")

    if errors:
        fail(errors)
    print(f"obs-schema: OK ({len(snap)} keys, "
          f"{len(schema.get('required_keys', []))} required present)")


if __name__ == "__main__":
    main()
