/**
 * @file
 * mn_conform: Px86 persistency conformance CLI.
 *
 * Replays litmus programs (curated named tests and/or the exhaustive
 * bounded enumeration) through the SCM emulator, crashing at every
 * persistence event under every crash persistence mode, and checks
 * each post-crash image against the executable Px86 oracle.  Every
 * failure prints a deterministic repro spec replayable with --repro.
 *
 * Examples:
 *   mn_conform --curated                      # the named litmus suite
 *   mn_conform --curated --exhaustive         # + every bounded program
 *   mn_conform --exhaustive --max-ops 4 --seeds 8 --coverage
 *   mn_conform --repro same_line_prefix:3:rand:5
 *   mn_conform --curated --with-bug           # canary: must fail
 *   mn_conform --dump retired_overwrite       # program + oracle states
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "conform/harness.h"
#include "conform/litmus.h"
#include "conform/oracle.h"
#include "crash/sweep.h"

namespace conform = mnemosyne::conform;
namespace crash = mnemosyne::crash;
namespace scm = mnemosyne::scm;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--curated] [--exhaustive] [--max-ops N]\n"
        "          [--max-programs N] [--one-thread]\n"
        "          [--modes drop,keep,all,rand] [--seeds N]\n"
        "          [--coverage] [--min-coverage F] [--with-bug]\n"
        "          [--list] [--dump NAME] [--json]\n"
        "          [--repro PROGRAM:EVENT:MODE:SEED]\n"
        "\n"
        "  --curated        check the named litmus suite\n"
        "  --exhaustive     check the bounded exhaustive enumeration\n"
        "  --max-ops N      generator program-length bound (default 3)\n"
        "  --max-programs N cap on generated programs (default all)\n"
        "  --one-thread     generate single-thread programs only\n"
        "  --modes LIST     crash modes (default drop,keep,all,rand)\n"
        "  --seeds N        rand-mode seeds per crash point (default 8)\n"
        "  --coverage       per-family coverage report\n"
        "  --min-coverage F fail if rand witnessed/allowed < F (0..1)\n"
        "  --with-bug       enable the MN_CONFORM_BUG emulator canary\n"
        "                   (a correct harness must then report failures)\n"
        "  --list           list curated programs and exit\n"
        "  --dump NAME      print a program and its oracle states\n"
        "  --json           machine-readable report on stdout\n"
        "  --repro SPEC     replay one trial and report its outcome\n"
        "\n"
        "MN_CONFORM_BUG=1 in the environment also enables the canary.\n",
        argv0);
    return 2;
}

bool
parseModes(const std::string &list, std::vector<scm::CrashPersistMode> *out)
{
    out->clear();
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        scm::CrashPersistMode m;
        if (!crash::modeFromName(item, &m))
            return false;
        out->push_back(m);
    }
    return !out->empty();
}

void
printJson(const conform::ConformReport &rep, double min_coverage,
          bool coverage_ok)
{
    std::printf("{\n  \"families\": [\n");
    size_t i = 0;
    for (const auto &[name, f] : rep.families) {
        std::printf("    {\"name\": \"%s\", \"programs\": %llu, "
                    "\"trials\": %llu, \"allowed\": %llu, "
                    "\"witnessed\": %llu, \"violations\": %llu}%s\n",
                    name.c_str(), (unsigned long long)f.programs,
                    (unsigned long long)f.trials,
                    (unsigned long long)f.allowed_states,
                    (unsigned long long)f.witnessed_states,
                    (unsigned long long)f.violations,
                    ++i < rep.families.size() ? "," : "");
    }
    std::printf("  ],\n  \"repro\": [");
    const auto specs = rep.reproSpecs();
    for (size_t j = 0; j < specs.size(); ++j)
        std::printf("%s\"%s\"", j ? ", " : "", specs[j].c_str());
    std::printf("],\n  \"programs\": %llu,\n  \"trials\": %llu,\n"
                "  \"violations\": %llu,\n  \"coverage\": %.4f,\n"
                "  \"min_coverage\": %.4f,\n  \"ok\": %s\n}\n",
                (unsigned long long)rep.programs,
                (unsigned long long)rep.trials,
                (unsigned long long)rep.violations, rep.coverage(),
                min_coverage,
                rep.ok() && coverage_ok ? "true" : "false");
}

} // namespace

int
main(int argc, char **argv)
{
    conform::HarnessOptions opts;
    bool curated = false, exhaustive = false, list = false;
    bool coverage = false, json = false;
    double min_coverage = 0.0;
    std::string repro, dump;

    if (const char *env = std::getenv("MN_CONFORM_BUG"))
        opts.conform_bug = env[0] != '\0' && env[0] != '0';

    auto needArg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            return nullptr;
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *v = nullptr;
        if (arg == "--curated") {
            curated = true;
        } else if (arg == "--exhaustive") {
            exhaustive = true;
        } else if (arg == "--one-thread") {
            opts.gen.two_threads = false;
        } else if (arg == "--coverage") {
            coverage = true;
        } else if (arg == "--with-bug") {
            opts.conform_bug = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--max-ops" && (v = needArg(i))) {
            opts.gen.max_ops = int(std::strtol(v, nullptr, 10));
        } else if (arg == "--max-programs" && (v = needArg(i))) {
            opts.gen.max_programs = std::strtoull(v, nullptr, 10);
        } else if (arg == "--modes" && (v = needArg(i))) {
            if (!parseModes(v, &opts.modes)) {
                std::fprintf(stderr, "bad --modes list: %s\n", v);
                return 2;
            }
        } else if (arg == "--seeds" && (v = needArg(i))) {
            opts.random_seeds = std::strtoull(v, nullptr, 10);
        } else if (arg == "--min-coverage" && (v = needArg(i))) {
            min_coverage = std::strtod(v, nullptr);
        } else if (arg == "--dump" && (v = needArg(i))) {
            dump = v;
        } else if (arg == "--repro" && (v = needArg(i))) {
            repro = v;
        } else {
            return usage(argv[0]);
        }
    }

    if (list) {
        for (const auto &p : conform::curatedPrograms())
            std::printf("%-32s %-12s %zu ops\n", p.name.c_str(),
                        p.family.c_str(), p.ops.size());
        return 0;
    }

    if (!dump.empty()) {
        conform::Program p;
        if (!conform::findProgram(dump, opts.gen, &p)) {
            std::fprintf(stderr, "unknown program: %s\n", dump.c_str());
            return 2;
        }
        std::printf("%s", conform::formatProgram(p).c_str());
        for (size_t ev = 1; ev <= p.ops.size() + 1; ++ev) {
            const size_t prefix = std::min(ev - 1, p.ops.size());
            const auto o = conform::computeAllowed(p, prefix);
            std::printf("event %zu: %zu allowed, strict [%s], full [%s]\n",
                        ev, o.allowed.size(),
                        conform::formatMemState(o.strict).c_str(),
                        conform::formatMemState(o.full).c_str());
        }
        return 0;
    }

    if (!repro.empty()) {
        conform::ConformSpec spec;
        if (!conform::parseSpec(repro, &spec)) {
            std::fprintf(stderr, "bad repro spec: %s\n", repro.c_str());
            return 2;
        }
        conform::Harness harness(opts);
        const auto r = harness.runTrial(spec);
        std::printf("%s: %s%s%s (crash %s, image [%s])\n",
                    conform::formatSpec(spec).c_str(),
                    r.ok ? "PASS" : "FAIL", r.detail.empty() ? "" : " — ",
                    r.detail.c_str(), r.crashed ? "fired" : "did not fire",
                    conform::formatMemState(r.state).c_str());
        return r.ok ? 0 : 1;
    }

    if (!curated && !exhaustive)
        return usage(argv[0]);

    std::vector<conform::Program> programs;
    if (curated) {
        auto c = conform::curatedPrograms();
        programs.insert(programs.end(), std::make_move_iterator(c.begin()),
                        std::make_move_iterator(c.end()));
    }
    if (exhaustive) {
        auto g = conform::generatePrograms(opts.gen);
        programs.insert(programs.end(), std::make_move_iterator(g.begin()),
                        std::make_move_iterator(g.end()));
    }

    conform::Harness harness(opts);
    const auto rep = harness.checkAll(programs);
    const bool coverage_ok =
        min_coverage <= 0.0 || rep.coverage() >= min_coverage;

    if (json) {
        printJson(rep, min_coverage, coverage_ok);
    } else {
        if (opts.conform_bug)
            std::printf("MN_CONFORM_BUG canary enabled: violations are "
                        "expected below.\n");
        if (coverage) {
            std::printf("%-14s %9s %9s %9s %10s %9s %10s\n", "family",
                        "programs", "trials", "allowed", "witnessed",
                        "coverage", "violations");
            for (const auto &[name, f] : rep.families) {
                std::printf("%-14s %9llu %9llu %9llu %10llu %8.1f%% %10llu\n",
                            name.c_str(), (unsigned long long)f.programs,
                            (unsigned long long)f.trials,
                            (unsigned long long)f.allowed_states,
                            (unsigned long long)f.witnessed_states,
                            f.allowed_states
                                ? 100.0 * double(f.witnessed_states) /
                                      double(f.allowed_states)
                                : 0.0,
                            (unsigned long long)f.violations);
            }
        }
        for (const auto &v : rep.failures)
            std::printf("  FAIL %s — %s\n",
                        conform::formatSpec(v.spec).c_str(),
                        v.detail.c_str());
        std::printf("total: %llu programs, %llu trials, %llu violations, "
                    "rand coverage %.1f%%\n",
                    (unsigned long long)rep.programs,
                    (unsigned long long)rep.trials,
                    (unsigned long long)rep.violations,
                    100.0 * rep.coverage());
        if (!coverage_ok)
            std::printf("coverage %.3f below required minimum %.3f\n",
                        rep.coverage(), min_coverage);
        if (!rep.ok())
            std::printf("replay failures with: mn_conform%s --repro "
                        "<spec>\n",
                        opts.conform_bug ? " --with-bug" : "");
    }
    return rep.ok() && coverage_ok ? 0 : 1;
}
