/**
 * @file
 * crash_sweep: exhaustive crash-consistency sweep CLI.
 *
 * Enumerates every persistence event of each scenario's workload and
 * crashes at each one under every requested persistence mode (and seed,
 * for the adversarial random-subset mode), verifying the layer's
 * invariant after reincarnation.  Every failure prints a deterministic
 * repro spec replayable with --repro.
 *
 * Examples:
 *   crash_sweep --all                       # full sweep, all scenarios
 *   crash_sweep --scenario heap --jobs 8    # one scenario
 *   crash_sweep --all --stride 5 --rand-seeds 2 --budget-ms 60000
 *   crash_sweep --repro heap:217:rand:3     # replay one failure
 *   crash_sweep --with-bug --scenario bug_onefence   # sanity: must fail
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "crash/scenario.h"
#include "crash/sweep.h"

namespace crash = mnemosyne::crash;
namespace scm = mnemosyne::scm;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--all] [--scenario NAME]... [--list]\n"
        "          [--modes drop,keep,all,rand] [--rand-seeds N]\n"
        "          [--jobs N] [--stride N] [--max-trials N]\n"
        "          [--budget-ms N] [--tmp-root DIR] [--with-bug]\n"
        "          [--json] [--repro SCENARIO:EVENT:MODE:SEED]\n"
        "\n"
        "  --all            sweep every registered scenario\n"
        "  --scenario NAME  sweep NAME (repeatable)\n"
        "  --list           list registered scenarios and exit\n"
        "  --modes LIST     crash persistence modes (default drop,keep,rand)\n"
        "  --rand-seeds N   seeds per event for the rand mode (default 4)\n"
        "  --jobs N         worker threads (default: cores, capped at 8)\n"
        "  --stride N       crash at every Nth event (default 1 = all)\n"
        "  --max-trials N   cap trials per scenario\n"
        "  --budget-ms N    wall-clock budget; leftover trials are skipped\n"
        "  --tmp-root DIR   parent dir for backing-file tmpdirs (default /tmp)\n"
        "  --with-bug       also register the synthetic bug_onefence scenario\n"
        "  --json           machine-readable report on stdout\n"
        "  --repro SPEC     replay one trial and report its outcome\n",
        argv0);
    return 2;
}

bool
parseModes(const std::string &list, std::vector<scm::CrashPersistMode> *out)
{
    out->clear();
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
        scm::CrashPersistMode m;
        if (!crash::modeFromName(item, &m))
            return false;
        out->push_back(m);
    }
    return !out->empty();
}

void
printJson(const crash::SweepReport &report)
{
    std::printf("{\n  \"scenarios\": [\n");
    for (size_t i = 0; i < report.scenarios.size(); ++i) {
        const auto &s = report.scenarios[i];
        std::printf("    {\"name\": \"%s\", \"events\": %llu, "
                    "\"trials\": %llu, \"skipped\": %llu, "
                    "\"failures\": %llu, \"error\": \"%s\", "
                    "\"repro\": [",
                    s.scenario.c_str(),
                    (unsigned long long)s.events,
                    (unsigned long long)s.trials,
                    (unsigned long long)s.skipped,
                    (unsigned long long)s.failures, s.error.c_str());
        for (size_t j = 0; j < s.failed.size(); ++j) {
            std::printf("%s\"%s\"", j ? ", " : "",
                        crash::formatSpec(s.failed[j].spec).c_str());
        }
        std::printf("]}%s\n", i + 1 < report.scenarios.size() ? "," : "");
    }
    std::printf("  ],\n  \"trials\": %llu,\n  \"skipped\": %llu,\n"
                "  \"failures\": %llu,\n  \"ok\": %s\n}\n",
                (unsigned long long)report.trials,
                (unsigned long long)report.skipped,
                (unsigned long long)report.failures,
                report.ok() ? "true" : "false");
}

} // namespace

int
main(int argc, char **argv)
{
    crash::SweepOptions opts;
    std::vector<std::string> scenarios;
    std::string repro;
    bool all = false, list = false, with_bug = false, json = false;

    auto needArg = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            return nullptr;
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const char *v = nullptr;
        if (arg == "--all") {
            all = true;
        } else if (arg == "--list") {
            list = true;
        } else if (arg == "--with-bug") {
            with_bug = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--scenario" && (v = needArg(i))) {
            scenarios.push_back(v);
        } else if (arg == "--modes" && (v = needArg(i))) {
            if (!parseModes(v, &opts.modes)) {
                std::fprintf(stderr, "bad --modes list: %s\n", v);
                return 2;
            }
        } else if (arg == "--rand-seeds" && (v = needArg(i))) {
            opts.random_seeds = std::strtoull(v, nullptr, 10);
        } else if (arg == "--jobs" && (v = needArg(i))) {
            opts.workers = std::strtoull(v, nullptr, 10);
        } else if (arg == "--stride" && (v = needArg(i))) {
            opts.stride = std::strtoull(v, nullptr, 10);
        } else if (arg == "--max-trials" && (v = needArg(i))) {
            opts.max_trials = std::strtoull(v, nullptr, 10);
        } else if (arg == "--budget-ms" && (v = needArg(i))) {
            opts.budget_ms = std::strtoull(v, nullptr, 10);
        } else if (arg == "--tmp-root" && (v = needArg(i))) {
            opts.tmp_root = v;
        } else if (arg == "--repro" && (v = needArg(i))) {
            repro = v;
        } else {
            return usage(argv[0]);
        }
    }

    crash::registerBuiltinScenarios();
    if (with_bug)
        crash::registerSyntheticBugScenario();

    if (list) {
        for (const auto &name : crash::ScenarioRegistry::instance().names())
            std::printf("%s\n", name.c_str());
        return 0;
    }

    if (!repro.empty()) {
        crash::SweepSpec spec;
        if (!crash::parseSpec(repro, &spec)) {
            std::fprintf(stderr, "bad repro spec: %s\n", repro.c_str());
            return 2;
        }
        crash::Sweeper sweeper(opts);
        const auto r = sweeper.runTrial(spec);
        std::printf("%s: %s%s%s (crash %s, recovery %.1f us)\n",
                    crash::formatSpec(spec).c_str(),
                    r.passed ? "PASS" : "FAIL",
                    r.detail.empty() ? "" : " — ", r.detail.c_str(),
                    r.crashed ? "fired" : "did not fire",
                    double(r.recovery_ns) / 1000.0);
        return r.passed ? 0 : 1;
    }

    if (!all && scenarios.empty())
        return usage(argv[0]);

    crash::Sweeper sweeper(opts);
    const auto report = sweeper.sweepAll(all ? std::vector<std::string>{}
                                             : scenarios);

    if (json) {
        printJson(report);
    } else {
        for (const auto &s : report.scenarios) {
            if (!s.error.empty()) {
                std::printf("%-10s ERROR: %s\n", s.scenario.c_str(),
                            s.error.c_str());
                continue;
            }
            std::printf("%-10s %6llu events  %7llu trials  %5llu skipped"
                        "  %5llu failures\n",
                        s.scenario.c_str(), (unsigned long long)s.events,
                        (unsigned long long)s.trials,
                        (unsigned long long)s.skipped,
                        (unsigned long long)s.failures);
            for (const auto &f : s.failed) {
                std::printf("  FAIL %s — %s\n",
                            crash::formatSpec(f.spec).c_str(),
                            f.detail.c_str());
            }
        }
        std::printf("total: %llu trials, %llu skipped, %llu failures\n",
                    (unsigned long long)report.trials,
                    (unsigned long long)report.skipped,
                    (unsigned long long)report.failures);
        if (!report.ok()) {
            std::printf("replay failures with: crash_sweep%s --repro "
                        "<spec>\n",
                        with_bug ? " --with-bug" : "");
        }
    }
    return report.ok() ? 0 : 1;
}
