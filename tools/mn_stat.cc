/**
 * @file
 * mn_stat — pull live stats from a running mnemosyne process.
 *
 * The runtime's stats emitter (started by MNEMOSYNE_STATS_PORT=<port>,
 * 0 = pick an ephemeral port and print it) serves a line protocol on
 * 127.0.0.1: send one command, get one line of JSON back.  This tool is
 * the client side: deliberately standalone (plain POSIX sockets, no
 * library dependency) so it builds and runs even when the library is
 * configured with MN_OBS=OFF.
 *
 *   mn_stat --port 7777                 # pretty-printed stats snapshot
 *   mn_stat --port 7777 --json          # raw JSON (for scripts / jq)
 *   mn_stat --port 7777 --diff 2        # two snapshots 2 s apart, rates
 *   mn_stat --port 7777 flight 16       # last 16 flight-recorder txns
 *   mn_stat --port 7777 slow            # slowest-transaction trap
 *   mn_stat --port 7777 phases          # completed obs::Phase intervals
 *   mn_stat --port 7777 ping            # liveness + pid
 *
 * Exit status: 0 on success, 1 on connection/protocol failure.
 */

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace {

int
dial(const std::string &host, int port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        std::perror("mn_stat: socket");
        return -1;
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(uint16_t(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        // Fall back to a name lookup for e.g. "localhost".
        hostent *he = ::gethostbyname(host.c_str());
        if (!he || he->h_addrtype != AF_INET) {
            std::fprintf(stderr, "mn_stat: cannot resolve %s\n",
                         host.c_str());
            ::close(fd);
            return -1;
        }
        std::memcpy(&addr.sin_addr, he->h_addr_list[0],
                    sizeof(addr.sin_addr));
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) !=
        0) {
        std::fprintf(stderr, "mn_stat: cannot connect to %s:%d: %s\n",
                     host.c_str(), port, std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Send one command line, read one line of JSON back. */
bool
request(int fd, const std::string &cmd, std::string &reply)
{
    const std::string line = cmd + "\n";
    size_t off = 0;
    while (off < line.size()) {
        const ssize_t w = ::send(fd, line.data() + off, line.size() - off, 0);
        if (w <= 0)
            return false;
        off += size_t(w);
    }
    reply.clear();
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0)
            return false;
        reply.append(chunk, size_t(n));
        const size_t nl = reply.find('\n');
        if (nl != std::string::npos) {
            reply.resize(nl);
            return true;
        }
    }
}

/**
 * Parse a FLAT JSON object of string->number pairs — the shape of a
 * StatsRegistry snapshot.  Non-numeric values are skipped.  This is not
 * a general JSON parser and does not need to be.
 */
std::map<std::string, double>
parseFlat(const std::string &json)
{
    std::map<std::string, double> out;
    size_t p = 0;
    while ((p = json.find('"', p)) != std::string::npos) {
        const size_t q = json.find('"', p + 1);
        if (q == std::string::npos)
            break;
        const std::string key = json.substr(p + 1, q - p - 1);
        size_t v = q + 1;
        while (v < json.size() && std::isspace(unsigned(json[v])))
            ++v;
        if (v >= json.size() || json[v] != ':') {
            p = q + 1;
            continue;
        }
        ++v;
        while (v < json.size() && std::isspace(unsigned(json[v])))
            ++v;
        char *end = nullptr;
        const double num = std::strtod(json.c_str() + v, &end);
        if (end && end != json.c_str() + v)
            out[key] = num;
        p = q + 1;
    }
    return out;
}

void
printPretty(const std::map<std::string, double> &stats)
{
    for (const auto &[key, value] : stats) {
        if (value == std::floor(value) && std::fabs(value) < 1e15)
            std::printf("%-44s %20.0f\n", key.c_str(), value);
        else
            std::printf("%-44s %20.6g\n", key.c_str(), value);
    }
}

void
printDiff(const std::map<std::string, double> &a,
          const std::map<std::string, double> &b, double seconds)
{
    std::printf("%-44s %16s %14s\n", "key", "delta", "per-sec");
    for (const auto &[key, after] : b) {
        const auto it = a.find(key);
        const double before = it == a.end() ? 0.0 : it->second;
        const double d = after - before;
        if (d == 0)
            continue;
        std::printf("%-44s %16.6g %14.6g\n", key.c_str(), d,
                    seconds > 0 ? d / seconds : 0.0);
    }
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--host H] --port P [--json] [--diff SECONDS] [cmd...]\n"
        "  cmd: stats (default) | flight [N] | slow | phases | ping | reset\n",
        argv0);
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    int port = -1;
    bool raw_json = false;
    double diff_seconds = 0;
    std::vector<std::string> cmd_words;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--host" && i + 1 < argc) {
            host = argv[++i];
        } else if (arg == "--port" && i + 1 < argc) {
            port = std::atoi(argv[++i]);
        } else if (arg == "--json") {
            raw_json = true;
        } else if (arg == "--diff" && i + 1 < argc) {
            diff_seconds = std::atof(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            cmd_words.push_back(arg);
        }
    }
    if (port < 0 || port > 65535)
        return usage(argv[0]);

    std::string cmd = "stats";
    if (!cmd_words.empty()) {
        cmd = cmd_words[0];
        for (size_t i = 1; i < cmd_words.size(); ++i)
            cmd += " " + cmd_words[i];
    }

    const int fd = dial(host, port);
    if (fd < 0)
        return 1;

    int rc = 0;
    std::string reply;
    if (diff_seconds > 0) {
        // Two snapshots, diffed: interval activity of a live process.
        std::string second;
        if (!request(fd, cmd, reply)) {
            std::fprintf(stderr, "mn_stat: request failed\n");
            rc = 1;
        } else {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                diff_seconds));
            if (!request(fd, cmd, second)) {
                std::fprintf(stderr, "mn_stat: second request failed\n");
                rc = 1;
            } else if (raw_json) {
                std::printf("{\"before\":%s,\"after\":%s,\"seconds\":%g}\n",
                            reply.c_str(), second.c_str(), diff_seconds);
            } else {
                printDiff(parseFlat(reply), parseFlat(second), diff_seconds);
            }
        }
    } else if (!request(fd, cmd, reply)) {
        std::fprintf(stderr, "mn_stat: request failed\n");
        rc = 1;
    } else if (raw_json || cmd != "stats") {
        // Nested responses (flight/slow/phases) always print raw.
        std::printf("%s\n", reply.c_str());
    } else {
        printPretty(parseFlat(reply));
    }

    ::close(fd);
    return rc;
}
