/**
 * @file
 * mn_kvd: the networked durable KV daemon (DESIGN.md §10).
 *
 * Binds the KvServer to 127.0.0.1, serves until SIGINT/SIGTERM (or
 * --seconds), then stops gracefully: drain workers, sync(), drain the
 * truncator — a clean stop leaves zero unreplayed log, which the smoke
 * test asserts by restarting and checking "replayed 0".
 *
 * Durability is real across SIGKILL: regions are file-backed MAP_SHARED
 * mappings, so acknowledged (fenced) writes survive process death and
 * the next start replays the redo log into a consistent state.
 *
 *   mn_kvd --dir /tmp/kv --port 0 --io 2 --workers 8
 *
 * Prints exactly one line per lifecycle event so scripts can scrape:
 *   mn_kvd: recovered (replayed N txns)
 *   mn_kvd: listening on 127.0.0.1:PORT (pid P)
 *   mn_kvd: clean shutdown (N requests served)
 */

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <filesystem>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "runtime/runtime.h"
#include "scm/scm.h"
#include "server/kv_server.h"

using namespace mnemosyne;

namespace {

volatile std::sig_atomic_t gStop = 0;

void
onSignal(int)
{
    gStop = 1;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: mn_kvd [options]\n"
        "  --dir D             region backing dir (default /tmp/mn_kvd)\n"
        "  --port P            TCP port, 0 = ephemeral (default 0)\n"
        "  --port-file F       write the bound port to F\n"
        "  --io N              IO/event-loop threads (default 2)\n"
        "  --workers M         transaction worker threads (default 8)\n"
        "  --buckets N         hash-table buckets (default 65536)\n"
        "  --heap-mb M         persistent heap size (default 256)\n"
        "  --seconds S         exit after S seconds (default: run until "
        "signal)\n"
        "  --no-group-commit   disable the fence-epoch combiner\n"
        "  --scm-latency-ns N  model SCM write latency (default 0 = off)\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string dir = "/tmp/mn_kvd";
    std::string port_file;
    uint16_t port = 0;
    int io_threads = 2;
    int workers = 8;
    size_t nbuckets = 1 << 16;
    size_t heap_mb = 256;
    int seconds = 0;
    bool group_commit = true;
    uint64_t scm_latency_ns = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--dir")
            dir = next();
        else if (a == "--port")
            port = uint16_t(std::atoi(next()));
        else if (a == "--port-file")
            port_file = next();
        else if (a == "--io")
            io_threads = std::atoi(next());
        else if (a == "--workers")
            workers = std::atoi(next());
        else if (a == "--buckets")
            nbuckets = size_t(std::atoll(next()));
        else if (a == "--heap-mb")
            heap_mb = size_t(std::atoll(next()));
        else if (a == "--seconds")
            seconds = std::atoi(next());
        else if (a == "--no-group-commit")
            group_commit = false;
        else if (a == "--scm-latency-ns")
            scm_latency_ns = uint64_t(std::atoll(next()));
        else
            usage();
    }

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    // A service process: no failure journal (crashes are real process
    // deaths — the file-backed regions ARE the persistent state), no
    // modelled latency unless asked for.
    scm::ScmConfig scfg;
    scfg.latency_mode =
        scm_latency_ns ? scm::LatencyMode::kSpin : scm::LatencyMode::kNone;
    scfg.write_latency_ns = scm_latency_ns;
    scfg.failure_tracking = false;
    static scm::ScmContext sctx(scfg);
    scm::setCtx(&sctx);

    std::filesystem::create_directories(dir);

    RuntimeConfig cfg;
    cfg.use_current_scm_context = true;
    cfg.region.backing_dir = dir;
    cfg.region.scm_capacity = size_t(heap_mb + 320) << 20;
    cfg.region.va_reserve = size_t(4) << 30;
    cfg.small_heap_bytes = heap_mb << 20;
    cfg.big_heap_bytes = size_t(64) << 20;
    cfg.txn.truncation = mtm::Truncation::kAsync;
    cfg.txn.group_commit = group_commit;
    // One live log slot per thread that might run transactions.
    cfg.txn.log_slots = size_t(workers + io_threads + 8);
    cfg.txn.log_slot_bytes = 4 << 20;

    Runtime rt(cfg);
    std::printf("mn_kvd: recovered (replayed %llu txns)\n",
                (unsigned long long)rt.reincarnation().replayed_txns);
    std::fflush(stdout);

    server::KvServerConfig scv;
    scv.port = port;
    scv.io_threads = io_threads;
    scv.workers = workers;
    scv.nbuckets = nbuckets;
    server::KvServer srv(rt, scv);
    if (!srv.start()) {
        std::fprintf(stderr, "mn_kvd: failed to bind 127.0.0.1:%u\n",
                     unsigned(port));
        return 1;
    }
    std::printf("mn_kvd: listening on 127.0.0.1:%u (pid %d)\n",
                unsigned(srv.port()), int(getpid()));
    std::fflush(stdout);
    if (!port_file.empty()) {
        if (FILE *f = std::fopen(port_file.c_str(), "w")) {
            std::fprintf(f, "%u\n", unsigned(srv.port()));
            std::fclose(f);
        }
    }

    const auto t0 = std::chrono::steady_clock::now();
    while (!gStop) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (seconds > 0 &&
            std::chrono::steady_clock::now() - t0 >=
                std::chrono::seconds(seconds))
            break;
    }

    srv.stop();
    std::printf("mn_kvd: clean shutdown (%llu requests served)\n",
                (unsigned long long)srv.requestsServed());
    std::fflush(stdout);
    return 0;
}
