#!/usr/bin/env python3
"""Smoke test for the networked KV service (ctest target: server_smoke).

Launches mn_kvd on an ephemeral port, drives it with kv_perf at 64
pipelined connections for ~2 seconds, asserts the emitted report has
parseable percentiles and zero errors, stops the daemon with SIGTERM,
and verifies the clean-stop contract: the restart must print
"replayed 0 txns" (a clean stop leaves zero unreplayed log).

Usage: server_smoke.py <build_dir> [--connections N] [--seconds S]
"""

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time


def die(msg):
    print("server_smoke: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def wait_port_file(path, proc, timeout=30.0):
    t0 = time.monotonic()
    while time.monotonic() - t0 < timeout:
        if proc.poll() is not None:
            die("mn_kvd exited early (rc=%d)" % proc.returncode)
        try:
            with open(path) as f:
                txt = f.read().strip()
            if txt:
                return int(txt)
        except FileNotFoundError:
            pass
        time.sleep(0.05)
    die("timed out waiting for port file")


def start_kvd(kvd, workdir, port_file, extra=()):
    if os.path.exists(port_file):
        os.unlink(port_file)
    cmd = [kvd, "--dir", workdir, "--port", "0", "--port-file", port_file,
           "--io", "2", "--workers", "4", "--heap-mb", "128"]
    cmd += list(extra)
    return subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)


def stop_kvd(proc, timeout=60.0):
    proc.send_signal(signal.SIGTERM)
    try:
        out, _ = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        die("mn_kvd did not stop within %ds of SIGTERM" % timeout)
    if proc.returncode != 0:
        die("mn_kvd exited rc=%d\n%s" % (proc.returncode, out))
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir")
    ap.add_argument("--connections", type=int, default=64)
    ap.add_argument("--seconds", type=float, default=2.0)
    args = ap.parse_args()

    kvd = os.path.join(args.build_dir, "tools", "mn_kvd")
    perf = os.path.join(args.build_dir, "tools", "kv_perf")
    for exe in (kvd, perf):
        if not os.access(exe, os.X_OK):
            die("missing executable %s" % exe)

    workdir = tempfile.mkdtemp(prefix="mn_server_smoke_")
    port_file = os.path.join(workdir, "port")
    report_path = os.path.join(workdir, "report.json")
    try:
        # -- phase 1: fresh start + load ------------------------------------
        proc = start_kvd(kvd, workdir, port_file)
        port = wait_port_file(port_file, proc)
        print("server_smoke: mn_kvd up on port %d" % port)

        rc = subprocess.run(
            [perf, "--port", str(port),
             "--connections", str(args.connections),
             "--pipeline", "8", "--threads", "4",
             "--seconds", str(args.seconds),
             "--keys", "4000", "--value-size", "100",
             "--read-ratio", "0.5", "--json", report_path,
             "--stat-delta"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        print(rc.stdout, end="")
        if rc.returncode != 0:
            die("kv_perf exited rc=%d" % rc.returncode)

        with open(report_path) as f:
            report = json.load(f)
        m = report["metrics"]
        if m["errors"] != 0:
            die("kv_perf reported %d errors" % m["errors"])
        if m["throughput_ops"] <= 0:
            die("no throughput measured")
        for p in ("write_p50_ns", "write_p99_ns", "write_p999_ns"):
            if not (0 < m[p] < 60_000_000_000):
                die("implausible percentile %s=%r" % (p, m[p]))
        if m["write_p50_ns"] > m["write_p999_ns"]:
            die("percentiles not monotone")
        print("server_smoke: %.0f ops/s, write p50=%.0fus p99=%.0fus "
              "p999=%.0fus, fences/txn=%s"
              % (m["throughput_ops"], m["write_p50_ns"] / 1e3,
                 m["write_p99_ns"] / 1e3, m["write_p999_ns"] / 1e3,
                 m.get("fences_per_txn")))

        # -- phase 2: clean stop --------------------------------------------
        out = stop_kvd(proc)
        if "clean shutdown" not in out:
            die("missing clean-shutdown line:\n%s" % out)

        # -- phase 3: restart-after-clean-stop ------------------------------
        proc = start_kvd(kvd, workdir, port_file, extra=["--seconds", "1"])
        wait_port_file(port_file, proc)
        out, _ = proc.communicate(timeout=60)
        if proc.returncode != 0:
            die("restart exited rc=%d\n%s" % (proc.returncode, out))
        if "recovered (replayed 0 txns)" not in out:
            die("clean stop left unreplayed log:\n%s" % out)
        print("server_smoke: clean stop left zero unreplayed log")
        print("server_smoke: PASS")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
