#!/usr/bin/env python3
"""Kill-mid-load recovery test for the KV service (ctest: server_recovery).

For each seed: start mn_kvd on a fresh dir, run kv_perf write-heavy with
--record-acks (every acknowledged PUT is logged to a file *after* the
ack arrives), SIGKILL the daemon mid-load, restart it (redo-log replay),
then run kv_perf --verify against the ack file.  The verifier asserts
the durability contract:

  - every acked write is present, whole (checksum), and at least as new
    as the acked sequence number;
  - every *unacked* write that happens to be visible is whole — a torn
    value would be a persistency-order violation.

Usage: kv_crash_recover.py <build_dir> [--seeds N] [--kill-after S]
"""

import argparse
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time


def die(msg):
    print("kv_crash_recover: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def wait_port_file(path, proc, timeout=30.0):
    t0 = time.monotonic()
    while time.monotonic() - t0 < timeout:
        if proc.poll() is not None:
            die("mn_kvd exited early (rc=%d)" % proc.returncode)
        try:
            with open(path) as f:
                txt = f.read().strip()
            if txt:
                return int(txt)
        except FileNotFoundError:
            pass
        time.sleep(0.05)
    die("timed out waiting for port file")


def run_seed(kvd, perf, seed, kill_after, keep_dir=None):
    workdir = keep_dir or tempfile.mkdtemp(prefix="mn_kv_crash_%d_" % seed)
    port_file = os.path.join(workdir, "port")
    ack_file = os.path.join(workdir, "acks.txt")
    data_dir = os.path.join(workdir, "data")
    os.makedirs(data_dir, exist_ok=True)

    def start(extra=()):
        if os.path.exists(port_file):
            os.unlink(port_file)
        cmd = [kvd, "--dir", data_dir, "--port", "0",
               "--port-file", port_file, "--io", "2", "--workers", "4",
               "--heap-mb", "128"] + list(extra)
        return subprocess.Popen(cmd, stdout=subprocess.PIPE,
                                stderr=subprocess.STDOUT, text=True)

    ok = False
    try:
        kvd_proc = start()
        port = wait_port_file(port_file, kvd_proc)

        # Write-heavy load, long enough to outlive the kill point.  The
        # load generator records each ack after the response arrives;
        # --expect-reset keeps its exit code clean when we yank the
        # server out from under it.
        perf_proc = subprocess.Popen(
            [perf, "--port", str(port), "--connections", "16",
             "--pipeline", "8", "--threads", "4",
             "--seconds", str(kill_after + 30),
             "--keys", "4000", "--value-size", "100",
             "--read-ratio", "0.0", "--seed", str(seed),
             "--no-preload", "--record-acks", ack_file,
             "--expect-reset"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)

        time.sleep(kill_after)
        if kvd_proc.poll() is not None:
            die("seed %d: mn_kvd died before the kill" % seed)
        kvd_proc.kill()          # SIGKILL: no destructors, no flush
        kvd_proc.wait()

        out, _ = perf_proc.communicate(timeout=120)
        if perf_proc.returncode != 0:
            die("seed %d: kv_perf load rc=%d\n%s"
                % (seed, perf_proc.returncode, out))
        acked = sum(1 for ln in open(ack_file) if not ln.startswith("#"))
        if acked == 0:
            die("seed %d: no acked writes before the kill" % seed)
        print("kv_crash_recover: seed %d: killed mid-load, %d acked writes"
              % (seed, acked))

        # Restart: redo-log replay reconstructs the durable state.
        kvd_proc = start(["--seconds", "60"])
        port = wait_port_file(port_file, kvd_proc)

        rc = subprocess.run(
            [perf, "--port", str(port), "--keys", "4000",
             "--value-size", "100", "--connections", "16",
             "--seed", str(seed), "--verify", ack_file],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        print(rc.stdout, end="")
        if rc.returncode != 0:
            die("seed %d: verification failed (rc=%d)"
                % (seed, rc.returncode))

        kvd_proc.send_signal(signal.SIGTERM)
        kvd_proc.wait(timeout=60)
        ok = True
    finally:
        if ok:
            # Drop the (large, sparse) region backing files; keep the
            # ack log and port file, which is what CI archives.
            shutil.rmtree(data_dir, ignore_errors=True)
            if keep_dir is None:
                shutil.rmtree(workdir, ignore_errors=True)
        else:
            print("kv_crash_recover: artifacts kept in %s" % workdir,
                  file=sys.stderr)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("build_dir")
    ap.add_argument("--seeds", type=int, default=3)
    ap.add_argument("--kill-after", type=float, default=2.0)
    ap.add_argument("--keep-dir", default=None,
                    help="keep artifacts in this directory (CI uploads)")
    args = ap.parse_args()

    kvd = os.path.join(args.build_dir, "tools", "mn_kvd")
    perf = os.path.join(args.build_dir, "tools", "kv_perf")
    for exe in (kvd, perf):
        if not os.access(exe, os.X_OK):
            die("missing executable %s" % exe)

    for seed in range(1, args.seeds + 1):
        keep = None
        if args.keep_dir:
            keep = os.path.join(args.keep_dir, "seed%d" % seed)
            os.makedirs(keep, exist_ok=True)
        run_seed(kvd, perf, seed, args.kill_after, keep_dir=keep)

    print("kv_crash_recover: PASS (%d seeds)" % args.seeds)


if __name__ == "__main__":
    main()
