/**
 * @file
 * kv_perf: load generator + recovery verifier for the KV service.
 *
 * Load mode: T driver threads multiplex C non-blocking connections with
 * a fixed per-connection pipeline depth, mixing GET/PUT by --read-ratio
 * over a --keys keyspace.  Reports throughput and p50/p99/p999 latency
 * (separately for reads and writes) and optionally a --json report plus
 * an exact fences-per-transaction figure computed from the server's own
 * emulator counters via the STAT protocol op (--stat-delta) — counter
 * deltas are immune to runner noise, which is what lets CI gate on
 * them.
 *
 * Crash protocol: every connection owns a disjoint write-key slice, and
 * PUT values embed (seq, fnv64(key,seq), fill); an ack is recorded to
 * --record-acks only AFTER the response arrives, i.e. exactly when the
 * server promised durability.  After a SIGKILL + restart, --verify
 * replays the ack file: every acked key must be present with a valid
 * checksum and seq >= the last acked seq, and every OTHER readable key
 * must also carry a valid checksum — a torn (partially applied) write
 * is detectable no matter whether it was acked.  --expect-reset makes a
 * mid-load connection reset a success (the killer got us).
 */

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/kv_client.h"
#include "server/kv_protocol.h"

using namespace mnemosyne::server;
using Clock = std::chrono::steady_clock;

namespace {

volatile std::sig_atomic_t gStop = 0;
void
onSignal(int)
{
    gStop = 1;
}

// ---------------------------------------------------------------------------
// A small self-contained log-linear histogram (4-bit sub-buckets, ~6%
// value precision): kv_perf must report real percentiles even when the
// server libraries were built with MN_OBS=OFF, so it does not depend on
// the obs runtime gate.
// ---------------------------------------------------------------------------

struct Hdr {
    static constexpr size_t kBuckets = 64 * 16;
    std::vector<uint64_t> b = std::vector<uint64_t>(kBuckets, 0);
    uint64_t n = 0;

    static size_t
    index(uint64_t v)
    {
        const int w = v ? std::bit_width(v) : 1;
        if (w <= 5)
            return v;   // exact below 32
        const uint64_t sub = (v >> (w - 5)) & 15;
        return size_t(w) * 16 + size_t(sub);
    }

    static uint64_t
    lowerBound(size_t i)
    {
        if (i < 32)
            return i;
        const int w = int(i / 16);
        const uint64_t sub = i % 16;
        return (uint64_t(16) | sub) << (w - 5);
    }

    void
    record(uint64_t v)
    {
        b[std::min(index(v), kBuckets - 1)]++;
        n++;
    }

    void
    merge(const Hdr &o)
    {
        for (size_t i = 0; i < kBuckets; ++i)
            b[i] += o.b[i];
        n += o.n;
    }

    uint64_t
    quantile(double q) const
    {
        if (n == 0)
            return 0;
        uint64_t target = uint64_t(double(n) * q);
        if (target >= n)
            target = n - 1;
        uint64_t seen = 0;
        for (size_t i = 0; i < kBuckets; ++i) {
            seen += b[i];
            if (seen > target)
                return lowerBound(i);
        }
        return lowerBound(kBuckets - 1);
    }
};

uint64_t
fnv64(std::string_view s, uint64_t seq)
{
    uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : s) {
        h ^= uint8_t(c);
        h *= 0x100000001b3ULL;
    }
    for (int i = 0; i < 8; ++i) {
        h ^= uint8_t(seq >> (8 * i));
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string
keyName(uint32_t idx)
{
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%08u", idx);
    return buf;
}

/** value := u64 seq | u64 fnv64(key,seq) | deterministic fill. */
void
fillValue(std::vector<uint8_t> &v, size_t size, std::string_view key,
          uint64_t seq)
{
    v.resize(size);
    const uint64_t sum = fnv64(key, seq);
    std::memcpy(v.data(), &seq, 8);
    std::memcpy(v.data() + 8, &sum, 8);
    for (size_t i = 16; i < size; ++i)
        v[i] = uint8_t(seq + i);
}

/** Validate a read-back value; @p seq_out gets the embedded seq. */
bool
checkValue(std::string_view key, std::string_view v, size_t expect_size,
           uint64_t *seq_out)
{
    if (v.size() != expect_size || v.size() < 16)
        return false;
    uint64_t seq, sum;
    std::memcpy(&seq, v.data(), 8);
    std::memcpy(&sum, v.data() + 8, 8);
    if (sum != fnv64(key, seq))
        return false;
    for (size_t i = 16; i < v.size(); ++i)
        if (uint8_t(v[i]) != uint8_t(seq + i))
            return false;
    if (seq_out)
        *seq_out = seq;
    return true;
}

double
statValue(const std::string &json, const std::string &key)
{
    const std::string pat = "\"" + key + "\":";
    const auto p = json.find(pat);
    if (p == std::string::npos)
        return 0.0;
    return std::atof(json.c_str() + p + pat.size());
}

// ---------------------------------------------------------------------------

struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    int connections = 1;
    int pipeline = 1;
    int threads = 0;        // 0 = auto
    double seconds = 5.0;
    uint32_t keys = 10000;
    size_t value_size = 100;
    double read_ratio = 0.0;
    uint64_t seed = 1;
    bool preload = true;
    bool expect_reset = false;
    bool stat_delta = false;
    std::string json_path;
    std::string acks_path;
    std::string verify_path;
};

struct Pend {
    uint64_t id;
    Op op;
    uint32_t keyIdx;
    uint64_t seq;
    Clock::time_point t0;
};

struct PConn {
    int fd = -1;
    uint32_t globalId = 0;
    std::vector<uint8_t> in;
    size_t inOff = 0;
    std::vector<uint8_t> out;
    size_t outOff = 0;
    std::deque<Pend> pend;
    uint64_t nextId = 1;
    uint64_t rng;
    bool dead = false;
};

struct ThreadResult {
    Hdr read_ns, write_ns;
    uint64_t reads = 0, writes = 0, errors = 0;
    bool saw_reset = false;
    std::vector<std::pair<uint32_t, uint64_t>> acks;    // (keyIdx, seq)
};

uint64_t
nextRand(uint64_t &s)
{
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
}

int
connectTo(const Options &opt)
{
    int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opt.port);
    inet_pton(AF_INET, opt.host.c_str(), &addr.sin_addr);
    if (connect(fd, reinterpret_cast<sockaddr *>(&addr), sizeof(addr)) < 0) {
        close(fd);
        return -1;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
}

/** Per-key write sequence counters; connections own disjoint key
 *  slices (keyIdx % connections == conn.globalId) so no two
 *  connections ever write the same key. */
std::vector<std::atomic<uint64_t>> *gSeqs;

void
sendOne(const Options &opt, PConn &c, std::vector<uint8_t> &vbuf)
{
    const bool isRead =
        double(nextRand(c.rng) % 10000) < opt.read_ratio * 10000.0;
    uint32_t keyIdx;
    Pend p;
    p.id = c.nextId++;
    p.t0 = Clock::now();
    if (isRead) {
        keyIdx = uint32_t(nextRand(c.rng) % opt.keys);
        p.op = Op::kGet;
        p.keyIdx = keyIdx;
        p.seq = 0;
        appendRequest(c.out, p.id, Op::kGet, keyName(keyIdx), "");
    } else {
        // Stay inside this connection's disjoint write slice.
        const uint32_t slice = uint32_t(opt.connections);
        const uint32_t span = (opt.keys + slice - 1) / slice;
        keyIdx = (uint32_t(nextRand(c.rng)) % span) * slice + c.globalId;
        if (keyIdx >= opt.keys)
            keyIdx = c.globalId % opt.keys;
        const uint64_t seq =
            (*gSeqs)[keyIdx].fetch_add(1, std::memory_order_relaxed) + 1;
        const std::string key = keyName(keyIdx);
        fillValue(vbuf, opt.value_size, key, seq);
        p.op = Op::kPut;
        p.keyIdx = keyIdx;
        p.seq = seq;
        appendRequest(c.out, p.id, Op::kPut, key,
                      std::string_view(
                          reinterpret_cast<const char *>(vbuf.data()),
                          vbuf.size()));
    }
    c.pend.push_back(p);
}

/** Drain readable bytes and complete responses; false on EOF/error. */
bool
pumpRead(const Options &opt, PConn &c, ThreadResult &res)
{
    for (;;) {
        uint8_t chunk[64 * 1024];
        ssize_t n = read(c.fd, chunk, sizeof(chunk));
        if (n > 0) {
            c.in.insert(c.in.end(), chunk, chunk + n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        return false;   // EOF or hard error
    }
    const auto now = Clock::now();
    for (;;) {
        const size_t avail = c.in.size() - c.inOff;
        if (avail < 4)
            break;
        const uint32_t len = getU32(c.in.data() + c.inOff);
        if (len > kMaxFrameBytes)
            return false;
        if (avail < 4 + size_t(len))
            break;
        ResponseView v;
        if (!parseResponse(c.in.data() + c.inOff + 4, len, &v))
            return false;
        c.inOff += 4 + size_t(len);
        if (c.pend.empty() || c.pend.front().id != v.id)
            return false;   // per-connection FIFO violated
        const Pend p = c.pend.front();
        c.pend.pop_front();
        const uint64_t ns = uint64_t(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now - p.t0)
                .count());
        if (p.op == Op::kGet) {
            res.read_ns.record(ns);
            res.reads++;
            if (v.status != Status::kOk && v.status != Status::kNotFound)
                res.errors++;
        } else {
            res.write_ns.record(ns);
            res.writes++;
            if (v.status == Status::kOk) {
                if (!opt.acks_path.empty())
                    res.acks.emplace_back(p.keyIdx, p.seq);
            } else {
                res.errors++;
            }
        }
    }
    if (c.inOff == c.in.size()) {
        c.in.clear();
        c.inOff = 0;
    } else if (c.inOff > (256u << 10)) {
        c.in.erase(c.in.begin(), c.in.begin() + ptrdiff_t(c.inOff));
        c.inOff = 0;
    }
    return true;
}

bool
pumpWrite(PConn &c)
{
    while (c.outOff < c.out.size()) {
        ssize_t n =
            write(c.fd, c.out.data() + c.outOff, c.out.size() - c.outOff);
        if (n > 0) {
            c.outOff += size_t(n);
            continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            break;
        if (n < 0 && errno == EINTR)
            continue;
        return false;
    }
    if (c.outOff == c.out.size()) {
        c.out.clear();
        c.outOff = 0;
    }
    return true;
}

void
driverThread(const Options &opt, std::vector<uint32_t> connIds,
             Clock::time_point deadline, ThreadResult &res)
{
    std::vector<PConn> conns(connIds.size());
    for (size_t i = 0; i < connIds.size(); ++i) {
        conns[i].globalId = connIds[i];
        conns[i].rng = opt.seed * 0x9e3779b97f4a7c15ULL + connIds[i] + 1;
        conns[i].fd = connectTo(opt);
        if (conns[i].fd < 0) {
            conns[i].dead = true;
            res.saw_reset = true;
            continue;
        }
        int fl = fcntl(conns[i].fd, F_GETFL, 0);
        fcntl(conns[i].fd, F_SETFL, fl | O_NONBLOCK);
    }

    std::vector<uint8_t> vbuf;
    std::vector<pollfd> pfds(conns.size());
    bool draining = false;
    auto drainDeadline = deadline + std::chrono::seconds(5);

    for (;;) {
        const auto now = Clock::now();
        if (gStop)
            draining = true;
        if (!draining && now >= deadline)
            draining = true;
        size_t alive = 0, outstanding = 0;
        for (PConn &c : conns) {
            if (c.dead)
                continue;
            alive++;
            if (!draining) {
                while (c.pend.size() < size_t(opt.pipeline))
                    sendOne(opt, c, vbuf);
            }
            outstanding += c.pend.size();
        }
        if (alive == 0)
            break;
        if (draining && (outstanding == 0 || now >= drainDeadline))
            break;

        size_t np = 0;
        for (size_t i = 0; i < conns.size(); ++i) {
            if (conns[i].dead)
                continue;
            pfds[np].fd = conns[i].fd;
            pfds[np].events =
                short(POLLIN | (conns[i].out.size() > conns[i].outOff
                                    ? POLLOUT
                                    : 0));
            pfds[np].revents = 0;
            np++;
        }
        if (poll(pfds.data(), nfds_t(np), 10) < 0 && errno != EINTR)
            break;
        size_t pi = 0;
        for (size_t i = 0; i < conns.size(); ++i) {
            PConn &c = conns[i];
            if (c.dead)
                continue;
            const short re = pfds[pi++].revents;
            bool ok = true;
            if (re & (POLLERR | POLLHUP))
                ok = pumpRead(opt, c, res);     // collect final acks
            else {
                if (re & POLLOUT)
                    ok = pumpWrite(c);
                if (ok && (re & POLLIN))
                    ok = pumpRead(opt, c, res);
                else if (ok && c.out.size() > c.outOff)
                    ok = pumpWrite(c);
            }
            if (!ok) {
                close(c.fd);
                c.dead = true;
                res.saw_reset = true;
            }
        }
    }
    for (PConn &c : conns)
        if (!c.dead)
            close(c.fd);
}

bool
preloadKeys(const Options &opt, std::vector<std::pair<uint32_t, uint64_t>> *acks)
{
    KvClient cl;
    if (!cl.connect(opt.host, opt.port))
        return false;
    std::vector<uint8_t> vbuf;
    const size_t window = 256;
    uint32_t sent = 0, acked = 0;
    while (acked < opt.keys) {
        while (sent < opt.keys && sent - acked < window) {
            const std::string key = keyName(sent);
            const uint64_t seq =
                (*gSeqs)[sent].fetch_add(1, std::memory_order_relaxed) + 1;
            fillValue(vbuf, opt.value_size, key, seq);
            cl.sendRaw(Op::kPut, key,
                       std::string_view(
                           reinterpret_cast<const char *>(vbuf.data()),
                           vbuf.size()));
            sent++;
        }
        if (!cl.flush())
            return false;
        KvClient::Response r;
        if (!cl.recvOne(&r))
            return false;
        if (r.status != Status::kOk)
            return false;
        if (acks)
            acks->emplace_back(acked, 1);
        acked++;
    }
    return true;
}

int
runVerify(const Options &opt)
{
    // Last acked seq per key from the ack file.
    std::map<uint32_t, uint64_t> lastAcked;
    FILE *f = std::fopen(opt.verify_path.c_str(), "r");
    if (!f) {
        std::fprintf(stderr, "kv_perf: cannot open %s\n",
                     opt.verify_path.c_str());
        return 2;
    }
    char line[128];
    while (std::fgets(line, sizeof(line), f)) {
        if (line[0] == '#')
            continue;
        unsigned long long k, s;
        if (std::sscanf(line, "%llu %llu", &k, &s) == 2) {
            auto &cur = lastAcked[uint32_t(k)];
            if (s > cur)
                cur = s;
        }
    }
    std::fclose(f);

    KvClient cl;
    if (!cl.connect(opt.host, opt.port)) {
        std::fprintf(stderr, "kv_perf: verify connect failed\n");
        return 2;
    }
    uint64_t checked = 0, missing = 0, stale = 0, torn = 0, extra_ok = 0;
    for (uint32_t k = 0; k < opt.keys; ++k) {
        const std::string key = keyName(k);
        std::string v;
        const Status st = cl.get(key, &v);
        const auto it = lastAcked.find(k);
        if (it != lastAcked.end()) {
            checked++;
            if (st != Status::kOk) {
                missing++;
                std::fprintf(stderr, "VERIFY FAIL: acked key %s missing\n",
                             key.c_str());
                continue;
            }
            uint64_t seq = 0;
            if (!checkValue(key, v, opt.value_size, &seq)) {
                torn++;
                std::fprintf(stderr, "VERIFY FAIL: acked key %s torn\n",
                             key.c_str());
                continue;
            }
            if (seq < it->second) {
                stale++;
                std::fprintf(stderr,
                             "VERIFY FAIL: key %s seq %llu < acked %llu\n",
                             key.c_str(), (unsigned long long)seq,
                             (unsigned long long)it->second);
            }
        } else if (st == Status::kOk) {
            // Unacked but visible: allowed (committed before the crash),
            // but it must be WHOLE — a torn value is a durability bug.
            if (!checkValue(key, v, opt.value_size, nullptr)) {
                torn++;
                std::fprintf(stderr,
                             "VERIFY FAIL: unacked key %s torn\n",
                             key.c_str());
            } else {
                extra_ok++;
            }
        }
    }
    std::printf("kv_perf verify: %llu acked checked, %llu unacked visible "
                "(whole), %llu missing, %llu stale, %llu torn\n",
                (unsigned long long)checked, (unsigned long long)extra_ok,
                (unsigned long long)missing, (unsigned long long)stale,
                (unsigned long long)torn);
    return (missing || stale || torn) ? 1 : 0;
}

[[noreturn]] void
usage()
{
    std::fprintf(
        stderr,
        "usage: kv_perf --port P [options]\n"
        "  --host H           server address (default 127.0.0.1)\n"
        "  --connections C    concurrent connections (default 1)\n"
        "  --pipeline D       in-flight requests per connection (default 1)\n"
        "  --threads T        driver threads (default min(C,8))\n"
        "  --seconds S        load duration (default 5)\n"
        "  --keys N           keyspace size (default 10000)\n"
        "  --value-size B     value bytes, >=16 (default 100)\n"
        "  --read-ratio R     GET fraction 0..1 (default 0)\n"
        "  --seed S           RNG seed (default 1)\n"
        "  --no-preload       skip initial load of the keyspace\n"
        "  --json FILE        write a machine-readable report\n"
        "  --stat-delta       compute exact fences/txn from server stats\n"
        "  --record-acks F    append 'keyIdx seq' per acked write to F\n"
        "  --expect-reset     connection resets are expected (crash test)\n"
        "  --verify F         verify mode: check acks in F, then exit\n");
    std::exit(2);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (a == "--host")
            opt.host = next();
        else if (a == "--port")
            opt.port = uint16_t(std::atoi(next()));
        else if (a == "--connections")
            opt.connections = std::atoi(next());
        else if (a == "--pipeline")
            opt.pipeline = std::atoi(next());
        else if (a == "--threads")
            opt.threads = std::atoi(next());
        else if (a == "--seconds")
            opt.seconds = std::atof(next());
        else if (a == "--keys")
            opt.keys = uint32_t(std::atoll(next()));
        else if (a == "--value-size")
            opt.value_size = size_t(std::atoll(next()));
        else if (a == "--read-ratio")
            opt.read_ratio = std::atof(next());
        else if (a == "--seed")
            opt.seed = uint64_t(std::atoll(next()));
        else if (a == "--no-preload")
            opt.preload = false;
        else if (a == "--json")
            opt.json_path = next();
        else if (a == "--stat-delta")
            opt.stat_delta = true;
        else if (a == "--record-acks")
            opt.acks_path = next();
        else if (a == "--expect-reset")
            opt.expect_reset = true;
        else if (a == "--verify")
            opt.verify_path = next();
        else
            usage();
    }
    if (opt.port == 0 || opt.connections < 1 || opt.pipeline < 1 ||
        opt.value_size < 16 || opt.keys < 1)
        usage();

    std::signal(SIGINT, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    static std::vector<std::atomic<uint64_t>> seqs(opt.keys);
    gSeqs = &seqs;

    if (!opt.verify_path.empty())
        return runVerify(opt);

    std::vector<std::pair<uint32_t, uint64_t>> preloadAcks;
    if (opt.preload) {
        if (!preloadKeys(opt, opt.acks_path.empty() ? nullptr
                                                    : &preloadAcks)) {
            std::fprintf(stderr, "kv_perf: preload failed\n");
            return 2;
        }
    }

    std::string statBefore, statAfter;
    KvClient statCl;
    if (opt.stat_delta) {
        if (!statCl.connect(opt.host, opt.port) ||
            !statCl.stat(&statBefore)) {
            std::fprintf(stderr, "kv_perf: STAT failed\n");
            return 2;
        }
    }

    int nthreads = opt.threads;
    if (nthreads <= 0) {
        const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
        nthreads = int(std::min({unsigned(opt.connections), 8u, hw}));
    }
    std::vector<std::vector<uint32_t>> assign(static_cast<size_t>(nthreads));
    for (int c = 0; c < opt.connections; ++c)
        assign[size_t(c % nthreads)].push_back(uint32_t(c));

    std::vector<ThreadResult> results(static_cast<size_t>(nthreads));
    const auto t0 = Clock::now();
    const auto deadline =
        t0 + std::chrono::microseconds(int64_t(opt.seconds * 1e6));
    std::vector<std::thread> threads;
    for (int t = 0; t < nthreads; ++t)
        threads.emplace_back(driverThread, std::cref(opt), assign[size_t(t)],
                             deadline, std::ref(results[size_t(t)]));
    for (auto &th : threads)
        th.join();
    const double elapsed =
        double(std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - t0)
                   .count()) /
        1e9;

    ThreadResult total;
    for (ThreadResult &r : results) {
        total.read_ns.merge(r.read_ns);
        total.write_ns.merge(r.write_ns);
        total.reads += r.reads;
        total.writes += r.writes;
        total.errors += r.errors;
        total.saw_reset = total.saw_reset || r.saw_reset;
    }

    if (!opt.acks_path.empty()) {
        if (FILE *f = std::fopen(opt.acks_path.c_str(), "w")) {
            std::fprintf(f, "# kv_perf acks keys=%u value_size=%zu\n",
                         opt.keys, opt.value_size);
            for (auto &[k, s] : preloadAcks)
                std::fprintf(f, "%u %llu\n", k, (unsigned long long)s);
            for (ThreadResult &r : results)
                for (auto &[k, s] : r.acks)
                    std::fprintf(f, "%u %llu\n", k, (unsigned long long)s);
            std::fflush(f);
            fsync(fileno(f));
            std::fclose(f);
        }
    }

    double fences_per_txn = -1.0;
    if (opt.stat_delta && statCl.connected() && statCl.stat(&statAfter)) {
        const double dFences = statValue(statAfter, "scm.fences") -
                               statValue(statBefore, "scm.fences");
        const double dCommits = statValue(statAfter, "mtm.commits") -
                                statValue(statBefore, "mtm.commits");
        if (dCommits > 0)
            fences_per_txn = dFences / dCommits;
    }

    const uint64_t ops = total.reads + total.writes;
    const double thr = elapsed > 0 ? double(ops) / elapsed : 0;
    std::printf("kv_perf: conns=%d pipeline=%d threads=%d seconds=%.2f "
                "read_ratio=%.2f value=%zuB keys=%u\n",
                opt.connections, opt.pipeline, nthreads, elapsed,
                opt.read_ratio, opt.value_size, opt.keys);
    std::printf("  throughput: %.0f ops/s (%llu reads, %llu writes, %llu "
                "errors)%s\n",
                thr, (unsigned long long)total.reads,
                (unsigned long long)total.writes,
                (unsigned long long)total.errors,
                total.saw_reset ? " [connection reset]" : "");
    auto row = [](const char *name, const Hdr &h) {
        std::printf("  %s latency ns: p50=%llu p99=%llu p999=%llu (n=%llu)\n",
                    name, (unsigned long long)h.quantile(0.50),
                    (unsigned long long)h.quantile(0.99),
                    (unsigned long long)h.quantile(0.999),
                    (unsigned long long)h.n);
    };
    if (total.write_ns.n)
        row("write", total.write_ns);
    if (total.read_ns.n)
        row("read", total.read_ns);
    if (fences_per_txn >= 0)
        std::printf("  fences/txn (exact, from server counters): %.4f\n",
                    fences_per_txn);

    if (!opt.json_path.empty()) {
        if (FILE *f = std::fopen(opt.json_path.c_str(), "w")) {
            std::fprintf(
                f,
                "{\"bench\":\"kv_perf\",\"config\":{\"connections\":%d,"
                "\"pipeline\":%d,\"threads\":%d,\"seconds\":%.3f,"
                "\"keys\":%u,\"value_size\":%zu,\"read_ratio\":%.3f,"
                "\"seed\":%llu},\"metrics\":{\"throughput_ops\":%.1f,"
                "\"reads\":%llu,\"writes\":%llu,\"errors\":%llu,"
                "\"write_p50_ns\":%llu,\"write_p99_ns\":%llu,"
                "\"write_p999_ns\":%llu,\"read_p50_ns\":%llu,"
                "\"read_p99_ns\":%llu,\"read_p999_ns\":%llu,"
                "\"fences_per_txn\":%.6f,\"saw_reset\":%s}}\n",
                opt.connections, opt.pipeline, nthreads, elapsed, opt.keys,
                opt.value_size, opt.read_ratio,
                (unsigned long long)opt.seed, thr,
                (unsigned long long)total.reads,
                (unsigned long long)total.writes,
                (unsigned long long)total.errors,
                (unsigned long long)total.write_ns.quantile(0.50),
                (unsigned long long)total.write_ns.quantile(0.99),
                (unsigned long long)total.write_ns.quantile(0.999),
                (unsigned long long)total.read_ns.quantile(0.50),
                (unsigned long long)total.read_ns.quantile(0.99),
                (unsigned long long)total.read_ns.quantile(0.999),
                fences_per_txn, total.saw_reset ? "true" : "false");
            std::fclose(f);
        }
    }

    if (total.saw_reset && !opt.expect_reset)
        return 3;
    return 0;
}
