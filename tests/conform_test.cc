/**
 * @file
 * Tests for the Px86 conformance harness (src/conform): litmus IR and
 * generator determinism, hand-checked oracle outcome sets, the
 * emulator-vs-oracle check across every crash mode, the MN_CONFORM_BUG
 * canary, and repro-spec round-trips.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "conform/harness.h"
#include "conform/litmus.h"
#include "conform/oracle.h"
#include "scm/scm.h"

namespace conform = mnemosyne::conform;
namespace scm = mnemosyne::scm;
using conform::GenConfig;
using conform::MemState;
using conform::Program;
using scm::CrashPersistMode;

namespace {

MemState
state(std::initializer_list<std::pair<int, uint64_t>> words)
{
    MemState m{};
    for (const auto &[idx, val] : words)
        m[size_t(idx)] = val;
    return m;
}

Program
mustFind(const std::string &name)
{
    Program p;
    EXPECT_TRUE(conform::findProgram(name, GenConfig{}, &p)) << name;
    return p;
}

} // namespace

TEST(Litmus, CuratedProgramsAreWellFormed)
{
    const auto programs = conform::curatedPrograms();
    ASSERT_GE(programs.size(), 15u);
    std::set<std::string> names;
    for (const auto &p : programs) {
        EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
        EXPECT_FALSE(p.family.empty());
        EXPECT_FALSE(p.ops.empty());
        EXPECT_GE(p.threads(), 1);
        EXPECT_LE(p.threads(), 2);
        std::set<uint64_t> values;
        for (const auto &op : p.ops) {
            EXPECT_LT(op.line, conform::kLines);
            EXPECT_LT(op.word, conform::kWordsPerLine);
            if (op.kind == conform::OpKind::kStore ||
                op.kind == conform::OpKind::kWtStore) {
                EXPECT_NE(op.value, 0u);
                EXPECT_TRUE(values.insert(op.value).second)
                    << p.name << ": store values must be distinct";
            }
        }
    }
}

TEST(Litmus, GeneratorIsDeterministicAndBounded)
{
    GenConfig cfg;
    cfg.max_ops = 2;
    const auto a = conform::generatePrograms(cfg);
    const auto b = conform::generatePrograms(cfg);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].name, "gen" + std::to_string(i));
        ASSERT_EQ(a[i].ops.size(), b[i].ops.size());
        EXPECT_LE(a[i].ops.size(), 2u);
        bool write = false;
        for (size_t j = 0; j < a[i].ops.size(); ++j) {
            EXPECT_EQ(conform::formatOp(a[i].ops[j]),
                      conform::formatOp(b[i].ops[j]));
            write |= a[i].ops[j].kind == conform::OpKind::kStore ||
                     a[i].ops[j].kind == conform::OpKind::kWtStore;
        }
        EXPECT_TRUE(write) << a[i].name << " has no store";
    }
}

TEST(Litmus, DefaultBoundsYieldWellOverFiveHundredPrograms)
{
    // The tier-1 ctest target runs the full default enumeration; the
    // issue's floor is >= 500 distinct programs.
    const auto programs = conform::generatePrograms(GenConfig{});
    EXPECT_GE(programs.size(), 500u);
}

TEST(Litmus, MaxProgramsCapsTheStablePrefix)
{
    GenConfig cfg;
    cfg.max_ops = 2;
    GenConfig capped = cfg;
    capped.max_programs = 10;
    const auto full = conform::generatePrograms(cfg);
    const auto some = conform::generatePrograms(capped);
    ASSERT_EQ(some.size(), 10u);
    for (size_t i = 0; i < some.size(); ++i)
        EXPECT_EQ(some[i].name, full[i].name);
}

TEST(Litmus, FindProgramResolvesCuratedAndGeneratedNames)
{
    Program p;
    EXPECT_TRUE(conform::findProgram("same_line_prefix", GenConfig{}, &p));
    EXPECT_EQ(p.family, "line_fifo");

    const auto gen = conform::generatePrograms(GenConfig{});
    const size_t pick = gen.size() - 1;
    ASSERT_TRUE(
        conform::findProgram("gen" + std::to_string(pick), GenConfig{}, &p));
    EXPECT_EQ(p.ops.size(), gen[pick].ops.size());
    for (size_t j = 0; j < p.ops.size(); ++j)
        EXPECT_EQ(conform::formatOp(p.ops[j]),
                  conform::formatOp(gen[pick].ops[j]));

    EXPECT_FALSE(conform::findProgram("no_such_litmus", GenConfig{}, &p));
    EXPECT_FALSE(conform::findProgram("gen999999999", GenConfig{}, &p));
}

TEST(ConformSpecTest, FormatParseRoundTrip)
{
    conform::ConformSpec spec;
    spec.program = "same_line_prefix";
    spec.event = 3;
    spec.mode = CrashPersistMode::kRandomSubset;
    spec.seed = 7;
    const std::string s = conform::formatSpec(spec);
    EXPECT_EQ(s, "same_line_prefix:3:rand:7");

    conform::ConformSpec back;
    ASSERT_TRUE(conform::parseSpec(s, &back));
    EXPECT_EQ(back.program, spec.program);
    EXPECT_EQ(back.event, spec.event);
    EXPECT_EQ(back.mode, spec.mode);
    EXPECT_EQ(back.seed, spec.seed);

    EXPECT_FALSE(conform::parseSpec("missing:parts", &back));
    EXPECT_FALSE(conform::parseSpec("p:1:badmode:0", &back));
    EXPECT_FALSE(conform::parseSpec("p:notanum:drop:0", &back));
}

TEST(Oracle, SameLinePrefixAllowsExactlyTheFifoCuts)
{
    // st L0.W0=1; st L0.W1=2 — survivors must be a prefix: {}, {1},
    // {1,2}.  The (0,2) state would violate the per-line FIFO.
    const Program p = mustFind("same_line_prefix");
    const auto o = conform::computeAllowed(p, 2);
    const std::set<MemState> want{state({}), state({{0, 1}}),
                                  state({{0, 1}, {1, 2}})};
    EXPECT_EQ(o.allowed, want);
    EXPECT_EQ(o.strict, state({}));
    EXPECT_EQ(o.full, state({{0, 1}, {1, 2}}));
}

TEST(Oracle, CrossLineWritesAreIndependent)
{
    // st L0.W0=1; st L1.W0=2 — no persist ordering across lines: all
    // four combinations are allowed.
    const Program p = mustFind("cross_line_no_order");
    const auto o = conform::computeAllowed(p, 2);
    EXPECT_EQ(o.allowed.size(), 4u);
    EXPECT_TRUE(o.allowed.count(state({{8, 2}})))
        << "L1 persisting without L0 must be allowed";
}

TEST(Oracle, WcWritesAreExemptFromLineFifo)
{
    // wt L0.W0=1; wt L0.W1=2 — write-combining chunks drain in any
    // order, so all four subsets are allowed despite the shared line.
    const Program p = mustFind("wt_same_line_weak_order");
    const auto o = conform::computeAllowed(p, 2);
    EXPECT_EQ(o.allowed.size(), 4u);
    EXPECT_TRUE(o.allowed.count(state({{1, 2}})));
}

TEST(Oracle, RetiredOverwriteForcesTheDurableValue)
{
    // st x=1 (pending); wt x=2; fence — the streamed write is durable,
    // and the pending store's pre-image may never resurface: the only
    // allowed post-crash value is 2.
    const Program p = mustFind("retired_overwrite");
    const auto o = conform::computeAllowed(p, 3);
    const std::set<MemState> want{state({{0, 2}})};
    EXPECT_EQ(o.allowed, want);
    EXPECT_EQ(o.strict, state({{0, 2}}));
}

TEST(Oracle, CrossThreadFlushGivesTheFlusherTheDurabilityEdge)
{
    // st by t0; flush by t1; fence by t1 — durable.
    const Program fenced = mustFind("cross_thread_flush_fence");
    const auto of = conform::computeAllowed(fenced, 3);
    EXPECT_EQ(of.strict, state({{0, 1}}));
    EXPECT_EQ(of.allowed, std::set<MemState>{state({{0, 1}})});

    // st by t0; flush by t1; fence by t0 — t0 never flushed, so its
    // fence retires nothing: the store may still be lost.
    const Program wrong = mustFind("cross_thread_flush_wrong_fence");
    const auto ow = conform::computeAllowed(wrong, 3);
    EXPECT_EQ(ow.strict, state({}));
    const std::set<MemState> want{state({}), state({{0, 1}})};
    EXPECT_EQ(ow.allowed, want);
}

TEST(Oracle, StrictAndFullAreAlwaysMembersOfAllowed)
{
    for (const auto &p : conform::curatedPrograms()) {
        for (size_t prefix = 0; prefix <= p.ops.size(); ++prefix) {
            const auto o = conform::computeAllowed(p, prefix);
            EXPECT_TRUE(o.allowed.count(o.strict))
                << p.name << " prefix " << prefix;
            EXPECT_TRUE(o.allowed.count(o.full))
                << p.name << " prefix " << prefix;
        }
    }
}

TEST(Harness, CuratedSuitePassesAllModes)
{
    conform::Harness harness;
    const auto rep = harness.checkAll(conform::curatedPrograms());
    EXPECT_TRUE(rep.ok());
    EXPECT_EQ(rep.violations, 0u);
    for (const auto &v : rep.failures)
        ADD_FAILURE() << conform::formatSpec(v.spec) << " — " << v.detail;
    EXPECT_GE(rep.trials, 400u);
    EXPECT_GT(rep.coverage(), 0.5);
    EXPECT_LE(rep.witnessed_states, rep.allowed_states);
}

TEST(Harness, GeneratedProgramsPassAllModes)
{
    // The bounded generated suite (every 1- and 2-op program); the
    // tier-1 ctest target covers the default 3-op enumeration.
    GenConfig cfg;
    cfg.max_ops = 2;
    conform::HarnessOptions opts;
    opts.random_seeds = 4;
    opts.gen = cfg;
    conform::Harness harness(opts);
    const auto rep = harness.checkAll(conform::generatePrograms(cfg));
    EXPECT_TRUE(rep.ok());
    for (const auto &v : rep.failures)
        ADD_FAILURE() << conform::formatSpec(v.spec) << " — " << v.detail;
}

TEST(Harness, ReplayIsDeterministic)
{
    conform::Harness harness;
    const Program p = mustFind("line_fifo_three_deep");
    for (uint64_t ev = 1; ev <= p.ops.size() + 1; ++ev) {
        for (uint64_t seed = 0; seed < 4; ++seed) {
            const MemState a = harness.replay(
                p, ev, CrashPersistMode::kRandomSubset, seed);
            const MemState b = harness.replay(
                p, ev, CrashPersistMode::kRandomSubset, seed);
            EXPECT_EQ(a, b) << "event " << ev << " seed " << seed;
        }
    }
}

TEST(Harness, EventNumberingMatchesOps)
{
    // Crash at event 1 fires before any op; crash at len+1 never fires
    // (run to completion, then power loss).
    conform::Harness harness;
    const Program p = mustFind("store_flush_fence");
    bool crashed = false;
    harness.replay(p, 1, CrashPersistMode::kKeepAll, 0, &crashed);
    EXPECT_TRUE(crashed);
    harness.replay(p, p.ops.size() + 1, CrashPersistMode::kKeepAll, 0,
                   &crashed);
    EXPECT_FALSE(crashed);
}

TEST(Harness, RunTrialRejectsBadSpecs)
{
    conform::Harness harness;
    conform::ConformSpec spec;
    spec.program = "no_such_litmus";
    spec.event = 1;
    auto r = harness.runTrial(spec);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.detail.find("unknown program"), std::string::npos);

    spec.program = "wtstore_fence"; // 2 ops
    spec.event = 9;
    r = harness.runTrial(spec);
    EXPECT_FALSE(r.ok);
    EXPECT_NE(r.detail.find("out of range"), std::string::npos);
}

TEST(Canary, ConformBugIsCaughtWithDeterministicRepro)
{
    // With the MN_CONFORM_BUG canary enabled the harness MUST report
    // violations — this is the proof that the conformance check can
    // catch a broken emulator at all.
    conform::HarnessOptions opts;
    opts.conform_bug = true;
    conform::Harness buggy(opts);
    const auto rep = buggy.checkAll(conform::curatedPrograms());
    ASSERT_FALSE(rep.ok());
    ASSERT_FALSE(rep.failures.empty());

    // The repro spec replays byte-identically: same violation, same
    // post-crash image, trial after trial.
    const conform::ConformSpec spec = rep.failures.front().spec;
    const auto a = buggy.runTrial(spec);
    const auto b = buggy.runTrial(spec);
    EXPECT_FALSE(a.ok);
    EXPECT_FALSE(b.ok);
    EXPECT_EQ(a.state, b.state);
    EXPECT_EQ(a.detail, b.detail);
    EXPECT_EQ(a.detail, rep.failures.front().detail);

    // And the same spec passes on the unbroken emulator.
    conform::Harness clean;
    EXPECT_TRUE(clean.runTrial(spec).ok) << clean.runTrial(spec).detail;
}

TEST(Canary, BugViolationsIncludeTheSeveredFlushEdge)
{
    // The canary severs clflush→fence: store_flush_fence run to
    // completion must now (wrongly) lose the store under strict mode.
    conform::HarnessOptions opts;
    opts.conform_bug = true;
    conform::Harness buggy(opts);
    conform::ConformSpec spec;
    spec.program = "store_flush_fence";
    spec.event = 4; // run to completion
    spec.mode = CrashPersistMode::kDropUnfenced;
    const auto r = buggy.runTrial(spec);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.state, state({}));
}
