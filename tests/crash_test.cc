/**
 * @file
 * Tests for the crash-injection harness itself, plus harness-driven
 * end-to-end reliability runs (section 6.2): the seeded crash stress
 * engine across many crash points, and torn-bit validation under
 * harness-injected bit flips.
 */

#include <gtest/gtest.h>

#include <random>

#include "crash/crash_harness.h"
#include "log/rawl.h"
#include "runtime/runtime.h"
#include "scm/scm.h"
#include "tests/test_util.h"

namespace scm = mnemosyne::scm;
namespace crash = mnemosyne::crash;
namespace mlog = mnemosyne::log;
using mnemosyne::Runtime;
using mnemosyne::RuntimeConfig;
using mnemosyne::test::TempDir;
using mnemosyne::test::smallRegionConfig;

namespace {

RuntimeConfig
rtCfg(const std::string &dir)
{
    RuntimeConfig rc;
    rc.use_current_scm_context = true;
    rc.region = smallRegionConfig(dir);
    rc.small_heap_bytes = 4 << 20;
    rc.big_heap_bytes = 4 << 20;
    rc.txn.log_slots = 8;
    rc.txn.log_slot_bytes = 256 * 1024;
    return rc;
}

} // namespace

TEST(CrashPoint, FiresExactlyOnceAndHaltsTheMachine)
{
    scm::ScmContext c{scm::ScmConfig{}};
    uint64_t word = 0;
    {
        crash::CrashPoint cp(c, c.eventCount() + 2);
        c.wtstoreT<uint64_t>(&word, 1); // event 1: passes
        EXPECT_FALSE(cp.fired());
        EXPECT_THROW(c.wtstoreT<uint64_t>(&word, 2), scm::CrashNow);
        EXPECT_TRUE(cp.fired());
        EXPECT_EQ(cp.firedEvent(), c.eventCount());
        // The machine died at the crash instant: unwinding code may keep
        // issuing writes, but they are silent no-ops and cannot alter
        // the post-crash image.
        EXPECT_TRUE(c.halted());
        EXPECT_NO_THROW(c.wtstoreT<uint64_t>(&word, 3));
        EXPECT_EQ(word, 1u);
    }
}

TEST(FlipRandomBits, FlipsAreReal)
{
    std::vector<uint8_t> buf(256, 0);
    auto flipped = crash::flipRandomBits(buf.data(), buf.size(), 5, 42);
    EXPECT_EQ(flipped.size(), 5u);
    size_t set_bits = 0;
    for (uint8_t b : buf)
        set_bits += size_t(__builtin_popcount(b));
    EXPECT_GE(set_bits, 1u);
    EXPECT_LE(set_bits, 5u); // collisions can cancel
}

class StressSweep
    : public ::testing::TestWithParam<
          std::tuple<uint64_t, scm::CrashPersistMode>>
{
};

TEST_P(StressSweep, MemoryMatchesCommittedPrefix)
{
    const uint64_t seed = std::get<0>(GetParam());
    const auto mode = std::get<1>(GetParam());
    TempDir dir;
    uint64_t committed = 0;
    uint64_t crash_event = 0;
    {
        scm::ScmConfig sc;
        sc.crash_mode = mode;
        sc.crash_seed = seed ^ 0x5eed;
        scm::ScmContext c(sc);
        scm::ScopedCtx guard(c);
        Runtime rt(rtCfg(dir.path()));
        crash::StressEngine eng(rt, seed);
        std::mt19937_64 rng(seed);
        committed =
            eng.run(c, 300, c.eventCount() + 50 + rng() % 4000);
        crash_event = eng.lastCrashEvent();
        c.crash(true);
    }
    scm::ScmContext c2{scm::ScmConfig{}};
    scm::ScopedCtx guard2(c2);
    Runtime rt(rtCfg(dir.path()));
    const auto res = crash::StressEngine::verify(rt, seed, committed,
                                                 "crash_stress",
                                                 crash_event);
    EXPECT_TRUE(res.verified)
        << "seed " << seed << " mode " << int(mode) << ": "
        << res.mismatch;
}

// Every seed crossed with every crash-persistence model: the strict
// drop-unfenced and keep-issued models, the flush-on-fail keep-all
// model, and the adversarial random-subset model.
INSTANTIATE_TEST_SUITE_P(
    Seeds, StressSweep,
    ::testing::Combine(
        ::testing::Range<uint64_t>(0, 10),
        ::testing::Values(scm::CrashPersistMode::kDropUnfenced,
                          scm::CrashPersistMode::kKeepIssued,
                          scm::CrashPersistMode::kKeepAll,
                          scm::CrashPersistMode::kRandomSubset)));

TEST(TornBitHarness, TornBitFlipsTruncateToExactPrefix)
{
    // The paper's torn-bit validation: flip torn bits in the log image
    // before recovery; the scan must stop at the first flipped word,
    // yielding an exact prefix of the appended records (the RAWL is
    // semantic-free: payload corruption is the client's concern, torn
    // BITS are the log's).
    for (uint64_t seed = 0; seed < 24; ++seed) {
        scm::ScmContext c{scm::ScmConfig{}};
        scm::ScopedCtx guard(c);
        std::vector<uint64_t> arena(2048 / 8, 0);
        auto log = mlog::Rawl::create(arena.data(), 2048);
        std::vector<std::vector<uint64_t>> appended;
        std::mt19937_64 rng(seed);
        size_t words_used = 0;
        for (int r = 0; r < 5; ++r) {
            std::vector<uint64_t> rec(1 + rng() % 8);
            for (auto &w : rec)
                w = rng();
            log->append(rec.data(), rec.size());
            appended.push_back(rec);
            words_used += 1 + (64 * rec.size() + 62) / 63;
        }
        log->flush();
        c.persistAll();

        // Flip the torn bit (bit 63) of one word inside the used area.
        auto *buf = reinterpret_cast<uint64_t *>(
            reinterpret_cast<mlog::Rawl::Header *>(arena.data()) + 1);
        const size_t victim = rng() % words_used;
        buf[victim] ^= (uint64_t(1) << 63);

        auto re = mlog::Rawl::open(arena.data());
        ASSERT_NE(re, nullptr);
        auto cur = re->begin();
        std::vector<uint64_t> out;
        size_t i = 0;
        size_t boundary = 0; // records wholly before the victim word
        size_t pos = 0;
        for (const auto &rec : appended) {
            pos += 1 + (64 * rec.size() + 62) / 63;
            if (pos <= victim)
                ++boundary;
        }
        while (re->readRecord(cur, out)) {
            ASSERT_LT(i, appended.size());
            EXPECT_EQ(out, appended[i]) << "seed " << seed;
            ++i;
        }
        EXPECT_EQ(i, boundary) << "seed " << seed << " victim " << victim;
    }
}

TEST(TornBitHarness, RandomSubsetSurvivalSweepRecoversExactPrefix)
{
    // Adversarial-persistence property sweep over the tornbit append
    // protocol: 256 kRandomSubset survival seeds, each crashing at a
    // seeded point inside a sequence of append+flush bursts.  Whatever
    // random subset of the in-flight words reaches SCM, recovery must
    // yield an exact, uncorrupted record prefix that includes every
    // record whose flush completed before the crash.
    constexpr int kRecords = 8;
    auto wordOf = [](uint64_t seed, int r, size_t j) {
        return ((seed << 32) | (uint64_t(r) << 8) | j) &
               mlog::Rawl::kPayloadMask;
    };
    for (uint64_t seed = 0; seed < 256; ++seed) {
        std::vector<uint64_t> arena(4096 / 8, 0);
        size_t flushed = 0;
        bool crashed = false;
        {
            scm::ScmConfig sc;
            sc.crash_mode = scm::CrashPersistMode::kRandomSubset;
            sc.crash_seed = seed;
            scm::ScmContext c(sc);
            scm::ScopedCtx guard(c);
            auto log = mlog::Rawl::create(arena.data(), 4096);
            c.persistAll();
            std::mt19937_64 rng(seed * 7919 + 1);
            try {
                crash::CrashPoint cp(c, c.eventCount() + 1 + rng() % 18);
                for (int r = 0; r < kRecords; ++r) {
                    uint64_t rec[4];
                    const size_t n = 1 + size_t(r) % 4;
                    for (size_t j = 0; j < n; ++j)
                        rec[j] = wordOf(seed, r, j);
                    log->append(rec, n);
                    log->flush();
                    ++flushed;
                }
            } catch (const scm::CrashNow &) {
                crashed = true;
            }
            c.crash(true);
        }
        scm::ScmContext c2{scm::ScmConfig{}};
        scm::ScopedCtx guard2(c2);
        auto re = mlog::Rawl::open(arena.data());
        ASSERT_NE(re, nullptr) << "seed " << seed;
        auto cur = re->begin();
        std::vector<uint64_t> out;
        size_t i = 0;
        while (re->readRecord(cur, out)) {
            ASSERT_LT(i, size_t(kRecords)) << "seed " << seed;
            const size_t n = 1 + i % 4;
            ASSERT_EQ(out.size(), n) << "seed " << seed << " record " << i;
            for (size_t j = 0; j < n; ++j)
                EXPECT_EQ(out[j], wordOf(seed, int(i), j))
                    << "seed " << seed << " record " << i;
            ++i;
        }
        // Durability: every record whose flush() returned before the
        // crash must have survived it.
        EXPECT_GE(i, flushed) << "seed " << seed;
        if (!crashed)
            EXPECT_EQ(i, size_t(kRecords)) << "seed " << seed;
    }
}
