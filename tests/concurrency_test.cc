/**
 * @file
 * Multi-core stress tests for the persistence stack: parallel
 * pmalloc/pfree with cross-thread frees and thread churn (the Hoard
 * per-thread-heap paths), parallel log-slot acquisition, and
 * transaction throughput under thread churn.  The heap test finishes
 * with a simulated crash and verifies by reincarnation heap walk that
 * no block leaked and none is doubly owned — the same invariant the
 * crash sweeper checks, here under real concurrency.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "ds/phash_table.h"
#include "heap/superblock_heap.h"
#include "log/log_manager.h"
#include "runtime/runtime.h"
#include "scm/scm.h"
#include "tests/test_util.h"

namespace scm = mnemosyne::scm;
namespace mtm = mnemosyne::mtm;
namespace heap = mnemosyne::heap;
namespace mlog = mnemosyne::log;
using heap::SuperblockHeap;
using mnemosyne::Runtime;
using mnemosyne::RuntimeConfig;
using mnemosyne::test::TempDir;
using mnemosyne::test::smallRegionConfig;

namespace {

scm::ScmConfig
scmCfg()
{
    scm::ScmConfig c;
    c.crash_mode = scm::CrashPersistMode::kDropUnfenced;
    return c;
}

RuntimeConfig
rtCfg(const std::string &dir)
{
    RuntimeConfig rc;
    rc.use_current_scm_context = true;
    rc.region = smallRegionConfig(dir);
    rc.small_heap_bytes = 4 << 20;
    rc.big_heap_bytes = 4 << 20;
    rc.static_region_bytes = 1 << 20;
    rc.txn.log_slots = 8;
    rc.txn.log_slot_bytes = 256 * 1024;
    return rc;
}

/** Busy-wait rendezvous: all @p n threads reach the phase before any
 *  proceeds past it.  (No std::barrier: keep the test C++17-clean.) */
class SpinBarrier
{
  public:
    explicit SpinBarrier(size_t n) : n_(n) {}

    void
    arrive_and_wait()
    {
        const uint64_t phase = phase_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == n_) {
            arrived_.store(0, std::memory_order_relaxed);
            phase_.fetch_add(1, std::memory_order_release);
        } else {
            while (phase_.load(std::memory_order_acquire) == phase)
                std::this_thread::yield();
        }
    }

  private:
    const size_t n_;
    std::atomic<size_t> arrived_{0};
    std::atomic<uint64_t> phase_{0};
};

/** Small + big sizes, so both allocators see concurrent traffic. */
size_t
randomSize(std::mt19937_64 &rng)
{
    static const size_t sizes[] = {24,   64,   160,  600, 1500,
                                   3000, 4096, 8192, 12288};
    return sizes[rng() % (sizeof(sizes) / sizeof(sizes[0]))];
}

} // namespace

TEST(Concurrency, HeapStressCrossThreadFreesAndChurnNoLeaks)
{
    constexpr size_t kThreads = 4;
    constexpr size_t kSlotsPer = 12;
    constexpr int kRounds = 3;
    constexpr size_t kTotal = kThreads * kSlotsPer;

    TempDir dir;
    {
        scm::ScmContext c(scmCfg());
        scm::ScopedCtx guard(c);
        Runtime rt(rtCfg(dir.path()));
        auto **slots = static_cast<void **>(rt.regions().pstaticVar(
            "stress_slots", kTotal * sizeof(void *), nullptr));

        // Fresh threads each round: every round's caches are parked on
        // exit and adopted (or their superblocks pooled) by the next
        // round's threads — the thread-churn path.
        for (int round = 0; round < kRounds; ++round) {
            SpinBarrier allocated(kThreads);
            std::vector<std::thread> ts;
            for (size_t t = 0; t < kThreads; ++t) {
                ts.emplace_back([&, t, round] {
                    std::mt19937_64 rng(uint64_t(round) * 97 + t);
                    void **mine = slots + t * kSlotsPer;
                    // Refill this thread's slot range (frees of blocks
                    // allocated by a prior round's exited thread go
                    // through the pooled-superblock path).
                    for (size_t i = 0; i < kSlotsPer; ++i) {
                        if (mine[i])
                            rt.pfree(&mine[i]);
                        rt.pmalloc(randomSize(rng), &mine[i]);
                    }
                    allocated.arrive_and_wait();
                    // Cross-thread frees: free the odd slots of the
                    // next thread's range while that thread is alive —
                    // Hoard's remote-free path against a live cache.
                    void **theirs =
                        slots + ((t + 1) % kThreads) * kSlotsPer;
                    for (size_t i = 1; i < kSlotsPer; i += 2)
                        rt.pfree(&theirs[i]);
                    // Half the threads rotate their cache mid-round so
                    // adoption races with remote frees.
                    if (t % 2 == 0)
                        rt.heap().detachThreadCache();
                });
            }
            for (auto &th : ts)
                th.join();
        }

        // Survivors: even slots full, odd slots freed.
        size_t reachable = 0;
        for (size_t i = 0; i < kTotal; ++i)
            reachable += (slots[i] != nullptr);
        EXPECT_EQ(reachable, kThreads * ((kSlotsPer + 1) / 2));
        c.crash();
    }

    // Reincarnate and walk the heap: accounting must exactly match the
    // reachable slots (nothing leaked, nothing doubly freed), and every
    // reachable block must be live and disjoint.
    scm::ScmContext c2(scmCfg());
    scm::ScopedCtx guard2(c2);
    Runtime rt(rtCfg(dir.path()));
    auto **slots = static_cast<void **>(rt.regions().pstaticVar(
        "stress_slots", kTotal * sizeof(void *), nullptr));
    auto &h = rt.heap();

    size_t reachable = 0;
    for (size_t i = 0; i < kTotal; ++i) {
        void *p = slots[i];
        if (!p)
            continue;
        ++reachable;
        ASSERT_TRUE(h.owns(p)) << "slot " << i << " dangles";
        ASSERT_GT(h.usableSize(p), 0u) << "slot " << i << " freed block";
    }
    for (size_t i = 0; i < kTotal; ++i) {
        for (size_t j = i + 1; j < kTotal; ++j) {
            if (!slots[i] || !slots[j])
                continue;
            const auto a = reinterpret_cast<uintptr_t>(slots[i]);
            const auto b = reinterpret_cast<uintptr_t>(slots[j]);
            ASSERT_FALSE(a < b + h.usableSize(slots[j]) &&
                         b < a + h.usableSize(slots[i]))
                << "slots " << i << " and " << j << " overlap";
        }
    }
    const auto st = h.stats();
    EXPECT_EQ(st.small.blocks_allocated + st.big.chunks_in_use, reachable)
        << "heap accounting disagrees with reachable slots (leak or "
           "double free)";
}

TEST(Concurrency, DirectSuperblockHeapParallelAllocFree)
{
    constexpr size_t kThreads = 4;
    constexpr size_t kPerThread = 64;

    scm::ScmContext c(scmCfg());
    scm::ScopedCtx guard(c);
    std::vector<uint64_t> arena(SuperblockHeap::footprint(128) / 8, 0);
    auto h = SuperblockHeap::create(arena.data(),
                                    SuperblockHeap::footprint(128));

    std::vector<std::vector<void *>> ptrs(
        kThreads, std::vector<void *>(kPerThread, nullptr));
    SpinBarrier filled(kThreads);
    std::vector<std::thread> ts;
    for (size_t t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            std::mt19937_64 rng(t + 1);
            for (size_t i = 0; i < kPerThread; ++i) {
                const size_t sz = 16u << (rng() % 6); // 16..512
                ASSERT_NE(h->allocate(sz, &ptrs[t][i]), nullptr);
            }
            filled.arrive_and_wait();
            // Free every other block of the next thread's batch while
            // it concurrently frees its own remainder.
            auto &theirs = ptrs[(t + 1) % kThreads];
            for (size_t i = 0; i < kPerThread; i += 2)
                h->free(&theirs[i]);
            h->detachThreadCache();
        });
    }
    for (auto &th : ts)
        th.join();

    size_t live = 0;
    for (auto &v : ptrs)
        for (void *p : v)
            live += (p != nullptr);
    EXPECT_EQ(live, kThreads * kPerThread / 2);
    EXPECT_EQ(h->stats().blocks_allocated, live);
    // Every thread detached, so each cache's partial superblocks went
    // back to the global pool.
    EXPECT_GT(h->pooledSuperblocks(), 0u);
}

TEST(Concurrency, SerializedModeMatchesThreadedAccounting)
{
    // The global-mutex baseline (used by the scaling benchmark) must
    // produce the same accounting as the per-thread mode.
    scm::ScmContext c(scmCfg());
    scm::ScopedCtx guard(c);
    std::vector<uint64_t> arena(SuperblockHeap::footprint(64) / 8, 0);
    auto h = SuperblockHeap::create(arena.data(),
                                    SuperblockHeap::footprint(64));
    h->setSerialized(true);
    ASSERT_TRUE(h->serialized());

    std::vector<void *> ptrs(256, nullptr);
    std::vector<std::thread> ts;
    for (size_t t = 0; t < 4; ++t) {
        ts.emplace_back([&, t] {
            for (size_t i = t * 64; i < (t + 1) * 64; ++i)
                ASSERT_NE(h->allocate(64, &ptrs[i]), nullptr);
        });
    }
    for (auto &th : ts)
        th.join();
    EXPECT_EQ(h->stats().blocks_allocated, 256u);
    for (auto &p : ptrs)
        h->free(&p);
    EXPECT_EQ(h->stats().blocks_allocated, 0u);
}

TEST(Concurrency, LogManagerParallelAcquireRelease)
{
    constexpr size_t kSlots = 8;
    scm::ScmContext c(scmCfg());
    scm::ScopedCtx guard(c);
    const size_t bytes = mlog::LogManager::footprint(kSlots, 64 * 1024);
    std::vector<uint64_t> arena(bytes / 8 + 1, 0);
    auto lm = mlog::LogManager::create(arena.data(), bytes, kSlots,
                                       64 * 1024);

    // All threads acquire at once: the sharded free-slot search must
    // hand out kSlots distinct logs.
    std::vector<mlog::Rawl *> logs(kSlots, nullptr);
    std::vector<std::thread> ts;
    for (size_t t = 0; t < kSlots; ++t)
        ts.emplace_back([&, t] { logs[t] = lm->acquire(t); });
    for (auto &th : ts)
        th.join();
    for (size_t i = 0; i < kSlots; ++i) {
        ASSERT_NE(logs[i], nullptr);
        for (size_t j = i + 1; j < kSlots; ++j)
            ASSERT_NE(logs[i], logs[j]) << "slot handed out twice";
    }
    EXPECT_EQ(lm->activeCount(), kSlots);
    EXPECT_THROW(lm->acquire(99), std::runtime_error);

    ts.clear();
    for (size_t t = 0; t < kSlots; ++t)
        ts.emplace_back([&, t] { lm->release(logs[t]); });
    for (auto &th : ts)
        th.join();
    EXPECT_EQ(lm->activeCount(), 0u);
}

TEST(Concurrency, TxnThroughputUnderThreadChurn)
{
    // Waves of short-lived threads transacting: log leases must recycle
    // (no slot exhaustion) and every increment must commit exactly once.
    TempDir dir;
    scm::ScmContext c(scmCfg());
    scm::ScopedCtx guard(c);
    Runtime rt(rtCfg(dir.path()));
    auto *counter = static_cast<uint64_t *>(
        rt.regions().pstaticVar("churn_counter", sizeof(uint64_t), nullptr));

    constexpr int kWaves = 4;
    constexpr int kThreads = 4;
    constexpr int kIncrements = 50;
    for (int w = 0; w < kWaves; ++w) {
        std::vector<std::thread> ts;
        for (int t = 0; t < kThreads; ++t) {
            ts.emplace_back([&] {
                for (int i = 0; i < kIncrements; ++i) {
                    rt.atomic([&](mtm::Txn &tx) {
                        tx.writeT<uint64_t>(counter,
                                            tx.readT<uint64_t>(counter) + 1);
                    });
                }
            });
        }
        for (auto &th : ts)
            th.join();
    }
    EXPECT_EQ(*counter, uint64_t(kWaves) * kThreads * kIncrements);
    // 16 distinct threads transacted against 8 log slots: only lease
    // recycling makes that possible.
    EXPECT_GT(rt.txns().recycledLogCount(), 0u);
}

TEST(Concurrency, PHashTableReaderWriterStress)
{
    // The KV server's worker pool is the first real multi-threaded
    // client of PHashTable: concurrent writers (sync + async commits,
    // in-place overwrites, inserts, deletes) against concurrent readers
    // on overlapping keys.  Writers own disjoint key slices, so the
    // final table contents are exactly each slice's last write — any
    // lost update, torn value, or broken chain shows up in the sweep.
    TempDir dir;
    scm::ScmConfig sc = scmCfg();
    sc.failure_tracking = false;
    scm::ScmContext c(sc);
    scm::ScopedCtx guard(c);
    RuntimeConfig rc = rtCfg(dir.path());
    rc.txn.group_commit = true;
    rc.txn.truncation = mtm::Truncation::kAsync;
    Runtime rt(rc);
    mnemosyne::ds::PHashTable table(rt, "stress_table", 256);

    constexpr int kWriters = 3;
    constexpr int kReaders = 2;
    constexpr int kKeysPerWriter = 40;
    constexpr int kOpsPerWriter = 600;
    std::atomic<bool> stopReaders{false};
    SpinBarrier start(kWriters + kReaders);

    auto keyOf = [](int w, int k) {
        return "w" + std::to_string(w) + "_k" + std::to_string(k);
    };

    std::vector<std::vector<std::string>> last(
        kWriters, std::vector<std::string>(kKeysPerWriter));
    std::vector<std::thread> ts;
    for (int w = 0; w < kWriters; ++w) {
        ts.emplace_back([&, w] {
            std::mt19937 rng(uint32_t(1234 + w));
            start.arrive_and_wait();
            for (int i = 0; i < kOpsPerWriter; ++i) {
                const int k = int(rng() % kKeysPerWriter);
                const std::string key = keyOf(w, k);
                const int kind = int(rng() % 4);
                if (kind == 0) {
                    table.del(key);
                    last[w][size_t(k)].clear();
                } else {
                    // Same-length values exercise the in-place path;
                    // varying lengths force node splices.
                    std::string v = "v" + std::to_string(i) + "_" +
                                    std::string(size_t(rng() % 24), 'x');
                    if (kind == 1)
                        table.put(key, v);
                    else
                        table.putAsync(key, v);
                    last[w][size_t(k)] = v;
                }
            }
            // Retire this thread's trailing async commit while the
            // thread is still alive (per-thread staging slots).
            rt.syncThreadStaging();
        });
    }
    for (int r = 0; r < kReaders; ++r) {
        ts.emplace_back([&, r] {
            std::mt19937 rng(uint32_t(99 + r));
            start.arrive_and_wait();
            std::string v;
            while (!stopReaders.load(std::memory_order_acquire)) {
                const int w = int(rng() % kWriters);
                const int k = int(rng() % kKeysPerWriter);
                // Isolation only: any committed value (or absence) is
                // fine, but the read must never tear or crash.
                table.get(keyOf(w, k), &v);
            }
        });
    }
    for (int w = 0; w < kWriters; ++w)
        ts[size_t(w)].join();
    stopReaders.store(true, std::memory_order_release);
    for (size_t i = kWriters; i < ts.size(); ++i)
        ts[i].join();

    rt.sync();
    size_t expectCount = 0;
    for (int w = 0; w < kWriters; ++w) {
        for (int k = 0; k < kKeysPerWriter; ++k) {
            std::string v;
            const bool found = table.get(keyOf(w, k), &v);
            if (last[w][size_t(k)].empty()) {
                EXPECT_FALSE(found) << keyOf(w, k);
            } else {
                ASSERT_TRUE(found) << keyOf(w, k);
                EXPECT_EQ(v, last[w][size_t(k)]) << keyOf(w, k);
                expectCount++;
            }
        }
    }
    EXPECT_EQ(table.size(), expectCount);
}
