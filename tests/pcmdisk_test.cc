/**
 * @file
 * Tests for the PCM-disk block-device emulator and the MiniFs file
 * layer: data paths, the latency model, and sync/torn-write crash
 * semantics.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "pcmdisk/minifs.h"
#include "pcmdisk/pcmdisk.h"

namespace pcm = mnemosyne::pcmdisk;
namespace scm = mnemosyne::scm;
using pcm::MiniFs;
using pcm::PcmDisk;

namespace {

pcm::PcmDiskConfig
cfg()
{
    pcm::PcmDiskConfig c;
    c.capacity_bytes = 16 << 20;
    return c;
}

std::vector<uint8_t>
pattern(uint8_t seed)
{
    std::vector<uint8_t> b(pcm::kBlockBytes);
    for (size_t i = 0; i < b.size(); ++i)
        b[i] = uint8_t(seed + i);
    return b;
}

} // namespace

TEST(PcmDisk, WriteReadRoundTrip)
{
    PcmDisk d(cfg());
    const auto b = pattern(1);
    d.writeBlock(5, b.data());
    std::vector<uint8_t> out(pcm::kBlockBytes);
    d.readBlock(5, out.data());
    EXPECT_EQ(out, b);
}

TEST(PcmDisk, UnsyncedWriteLostOnCrashWhenNotTorn)
{
    auto c = cfg();
    c.torn_block_writes = false;
    PcmDisk d(c);
    const auto b = pattern(2);
    d.writeBlock(3, b.data());
    d.crash();
    std::vector<uint8_t> out(pcm::kBlockBytes, 1);
    d.readBlock(3, out.data());
    EXPECT_EQ(out, std::vector<uint8_t>(pcm::kBlockBytes, 0));
}

TEST(PcmDisk, SyncedWriteSurvivesCrash)
{
    PcmDisk d(cfg());
    const auto b = pattern(3);
    d.writeBlock(3, b.data());
    d.sync();
    d.crash();
    std::vector<uint8_t> out(pcm::kBlockBytes);
    d.readBlock(3, out.data());
    EXPECT_EQ(out, b);
}

TEST(PcmDisk, CrashCanTearUnsyncedBlocks)
{
    // With torn writes enabled, some seed must yield a block that is
    // neither all-old nor all-new (mixed sectors).
    bool saw_torn = false;
    for (uint64_t seed = 0; seed < 32 && !saw_torn; ++seed) {
        auto c = cfg();
        c.crash_seed = seed;
        PcmDisk d(c);
        const auto b = pattern(7);
        d.writeBlock(0, b.data());
        d.crash();
        std::vector<uint8_t> out(pcm::kBlockBytes);
        d.readBlock(0, out.data());
        size_t new_sectors = 0;
        for (size_t s = 0; s < pcm::kBlockBytes / pcm::kSectorBytes; ++s) {
            if (std::memcmp(out.data() + s * pcm::kSectorBytes,
                            b.data() + s * pcm::kSectorBytes,
                            pcm::kSectorBytes) == 0) {
                ++new_sectors;
            }
        }
        if (new_sectors != 0 &&
            new_sectors != pcm::kBlockBytes / pcm::kSectorBytes) {
            saw_torn = true;
        }
    }
    EXPECT_TRUE(saw_torn);
}

TEST(PcmDisk, LatencyModelChargesOverheadAndBandwidth)
{
    auto c = cfg();
    c.latency_mode = scm::LatencyMode::kVirtual;
    c.request_overhead_ns = 10000;
    c.write_latency_ns = 150;
    c.write_bandwidth_bytes_per_us = 4096;
    PcmDisk d(c);
    const auto b = pattern(4);
    d.writeBlock(0, b.data());
    d.sync();
    // 10000 (stack) + 150 (completion) + 4096 B at 4096 B/us = 1000 ns.
    EXPECT_EQ(d.stats().delay_ns, 11150u);
}

TEST(MiniFs, WriteReadAcrossBlockBoundary)
{
    PcmDisk d(cfg());
    MiniFs fs(d);
    const int fd = fs.open("a");
    std::string data(10000, 'x');
    for (size_t i = 0; i < data.size(); ++i)
        data[i] = char('a' + i % 26);
    fs.pwrite(fd, data.data(), data.size(), 100);
    EXPECT_EQ(fs.size(fd), 10100u);

    std::string out(10000, 0);
    EXPECT_EQ(fs.pread(fd, out.data(), out.size(), 100), out.size());
    EXPECT_EQ(out, data);
}

TEST(MiniFs, ReadPastEofIsShort)
{
    PcmDisk d(cfg());
    MiniFs fs(d);
    const int fd = fs.open("a");
    fs.pwrite(fd, "hello", 5, 0);
    char buf[16];
    EXPECT_EQ(fs.pread(fd, buf, sizeof(buf), 0), 5u);
    EXPECT_EQ(fs.pread(fd, buf, sizeof(buf), 5), 0u);
}

TEST(MiniFs, FsyncMakesDataDurable)
{
    auto c = cfg();
    c.torn_block_writes = false;
    PcmDisk d(c);
    MiniFs fs(d);
    const int fd = fs.open("a");
    fs.pwrite(fd, "durable", 7, 0);
    fs.fsync(fd);
    fs.pwrite(fd, "volatile", 8, 100);
    d.crash();
    char buf[8] = {};
    fs.pread(fd, buf, 7, 0);
    EXPECT_STREQ(buf, "durable");
    char buf2[9] = {};
    fs.pread(fd, buf2, 8, 100);
    EXPECT_STRNE(buf2, "volatile") << "unsynced write must not survive";
}

TEST(MiniFs, TruncateAndReuse)
{
    PcmDisk d(cfg());
    MiniFs fs(d);
    const int fd = fs.open("a");
    std::vector<uint8_t> big(100 * pcm::kBlockBytes, 0xaa);
    fs.pwrite(fd, big.data(), big.size(), 0);
    fs.ftruncate(fd, 0);
    EXPECT_EQ(fs.size(fd), 0u);
    // The freed blocks are reusable by another file.
    const int fd2 = fs.open("b");
    fs.pwrite(fd2, big.data(), big.size(), 0);
    EXPECT_EQ(fs.size(fd2), big.size());
}

TEST(MiniFs, UnlinkRemovesFile)
{
    PcmDisk d(cfg());
    MiniFs fs(d);
    fs.open("a");
    EXPECT_TRUE(fs.exists("a"));
    fs.unlink("a");
    EXPECT_FALSE(fs.exists("a"));
}

TEST(MiniFs, DiskFullThrows)
{
    auto c = cfg();
    c.capacity_bytes = 64 * pcm::kBlockBytes;
    PcmDisk d(c);
    MiniFs fs(d);
    const int fd = fs.open("a");
    std::vector<uint8_t> big(65 * pcm::kBlockBytes, 1);
    EXPECT_THROW(fs.pwrite(fd, big.data(), big.size(), 0),
                 std::runtime_error);
}
