/**
 * @file
 * Unit coverage for smaller pieces: lock-word encoding, latency
 * accounting, RAWL sizing math, transaction statistics and conflict
 * behaviour, and API misuse guards.
 */

#include <gtest/gtest.h>

#include <thread>

#include "ds/phash_table.h"
#include "log/rawl.h"
#include "mtm/lock_table.h"
#include "runtime/runtime.h"
#include "scm/latency.h"
#include "scm/scm.h"
#include "tests/test_util.h"

namespace scm = mnemosyne::scm;
namespace mtm = mnemosyne::mtm;
namespace mlog = mnemosyne::log;
using mnemosyne::Runtime;
using mnemosyne::RuntimeConfig;
using mnemosyne::test::TempDir;
using mnemosyne::test::smallRegionConfig;

namespace {

RuntimeConfig
rtCfg(const std::string &dir)
{
    RuntimeConfig rc;
    rc.use_current_scm_context = true;
    rc.region = smallRegionConfig(dir);
    rc.small_heap_bytes = 4 << 20;
    rc.big_heap_bytes = 4 << 20;
    rc.txn.log_slots = 8;
    rc.txn.log_slot_bytes = 128 * 1024;
    return rc;
}

} // namespace

TEST(LockTable, EncodingRoundTrips)
{
    EXPECT_FALSE(mtm::LockTable::isLocked(mtm::LockTable::makeVersion(5)));
    EXPECT_TRUE(mtm::LockTable::isLocked(mtm::LockTable::makeLocked(7)));
    EXPECT_EQ(mtm::LockTable::version(mtm::LockTable::makeVersion(123)),
              123u);
    EXPECT_EQ(mtm::LockTable::owner(mtm::LockTable::makeLocked(99)), 99u);
}

TEST(LockTable, SameStripeSameLockDifferentWordsSpread)
{
    mtm::LockTable t(10);
    uint64_t words[256];
    // The same address maps to the same lock...
    EXPECT_EQ(&t.lockFor(&words[0]), &t.lockFor(&words[0]));
    // ...and sub-word addresses within one 8-byte stripe share it.
    EXPECT_EQ(&t.lockFor(&words[0]),
              &t.lockFor(reinterpret_cast<char *>(&words[0]) + 7));
    // Adjacent words rarely all collide: count distinct locks.
    std::set<mtm::LockTable::Word *> distinct;
    for (auto &w : words)
        distinct.insert(&t.lockFor(&w));
    EXPECT_GT(distinct.size(), 200u) << "hash must spread adjacent words";
}

TEST(LatencyAccount, VirtualModeAccumulatesWithoutSpinning)
{
    scm::LatencyAccount acc;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 1000; ++i)
        acc.charge(scm::LatencyMode::kVirtual, 1000000); // 1 ms each
    const auto wall = std::chrono::steady_clock::now() - t0;
    EXPECT_EQ(acc.totalNs(), 1000ull * 1000000);
    EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(wall)
                  .count(),
              500)
        << "virtual charging must not actually wait";
    acc.reset();
    EXPECT_EQ(acc.totalNs(), 0u);
}

TEST(Rawl, FootprintAndCapacityMath)
{
    // footprint is monotonic and create() accepts exactly what
    // footprint promises.
    for (size_t words : {16, 100, 1000}) {
        const size_t bytes = mlog::Rawl::footprint(words);
        std::vector<uint64_t> arena((bytes + 7) / 8, 0);
        auto log = mlog::Rawl::create(arena.data(), bytes);
        EXPECT_EQ(log->capacityWords(), words);
        const size_t max_rec = mlog::Rawl::maxRecordWords(words);
        ASSERT_GT(max_rec, 0u);
        std::vector<uint64_t> rec(max_rec, 1);
        EXPECT_TRUE(log->tryAppend(rec.data(), rec.size()))
            << "maxRecordWords must fit an empty log of " << words;
    }
}

TEST(Mtm, StatsCountCommitsAbortsAndReadonly)
{
    TempDir dir;
    scm::ScmContext c{scm::ScmConfig{}};
    scm::ScopedCtx guard(c);
    Runtime rt(rtCfg(dir.path()));
    auto *x = static_cast<uint64_t *>(
        rt.regions().pstaticVar("x", 8, nullptr));

    rt.atomic([&](mtm::Txn &tx) { tx.writeT<uint64_t>(x, 1); });
    rt.atomic([&](mtm::Txn &tx) { (void)tx.readT<uint64_t>(x); });
    try {
        rt.atomic([&](mtm::Txn &tx) {
            tx.writeT<uint64_t>(x, 2);
            throw std::runtime_error("bail");
        });
    } catch (const std::runtime_error &) {
    }
    const auto s = rt.txns().stats();
    EXPECT_EQ(s.commits, 1u);
    EXPECT_EQ(s.readonly_commits, 1u);
    EXPECT_EQ(s.aborts, 1u);
}

TEST(Mtm, CurrentReflectsActiveTransaction)
{
    TempDir dir;
    scm::ScmContext c{scm::ScmConfig{}};
    scm::ScopedCtx guard(c);
    Runtime rt(rtCfg(dir.path()));
    EXPECT_EQ(rt.txns().current(), nullptr);
    rt.atomic([&](mtm::Txn &tx) {
        EXPECT_EQ(rt.txns().current(), &tx);
    });
    EXPECT_EQ(rt.txns().current(), nullptr);
}

TEST(Mtm, ConflictsAreCountedAndResolved)
{
    TempDir dir;
    scm::ScmContext c{scm::ScmConfig{}};
    scm::ScopedCtx guard(c);
    Runtime rt(rtCfg(dir.path()));
    auto *x = static_cast<uint64_t *>(
        rt.regions().pstaticVar("hot", 8, nullptr));

    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
        ts.emplace_back([&] {
            for (int i = 0; i < 300; ++i) {
                rt.atomic([&](mtm::Txn &tx) {
                    tx.writeT<uint64_t>(x, tx.readT<uint64_t>(x) + 1);
                });
            }
        });
    }
    for (auto &th : ts)
        th.join();
    EXPECT_EQ(*x, 1200u);
    // With a single hot word, the commits succeeded regardless of how
    // many conflict-aborts the schedule produced.
    EXPECT_GE(rt.txns().stats().commits, 1200u);
}

TEST(Runtime, GlobalAccessorTracksCurrentRuntime)
{
    TempDir dir;
    scm::ScmContext c{scm::ScmConfig{}};
    scm::ScopedCtx guard(c);
    EXPECT_EQ(mnemosyne::runtime(), nullptr);
    {
        Runtime rt(rtCfg(dir.path()));
        EXPECT_EQ(mnemosyne::runtime(), &rt);
    }
    EXPECT_EQ(mnemosyne::runtime(), nullptr);
}

TEST(Runtime, UsableSizeAndOwns)
{
    TempDir dir;
    scm::ScmContext c{scm::ScmConfig{}};
    scm::ScopedCtx guard(c);
    Runtime rt(rtCfg(dir.path()));
    auto **p = static_cast<void **>(
        rt.regions().pstaticVar("p", sizeof(void *), nullptr));
    rt.pmalloc(100, p);
    EXPECT_TRUE(rt.heap().owns(*p));
    EXPECT_GE(rt.heap().usableSize(*p), 100u);
    int local;
    EXPECT_FALSE(rt.heap().owns(&local));
    rt.pfree(p);
}

TEST(PHashTable, LargeValuesThroughBigAllocator)
{
    // Values beyond the superblock classes route through the dlmalloc
    // fallback transparently.
    TempDir dir;
    scm::ScmContext c{scm::ScmConfig{}};
    scm::ScopedCtx guard(c);
    Runtime rt(rtCfg(dir.path()));
    mnemosyne::ds::PHashTable ht(rt, "big_ht", 16);
    const std::string big(20000, 'B');
    ht.put("big", big);
    std::string v;
    ASSERT_TRUE(ht.get("big", &v));
    EXPECT_EQ(v, big);
    EXPECT_GT(rt.heap().stats().big.chunks_in_use, 0u);
    ht.del("big");
}
